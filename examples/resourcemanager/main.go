// Resource manager: the paper's motivating scenario (Sections 1 and 7) —
// a group of users share a single resource (here an append-only log file
// standing in for "a shared file on a multi-core laptop") under the policy
// "never more than one user of the resource at a time", with
// first-come-first-served service.
//
// Each worker appends a record; the manager verifies after the fact that
// no two appends interleaved and prints the service order. Because Bakery++
// is FCFS, a worker that finished its doorway before another worker even
// arrived is always served first.
//
//	go run ./examples/resourcemanager
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bakerypp"
)

// resource is the shared, mutual-exclusion-requiring object: an in-memory
// "file" that detects concurrent appends.
type resource struct {
	busy    bool
	records []string
}

func (r *resource) appendRecord(rec string) {
	if r.busy {
		panic("resource accessed concurrently — mutual exclusion violated")
	}
	r.busy = true
	// Simulate I/O latency so overlap would be caught.
	time.Sleep(50 * time.Microsecond)
	r.records = append(r.records, rec)
	r.busy = false
}

func main() {
	const (
		users   = 6
		appends = 40
	)
	lock := bakerypp.New(users, bakerypp.CapacityForBits(16))
	res := &resource{}

	var wg sync.WaitGroup
	for pid := 0; pid < users; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pid)))
			for i := 0; i < appends; i++ {
				// Think time between requests.
				time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
				lock.Lock(pid)
				res.appendRecord(fmt.Sprintf("user%d#%d", pid, i))
				lock.Unlock(pid)
			}
		}(pid)
	}
	wg.Wait()

	perUser := map[string]int{}
	for _, rec := range res.records {
		perUser[rec[:5]]++
	}
	fmt.Printf("%d records appended, no concurrent access detected\n", len(res.records))
	fmt.Printf("appends per user: %v\n", perUser)
	fmt.Printf("first 10 in service order: %v\n", res.records[:10])
	fmt.Printf("ticket-register overflow attempts: %d\n", lock.Overflows())
	if len(res.records) != users*appends {
		panic("lost records")
	}
}
