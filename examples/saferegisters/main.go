// Safe registers: Bakery++ under the weakest register model.
//
// Lamport's bakery algorithm is the "first true solution" to mutual
// exclusion partly because it tolerates registers so weak that a read
// overlapping a write may return ANY value (paper Section 1.2, property 4).
// This example runs Bakery++ over such registers — every overlapped read is
// deliberately scrambled — and shows mutual exclusion surviving thousands
// of flickered reads, with zero overflow attempts.
//
//	go run ./examples/saferegisters
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"bakerypp/internal/core"
)

func main() {
	const (
		workers = 4
		iters   = 30000
	)
	lock := core.NewSafe(workers, core.CapacityForBits(8))

	var (
		inCS       atomic.Int32
		violations atomic.Int64
		wg         sync.WaitGroup
	)
	counter := 0
	for pid := 0; pid < workers; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				lock.Lock(pid)
				if inCS.Add(1) != 1 {
					violations.Add(1)
				}
				counter++
				runtime.Gosched()
				inCS.Add(-1)
				lock.Unlock(pid)
			}
		}(pid)
	}
	wg.Wait()

	fmt.Printf("counter            = %d (want %d)\n", counter, workers*iters)
	fmt.Printf("flickered reads    = %d (reads that returned arbitrary values)\n", lock.Flickers())
	fmt.Printf("mutex violations   = %d\n", violations.Load())
	fmt.Printf("overflow resets    = %d\n", lock.Resets())
	if counter != workers*iters || violations.Load() != 0 {
		panic("safe-register Bakery++ misbehaved")
	}
	fmt.Println("\nBakery++ holds over safe registers — and the model checker proves it over")
	fmt.Println("ALL interleavings and flicker outcomes: go test -run BakeryPPSafeRegisters ./internal/mc/")
}
