// Embedded: the paper's Section 4 warning made visible. "Many modern
// embedded systems are 32-bit machines"; small microcontrollers are 8-bit.
// This example emulates 8-bit ticket registers and runs classic Bakery and
// Bakery++ side by side under sustained contention.
//
// Classic Bakery's tickets climb to 255, wrap, and mutual exclusion
// collapses (overlapping holders detected). Bakery++ on the same registers
// resets tickets before they can exceed 255 and never misbehaves.
//
//	go run ./examples/embedded
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"bakerypp"
)

// drive hammers the lock from n workers and reports overlap violations and
// overflow attempts.
func drive(lock bakerypp.Lock, n, iters int) (violations int64, overflows uint64) {
	var (
		inCS atomic.Int32
		bad  atomic.Int64
		wg   sync.WaitGroup
	)
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				lock.Lock(pid)
				if inCS.Add(1) != 1 {
					bad.Add(1)
				}
				runtime.Gosched() // widen any overlap window
				inCS.Add(-1)
				lock.Unlock(pid)
			}
		}(pid)
	}
	wg.Wait()
	if ins, ok := lock.(bakerypp.Instrumented); ok {
		overflows = ins.Overflows()
	}
	return bad.Load(), overflows
}

func main() {
	const (
		workers = 4
		iters   = 20000
		bits    = 8
	)
	fmt.Printf("emulating %d-bit ticket registers (capacity %d), %d workers x %d sections\n\n",
		bits, bakerypp.CapacityForBits(bits), workers, iters)

	classic := bakerypp.NewClassicBakeryForBits(workers, bits)
	v, o := drive(classic, workers, iters)
	fmt.Printf("classic bakery : overflow attempts=%-6d mutual-exclusion violations=%d\n", o, v)

	bpp := bakerypp.NewForBits(workers, bits)
	v2, o2 := drive(bpp, workers, iters)
	fmt.Printf("bakery++       : overflow attempts=%-6d mutual-exclusion violations=%d (resets=%d)\n",
		o2, v2, bpp.Resets())

	switch {
	case v2 != 0 || o2 != 0:
		panic("bakery++ misbehaved — this contradicts the paper's theorem")
	case o == 0:
		fmt.Println("\nnote: classic bakery did not wrap this run; increase iters for more contention")
	default:
		fmt.Println("\nclassic bakery overflowed as Section 3 predicts; bakery++ did not — 'there is no reason to keep implementing Bakery in real computers'.")
	}
}
