// Quickstart: guard a shared counter with the Bakery++ lock.
//
// Four workers increment a deliberately non-atomic counter one million
// times in total. Bakery++ serialises them using only reads and writes of
// bounded per-worker registers — no compare-and-swap, no possibility of
// ticket overflow (here the tickets are 8-bit).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"bakerypp"
)

func main() {
	const (
		workers = 4
		iters   = 250000
	)
	lock := bakerypp.NewForBits(workers, 8) // tickets live in 0..255

	counter := 0 // protected by lock; deliberately not atomic
	var wg sync.WaitGroup
	for pid := 0; pid < workers; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				lock.Lock(pid)
				counter++
				lock.Unlock(pid)
			}
		}(pid)
	}
	wg.Wait()

	fmt.Printf("counter = %d (want %d)\n", counter, workers*iters)
	fmt.Printf("overflow attempts = %d (Bakery++ theorem: always 0)\n", lock.Overflows())
	fmt.Printf("overflow-avoidance resets = %d\n", lock.Resets())
	if counter != workers*iters {
		panic("mutual exclusion failed")
	}
}
