// Modelcheck: reproduce the paper's TLC verification with the embedded
// explicit-state model checker — verify that Bakery++ satisfies mutual
// exclusion and never overflows, and exhibit classic Bakery's shortest
// overflow counterexample.
//
// This example reaches below the public lock API into the verification
// substrates (internal/specs and internal/mc); inside this module that is
// exactly what cmd/bakerymc does, packaged as a walkthrough.
//
//	go run ./examples/modelcheck
package main

import (
	"fmt"

	"bakerypp/internal/mc"
	"bakerypp/internal/specs"
)

func main() {
	safety := []mc.Invariant{mc.Mutex(), mc.NoOverflow()}

	fmt.Println("1. Verifying Bakery++ (N=3 processes, M=3 ticket capacity):")
	bpp := specs.BakeryPP(specs.Config{N: 3, M: 3})
	res := mc.Check(bpp, mc.Options{Invariants: safety, Deadlock: true})
	fmt.Printf("   %s\n\n", res)

	fmt.Println("2. Verifying Bakery++ under crash-restart (paper conditions 3-4):")
	res = mc.Check(specs.BakeryPP(specs.Config{N: 2, M: 2}),
		mc.Options{Invariants: safety, Crash: true})
	fmt.Printf("   %s\n\n", res)

	fmt.Println("3. Classic Bakery on the same bounded registers (N=2, M=3):")
	res = mc.Check(specs.Bakery(specs.Config{N: 2, M: 3}), mc.Options{Invariants: safety})
	fmt.Printf("   %s\n", res)
	if res.Violation == nil {
		panic("expected an overflow counterexample")
	}
	fmt.Printf("   shortest overflow counterexample:\n%s\n", indent(res.Violation.Trace.String()))

	fmt.Println("4. Refinement (Section 6.2): every Bakery++ behaviour is a Bakery behaviour:")
	ref, err := mc.CheckBoundedRefinement(
		specs.BakeryPP(specs.Config{N: 2, M: 2}),
		specs.Bakery(specs.Config{N: 2, M: 1 << 14}),
		mc.RefinementOptions{MaxEvents: 6})
	if err != nil {
		panic(err)
	}
	fmt.Printf("   holds=%v (explored %d implementation nodes)\n", ref.Holds, ref.Nodes)
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += "      " + s[start:i+1]
			start = i + 1
		}
	}
	if start < len(s) {
		out += "      " + s[start:] + "\n"
	}
	return out
}
