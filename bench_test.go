// Benchmarks regenerating the performance dimension of every experiment
// table in EXPERIMENTS.md (go test -bench=. -benchmem):
//
//	BenchmarkLock            — E4 throughput comparison (per lock, per N)
//	BenchmarkUncontended     — E4 single-participant fast path
//	BenchmarkOverflowPressure— E5 Bakery++ cost as M approaches N
//	BenchmarkTicketGrowth    — E3 ticket issue rate on ideal registers
//	BenchmarkModelChecker    — E1/E2 verification throughput (states/sec)
//	BenchmarkSimulator       — E6/E10 interleaving simulator (steps/sec)
//	BenchmarkRefinement      — E11 bounded refinement check
package bakerypp_test

import (
	"fmt"
	"sync"
	"testing"

	"bakerypp"
	"bakerypp/internal/algorithms"
	"bakerypp/internal/core"
	"bakerypp/internal/gcl"
	"bakerypp/internal/mc"
	"bakerypp/internal/sched"
	"bakerypp/internal/specs"
)

// benchLock drives n workers through b.N total lock/unlock pairs.
func benchLock(b *testing.B, l bakerypp.Lock, n int) {
	b.Helper()
	iters := b.N/n + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock(pid)
				l.Unlock(pid)
			}
		}(pid)
	}
	wg.Wait()
}

func lockMakers() []struct {
	name string
	mk   func(n int) bakerypp.Lock
} {
	return []struct {
		name string
		mk   func(n int) bakerypp.Lock
	}{
		{"bakery", func(n int) bakerypp.Lock { return algorithms.NewBakery(n) }},
		{"bakery++", func(n int) bakerypp.Lock { return core.New(n, 1<<30) }},
		{"black-white", func(n int) bakerypp.Lock { return algorithms.NewBlackWhite(n) }},
		{"peterson", func(n int) bakerypp.Lock { return algorithms.NewPeterson(n) }},
		{"szymanski", func(n int) bakerypp.Lock { return algorithms.NewSzymanski(n) }},
		{"tournament", func(n int) bakerypp.Lock { return algorithms.NewTournament(n) }},
		{"ticket-faa", func(n int) bakerypp.Lock { return algorithms.NewTicket(n) }},
		{"tas", func(n int) bakerypp.Lock { return algorithms.NewTAS(n) }},
		{"ttas", func(n int) bakerypp.Lock { return algorithms.NewTTAS(n) }},
	}
}

// BenchmarkLock is experiment E4's table: critical sections per second per
// lock under sustained contention at N = 2, 4, 8.
func BenchmarkLock(b *testing.B) {
	for _, lm := range lockMakers() {
		for _, n := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/N=%d", lm.name, n), func(b *testing.B) {
				benchLock(b, lm.mk(n), n)
			})
		}
	}
}

// BenchmarkUncontended is E4's fast-path column: one participant, no
// contention — the pure doorway + scan cost.
func BenchmarkUncontended(b *testing.B) {
	for _, lm := range lockMakers() {
		b.Run(lm.name, func(b *testing.B) {
			l := lm.mk(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Lock(0)
				l.Unlock(0)
			}
		})
	}
}

// BenchmarkOverflowPressure is E5: Bakery++ with the capacity M shrinking
// toward the participant count; resets/op quantifies the Section 7 price.
func BenchmarkOverflowPressure(b *testing.B) {
	const n = 4
	for _, m := range []int64{4, 8, 64, 1 << 20} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			l := core.New(n, m)
			benchLock(b, l, n)
			b.ReportMetric(float64(l.Resets())/float64(b.N), "resets/op")
			b.ReportMetric(float64(l.GateWaits())/float64(b.N), "gatewaits/op")
		})
	}
}

// BenchmarkTicketGrowth is E3's growth-rate measurement: classic Bakery on
// ideal registers; tickets/op close to 1 means the bakery stayed occupied
// (Lamport's unbounded-growth regime).
func BenchmarkTicketGrowth(b *testing.B) {
	const n = 4
	l := algorithms.NewBakery(n)
	benchLock(b, l, n)
	b.ReportMetric(float64(l.MaxTicket())/float64(b.N), "tickets/op")
}

// BenchmarkModelChecker is the substrate bench behind E1/E2: full
// verification of Bakery++ (N=2, M=3), reported in states/sec.
func BenchmarkModelChecker(b *testing.B) {
	opts := mc.Options{Invariants: []mc.Invariant{mc.Mutex(), mc.NoOverflow()}}
	states := 0
	for i := 0; i < b.N; i++ {
		p := specs.BakeryPP(specs.Config{N: 2, M: 3})
		res := mc.Check(p, opts)
		if res.Violation != nil {
			b.Fatal("unexpected violation")
		}
		states = res.States
	}
	b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds()/float64(b.N), "states/s")
}

// BenchmarkSimulator is the substrate bench behind E6/E10: interleaving
// steps per second on Bakery++ (N=3).
func BenchmarkSimulator(b *testing.B) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 4})
	const chunk = 50000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := sched.Run(p, sched.Options{Steps: chunk, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if st.MutexViolations != 0 {
			b.Fatal("violation")
		}
	}
	b.ReportMetric(float64(chunk)*float64(b.N)/b.Elapsed().Seconds()/float64(b.N), "steps/s")
}

// BenchmarkSimulatorWrap measures the wrap-mode simulation used by E3's
// model-level runs (classic Bakery, 3-bit registers).
func BenchmarkSimulatorWrap(b *testing.B) {
	p := specs.Bakery(specs.Config{N: 3, M: 7})
	const chunk = 50000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Run(p, sched.Options{Steps: chunk, Seed: int64(i), Mode: gcl.ModeWrap}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefinement is E11's check: Bakery++ ⊑ Bakery, 6 events.
func BenchmarkRefinement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		impl := specs.BakeryPP(specs.Config{N: 2, M: 2})
		spec := specs.Bakery(specs.Config{N: 2, M: 1 << 14})
		res, err := mc.CheckBoundedRefinement(impl, spec, mc.RefinementOptions{MaxEvents: 6})
		if err != nil || !res.Holds {
			b.Fatal("refinement failed")
		}
	}
}

// BenchmarkPaddingAblation isolates false sharing from scan cost: the same
// Bakery++ algorithm over a packed register array (a real shared array's
// layout) versus registers spaced one cache line apart.
func BenchmarkPaddingAblation(b *testing.B) {
	const n = 4
	b.Run("packed", func(b *testing.B) {
		benchLock(b, core.New(n, 1<<30), n)
	})
	b.Run("padded", func(b *testing.B) {
		benchLock(b, core.NewPadded(n, 1<<30), n)
	})
}

// BenchmarkTryLock measures the non-blocking fast path and its failure
// path under a held lock.
func BenchmarkTryLock(b *testing.B) {
	b.Run("uncontended", func(b *testing.B) {
		l := core.New(2, 1<<20)
		for i := 0; i < b.N; i++ {
			if !l.TryLock(0) {
				b.Fatal("uncontended TryLock failed")
			}
			l.Unlock(0)
		}
	})
	b.Run("held", func(b *testing.B) {
		l := core.New(2, 1<<20)
		l.Lock(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if l.TryLock(1) {
				b.Fatal("TryLock succeeded against holder")
			}
		}
	})
}

// BenchmarkGateAblation compares Bakery++ with and without the L1 gate
// (DESIGN.md ablation 4) near the bound, where the gate matters.
func BenchmarkGateAblation(b *testing.B) {
	p1 := specs.BakeryPP(specs.Config{N: 3, M: 2})
	p2 := specs.BakeryPP(specs.Config{N: 3, M: 2, NoGate: true})
	for _, pc := range []struct {
		name string
		p    *gcl.Prog
	}{{"gate", p1}, {"nogate", p2}} {
		b.Run(pc.name, func(b *testing.B) {
			var resets int64
			var entries int64
			const chunk = 20000
			for i := 0; i < b.N; i++ {
				st, err := sched.Run(pc.p, sched.Options{Steps: chunk, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range st.Resets {
					resets += r
				}
				entries += st.TotalCS()
			}
			b.ReportMetric(float64(resets)/float64(b.N), "resets/run")
			b.ReportMetric(float64(entries)/float64(b.N), "entries/run")
		})
	}
}
