--------------------------- MODULE BakeryPP ---------------------------
(* Bakery++ (Algorithm 2 of "Avoiding Register Overflow in the Bakery   *)
(* Algorithm", Sayyadabdi & Sharifi, ICPP 2020): Lamport's bakery plus  *)
(* two conditional statements that make register overflow impossible —  *)
(* the L1 entry gate and the pre-increment check that resets instead of *)
(* storing a value above M. Written in PlusCal at the same label        *)
(* granularity as the Go spec in internal/specs/bakerypp.go; TLC        *)
(* verifies MutualExclusion and NoOverflow over all interleavings,      *)
(* which internal/mc reproduces (experiments E1/E2).                    *)

EXTENDS Integers, Naturals

CONSTANTS N, M

Procs == 0..(N-1)

Max(S) == CHOOSE x \in S : \A y \in S : y <= x

(* --algorithm BakeryPP {
  variables choosing = [q \in Procs |-> 0],
            number   = [q \in Procs |-> 0];

  process (p \in Procs)
    variables j = 0;
  {
  ncs:  while (TRUE) {
          skip;                    \* noncritical section
  l1:     await \A q \in Procs : number[q] < M;   \* the entry gate
  ch1:    choosing[self] := 1;
  ch2:    number[self] := Max({number[q] : q \in Procs});
  chk:    if (number[self] >= M) {               \* pre-increment check
  rst:      number[self] := 0 || choosing[self] := 0;
            goto l1;                             \* reset and retry
          } else {
            number[self] := number[self] + 1;
          };
  ch3:    choosing[self] := 0;
          j := 0;
  t1:     while (j < N) {
  t2:       await choosing[j] = 0;
  t3:       await \/ number[j] = 0
                  \/ \lnot \/ number[j] < number[self]
                           \/ number[j] = number[self] /\ j < self;
  t4:       j := j + 1;
          };
  cs:     number[self] := 0;       \* critical section, then exit protocol
        }
  }
} *)

VARIABLES choosing, number, pc, j

(* The two checked properties, shared with internal/mc's invariants.    *)

MutualExclusion ==
    \A p1, p2 \in Procs : p1 # p2 => ~(pc[p1] = "cs" /\ pc[p2] = "cs")

NoOverflow ==
    \A q \in Procs : number[q] <= M

=======================================================================
