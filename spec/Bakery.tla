---------------------------- MODULE Bakery ----------------------------
(* Lamport's bakery algorithm (Algorithm 1 of "Avoiding Register        *)
(* Overflow in the Bakery Algorithm", Sayyadabdi & Sharifi, ICPP 2020), *)
(* written in PlusCal at the same label granularity as the Go spec in   *)
(* internal/specs/bakery.go. Registers are ideal (unbounded); M is the  *)
(* capacity used only for overflow accounting, which is exactly why the *)
(* NoOverflow invariant FAILS for this module (paper Section 3).        *)

EXTENDS Integers, Naturals

CONSTANTS N, M

Procs == 0..(N-1)

Max(S) == CHOOSE x \in S : \A y \in S : y <= x

(* --algorithm Bakery {
  variables choosing = [q \in Procs |-> 0],
            number   = [q \in Procs |-> 0];

  process (p \in Procs)
    variables j = 0;
  {
  ncs:  while (TRUE) {
          skip;                    \* noncritical section
  ch1:    choosing[self] := 1;
  ch2:    number[self] := 1 + Max({number[q] : q \in Procs});
  ch3:    choosing[self] := 0;
          j := 0;
  t1:     while (j < N) {
  t2:       await choosing[j] = 0;
  t3:       await \/ number[j] = 0
                  \/ \lnot \/ number[j] < number[self]
                           \/ number[j] = number[self] /\ j < self;
  t4:       j := j + 1;
          };
  cs:     number[self] := 0;       \* critical section, then exit protocol
        }
  }
} *)

VARIABLES choosing, number, pc, j

(* The two checked properties, shared with internal/mc's invariants.    *)

MutualExclusion ==
    \A p1, p2 \in Procs : p1 # p2 => ~(pc[p1] = "cs" /\ pc[p2] = "cs")

NoOverflow ==
    \A q \in Procs : number[q] <= M

=======================================================================
