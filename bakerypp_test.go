package bakerypp_test

import (
	"sync"
	"testing"

	"bakerypp"
)

func TestPublicConstructors(t *testing.T) {
	locks := []bakerypp.Lock{
		bakerypp.New(2, 100),
		bakerypp.NewForBits(2, 8),
		bakerypp.NewClassicBakery(2),
		bakerypp.NewClassicBakeryForBits(2, 16),
		bakerypp.NewBlackWhite(2),
		bakerypp.NewPeterson(2),
		bakerypp.NewSzymanski(2),
		bakerypp.NewTournament(2),
		bakerypp.NewTicket(2),
		bakerypp.NewTAS(2),
		bakerypp.NewTTAS(2),
	}
	names := map[string]bool{}
	for _, l := range locks {
		names[l.Name()] = true
		var wg sync.WaitGroup
		shared := 0
		for pid := 0; pid < 2; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					l.Lock(pid)
					shared++
					l.Unlock(pid)
				}
			}(pid)
		}
		wg.Wait()
		if shared != 1000 {
			t.Errorf("%s: shared = %d, want 1000", l.Name(), shared)
		}
	}
	for _, want := range []string{"bakery++", "bakery", "bakery-16bit", "black-white",
		"peterson-filter", "szymanski", "tournament", "ticket-faa", "tas", "ttas"} {
		if !names[want] {
			t.Errorf("missing lock name %q (have %v)", want, names)
		}
	}
}

func TestBakeryPPExposesInstrumentation(t *testing.T) {
	// Resets require the live tickets to touch M, which is
	// scheduling-dependent; retry a few rounds before declaring failure.
	l := bakerypp.New(3, 3)
	for round := 0; round < 5 && l.Resets() == 0; round++ {
		var wg sync.WaitGroup
		for pid := 0; pid < 3; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for i := 0; i < 5000; i++ {
					l.Lock(pid)
					l.Unlock(pid)
				}
			}(pid)
		}
		wg.Wait()
	}
	if l.Overflows() != 0 {
		t.Error("Bakery++ attempted an overflow")
	}
	if l.Resets() == 0 {
		t.Error("no resets at M=3 with 3 hot participants across 5 rounds")
	}
	if l.M() != 3 || l.N() != 3 {
		t.Error("accessors wrong")
	}
}

func TestCapacityForBits(t *testing.T) {
	if bakerypp.CapacityForBits(8) != 255 {
		t.Error("CapacityForBits(8) != 255")
	}
}

func TestLockerAdapter(t *testing.T) {
	l := bakerypp.New(1, 10)
	var locker sync.Locker = l.Locker(0)
	locker.Lock()
	locker.Unlock()
}

func TestGenericLockerAdapter(t *testing.T) {
	for _, l := range []bakerypp.Lock{
		bakerypp.NewClassicBakery(2),
		bakerypp.NewSzymanski(2),
		bakerypp.NewTicket(2),
	} {
		var wg sync.WaitGroup
		shared := 0
		for pid := 0; pid < 2; pid++ {
			locker := bakerypp.Locker(l, pid)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					locker.Lock()
					shared++
					locker.Unlock()
				}
			}()
		}
		wg.Wait()
		if shared != 1000 {
			t.Errorf("%s via Locker: shared = %d", l.Name(), shared)
		}
	}
}
