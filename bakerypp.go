// Package bakerypp implements Bakery++ — the register-overflow-free variant
// of Lamport's bakery algorithm from "Avoiding Register Overflow in the
// Bakery Algorithm" (Sayyadabdi & Sharifi, ICPP 2020) — together with the
// classic algorithm and the related bounded mutual-exclusion locks the
// paper compares against.
//
// # Quick start
//
//	lock := bakerypp.New(4, bakerypp.CapacityForBits(16)) // 4 workers, 16-bit tickets
//	...
//	lock.Lock(pid)
//	// critical section
//	lock.Unlock(pid)
//
// Participants are addressed by id in [0, N); each id must be driven by at
// most one goroutine at a time — the paper's model of N sequential
// processes. Bakery++ guarantees:
//
//   - mutual exclusion and first-come-first-served entry (like Bakery);
//   - no participant ever writes another participant's registers;
//   - no reliance on atomic read-modify-write operations; and
//   - no ticket register ever needs to hold a value above the chosen
//     capacity M — the paper's contribution (its Section 6.1 theorem).
//
// The repository also contains the verification and measurement machinery
// used to reproduce the paper: a guarded-command specification language
// (internal/gcl), an explicit-state model checker standing in for TLC
// (internal/mc), a controlled-interleaving simulator (internal/sched), and
// the experiment harness behind EXPERIMENTS.md (internal/harness); see the
// cmd/ tools to drive them.
package bakerypp

import (
	"sync"

	"bakerypp/internal/algorithms"
	"bakerypp/internal/core"
)

// Lock is a mutual-exclusion lock for a fixed set of participants addressed
// by id. All constructors in this package return implementations of it.
type Lock = algorithms.Lock

// BakeryPP is the Bakery++ lock; see New.
type BakeryPP = core.BakeryPP

// CapacityForBits returns the ticket capacity M of a b-bit register
// (2^b - 1).
func CapacityForBits(bits int) int64 { return core.CapacityForBits(bits) }

// New returns a Bakery++ lock for n participants whose ticket registers
// hold values up to m (m >= 1). It never attempts to store a value above m.
func New(n int, m int64) *BakeryPP { return core.New(n, m) }

// NewForBits returns a Bakery++ lock with bits-wide ticket registers.
func NewForBits(n, bits int) *BakeryPP { return core.NewForBits(n, bits) }

// Instrumented is implemented by locks that count register-overflow
// attempts (the Bakery++ lock, where the count is provably always zero, and
// classic Bakery on emulated fixed-width registers, where it is not).
type Instrumented interface {
	Overflows() uint64
}

// NewClassicBakery returns Lamport's original bakery algorithm on idealised
// unbounded registers (64-bit integers in practice). Under sustained
// contention its tickets grow without bound; on real fixed-width registers
// it eventually overflows and loses mutual exclusion — the problem Bakery++
// removes. Use NewClassicBakeryForBits to observe the failure.
func NewClassicBakery(n int) Lock { return algorithms.NewBakery(n) }

// NewClassicBakeryForBits returns classic Bakery on emulated bits-wide
// registers that silently wrap on overflow, reproducing the Section 3
// malfunction.
func NewClassicBakeryForBits(n, bits int) Lock { return algorithms.NewBakeryForBits(n, bits) }

// NewBlackWhite returns Taubenfeld's Black-White Bakery lock (bounded by N
// via a shared colour bit; not single-writer).
func NewBlackWhite(n int) Lock { return algorithms.NewBlackWhite(n) }

// NewPeterson returns the N-process Peterson filter lock (bounded; not
// FCFS; victim registers are multi-writer).
func NewPeterson(n int) Lock { return algorithms.NewPeterson(n) }

// NewSzymanski returns Szymanski's FCFS lock (bounded 5-valued flags).
func NewSzymanski(n int) Lock { return algorithms.NewSzymanski(n) }

// NewTournament returns a tournament tree of two-process Peterson locks
// (O(log N) entry; not FCFS).
func NewTournament(n int) Lock { return algorithms.NewTournament(n) }

// NewTicket returns a fetch-and-add ticket lock — a hardware
// read-modify-write baseline, not a "true" mutual-exclusion algorithm in
// the paper's sense.
func NewTicket(n int) Lock { return algorithms.NewTicket(n) }

// NewTAS and NewTTAS return test-and-set spinlock baselines.
func NewTAS(n int) Lock { return algorithms.NewTAS(n) }

// NewTTAS returns the test-and-test-and-set spinlock baseline.
func NewTTAS(n int) Lock { return algorithms.NewTTAS(n) }

// Locker adapts one participant slot of any Lock to the standard
// sync.Locker interface, so these algorithms can guard anything a
// sync.Mutex can (including sync.Cond).
func Locker(l Lock, pid int) sync.Locker { return pidLocker{l, pid} }

type pidLocker struct {
	l   Lock
	pid int
}

func (pl pidLocker) Lock()   { pl.l.Lock(pl.pid) }
func (pl pidLocker) Unlock() { pl.l.Unlock(pl.pid) }
