package bakerypp

// Documentation link check: every relative markdown link in README.md and
// docs/*.md must resolve to an existing file, and every anchored link to
// a heading that actually exists in the target document. Run by the CI
// docs job so the documentation cannot silently rot as files move.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// linkRE matches inline markdown links [text](target); images and
// reference-style links are out of scope (the docs do not use them).
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// headingRE matches ATX headings, whose GitHub anchor slugs the checker
// reproduces.
var headingRE = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

func TestDocsLinks(t *testing.T) {
	files := []string{"README.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(files) < 2 {
		t.Fatalf("suspiciously few documentation files: %v", files)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; not checked offline
			}
			path, anchor, _ := strings.Cut(target, "#")
			if path == "" {
				// Same-document anchor.
				if !hasAnchor(string(data), anchor) {
					t.Errorf("%s: anchor %q not found in the same document", file, target)
				}
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), path)
			info, err := os.Stat(resolved)
			if err != nil {
				t.Errorf("%s: link target %q does not exist (resolved %q)", file, target, resolved)
				continue
			}
			if anchor == "" {
				continue
			}
			if info.IsDir() || !strings.HasSuffix(resolved, ".md") {
				t.Errorf("%s: anchored link %q into a non-markdown target", file, target)
				continue
			}
			tdata, err := os.ReadFile(resolved)
			if err != nil {
				t.Fatal(err)
			}
			if !hasAnchor(string(tdata), anchor) {
				t.Errorf("%s: anchor %q not found in %s", file, target, resolved)
			}
		}
	}
}

// hasAnchor reports whether the document has a heading whose GitHub slug
// equals the anchor.
func hasAnchor(doc, anchor string) bool {
	for _, h := range headingRE.FindAllStringSubmatch(doc, -1) {
		if slugify(h[1]) == anchor {
			return true
		}
	}
	return false
}

// slugify reproduces GitHub's heading-to-anchor rule closely enough for
// these docs: lowercase, inline code markers stripped, punctuation other
// than hyphens and underscores dropped, spaces to hyphens.
func slugify(heading string) string {
	s := strings.ToLower(strings.ReplaceAll(heading, "`", ""))
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' || r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
