// Command bakerybench runs the repository's experiment suite (E1–E11 of
// DESIGN.md) and prints the tables recorded in EXPERIMENTS.md.
//
//	bakerybench               # run everything
//	bakerybench -run E2,E9    # selected experiments
//	bakerybench -list         # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bakerypp/internal/harness"
)

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		workers = flag.Int("workers", 0, "parallel model-checking goroutines (0 = sequential, -1 = GOMAXPROCS; FCFS/refinement checks stay sequential)")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}
	ids := strings.Split(*run, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	if err := harness.RunExperiments(os.Stdout, ids, harness.ExpConfig{MCWorkers: *workers}); err != nil {
		fmt.Fprintln(os.Stderr, "bakerybench:", err)
		os.Exit(1)
	}
}
