// Command bakerybench runs the repository's experiment suite (E1–E21; see
// docs/experiments.md for the catalogue), or — with -sweep, -des or
// -scenario — a deterministic contention sweep or lock-service scenario.
//
//	bakerybench               # run every experiment
//	bakerybench -run E2,E9    # selected experiments
//	bakerybench -list         # list experiments
//	bakerybench -sweep        # 48-cell scenario grid in virtual time
//	bakerybench -sweep -sweep-workers 4 -sweep-seed 7
//	bakerybench -des                          # discrete-event sweep (12 cells)
//	bakerybench -des -latency jitter:2,5      # with a latency model
//	bakerybench -des -record sweep.deslog     # record the event log
//	bakerybench -scenario smoke               # lock-service scenario preset
//
// The sweeps and scenarios execute deterministically in virtual time, so
// their aggregated tables — including the printed fingerprints — are
// identical on any machine, at any GOMAXPROCS, and for any -sweep-workers
// value. The -des mode runs each cell as a single-threaded discrete-event
// loop (no goroutine herd) with latency-model-priced actions, reporting
// acquire-latency percentiles, wait histograms and reset timing; -scenario
// runs a simulated client fleet against sharded critical sections (see
// docs/scenarios.md and cmd/bakeryserve); a -record'ed log of either kind
// replays byte-identically with cmd/bakeryreplay.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bakerypp/internal/harness"
	"bakerypp/internal/mc"
	"bakerypp/internal/profiling"
	"bakerypp/internal/scenario"
)

// main delegates to runMain so that deferred cleanup (profile writing)
// happens before the process exits; os.Exit skips defers.
func main() {
	os.Exit(runMain())
}

func runMain() int {
	var (
		run      = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		workers  = flag.Int("workers", 0, "parallel model-checking goroutines (0 = sequential, -1 = GOMAXPROCS; FCFS/refinement checks stay sequential)")
		symmetry = flag.Bool("symmetry", false, "process-symmetry reduction for the safety-check experiments (specs declaring full symmetry explore one state per orbit; verdicts unchanged)")
		por      = flag.Bool("por", false, "ample-set partial-order reduction for the safety-check experiments (composes with -symmetry; verdicts unchanged)")
		store    = flag.String("store", "", "visited-set tier for the store-aware experiments (E17) and -bench-json: exact|compact[64|128]|bitstate, with ,spill and ,shadow modifiers; empty = experiment defaults")

		benchJSON  = flag.String("bench-json", "", "run the model-checking benchmark grid and write it as JSON to this path (e.g. BENCH_mc.json), instead of the experiment suite")
		benchSmall = flag.Bool("bench-small", false, "with -bench-json: run only the quick safety cells (the CI bench-compare gate's grid)")
		compare    = flag.String("compare", "", "with -bench-json: after the run, diff it against this older snapshot and exit nonzero on a states/sec regression past -compare-threshold or any verdict mismatch")
		compareThr = flag.Float64("compare-threshold", 0.7, "acceptable new/old states-per-second ratio for -compare (0.7 = fail on a >30% regression)")

		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")

		sweep        = flag.Bool("sweep", false, "run the deterministic contention sweep instead of the experiment suite")
		sweepWorkers = flag.Int("sweep-workers", 1, "sweep worker pool size (cells in parallel, -1 = GOMAXPROCS; the table is identical for any value)")
		sweepSeed    = flag.Int64("sweep-seed", 1, "base schedule seed for the sweep (two seeds run per cell: seed and seed+1)")
		sweepIters   = flag.Int("sweep-iters", 0, "critical sections per participant per cell run (0 = grid default)")
		sweepCSV     = flag.Bool("sweep-csv", false, "emit the sweep table as CSV")

		desMode = flag.Bool("des", false, "run the discrete-event contention sweep instead of the experiment suite (three seeds per cell: seed, seed+1, seed+2)")
		latency = flag.String("latency", "unit", "latency model for -des and -scenario: unit, fixed:<d>, jitter:<base>,<spread>, classes:<c>=<dist>;...")
		record  = flag.String("record", "", "with -des or -scenario: write the run's event log to this file (replay with bakeryreplay)")

		scenarioArg = flag.String("scenario", "", "run a lock-service scenario instead of the experiment suite: a preset name (bakeryserve -list) or a full spec; honours -sweep-workers, -sweep-seed, -latency and -record")
	)
	flag.Parse()

	prof, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bakerybench:", err)
		return 2
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "bakerybench: writing profile:", err)
		}
	}()

	var storeOpts *mc.StoreOptions
	if *store != "" {
		so, err := mc.ParseStoreSpec(*store)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bakerybench:", err)
			return 2
		}
		storeOpts = &so
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return 0
	}
	if *compare != "" && *benchJSON == "" {
		fmt.Fprintln(os.Stderr, "bakerybench: -compare needs -bench-json (the fresh snapshot to diff against the old one)")
		return 2
	}
	if *benchJSON != "" {
		cfg := harness.ExpConfig{MCWorkers: *workers, Store: storeOpts}
		var rep *harness.MCBenchReport
		var err error
		if *benchSmall {
			rep, err = harness.RunMCBenchSmall(cfg)
		} else {
			rep, err = harness.RunMCBench(cfg)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bakerybench:", err)
			return 1
		}
		if err := harness.WriteBenchJSON(*benchJSON, rep); err != nil {
			fmt.Fprintln(os.Stderr, "bakerybench:", err)
			return 1
		}
		for _, r := range rep.Records {
			fmt.Printf("%-28s %9d states  %12.0f states/s  %8.3fs  %s\n",
				r.Name, r.States, r.StatesPerSec, r.WallSeconds, r.Verdict)
		}
		fmt.Printf("wrote %d records to %s\n", len(rep.Records), *benchJSON)
		if *compare != "" {
			old, err := harness.ReadMCBenchJSON(*compare)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bakerybench:", err)
				return 1
			}
			cmp := harness.CompareMCBench(old, rep, *compareThr)
			fmt.Printf("comparison against %s (threshold %.2f):\n%s", *compare, *compareThr, cmp)
			if dropped := cmp.DroppedRows(); len(dropped) > 0 {
				fmt.Fprintf(os.Stderr, "bakerybench: warning: %d row(s) of %s were not produced by this run and go unguarded: %s\n",
					len(dropped), *compare, strings.Join(dropped, ", "))
			}
			if cmp.Failed() {
				fmt.Fprintln(os.Stderr, "bakerybench: states/sec regression or verdict mismatch against", *compare)
				return 1
			}
		}
		return 0
	}
	if *scenarioArg != "" {
		spec, err := harness.ResolveScenario(*scenarioArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bakerybench:", err)
			return 2
		}
		opts := scenario.Options{Seed: *sweepSeed, Workers: *sweepWorkers, Latency: *latency}
		var logFile *os.File
		if *record != "" {
			f, err := os.Create(*record)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bakerybench:", err)
				return 1
			}
			logFile = f
			opts.Record = f
		}
		res, err := scenario.Run(spec, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bakerybench:", err)
			return 1
		}
		for _, tb := range res.Tables() {
			if *sweepCSV {
				fmt.Print(tb.CSV())
			} else {
				fmt.Println(tb)
			}
		}
		fmt.Printf("fingerprint: %s\n", res.Fingerprint())
		if logFile != nil {
			if err := logFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "bakerybench:", err)
				return 1
			}
			fmt.Printf("recorded event log: %s\n", *record)
		}
		return 0
	}
	if *desMode {
		cfg := harness.DefaultDESSweep()
		cfg.Workers = *sweepWorkers
		cfg.Latency = *latency
		cfg.Seeds = []int64{*sweepSeed, *sweepSeed + 1, *sweepSeed + 2}
		if *sweepIters > 0 {
			cfg.Iters = *sweepIters
		}
		var logFile *os.File
		if *record != "" {
			f, err := os.Create(*record)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bakerybench:", err)
				return 1
			}
			logFile = f
			cfg.Record = f
		}
		res, err := harness.RunDESSweep(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bakerybench:", err)
			return 1
		}
		tb := res.Table()
		if *sweepCSV {
			fmt.Print(tb.CSV())
		} else {
			fmt.Println(tb)
		}
		fmt.Printf("cells: %d  fingerprint: %s\n", len(res.Cells), tb.Fingerprint())
		if logFile != nil {
			if err := logFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "bakerybench:", err)
				return 1
			}
			fmt.Printf("recorded event log: %s\n", *record)
		}
		return 0
	}
	if *sweep {
		cfg := harness.DefaultSweep()
		cfg.Workers = *sweepWorkers
		cfg.Seeds = []int64{*sweepSeed, *sweepSeed + 1}
		if *sweepIters > 0 {
			cfg.Iters = *sweepIters
		}
		res, err := harness.RunSweep(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bakerybench:", err)
			return 1
		}
		tb := res.Table()
		if *sweepCSV {
			fmt.Print(tb.CSV())
		} else {
			fmt.Println(tb)
		}
		fmt.Printf("cells: %d  fingerprint: %s\n", len(res.Cells), tb.Fingerprint())
		return 0
	}
	ids := strings.Split(*run, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	cfg := harness.ExpConfig{MCWorkers: *workers, SweepWorkers: *sweepWorkers, Symmetry: *symmetry, POR: *por, Store: storeOpts}
	if err := harness.RunExperiments(os.Stdout, ids, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bakerybench:", err)
		return 1
	}
	return 0
}
