// Command bakeryserve runs a lock-service scenario: an open-loop fleet
// of simulated clients — heterogeneous classes with their own arrival
// processes, hold times and latency objectives — contending for sharded
// critical sections arbitrated by a bakery-family algorithm on the
// discrete-event kernel. No goroutine herd: a million simulated clients
// is a normal run.
//
//	bakeryserve -list                      # the preset scenarios
//	bakeryserve -scenario smoke            # run a preset
//	bakeryserve -scenario fleet1m -workers -1
//	bakeryserve -scenario 'name=my;algo=bakerypp;shards=8;n=4;m=64;clients=50000;class=a/1/poisson:30/fixed:4/100'
//	bakeryserve -scenario smoke -record run.scnlog   # replay with bakeryreplay
//
// The report — per-class acquire-latency percentiles and SLO
// attainment, Jain fairness across classes, overflow/reset and FCFS
// accounting — is deterministic: byte-identical for any -workers value
// and GOMAXPROCS, and a -record'ed event log replays bit-identically
// through cmd/bakeryreplay.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bakerypp/internal/harness"
	"bakerypp/internal/scenario"
)

func main() {
	os.Exit(runMain())
}

func runMain() int {
	var (
		spec    = flag.String("scenario", "smoke", "scenario to run: a preset name (see -list) or a full spec (name=...;algo=...;shards=...;n=...;m=...;clients=...;class=...)")
		list    = flag.Bool("list", false, "list the preset scenarios and exit")
		seed    = flag.Int64("seed", 1, "base seed for every random stream of the run")
		workers = flag.Int("workers", 0, "shard worker pool size (0 = sequential, -1 = GOMAXPROCS; the report is identical for any value)")
		latency = flag.String("latency", "unit", "latency model pricing worker protocol actions: unit, fixed:<d>, jitter:<base>,<spread>, classes:<c>=<dist>;...")
		record  = flag.String("record", "", "write the run's event log to this file (replay with bakeryreplay)")
		csv     = flag.Bool("csv", false, "emit the report tables as CSV")
	)
	flag.Parse()

	if *list {
		for _, name := range harness.ScenarioPresets() {
			s, err := harness.ResolveScenario(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bakeryserve:", err)
				return 1
			}
			fmt.Printf("%-10s %s\n", name, s.String())
		}
		return 0
	}

	s, err := harness.ResolveScenario(*spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bakeryserve:", err)
		return 2
	}
	opts := scenario.Options{Seed: *seed, Workers: *workers, Latency: *latency}
	var logFile *os.File
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bakeryserve:", err)
			return 1
		}
		logFile = f
		opts.Record = f
	}
	start := time.Now()
	res, err := scenario.Run(s, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bakeryserve:", err)
		return 1
	}
	wall := time.Since(start)
	for _, tb := range res.Tables() {
		if *csv {
			fmt.Print(tb.CSV())
		} else {
			fmt.Println(tb)
		}
	}
	fmt.Printf("fingerprint: %s\n", res.Fingerprint())
	// Wall-clock facts are honest non-determinism: they go to stderr so
	// stdout stays byte-identical across machines and worker counts.
	fmt.Fprintf(os.Stderr, "bakeryserve: %d events in %.2fs (%.0f events/s)\n",
		res.Events, wall.Seconds(), float64(res.Events)/wall.Seconds())
	if logFile != nil {
		if err := logFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bakeryserve:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "bakeryserve: recorded event log: %s\n", *record)
	}
	return 0
}
