// Command bakeryreplay rebuilds the result table of a recorded
// discrete-event sweep from its event log alone — no re-simulation, just
// the same aggregation the live run used over the recorded streams — and
// verifies it is bit-identical to the run that produced the log.
//
//	bakerybench -des -record sweep.deslog
//	bakeryreplay sweep.deslog
//
// The replayed table's fingerprint is compared against the one stored in
// the log's trailer; a mismatch (a truncated, tampered or
// version-skewed log) exits nonzero. Because the recorded log itself is
// byte-identical for any -sweep-workers value and GOMAXPROCS, record
// and replay can happen on different machines.
package main

import (
	"flag"
	"fmt"
	"os"

	"bakerypp/internal/harness"
)

func main() {
	var (
		csv   = flag.Bool("csv", false, "emit the replayed table as CSV")
		quiet = flag.Bool("q", false, "suppress the table; print only the verdict line")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bakeryreplay [-csv] [-q] <file.deslog>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bakeryreplay:", err)
		os.Exit(1)
	}
	defer f.Close()

	rep, err := harness.ReplayDESLog(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bakeryreplay:", err)
		os.Exit(1)
	}
	if !*quiet {
		if *csv {
			fmt.Print(rep.Table.CSV())
		} else {
			fmt.Println(rep.Table)
		}
	}
	fmt.Printf("fingerprint: %s\n", rep.Fingerprint)
	if !rep.OK() {
		fmt.Fprintf(os.Stderr, "bakeryreplay: REPLAY MISMATCH — recorded fingerprint %s, replayed %s\n",
			rep.Recorded, rep.Fingerprint)
		os.Exit(1)
	}
	fmt.Println("replay OK: table is bit-identical to the recorded run")
}
