// Command bakeryreplay rebuilds the result tables of a recorded run from
// its event log alone — no re-simulation, just the same aggregation the
// live run used over the recorded streams — and verifies they are
// bit-identical to the run that produced the log. It handles both log
// kinds the repository records:
//
//	bakerybench -des -record sweep.deslog        # discrete-event sweep
//	bakeryreplay sweep.deslog
//
//	bakeryserve -scenario smoke -record run.scnlog   # lock-service scenario
//	bakeryreplay run.scnlog
//
// The file's header line names its kind ("des-sweep" or "scenario") and
// bakeryreplay dispatches on it. The replayed fingerprint is compared
// against the one stored in the log's trailer; a mismatch (a truncated,
// tampered or version-skewed log) exits nonzero. Because the recorded
// log itself is byte-identical for any worker count and GOMAXPROCS,
// record and replay can happen on different machines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"bakerypp/internal/harness"
	"bakerypp/internal/scenario"
)

func main() {
	os.Exit(runMain())
}

func runMain() int {
	var (
		csv   = flag.Bool("csv", false, "emit the replayed tables as CSV")
		quiet = flag.Bool("q", false, "suppress the tables; print only the verdict line")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bakeryreplay [-csv] [-q] <file.deslog|file.scnlog>")
		return 2
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bakeryreplay:", err)
		return 1
	}
	defer f.Close()

	kind, err := sniffKind(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bakeryreplay:", err)
		return 1
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		fmt.Fprintln(os.Stderr, "bakeryreplay:", err)
		return 1
	}

	switch kind {
	case "des-sweep":
		rep, err := harness.ReplayDESLog(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bakeryreplay:", err)
			return 1
		}
		if !*quiet {
			if *csv {
				fmt.Print(rep.Table.CSV())
			} else {
				fmt.Println(rep.Table)
			}
		}
		return verdict(rep.Fingerprint, rep.Recorded, rep.OK())
	case scenario.LogKind:
		rep, err := scenario.ReplayLog(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bakeryreplay:", err)
			return 1
		}
		if !*quiet {
			for _, tb := range rep.Result.Tables() {
				if *csv {
					fmt.Print(tb.CSV())
				} else {
					fmt.Println(tb)
				}
			}
		}
		return verdict(rep.Fingerprint, rep.Recorded, rep.OK())
	default:
		fmt.Fprintf(os.Stderr, "bakeryreplay: unknown log kind %q (want \"des-sweep\" or %q)\n", kind, scenario.LogKind)
		return 1
	}
}

// sniffKind reads the log's first line — the JSON header every log kind
// starts with — and returns its "kind" field so the replay can dispatch.
func sniffKind(f *os.File) (string, error) {
	first, err := bufio.NewReader(f).ReadBytes('\n')
	if err != nil && len(first) == 0 {
		return "", fmt.Errorf("%s: empty or unreadable log: %w", f.Name(), err)
	}
	var hdr struct {
		Kind string `json:"kind"`
	}
	if json.Unmarshal(first, &hdr) != nil || hdr.Kind == "" {
		return "", fmt.Errorf("%s: first line is not a recognisable log header", f.Name())
	}
	return hdr.Kind, nil
}

func verdict(replayed, recorded string, ok bool) int {
	fmt.Printf("fingerprint: %s\n", replayed)
	if !ok {
		fmt.Fprintf(os.Stderr, "bakeryreplay: REPLAY MISMATCH — recorded fingerprint %s, replayed %s\n",
			recorded, replayed)
		return 1
	}
	fmt.Println("replay OK: tables are bit-identical to the recorded run")
	return 0
}
