// Command bakerysim runs long controlled interleavings of the
// specifications and reports operational statistics: ticket growth,
// overflow events, Bakery++ resets, FCFS inversions, fairness, and —
// in -wrap mode — the mutual-exclusion violations that register wrap
// inflicts on classic Bakery (paper Section 3).
//
// Examples:
//
//	bakerysim -algo bakery -n 3 -m 7 -wrap -steps 500000
//	bakerysim -algo bakerypp -n 3 -m 7 -wrap -steps 500000
//	bakerysim -algo bakerypp -n 3 -m 2 -sched biased -slow 2 -weight 0.001
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bakerypp/internal/gcl"
	"bakerypp/internal/sched"
	"bakerypp/internal/specs"
	"bakerypp/internal/stats"
)

func main() {
	var (
		algo      = flag.String("algo", "bakerypp", "algorithm: "+strings.Join(specs.Names(), ", "))
		n         = flag.Int("n", 3, "number of processes")
		m         = flag.Int("m", 7, "register capacity M")
		fine      = flag.Bool("fine", false, "fine-grained doorway")
		steps     = flag.Int64("steps", 500000, "actions to execute")
		seed      = flag.Int64("seed", 1, "random seed")
		wrap      = flag.Bool("wrap", false, "real b-bit registers: stores wrap at M")
		schedName = flag.String("sched", "random", "scheduler: random, rr, biased")
		slowPid   = flag.Int("slow", -1, "biased scheduler: slow process id")
		weight    = flag.Float64("weight", 0.01, "biased scheduler: slow process weight")
		crashRate = flag.Float64("crashrate", 0, "per-step crash probability")
		series    = flag.Bool("series", false, "print a sparkline of the live ticket value over the run")
	)
	flag.Parse()

	p, err := specs.Get(*algo, specs.Config{N: *n, M: *m, Fine: *fine})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var s sched.Scheduler
	switch *schedName {
	case "random":
		s = sched.Random{}
	case "rr":
		s = sched.RoundRobin{}
	case "biased":
		if *slowPid < 0 || *slowPid >= *n {
			fmt.Fprintln(os.Stderr, "bakerysim: biased scheduler needs -slow pid in range")
			os.Exit(2)
		}
		s = sched.Biased{Slow: map[int]bool{*slowPid: true}, Weight: *weight}
	default:
		fmt.Fprintf(os.Stderr, "bakerysim: unknown scheduler %q\n", *schedName)
		os.Exit(2)
	}
	mode := gcl.ModeUnbounded
	if *wrap {
		mode = gcl.ModeWrap
	}
	var sampleEvery int64
	if *series {
		sampleEvery = *steps / 800
		if sampleEvery < 1 {
			sampleEvery = 1
		}
	}
	st, err := sched.Run(p, sched.Options{
		Steps: *steps, Seed: *seed, Sched: s, Mode: mode, CrashRate: *crashRate,
		SampleEvery: sampleEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s: n=%d m=%d mode=%s sched=%s steps=%d\n", p.Name, *n, *m, mode, s.Name(), st.Steps)
	if st.Deadlocked {
		fmt.Printf("DEADLOCK at step %d\n", st.DeadlockStep)
	}
	fmt.Printf("cs entries:        %d (per process %v)\n", st.TotalCS(), st.CSEntries)
	fmt.Printf("fairness ratio:    %.3f\n", st.FairnessRatio())
	fmt.Printf("max ticket:        %d\n", st.MaxTicket)
	fmt.Printf("overflow attempts: %d (first at step %d)\n", st.Overflows, st.FirstOverflowStep)
	fmt.Printf("mutex violations:  %d (first at step %d)\n", st.MutexViolations, st.FirstViolationStep)
	fmt.Printf("fcfs inversions:   %d\n", st.FCFSInversions)
	var resets, crashes int64
	for pid := range st.Resets {
		resets += st.Resets[pid]
		crashes += st.Crashes[pid]
	}
	fmt.Printf("bakery++ resets:   %d\n", resets)
	if *crashRate > 0 {
		fmt.Printf("crashes injected:  %d\n", crashes)
	}
	if *series && len(st.TicketSeries) > 0 {
		fmt.Printf("ticket series:     %s\n", stats.Sparkline(st.TicketSeries, 72))
	}
	// The run identity: every scheduler (including random and biased)
	// draws from the repository-pinned seeded source, so the same flags
	// reproduce this value on any machine, GOMAXPROCS, and Go release.
	fmt.Printf("run fingerprint:   %s\n", st.Fingerprint())
	if st.MutexViolations > 0 {
		os.Exit(1)
	}
}
