// Command bakerymc model-checks the repository's mutual-exclusion
// specifications — the reproduction of the paper's TLC verification.
//
// Examples:
//
//	bakerymc -algo bakerypp -n 3 -m 3               # verify Bakery++
//	bakerymc -algo bakery -n 2 -m 3 -trace          # exhibit the overflow
//	bakerymc -algo modbakery -n 2 -m 2 -trace       # modulo strawman breaks
//	bakerymc -algo bakerypp -n 2 -m 2 -crash        # with crash-restart
//	bakerymc -algo bakerypp -n 3 -m 2 -starve 2     # Section 6.3 livelock
//	bakerymc -algo bakerypp -n 5 -m 2 -symmetry -por -workers -1  # composed reductions
//	bakerymc -algo bakerypp -n 6 -m 2 -symmetry -por -store compact  # beyond-RAM, probabilistic
//	bakerymc -algo bakerypp -n 4 -m 2 -store exact,spill             # exact with mmap spill
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bakerypp/internal/gcl"
	"bakerypp/internal/mc"
	"bakerypp/internal/profiling"
	"bakerypp/internal/specs"
)

// main delegates to run so that deferred cleanup (profile writing) happens
// before the process exits; os.Exit skips defers.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		algo      = flag.String("algo", "bakerypp", "algorithm: "+strings.Join(specs.Names(), ", "))
		n         = flag.Int("n", 2, "number of processes")
		m         = flag.Int("m", 4, "register capacity M")
		fine      = flag.Bool("fine", false, "fine-grained doorway (one register read per step)")
		noGate    = flag.Bool("nogate", false, "bakery++ without the L1 gate (ablation)")
		eqCheck   = flag.Bool("eqcheck", false, "bakery++ with = M instead of >= M (ablation)")
		split     = flag.Bool("splitreset", false, "bakery++ with two-step reset (ablation)")
		crash     = flag.Bool("crash", false, "add crash/restart transitions (paper conditions 3-4)")
		deadlock  = flag.Bool("deadlock", false, "also detect deadlocks")
		maxStates = flag.Int("maxstates", 0, "state bound (0 = default)")
		workers   = flag.Int("workers", 0, "parallel exploration goroutines for check/graph/starve modes (0 = sequential, -1 = GOMAXPROCS; -fcfs always runs sequentially)")
		symmetry  = flag.Bool("symmetry", false, "process-symmetry reduction: explore one state per permutation orbit (specs declaring full symmetry only; deterministic for any -workers; composes with -starve/-fcfs — cycle analyses run orbit-aware on the quotient graph, FCFS canonicalizes the non-pinned pids)")
		por       = flag.Bool("por", false, "ample-set partial-order reduction: compress independent local actions instead of interleaving them (composes with -symmetry; deterministic for any -workers; cycle-sensitive -starve/-fcfs and -crash runs fall back to the full interleaving, see docs/model-checking.md)")
		trace     = flag.Bool("trace", false, "print the counterexample trace, if any")
		starve    = flag.Int("starve", -1, "search for a Section 6.3 livelock pinning this pid at l1")
		fcfs      = flag.String("fcfs", "", "check FCFS for a pid pair, e.g. -fcfs 0,1")
		store     = flag.String("store", "exact", "visited-set tier: exact|compact[64|128]|bitstate, with ,spill and ,shadow modifiers (e.g. compact, exact,spill, compact,spill). Lossy modes print a probabilistic-verdict banner and are refused for -starve/-fcfs")
		storeSeed = flag.Uint64("store-seed", 0, "hash seed for the lossy store modes (runs are deterministic per seed for any -workers)")
		listing   = flag.Bool("listing", false, "print the algorithm's control-flow skeleton and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	prof, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bakerymc: %v\n", err)
		return 2
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "bakerymc: writing profile: %v\n", err)
		}
	}()

	storeOpts, err := mc.ParseStoreSpec(*store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bakerymc: %v\n", err)
		return 2
	}
	storeOpts.Seed = *storeSeed

	p, err := specs.Get(*algo, specs.Config{
		N: *n, M: *m, Fine: *fine, NoGate: *noGate, EqCheck: *eqCheck, SplitReset: *split,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	opts := mc.Options{
		Invariants: []mc.Invariant{mc.Mutex(), mc.NoOverflow()},
		Crash:      *crash,
		Deadlock:   *deadlock,
		MaxStates:  *maxStates,
		Workers:    *workers,
		Symmetry:   *symmetry,
		POR:        *por,
		Store:      storeOpts,
	}
	if *por && (*fcfs != "" || *starve >= 0) {
		fmt.Fprintln(os.Stderr, "bakerymc: note: -por does not apply to -starve/-fcfs (cycle- and identity-sensitive properties need every interleaving; -symmetry composes)")
	}

	if *listing {
		fmt.Print(p.Listing())
		return 0
	}

	if *fcfs != "" {
		var first, second int
		if _, err := fmt.Sscanf(*fcfs, "%d,%d", &first, &second); err != nil {
			fmt.Fprintf(os.Stderr, "bakerymc: -fcfs wants \"first,second\", got %q\n", *fcfs)
			return 2
		}
		if first < 0 || first >= p.N || second < 0 || second >= p.N {
			fmt.Fprintf(os.Stderr, "bakerymc: -fcfs pair (%d,%d) out of range: pids must lie in [0,%d) for -n %d\n",
				first, second, p.N, p.N)
			return 2
		}
		if first == second {
			fmt.Fprintf(os.Stderr, "bakerymc: -fcfs pair (%d,%d) names the same process twice; FCFS relates two distinct processes\n",
				first, second)
			return 2
		}
		res, err := mc.CheckFCFS(p, first, second, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bakerymc: %v\n", err)
			return 2
		}
		fmt.Println(res.String())
		if !res.Holds {
			if *trace {
				fmt.Printf("witness:\n%s", res.Witness.String())
			}
			return 1
		}
		return 0
	}

	if *starve >= 0 {
		if *starve >= p.N {
			fmt.Fprintf(os.Stderr, "bakerymc: -starve pid %d out of range: pids lie in [0,%d) for -n %d\n",
				*starve, p.N, p.N)
			return 2
		}
		live := specs.LivenessOf(p)
		if live.StarveAt == "" {
			fmt.Fprintf(os.Stderr, "bakerymc: %s declares no gate label to starve at\n", p.Name)
			return 2
		}
		g, err := mc.BuildGraph(p, mc.Options{MaxStates: opts.MaxStates, Workers: opts.Workers, Symmetry: opts.Symmetry, Store: opts.Store})
		if err != nil {
			if opts.Store.Lossy() {
				fmt.Fprintf(os.Stderr, "bakerymc: %v\n", err)
				return 2
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		graphKind := "graph"
		if g.Quotient() {
			graphKind = "quotient graph"
		}
		l1 := p.LabelIndex(live.StarveAt)
		var fast []int
		for pid := 0; pid < p.N; pid++ {
			if pid != *starve {
				fast = append(fast, pid)
			}
		}
		rep := g.FindStarvation(func(pr *gcl.Prog, s gcl.State) bool {
			return pr.PC(s, *starve) == l1
		}, fast)
		if rep == nil {
			fmt.Printf("%s: no livelock cycle pins process %d at %s (%s: %d states)\n",
				p.Name, *starve, live.StarveAt, graphKind, g.NumStates())
			return 0
		}
		how := ""
		if rep.Quotient {
			how = fmt.Sprintf(" (orbit-level search on a %d-state quotient; lasso replayed and re-verified concretely)", g.NumStates())
		}
		fmt.Printf("%s: livelock cycle found — %d states keep process %d at %s; per-process moves %v; entry depth %d%s\n",
			p.Name, rep.ComponentSize, *starve, live.StarveAt, rep.MovesByPid, rep.EntryLen, how)
		if *trace {
			fmt.Printf("path into the cycle:\n%s", rep.Entry.String())
			if len(rep.Cycle) > 0 {
				cyc := mc.Trace{Prog: p, Init: rep.Entry.Init, Steps: rep.Cycle}
				if n := len(rep.Entry.Steps); n > 0 {
					cyc.Init = rep.Entry.Steps[n-1].State
				}
				fmt.Printf("verified concrete cycle:\n%s", cyc.String())
			}
		}
		return 0
	}

	res := mc.Check(p, opts)
	if *symmetry && !res.Symmetry {
		fmt.Fprintf(os.Stderr, "bakerymc: note: %s does not support symmetry reduction (declared asymmetric or too many processes); ran the full search\n", p.Name)
	}
	if *por && !res.POR {
		fmt.Fprintln(os.Stderr, "bakerymc: note: -por fell back to the full search (crash transitions make no action safely independent)")
	}
	fmt.Println(res.String())
	if banner := res.Store.Banner(); banner != "" {
		fmt.Println(banner)
		fmt.Printf("run fingerprint: %016x (stable per -store-seed for any -workers)\n", res.RunFingerprint())
	}
	if res.Violation != nil {
		if *trace {
			fmt.Printf("counterexample:\n%s", res.Violation.Trace.String())
		}
		return 1
	}
	if res.Deadlock != nil {
		if *trace {
			fmt.Printf("deadlock trace:\n%s", res.Deadlock.String())
		}
		return 1
	}
	return 0
}
