package sched

import (
	"testing"

	"bakerypp/internal/gcl"
	"bakerypp/internal/specs"
)

// Property-style sweep: across many seeds and schedulers, Bakery++ in wrap
// mode never attempts an overflow and never violates mutual exclusion,
// while classic Bakery in wrap mode eventually does both. One seed is an
// anecdote; a sweep is evidence.
func TestSeedSweepWrapSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep takes a couple of seconds")
	}
	const steps = 60000
	scheds := []Scheduler{Random{}, RoundRobin{}, Biased{Slow: map[int]bool{0: true}, Weight: 0.1}}
	bakeryBroke := 0
	for seed := int64(0); seed < 12; seed++ {
		for _, sd := range scheds {
			bpp := specs.BakeryPP(specs.Config{N: 3, M: 7})
			st, err := Run(bpp, Options{Steps: steps, Seed: seed, Sched: sd, Mode: gcl.ModeWrap})
			if err != nil {
				t.Fatal(err)
			}
			if st.Overflows != 0 || st.MutexViolations != 0 {
				t.Fatalf("seed %d sched %s: bakery++ overflows=%d violations=%d",
					seed, sd.Name(), st.Overflows, st.MutexViolations)
			}

			bak := specs.Bakery(specs.Config{N: 3, M: 7})
			st, err = Run(bak, Options{Steps: steps, Seed: seed, Sched: sd, Mode: gcl.ModeWrap})
			if err != nil {
				t.Fatal(err)
			}
			if st.MutexViolations > 0 {
				bakeryBroke++
			}
		}
	}
	if bakeryBroke == 0 {
		t.Error("classic bakery never violated across the sweep; wrap malfunction should appear")
	}
	t.Logf("classic bakery violated mutual exclusion in %d/36 sweep runs", bakeryBroke)
}

// FCFS inversions stay zero for the bakery family across seeds.
func TestSeedSweepFCFS(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep takes a second")
	}
	for seed := int64(0); seed < 8; seed++ {
		for _, p := range []*gcl.Prog{
			specs.Bakery(specs.Config{N: 3, M: 1 << 14}),
			specs.BakeryPP(specs.Config{N: 3, M: 5}),
			specs.BlackWhite(3),
		} {
			st, err := Run(p, Options{Steps: 50000, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if st.FCFSInversions != 0 {
				t.Errorf("seed %d: %s had %d FCFS inversions", seed, p.Name, st.FCFSInversions)
			}
		}
	}
}

// The safe-register specification also runs under the simulator: mutual
// exclusion and the ticket bound hold along long random walks, with the
// flicker branches genuinely taken.
func TestSafeSpecSimulation(t *testing.T) {
	p := specs.BakeryPPSafe(3, 3)
	st, err := Run(p, Options{Steps: 300000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.MutexViolations != 0 {
		t.Errorf("mutex violations: %d", st.MutexViolations)
	}
	if st.Overflows != 0 {
		t.Errorf("overflow attempts: %d", st.Overflows)
	}
	if int64(st.MaxTicket) > int64(p.M) {
		t.Errorf("ticket %d exceeds M=%d", st.MaxTicket, p.M)
	}
	if st.TotalCS() == 0 {
		t.Error("no progress")
	}
}

func BenchmarkRunBakeryPP(b *testing.B) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, Options{Steps: 20000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSafeSpec(b *testing.B) {
	p := specs.BakeryPPSafe(2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, Options{Steps: 20000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
