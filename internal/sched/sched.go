// Package sched executes gcl programs under controlled schedulers — the
// repository's instrument for the paper's operational claims: how fast
// tickets grow under sustained contention (Section 3's overflow scenario),
// how often Bakery++ resets near the register bound (Section 7's "price of
// guaranteeing that no overflows ever occur"), first-come-first-served
// behaviour, and what actually happens when classic Bakery's registers wrap
// (mutual-exclusion violations, observable and countable).
//
// Unlike the model checker, which explores all interleavings of a small
// configuration, the simulator walks one long interleaving of an arbitrary
// configuration, chosen by a pluggable scheduler: round-robin, seeded
// uniform random, or biased (the Section 6.3 "extremely slow process
// against two processes that are quite fast").
package sched

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"bakerypp/internal/gcl"
)

// xorshiftSource is the repository-owned rand.Source64 behind every
// simulation run: xorshift64* seeded through the splitmix64 finalizer.
// math/rand's default source is deterministic only by the informal Go 1
// compatibility promise; this one is pinned by this file, so a recorded
// fingerprint reproduces on any platform, GOMAXPROCS, and Go release.
type xorshiftSource struct{ s uint64 }

func (x *xorshiftSource) Seed(seed int64) {
	z := uint64(seed) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	x.s = z
}

func (x *xorshiftSource) Uint64() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s * 0x2545F4914F6CDD1D
}

func (x *xorshiftSource) Int63() int64 { return int64(x.Uint64() >> 1) }

// NewRNG returns the seeded random source simulation runs draw from.
// cmd/bakerysim routes -sched random/biased through this, which is what
// makes its printed fingerprint a portable run identity.
func NewRNG(seed int64) *rand.Rand {
	src := &xorshiftSource{}
	src.Seed(seed)
	return rand.New(src)
}

// Scheduler picks which enabled process steps next.
type Scheduler interface {
	Name() string
	// Pick chooses one element of enabled (non-empty, ascending pids from
	// a program with n processes in total).
	Pick(enabled []int, n int, step int64, rng *rand.Rand) int
}

// RoundRobin rotates priority among processes: at step k, the first enabled
// process at or after position k mod N runs (wrapping), where N is the
// program's process count.
type RoundRobin struct{}

// Name implements Scheduler.
func (RoundRobin) Name() string { return "round-robin" }

// Pick implements Scheduler. The cursor rotates over the full process
// count, not over the currently enabled pids: rotating on the largest
// enabled pid (as the seed implementation did) skews priority toward
// low-numbered processes whenever high-numbered ones are blocked, which is
// precisely the regime — processes stuck at Bakery++'s L1 gate — the
// round-robin scheduler exists to probe fairly.
func (RoundRobin) Pick(enabled []int, n int, step int64, _ *rand.Rand) int {
	want := int(step % int64(n))
	for _, pid := range enabled {
		if pid >= want {
			return pid
		}
	}
	return enabled[0]
}

// Random picks uniformly among enabled processes.
type Random struct{}

// Name implements Scheduler.
func (Random) Name() string { return "random" }

// Pick implements Scheduler.
func (Random) Pick(enabled []int, _ int, _ int64, rng *rand.Rand) int {
	return enabled[rng.Intn(len(enabled))]
}

// Biased gives each process in Slow a scheduling weight of Weight (< 1)
// relative to the fast processes' weight of 1 — the paper's slow-process
// scenario. Weight 0 freezes the slow processes entirely.
type Biased struct {
	Slow   map[int]bool
	Weight float64
}

// Name implements Scheduler.
func (b Biased) Name() string { return fmt.Sprintf("biased(w=%g)", b.Weight) }

// Pick implements Scheduler.
func (b Biased) Pick(enabled []int, _ int, _ int64, rng *rand.Rand) int {
	total := 0.0
	for _, pid := range enabled {
		if b.Slow[pid] {
			total += b.Weight
		} else {
			total += 1
		}
	}
	if total == 0 {
		return enabled[rng.Intn(len(enabled))]
	}
	x := rng.Float64() * total
	for _, pid := range enabled {
		w := 1.0
		if b.Slow[pid] {
			w = b.Weight
		}
		if x < w {
			return pid
		}
		x -= w
	}
	return enabled[len(enabled)-1]
}

// Options configures a simulation run.
type Options struct {
	// Steps is the number of actions to execute (required, > 0).
	Steps int64
	// Sched defaults to Random{}.
	Sched Scheduler
	// Seed seeds the run's random source; runs are deterministic given
	// (program, options).
	Seed int64
	// Mode is the store semantics: ModeUnbounded for idealised registers,
	// ModeWrap for real b-bit registers (capacity from the program's M).
	Mode gcl.Mode
	// CrashRate is the per-step probability that one eligible process
	// crash-restarts instead of a normal action being scheduled.
	CrashRate float64
	// CrashPids limits which processes may crash (all when empty).
	CrashPids []int
	// SampleEvery, when positive, records the maximum live ticket every
	// that many steps into Stats.TicketSeries — the data behind the
	// ticket-growth "figure" (classic Bakery: unbounded climb; Bakery++:
	// a sawtooth capped at M).
	SampleEvery int64
}

// Stats aggregates everything a run observed.
type Stats struct {
	Prog  string
	Steps int64
	// Deadlocked is set if the run halted early with no enabled process.
	Deadlocked   bool
	DeadlockStep int64

	// Per-process counters, indexed by pid.
	CSEntries   []int64
	Resets      []int64
	Doorways    []int64
	Crashes     []int64
	WaitSum     []int64 // total steps between "try" and cs entry
	WaitMax     []int64
	waitStarted []int64 // internal: step of pending "try", -1 if none

	// Overflow accounting.
	Overflows         int64
	FirstOverflowStep int64 // -1 if none

	// Mutex accounting (meaningful in ModeWrap, where wrapped tickets can
	// break the algorithm).
	MutexViolations    int64 // entries into a >=2-processes-in-cs condition
	FirstViolationStep int64 // -1 if none

	// FCFS accounting: an inversion is an entry to cs by process i while
	// some process j had completed its doorway before i even left ncs.
	FCFSInversions int64

	// MaxTicket is the largest value observed in the shared array
	// "number" (0 if the program has no such array).
	MaxTicket int32

	// TagVisits counts branch-tag occurrences ("try", "doorway-done",
	// "cs-enter", "cs-exit", "reset").
	TagVisits map[string]int64

	// TicketSeries holds the sampled maximum of the shared "number" array
	// (see Options.SampleEvery); empty when sampling is off or the
	// program has no ticket array.
	TicketSeries []int32
}

// Fingerprint returns a short stable hash of everything the run
// observed. Two runs fingerprint equal iff they collected identical
// statistics, so one printed line lets users check that a simulation
// reproduced — across reruns, GOMAXPROCS settings, and machines.
func (st *Stats) Fingerprint() string {
	h := fnv.New64a()
	put := func(format string, args ...any) {
		fmt.Fprintf(h, format, args...)
		h.Write([]byte{0})
	}
	put("%s/%d/%v/%d", st.Prog, st.Steps, st.Deadlocked, st.DeadlockStep)
	put("%v%v%v%v%v%v", st.CSEntries, st.Resets, st.Doorways, st.Crashes, st.WaitSum, st.WaitMax)
	put("%d/%d/%d/%d/%d/%d", st.Overflows, st.FirstOverflowStep,
		st.MutexViolations, st.FirstViolationStep, st.FCFSInversions, st.MaxTicket)
	tags := make([]string, 0, len(st.TagVisits))
	for tag := range st.TagVisits {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	for _, tag := range tags {
		put("%s=%d", tag, st.TagVisits[tag])
	}
	put("%v", st.TicketSeries)
	return fmt.Sprintf("%016x", h.Sum64())
}

// TotalCS returns the total number of critical-section entries.
func (st *Stats) TotalCS() int64 {
	var n int64
	for _, v := range st.CSEntries {
		n += v
	}
	return n
}

// FairnessRatio returns min/max of per-process CS entries (1 = perfectly
// fair, 0 = someone locked out). Returns 1 when nobody entered.
func (st *Stats) FairnessRatio() float64 {
	min, max := int64(-1), int64(0)
	for _, v := range st.CSEntries {
		if min == -1 || v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return 1
	}
	return float64(min) / float64(max)
}

// Run executes one interleaving of p and returns the collected statistics.
func Run(p *gcl.Prog, opts Options) (*Stats, error) {
	if opts.Steps <= 0 {
		return nil, fmt.Errorf("sched: Steps must be positive, got %d", opts.Steps)
	}
	if opts.Sched == nil {
		opts.Sched = Random{}
	}
	rng := NewRNG(opts.Seed)
	crashers := opts.CrashPids
	if opts.CrashRate > 0 && len(crashers) == 0 {
		crashers = make([]int, p.N)
		for pid := range crashers {
			crashers[pid] = pid
		}
	}

	st := &Stats{
		Prog:               p.Name,
		CSEntries:          make([]int64, p.N),
		Resets:             make([]int64, p.N),
		Doorways:           make([]int64, p.N),
		Crashes:            make([]int64, p.N),
		WaitSum:            make([]int64, p.N),
		WaitMax:            make([]int64, p.N),
		waitStarted:        make([]int64, p.N),
		FirstOverflowStep:  -1,
		FirstViolationStep: -1,
		TagVisits:          map[string]int64{},
	}
	for pid := range st.waitStarted {
		st.waitStarted[pid] = -1
	}
	hasNumber := false
	for _, name := range p.SharedNames() {
		if name == "number" {
			hasNumber = true
		}
	}
	hasCS := p.HasLabel("cs")
	// doorwayDone[pid] = step the pid completed its doorway, -1 otherwise.
	// tryStep[pid] = step the pid left ncs (started competing).
	doorwayDone := make([]int64, p.N)
	tryStep := make([]int64, p.N)
	for pid := range doorwayDone {
		doorwayDone[pid] = -1
		tryStep[pid] = -1
	}

	s := p.InitState()
	var enabled []int
	inCS := 0
	var succs []gcl.Succ
	for step := int64(0); step < opts.Steps; step++ {
		if opts.CrashRate > 0 && rng.Float64() < opts.CrashRate {
			pid := crashers[rng.Intn(len(crashers))]
			s = p.CrashSucc(s, pid)
			st.Crashes[pid]++
			st.Steps++
			// A crash aborts any pending attempt and doorway.
			tryStep[pid] = -1
			doorwayDone[pid] = -1
			st.waitStarted[pid] = -1
			if hasCS {
				inCS = p.CountAtLabel(s, "cs")
			}
			continue
		}
		enabled = enabled[:0]
		for pid := 0; pid < p.N; pid++ {
			if p.Enabled(s, pid) {
				enabled = append(enabled, pid)
			}
		}
		if len(enabled) == 0 {
			st.Deadlocked = true
			st.DeadlockStep = step
			break
		}
		pid := opts.Sched.Pick(enabled, p.N, step, rng)
		succs = p.Succs(s, pid, opts.Mode, succs[:0])
		sc := succs[rng.Intn(len(succs))]
		s = sc.State
		st.Steps++

		if sc.Overflow {
			st.Overflows++
			if st.FirstOverflowStep < 0 {
				st.FirstOverflowStep = step
			}
		}
		if sc.Tag != "" {
			st.TagVisits[sc.Tag]++
		}
		switch sc.Tag {
		case "try":
			tryStep[pid] = step
			st.waitStarted[pid] = step
		case "doorway-done":
			// Only the first doorway completion of an attempt counts;
			// algorithms whose announcement step repeats (Peterson's
			// filter levels) must not look "recently arrived" later.
			if doorwayDone[pid] < 0 {
				doorwayDone[pid] = step
				st.Doorways[pid]++
			}
		case "reset":
			st.Resets[pid]++
		case "cs-enter":
			st.CSEntries[pid]++
			// FCFS: j completed its doorway strictly before pid began
			// competing, yet pid enters first.
			for j := 0; j < p.N; j++ {
				if j != pid && doorwayDone[j] >= 0 && tryStep[pid] >= 0 &&
					doorwayDone[j] < tryStep[pid] {
					st.FCFSInversions++
				}
			}
			doorwayDone[pid] = -1
			if ws := st.waitStarted[pid]; ws >= 0 {
				w := step - ws
				st.WaitSum[pid] += w
				if w > st.WaitMax[pid] {
					st.WaitMax[pid] = w
				}
				st.waitStarted[pid] = -1
			}
		}
		if hasNumber {
			mt := p.MaxShared(s, "number")
			if mt > st.MaxTicket {
				st.MaxTicket = mt
			}
			if opts.SampleEvery > 0 && step%opts.SampleEvery == 0 {
				st.TicketSeries = append(st.TicketSeries, mt)
			}
		}
		if hasCS {
			now := p.CountAtLabel(s, "cs")
			if now >= 2 && inCS < 2 {
				st.MutexViolations++
				if st.FirstViolationStep < 0 {
					st.FirstViolationStep = step
				}
			}
			inCS = now
		}
	}
	return st, nil
}
