package sched

import (
	"math/rand"
	"testing"

	"bakerypp/internal/gcl"
	"bakerypp/internal/specs"
)

func TestRunValidation(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 2, M: 4})
	if _, err := Run(p, Options{}); err == nil {
		t.Error("Steps=0 accepted")
	}
}

// A healthy Bakery++ run: progress for everyone, tickets within M, no
// overflow attempts, no mutex trouble, resets occurring when M is tight.
func TestBakeryPPHealthyRun(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 3})
	st, err := Run(p, Options{Steps: 300000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadlocked {
		t.Fatalf("deadlocked at step %d", st.DeadlockStep)
	}
	if st.TotalCS() == 0 {
		t.Fatal("no critical-section entries in 300k steps")
	}
	for pid, n := range st.CSEntries {
		if n == 0 {
			t.Errorf("process %d never entered cs", pid)
		}
	}
	if st.Overflows != 0 {
		t.Errorf("Bakery++ attempted %d overflows", st.Overflows)
	}
	if int64(st.MaxTicket) > int64(p.M) {
		t.Errorf("ticket %d exceeds M=%d", st.MaxTicket, p.M)
	}
	if st.MutexViolations != 0 {
		t.Errorf("mutex violations: %d", st.MutexViolations)
	}
	var resets int64
	for _, r := range st.Resets {
		resets += r
	}
	if resets == 0 {
		t.Error("expected overflow resets with M=3 and 3 processes")
	}
	if st.FCFSInversions != 0 {
		t.Errorf("Bakery++ is FCFS; observed %d inversions", st.FCFSInversions)
	}
}

// Classic Bakery with ideal registers: correct, FCFS, but tickets grow past
// any bound under sustained contention (Lamport's remark quoted in
// Section 5: "if there is always at least one processor in the bakery ...
// arbitrarily large").
func TestBakeryTicketGrowthUnbounded(t *testing.T) {
	p := specs.Bakery(specs.Config{N: 3, M: 1 << 14})
	st, err := Run(p, Options{Steps: 400000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.MutexViolations != 0 {
		t.Error("ideal bakery violated mutex")
	}
	if st.FCFSInversions != 0 {
		t.Errorf("ideal bakery is FCFS; observed %d inversions", st.FCFSInversions)
	}
	if st.MaxTicket < 100 {
		t.Errorf("tickets should grow under contention; max = %d", st.MaxTicket)
	}
}

// E3 backbone: classic Bakery on wrapped (real) registers malfunctions —
// mutual exclusion is violated after tickets wrap at M.
func TestBakeryWrapMalfunction(t *testing.T) {
	p := specs.Bakery(specs.Config{N: 3, M: 7}) // 3-bit registers
	st, err := Run(p, Options{Steps: 500000, Seed: 3, Mode: gcl.ModeWrap})
	if err != nil {
		t.Fatal(err)
	}
	if st.Overflows == 0 {
		t.Fatal("expected overflows on 3-bit registers")
	}
	if st.MutexViolations == 0 {
		t.Fatal("expected mutual-exclusion violations after wrap")
	}
	if st.FirstViolationStep < st.FirstOverflowStep {
		t.Errorf("violation at %d precedes first overflow at %d",
			st.FirstViolationStep, st.FirstOverflowStep)
	}
}

// Bakery++ under the same wrapped registers: never overflows, never
// violates — the paper's headline claim as an executable experiment.
func TestBakeryPPWrapSafe(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 7})
	st, err := Run(p, Options{Steps: 500000, Seed: 3, Mode: gcl.ModeWrap})
	if err != nil {
		t.Fatal(err)
	}
	if st.Overflows != 0 {
		t.Errorf("Bakery++ attempted %d overflows", st.Overflows)
	}
	if st.MutexViolations != 0 {
		t.Errorf("Bakery++ violated mutex %d times", st.MutexViolations)
	}
	if st.TotalCS() == 0 {
		t.Error("no progress")
	}
}

func TestCrashInjectionKeepsBakeryPPSafe(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 4})
	st, err := Run(p, Options{Steps: 200000, Seed: 4, CrashRate: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	var crashes int64
	for _, c := range st.Crashes {
		crashes += c
	}
	if crashes == 0 {
		t.Fatal("no crashes injected at rate 0.001 over 200k steps")
	}
	if st.MutexViolations != 0 || st.Overflows != 0 {
		t.Errorf("violations=%d overflows=%d under crashes",
			st.MutexViolations, st.Overflows)
	}
	if st.TotalCS() == 0 {
		t.Error("crash-restart blocked all progress")
	}
}

func TestCrashPidsRestricted(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 4})
	st, err := Run(p, Options{Steps: 100000, Seed: 5, CrashRate: 0.01, CrashPids: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Crashes[0] != 0 || st.Crashes[2] != 0 {
		t.Error("non-listed processes crashed")
	}
	if st.Crashes[1] == 0 {
		t.Error("listed process never crashed")
	}
}

// Peterson's filter lock is not FCFS: under a random scheduler a process
// that finished its doorway can be overtaken by a later arrival.
func TestPetersonNotFCFS(t *testing.T) {
	p := specs.Peterson(3)
	st, err := Run(p, Options{Steps: 300000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if st.MutexViolations != 0 {
		t.Error("peterson violated mutex")
	}
	if st.FCFSInversions == 0 {
		t.Error("expected FCFS inversions from the filter lock")
	}
}

func TestSchedulersProduceProgress(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 4, M: 5})
	scheds := []Scheduler{RoundRobin{}, Random{}, Biased{Slow: map[int]bool{3: true}, Weight: 0.05}}
	for _, sd := range scheds {
		st, err := Run(p, Options{Steps: 200000, Seed: 7, Sched: sd})
		if err != nil {
			t.Fatal(err)
		}
		if st.TotalCS() == 0 {
			t.Errorf("%s: no progress", sd.Name())
		}
		if st.MutexViolations != 0 {
			t.Errorf("%s: mutex violations", sd.Name())
		}
	}
}

// E7, operationally: with a heavily biased scheduler the slow process
// starves (few or no CS entries) while fast processes dominate — the
// Section 6.3 fairness gap made measurable.
func TestBiasedSchedulerStarvesSlowProcess(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 2})
	slow := Biased{Slow: map[int]bool{2: true}, Weight: 0.001}
	st, err := Run(p, Options{Steps: 300000, Seed: 8, Sched: slow})
	if err != nil {
		t.Fatal(err)
	}
	fast := st.CSEntries[0] + st.CSEntries[1]
	if fast == 0 {
		t.Fatal("fast processes made no progress")
	}
	if st.CSEntries[2]*100 > fast {
		t.Errorf("slow process entered %d times vs fast %d; expected <1%%",
			st.CSEntries[2], fast)
	}
	if st.FairnessRatio() > 0.1 {
		t.Errorf("fairness ratio %.3f, expected heavy skew", st.FairnessRatio())
	}
}

func TestDeadlockDetected(t *testing.T) {
	p := gcl.New("stuck", 2)
	p.SharedVar("never", 0)
	p.Label("ncs", gcl.Goto("w"))
	p.Label("w", gcl.Br(gcl.Eq(gcl.Sh("never"), gcl.C(1)), "ncs"))
	p.MustBuild()
	st, err := Run(p, Options{Steps: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Deadlocked {
		t.Fatal("deadlock not detected")
	}
	if st.DeadlockStep != 2 {
		t.Errorf("deadlock at step %d, want 2", st.DeadlockStep)
	}
}

func TestDeterminism(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 3})
	a, err := Run(p, Options{Steps: 50000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Options{Steps: 50000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCS() != b.TotalCS() || a.MaxTicket != b.MaxTicket {
		t.Error("same seed produced different runs")
	}
	c, err := Run(p, Options{Steps: 50000, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCS() == c.TotalCS() && a.FCFSInversions == c.FCFSInversions &&
		a.TagVisits["try"] == c.TagVisits["try"] {
		t.Log("different seeds produced identical headline stats (possible but unlikely)")
	}
}

// TestRoundRobinPick pins the documented rotation order: at step k, the
// first enabled process at or after position k mod N runs, where N is the
// process count — NOT the largest enabled pid, which the seed rotated on
// and which starves nothing but skews priority low whenever high pids are
// blocked.
func TestRoundRobinPick(t *testing.T) {
	rr := RoundRobin{}
	rng := rand.New(rand.NewSource(0))
	cases := []struct {
		enabled []int
		n       int
		step    int64
		want    int
	}{
		// Everyone enabled: pure rotation.
		{[]int{0, 1, 2}, 3, 0, 0},
		{[]int{0, 1, 2}, 3, 1, 1},
		{[]int{0, 1, 2}, 3, 2, 2},
		{[]int{0, 1, 2}, 3, 3, 0},
		// Partial enablement: first enabled at or after the cursor.
		{[]int{0, 2}, 3, 1, 2},
		{[]int{0, 2}, 3, 2, 2},
		{[]int{0, 1}, 3, 2, 0}, // cursor past all enabled: wrap
		// The case the seed got wrong: N=4 with pid 3 blocked. Rotating on
		// max enabled pid (3) would never place the cursor at position 3;
		// rotating on N gives position 3 to the wrap (pid 0) once per lap.
		{[]int{0, 1, 2}, 4, 3, 0},
		{[]int{1, 2}, 4, 0, 1},
		{[]int{1, 2}, 4, 3, 1},
		// Single enabled process, any step.
		{[]int{0}, 1, 5, 0},
		{[]int{2}, 5, 4, 2},
	}
	for _, c := range cases {
		if got := rr.Pick(c.enabled, c.n, c.step, rng); got != c.want {
			t.Errorf("Pick(%v, n=%d, step=%d) = %d, want %d",
				c.enabled, c.n, c.step, got, c.want)
		}
	}
}

// Over one full lap with everyone enabled, round-robin must serve the
// processes in pid order, each exactly once per lap.
func TestRoundRobinFullRotation(t *testing.T) {
	rr := RoundRobin{}
	rng := rand.New(rand.NewSource(0))
	const n = 5
	enabled := []int{0, 1, 2, 3, 4}
	for lap := 0; lap < 3; lap++ {
		for k := 0; k < n; k++ {
			step := int64(lap*n + k)
			if got := rr.Pick(enabled, n, step, rng); got != k {
				t.Fatalf("lap %d step %d: pick = %d, want %d", lap, step, got, k)
			}
		}
	}
}

func TestBiasedWeightZero(t *testing.T) {
	b := Biased{Slow: map[int]bool{0: true, 1: true}, Weight: 0}
	rng := rand.New(rand.NewSource(0))
	// All-slow with weight zero must still pick someone.
	got := b.Pick([]int{0, 1}, 2, 0, rng)
	if got != 0 && got != 1 {
		t.Errorf("pick = %d", got)
	}
}

func TestFairnessRatio(t *testing.T) {
	st := &Stats{CSEntries: []int64{10, 5}}
	if got := st.FairnessRatio(); got != 0.5 {
		t.Errorf("FairnessRatio = %g, want 0.5", got)
	}
	empty := &Stats{CSEntries: []int64{0, 0}}
	if got := empty.FairnessRatio(); got != 1 {
		t.Errorf("empty FairnessRatio = %g, want 1", got)
	}
}

func TestTicketSeriesSampling(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 4})
	st, err := Run(p, Options{Steps: 10000, Seed: 3, SampleEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st.TicketSeries); got != 100 {
		t.Errorf("series length = %d, want 100", got)
	}
	for _, v := range st.TicketSeries {
		if int64(v) > int64(p.M) {
			t.Fatalf("sampled ticket %d exceeds M", v)
		}
	}
	// Sampling off: no series.
	st, err = Run(p, Options{Steps: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.TicketSeries) != 0 {
		t.Error("series recorded without SampleEvery")
	}
}

func TestSchedulerNames(t *testing.T) {
	if (RoundRobin{}).Name() != "round-robin" {
		t.Error("round-robin name")
	}
	if (Random{}).Name() != "random" {
		t.Error("random name")
	}
	if (Biased{Weight: 0.5}).Name() != "biased(w=0.5)" {
		t.Error("biased name")
	}
}
