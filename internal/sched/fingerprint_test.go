package sched

import (
	"runtime"
	"testing"

	"bakerypp/internal/gcl"
	"bakerypp/internal/specs"
)

// TestRunFingerprintDeterministic is the bakerysim determinism pin: the
// same (program, options) must produce the identical Stats fingerprint
// on every run and at every GOMAXPROCS, for every scheduler — including
// the stochastic random and biased ones — and a different seed must
// diverge.
func TestRunFingerprintDeterministic(t *testing.T) {
	schedulers := []Scheduler{
		Random{},
		RoundRobin{},
		Biased{Slow: map[int]bool{0: true}, Weight: 0.01},
	}
	for _, s := range schedulers {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			run := func(seed int64, procs int) string {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
				p, err := specs.Get("bakerypp", specs.Config{N: 3, M: 5})
				if err != nil {
					t.Fatal(err)
				}
				st, err := Run(p, Options{
					Steps: 30000, Sched: s, Seed: seed,
					Mode: gcl.ModeUnbounded, SampleEvery: 500,
				})
				if err != nil {
					t.Fatal(err)
				}
				return st.Fingerprint()
			}
			a, b := run(7, 1), run(7, 1)
			if a != b {
				t.Errorf("two identical runs fingerprint differently: %s vs %s", a, b)
			}
			if c := run(7, runtime.NumCPU()); a != c {
				t.Errorf("fingerprint depends on GOMAXPROCS: %s vs %s", a, c)
			}
			// Round-robin consults the rng only for branch choice,
			// and these specs' guards leave a single enabled branch
			// per label — its runs are legitimately seed-independent.
			if _, deterministic := s.(RoundRobin); !deterministic {
				if d := run(8, 1); a == d {
					t.Errorf("different seeds share fingerprint %s", a)
				}
			}
		})
	}
}

// TestNewRNGPinnedStream pins the first draws of the repository-owned
// source for one seed: if this test ever fails, the source changed and
// every recorded bakerysim fingerprint silently stopped reproducing —
// bump deliberately, never accidentally.
func TestNewRNGPinnedStream(t *testing.T) {
	rng := NewRNG(1)
	want := []int{4, 1, 4, 2, 2, 1, 5, 0, 3, 1}
	for i, w := range want {
		if got := rng.Intn(6); got != w {
			t.Fatalf("draw %d of NewRNG(1).Intn(6) = %d, want %d — the pinned stream changed", i, got, w)
		}
	}
}
