package des

import (
	"strings"
	"testing"
)

// TestParseModelRoundTrip checks every accepted spec parses, reports a
// canonical Name that re-parses to an equivalent model, and charges
// costs >= 1 for every class.
func TestParseModelRoundTrip(t *testing.T) {
	specs := []string{
		"unit",
		"fixed:3",
		"jitter:2,5",
		"classes:step=2;hold=exp(12);think=uniform(0,80)",
		"classes:wait=1;spin=4",
	}
	for _, spec := range specs {
		m, err := ParseModel(spec, 42)
		if err != nil {
			t.Fatalf("ParseModel(%q): %v", spec, err)
		}
		if m.Name() != spec {
			t.Errorf("ParseModel(%q).Name() = %q, want the canonical spec back", spec, m.Name())
		}
		m2, err := ParseModel(m.Name(), 42)
		if err != nil {
			t.Fatalf("Name() %q does not re-parse: %v", m.Name(), err)
		}
		for c := Start; c < Block; c++ {
			for _, work := range []int64{0, 1, 7} {
				if cost := m.Cost(c, 0, work); cost < 1 {
					t.Errorf("%q: Cost(%s, 0, %d) = %d < 1", spec, c, work, cost)
				}
				_ = m2
			}
		}
	}
	if _, err := ParseModel("", 0); err != nil {
		t.Errorf("empty spec should mean unit, got error %v", err)
	}
}

// TestParseModelRejects checks malformed specs fail loudly instead of
// silently defaulting.
func TestParseModelRejects(t *testing.T) {
	bad := []string{
		"fixed:0", "fixed:x", "jitter:3", "jitter:0,2", "jitter:2,-1",
		"classes:", "classes:step", "classes:nope=3", "classes:block=1",
		"classes:step=0", "classes:step=exp(0)", "classes:step=uniform(5,2)",
		"classes:step=1;step=2", "gaussian:1",
	}
	for _, spec := range bad {
		if _, err := ParseModel(spec, 0); err == nil {
			t.Errorf("ParseModel(%q) accepted a malformed spec", spec)
		}
	}
}

// TestModelDeterminism: the cost stream of every model is a pure
// function of (spec, seed, call sequence) — two instances with the same
// seed agree call for call, and a different seed diverges for the
// stochastic models.
func TestModelDeterminism(t *testing.T) {
	specs := []string{"unit", "fixed:2", "jitter:1,9", "classes:hold=exp(20);think=uniform(0,50)"}
	for _, spec := range specs {
		a, _ := ParseModel(spec, 7)
		b, _ := ParseModel(spec, 7)
		c, _ := ParseModel(spec, 8)
		same, diff := true, false
		for i := 0; i < 200; i++ {
			class := Class(i % int(Block))
			pid := i % 3
			work := int64(i % 5)
			av := a.Cost(class, pid, work)
			if av != b.Cost(class, pid, work) {
				same = false
			}
			if av != c.Cost(class, pid, work) {
				diff = true
			}
		}
		if !same {
			t.Errorf("%q: same seed produced different cost streams", spec)
		}
		stochastic := strings.HasPrefix(spec, "jitter") || strings.HasPrefix(spec, "classes")
		if stochastic && !diff {
			t.Errorf("%q: different seeds produced identical cost streams", spec)
		}
	}
}

// TestJitterPerPidStreams: the costs one pid draws must not shift when
// another pid draws in between — each pid owns an independent stream.
func TestJitterPerPidStreams(t *testing.T) {
	solo, _ := ParseModel("jitter:1,1000", 3)
	mixed, _ := ParseModel("jitter:1,1000", 3)
	var want, got []int64
	for i := 0; i < 50; i++ {
		want = append(want, solo.Cost(Step, 1, 0))
	}
	for i := 0; i < 50; i++ {
		mixed.Cost(Step, 0, 0) // interleave draws for pid 0
		got = append(got, mixed.Cost(Step, 1, 0))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("pid 1's draw %d changed from %d to %d when pid 0 drew in between", i, want[i], got[i])
		}
	}
}

// TestExpDistMean sanity-checks the exponential draw: over many draws
// the mean lands near the configured mean (within 15%).
func TestExpDistMean(t *testing.T) {
	m, _ := ParseModel("classes:hold=exp(40)", 11)
	var sum int64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += m.Cost(Hold, 0, 0)
	}
	mean := float64(sum) / n
	if mean < 34 || mean > 46 {
		t.Fatalf("exp(40) sample mean = %.1f, want ~40", mean)
	}
}
