package des

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

type testHeader struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`
	Seed int64  `json:"seed"`
}

// TestLogRoundTrip: a mixed stream of metadata and event lines must
// read back exactly, and writing the same stream twice must produce
// byte-identical files (the stability contract CI diffs rely on).
func TestLogRoundTrip(t *testing.T) {
	recs := []Rec{
		{T: 0, Pid: 0, Class: Start, Tag: ""},
		{T: 3, Pid: 1, Class: Step, Tag: "try"},
		{T: 3, Pid: 1, Class: Block},
		{T: 9, Pid: 2, Class: Hold, Tag: "cs-enter", Overflow: true},
		{T: 12, Pid: 0, Class: Think, Tag: "reset"},
	}
	encode := func() []byte {
		var buf bytes.Buffer
		w := NewLogWriter(&buf)
		w.Meta(testHeader{V: LogVersion, Kind: "test", Seed: 7})
		for _, r := range recs {
			w.Event(r)
		}
		w.Meta(struct {
			FP string `json:"fingerprint"`
		}{"0xabc"})
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatal("two writes of the same stream produced different bytes")
	}

	r := NewLogReader(bytes.NewReader(a))
	line, err := r.Next()
	if err != nil || line.IsEvent {
		t.Fatalf("first line: got (%+v, %v), want header metadata", line, err)
	}
	var hdr testHeader
	if err := json.Unmarshal(line.Raw, &hdr); err != nil || hdr.Kind != "test" || hdr.Seed != 7 {
		t.Fatalf("header did not round-trip: %+v, %v", hdr, err)
	}
	for i, want := range recs {
		line, err := r.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !line.IsEvent || line.Event != want {
			t.Fatalf("event %d read back as %+v, want %+v", i, line.Event, want)
		}
	}
	if line, err = r.Next(); err != nil || line.IsEvent {
		t.Fatalf("trailer: got (%+v, %v), want metadata", line, err)
	}
	if _, err = r.Next(); err != io.EOF {
		t.Fatalf("after last line: err = %v, want io.EOF", err)
	}
}

// TestLogReaderRejects: malformed lines must fail with an error naming
// the line, not be skipped.
func TestLogReaderRejects(t *testing.T) {
	bad := []string{
		"garbage\n",
		"[1,2]\n",               // wrong arity
		"[1,2,99,\"x\",0]\n",    // unknown class
		"[1,2,3,\"x\",7]\n",     // bad overflow flag
		"[\"a\",2,3,\"x\",0]\n", // non-numeric time
	}
	for _, s := range bad {
		r := NewLogReader(bytes.NewReader([]byte(s)))
		if _, err := r.Next(); err == nil || err == io.EOF {
			t.Errorf("line %q parsed without error", s)
		}
	}
}

// TestLogWriterStickyError: a metadata value that cannot marshal to an
// object poisons the writer and surfaces at Flush.
func TestLogWriterStickyError(t *testing.T) {
	var buf bytes.Buffer
	w := NewLogWriter(&buf)
	w.Meta([]int{1, 2, 3}) // marshals to an array, not an object
	w.Event(Rec{})
	if err := w.Flush(); err == nil {
		t.Fatal("non-object metadata did not surface an error at Flush")
	}
}
