package des

import (
	"fmt"
)

// Kernel is the discrete-event core: a monotonic virtual clock plus a
// pending-event queue ordered by (time, pid, seq). The tie-break is the
// determinism contract — two events scheduled for the same instant
// always execute in (pid, insertion) order, so a run's event sequence is
// a pure function of the schedule calls, never of map iteration or
// goroutine timing. A Kernel is single-threaded by design: one cell of a
// sweep owns one Kernel, and cell-level parallelism happens above it.
type Kernel struct {
	now      int64
	seq      uint64
	queue    eventHeap
	executed int64
}

type event struct {
	time int64
	pid  int
	seq  uint64
	fn   func()
}

// NewKernel returns an empty kernel at virtual time 0.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current virtual time.
func (k *Kernel) Now() int64 { return k.now }

// Executed returns how many events have run so far.
func (k *Kernel) Executed() int64 { return k.executed }

// Pending returns the number of scheduled-but-unexecuted events.
func (k *Kernel) Pending() int { return len(k.queue) }

// At schedules fn to run for pid after delay ticks of virtual time.
// delay must be >= 0; the clock never moves backwards.
func (k *Kernel) At(pid int, delay int64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %d for pid %d (virtual time is monotonic)", delay, pid))
	}
	k.seq++
	k.queue.push(event{time: k.now + delay, pid: pid, seq: k.seq, fn: fn})
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	ev := k.queue.pop()
	k.now = ev.time
	k.executed++
	ev.fn()
	return true
}

// Run executes events until the queue drains or maxEvents have run in
// this call (maxEvents <= 0 means no bound). It returns the number of
// events executed by this call.
func (k *Kernel) Run(maxEvents int64) int64 {
	var n int64
	for maxEvents <= 0 || n < maxEvents {
		if !k.Step() {
			break
		}
		n++
	}
	return n
}

// advance moves the clock forward by d ticks directly, without an event.
// Sim uses it to charge grant costs in its single-server loop.
func (k *Kernel) advance(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative clock advance %d", d))
	}
	k.now += d
}

// eventHeap is a min-heap on (time, pid, seq), hand-rolled rather than
// built on container/heap: that package's any-typed Push/Pop box every
// event on the heap, two allocations per executed event, which would
// break the scenario layer's allocation-free per-event contract
// (internal/scenario's TestScenarioHotPathAllocs).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].pid != h[j].pid {
		return h[i].pid < h[j].pid
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	q[n] = event{} // drop the closure reference for the collector
	*h = q[:n]
	q = q[:n]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		least := i
		if left < n && q.less(left, least) {
			least = left
		}
		if right < n && q.less(right, least) {
			least = right
		}
		if least == i {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return top
}
