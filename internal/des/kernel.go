package des

import (
	"container/heap"
	"fmt"
)

// Kernel is the discrete-event core: a monotonic virtual clock plus a
// pending-event queue ordered by (time, pid, seq). The tie-break is the
// determinism contract — two events scheduled for the same instant
// always execute in (pid, insertion) order, so a run's event sequence is
// a pure function of the schedule calls, never of map iteration or
// goroutine timing. A Kernel is single-threaded by design: one cell of a
// sweep owns one Kernel, and cell-level parallelism happens above it.
type Kernel struct {
	now      int64
	seq      uint64
	queue    eventHeap
	executed int64
}

type event struct {
	time int64
	pid  int
	seq  uint64
	fn   func()
}

// NewKernel returns an empty kernel at virtual time 0.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current virtual time.
func (k *Kernel) Now() int64 { return k.now }

// Executed returns how many events have run so far.
func (k *Kernel) Executed() int64 { return k.executed }

// Pending returns the number of scheduled-but-unexecuted events.
func (k *Kernel) Pending() int { return len(k.queue) }

// At schedules fn to run for pid after delay ticks of virtual time.
// delay must be >= 0; the clock never moves backwards.
func (k *Kernel) At(pid int, delay int64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %d for pid %d (virtual time is monotonic)", delay, pid))
	}
	k.seq++
	heap.Push(&k.queue, event{time: k.now + delay, pid: pid, seq: k.seq, fn: fn})
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	ev := heap.Pop(&k.queue).(event)
	k.now = ev.time
	k.executed++
	ev.fn()
	return true
}

// Run executes events until the queue drains or maxEvents have run in
// this call (maxEvents <= 0 means no bound). It returns the number of
// events executed by this call.
func (k *Kernel) Run(maxEvents int64) int64 {
	var n int64
	for maxEvents <= 0 || n < maxEvents {
		if !k.Step() {
			break
		}
		n++
	}
	return n
}

// advance moves the clock forward by d ticks directly, without an event.
// Sim uses it to charge grant costs in its single-server loop.
func (k *Kernel) advance(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative clock advance %d", d))
	}
	k.now += d
}

// eventHeap is a min-heap on (time, pid, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].pid != h[j].pid {
		return h[i].pid < h[j].pid
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
