package des

// Arrival processes and service-time distributions for the lock-service
// scenario layer: seeded integer-valued draws in virtual-time ticks, one
// independent stream per (seed, stream) pair, deterministic by
// construction — the same contract as the latency models. A Dist is both
// halves of an open-loop workload: interarrival gaps (the arrival
// process proper) and critical-section hold times.

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Dist is one seeded distribution over positive virtual-time durations.
// Draw consumes the distribution's private stream, so a Dist is NOT safe
// for concurrent use: every simulation shard owns fresh instances.
type Dist interface {
	// Name returns the canonical spec string ParseDist accepts to
	// rebuild this distribution (modulo seed).
	Name() string
	// Mean returns the configured mean in ticks (before the >= 1
	// clamping Draw applies, which biases tiny means slightly up).
	Mean() float64
	// Draw returns the next duration, always >= 1.
	Draw() int64
}

// distRNG is a private xorshift64 stream with float helpers.
type distRNG struct{ s uint64 }

func newDistRNG(seed int64, stream uint64) *distRNG {
	return &distRNG{s: seed64(seed, stream)}
}

func (r *distRNG) next() uint64 {
	r.s = xorshift64(r.s)
	return r.s
}

// u01 returns a uniform draw in (0, 1]; strictly positive so inverse
// transforms may take its logarithm.
func (r *distRNG) u01() float64 {
	return float64(r.next()>>11+1) / (1 << 53)
}

// normal returns a standard normal draw via Box-Muller (the cosine half;
// the sine half is deliberately discarded to keep the stream consumption
// rate fixed per draw).
func (r *distRNG) normal() float64 {
	u1, u2 := r.u01(), r.u01()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// clampTick rounds a real-valued duration to the >= 1 tick grid.
func clampTick(x float64) int64 {
	v := int64(math.Round(x))
	if v < 1 {
		return 1
	}
	return v
}

// fixedDist: every draw is the same gap (a paced, deterministic client).
type fixedDist struct{ d int64 }

func (f fixedDist) Name() string  { return fmt.Sprintf("fixed:%d", f.d) }
func (f fixedDist) Mean() float64 { return float64(f.d) }
func (f fixedDist) Draw() int64   { return f.d }

// poissonDist draws exponential interarrival gaps — the memoryless
// arrival process of an open-loop Poisson client fleet.
type poissonDist struct {
	mean int64
	rng  *distRNG
}

func (p *poissonDist) Name() string  { return fmt.Sprintf("poisson:%d", p.mean) }
func (p *poissonDist) Mean() float64 { return float64(p.mean) }
func (p *poissonDist) Draw() int64 {
	return clampTick(-math.Log(p.rng.u01()) * float64(p.mean))
}

// uniformDist draws uniformly from [a, b].
type uniformDist struct {
	a, b int64
	rng  *distRNG
}

func (u *uniformDist) Name() string  { return fmt.Sprintf("uniform:%d,%d", u.a, u.b) }
func (u *uniformDist) Mean() float64 { return float64(u.a+u.b) / 2 }
func (u *uniformDist) Draw() int64 {
	if u.b == u.a {
		return u.a
	}
	return u.a + int64(u.rng.next()%uint64(u.b-u.a+1))
}

// burstDist is the Gamma-burst arrival process: gamma-distributed gaps
// with the configured mean and coefficient of variation cv >= 1. A cv
// well above 1 (shape 1/cv² well below 1) concentrates most draws near
// zero with rare huge gaps — i.e. dense request bursts separated by
// quiet spells, the heavy-traffic regime where lock queues spike.
type burstDist struct {
	mean, cv int64
	shape    float64 // 1/cv²
	scale    float64 // mean·cv²
	rng      *distRNG
}

func (g *burstDist) Name() string  { return fmt.Sprintf("burst:%d,%d", g.mean, g.cv) }
func (g *burstDist) Mean() float64 { return float64(g.mean) }
func (g *burstDist) Draw() int64 {
	return clampTick(g.gamma(g.shape) * g.scale)
}

// gamma draws a Gamma(a, 1) variate by Marsaglia-Tsang squeeze
// rejection, with the standard boost for shape below 1.
func (g *burstDist) gamma(a float64) float64 {
	if a < 1 {
		// Gamma(a) = Gamma(a+1) · U^(1/a).
		return g.gamma(a+1) * math.Pow(g.rng.u01(), 1/a)
	}
	d := a - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.rng.normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.rng.u01()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// bimodalDist mixes two exponential modes: short draws with mean a most
// of the time, long draws with mean b for pctB percent of draws — the
// classic bimodal hold-time workload (quick lookups, occasional
// full-table scans holding the lock orders of magnitude longer).
type bimodalDist struct {
	a, b, pctB int64
	rng        *distRNG
}

func (m *bimodalDist) Name() string {
	return fmt.Sprintf("bimodal:%d,%d,%d", m.a, m.b, m.pctB)
}

func (m *bimodalDist) Mean() float64 {
	p := float64(m.pctB) / 100
	return (1-p)*float64(m.a) + p*float64(m.b)
}

func (m *bimodalDist) Draw() int64 {
	mean := m.a
	if int64(m.rng.next()%100) < m.pctB {
		mean = m.b
	}
	return clampTick(-math.Log(m.rng.u01()) * float64(mean))
}

// ParseDist builds a seeded arrival-process / duration distribution from
// its spec string:
//
//	fixed:<d>            every draw is d ticks
//	poisson:<mean>       exponential gaps (Poisson arrivals) with this mean
//	uniform:<a>,<b>      uniform on [a, b]
//	burst:<mean>,<cv>    Gamma gaps with this mean and CV = cv (cv >> 1 =
//	                     dense bursts separated by long quiet spells)
//	bimodal:<a>,<b>,<p>  exponential mean a, except p%% of draws use mean b
//
// The (seed, stream) pair seeds the private draw stream; pass the run
// seed and a distinct stream id per distribution instance so shards and
// classes draw independently yet reproducibly.
func ParseDist(spec string, seed int64, stream uint64) (Dist, error) {
	kind, body, _ := strings.Cut(spec, ":")
	args, err := distArgs(body)
	if err != nil {
		return nil, fmt.Errorf("des: bad dist spec %q: %v", spec, err)
	}
	bad := func(want string) (Dist, error) {
		return nil, fmt.Errorf("des: bad dist spec %q (want %s)", spec, want)
	}
	switch kind {
	case "fixed":
		if len(args) != 1 || args[0] < 1 {
			return bad("fixed:<d> with d >= 1")
		}
		return fixedDist{args[0]}, nil
	case "poisson":
		if len(args) != 1 || args[0] < 1 {
			return bad("poisson:<mean> with mean >= 1")
		}
		return &poissonDist{mean: args[0], rng: newDistRNG(seed, stream)}, nil
	case "uniform":
		if len(args) != 2 || args[0] < 1 || args[1] < args[0] {
			return bad("uniform:<a>,<b> with 1 <= a <= b")
		}
		return &uniformDist{a: args[0], b: args[1], rng: newDistRNG(seed, stream)}, nil
	case "burst":
		if len(args) != 2 || args[0] < 1 || args[1] < 1 || args[1] > 64 {
			return bad("burst:<mean>,<cv> with mean >= 1, 1 <= cv <= 64")
		}
		cv := float64(args[1])
		return &burstDist{
			mean: args[0], cv: args[1],
			shape: 1 / (cv * cv), scale: float64(args[0]) * cv * cv,
			rng: newDistRNG(seed, stream),
		}, nil
	case "bimodal":
		if len(args) != 3 || args[0] < 1 || args[1] < 1 || args[2] < 0 || args[2] > 100 {
			return bad("bimodal:<a>,<b>,<pct> with a,b >= 1 and 0 <= pct <= 100")
		}
		return &bimodalDist{a: args[0], b: args[1], pctB: args[2], rng: newDistRNG(seed, stream)}, nil
	default:
		return nil, fmt.Errorf("des: unknown dist kind %q (want fixed, poisson, uniform, burst, or bimodal)", kind)
	}
}

func distArgs(body string) ([]int64, error) {
	if body == "" {
		return nil, fmt.Errorf("missing arguments")
	}
	parts := strings.Split(body, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("argument %q is not an integer", p)
		}
		out[i] = v
	}
	return out, nil
}
