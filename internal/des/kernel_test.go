package des

import (
	"testing"
)

// TestKernelOrdering pins the tie-break contract: events execute in
// (time, pid, seq) order regardless of insertion order.
func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	mark := func(id int) func() { return func() { got = append(got, id) } }
	// Inserted deliberately out of order: same-time events must sort
	// by pid, same (time, pid) by insertion sequence.
	k.At(3, 5, mark(0)) // t=5 pid=3
	k.At(1, 5, mark(1)) // t=5 pid=1
	k.At(1, 5, mark(2)) // t=5 pid=1, later seq
	k.At(0, 9, mark(3)) // t=9 pid=0
	k.At(2, 1, mark(4)) // t=1 pid=2
	if n := k.Run(0); n != 5 {
		t.Fatalf("Run executed %d events, want 5", n)
	}
	want := []int{4, 1, 2, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if k.Now() != 9 {
		t.Fatalf("clock ended at %d, want 9", k.Now())
	}
	if k.Executed() != 5 {
		t.Fatalf("Executed() = %d, want 5", k.Executed())
	}
}

// TestKernelClockMonotonic checks the clock advances to each event's
// timestamp and that events scheduled from handlers land relative to
// the current time.
func TestKernelClockMonotonic(t *testing.T) {
	k := NewKernel()
	var stamps []int64
	var chain func()
	chain = func() {
		stamps = append(stamps, k.Now())
		if len(stamps) < 4 {
			k.At(0, 3, chain)
		}
	}
	k.At(0, 3, chain)
	k.Run(0)
	want := []int64{3, 6, 9, 12}
	for i := range want {
		if stamps[i] != want[i] {
			t.Fatalf("stamps %v, want %v", stamps, want)
		}
	}
}

// TestKernelRunBound checks the maxEvents bound pauses, not drops.
func TestKernelRunBound(t *testing.T) {
	k := NewKernel()
	ran := 0
	for i := 0; i < 10; i++ {
		k.At(0, int64(i), func() { ran++ })
	}
	if n := k.Run(4); n != 4 || ran != 4 {
		t.Fatalf("bounded run executed %d/%d, want 4/4", n, ran)
	}
	if k.Pending() != 6 {
		t.Fatalf("Pending() = %d after bounded run, want 6", k.Pending())
	}
	if n := k.Run(0); n != 6 || ran != 10 {
		t.Fatalf("drain executed %d (total %d), want 6 (10)", n, ran)
	}
}

// TestKernelNegativeDelayPanics pins the monotonic-time contract.
func TestKernelNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling at a negative delay did not panic")
		}
	}()
	NewKernel().At(0, -1, func() {})
}
