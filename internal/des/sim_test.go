package des

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// runSim drives a canonical workload — each participant loops iters
// times over a Preempt, a Wait every third iteration, and an Elapse —
// and returns the grant trace plus the final virtual time.
func runSim(n int, seed int64, iters int, model Model) (string, int64) {
	s := NewSim(n, seed, model)
	var trace []string
	for pid := 0; pid < n; pid++ {
		pid := pid
		s.Go(pid, func() {
			for i := 0; i < iters; i++ {
				trace = append(trace, fmt.Sprintf("%d@%d", pid, s.Now()))
				s.Preempt(pid)
				if i%3 == 0 {
					s.Wait(pid)
				}
				s.Elapse(pid, int64(i%4))
			}
		})
	}
	total := s.Run()
	return strings.Join(trace, " "), total
}

// TestSimDeterministic: same (n, seed, model) must reproduce the exact
// grant trace and final time; a different seed must diverge.
func TestSimDeterministic(t *testing.T) {
	a, ta := runSim(4, 42, 6, Unit())
	b, tb := runSim(4, 42, 6, Unit())
	if a != b || ta != tb {
		t.Fatalf("same seed diverged:\n%s (t=%d)\n%s (t=%d)", a, ta, b, tb)
	}
	c, _ := runSim(4, 43, 6, Unit())
	if a == c {
		t.Fatal("different seeds produced the identical trace")
	}
}

// TestSimGOMAXPROCSIndependent: the schedule is a function of the seed
// alone, not of available parallelism.
func TestSimGOMAXPROCSIndependent(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	a, ta := runSim(3, 7, 5, Jitter(2, 4, 7))
	runtime.GOMAXPROCS(prev)
	b, tb := runSim(3, 7, 5, Jitter(2, 4, 7))
	if a != b || ta != tb {
		t.Fatalf("schedule depends on GOMAXPROCS:\n%s (t=%d)\n%s (t=%d)", a, ta, b, tb)
	}
}

// TestSimUnitMatchesStepCount: under the unit model with no sized
// stretches, virtual time is exactly the grant count — the Sequencer's
// one-step-per-grant clock.
func TestSimUnitMatchesStepCount(t *testing.T) {
	s := NewSim(1, 1, Unit())
	var stamps []int64
	s.Go(0, func() {
		stamps = append(stamps, s.Now())
		s.Preempt(0)
		stamps = append(stamps, s.Now())
		s.Preempt(0)
		stamps = append(stamps, s.Now())
	})
	total := s.Run()
	if want := []int64{1, 2, 3}; stamps[0] != want[0] || stamps[1] != want[1] || stamps[2] != want[2] {
		t.Fatalf("unit-model stamps %v, want %v", stamps, want)
	}
	if total != 3 {
		t.Fatalf("total virtual time %d, want 3 (one per grant)", total)
	}
}

// TestSimLatencyScalesClock: a fixed:5 model must advance the clock
// five ticks per grant, and Elapse must charge its work size.
func TestSimLatencyScalesClock(t *testing.T) {
	s := NewSim(1, 1, Fixed(5))
	var afterSpin int64
	s.Go(0, func() {
		s.Elapse(0, 10) // regrant charges Spin(10) => 5*10
		afterSpin = s.Now()
	})
	total := s.Run()
	// Start grant: 5. Spin(10) regrant: 50. Total 55.
	if afterSpin != 55 || total != 55 {
		t.Fatalf("clock after Elapse(10) = %d, total = %d; want 55, 55", afterSpin, total)
	}
}

// TestSimSecondRunPanics pins the single-shot contract with its
// user-facing message.
func TestSimSecondRunPanics(t *testing.T) {
	s := NewSim(1, 1, nil)
	s.Go(0, func() {})
	s.Run()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second Run did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "single-shot") {
			t.Fatalf("second Run panicked with %v, want a message explaining the single-shot contract", r)
		}
	}()
	s.Run()
}

// TestSimValidation pins the constructor and Go argument checks.
func TestSimValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("NewSim(0)", func() { NewSim(0, 1, nil) })
	mustPanic("Go(-1)", func() { NewSim(2, 1, nil).Go(-1, func() {}) })
	mustPanic("Go(n)", func() { NewSim(2, 1, nil).Go(2, func() {}) })
}
