// Package des is a discrete-event simulation kernel for the preemption
// and contention harness: a monotonic virtual-time event queue with
// deterministic tie-breaking on (time, pid, seq), pluggable per-action
// latency models, and a recorded event log with a stable JSON-lines
// encoding that replays bit-identically.
//
// The package sits below internal/preempt (the PR 2 Sequencer is a thin
// adapter over Sim with the unit model) and beside internal/specs (the
// harness DES sweep runs spec programs as per-cell event loops on a
// Kernel). It imports only the standard library so every other layer can
// build on it without cycles.
package des

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Class labels the kind of action a latency cost is charged for. Every
// scheduled event carries the class of the action whose completion it
// models; latency models map (class, pid, work) to a virtual-time cost.
type Class uint8

const (
	// Start is the initial grant of a participant (its arrival).
	Start Class = iota
	// Preempt is a voluntary yield at a preemption point.
	Preempt
	// Wait is a blocked wait (spin on a gate or a ticket) being
	// re-granted, or in the event-loop sweep the wake of a process
	// whose guard became true.
	Wait
	// Spin is an elapsed stretch of busy work of `work` units.
	Spin
	// Step is one protocol action (a doorway write, a ticket scan).
	Step
	// Hold is time spent inside the critical section (`work` units).
	Hold
	// Think is non-critical time between attempts (`work` units,
	// e.g. a drawn interarrival gap in the open-loop pattern).
	Think
	// Block is not a cost class: it marks, in recorded event logs,
	// the instant a process was found disabled and parked. Models
	// never see it.
	Block

	numClasses = int(Block) + 1
)

var classNames = [numClasses]string{
	"start", "preempt", "wait", "spin", "step", "hold", "think", "block",
}

func (c Class) String() string {
	if int(c) < numClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Model maps an action to its virtual-time cost. Cost must be >= 1 and
// depend only on its arguments and the model's own (seeded) state, never
// on wall time — the determinism contract of every sweep fingerprint.
// Work is the size of the action in abstract units (spin iterations,
// hold ticks, a drawn interarrival gap); classes with no natural size
// pass 0. Models are NOT safe for concurrent use: each simulation cell
// owns a fresh instance seeded from the cell seed.
type Model interface {
	// Name returns the canonical spec string that ParseModel would
	// accept to rebuild this model (modulo seed).
	Name() string
	// Cost returns the virtual-time cost of one action.
	Cost(c Class, pid int, work int64) int64
}

// Unit returns the unit-latency model: every action costs exactly one
// tick regardless of class or size, except sized classes (Spin, Hold,
// Think) which cost max(1, work). Under this model the Sim grant
// sequence reproduces the PR 2 Sequencer's one-step-per-grant schedule
// exactly, which is what pins the Sequencer adapter equivalence test.
func Unit() Model { return unitModel{} }

type unitModel struct{}

func (unitModel) Name() string { return "unit" }

func (unitModel) Cost(c Class, pid int, work int64) int64 {
	if sized(c) && work > 1 {
		return work
	}
	return 1
}

// Fixed returns a model charging d ticks per action, scaled by work for
// sized classes. d < 1 is clamped to 1.
func Fixed(d int64) Model {
	if d < 1 {
		d = 1
	}
	return fixedModel{d}
}

type fixedModel struct{ d int64 }

func (m fixedModel) Name() string { return fmt.Sprintf("fixed:%d", m.d) }

func (m fixedModel) Cost(c Class, pid int, work int64) int64 {
	if sized(c) && work > 1 {
		return m.d * work
	}
	return m.d
}

// Jitter returns a model charging base plus a seeded uniform draw in
// [0, spread] per action, with independent per-pid streams so that the
// cost sequence one participant observes does not depend on how many
// others run. Sized classes scale the base by work and draw the jitter
// once (the whole stretch lands on one queue insertion, not per unit).
func Jitter(base, spread int64, seed int64) Model {
	if base < 1 {
		base = 1
	}
	if spread < 0 {
		spread = 0
	}
	return &jitterModel{base: base, spread: spread, seed: seed}
}

type jitterModel struct {
	base, spread int64
	seed         int64
	streams      []uint64
}

func (m *jitterModel) Name() string {
	return fmt.Sprintf("jitter:%d,%d", m.base, m.spread)
}

func (m *jitterModel) Cost(c Class, pid int, work int64) int64 {
	cost := m.base
	if sized(c) && work > 1 {
		cost = m.base * work
	}
	if m.spread > 0 {
		cost += int64(m.stream(pid) % uint64(m.spread+1))
	}
	return cost
}

func (m *jitterModel) stream(pid int) uint64 {
	for len(m.streams) <= pid {
		m.streams = append(m.streams, seed64(m.seed, uint64(len(m.streams))+1))
	}
	v := xorshift64(m.streams[pid])
	m.streams[pid] = v
	return v
}

// dist is one per-class cost distribution of a class model.
type dist struct {
	kind string // "const", "uniform", "exp"
	a, b int64  // const: a; uniform: [a, b]; exp: mean a
}

func (d dist) String() string {
	switch d.kind {
	case "uniform":
		return fmt.Sprintf("uniform(%d,%d)", d.a, d.b)
	case "exp":
		return fmt.Sprintf("exp(%d)", d.a)
	default:
		return strconv.FormatInt(d.a, 10)
	}
}

// classModel charges each action class from its own distribution, with
// independent seeded per-pid streams. Classes without an explicit
// distribution fall back to const 1.
type classModel struct {
	dists   [numClasses]dist
	set     [numClasses]bool
	seed    int64
	order   []Class // spec order, for Name()
	streams []uint64
}

func (m *classModel) Name() string {
	parts := make([]string, 0, len(m.order))
	for _, c := range m.order {
		parts = append(parts, fmt.Sprintf("%s=%s", c, m.dists[c]))
	}
	return "classes:" + strings.Join(parts, ";")
}

func (m *classModel) Cost(c Class, pid int, work int64) int64 {
	d := dist{kind: "const", a: 1}
	if int(c) < numClasses && m.set[c] {
		d = m.dists[c]
	}
	var cost int64
	switch d.kind {
	case "uniform":
		cost = d.a
		if span := d.b - d.a; span > 0 {
			cost += int64(m.stream(pid) % uint64(span+1))
		}
	case "exp":
		// Exponential with mean a via inverse transform on a
		// 53-bit uniform; the +1 keeps u strictly positive.
		u := float64(m.stream(pid)>>11+1) / (1 << 53)
		cost = int64(math.Round(-math.Log(u) * float64(d.a)))
	default:
		cost = d.a
	}
	if sized(c) && work > 1 {
		cost *= work
	}
	if cost < 1 {
		cost = 1
	}
	return cost
}

func (m *classModel) stream(pid int) uint64 {
	for len(m.streams) <= pid {
		m.streams = append(m.streams, seed64(m.seed, uint64(len(m.streams))+0x51))
	}
	v := xorshift64(m.streams[pid])
	m.streams[pid] = v
	return v
}

// sized reports whether a class's work argument scales its cost.
func sized(c Class) bool { return c == Spin || c == Hold || c == Think }

// ParseModel builds a latency model from its spec string:
//
//	unit                         one tick per action (the Sequencer schedule)
//	fixed:<d>                    d ticks per action
//	jitter:<base>,<spread>       base + seeded uniform [0, spread]
//	classes:<c>=<dist>;...       per-class distributions, where <dist> is
//	                             <k> | uniform(<a>,<b>) | exp(<mean>)
//	                             and <c> is one of start, preempt, wait,
//	                             spin, step, hold, think
//
// Example: "classes:step=2;hold=exp(12);think=uniform(0,80)". The seed
// feeds the model's private draw streams; pass the cell seed so every
// cell is independent yet reproducible.
func ParseModel(spec string, seed int64) (Model, error) {
	switch {
	case spec == "" || spec == "unit":
		return Unit(), nil
	case strings.HasPrefix(spec, "fixed:"):
		d, err := strconv.ParseInt(spec[len("fixed:"):], 10, 64)
		if err != nil || d < 1 {
			return nil, fmt.Errorf("des: bad fixed latency spec %q (want fixed:<d> with d >= 1)", spec)
		}
		return Fixed(d), nil
	case strings.HasPrefix(spec, "jitter:"):
		parts := strings.Split(spec[len("jitter:"):], ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("des: bad jitter latency spec %q (want jitter:<base>,<spread>)", spec)
		}
		base, err1 := strconv.ParseInt(parts[0], 10, 64)
		spread, err2 := strconv.ParseInt(parts[1], 10, 64)
		if err1 != nil || err2 != nil || base < 1 || spread < 0 {
			return nil, fmt.Errorf("des: bad jitter latency spec %q (want base >= 1, spread >= 0)", spec)
		}
		return Jitter(base, spread, seed), nil
	case strings.HasPrefix(spec, "classes:"):
		return parseClassModel(spec[len("classes:"):], seed)
	default:
		return nil, fmt.Errorf("des: unknown latency model %q (want unit, fixed:<d>, jitter:<b>,<s>, or classes:...)", spec)
	}
}

func parseClassModel(body string, seed int64) (Model, error) {
	m := &classModel{seed: seed}
	for _, part := range strings.Split(body, ";") {
		name, spec, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("des: bad class latency entry %q (want <class>=<dist>)", part)
		}
		c, err := parseClass(name)
		if err != nil {
			return nil, err
		}
		d, err := parseDist(spec)
		if err != nil {
			return nil, err
		}
		if m.set[c] {
			return nil, fmt.Errorf("des: class %q specified twice", name)
		}
		m.dists[c] = d
		m.set[c] = true
		m.order = append(m.order, c)
	}
	if len(m.order) == 0 {
		return nil, fmt.Errorf("des: empty classes latency spec")
	}
	return m, nil
}

func parseClass(name string) (Class, error) {
	for i, n := range classNames {
		if n == name && Class(i) != Block {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("des: unknown action class %q", name)
}

func parseDist(spec string) (dist, error) {
	switch {
	case strings.HasPrefix(spec, "uniform(") && strings.HasSuffix(spec, ")"):
		parts := strings.Split(spec[len("uniform("):len(spec)-1], ",")
		if len(parts) != 2 {
			return dist{}, fmt.Errorf("des: bad uniform dist %q (want uniform(<a>,<b>))", spec)
		}
		a, err1 := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		b, err2 := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err1 != nil || err2 != nil || a < 0 || b < a {
			return dist{}, fmt.Errorf("des: bad uniform dist %q (want 0 <= a <= b)", spec)
		}
		return dist{kind: "uniform", a: a, b: b}, nil
	case strings.HasPrefix(spec, "exp(") && strings.HasSuffix(spec, ")"):
		mean, err := strconv.ParseInt(spec[len("exp("):len(spec)-1], 10, 64)
		if err != nil || mean < 1 {
			return dist{}, fmt.Errorf("des: bad exp dist %q (want exp(<mean>) with mean >= 1)", spec)
		}
		return dist{kind: "exp", a: mean}, nil
	default:
		k, err := strconv.ParseInt(spec, 10, 64)
		if err != nil || k < 1 {
			return dist{}, fmt.Errorf("des: bad const dist %q (want an integer >= 1)", spec)
		}
		return dist{kind: "const", a: k}, nil
	}
}

// seed64 expands (seed, stream) into a well-mixed 64-bit state via the
// splitmix64 finalizer. A private copy of preempt.Seed64: des sits below
// preempt in the import graph and cannot borrow it.
func seed64(seed int64, stream uint64) uint64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*(stream+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	return z
}

// xorshift64 advances a non-zero xorshift state. Private copy of
// preempt.Xorshift64 for the same layering reason as seed64.
func xorshift64(s uint64) uint64 {
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	return s
}
