package des

// Token-bucket admission control for the scenario layer: a deterministic
// integer-arithmetic bucket refilled by virtual time, so an admission
// decision is a pure function of the arrival instants — no floats, no
// wall clock, byte-identical across machines.

import (
	"fmt"
	"strconv"
	"strings"
)

// TokenBucket admits at a sustained rate with a bounded burst. Internal
// accounting is in millitokens: refilling adds rate millitokens per tick
// (i.e. rate tokens per kilotick), one admission costs 1000.
type TokenBucket struct {
	rate  int64 // millitokens per tick = tokens per kilotick
	burst int64 // bucket capacity in tokens
	level int64 // current fill in millitokens
	last  int64 // virtual time of the last refill
}

// NewTokenBucket returns a full bucket admitting ratePerKTick tokens per
// 1000 ticks with capacity burst tokens.
func NewTokenBucket(ratePerKTick, burst int64) *TokenBucket {
	return &TokenBucket{rate: ratePerKTick, burst: burst, level: burst * 1000}
}

// Name returns the canonical spec string ParseAdmission accepts to
// rebuild this bucket.
func (b *TokenBucket) Name() string {
	return fmt.Sprintf("token:%d,%d", b.rate, b.burst)
}

// Admit refills the bucket up to the virtual instant now and reports
// whether one admission fits. now must not move backwards (the kernel's
// clock is monotonic).
func (b *TokenBucket) Admit(now int64) bool {
	if dt := now - b.last; dt > 0 {
		b.level += dt * b.rate
		if cap := b.burst * 1000; b.level > cap {
			b.level = cap
		}
		b.last = now
	}
	if b.level >= 1000 {
		b.level -= 1000
		return true
	}
	return false
}

// ParseAdmission builds an admission controller from its spec string:
//
//	token:<rate>,<burst>   token bucket, rate tokens per 1000 ticks,
//	                       burst tokens of capacity (starts full)
//
// The empty spec returns nil: no admission control, every arrival is
// admitted.
func ParseAdmission(spec string) (*TokenBucket, error) {
	if spec == "" {
		return nil, nil
	}
	body, ok := strings.CutPrefix(spec, "token:")
	if !ok {
		return nil, fmt.Errorf("des: unknown admission spec %q (want token:<rate>,<burst>)", spec)
	}
	parts := strings.Split(body, ",")
	if len(parts) != 2 {
		return nil, fmt.Errorf("des: bad admission spec %q (want token:<rate>,<burst>)", spec)
	}
	rate, err1 := strconv.ParseInt(parts[0], 10, 64)
	burst, err2 := strconv.ParseInt(parts[1], 10, 64)
	if err1 != nil || err2 != nil || rate < 1 || burst < 1 || rate > 1<<40 || burst > 1<<40 {
		return nil, fmt.Errorf("des: bad admission spec %q (want 1 <= rate, burst <= 2^40)", spec)
	}
	return NewTokenBucket(rate, burst), nil
}
