package des

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Event logs.
//
// A recorded run is a JSON-lines stream with two kinds of line:
//
//   - metadata lines: one JSON object each, produced by marshalling a
//     caller-supplied struct (struct field order makes the bytes a pure
//     function of the values — no map iteration anywhere). The harness
//     uses these for the log header, per-cell and per-run markers, and
//     the trailing fingerprint.
//
//   - event lines: one compact JSON array per executed event,
//     [time, pid, class, "tag", overflow] with class as its numeric
//     value and overflow as 0/1. Example: [37,2,4,"cs-enter",0].
//
// The encoding is byte-stable: writing the same logical stream twice
// yields identical files, which is what lets CI diff a GOMAXPROCS=1
// recording against an all-cores one and lets cmd/bakeryreplay promise
// byte-identical tables. LogVersion guards the grammar; bump it on any
// change to either line kind.
const LogVersion = 1

// Rec is one recorded simulation event: at virtual time T, process Pid
// completed an action of class Class. Tag carries the spec branch tag
// ("try", "cs-enter", "reset", ...) when the action had one; Overflow
// marks actions that took a ticket-overflow branch. A Class of Block is
// a pseudo-event: the instant Pid was found disabled and parked (wait
// histograms are the spans from a Block to the pid's next real event).
type Rec struct {
	T        int64
	Pid      int
	Class    Class
	Tag      string
	Overflow bool
}

// LogWriter serialises a recorded run. Errors are sticky: the first
// write error is kept and returned by Flush, so call sites can write an
// entire stream and check once.
type LogWriter struct {
	bw  *bufio.Writer
	err error
}

// NewLogWriter returns a LogWriter on w.
func NewLogWriter(w io.Writer) *LogWriter {
	return &LogWriter{bw: bufio.NewWriter(w)}
}

// Meta writes one metadata line: v marshalled as a single JSON object.
// v must marshal to an object (not an array), or readers could not tell
// it from an event line; that property is the caller's to uphold.
func (w *LogWriter) Meta(v any) {
	if w.err != nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		w.err = err
		return
	}
	if len(data) == 0 || data[0] != '{' {
		w.err = fmt.Errorf("des: log metadata must marshal to a JSON object, got %.20s", data)
		return
	}
	data = append(data, '\n')
	_, w.err = w.bw.Write(data)
}

// Event writes one event line.
func (w *LogWriter) Event(r Rec) {
	if w.err != nil {
		return
	}
	tag, err := json.Marshal(r.Tag)
	if err != nil {
		w.err = err
		return
	}
	o := 0
	if r.Overflow {
		o = 1
	}
	_, w.err = fmt.Fprintf(w.bw, "[%d,%d,%d,%s,%d]\n", r.T, r.Pid, uint8(r.Class), tag, o)
}

// Flush drains the buffer and returns the first error encountered by
// any prior write.
func (w *LogWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// LogLine is one parsed line of a recorded run: either an event or a
// metadata object (Raw holds the object bytes for the caller to
// unmarshal into its own struct).
type LogLine struct {
	IsEvent bool
	Event   Rec
	Raw     json.RawMessage
}

// LogReader parses a recorded run line by line.
type LogReader struct {
	sc   *bufio.Scanner
	line int
}

// NewLogReader returns a LogReader on r.
func NewLogReader(r io.Reader) *LogReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &LogReader{sc: sc}
}

// Next returns the next line, or io.EOF after the last.
func (r *LogReader) Next() (LogLine, error) {
	for r.sc.Scan() {
		r.line++
		data := r.sc.Bytes()
		if len(data) == 0 {
			continue
		}
		switch data[0] {
		case '{':
			return LogLine{Raw: append(json.RawMessage(nil), data...)}, nil
		case '[':
			rec, err := parseEventLine(data)
			if err != nil {
				return LogLine{}, fmt.Errorf("des: log line %d: %w", r.line, err)
			}
			return LogLine{IsEvent: true, Event: rec}, nil
		default:
			return LogLine{}, fmt.Errorf("des: log line %d: unrecognised line start %q", r.line, data[0])
		}
	}
	if err := r.sc.Err(); err != nil {
		return LogLine{}, err
	}
	return LogLine{}, io.EOF
}

func parseEventLine(data []byte) (Rec, error) {
	var fields []json.RawMessage
	if err := json.Unmarshal(data, &fields); err != nil {
		return Rec{}, err
	}
	if len(fields) != 5 {
		return Rec{}, fmt.Errorf("event line has %d fields, want 5 (v%d grammar)", len(fields), LogVersion)
	}
	var (
		rec   Rec
		class uint8
		o     int
	)
	if err := json.Unmarshal(fields[0], &rec.T); err != nil {
		return Rec{}, fmt.Errorf("bad event time: %w", err)
	}
	if err := json.Unmarshal(fields[1], &rec.Pid); err != nil {
		return Rec{}, fmt.Errorf("bad event pid: %w", err)
	}
	if err := json.Unmarshal(fields[2], &class); err != nil {
		return Rec{}, fmt.Errorf("bad event class: %w", err)
	}
	if int(class) >= numClasses {
		return Rec{}, fmt.Errorf("unknown event class %d", class)
	}
	rec.Class = Class(class)
	if err := json.Unmarshal(fields[3], &rec.Tag); err != nil {
		return Rec{}, fmt.Errorf("bad event tag: %w", err)
	}
	if err := json.Unmarshal(fields[4], &o); err != nil || (o != 0 && o != 1) {
		return Rec{}, fmt.Errorf("bad event overflow flag %s", fields[4])
	}
	rec.Overflow = o == 1
	return rec, nil
}
