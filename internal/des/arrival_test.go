package des

import (
	"math"
	"strings"
	"testing"
)

// TestDistRoundTrip: Name() must be re-parseable to an equivalent
// distribution — the property the scenario spec's canonical form relies
// on.
func TestDistRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"fixed:7", "poisson:80", "uniform:3,9", "burst:120,4", "bimodal:4,400,5",
	} {
		d, err := ParseDist(spec, 1, 1)
		if err != nil {
			t.Fatalf("ParseDist(%q): %v", spec, err)
		}
		if d.Name() != spec {
			t.Errorf("ParseDist(%q).Name() = %q, want the spec back", spec, d.Name())
		}
		d2, err := ParseDist(d.Name(), 1, 1)
		if err != nil {
			t.Fatalf("re-parsing %q: %v", d.Name(), err)
		}
		for i := 0; i < 100; i++ {
			if a, b := d.Draw(), d2.Draw(); a != b {
				t.Fatalf("%s: same seed/stream diverged at draw %d: %d vs %d", spec, i, a, b)
			}
		}
	}
}

// TestDistStreamsIndependent: distinct stream ids must give distinct
// sequences from the same seed, and the same (seed, stream) the same
// sequence — the per-shard/per-class independence contract.
func TestDistStreamsIndependent(t *testing.T) {
	draw := func(stream uint64) []int64 {
		d, err := ParseDist("poisson:50", 9, stream)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int64, 64)
		for i := range out {
			out[i] = d.Draw()
		}
		return out
	}
	a, b, a2 := draw(1), draw(2), draw(1)
	same := 0
	for i := range a {
		if a[i] != a2[i] {
			t.Fatalf("same (seed, stream) diverged at draw %d", i)
		}
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/2 {
		t.Errorf("streams 1 and 2 agree on %d/%d draws — not independent", same, len(a))
	}
}

// TestBurstIsBursty: the Gamma-burst process at CV 4 must actually be
// burstier than Poisson at the same mean — far more minimal gaps (the
// bursts) and a far larger maximum (the quiet spells).
func TestBurstIsBursty(t *testing.T) {
	const n = 20000
	stats := func(spec string) (ones int, max int64) {
		d, err := ParseDist(spec, 3, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			v := d.Draw()
			if v == 1 {
				ones++
			}
			if v > max {
				max = v
			}
		}
		return
	}
	pOnes, pMax := stats("poisson:100")
	bOnes, bMax := stats("burst:100,4")
	if bOnes < 4*pOnes {
		t.Errorf("burst minimal gaps %d not well above poisson %d — CV 4 is not bursting", bOnes, pOnes)
	}
	if bMax < 2*pMax {
		t.Errorf("burst max gap %d not well above poisson %d — no quiet spells", bMax, pMax)
	}
}

// TestBimodalModes: the bimodal distribution must actually place mass at
// both modes in roughly the configured proportion.
func TestBimodalModes(t *testing.T) {
	d, err := ParseDist("bimodal:5,2000,10", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	long := 0
	for i := 0; i < n; i++ {
		if d.Draw() > 500 {
			long++
		}
	}
	frac := float64(long) / n
	if frac < 0.05 || frac > 0.15 {
		t.Errorf("long-mode fraction %.3f far from the configured 0.10", frac)
	}
}

// TestParseDistErrors: malformed specs fail loudly.
func TestParseDistErrors(t *testing.T) {
	for _, spec := range []string{
		"", "poisson", "poisson:", "poisson:0", "poisson:x", "fixed:-3",
		"uniform:9,3", "uniform:0,5", "burst:10", "burst:10,0", "burst:10,900",
		"bimodal:1,2", "bimodal:1,2,101", "warp:4", "poisson:1,2",
	} {
		if _, err := ParseDist(spec, 1, 1); err == nil {
			t.Errorf("ParseDist(%q) did not error", spec)
		}
	}
}

// FuzzArrivalProcess is the issue's fuzz target for the arrival-process
// generators: for arbitrary (kind, parameters, seed), every drawn
// inter-arrival time must be positive, the same (seed, stream) must
// reproduce the same sequence, and the sample mean must land within
// tolerance of the configured mean.
func FuzzArrivalProcess(f *testing.F) {
	f.Add(uint8(0), int64(50), int64(9), int64(20), int64(1))
	f.Add(uint8(1), int64(80), int64(200), int64(10), int64(2))
	f.Add(uint8(2), int64(10), int64(90), int64(0), int64(3))
	f.Add(uint8(3), int64(300), int64(4), int64(0), int64(4))
	f.Add(uint8(4), int64(6), int64(900), int64(25), int64(5))
	f.Fuzz(func(t *testing.T, kind uint8, a, b, c, seed int64) {
		clamp := func(v, lo, hi int64) int64 {
			if v < lo {
				return lo
			}
			if v > hi {
				return hi
			}
			return v
		}
		var spec string
		switch kind % 5 {
		case 0:
			spec = "fixed:" + itoa(clamp(a, 1, 1<<30))
		case 1:
			spec = "poisson:" + itoa(clamp(a, 8, 1<<20))
		case 2:
			lo := clamp(a, 1, 1<<20)
			spec = "uniform:" + itoa(lo) + "," + itoa(clamp(b, lo, 1<<21))
		case 3:
			spec = "burst:" + itoa(clamp(a, 8, 1<<20)) + "," + itoa(clamp(b, 1, 8))
		case 4:
			spec = "bimodal:" + itoa(clamp(a, 8, 1<<16)) + "," + itoa(clamp(b, 8, 1<<20)) + "," + itoa(clamp(c, 0, 100))
		}
		d, err := ParseDist(spec, seed, 1)
		if err != nil {
			t.Fatalf("constructed spec %q failed to parse: %v", spec, err)
		}
		if d.Name() != spec {
			t.Fatalf("%q: Name() = %q, not canonical", spec, d.Name())
		}
		d2, err := ParseDist(spec, seed, 1)
		if err != nil {
			t.Fatal(err)
		}
		const n = 16384
		var sum float64
		cv := 1.0
		if kind%5 == 3 {
			cv = float64(clamp(b, 1, 8))
		}
		for i := 0; i < n; i++ {
			v := d.Draw()
			if v < 1 {
				t.Fatalf("%q: draw %d returned %d — inter-arrival times must be positive", spec, i, v)
			}
			if w := d2.Draw(); w != v {
				t.Fatalf("%q: same (seed, stream) diverged at draw %d: %d vs %d", spec, i, v, w)
			}
			sum += float64(v)
		}
		mean := d.Mean()
		got := sum / n
		// Tolerance: a base 12%% for the >= 1 clamp and rounding, plus
		// five standard errors of the sample mean (stddev ≈ cv·mean for
		// every kind here, with cv = 1 except the Gamma burst's).
		tol := 0.12*mean + 5*cv*mean/math.Sqrt(n)
		if diff := math.Abs(got - mean); diff > tol {
			t.Errorf("%q: sample mean %.1f vs configured %.1f (diff %.1f > tol %.1f over %d draws)",
				spec, got, mean, diff, tol, n)
		}
	})
}

func itoa(v int64) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

// TestTokenBucket: deterministic refill arithmetic — a full bucket
// absorbs a burst, then admits at exactly the sustained rate.
func TestTokenBucket(t *testing.T) {
	b := NewTokenBucket(100, 5) // 100 tokens per kilotick = one per 10 ticks, burst 5
	for i := 0; i < 5; i++ {
		if !b.Admit(0) {
			t.Fatalf("full bucket rejected burst admission %d", i)
		}
	}
	if b.Admit(0) {
		t.Fatal("empty bucket admitted at the same instant")
	}
	if b.Admit(9) {
		t.Fatal("bucket admitted before a full token accrued (9 ticks at 1/10)")
	}
	if !b.Admit(10) {
		t.Fatal("bucket rejected after a full token accrued")
	}
	// Far future: refill caps at burst, not unbounded.
	for i := 0; i < 5; i++ {
		if !b.Admit(1_000_000) {
			t.Fatalf("recovered bucket rejected admission %d", i)
		}
	}
	if b.Admit(1_000_000) {
		t.Fatal("bucket admitted past its burst capacity")
	}
}

// TestParseAdmission: spec round-trip and error cases.
func TestParseAdmission(t *testing.T) {
	b, err := ParseAdmission("token:250,16")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "token:250,16" {
		t.Errorf("Name() = %q, want the spec back", b.Name())
	}
	if nb, err := ParseAdmission(""); err != nil || nb != nil {
		t.Errorf("empty admission spec: got (%v, %v), want (nil, nil)", nb, err)
	}
	for _, spec := range []string{"token:", "token:0,5", "token:5,0", "token:5", "leaky:3,4", "token:a,b"} {
		if _, err := ParseAdmission(spec); err == nil {
			t.Errorf("ParseAdmission(%q) did not error", spec)
		}
	}
}

// TestDistSpecsAreCommaFree documents the grammar constraint the
// scenario spec parser relies on: dist specs never contain the scenario
// separators ';', '=' or '/'.
func TestDistSpecsAreCommaFree(t *testing.T) {
	for _, spec := range []string{"fixed:7", "poisson:80", "uniform:3,9", "burst:120,4", "bimodal:4,400,5"} {
		if strings.ContainsAny(spec, ";=/") {
			t.Errorf("dist spec %q contains a scenario separator", spec)
		}
	}
}
