package des

import (
	"fmt"
	"math/rand"
	"sort"
)

// Sim is the timed generalisation of the PR 2 cooperative Sequencer: it
// runs N participant goroutines so that exactly one executes at any
// moment, every context switch happens at an explicit preemption point,
// and the next participant is chosen by a seeded random source — but
// each grant now advances a virtual clock by a latency-model cost
// instead of a fixed single step.
//
// The model is a single server (one CPU): granting a participant charges
// the cost of the action it was parked on — Start for its arrival,
// Preempt/Wait for yields, Spin(work) for an elapsed busy stretch — and
// a participant that yields rejoins the runnable pool immediately, so it
// may be granted twice in a row, exactly as under the Sequencer. With
// the Unit model every grant costs one tick and the grant sequence is
// bit-identical to preempt.Sequencer for the same (n, seed); that
// equivalence is pinned by a test against a frozen copy of the PR 2
// loop. preempt.Sequencer is now a thin adapter over this type.
//
// A Sim is single-shot: Run may be called exactly once, after all Go
// calls; a second Run panics.
type Sim struct {
	n     int
	model Model
	rng   *rand.Rand
	k     *Kernel
	grant []chan struct{}
	event chan simEvent
	// pending[pid] holds the (class, work) of the action pid parked
	// on, charged to the clock when pid is next granted.
	pending []pendingAction
	spawned int
	ran     bool
}

type pendingAction struct {
	class Class
	work  int64
}

type simEvent struct {
	pid   int
	class Class
	work  int64
	done  bool
}

// NewSim returns a Sim for n participants with the given schedule seed
// and latency model. A nil model means Unit().
func NewSim(n int, seed int64, model Model) *Sim {
	if n < 1 {
		panic("des: need at least one participant")
	}
	if model == nil {
		model = Unit()
	}
	s := &Sim{
		n:       n,
		model:   model,
		rng:     rand.New(rand.NewSource(seed)),
		k:       NewKernel(),
		grant:   make([]chan struct{}, n),
		event:   make(chan simEvent),
		pending: make([]pendingAction, n),
	}
	for i := range s.grant {
		s.grant[i] = make(chan struct{})
	}
	return s
}

// Go spawns fn as participant pid's goroutine. fn does not start
// executing until Run grants it for the first time; that first grant is
// charged as a Start action.
func (s *Sim) Go(pid int, fn func()) {
	if pid < 0 || pid >= s.n {
		panic("des: participant out of range")
	}
	s.spawned++
	go func() {
		s.event <- simEvent{pid: pid, class: Start}
		<-s.grant[pid]
		fn()
		s.event <- simEvent{pid: pid, done: true}
	}()
}

// Preempt implements preempt.Preemptor: the running participant offers a
// context switch and blocks until the scheduler grants it again. The
// regrant is charged as a Preempt action.
func (s *Sim) Preempt(pid int) { s.yield(pid, Preempt, 0) }

// Wait implements preempt.Preemptor: a blocked spin-wait iteration. The
// regrant is charged as a Wait action.
func (s *Sim) Wait(pid int) { s.yield(pid, Wait, 0) }

// Elapse reports that the running participant performed work units of
// busy computation, yielding the server; the regrant is charged as a
// single Spin(work) action. Workloads that know their stretch sizes call
// this instead of bare Preempt so latency models can price computation.
func (s *Sim) Elapse(pid int, work int64) { s.yield(pid, Spin, work) }

func (s *Sim) yield(pid int, class Class, work int64) {
	s.event <- simEvent{pid: pid, class: class, work: work}
	<-s.grant[pid]
}

// Now returns the current virtual time. It may be called only by the
// participant currently holding the grant (or before Run / after Run
// returns); the grant channel handoff orders the accesses.
func (s *Sim) Now() int64 { return s.k.Now() }

// Model returns the latency model the Sim charges grants with.
func (s *Sim) Model() Model { return s.model }

// Run drives the spawned participants to completion and returns the
// final virtual time. It must be called exactly once, after all Go
// calls: a Sim's rng and clock are consumed by the run, so reuse would
// silently produce a schedule unrelated to the seed. A second Run
// panics.
func (s *Sim) Run() int64 {
	if s.ran {
		panic("des: Sim.Run called twice — a Sim (and the preempt.Sequencer built on it) is single-shot; create a fresh one per run")
	}
	s.ran = true
	alive := s.spawned
	runnable := make([]int, 0, alive)
	// Every spawned participant parks once before its first
	// instruction. They arrive in Go-scheduler order, which must not
	// leak into the schedule: sort, so the runnable set starts in pid
	// order and every later mutation is driven by the seeded rng
	// alone.
	for len(runnable) < alive {
		ev := <-s.event
		s.pending[ev.pid] = pendingAction{class: ev.class, work: ev.work}
		runnable = append(runnable, ev.pid)
	}
	sort.Ints(runnable)
	for alive > 0 {
		i := s.rng.Intn(len(runnable))
		pid := runnable[i]
		runnable[i] = runnable[len(runnable)-1]
		runnable = runnable[:len(runnable)-1]
		p := s.pending[pid]
		s.k.advance(s.model.Cost(p.class, pid, p.work))
		s.grant[pid] <- struct{}{}
		ev := <-s.event
		if ev.done {
			alive--
		} else {
			s.pending[ev.pid] = pendingAction{class: ev.class, work: ev.work}
			runnable = append(runnable, ev.pid)
		}
	}
	return s.k.Now()
}

// String identifies the Sim in panics and logs.
func (s *Sim) String() string {
	return fmt.Sprintf("des.Sim(n=%d, model=%s)", s.n, s.model.Name())
}
