package harness

import (
	"encoding/json"
	"strings"
	"testing"

	"bakerypp/internal/specs"
)

// The bench-json liveness rows' machine-readable schema, pinned on a
// trimmed grid (the full grid's N=4 quotient cell is a multi-minute
// build): every record carries the "analysis" discriminator, names encode
// algo-nN-mM/<analysis>/<reduction>, the reduction modes come in
// full/quotient pairs with matching verdicts, and the rows stay honest
// about engine and completeness (FCFS always runs sequentially).
func TestLivenessBenchJSONSchema(t *testing.T) {
	rep := &MCBenchReport{}
	cells := []livenessBenchCell{{"bakerypp", specs.Config{N: 3, M: 2}, true}}
	if err := appendLivenessBench(rep, ExpConfig{MCWorkers: -1}, cells); err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 4 { // starve none+symmetry, fcfs none+symmetry
		t.Fatalf("got %d records, want 4", len(rep.Records))
	}

	data, err := json.Marshal(rep.Records)
	if err != nil {
		t.Fatal(err)
	}
	var raw []map[string]interface{}
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	byName := map[string]MCBenchRecord{}
	for i, rec := range rep.Records {
		byName[rec.Name] = rec
		analysis, _ := raw[i]["analysis"].(string)
		if analysis != "starve" && analysis != "fcfs" {
			t.Errorf("record %q: analysis = %q", rec.Name, analysis)
		}
		wantName := "bakerypp-n3-m2/" + analysis + "/" + rec.Reduction
		if rec.Name != wantName {
			t.Errorf("record name %q, want %q", rec.Name, wantName)
		}
		if !rec.Complete {
			t.Errorf("record %q: bounded grid cells must complete", rec.Name)
		}
		if rec.Symmetry != (rec.Reduction == "symmetry") || rec.Symmetry != rec.Applied {
			t.Errorf("record %q: inconsistent reduction flags %+v", rec.Name, rec)
		}
		if strings.HasPrefix(rec.Name, "bakerypp-n3-m2/fcfs") && rec.Workers != 0 {
			t.Errorf("record %q: FCFS always runs sequentially, Workers = %d", rec.Name, rec.Workers)
		}
		if rec.States <= 0 || rec.WallSeconds < 0 {
			t.Errorf("record %q: implausible measurements %+v", rec.Name, rec)
		}
	}
	// Verdict parity between each analysis's full and reduced rows, and
	// the reductions must not explore more than the full side.
	for _, analysis := range []string{"starve", "fcfs"} {
		full := byName["bakerypp-n3-m2/"+analysis+"/none"]
		red := byName["bakerypp-n3-m2/"+analysis+"/symmetry"]
		if full.Verdict != red.Verdict {
			t.Errorf("%s verdicts diverge: full=%q reduced=%q", analysis, full.Verdict, red.Verdict)
		}
		if red.States >= full.States {
			t.Errorf("%s: reduced row explored %d states, full %d", analysis, red.States, full.States)
		}
	}
}
