// Package harness drives runtime locks under configurable workloads and
// measures what the paper's evaluation talks about: throughput, acquisition
// latency, mutual-exclusion violations (for deliberately broken
// configurations such as wrapped-register Bakery), and Bakery++'s
// overflow-avoidance overhead. Workers spin through a yield-injecting
// workload.Spinner, so those outcomes stay observable on any core count
// (see docs/harness.md); sweep.go scales the same measurements across a
// deterministic scenario grid. The experiments file assembles these runs —
// together with the model checker and the interleaving simulator — into
// the E1–E15 tables recorded in EXPERIMENTS.md (see docs/experiments.md).
package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bakerypp/internal/preempt"
	"bakerypp/internal/stats"
	"bakerypp/internal/workload"
)

// Lock is the runtime lock contract (identical to algorithms.Lock, declared
// consumer-side so the harness depends only on behaviour).
type Lock interface {
	Lock(pid int)
	Unlock(pid int)
	Name() string
}

// RunConfig describes one measured run.
type RunConfig struct {
	// Lock is the (fresh) lock instance to exercise.
	Lock Lock
	// N is the number of participants; each gets one worker goroutine.
	N int
	// Iters is the number of critical sections per participant.
	Iters int
	// Pattern supplies think/hold spin times; defaults to Sustained.
	Pattern workload.Pattern
	// MeasureLatency records per-acquisition latency histograms (adds two
	// clock reads per operation).
	MeasureLatency bool
	// Seed derives per-worker random sources.
	Seed int64
	// PreemptRate is the expected number of injected preemption points per
	// think/hold spin iteration (the mean yield gap is 1/rate); see
	// workload.Spinner for why runs are blind to broken locks on few-core
	// machines without it. Zero selects workload.DefaultPreemptRate; a
	// negative rate disables injection, reproducing the seed harness's
	// scheduling-blind spin.
	PreemptRate float64
}

// RunResult is the outcome of one run.
type RunResult struct {
	Lock    string
	N       int
	Ops     int64
	Elapsed time.Duration
	// Violations counts occupancy-detector trips: entries into the
	// critical section while another participant was inside.
	Violations int64
	// Evidence holds the first occupancy-detector trips in detail — which
	// pids overlapped, at which iteration (nil for a clean run, capped at
	// 64 records).
	Evidence []Overlap
	// MaxConcurrency is the largest number of participants ever observed
	// inside the critical section simultaneously (1 for a correct lock).
	MaxConcurrency int32
	// Latency is the merged acquisition-latency histogram in nanoseconds
	// (nil unless MeasureLatency).
	Latency *stats.Histogram
}

// Throughput returns critical sections per second.
func (r *RunResult) Throughput() float64 { return stats.Rate(r.Ops, r.Elapsed) }

// String summarises the run.
func (r *RunResult) String() string {
	s := fmt.Sprintf("%s N=%d: %d ops in %v (%s), violations=%d maxconc=%d",
		r.Lock, r.N, r.Ops, r.Elapsed.Round(time.Millisecond),
		stats.FormatRate(r.Throughput()), r.Violations, r.MaxConcurrency)
	if r.Latency != nil {
		s += " latency{" + r.Latency.DurationSummary() + "}"
	}
	if len(r.Evidence) > 0 {
		s += fmt.Sprintf(" first-overlap{%s}", r.Evidence[0])
	}
	return s
}

// Run executes the configured workload and returns measurements.
func Run(cfg RunConfig) *RunResult {
	if cfg.N < 1 {
		panic("harness: N must be >= 1")
	}
	if cfg.Iters < 1 {
		panic("harness: Iters must be >= 1")
	}
	if cfg.Pattern.Think == nil {
		cfg.Pattern = workload.Sustained()
	}
	rate := cfg.PreemptRate
	if rate == 0 {
		rate = workload.DefaultPreemptRate
	}
	res := &RunResult{Lock: cfg.Lock.Name(), N: cfg.N}

	det := newOccupancy(cfg.N)
	var wg sync.WaitGroup
	hists := make([]*stats.Histogram, cfg.N)
	start := time.Now()
	for pid := 0; pid < cfg.N; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(pid)))
			sp := workload.NewSpinner(pid, cfg.Seed^int64(pid+1)*0x9E3779B9, rate, preempt.Yield{})
			var h *stats.Histogram
			if cfg.MeasureLatency {
				h = stats.NewHistogram()
				hists[pid] = h
			}
			for k := 0; k < cfg.Iters; k++ {
				sp.Spin(cfg.Pattern.Think(rng))
				var t0 time.Time
				if h != nil {
					t0 = time.Now()
				}
				cfg.Lock.Lock(pid)
				if h != nil {
					h.Record(time.Since(t0).Nanoseconds())
				}
				det.enter(pid, k)
				sp.Spin(cfg.Pattern.Hold(rng))
				det.exit(pid)
				cfg.Lock.Unlock(pid)
			}
		}(pid)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Ops = int64(cfg.N) * int64(cfg.Iters)
	res.Violations = det.violations.Load()
	res.Evidence = det.report()
	res.MaxConcurrency = det.maxConc.Load()
	if cfg.MeasureLatency {
		merged := stats.NewHistogram()
		for _, h := range hists {
			if h != nil {
				merged.Merge(h)
			}
		}
		res.Latency = merged
	}
	return res
}
