//go:build unix

package harness

import (
	"runtime"
	"syscall"
)

// peakRSSKB reports the process's resident-set high-water mark in KiB
// (getrusage Maxrss is KiB on Linux, bytes on Darwin).
func peakRSSKB() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	if runtime.GOOS == "darwin" {
		return ru.Maxrss / 1024
	}
	return ru.Maxrss
}
