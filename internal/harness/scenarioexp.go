package harness

// The scenario-layer hypothesis experiments E19–E21: quantitative
// predictions about Bakery++'s entry gate and the modulo strawman,
// posed before running, measured on the lock-service fleet of
// internal/scenario, and asserted per seed both here (the printed
// Confirmed/Refuted verdicts) and in scenarioexp_test.go (the same
// predictions as go-test assertions, so a refutation fails CI instead
// of silently landing in a table).

import (
	"fmt"
	"io"

	"bakerypp/internal/scenario"
	"bakerypp/internal/stats"
)

// scenarioExpSeeds are the independent trials every scenario experiment
// runs; each seed reproduces exactly from the command line.
var scenarioExpSeeds = []int64{1, 2, 3}

// E19: one saturating-burst class (CV-4 Gamma arrivals at ρ≈0.8) so busy
// periods occasionally drive the ticket excursion to M.
const e19SpecFmt = "name=e19;algo=bakerypp;shards=8;n=4;m=%d;clients=240000;" +
	"class=hot/1/burst:28,4/poisson:4/200"

// e19Ms is the halving ladder the super-linearity prediction is tested
// on, largest budget first.
var e19Ms = []int{64, 32, 16}

type e19Cell struct {
	M      int
	Seed   int64
	Grants int64
	Resets int64
}

func measureE19(cfg ExpConfig) ([]e19Cell, error) {
	var out []e19Cell
	for _, m := range e19Ms {
		for _, seed := range scenarioExpSeeds {
			spec, err := scenario.Parse(fmt.Sprintf(e19SpecFmt, m))
			if err != nil {
				return nil, err
			}
			res, err := scenario.Run(spec, scenario.Options{Seed: seed, Workers: cfg.SweepWorkers})
			if err != nil {
				return nil, err
			}
			if res.Overflows != 0 || res.MaxConcurrency > 1 {
				return nil, fmt.Errorf("E19: bakerypp m=%d seed %d: overflows=%d maxconc=%d, want 0 and 1",
					m, seed, res.Overflows, res.MaxConcurrency)
			}
			out = append(out, e19Cell{M: m, Seed: seed, Grants: res.Grants(), Resets: res.Resets})
		}
	}
	return out, nil
}

// e19BySeed indexes the cells as resets[seed][M].
func e19BySeed(cells []e19Cell) map[int64]map[int]int64 {
	by := make(map[int64]map[int]int64)
	for _, c := range cells {
		if by[c.Seed] == nil {
			by[c.Seed] = make(map[int]int64)
		}
		by[c.Seed][c.M] = c.Resets
	}
	return by
}

func runE19(w io.Writer, cfg ExpConfig) error {
	fmt.Fprintln(w, "Hypothesis (posed before running; each seed is an independent trial and a refutation is a finding, not an error):")
	fmt.Fprintln(w, "  H: at moderate bursty load (ρ≈0.8, CV-4 arrivals) the entry gate fires only when one busy period's ticket excursion reaches M, so halving M more than doubles the reset count — super-linear in 1/M, unlike the resets/grant ≈ 1/M a saturated fleet would show.")
	fmt.Fprintln(w)
	cells, err := measureE19(cfg)
	if err != nil {
		return err
	}
	tb := stats.NewTable("Bakery++ entry-gate resets vs ticket budget M (scenario e19: 8 shards, n=4, 240000 clients)",
		"m", "seed", "grants", "resets", "resets/Mgrant")
	for _, c := range cells {
		tb.AddRow(c.M, c.Seed, c.Grants, c.Resets, float64(c.Resets)*1e6/float64(c.Grants))
	}
	fmt.Fprintln(w, tb)
	fmt.Fprintf(w, "table fingerprint: %s (three independent seeds; identical on every machine and for any -sweep-workers)\n\n", tb.Fingerprint())

	by := e19BySeed(cells)
	confirmed := 0
	for _, seed := range scenarioExpSeeds {
		r := by[seed]
		v := "Refuted"
		if r[16] > 2*r[32] && r[32] > 2*r[64] {
			v = "Confirmed"
			confirmed++
		}
		fmt.Fprintf(w, "seed %d: H %s (resets M=64→32→16: %d → %d → %d; linear would be ×2 per halving, observed ×%.1f and ×%.1f)\n",
			seed, v, r[64], r[32], r[16], ratioOrInf(r[32], r[64]), ratioOrInf(r[16], r[32]))
	}
	fmt.Fprintf(w, "Verdict over %d seeds: H %d/%d. Rerun any trial with `bakeryserve -seed <seed> -scenario '%s'`.\n",
		len(scenarioExpSeeds), confirmed, len(scenarioExpSeeds), fmt.Sprintf(e19SpecFmt, 16))
	return nil
}

func ratioOrInf(num, den int64) float64 {
	if den == 0 {
		return float64(num) // resets fell to zero: report the raw count
	}
	return float64(num) / float64(den)
}

// E20: preemption-prone pricing — every protocol step can stall up to 10
// ticks mid-doorway — with a tiny ticket budget against a generous one.
const (
	e20SpecFmt   = "name=e20;algo=bakerypp;shards=4;n=4;m=%d;clients=60000;class=adv/1/burst:220,6/poisson:5/2000"
	e20Latency   = "jitter:1,9"
	e20SmallM    = 8
	e20LargeM    = 256
	e20WaitBloat = 2.0 // acquire p99 at the tiny budget must stay within this factor
)

type e20Cell struct {
	M         int
	Seed      int64
	Stranded  int64
	Resets    int64
	Overflows int64
	MaxConc   int
	P99       int64
	P999      int64
}

func measureE20(cfg ExpConfig) ([]e20Cell, error) {
	var out []e20Cell
	for _, m := range []int{e20SmallM, e20LargeM} {
		for _, seed := range scenarioExpSeeds {
			spec, err := scenario.Parse(fmt.Sprintf(e20SpecFmt, m))
			if err != nil {
				return nil, err
			}
			res, err := scenario.Run(spec, scenario.Options{Seed: seed, Workers: cfg.SweepWorkers, Latency: e20Latency})
			if err != nil {
				return nil, err
			}
			c := res.Classes[0]
			out = append(out, e20Cell{
				M: m, Seed: seed,
				Stranded: res.Stranded(), Resets: res.Resets, Overflows: res.Overflows,
				MaxConc: res.MaxConcurrency,
				P99:     c.Latency.Quantile(0.99), P999: c.Latency.Quantile(0.999),
			})
		}
	}
	return out, nil
}

func runE20(w io.Writer, cfg ExpConfig) error {
	fmt.Fprintln(w, "Hypotheses (posed before running; each seed is an independent trial and a refutation is a finding, not an error):")
	fmt.Fprintf(w, "  H-a (no starvation, no overflow): with m=%d under preemption-prone pricing (%s) the gate fires constantly, yet every admitted client is eventually granted and no ticket ever overflows.\n", e20SmallM, e20Latency)
	fmt.Fprintf(w, "  H-b (bounded extra waiting): the gate's price is waiting, and boundedly so — acquire p99 at m=%d stays within %.0fx of the m=%d run on the same seed.\n", e20SmallM, e20WaitBloat, e20LargeM)
	fmt.Fprintln(w)
	cells, err := measureE20(cfg)
	if err != nil {
		return err
	}
	tb := stats.NewTable("Bakery++ tiny vs generous ticket budget under preemption-prone pricing (scenario e20: 4 shards, n=4, 60000 clients, latency="+e20Latency+")",
		"m", "seed", "stranded", "resets", "overflows", "maxconc", "acq p99", "acq p99.9")
	for _, c := range cells {
		tb.AddRow(c.M, c.Seed, c.Stranded, c.Resets, c.Overflows, c.MaxConc, c.P99, c.P999)
	}
	fmt.Fprintln(w, tb)
	fmt.Fprintf(w, "table fingerprint: %s (three independent seeds; identical on every machine and for any -sweep-workers)\n\n", tb.Fingerprint())

	type pair struct{ small, large e20Cell }
	bySeed := make(map[int64]*pair)
	for _, c := range cells {
		p := bySeed[c.Seed]
		if p == nil {
			p = &pair{}
			bySeed[c.Seed] = p
		}
		if c.M == e20SmallM {
			p.small = c
		} else {
			p.large = c
		}
	}
	confirmedA, confirmedB := 0, 0
	for _, seed := range scenarioExpSeeds {
		p := bySeed[seed]
		va, vb := "Refuted", "Refuted"
		if p.small.Stranded == 0 && p.small.Overflows == 0 && p.small.Resets > 50 {
			va = "Confirmed"
			confirmedA++
		}
		if float64(p.small.P99) < e20WaitBloat*float64(p.large.P99) {
			vb = "Confirmed"
			confirmedB++
		}
		fmt.Fprintf(w, "seed %d: H-a %s (m=%d: %d resets, %d overflows, %d stranded), H-b %s (acq p99 %d vs %d, ×%.2f)\n",
			seed, va, e20SmallM, p.small.Resets, p.small.Overflows, p.small.Stranded,
			vb, p.small.P99, p.large.P99, float64(p.small.P99)/float64(p.large.P99))
	}
	fmt.Fprintf(w, "Verdict over %d seeds: H-a %d/%d, H-b %d/%d. The adversary here is the latency model: any step — including mid-doorway — can stall ×10, the schedule-level analogue of preemption. Rerun any trial with `bakeryserve -seed <seed> -latency %s -scenario '%s'`.\n",
		len(scenarioExpSeeds), confirmedA, len(scenarioExpSeeds), confirmedB, len(scenarioExpSeeds),
		e20Latency, fmt.Sprintf(e20SpecFmt, e20SmallM))
	return nil
}

// E21: the modulo strawman against Bakery++ at three contention levels —
// burst interarrival means 20 (heavy), 80, 320 (light) against a ~4-unit
// hold — with m=8 so tickets wrap constantly.
const e21SpecFmt = "name=e21;algo=%s;shards=4;n=4;m=8;clients=40000;class=c/1/burst:%d,4/poisson:4/400"

var e21Arrivals = []int{20, 80, 320}

type e21Cell struct {
	Algo    string
	Arrival int
	Seed    int64
	Grants  int64
	FCFS    int64
	MaxConc int
}

func measureE21(cfg ExpConfig) ([]e21Cell, error) {
	var out []e21Cell
	for _, algo := range []string{"modbakery", "bakerypp"} {
		for _, mean := range e21Arrivals {
			for _, seed := range scenarioExpSeeds {
				spec, err := scenario.Parse(fmt.Sprintf(e21SpecFmt, algo, mean))
				if err != nil {
					return nil, err
				}
				res, err := scenario.Run(spec, scenario.Options{Seed: seed, Workers: cfg.SweepWorkers})
				if err != nil {
					return nil, err
				}
				out = append(out, e21Cell{
					Algo: algo, Arrival: mean, Seed: seed,
					Grants: res.Grants(), FCFS: res.FCFSViolations, MaxConc: res.MaxConcurrency,
				})
			}
		}
	}
	return out, nil
}

func runE21(w io.Writer, cfg ExpConfig) error {
	fmt.Fprintln(w, "Hypotheses (posed before running; each seed is an independent trial and a refutation is a finding, not an error):")
	fmt.Fprintln(w, "  H-a: modbakery's wrapped tickets invert doorway order, and the damage grows with contention — its FCFS violation count rises strictly as the interarrival mean drops 320 → 80 → 20, and is nonzero even at the lightest level.")
	fmt.Fprintln(w, "  H-b: bakerypp on the identical fleet commits zero FCFS violations at every contention level, with mutual exclusion intact (max concurrency 1).")
	fmt.Fprintln(w)
	cells, err := measureE21(cfg)
	if err != nil {
		return err
	}
	tb := stats.NewTable("FCFS violations vs contention, modulo strawman against Bakery++ (scenario e21: 4 shards, n=4, m=8, 40000 clients)",
		"algo", "interarrival", "seed", "grants", "fcfs-viol", "maxconc")
	for _, c := range cells {
		tb.AddRow(c.Algo, c.Arrival, c.Seed, c.Grants, c.FCFS, c.MaxConc)
	}
	fmt.Fprintln(w, tb)
	fmt.Fprintf(w, "table fingerprint: %s (three independent seeds; identical on every machine and for any -sweep-workers)\n\n", tb.Fingerprint())

	fcfs := make(map[string]map[int64]map[int]int64) // algo -> seed -> arrival -> count
	maxConc := make(map[string]int)
	for _, c := range cells {
		if fcfs[c.Algo] == nil {
			fcfs[c.Algo] = make(map[int64]map[int]int64)
		}
		if fcfs[c.Algo][c.Seed] == nil {
			fcfs[c.Algo][c.Seed] = make(map[int]int64)
		}
		fcfs[c.Algo][c.Seed][c.Arrival] = c.FCFS
		if c.MaxConc > maxConc[c.Algo] {
			maxConc[c.Algo] = c.MaxConc
		}
	}
	confirmedA, confirmedB := 0, 0
	for _, seed := range scenarioExpSeeds {
		mod, pp := fcfs["modbakery"][seed], fcfs["bakerypp"][seed]
		va, vb := "Refuted", "Refuted"
		if mod[20] > mod[80] && mod[80] > mod[320] && mod[320] > 0 {
			va = "Confirmed"
			confirmedA++
		}
		if pp[20] == 0 && pp[80] == 0 && pp[320] == 0 {
			vb = "Confirmed"
			confirmedB++
		}
		fmt.Fprintf(w, "seed %d: H-a %s (modbakery fcfs-viol light→heavy: %d → %d → %d), H-b %s (bakerypp: %d, %d, %d)\n",
			seed, va, mod[320], mod[80], mod[20], vb, pp[320], pp[80], pp[20])
	}
	fmt.Fprintf(w, "Verdict over %d seeds: H-a %d/%d, H-b %d/%d. modbakery's max concurrency here is %d — the same wrap that breaks FCFS breaks mutual exclusion (E9's verdict, observed operationally); bakerypp's stays %d. Rerun any trial with `bakeryserve -seed <seed> -scenario '%s'`.\n",
		len(scenarioExpSeeds), confirmedA, len(scenarioExpSeeds), confirmedB, len(scenarioExpSeeds),
		maxConc["modbakery"], maxConc["bakerypp"], fmt.Sprintf(e21SpecFmt, "modbakery", 20))
	return nil
}
