package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 21 {
		t.Fatalf("got %d experiments, want 21", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	ids := ExperimentIDs()
	if len(ids) != 21 || ids[0] != "E1" {
		t.Errorf("ExperimentIDs = %v", ids)
	}
}

func TestRunExperimentsUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiments(&buf, []string{"E99"}); err == nil {
		t.Error("unknown experiment ID accepted")
	}
}

// Each model-checking / simulator experiment runs standalone and produces
// its table. The heavy runtime experiments (E3, E4, E5) are covered by the
// benchmarks and by TestRunRuntimeExperiments below.
func TestRunCheapExperiments(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E6", "E7", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E18"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := RunExperiments(&buf, []string{id}); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			out := buf.String()
			if !strings.Contains(out, "### "+id) {
				t.Errorf("%s output missing header:\n%s", id, out)
			}
			if len(out) < 200 {
				t.Errorf("%s output suspiciously short:\n%s", id, out)
			}
		})
	}
}

func TestRunE8(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiments(&buf, []string{"E8"}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bakery", "bakerypp", "blackwhite", "peterson", "szymanski", "unbounded"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("E8 table missing %q", want)
		}
	}
}

func TestExpectedVerdictsInE1E2(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiments(&buf, []string{"E1"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "VIOLATION") {
		t.Errorf("E1 must verify every Bakery++ config:\n%s", buf.String())
	}
	buf.Reset()
	if err := RunExperiments(&buf, []string{"E2"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "VIOLATION:no-overflow") {
		t.Error("E2 must show Bakery's overflow violation")
	}
	if !strings.Contains(out, "counterexample") {
		t.Error("E2 must print the counterexample")
	}
}

// The runtime experiments complete and their tables include every lock.
func TestRunRuntimeExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime experiments take seconds")
	}
	var buf bytes.Buffer
	if err := RunExperiments(&buf, []string{"E3", "E5"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"32-bit", "bakery-8bit", "bakery++", "resets/op"} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime experiment output missing %q", want)
		}
	}
}
