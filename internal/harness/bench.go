package harness

// Machine-readable model-checking benchmarks: a fixed grid of exploration
// runs across the reduction modes (none / symmetry / por / symmetry+por)
// whose states/sec, states explored, and wall time are written as JSON so
// the perf trajectory of the engines is tracked from PR to PR
// (`bakerybench -bench-json BENCH_mc.json`).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"bakerypp/internal/mc"
	"bakerypp/internal/specs"
)

// MCBenchRecord is one exploration run of the benchmark grid.
type MCBenchRecord struct {
	// Name identifies the grid cell, e.g. "bakerypp-n4-m2/symmetry+por".
	Name string `json:"name"`
	Algo string `json:"algo"`
	N    int    `json:"n"`
	M    int    `json:"m"`
	// Workers is the engine setting used (0 sequential, -1 GOMAXPROCS).
	Workers int `json:"workers"`
	// Reduction is the requested reduction mode: "none", "symmetry",
	// "por", or "symmetry+por".
	Reduction string `json:"reduction"`
	// Symmetry/POR record the requested reductions individually; the
	// *_applied fields whether the run actually used them (a spec may
	// not support symmetry; POR needs no spec support).
	Symmetry   bool `json:"symmetry"`
	Applied    bool `json:"symmetry_applied"`
	POR        bool `json:"por"`
	PORApplied bool `json:"por_applied"`

	States       int     `json:"states"`
	Transitions  int     `json:"transitions"`
	Verdict      string  `json:"verdict"`
	Complete     bool    `json:"complete"`
	WallSeconds  float64 `json:"wall_seconds"`
	StatesPerSec float64 `json:"states_per_sec"`
}

// MCBenchReport is the JSON document bakerybench emits.
type MCBenchReport struct {
	GoVersion  string          `json:"go_version"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Timestamp  string          `json:"timestamp"`
	Records    []MCBenchRecord `json:"records"`
}

// mcBenchCell is one grid entry. Cells whose unreduced search is far
// beyond the state bound set fullToo = false and measure only the
// symmetry-based modes.
type mcBenchCell struct {
	algo    string
	cfg     specs.Config
	fullToo bool
}

// benchMode is one reduction mode of the benchmark grid.
type benchMode struct {
	name     string
	sym, por bool
}

// benchModes returns the modes a cell measures: all four reduction modes
// where the unreduced search is feasible, the symmetry-based pair
// otherwise.
func benchModes(fullToo bool) []benchMode {
	all := []benchMode{
		{"none", false, false},
		{"symmetry", true, false},
		{"por", false, true},
		{"symmetry+por", true, true},
	}
	if fullToo {
		return all
	}
	return []benchMode{all[1], all[3]}
}

// mcBenchGrid is the fixed benchmark grid. It spans the sizes the
// EXPERIMENTS tables use plus the configurations symmetry reduction
// newly unlocks (bakery++ N=5, bakery N=6 under the default bound).
func mcBenchGrid() []mcBenchCell {
	return []mcBenchCell{
		{"bakerypp", specs.Config{N: 2, M: 2}, true},
		{"bakerypp", specs.Config{N: 3, M: 2}, true},
		{"bakerypp", specs.Config{N: 4, M: 2}, true},
		{"bakerypp", specs.Config{N: 5, M: 2}, false},
		{"bakery", specs.Config{N: 3, M: 3}, true},
		{"bakery", specs.Config{N: 4, M: 4}, true},
		{"bakery", specs.Config{N: 6, M: 4}, false},
		{"szymanski", specs.Config{N: 3}, true},
		{"szymanski", specs.Config{N: 4}, true},
	}
}

// RunMCBench runs the benchmark grid. cfg.MCWorkers selects the engine;
// cfg.Symmetry is ignored (the grid always measures both sides where the
// full search is feasible).
func RunMCBench(cfg ExpConfig) (*MCBenchReport, error) {
	return runMCBench(cfg, mcBenchGrid())
}

func runMCBench(cfg ExpConfig, grid []mcBenchCell) (*MCBenchReport, error) {
	rep := &MCBenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, cell := range grid {
		for _, mode := range benchModes(cell.fullToo) {
			p, err := specs.Get(cell.algo, cell.cfg)
			if err != nil {
				return nil, err
			}
			res := mc.Check(p, mc.Options{
				Invariants: safetyInvariants(),
				Workers:    cfg.MCWorkers,
				Symmetry:   mode.sym,
				POR:        mode.por,
			})
			secs := res.Elapsed.Seconds()
			rate := 0.0
			if secs > 0 {
				rate = float64(res.States) / secs
			}
			rep.Records = append(rep.Records, MCBenchRecord{
				Name:         fmt.Sprintf("%s-n%d-m%d/%s", cell.algo, p.N, p.M, mode.name),
				Algo:         cell.algo,
				N:            p.N,
				M:            int(p.M),
				Workers:      cfg.MCWorkers,
				Reduction:    mode.name,
				Symmetry:     mode.sym,
				Applied:      res.Symmetry,
				POR:          mode.por,
				PORApplied:   res.POR,
				States:       res.States,
				Transitions:  res.Transitions,
				Verdict:      verdict(res),
				Complete:     res.Complete,
				WallSeconds:  secs,
				StatesPerSec: rate,
			})
		}
	}
	return rep, nil
}

// WriteMCBenchJSON runs the grid and writes the report to path.
func WriteMCBenchJSON(path string, cfg ExpConfig) (*MCBenchReport, error) {
	rep, err := RunMCBench(cfg)
	if err != nil {
		return nil, err
	}
	if err := writeBenchJSON(path, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

func writeBenchJSON(path string, rep *MCBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
