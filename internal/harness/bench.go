package harness

// Machine-readable model-checking benchmarks: a fixed grid of exploration
// runs (full and symmetry-reduced) whose states/sec, states explored, and
// wall time are written as JSON so the perf trajectory of the engines is
// tracked from PR to PR (`bakerybench -bench-json BENCH_mc.json`).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"bakerypp/internal/mc"
	"bakerypp/internal/specs"
)

// MCBenchRecord is one exploration run of the benchmark grid.
type MCBenchRecord struct {
	// Name identifies the grid cell, e.g. "bakerypp-n4-m2/symmetry".
	Name string `json:"name"`
	Algo string `json:"algo"`
	N    int    `json:"n"`
	M    int    `json:"m"`
	// Workers is the engine setting used (0 sequential, -1 GOMAXPROCS).
	Workers int `json:"workers"`
	// Symmetry records whether reduction was requested; Applied whether
	// the spec supported it.
	Symmetry bool `json:"symmetry"`
	Applied  bool `json:"symmetry_applied"`

	States       int     `json:"states"`
	Transitions  int     `json:"transitions"`
	Verdict      string  `json:"verdict"`
	Complete     bool    `json:"complete"`
	WallSeconds  float64 `json:"wall_seconds"`
	StatesPerSec float64 `json:"states_per_sec"`
}

// MCBenchReport is the JSON document bakerybench emits.
type MCBenchReport struct {
	GoVersion  string          `json:"go_version"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Timestamp  string          `json:"timestamp"`
	Records    []MCBenchRecord `json:"records"`
}

// mcBenchCell is one grid entry; symmetry-only cells (full search far
// beyond the state bound) set fullToo = false.
type mcBenchCell struct {
	algo    string
	cfg     specs.Config
	fullToo bool
}

// mcBenchGrid is the fixed benchmark grid. It spans the sizes the
// EXPERIMENTS tables use plus the configurations symmetry reduction
// newly unlocks (bakery++ N=5, bakery N=6 under the default bound).
func mcBenchGrid() []mcBenchCell {
	return []mcBenchCell{
		{"bakerypp", specs.Config{N: 2, M: 2}, true},
		{"bakerypp", specs.Config{N: 3, M: 2}, true},
		{"bakerypp", specs.Config{N: 4, M: 2}, true},
		{"bakerypp", specs.Config{N: 5, M: 2}, false},
		{"bakery", specs.Config{N: 3, M: 3}, true},
		{"bakery", specs.Config{N: 4, M: 4}, true},
		{"bakery", specs.Config{N: 6, M: 4}, false},
		{"szymanski", specs.Config{N: 3}, true},
		{"szymanski", specs.Config{N: 4}, true},
	}
}

// RunMCBench runs the benchmark grid. cfg.MCWorkers selects the engine;
// cfg.Symmetry is ignored (the grid always measures both sides where the
// full search is feasible).
func RunMCBench(cfg ExpConfig) (*MCBenchReport, error) {
	return runMCBench(cfg, mcBenchGrid())
}

func runMCBench(cfg ExpConfig, grid []mcBenchCell) (*MCBenchReport, error) {
	rep := &MCBenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, cell := range grid {
		variants := []bool{true}
		if cell.fullToo {
			variants = []bool{false, true}
		}
		for _, sym := range variants {
			p, err := specs.Get(cell.algo, cell.cfg)
			if err != nil {
				return nil, err
			}
			res := mc.Check(p, mc.Options{
				Invariants: safetyInvariants(),
				Workers:    cfg.MCWorkers,
				Symmetry:   sym,
			})
			secs := res.Elapsed.Seconds()
			rate := 0.0
			if secs > 0 {
				rate = float64(res.States) / secs
			}
			suffix := "full"
			if sym {
				suffix = "symmetry"
			}
			rep.Records = append(rep.Records, MCBenchRecord{
				Name:         fmt.Sprintf("%s-n%d-m%d/%s", cell.algo, p.N, p.M, suffix),
				Algo:         cell.algo,
				N:            p.N,
				M:            int(p.M),
				Workers:      cfg.MCWorkers,
				Symmetry:     sym,
				Applied:      res.Symmetry,
				States:       res.States,
				Transitions:  res.Transitions,
				Verdict:      verdict(res),
				Complete:     res.Complete,
				WallSeconds:  secs,
				StatesPerSec: rate,
			})
		}
	}
	return rep, nil
}

// WriteMCBenchJSON runs the grid and writes the report to path.
func WriteMCBenchJSON(path string, cfg ExpConfig) (*MCBenchReport, error) {
	rep, err := RunMCBench(cfg)
	if err != nil {
		return nil, err
	}
	if err := writeBenchJSON(path, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

func writeBenchJSON(path string, rep *MCBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
