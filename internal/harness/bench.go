package harness

// Machine-readable model-checking benchmarks: a fixed grid of exploration
// runs across the reduction modes (none / symmetry / por / symmetry+por)
// whose states/sec, states explored, and wall time are written as JSON so
// the perf trajectory of the engines is tracked from PR to PR
// (`bakerybench -bench-json BENCH_mc.json`).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"bakerypp/internal/gcl"
	"bakerypp/internal/mc"
	"bakerypp/internal/specs"
)

// MCBenchRecord is one exploration run of the benchmark grid.
type MCBenchRecord struct {
	// Name identifies the grid cell, e.g. "bakerypp-n4-m2/symmetry+por".
	Name string `json:"name"`
	Algo string `json:"algo"`
	N    int    `json:"n"`
	M    int    `json:"m"`
	// Analysis identifies what the record measures: "" (plain safety
	// check), "starve" (graph build + orbit-aware starvation search), or
	// "fcfs" (monitor product). For "starve" the States column counts
	// graph states; for "fcfs", monitor-product states.
	Analysis string `json:"analysis,omitempty"`
	// Workers is the engine setting used (0 sequential, -1 GOMAXPROCS).
	Workers int `json:"workers"`
	// Reduction is the requested reduction mode: "none", "symmetry",
	// "por", or "symmetry+por".
	Reduction string `json:"reduction"`
	// Symmetry/POR record the requested reductions individually; the
	// *_applied fields whether the run actually used them (a spec may
	// not support symmetry; POR needs no spec support).
	Symmetry   bool `json:"symmetry"`
	Applied    bool `json:"symmetry_applied"`
	POR        bool `json:"por"`
	PORApplied bool `json:"por_applied"`

	// Store is the visited-set tier the run used ("exact", "compact",
	// "bitstate", "exact,spill", ...); cells that measure a non-exact tier
	// suffix Name with "/<store>".
	Store string `json:"store"`

	States       int     `json:"states"`
	Transitions  int     `json:"transitions"`
	Verdict      string  `json:"verdict"`
	Complete     bool    `json:"complete"`
	WallSeconds  float64 `json:"wall_seconds"`
	StatesPerSec float64 `json:"states_per_sec"`
	// DESEventsPerSec is set only on the discrete-event-kernel row: the
	// single-threaded event-execution rate of the default DES sweep
	// (events across all cells / wall time). For that row States counts
	// executed events and Verdict carries the sweep table's fingerprint,
	// so the perf trajectory and the determinism contract travel in the
	// same record.
	DESEventsPerSec float64 `json:"des_events_per_sec,omitempty"`
	// EventsPerSec is the simulated-event execution rate of rows that
	// measure an event-loop simulation (the scenario rows); for those
	// rows it equals StatesPerSec, kept under its own honest name.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// AcqP99 is the fleet-wide p99 acquire latency (virtual-time ticks)
	// of a scenario row; 0 elsewhere.
	AcqP99 int64 `json:"acq_p99,omitempty"`
	// PeakRSSKB is the process's resident-set high-water mark (getrusage
	// Maxrss) after the run, in KiB. Monotonic across a report's records —
	// a run's true footprint is the delta against the preceding record —
	// and 0 on platforms without getrusage.
	PeakRSSKB int64 `json:"peak_rss_kb"`
}

// MCBenchReport is the JSON document bakerybench emits.
type MCBenchReport struct {
	GoVersion  string          `json:"go_version"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Timestamp  string          `json:"timestamp"`
	Records    []MCBenchRecord `json:"records"`
}

// mcBenchCell is one grid entry. Cells whose unreduced search is far
// beyond the state bound set fullToo = false and measure only the
// symmetry-based modes.
type mcBenchCell struct {
	algo    string
	cfg     specs.Config
	fullToo bool
}

// benchMode is one reduction mode of the benchmark grid.
type benchMode struct {
	name     string
	sym, por bool
}

// benchModes returns the modes a cell measures: all four reduction modes
// where the unreduced search is feasible, the symmetry-based pair
// otherwise.
func benchModes(fullToo bool) []benchMode {
	all := []benchMode{
		{"none", false, false},
		{"symmetry", true, false},
		{"por", false, true},
		{"symmetry+por", true, true},
	}
	if fullToo {
		return all
	}
	return []benchMode{all[1], all[3]}
}

// mcBenchGrid is the fixed benchmark grid. It spans the sizes the
// EXPERIMENTS tables use plus the configurations symmetry reduction
// newly unlocks (bakery++ N=5, bakery N=6 under the default bound).
func mcBenchGrid() []mcBenchCell {
	return []mcBenchCell{
		{"bakerypp", specs.Config{N: 2, M: 2}, true},
		{"bakerypp", specs.Config{N: 3, M: 2}, true},
		{"bakerypp", specs.Config{N: 4, M: 2}, true},
		{"bakerypp", specs.Config{N: 5, M: 2}, false},
		{"bakery", specs.Config{N: 3, M: 3}, true},
		{"bakery", specs.Config{N: 4, M: 4}, true},
		{"bakery", specs.Config{N: 6, M: 4}, false},
		{"szymanski", specs.Config{N: 3}, true},
		{"szymanski", specs.Config{N: 4}, true},
	}
}

// RunMCBench runs the benchmark grid — the safety-check cells plus the
// liveness rows (starvation on full vs quotient graphs, FCFS on concrete
// vs pinned-orbit product keys) the unified analysis pipeline added, plus
// the store-mode rows (reduction modes × visited-set tiers with peak-RSS).
// cfg.MCWorkers selects the engine; cfg.Symmetry is ignored (the grid
// always measures both sides where the full search is feasible);
// cfg.Store, when set, overrides the store of every safety cell instead of
// appending the store grid.
func RunMCBench(cfg ExpConfig) (*MCBenchReport, error) {
	rep, err := runMCBench(cfg, mcBenchGrid())
	if err != nil {
		return nil, err
	}
	if err := appendLivenessBench(rep, cfg, livenessBenchCells()); err != nil {
		return nil, err
	}
	if cfg.Store == nil {
		if err := appendStoreBench(rep, cfg, storeBenchCells()); err != nil {
			return nil, err
		}
	}
	if err := appendDESBench(rep); err != nil {
		return nil, err
	}
	if err := appendScenarioBench(rep, []string{"smoke", "overload"}); err != nil {
		return nil, err
	}
	if err := appendScalingBench(rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// scalingWorkers is the worker grid of the scaling rows: the parallel
// engine pinned to 1, 2, and 4 workers, plus -1 (every core the machine
// has). Row names carry the setting as a "/w<n>" (or "/wmax") suffix so
// CompareMCBench can pair them and watch the wmax/w1 speedup ratio.
var scalingWorkers = []int{1, 2, 4, -1}

// scalingWorkerSuffix renders a worker setting as the scaling rows' name
// suffix.
func scalingWorkerSuffix(w int) string {
	if w < 0 {
		return "wmax"
	}
	return fmt.Sprintf("w%d", w)
}

// appendScalingBench measures how the parallel engine scales with worker
// count: an unreduced safety check of two mid-size cells — big enough that
// the chunked expand/drain machinery dominates, small enough that four
// worker settings stay cheap — at each scalingWorkers setting. The rows
// feed CompareMCBench's scaling tripwire: on a multi-core machine the
// "wmax" row should not fall behind "w1" (owner-computes sharding is
// supposed to pay for its routing), and a regression of that ratio across
// snapshots warns without failing the gate (single-core runners would
// otherwise always fail it).
func appendScalingBench(rep *MCBenchReport) error {
	cells := []mcBenchCell{
		{"bakerypp", specs.Config{N: 4, M: 2}, true},
		{"bakery", specs.Config{N: 4, M: 4}, true},
	}
	none := benchMode{"none", false, false}
	for _, cell := range cells {
		for _, w := range scalingWorkers {
			p, err := specs.Get(cell.algo, cell.cfg)
			if err != nil {
				return err
			}
			res := mc.Check(p, mc.Options{
				Invariants: safetyInvariants(),
				Workers:    w,
			})
			rec := benchRecord(cell.algo, none, w, "exact", res)
			rec.Name = fmt.Sprintf("scale/%s-n%d-m%d/%s", cell.algo, cell.cfg.N, cell.cfg.M, scalingWorkerSuffix(w))
			rep.Records = append(rep.Records, rec)
		}
	}
	return nil
}

// RunMCBenchSmall runs a trimmed safety-only grid — the cells quick enough
// for a CI gate — producing rows whose names match the full grid's, so a
// small run diffs cleanly against a committed full snapshot with
// CompareMCBench (the full snapshot's extra rows show as "only in old").
func RunMCBenchSmall(cfg ExpConfig) (*MCBenchReport, error) {
	rep, err := runMCBench(cfg, []mcBenchCell{
		{"bakerypp", specs.Config{N: 2, M: 2}, true},
		{"bakerypp", specs.Config{N: 3, M: 2}, true},
		{"bakerypp", specs.Config{N: 4, M: 2}, true},
		{"szymanski", specs.Config{N: 3}, true},
	})
	if err != nil {
		return nil, err
	}
	// The smoke scenario is quick enough for the CI gate, and including
	// it makes the committed snapshot's scenario fingerprint and event
	// rate part of the bench-compare tripwire on every PR.
	if err := appendScenarioBench(rep, []string{"smoke"}); err != nil {
		return nil, err
	}
	return rep, nil
}

// appendDESBench measures the discrete-event kernel: the default DES
// sweep run single-threaded (Workers 0 — the kernel's own rate, not the
// cell pool's), reported as executed events per wall second. The sweep
// table's fingerprint rides along in the verdict column, so a perf
// regression and a determinism break both show in this one row.
func appendDESBench(rep *MCBenchReport) error {
	sweep := DefaultDESSweep()
	sweep.Workers = 0
	start := time.Now()
	res, err := RunDESSweep(sweep)
	if err != nil {
		return err
	}
	secs := time.Since(start).Seconds()
	var events int64
	for i := range res.Cells {
		events += res.Cells[i].Events
	}
	rate := 0.0
	if secs > 0 {
		rate = float64(events) / secs
	}
	rep.Records = append(rep.Records, MCBenchRecord{
		Name:            "des-sweep-default/unit",
		Algo:            "des-sweep",
		Analysis:        "des",
		Workers:         0,
		Reduction:       "none",
		Store:           "exact",
		States:          int(events),
		Verdict:         "fingerprint:" + res.Table().Fingerprint(),
		Complete:        true,
		WallSeconds:     secs,
		StatesPerSec:    rate,
		DESEventsPerSec: rate,
		PeakRSSKB:       peakRSSKB(),
	})
	return nil
}

// storeBenchCell is one store-mode row: a safety check of algo/cfg under
// the given reduction mode and store spec.
type storeBenchCell struct {
	algo  string
	cfg   specs.Config
	mode  benchMode
	store string
}

// storeBenchCells crosses reduction modes with the visited-set tiers on
// the n=4 cell — big enough (1.6M full states) that the tiers' memory
// trade-offs show, small enough that six extra rows stay cheap.
func storeBenchCells() []storeBenchCell {
	c := specs.Config{N: 4, M: 2}
	symPor := benchMode{"symmetry+por", true, true}
	none := benchMode{"none", false, false}
	return []storeBenchCell{
		{"bakerypp", c, symPor, "compact"},
		{"bakerypp", c, symPor, "compact64"},
		{"bakerypp", c, symPor, "bitstate"},
		{"bakerypp", c, symPor, "exact,spill"},
		{"bakerypp", c, symPor, "compact,spill"},
		{"bakerypp", c, none, "compact"},
		{"bakerypp", c, none, "exact,spill"},
	}
}

// appendStoreBench measures the store tiers. Cells are a parameter so the
// schema test can run a trimmed grid.
func appendStoreBench(rep *MCBenchReport, cfg ExpConfig, cells []storeBenchCell) error {
	for _, cell := range cells {
		so, err := mc.ParseStoreSpec(cell.store)
		if err != nil {
			return err
		}
		p, err := specs.Get(cell.algo, cell.cfg)
		if err != nil {
			return err
		}
		res := mc.Check(p, mc.Options{
			Invariants: safetyInvariants(),
			Workers:    cfg.MCWorkers,
			Symmetry:   cell.mode.sym,
			POR:        cell.mode.por,
			Store:      so,
		})
		rep.Records = append(rep.Records, benchRecord(cell.algo, cell.mode, cfg.MCWorkers, so.String(), res))
	}
	return nil
}

// benchRecord converts one safety-check result into a grid record.
func benchRecord(algo string, mode benchMode, workers int, store string, res *mc.Result) MCBenchRecord {
	secs := res.Elapsed.Seconds()
	rate := 0.0
	if secs > 0 {
		rate = float64(res.States) / secs
	}
	name := fmt.Sprintf("%s-n%d-m%d/%s", algo, res.Prog.N, res.Prog.M, mode.name)
	if store != "exact" {
		name += "/" + store
	}
	return MCBenchRecord{
		Name:         name,
		Algo:         algo,
		N:            res.Prog.N,
		M:            int(res.Prog.M),
		Workers:      workers,
		Reduction:    mode.name,
		Symmetry:     mode.sym,
		Applied:      res.Symmetry,
		POR:          mode.por,
		PORApplied:   res.POR,
		Store:        store,
		States:       res.States,
		Transitions:  res.Transitions,
		Verdict:      verdict(res),
		Complete:     res.Complete,
		WallSeconds:  secs,
		StatesPerSec: rate,
		PeakRSSKB:    peakRSSKB(),
	}
}

// livenessBenchCell is one starvation-analysis cell of the liveness grid.
type livenessBenchCell struct {
	algo string
	cfg  specs.Config
	full bool // run the unreduced side too
}

// livenessBenchCells is the fixed starvation grid (the FCFS pair is fixed
// inside appendLivenessBench).
func livenessBenchCells() []livenessBenchCell {
	return []livenessBenchCell{
		{"bakerypp", specs.Config{N: 3, M: 2}, true},
		{"bakerypp", specs.Config{N: 4, M: 2}, false},
	}
}

// appendLivenessBench measures the liveness analyses across reduction
// modes: E7's starvation question on the full and the quotient graph, and
// the FCFS monitor on concrete and pinned-orbit keys. Cells are a
// parameter so the schema test can run a trimmed grid.
func appendLivenessBench(rep *MCBenchReport, cfg ExpConfig, cells []livenessBenchCell) error {
	record := func(name, algo string, c specs.Config, mode string, workers int, sym, applied bool,
		states, transitions int, verdict string, complete bool, secs float64) {
		rate := 0.0
		if secs > 0 {
			rate = float64(states) / secs
		}
		rep.Records = append(rep.Records, MCBenchRecord{
			Name: name, Algo: algo, N: c.N, M: c.M,
			Analysis: mode, Workers: workers,
			Reduction: map[bool]string{false: "none", true: "symmetry"}[sym],
			Symmetry:  sym, Applied: applied,
			Store:  "exact",
			States: states, Transitions: transitions,
			Verdict: verdict, Complete: complete,
			WallSeconds: secs, StatesPerSec: rate,
			PeakRSSKB: peakRSSKB(),
		})
	}
	for _, c := range cells {
		for _, sym := range []bool{false, true} {
			if !sym && !c.full {
				continue
			}
			p, err := specs.Get(c.algo, c.cfg)
			if err != nil {
				return err
			}
			start := time.Now()
			g, err := mc.BuildGraph(p, mc.Options{Workers: cfg.MCWorkers, Symmetry: sym})
			if err != nil {
				return err
			}
			slow := p.N - 1
			l1 := p.LabelIndex("l1")
			fast := make([]int, 0, p.N-1)
			for pid := 0; pid < p.N; pid++ {
				if pid != slow {
					fast = append(fast, pid)
				}
			}
			found := g.FindStarvation(func(pr *gcl.Prog, s gcl.State) bool {
				return pr.PC(s, slow) == l1
			}, fast) != nil
			verdict := "no cycle"
			if found {
				verdict = "cycle"
			}
			mode := map[bool]string{false: "none", true: "symmetry"}[sym]
			record(fmt.Sprintf("%s-n%d-m%d/starve/%s", c.algo, c.cfg.N, c.cfg.M, mode),
				c.algo, c.cfg, "starve", cfg.MCWorkers, sym, g.Quotient(),
				g.NumStates(), g.Summary.Transitions, verdict, g.Summary.Complete,
				time.Since(start).Seconds())
		}
	}
	for _, sym := range []bool{false, true} {
		c := specs.Config{N: 3, M: 2}
		p, err := specs.Get("bakerypp", c)
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := mc.CheckFCFS(p, 2, 0, mc.Options{Symmetry: sym})
		if err != nil {
			return err
		}
		verdict := "holds"
		if !res.Holds {
			verdict = "VIOLATED"
		}
		// CheckFCFS always runs sequentially; recording Workers 0 keeps the
		// machine-readable surface honest about which engine produced it.
		mode := map[bool]string{false: "none", true: "symmetry"}[sym]
		record(fmt.Sprintf("bakerypp-n%d-m%d/fcfs/%s", c.N, c.M, mode),
			"bakerypp", c, "fcfs", 0, sym, res.Symmetry,
			res.States, 0, verdict, res.Complete, time.Since(start).Seconds())
	}
	return nil
}

func runMCBench(cfg ExpConfig, grid []mcBenchCell) (*MCBenchReport, error) {
	rep := &MCBenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	store := mc.StoreOptions{}
	if cfg.Store != nil {
		store = *cfg.Store
	}
	for _, cell := range grid {
		for _, mode := range benchModes(cell.fullToo) {
			p, err := specs.Get(cell.algo, cell.cfg)
			if err != nil {
				return nil, err
			}
			res := mc.Check(p, mc.Options{
				Invariants: safetyInvariants(),
				Workers:    cfg.MCWorkers,
				Symmetry:   mode.sym,
				POR:        mode.por,
				Store:      store,
			})
			rep.Records = append(rep.Records, benchRecord(cell.algo, mode, cfg.MCWorkers, store.String(), res))
		}
	}
	return rep, nil
}

// WriteMCBenchJSON runs the grid and writes the report to path.
func WriteMCBenchJSON(path string, cfg ExpConfig) (*MCBenchReport, error) {
	rep, err := RunMCBench(cfg)
	if err != nil {
		return nil, err
	}
	if err := WriteBenchJSON(path, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// WriteBenchJSON writes a report as indented JSON to path.
func WriteBenchJSON(path string, rep *MCBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
