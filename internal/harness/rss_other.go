//go:build !unix

package harness

// peakRSSKB is unavailable without getrusage; records carry 0.
func peakRSSKB() int64 { return 0 }
