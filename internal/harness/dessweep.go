package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"strconv"
	"sync"

	"bakerypp/internal/des"
	"bakerypp/internal/gcl"
	"bakerypp/internal/preempt"
	"bakerypp/internal/specs"
	"bakerypp/internal/stats"
)

// This file is the discrete-event execution mode of the scenario sweep:
// instead of spawning a goroutine herd per cell (runSweepCellOnce), each
// cell runs as a single-threaded event loop on a des.Kernel over the
// cell's gcl specification program. Virtual time comes from a latency
// model, so cells report acquire-latency percentiles (p50/p95/p99),
// per-lock wait histograms and overflow/reset timing next to the classic
// counters — and because a run is a pure function of (grid coordinates,
// seed, latency spec), the table fingerprint is identical for any worker
// count and GOMAXPROCS. Runs can be recorded as des event logs and
// replayed (cmd/bakeryreplay) to a byte-identical table: the aggregation
// below consumes only the des.Rec stream, whether it comes from a live
// kernel or from a file.

// DESLockSpec names one lock on the DES sweep's lock axis: a registered
// gcl specification plus the register mode to run it under. Wrap runs
// the spec on wrapping b-bit registers (gcl.ModeWrap) — the regime where
// classic Bakery malfunctions observably.
type DESLockSpec struct {
	Name string
	Algo string
	Wrap bool
}

// DESPattern is one arrival/hold pattern of the DES sweep. PoissonMean
// selects the open-loop arrival model: after each critical section the
// process re-arrives after a seeded exponential interarrival gap with
// this mean (in virtual-time units); zero means closed-loop sustained
// re-arrival after one unit. Hold is the critical-section length in
// units, priced by the latency model's Hold class.
type DESPattern struct {
	Name        string
	PoissonMean int64
	Hold        int64
}

// DESSweepConfig describes a DES sweep grid and how to execute it.
type DESSweepConfig struct {
	Locks    []DESLockSpec
	Patterns []DESPattern
	Points   []GridPoint
	// Iters is the number of critical sections per process per run.
	Iters int
	// Seeds lists the schedule seeds; each cell executes once per seed
	// and the aggregated row merges the runs.
	Seeds []int64
	// Workers sizes the cell worker pool: 0 runs sequentially,
	// negative uses GOMAXPROCS. The result is identical for any value.
	Workers int
	// Latency is the latency-model spec (des.ParseModel); "" = unit.
	Latency string
	// MaxEvents bounds a single run's event count (0 = a generous
	// default); hitting the bound truncates deterministically.
	MaxEvents int64
	// Record, when non-nil, receives the full event log of the sweep
	// (des log grammar) after all cells complete, in canonical cell
	// order — so the recorded bytes are identical for any Workers.
	Record io.Writer
}

func (c *DESSweepConfig) cells() int {
	return len(c.Locks) * len(c.Patterns) * len(c.Points)
}

// DESCellResult is the aggregated outcome of one DES grid cell across
// its seeds.
type DESCellResult struct {
	Lock    string
	Pattern string
	N       int
	M       int64
	Runs    int
	// Ops counts critical sections entered; Events counts executed
	// actions; Time sums the runs' final virtual clocks — the
	// latency-model-denominated clock all rates below use.
	Ops    int64
	Events int64
	Time   int64
	// Violations counts entries into a >=2-in-cs condition (nonzero
	// only for broken locks, e.g. bakery on wrapping registers);
	// MaxConcurrency is the peak cs occupancy.
	Violations     int64
	MaxConcurrency int
	// Resets and Overflows count "reset"-tagged actions (Bakery++'s
	// overflow recovery) and overflowing stores.
	Resets    int64
	Overflows int64
	// Stuck counts runs that ended with some process blocked forever
	// (a deadlock under the cell's register mode).
	Stuck int64
	// Acquire is the distribution of virtual time from a "try" action
	// to the matching "cs-enter"; Wait is the distribution of blocked
	// spans (a process parked on a false guard until its wake action);
	// ResetGap is the distribution of virtual time between consecutive
	// resets (the first gap measured from run start).
	Acquire  *stats.Histogram
	Wait     *stats.Histogram
	ResetGap *stats.Histogram
}

// OpsPerKTime is throughput in the virtual clock: critical sections per
// thousand time units.
func (c *DESCellResult) OpsPerKTime() float64 {
	if c.Time == 0 {
		return 0
	}
	return 1000 * float64(c.Ops) / float64(c.Time)
}

// DESSweepResult is the outcome of a DES sweep, one DESCellResult per
// grid cell in canonical (lock-major, then pattern, then point) order.
type DESSweepResult struct {
	Latency string
	Cells   []DESCellResult
}

// Table renders the aggregated DES sweep as a stats.Table; same
// SweepConfig (same seeds) ⇒ byte-identical output, regardless of
// Workers, and a replayed recording reproduces it byte for byte.
func (r *DESSweepResult) Table() *stats.Table {
	return desTable(r.Cells, r.Latency)
}

func desTable(cells []DESCellResult, latency string) *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Discrete-event contention sweep (latency=%s)", latency),
		"lock", "pattern", "N", "M", "runs", "ops", "events", "time",
		"ops/ktime", "violations", "maxconc", "resets", "overflows", "stuck",
		"acq p50", "acq p95", "acq p99", "wait p50", "wait p99", "reset-gap p50")
	for i := range cells {
		c := &cells[i]
		tb.AddRow(c.Lock, c.Pattern, c.N, c.M, c.Runs, c.Ops, c.Events,
			c.Time, c.OpsPerKTime(), c.Violations, c.MaxConcurrency,
			c.Resets, c.Overflows, c.Stuck,
			c.Acquire.Quantile(0.5), c.Acquire.Quantile(0.95), c.Acquire.Quantile(0.99),
			c.Wait.Quantile(0.5), c.Wait.Quantile(0.99),
			c.ResetGap.Quantile(0.5))
	}
	return tb
}

// desDefaultMaxEvents bounds one run when the config does not: far above
// anything the shipped grids produce, so it only catches runaway specs.
const desDefaultMaxEvents = 4_000_000

// RunDESSweep executes the grid in discrete-event mode and returns the
// merged results.
func RunDESSweep(cfg DESSweepConfig) (*DESSweepResult, error) {
	if cfg.cells() == 0 {
		return nil, fmt.Errorf("harness: DES sweep grid is empty (locks=%d patterns=%d points=%d)",
			len(cfg.Locks), len(cfg.Patterns), len(cfg.Points))
	}
	if cfg.Iters < 1 {
		return nil, fmt.Errorf("harness: DES sweep Iters must be >= 1")
	}
	if len(cfg.Seeds) == 0 {
		return nil, fmt.Errorf("harness: DES sweep needs at least one seed")
	}
	for _, pt := range cfg.Points {
		if pt.N < 1 || pt.N > 64 || pt.M < 1 {
			return nil, fmt.Errorf("harness: bad DES grid point N=%d M=%d", pt.N, pt.M)
		}
	}
	latency := cfg.Latency
	if latency == "" {
		latency = "unit"
	}
	if _, err := des.ParseModel(latency, 0); err != nil {
		return nil, err
	}
	maxEvents := cfg.MaxEvents
	if maxEvents <= 0 {
		maxEvents = desDefaultMaxEvents
	}

	type cellKey struct {
		lock    DESLockSpec
		pattern DESPattern
		point   GridPoint
	}
	keys := make([]cellKey, 0, cfg.cells())
	for _, l := range cfg.Locks {
		for _, p := range cfg.Patterns {
			for _, pt := range cfg.Points {
				keys = append(keys, cellKey{l, p, pt})
			}
		}
	}

	results := make([]DESCellResult, len(keys))
	// recorded[cell][run] buffers event streams when recording; kept
	// per cell so the log can be written in canonical order afterwards
	// regardless of which worker finished when.
	var recorded [][][]des.Rec
	if cfg.Record != nil {
		recorded = make([][][]des.Rec, len(keys))
	}
	errs := make([]error, len(keys))
	workers := cfg.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(keys) {
		workers = len(keys)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				k := keys[idx]
				cell := DESCellResult{
					Lock: k.lock.Name, Pattern: k.pattern.Name,
					N: k.point.N, M: k.point.M,
					Acquire: stats.NewHistogram(), Wait: stats.NewHistogram(),
					ResetGap: stats.NewHistogram(),
				}
				for _, seed := range cfg.Seeds {
					schedSeed := seed*1000003 + int64(idx)
					model, err := des.ParseModel(latency, schedSeed)
					if err != nil {
						errs[idx] = err
						break
					}
					acc := newDESAccum(k.point.N)
					emit := acc.Add
					if recorded != nil {
						var buf []des.Rec
						emit = func(r des.Rec) {
							buf = append(buf, r)
							acc.Add(r)
						}
						err = runDESCellOnce(k.lock, k.pattern, k.point, model, schedSeed, cfg.Iters, maxEvents, emit)
						recorded[idx] = append(recorded[idx], buf)
					} else {
						err = runDESCellOnce(k.lock, k.pattern, k.point, model, schedSeed, cfg.Iters, maxEvents, emit)
					}
					if err != nil {
						errs[idx] = err
						break
					}
					acc.finish(&cell)
				}
				results[idx] = cell
			}
		}()
	}
	for idx := range keys {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res := &DESSweepResult{Latency: latency, Cells: results}

	if cfg.Record != nil {
		w := des.NewLogWriter(cfg.Record)
		w.Meta(desLogHeader{
			V: des.LogVersion, Kind: "des-sweep", Latency: latency,
			Iters: cfg.Iters, Seeds: cfg.Seeds,
		})
		for idx, k := range keys {
			w.Meta(desLogCell{
				Cell: idx, Lock: k.lock.Name, Algo: k.lock.Algo, Wrap: k.lock.Wrap,
				Pattern: k.pattern.Name, N: k.point.N, M: k.point.M,
			})
			for run, recs := range recorded[idx] {
				w.Meta(desLogRun{Run: cfg.Seeds[run]})
				for _, r := range recs {
					w.Event(r)
				}
			}
		}
		w.Meta(desLogTrailer{Fingerprint: res.Table().Fingerprint()})
		if err := w.Flush(); err != nil {
			return nil, fmt.Errorf("harness: writing DES event log: %w", err)
		}
	}
	return res, nil
}

// runDESCellOnce plays one run of one cell as an event loop on a fresh
// kernel, emitting every executed action (and every block instant) to
// emit. The run is single-threaded and consumes one seeded stream in
// kernel event order, so the emitted stream is a pure function of
// (lock, pattern, point, model, schedSeed, iters).
func runDESCellOnce(lock DESLockSpec, pat DESPattern, pt GridPoint, model des.Model, schedSeed int64, iters int, maxEvents int64, emit func(des.Rec)) error {
	prog, err := specs.Get(lock.Algo, specs.Config{N: pt.N, M: int(pt.M)})
	if err != nil {
		return err
	}
	mode := gcl.ModeUnbounded
	if lock.Wrap {
		mode = gcl.ModeWrap
	}
	n := pt.N
	k := des.NewKernel()
	rng := preempt.Seed64(schedSeed, 0xDE5)
	draw := func() uint64 {
		rng = preempt.Xorshift64(rng)
		return rng
	}
	// Exponential interarrival via inverse transform on a 53-bit
	// uniform (the open-loop Poisson arrival model); closed-loop
	// patterns re-arrive after one unit.
	arrival := func() int64 {
		if pat.PoissonMean <= 0 {
			return 1
		}
		u := float64(draw()>>11+1) / (1 << 53)
		gap := int64(math.Round(-math.Log(u) * float64(pat.PoissonMean)))
		if gap < 1 {
			gap = 1
		}
		return gap
	}

	state := prog.InitState()
	done := make([]bool, n)
	blocked := make([]bool, n)
	entries := make([]int, n)
	pendingClass := make([]des.Class, n)
	var succs []gcl.Succ

	var exec func(pid int)
	schedule := func(pid int, class des.Class, units int64) {
		pendingClass[pid] = class
		k.At(pid, model.Cost(class, pid, units), func() { exec(pid) })
	}
	// wake re-schedules, in pid order, every parked process whose guard
	// became true; called after every state change so blocked spans end
	// at the earliest enabling action, deterministically.
	wake := func() {
		for pid := 0; pid < n; pid++ {
			if blocked[pid] && !done[pid] && prog.Enabled(state, pid) {
				blocked[pid] = false
				schedule(pid, des.Wait, 0)
			}
		}
	}
	exec = func(pid int) {
		if done[pid] {
			return
		}
		succs = prog.Succs(state, pid, mode, succs[:0])
		if len(succs) == 0 {
			// Disabled between scheduling and execution (another
			// event at an earlier instant flipped the guard): park.
			blocked[pid] = true
			emit(des.Rec{T: k.Now(), Pid: pid, Class: des.Block})
			return
		}
		sc := succs[0]
		if len(succs) > 1 {
			sc = succs[int(draw()%uint64(len(succs)))]
		}
		state = sc.State
		emit(des.Rec{T: k.Now(), Pid: pid, Class: pendingClass[pid], Tag: sc.Tag, Overflow: sc.Overflow})
		if sc.Tag == "cs-enter" {
			entries[pid]++
		}
		label := prog.PCLabel(state, pid)
		switch {
		case label == "ncs" && entries[pid] >= iters:
			// Retired: this process competes no more. Its shared
			// state is fully released (the exit protocol ran on the
			// way back to ncs), so it cannot block anyone.
			done[pid] = true
		case !prog.Enabled(state, pid):
			blocked[pid] = true
			emit(des.Rec{T: k.Now(), Pid: pid, Class: des.Block})
		case label == "cs":
			schedule(pid, des.Hold, pat.Hold)
		case label == "ncs":
			schedule(pid, des.Think, arrival())
		default:
			schedule(pid, des.Step, 0)
		}
		wake()
	}

	for pid := 0; pid < n; pid++ {
		schedule(pid, des.Start, 0)
	}
	for k.Executed() < maxEvents && k.Step() {
	}
	return nil
}

// desAccum folds a des.Rec stream into per-run statistics and merges
// each finished run into a DESCellResult. It is the single aggregation
// path for both live runs and replayed recordings — which is what makes
// a replay byte-identical by construction.
type desAccum struct {
	n         int
	ops       int64
	events    int64
	endTime   int64
	violate   int64
	maxConc   int
	resets    int64
	overflows int64
	inCS      int
	lastReset int64
	tryAt     []int64
	blockAt   []int64
	acquire   *stats.Histogram
	wait      *stats.Histogram
	resetGap  *stats.Histogram
}

func newDESAccum(n int) *desAccum {
	a := &desAccum{
		n:        n,
		tryAt:    make([]int64, n),
		blockAt:  make([]int64, n),
		acquire:  stats.NewHistogram(),
		wait:     stats.NewHistogram(),
		resetGap: stats.NewHistogram(),
	}
	for i := 0; i < n; i++ {
		a.tryAt[i] = -1
		a.blockAt[i] = -1
	}
	return a
}

// Add consumes one event record.
func (a *desAccum) Add(r des.Rec) {
	if r.Pid < 0 || r.Pid >= a.n {
		return
	}
	if r.T > a.endTime {
		a.endTime = r.T
	}
	if r.Class == des.Block {
		if a.blockAt[r.Pid] < 0 {
			a.blockAt[r.Pid] = r.T
		}
		return
	}
	a.events++
	if bt := a.blockAt[r.Pid]; bt >= 0 {
		a.wait.Record(r.T - bt)
		a.blockAt[r.Pid] = -1
	}
	if r.Overflow {
		a.overflows++
	}
	switch r.Tag {
	case "try":
		a.tryAt[r.Pid] = r.T
	case "cs-enter":
		a.ops++
		if t := a.tryAt[r.Pid]; t >= 0 {
			a.acquire.Record(r.T - t)
			a.tryAt[r.Pid] = -1
		}
		a.inCS++
		if a.inCS > a.maxConc {
			a.maxConc = a.inCS
		}
		if a.inCS == 2 {
			a.violate++
		}
	case "cs-exit":
		if a.inCS > 0 {
			a.inCS--
		}
	case "reset":
		a.resets++
		a.resetGap.Record(r.T - a.lastReset)
		a.lastReset = r.T
	}
}

// finish merges the run into cell and resets nothing: an accumulator is
// single-run; callers create a fresh one per run.
func (a *desAccum) finish(cell *DESCellResult) {
	cell.Runs++
	cell.Ops += a.ops
	cell.Events += a.events
	cell.Time += a.endTime
	cell.Violations += a.violate
	if a.maxConc > cell.MaxConcurrency {
		cell.MaxConcurrency = a.maxConc
	}
	cell.Resets += a.resets
	cell.Overflows += a.overflows
	for pid := 0; pid < a.n; pid++ {
		if a.blockAt[pid] >= 0 {
			cell.Stuck++
			break
		}
	}
	cell.Acquire.Merge(a.acquire)
	cell.Wait.Merge(a.wait)
	cell.ResetGap.Merge(a.resetGap)
}

// Log line shapes. Field order is the byte-stability contract: these
// structs are what LogWriter.Meta marshals, so reordering fields changes
// recorded bytes — bump des.LogVersion if that ever becomes necessary.
type desLogHeader struct {
	V       int     `json:"v"`
	Kind    string  `json:"kind"`
	Latency string  `json:"latency"`
	Iters   int     `json:"iters"`
	Seeds   []int64 `json:"seeds"`
}

type desLogCell struct {
	Cell    int    `json:"cell"`
	Lock    string `json:"lock"`
	Algo    string `json:"algo"`
	Wrap    bool   `json:"wrap"`
	Pattern string `json:"pattern"`
	N       int    `json:"n"`
	M       int64  `json:"m"`
}

type desLogRun struct {
	Run int64 `json:"run"`
}

type desLogTrailer struct {
	Fingerprint string `json:"fingerprint"`
}

// DESReplay is the outcome of replaying a recorded DES sweep log.
type DESReplay struct {
	Table *stats.Table
	// Fingerprint is the replayed table's fingerprint; Recorded is the
	// one stored in the log's trailer. They match iff the replay is
	// bit-identical to the original run.
	Fingerprint string
	Recorded    string
}

// OK reports whether the replayed table is bit-identical to the recorded
// run.
func (r *DESReplay) OK() bool { return r.Fingerprint == r.Recorded }

// ReplayDESLog rebuilds the sweep table of a recorded DES sweep from its
// event log alone — no simulation, just the shared accumulator over the
// recorded streams — and returns it with both fingerprints.
func ReplayDESLog(rd io.Reader) (*DESReplay, error) {
	r := des.NewLogReader(rd)

	line, err := r.Next()
	if err != nil {
		return nil, fmt.Errorf("harness: DES log is empty: %w", err)
	}
	var hdr desLogHeader
	if line.IsEvent || json.Unmarshal(line.Raw, &hdr) != nil || hdr.Kind != "des-sweep" {
		return nil, fmt.Errorf("harness: not a DES sweep log (header %s)", line.Raw)
	}
	if hdr.V != des.LogVersion {
		return nil, fmt.Errorf("harness: DES log version %d, this build reads %d", hdr.V, des.LogVersion)
	}

	var (
		cells    []DESCellResult
		cur      *DESCellResult
		acc      *desAccum
		trailer  desLogTrailer
		sawTrail bool
	)
	closeRun := func() {
		if acc != nil && cur != nil {
			acc.finish(cur)
			acc = nil
		}
	}
	for {
		line, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if line.IsEvent {
			if acc == nil {
				return nil, fmt.Errorf("harness: DES log has an event before any run marker")
			}
			acc.Add(line.Event)
			continue
		}
		// Metadata: cell marker, run marker, or trailer — identified
		// by their distinguishing keys.
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line.Raw, &probe); err != nil {
			return nil, err
		}
		switch {
		case probe["cell"] != nil:
			closeRun()
			var c desLogCell
			if err := json.Unmarshal(line.Raw, &c); err != nil {
				return nil, err
			}
			cells = append(cells, DESCellResult{
				Lock: c.Lock, Pattern: c.Pattern, N: c.N, M: c.M,
				Acquire: stats.NewHistogram(), Wait: stats.NewHistogram(),
				ResetGap: stats.NewHistogram(),
			})
			cur = &cells[len(cells)-1]
		case probe["run"] != nil:
			closeRun()
			if cur == nil {
				return nil, fmt.Errorf("harness: DES log has a run marker before any cell marker")
			}
			acc = newDESAccum(cur.N)
		case probe["fingerprint"] != nil:
			closeRun()
			if err := json.Unmarshal(line.Raw, &trailer); err != nil {
				return nil, err
			}
			sawTrail = true
		default:
			return nil, fmt.Errorf("harness: unrecognised DES log metadata %s", line.Raw)
		}
	}
	closeRun()
	if !sawTrail {
		return nil, fmt.Errorf("harness: DES log has no fingerprint trailer (truncated recording?)")
	}
	tb := desTable(cells, hdr.Latency)
	return &DESReplay{Table: tb, Fingerprint: tb.Fingerprint(), Recorded: trailer.Fingerprint}, nil
}

// DefaultDESLocks returns the standard DES lock axis: Bakery++ (ideal
// registers — its reset protocol is the bound), classic Bakery on ideal
// registers, and classic Bakery on wrapping registers sized to the grid
// capacity (the paper's malfunction regime).
func DefaultDESLocks() []DESLockSpec {
	return []DESLockSpec{
		{Name: "bakery++", Algo: "bakerypp"},
		{Name: "bakery", Algo: "bakery"},
		{Name: "bakery-wrap", Algo: "bakery", Wrap: true},
	}
}

// DESPoisson builds the open-loop pattern spec for a mean interarrival
// gap, named canonically so grids and logs round-trip.
func DESPoisson(mean, hold int64) DESPattern {
	return DESPattern{Name: "poisson:" + strconv.FormatInt(mean, 10), PoissonMean: mean, Hold: hold}
}

// DefaultDESPatterns returns the standard arrival axis: closed-loop
// sustained contention and one open-loop Poisson arrival stream — the
// seed of the lock-service scenario layer.
func DefaultDESPatterns() []DESPattern {
	return []DESPattern{
		{Name: "sustained", Hold: 6},
		DESPoisson(80, 6),
	}
}

// DefaultDESSweep returns the grid cmd/bakerybench's -des mode runs:
// 3 locks × 2 arrival patterns × 2 (N, M) points = 12 cells, three
// seeds each.
func DefaultDESSweep() DESSweepConfig {
	return DESSweepConfig{
		Locks:    DefaultDESLocks(),
		Patterns: DefaultDESPatterns(),
		Points:   []GridPoint{{N: 2, M: 7}, {N: 4, M: 7}},
		Iters:    150,
		Seeds:    []int64{1, 2, 3},
	}
}

// SelectDESLocks returns the DES lock specs with the given names, in the
// given order; a missing name panics rather than shrinking the grid.
func SelectDESLocks(list []DESLockSpec, names ...string) []DESLockSpec {
	out := make([]DESLockSpec, 0, len(names))
	for _, name := range names {
		found := false
		for _, s := range list {
			if s.Name == name {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("harness: no DES sweep lock named %q", name))
		}
	}
	return out
}
