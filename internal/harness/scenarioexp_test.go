package harness

import "testing"

// The E19–E21 hypothesis experiments print Confirmed/Refuted verdicts;
// these tests pin the same quantitative predictions as assertions, per
// seed, so a refutation fails CI instead of silently landing in a
// table. The runs are deterministic, so a failure here means the
// predicted physics changed, not that a die rolled badly.

// E19: at moderate bursty load, halving the ticket budget more than
// doubles the entry-gate reset count — super-linear in 1/M.
func TestE19ResetSuperLinearity(t *testing.T) {
	if testing.Short() {
		t.Skip("E19 measures ~5.8M events per cell over 9 cells; skipped under -short")
	}
	cells, err := measureE19(ExpConfig{SweepWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	by := e19BySeed(cells)
	for _, seed := range scenarioExpSeeds {
		r := by[seed]
		if r[16] <= 2*r[32] {
			t.Errorf("seed %d: resets(M=16)=%d not more than double resets(M=32)=%d — halving M did not super-linearly raise resets", seed, r[16], r[32])
		}
		if r[32] <= 2*r[64] {
			t.Errorf("seed %d: resets(M=32)=%d not more than double resets(M=64)=%d — halving M did not super-linearly raise resets", seed, r[32], r[64])
		}
		if r[16] < 20 {
			t.Errorf("seed %d: only %d resets at M=16 — too little signal for the prediction to mean anything", seed, r[16])
		}
	}
}

// E20: a tiny ticket budget under preemption-prone pricing exercises the
// gate constantly, yet no overflow, no stranded client, and acquire p99
// within the declared bloat factor of a generous budget.
func TestE20GateBoundedWaitingNoStarvation(t *testing.T) {
	cells, err := measureE20(ExpConfig{SweepWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	p99 := map[int64]map[int]int64{}
	for _, c := range cells {
		if c.Stranded != 0 {
			t.Errorf("m=%d seed %d: %d admitted clients stranded — starvation", c.M, c.Seed, c.Stranded)
		}
		if c.Overflows != 0 {
			t.Errorf("m=%d seed %d: %d ticket overflows — the gate failed its one job", c.M, c.Seed, c.Overflows)
		}
		if c.MaxConc != 1 {
			t.Errorf("m=%d seed %d: max concurrency %d, want 1", c.M, c.Seed, c.MaxConc)
		}
		if c.M == e20SmallM && c.Resets <= 50 {
			t.Errorf("m=%d seed %d: only %d resets — the tiny budget did not exercise the gate", c.M, c.Seed, c.Resets)
		}
		if p99[c.Seed] == nil {
			p99[c.Seed] = map[int]int64{}
		}
		p99[c.Seed][c.M] = c.P99
	}
	for _, seed := range scenarioExpSeeds {
		small, large := p99[seed][e20SmallM], p99[seed][e20LargeM]
		if float64(small) >= e20WaitBloat*float64(large) {
			t.Errorf("seed %d: acquire p99 %d at m=%d is not within %.0fx of %d at m=%d — waiting not bounded",
				seed, small, e20SmallM, e20WaitBloat, large, e20LargeM)
		}
	}
}

// E21: modbakery's FCFS violation count grows strictly with contention
// and is nonzero even at light load; bakerypp's stays zero on the
// identical fleet with mutual exclusion intact.
func TestE21FCFSDegradation(t *testing.T) {
	cells, err := measureE21(ExpConfig{SweepWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	fcfs := map[string]map[int64]map[int]int64{}
	for _, c := range cells {
		if fcfs[c.Algo] == nil {
			fcfs[c.Algo] = map[int64]map[int]int64{}
		}
		if fcfs[c.Algo][c.Seed] == nil {
			fcfs[c.Algo][c.Seed] = map[int]int64{}
		}
		fcfs[c.Algo][c.Seed][c.Arrival] = c.FCFS
		if c.Algo == "bakerypp" && c.MaxConc != 1 {
			t.Errorf("bakerypp interarrival=%d seed %d: max concurrency %d, want 1", c.Arrival, c.Seed, c.MaxConc)
		}
	}
	for _, seed := range scenarioExpSeeds {
		mod, pp := fcfs["modbakery"][seed], fcfs["bakerypp"][seed]
		if !(mod[20] > mod[80] && mod[80] > mod[320]) {
			t.Errorf("seed %d: modbakery fcfs-viol not strictly growing with contention: light→heavy %d, %d, %d",
				seed, mod[320], mod[80], mod[20])
		}
		if mod[320] == 0 {
			t.Errorf("seed %d: modbakery committed no FCFS violations even at light load — wrap never bit", seed)
		}
		for _, mean := range e21Arrivals {
			if pp[mean] != 0 {
				t.Errorf("seed %d: bakerypp committed %d FCFS violations at interarrival %d, want 0", seed, pp[mean], mean)
			}
		}
	}
}
