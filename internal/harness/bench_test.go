package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bakerypp/internal/specs"
)

// TestWriteMCBenchJSON runs a trimmed benchmark grid (the N <= 3 cells —
// the heavy N >= 4 explorations are covered by internal/mc's reduction
// tests and the full grid by `bakerybench -bench-json`) and checks the
// emitted JSON round-trips losslessly and is internally consistent:
// every cell emits one record per reduction mode, all modes of a cell
// agree on the verdict, and no reduced mode explores more states than
// the unreduced run.
func TestWriteMCBenchJSON(t *testing.T) {
	grid := []mcBenchCell{
		{"bakerypp", specs.Config{N: 2, M: 2}, true},
		{"bakerypp", specs.Config{N: 3, M: 2}, true},
		{"bakery", specs.Config{N: 3, M: 3}, true},
		{"szymanski", specs.Config{N: 3}, false},
	}
	rep, err := runMCBench(ExpConfig{MCWorkers: -1}, grid)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_mc.json")
	if err := WriteBenchJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed MCBenchReport
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if !reflect.DeepEqual(parsed.Records, rep.Records) {
		t.Fatal("records did not round-trip through JSON")
	}
	wantRecords := 3*len(benchModes(true)) + len(benchModes(false))
	if len(parsed.Records) != wantRecords {
		t.Fatalf("got %d records, want %d (one per cell and reduction mode)", len(parsed.Records), wantRecords)
	}

	modes := map[string]map[string]MCBenchRecord{}
	for _, r := range parsed.Records {
		if r.States <= 0 || r.WallSeconds < 0 {
			t.Errorf("%s: implausible record %+v", r.Name, r)
		}
		if r.Symmetry && !r.Applied {
			t.Errorf("%s: symmetry requested but not applied", r.Name)
		}
		if r.POR != r.PORApplied {
			t.Errorf("%s: por requested (%v) but applied (%v)", r.Name, r.POR, r.PORApplied)
		}
		wantName := fmt.Sprintf("%s-n%d-m%d/%s", r.Algo, r.N, r.M, r.Reduction)
		if r.Store != "exact" {
			wantName += "/" + r.Store
		}
		if r.Name != wantName {
			t.Errorf("record name %q does not encode its reduction mode (want %q)", r.Name, wantName)
		}
		if modes[nmKey(r)] == nil {
			modes[nmKey(r)] = map[string]MCBenchRecord{}
		}
		modes[nmKey(r)][r.Reduction] = r
	}
	for cell, byMode := range modes {
		base, haveFull := byMode["none"]
		if !haveFull {
			base = byMode["symmetry"]
		}
		for mode, r := range byMode {
			if r.Verdict != base.Verdict {
				t.Errorf("%s/%s: verdict diverges (%s vs %s)", cell, mode, r.Verdict, base.Verdict)
			}
			if haveFull && r.States > base.States {
				t.Errorf("%s/%s: reduced run explored more states (%d) than full (%d)", cell, mode, r.States, base.States)
			}
		}
	}
}

// TestMCBenchJSONSchema pins the machine-readable surface: the set of
// keys each record serialises must not drift silently (downstream
// trajectory tooling parses these by name), and the reduction-mode column
// must be present with one of its four values.
func TestMCBenchJSONSchema(t *testing.T) {
	grid := []mcBenchCell{{"bakerypp", specs.Config{N: 2, M: 2}, true}}
	rep, err := runMCBench(ExpConfig{}, grid)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var raw struct {
		GoVersion  string                   `json:"go_version"`
		GOMAXPROCS int                      `json:"gomaxprocs"`
		Timestamp  string                   `json:"timestamp"`
		Records    []map[string]interface{} `json:"records"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if raw.GoVersion == "" || raw.Timestamp == "" || len(raw.Records) == 0 {
		t.Fatalf("report header incomplete: %+v", raw)
	}
	want := []string{
		"name", "algo", "n", "m", "workers",
		"reduction", "symmetry", "symmetry_applied", "por", "por_applied",
		"store",
		"states", "transitions", "verdict", "complete",
		"wall_seconds", "states_per_sec", "peak_rss_kb",
	}
	validModes := map[string]bool{"none": true, "symmetry": true, "por": true, "symmetry+por": true}
	seen := map[string]bool{}
	for _, rec := range raw.Records {
		for _, k := range want {
			if _, ok := rec[k]; !ok {
				t.Errorf("record %v missing key %q", rec["name"], k)
			}
		}
		if len(rec) != len(want) {
			t.Errorf("record has %d keys, schema has %d — update the schema test alongside the struct", len(rec), len(want))
		}
		mode, _ := rec["reduction"].(string)
		if !validModes[mode] {
			t.Errorf("record %v has invalid reduction mode %q", rec["name"], mode)
		}
		seen[mode] = true
	}
	for mode := range validModes {
		if !seen[mode] {
			t.Errorf("full-cell grid emitted no %q record", mode)
		}
	}
}

// TestStoreBenchRecords runs a trimmed store-mode grid (N=2, where the
// full n=4 rows of storeBenchCells would be too slow for the unit suite)
// and checks the rows the other tests never produce: non-exact records
// suffix their name with the store spec, carry it in the store column,
// and agree with the exact baseline's verdict.
func TestStoreBenchRecords(t *testing.T) {
	rep := &MCBenchReport{}
	none := benchMode{"none", false, false}
	c := specs.Config{N: 2, M: 2}
	cells := []storeBenchCell{
		{"bakerypp", c, none, "compact"},
		{"bakerypp", c, none, "compact64"},
		{"bakerypp", c, none, "bitstate"},
		{"bakerypp", c, none, "exact,spill"},
		{"bakerypp", c, none, "compact,spill"},
	}
	if err := appendStoreBench(rep, ExpConfig{}, cells); err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != len(cells) {
		t.Fatalf("got %d records, want %d", len(rep.Records), len(cells))
	}
	for i, r := range rep.Records {
		if r.Store != cells[i].store {
			t.Errorf("%s: store column %q, want %q", r.Name, r.Store, cells[i].store)
		}
		want := fmt.Sprintf("%s-n%d-m%d/none/%s", r.Algo, r.N, r.M, cells[i].store)
		if r.Name != want {
			t.Errorf("record name %q does not encode its store tier (want %q)", r.Name, want)
		}
		if r.Verdict != "verified" {
			t.Errorf("%s: verdict %q, want \"verified\" (bakerypp n2m2 is safe under every tier)", r.Name, r.Verdict)
		}
	}
}

func nmKey(r MCBenchRecord) string {
	return fmt.Sprintf("%s/%d/%d", r.Algo, r.N, r.M)
}
