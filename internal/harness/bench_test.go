package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bakerypp/internal/specs"
)

// TestWriteMCBenchJSON runs a trimmed benchmark grid (the N <= 3 cells —
// the heavy N >= 4 explorations are covered by internal/mc's symmetry
// tests and the full grid by `bakerybench -bench-json`) and checks the
// emitted JSON is well-formed and internally consistent: every
// full/symmetry pair agrees on the verdict and the reduced side never
// explores more states.
func TestWriteMCBenchJSON(t *testing.T) {
	grid := []mcBenchCell{
		{"bakerypp", specs.Config{N: 2, M: 2}, true},
		{"bakerypp", specs.Config{N: 3, M: 2}, true},
		{"bakery", specs.Config{N: 3, M: 3}, true},
		{"szymanski", specs.Config{N: 3}, false},
	}
	rep, err := runMCBench(ExpConfig{MCWorkers: -1}, grid)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_mc.json")
	if err := writeBenchJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed MCBenchReport
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(parsed.Records) != len(rep.Records) || len(parsed.Records) == 0 {
		t.Fatalf("got %d records on disk, %d in memory", len(parsed.Records), len(rep.Records))
	}
	full := map[string]MCBenchRecord{}
	for _, r := range parsed.Records {
		if r.States <= 0 || r.WallSeconds < 0 {
			t.Errorf("%s: implausible record %+v", r.Name, r)
		}
		if r.Symmetry && !r.Applied {
			t.Errorf("%s: symmetry requested but not applied", r.Name)
		}
		if !r.Symmetry {
			full[nmKey(r)] = r
		}
	}
	for _, r := range parsed.Records {
		if !r.Symmetry {
			continue
		}
		f, ok := full[nmKey(r)]
		if !ok {
			continue // symmetry-only cell (full search beyond the bound)
		}
		if f.Verdict != r.Verdict {
			t.Errorf("%s: verdict diverges from full run (%s vs %s)", r.Name, r.Verdict, f.Verdict)
		}
		if r.States > f.States {
			t.Errorf("%s: reduced run explored more states (%d) than full (%d)", r.Name, r.States, f.States)
		}
	}
}

func nmKey(r MCBenchRecord) string {
	return fmt.Sprintf("%s/%d/%d", r.Algo, r.N, r.M)
}
