package harness

import (
	"strings"
	"testing"
)

// The presets are the documented entry points to the scenario layer, so
// each must be in canonical form — Parse(text).String() == text — or the
// -list output and the recorded log headers would disagree with the
// source of truth here.
func TestScenarioPresetsCanonical(t *testing.T) {
	if len(scenarioPresets) == 0 {
		t.Fatal("no scenario presets registered")
	}
	for name, text := range scenarioPresets {
		spec, err := ResolveScenario(name)
		if err != nil {
			t.Errorf("preset %q does not resolve: %v", name, err)
			continue
		}
		if spec.Name != name {
			t.Errorf("preset %q declares name=%q; the map key and the spec name must match", name, spec.Name)
		}
		if got := spec.String(); got != text {
			t.Errorf("preset %q is not canonical:\n  stored: %s\n  canon:  %s", name, text, got)
		}
	}
}

func TestResolveScenario(t *testing.T) {
	if _, err := ResolveScenario("smoke"); err != nil {
		t.Errorf("ResolveScenario(smoke): %v", err)
	}
	inline := "name=x;algo=bakerypp;shards=1;n=3;m=16;clients=100;class=a/1/poisson:10/fixed:2/50"
	if spec, err := ResolveScenario(inline); err != nil {
		t.Errorf("ResolveScenario(inline spec): %v", err)
	} else if spec.Name != "x" {
		t.Errorf("inline spec resolved to name %q, want x", spec.Name)
	}
	_, err := ResolveScenario("nosuchpreset")
	if err == nil {
		t.Fatal("unknown preset name resolved")
	}
	if !strings.Contains(err.Error(), "smoke") {
		t.Errorf("unknown-preset error does not list the presets: %v", err)
	}
}
