package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"bakerypp/internal/algorithms"
	"bakerypp/internal/core"
	"bakerypp/internal/preempt"
	"bakerypp/internal/registers"
	"bakerypp/internal/stats"
	"bakerypp/internal/workload"
)

// This file is the scenario sweep runner: a grid of contention scenarios
// (lock implementation × workload pattern × participants N × capacity M ×
// seed) executed on a pool of sweep workers and merged into one aggregated
// table. Every cell runs on a preempt.Sequencer — a deterministic
// cooperative scheduler in virtual time — so a cell's outcome (violations,
// max concurrency, resets, gate waits, step-denominated throughput and
// latency) is a pure function of the grid coordinates and the seed. Cells
// are independent, so the table is byte-identical whether the pool has one
// worker or sixteen, on one core or sixty-four; the table's Fingerprint
// lets two machines check that in one glance.

// LockSpec names a lock constructor for the sweep grid. Mk builds a fresh
// lock for n participants with ticket capacity m (capacity-blind locks
// ignore m), routing its preemption points to pre.
type LockSpec struct {
	Name string
	Mk   func(n int, m int64, pre preempt.Preemptor) Lock
}

// PatternSpec names a workload-pattern constructor. Patterns are built
// fresh per cell run because some (Bursty) carry internal state.
type PatternSpec struct {
	Name string
	Mk   func() workload.Pattern
}

// GridPoint is one (participants, capacity) configuration of the grid.
type GridPoint struct {
	N int
	M int64
}

// SweepConfig describes a scenario grid and how to execute it.
type SweepConfig struct {
	Locks    []LockSpec
	Patterns []PatternSpec
	Points   []GridPoint
	// Iters is the number of critical sections per participant per run.
	Iters int
	// Seeds lists the schedule seeds; each cell executes once per seed and
	// the aggregated row merges the runs (counters summed, histograms
	// merged).
	Seeds []int64
	// Workers sizes the sweep worker pool executing cells in parallel:
	// 0 runs sequentially, negative uses GOMAXPROCS. The result is
	// identical for any value.
	Workers int
	// PreemptRate is the virtual preemption density inside think/hold
	// spins (mean gap 1/rate); zero selects workload.DefaultPreemptRate.
	PreemptRate float64
}

// cells returns the grid size.
func (c *SweepConfig) cells() int {
	return len(c.Locks) * len(c.Patterns) * len(c.Points)
}

// CellResult is the aggregated outcome of one grid cell across its seeds.
type CellResult struct {
	Lock    string
	Pattern string
	N       int
	M       int64
	Runs    int
	// Ops is total critical sections entered; Steps is total virtual
	// scheduling steps — the hardware-independent clock all rates and
	// latencies below are denominated in.
	Ops   int64
	Steps int64
	// Violations and Evidence come from the occupancy detector; for a
	// correct lock both are zero/nil by construction, deterministically.
	Violations     int64
	Evidence       []Overlap
	MaxConcurrency int32
	// Resets, GateWaits and Overflows are read from the lock when it
	// exposes the corresponding instrumentation (Bakery++, wrapped
	// Bakery); zero otherwise.
	Resets    uint64
	GateWaits uint64
	Overflows uint64
	// Latency is the distribution of virtual steps between requesting the
	// lock and holding it.
	Latency *stats.Histogram
}

// OpsPerKStep is throughput in the virtual clock: critical sections per
// thousand scheduling steps.
func (c *CellResult) OpsPerKStep() float64 {
	if c.Steps == 0 {
		return 0
	}
	return 1000 * float64(c.Ops) / float64(c.Steps)
}

// SweepResult is the outcome of a sweep, one CellResult per grid cell in
// canonical (lock-major, then pattern, then point) order.
type SweepResult struct {
	Cells []CellResult
}

// Table renders the aggregated sweep as a stats.Table. Rendering the same
// SweepResult always yields byte-identical output; running the same
// SweepConfig (same seeds) does too, regardless of Workers.
func (r *SweepResult) Table() *stats.Table {
	tb := stats.NewTable("Deterministic contention sweep (virtual time)",
		"lock", "pattern", "N", "M", "runs", "ops", "steps", "ops/kstep",
		"violations", "maxconc", "resets", "gate-waits", "overflows",
		"lat p50", "lat p99")
	for i := range r.Cells {
		c := &r.Cells[i]
		tb.AddRow(c.Lock, c.Pattern, c.N, c.M, c.Runs, c.Ops, c.Steps,
			c.OpsPerKStep(), c.Violations, c.MaxConcurrency, c.Resets,
			c.GateWaits, c.Overflows,
			c.Latency.Quantile(0.5), c.Latency.Quantile(0.99))
	}
	return tb
}

// RunSweep executes the grid and returns the merged results.
func RunSweep(cfg SweepConfig) (*SweepResult, error) {
	if cfg.cells() == 0 {
		return nil, fmt.Errorf("harness: sweep grid is empty (locks=%d patterns=%d points=%d)",
			len(cfg.Locks), len(cfg.Patterns), len(cfg.Points))
	}
	if cfg.Iters < 1 {
		return nil, fmt.Errorf("harness: sweep Iters must be >= 1")
	}
	if len(cfg.Seeds) == 0 {
		return nil, fmt.Errorf("harness: sweep needs at least one seed")
	}
	for _, pt := range cfg.Points {
		if pt.N < 1 || pt.N > 64 || pt.M < 1 {
			return nil, fmt.Errorf("harness: bad grid point N=%d M=%d", pt.N, pt.M)
		}
	}
	rate := cfg.PreemptRate
	if rate == 0 {
		rate = workload.DefaultPreemptRate
	}

	type cellKey struct {
		lock    LockSpec
		pattern PatternSpec
		point   GridPoint
	}
	keys := make([]cellKey, 0, cfg.cells())
	for _, l := range cfg.Locks {
		for _, p := range cfg.Patterns {
			for _, pt := range cfg.Points {
				keys = append(keys, cellKey{l, p, pt})
			}
		}
	}

	results := make([]CellResult, len(keys))
	workers := cfg.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(keys) {
		workers = len(keys)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				k := keys[idx]
				results[idx] = runSweepCell(k.lock, k.pattern, k.point, idx, cfg.Seeds, cfg.Iters, rate)
			}
		}()
	}
	for idx := range keys {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	return &SweepResult{Cells: results}, nil
}

// runSweepCell executes one cell once per seed and merges the runs. The
// schedule seed of each run is derived from (cell index, seed) alone, so a
// cell's outcome does not depend on which sweep worker ran it or when.
func runSweepCell(lock LockSpec, pattern PatternSpec, pt GridPoint, cellIdx int, seeds []int64, iters int, rate float64) CellResult {
	out := CellResult{
		Lock: lock.Name, Pattern: pattern.Name, N: pt.N, M: pt.M,
		Latency: stats.NewHistogram(),
	}
	for _, seed := range seeds {
		schedSeed := seed*1000003 + int64(cellIdx)
		r := runSweepCellOnce(lock, pattern, pt, schedSeed, iters, rate)
		out.Runs++
		out.Ops += r.Ops
		out.Steps += r.Steps
		out.Violations += r.Violations
		if r.MaxConcurrency > out.MaxConcurrency {
			out.MaxConcurrency = r.MaxConcurrency
		}
		out.Resets += r.Resets
		out.GateWaits += r.GateWaits
		out.Overflows += r.Overflows
		out.Latency.Merge(r.Latency)
		if len(out.Evidence) < maxEvidence {
			out.Evidence = append(out.Evidence, r.Evidence...)
			if len(out.Evidence) > maxEvidence {
				out.Evidence = out.Evidence[:maxEvidence]
			}
		}
	}
	return out
}

// runSweepCellOnce plays one scenario on a fresh lock under a fresh
// Sequencer: the virtual-time analogue of Run.
func runSweepCellOnce(lock LockSpec, pattern PatternSpec, pt GridPoint, schedSeed int64, iters int, rate float64) CellResult {
	seq := preempt.NewSequencer(pt.N, schedSeed)
	l := lock.Mk(pt.N, pt.M, seq)
	pat := pattern.Mk()
	det := newOccupancy(pt.N)
	hists := make([]*stats.Histogram, pt.N)
	for pid := 0; pid < pt.N; pid++ {
		pid := pid
		seq.Go(pid, func() {
			rng := rand.New(rand.NewSource(schedSeed + int64(pid) + 1))
			sp := workload.NewSpinner(pid, schedSeed^int64(pid+1)*0x9E3779B9, rate, seq)
			h := stats.NewHistogram()
			hists[pid] = h
			for k := 0; k < iters; k++ {
				sp.Spin(pat.Think(rng))
				t0 := seq.Now()
				l.Lock(pid)
				h.Record(seq.Now() - t0)
				det.enter(pid, k)
				// A guaranteed in-CS switch point: even a zero-hold
				// pattern exposes the critical section to the scheduler,
				// so a broken lock cannot hide behind an unpreempted
				// burst — the single-core blindness the seed had.
				seq.Preempt(pid)
				sp.Spin(pat.Hold(rng))
				det.exit(pid)
				l.Unlock(pid)
				// Post-release point: hand the section to a waiter before
				// re-entering the doorway.
				seq.Preempt(pid)
			}
		})
	}
	steps := seq.Run()

	res := CellResult{
		Lock: lock.Name, Pattern: pattern.Name, N: pt.N, M: pt.M,
		Ops:            int64(pt.N) * int64(iters),
		Steps:          steps,
		Violations:     det.violations.Load(),
		Evidence:       det.report(),
		MaxConcurrency: det.maxConc.Load(),
		Latency:        stats.NewHistogram(),
	}
	for _, h := range hists {
		res.Latency.Merge(h)
	}
	if c, ok := l.(interface{ Resets() uint64 }); ok {
		res.Resets = c.Resets()
	}
	if c, ok := l.(interface{ GateWaits() uint64 }); ok {
		res.GateWaits = c.GateWaits()
	}
	if c, ok := l.(interface{ Overflows() uint64 }); ok {
		res.Overflows = c.Overflows()
	}
	return res
}

// DefaultSweepLocks returns the standard lock axis: Bakery++ at the grid
// capacity, classic Bakery on ideal and on wrapping registers sized to the
// grid capacity, and the paper's Section 4 comparison set.
func DefaultSweepLocks() []LockSpec {
	return []LockSpec{
		{"bakery++", func(n int, m int64, pre preempt.Preemptor) Lock {
			l := core.New(n, m)
			l.SetPreemptor(pre)
			return l
		}},
		{"bakery", func(n int, _ int64, pre preempt.Preemptor) Lock {
			l := algorithms.NewBakery(n)
			l.SetPreemptor(pre)
			return l
		}},
		{"bakery-wrap", func(n int, m int64, pre preempt.Preemptor) Lock {
			l := algorithms.NewBakeryForBits(n, registers.BitsForCapacity(m))
			l.SetPreemptor(pre)
			return l
		}},
		{"black-white", func(n int, _ int64, pre preempt.Preemptor) Lock {
			l := algorithms.NewBlackWhite(n)
			l.SetPreemptor(pre)
			return l
		}},
		{"peterson-filter", func(n int, _ int64, pre preempt.Preemptor) Lock {
			l := algorithms.NewPeterson(n)
			l.SetPreemptor(pre)
			return l
		}},
		{"szymanski", func(n int, _ int64, pre preempt.Preemptor) Lock {
			l := algorithms.NewSzymanski(n)
			l.SetPreemptor(pre)
			return l
		}},
		{"ticket-faa", func(n int, _ int64, pre preempt.Preemptor) Lock {
			l := algorithms.NewTicket(n)
			l.SetPreemptor(pre)
			return l
		}},
		{"tas", func(n int, _ int64, pre preempt.Preemptor) Lock {
			l := algorithms.NewTAS(n)
			l.SetPreemptor(pre)
			return l
		}},
	}
}

// SelectLocks returns the specs with the given names, in the given order.
// Grid definitions reference locks by name so a reordering of the default
// axis cannot silently change what an experiment measures; a missing name
// panics rather than shrinking the grid.
func SelectLocks(specs []LockSpec, names ...string) []LockSpec {
	out := make([]LockSpec, 0, len(names))
	for _, name := range names {
		found := false
		for _, s := range specs {
			if s.Name == name {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("harness: no sweep lock named %q", name))
		}
	}
	return out
}

// DefaultSweepPatterns returns the standard workload axis.
func DefaultSweepPatterns() []PatternSpec {
	return []PatternSpec{
		{"sustained", func() workload.Pattern { return workload.Sustained() }},
		{"short-cs", func() workload.Pattern { return workload.ShortCS(40) }},
		{"think-heavy", func() workload.Pattern { return workload.ThinkHeavy(60) }},
	}
}

// DefaultSweep returns the standard grid cmd/bakerybench's -sweep mode
// runs: 8 locks × 3 workload patterns × 2 (N, M) points = 48 cells, two
// seeds each.
func DefaultSweep() SweepConfig {
	return SweepConfig{
		Locks:    DefaultSweepLocks(),
		Patterns: DefaultSweepPatterns(),
		Points:   []GridPoint{{N: 3, M: 7}, {N: 4, M: 15}},
		Iters:    60,
		Seeds:    []int64{1, 2},
	}
}
