package harness

// The lock-service scenario surface of the harness: named preset
// scenarios (the grids cmd/bakeryserve and `bakerybench -scenario` run),
// spec resolution for CLI arguments, and the scenario rows of the
// machine-readable benchmark report.

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"bakerypp/internal/scenario"
)

// scenarioPresets are the canonical preset scenarios. Keep every entry
// in Spec canonical form (Parse(text).String() == text): the fuzz suite
// pins the grammar, and TestScenarioPresetsCanonical pins these.
var scenarioPresets = map[string]string{
	// smoke is the CI gate's scenario: three heterogeneous classes
	// (steady Poisson, CV-4 Gamma bursts, bimodal holds) over four
	// shards with admission control, sized to finish in well under a
	// second even under -race.
	"smoke": "name=smoke;algo=bakerypp;shards=4;n=4;m=64;clients=30000;admit=token:900,32;" +
		"class=gold/1/poisson:40/fixed:4/60;" +
		"class=bulk/2/burst:60,4/poisson:9/300;" +
		"class=batch/1/poisson:90/bimodal:4,60,10/1200",
	// fleet1m is the flagship fleet: one million simulated clients over
	// 64 shards — the scale the no-goroutine-herd design exists for —
	// tuned to moderate load (ρ≈0.6) so the SLO-attainment columns show
	// a healthy service rather than a saturated one (overload covers
	// saturation).
	"fleet1m": "name=fleet1m;algo=bakerypp;shards=64;n=4;m=256;clients=1000000;admit=token:120,64;" +
		"class=gold/1/poisson:80/fixed:4/80;" +
		"class=bulk/2/burst:120,6/poisson:8/400;" +
		"class=batch/1/poisson:190/bimodal:4,80,10/1500",
	// overload offers roughly twice the admitted capacity: the token
	// bucket turns the excess away while the served classes keep
	// bounded latency.
	"overload": "name=overload;algo=bakerypp;shards=8;n=4;m=32;clients=200000;admit=token:60,16;" +
		"class=rush/3/burst:12,8/poisson:6/250;" +
		"class=steady/1/poisson:40/fixed:3/120",
}

// ScenarioPresets returns the preset names, sorted.
func ScenarioPresets() []string {
	out := make([]string, 0, len(scenarioPresets))
	for name := range scenarioPresets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ResolveScenario turns a CLI argument into a Spec: a preset name, or a
// full spec in the scenario grammar (recognised by its '=').
func ResolveScenario(arg string) (*scenario.Spec, error) {
	if text, ok := scenarioPresets[arg]; ok {
		return scenario.Parse(text)
	}
	if !strings.Contains(arg, "=") {
		return nil, fmt.Errorf("harness: unknown scenario preset %q (have %v); pass a full spec (name=...;algo=...;...) to run a custom one",
			arg, ScenarioPresets())
	}
	return scenario.Parse(arg)
}

// appendScenarioBench measures the scenario layer: each preset runs
// single-threaded (the simulator's own event rate, not the shard
// pool's) and reports executed events per wall second plus the overall
// p99 acquire latency. The result fingerprint rides in the verdict
// column, so a perf regression and a determinism break both show in the
// same row.
func appendScenarioBench(rep *MCBenchReport, presets []string) error {
	for _, preset := range presets {
		spec, err := ResolveScenario(preset)
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := scenario.Run(spec, scenario.Options{Seed: 1})
		if err != nil {
			return err
		}
		secs := time.Since(start).Seconds()
		rate := 0.0
		if secs > 0 {
			rate = float64(res.Events) / secs
		}
		rep.Records = append(rep.Records, MCBenchRecord{
			Name:         "scenario/" + spec.Name + "/unit",
			Algo:         spec.Algo,
			N:            spec.N,
			M:            spec.M,
			Analysis:     "scenario",
			Workers:      0,
			Reduction:    "none",
			Store:        "exact",
			States:       int(res.Events),
			Verdict:      "fingerprint:" + res.Fingerprint(),
			Complete:     true,
			WallSeconds:  secs,
			StatesPerSec: rate,
			EventsPerSec: rate,
			AcqP99:       overallAcqP99(res),
			PeakRSSKB:    peakRSSKB(),
		})
	}
	return nil
}

// overallAcqP99 merges the per-class acquire-latency histograms and
// returns the fleet-wide p99.
func overallAcqP99(res *scenario.Result) int64 {
	merged := res.Classes[0].Latency
	if len(res.Classes) > 1 {
		merged = merged.Clone()
		for i := 1; i < len(res.Classes); i++ {
			merged.Merge(res.Classes[i].Latency)
		}
	}
	return merged.Quantile(0.99)
}
