package harness

// Comparing bench-json snapshots: `bakerybench -bench-json new.json
// -compare old.json` re-runs the grid and diffs it row by row against a
// committed baseline (e.g. BENCH_PR8.json), failing on states/sec
// regressions past a threshold — the perf trajectory's tripwire.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// benchCompareMinSeconds is the wall-time floor below which a row is too
// noisy to judge: a sub-50ms run's rate swings with scheduler jitter alone,
// so such rows are reported but never count as regressions.
const benchCompareMinSeconds = 0.05

// BenchRowDelta is one matched row of a snapshot comparison.
type BenchRowDelta struct {
	Name string
	// Ratio is new states/sec over old states/sec.
	Ratio   float64
	OldRate float64
	NewRate float64
	// Regressed is set when the row's rate fell below threshold*old and
	// both sides ran long enough to trust.
	Regressed bool
	// TooFast marks rows under the wall-time floor on either side,
	// excluded from the regression verdict.
	TooFast bool
	// VerdictMismatch is set when the two snapshots disagree on the row's
	// verdict — never tolerated, whatever the rates say: the bench grid
	// doubles as an end-to-end correctness sweep.
	VerdictMismatch bool
	OldVerdict      string
	NewVerdict      string
}

// ScalingWarnThreshold is the acceptable decay of a wmax/w1 speedup ratio
// across snapshots before the comparison warns: the new speedup must stay
// above 90% of the baseline (the old snapshot's speedup for the same pair,
// or parity when the old snapshot lacks it). A warning, never a failure —
// a single-core CI runner measures a speedup of ~1.0 by construction and
// must not fail a gate a multi-core baseline was recorded on.
const ScalingWarnThreshold = 0.9

// ScalingDelta is one watched worker-scaling pair: the "<stem>/w1" and
// "<stem>/wmax" rows of the scaling grid, reduced to the speedup the extra
// workers buy.
type ScalingDelta struct {
	// Stem is the pair's shared name prefix (e.g. "scale/bakerypp-n4-m2").
	Stem string
	// OldSpeedup is the old snapshot's wmax/w1 rate ratio, 0 when the old
	// snapshot lacks the pair (then parity is the baseline).
	OldSpeedup float64
	// NewSpeedup is the new snapshot's wmax/w1 rate ratio.
	NewSpeedup float64
	// Warn is set when NewSpeedup fell below ScalingWarnThreshold times the
	// baseline and the pair ran long enough to trust.
	Warn bool
	// TooFast marks pairs under the wall-time noise floor, never warned on.
	TooFast bool
}

// BenchComparison is the result of diffing two bench-json snapshots.
type BenchComparison struct {
	// Threshold is the acceptable new/old rate ratio (0.7 = fail on >30%
	// regression).
	Threshold float64
	Rows      []BenchRowDelta
	// Scaling collects the worker-scaling pairs found in the new snapshot
	// (see ScalingDelta); decayed speedups warn without failing.
	Scaling []ScalingDelta
	// OldOnly/NewOnly list row names present in just one snapshot. Grid
	// growth (NewOnly) is normal across PRs and merely informs; rows
	// that vanished (OldOnly) are rendered as a warning — a silently
	// shrinking grid is how a perf tripwire goes blind — but still do
	// not fail, because trimmed runs (-bench-small against a full
	// snapshot) legitimately omit rows.
	OldOnly []string
	NewOnly []string
}

// DroppedRows returns the names present in the old snapshot but absent
// from the new one — the rows the comparison can no longer guard.
func (c *BenchComparison) DroppedRows() []string { return c.OldOnly }

// Failed reports whether the comparison found a regression or a verdict
// mismatch.
func (c *BenchComparison) Failed() bool {
	for _, r := range c.Rows {
		if r.Regressed || r.VerdictMismatch {
			return true
		}
	}
	return false
}

// String renders the comparison as an aligned table, one matched row each,
// with the unmatched names summarised at the end.
func (c *BenchComparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %14s %14s %7s\n", "row", "old st/s", "new st/s", "ratio")
	for _, r := range c.Rows {
		note := ""
		switch {
		case r.VerdictMismatch:
			note = fmt.Sprintf("  VERDICT MISMATCH (%s -> %s)", r.OldVerdict, r.NewVerdict)
		case r.Regressed:
			note = "  REGRESSED"
		case r.TooFast:
			note = "  (sub-50ms, informational)"
		}
		fmt.Fprintf(&b, "%-44s %14.0f %14.0f %6.2fx%s\n", r.Name, r.OldRate, r.NewRate, r.Ratio, note)
	}
	for _, s := range c.Scaling {
		switch {
		case s.Warn:
			fmt.Fprintf(&b, "SCALING WARNING: %s wmax/w1 speedup fell to %.2fx (baseline %.2fx)\n",
				s.Stem, s.NewSpeedup, s.baseline())
		case s.TooFast:
			fmt.Fprintf(&b, "scaling %s: wmax/w1 = %.2fx (sub-50ms, informational)\n", s.Stem, s.NewSpeedup)
		default:
			fmt.Fprintf(&b, "scaling %s: wmax/w1 = %.2fx\n", s.Stem, s.NewSpeedup)
		}
	}
	if len(c.OldOnly) > 0 {
		fmt.Fprintf(&b, "WARNING: %d row(s) in the old snapshot have no counterpart in the new run and are unguarded: %s\n",
			len(c.OldOnly), strings.Join(c.OldOnly, ", "))
	}
	if len(c.NewOnly) > 0 {
		fmt.Fprintf(&b, "only in new snapshot: %s\n", strings.Join(c.NewOnly, ", "))
	}
	return b.String()
}

// ReadMCBenchJSON loads a snapshot written by WriteMCBenchJSON.
func ReadMCBenchJSON(path string) (*MCBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep MCBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// CompareMCBench diffs new against old, matching records by Name. A row
// regresses when its states/sec ratio drops below threshold with both
// sides above the wall-time noise floor; verdict disagreements always
// fail. Rows present in only one snapshot are listed but never fail —
// the grid is expected to grow.
func CompareMCBench(old, new *MCBenchReport, threshold float64) *BenchComparison {
	c := &BenchComparison{Threshold: threshold}
	oldByName := make(map[string]MCBenchRecord, len(old.Records))
	for _, r := range old.Records {
		oldByName[r.Name] = r
	}
	matched := make(map[string]bool, len(new.Records))
	for _, nr := range new.Records {
		or, ok := oldByName[nr.Name]
		if !ok {
			c.NewOnly = append(c.NewOnly, nr.Name)
			continue
		}
		matched[nr.Name] = true
		d := BenchRowDelta{
			Name:       nr.Name,
			OldRate:    or.StatesPerSec,
			NewRate:    nr.StatesPerSec,
			OldVerdict: or.Verdict,
			NewVerdict: nr.Verdict,
			TooFast:    or.WallSeconds < benchCompareMinSeconds || nr.WallSeconds < benchCompareMinSeconds,
		}
		if or.StatesPerSec > 0 {
			d.Ratio = nr.StatesPerSec / or.StatesPerSec
		}
		d.VerdictMismatch = or.Verdict != nr.Verdict
		d.Regressed = !d.TooFast && !d.VerdictMismatch && d.Ratio < threshold
		c.Rows = append(c.Rows, d)
	}
	for _, or := range old.Records {
		if !matched[or.Name] {
			c.OldOnly = append(c.OldOnly, or.Name)
		}
	}
	c.Scaling = scalingDeltas(old, new)
	return c
}

// baseline is the speedup a pair is judged against: the old snapshot's, or
// parity when the old snapshot lacks the pair.
func (s *ScalingDelta) baseline() float64 {
	if s.OldSpeedup > 0 {
		return s.OldSpeedup
	}
	return 1.0
}

// speedupOf extracts a report's wmax/w1 speedup for one stem, along with
// whether either side ran under the noise floor; ok is false unless both
// rows exist with a positive w1 rate.
func speedupOf(rep *MCBenchReport, stem string) (speedup float64, tooFast, ok bool) {
	var w1, wmax *MCBenchRecord
	for i := range rep.Records {
		switch rep.Records[i].Name {
		case stem + "/w1":
			w1 = &rep.Records[i]
		case stem + "/wmax":
			wmax = &rep.Records[i]
		}
	}
	if w1 == nil || wmax == nil || w1.StatesPerSec <= 0 {
		return 0, false, false
	}
	return wmax.StatesPerSec / w1.StatesPerSec,
		w1.WallSeconds < benchCompareMinSeconds || wmax.WallSeconds < benchCompareMinSeconds,
		true
}

// scalingDeltas pairs the new snapshot's "<stem>/w1" rows with their
// "<stem>/wmax" counterparts and judges each pair's speedup against the
// old snapshot's (or parity). Decay past ScalingWarnThreshold warns; pairs
// under the noise floor are informational only.
func scalingDeltas(old, new *MCBenchReport) []ScalingDelta {
	var out []ScalingDelta
	for _, nr := range new.Records {
		stem, found := strings.CutSuffix(nr.Name, "/w1")
		if !found {
			continue
		}
		speedup, tooFast, ok := speedupOf(new, stem)
		if !ok {
			continue
		}
		d := ScalingDelta{Stem: stem, NewSpeedup: speedup, TooFast: tooFast}
		if oldSpeedup, _, ok := speedupOf(old, stem); ok {
			d.OldSpeedup = oldSpeedup
		}
		d.Warn = !tooFast && speedup < ScalingWarnThreshold*d.baseline()
		out = append(out, d)
	}
	return out
}
