package harness

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"bakerypp/internal/specs"
)

// trimmedDESSweep is the fast grid the unit tests run: the full default
// axes with fewer iterations.
func trimmedDESSweep() DESSweepConfig {
	cfg := DefaultDESSweep()
	cfg.Iters = 40
	return cfg
}

// TestDESSweepDeterministicAcrossWorkers pins the DES half of the sweep
// determinism contract: the aggregated table — and the recorded event
// log — are byte-identical whether cells run sequentially or on a full
// worker pool.
func TestDESSweepDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (string, []byte) {
		cfg := trimmedDESSweep()
		cfg.Workers = workers
		var buf bytes.Buffer
		cfg.Record = &buf
		res, err := RunDESSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Table().Fingerprint(), buf.Bytes()
	}
	fp1, log1 := run(1)
	fp8, log8 := run(8)
	if fp1 != fp8 {
		t.Errorf("table fingerprint differs across worker counts: %s vs %s", fp1, fp8)
	}
	if !bytes.Equal(log1, log8) {
		t.Error("recorded event log differs across worker counts")
	}
}

// TestDESSweepGOMAXPROCSIndependent: a DES cell is a single-threaded
// event loop, so the table must not depend on available parallelism.
func TestDESSweepGOMAXPROCSIndependent(t *testing.T) {
	run := func(procs int) string {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		cfg := trimmedDESSweep()
		cfg.Workers = 4
		res, err := RunDESSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Table().Fingerprint()
	}
	if a, b := run(1), run(runtime.NumCPU()); a != b {
		t.Errorf("DES sweep fingerprint differs across GOMAXPROCS: %s vs %s", a, b)
	}
}

// TestDESRecordReplayAllSpecs is the round-trip pin from the issue:
// record a small DES run of every registered specification and replay
// it to a bit-identical table fingerprint.
func TestDESRecordReplayAllSpecs(t *testing.T) {
	for _, name := range specs.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := DESSweepConfig{
				Locks:    []DESLockSpec{{Name: name, Algo: name}},
				Patterns: []DESPattern{{Name: "sustained", Hold: 3}, DESPoisson(30, 3)},
				Points:   []GridPoint{{N: 3, M: 4}},
				Iters:    12,
				Seeds:    []int64{1, 2},
				Latency:  "jitter:1,3",
			}
			var buf bytes.Buffer
			cfg.Record = &buf
			res, err := RunDESSweep(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range res.Cells {
				if c.Events == 0 {
					t.Errorf("%s/%s: recorded run executed no events", c.Lock, c.Pattern)
				}
				if c.Ops == 0 {
					t.Errorf("%s/%s: no critical sections entered", c.Lock, c.Pattern)
				}
			}
			rep, err := ReplayDESLog(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("replay fingerprint %s != recorded %s", rep.Fingerprint, rep.Recorded)
			}
			if rep.Table.String() != res.Table().String() {
				t.Fatal("replayed table bytes differ from the live table")
			}
		})
	}
}

// TestDESSweepLatencyModels: each latency model must run, stay
// deterministic (same seed twice ⇒ same fingerprint), and actually
// shape time — a fixed:3 clock runs slower than unit for the same
// grid.
func TestDESSweepLatencyModels(t *testing.T) {
	run := func(latency string) *DESSweepResult {
		cfg := DESSweepConfig{
			Locks:    DefaultDESLocks()[:1],
			Patterns: []DESPattern{{Name: "sustained", Hold: 4}},
			Points:   []GridPoint{{N: 3, M: 7}},
			Iters:    30,
			Seeds:    []int64{5},
			Latency:  latency,
		}
		res, err := RunDESSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, latency := range []string{"unit", "fixed:3", "jitter:2,4", "classes:step=2;hold=exp(9);think=uniform(1,5)"} {
		a, b := run(latency), run(latency)
		if a.Table().Fingerprint() != b.Table().Fingerprint() {
			t.Errorf("latency %q: same seeds produced different fingerprints", latency)
		}
	}
	if unit, fixed := run("unit"), run("fixed:3"); fixed.Cells[0].Time <= unit.Cells[0].Time {
		t.Errorf("fixed:3 time %d not above unit time %d — the model does not price actions",
			fixed.Cells[0].Time, unit.Cells[0].Time)
	}
}

// TestDESOpenLoopArrivals: the Poisson pattern is open-loop — processes
// idle between attempts — so for the same grid it must stretch virtual
// time well beyond the closed-loop sustained pattern while performing
// the same number of operations.
func TestDESOpenLoopArrivals(t *testing.T) {
	cfg := DESSweepConfig{
		Locks:    DefaultDESLocks()[:1],
		Patterns: []DESPattern{{Name: "sustained", Hold: 4}, DESPoisson(100, 4)},
		Points:   []GridPoint{{N: 2, M: 7}},
		Iters:    50,
		Seeds:    []int64{3},
	}
	res, err := RunDESSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sustained, poisson := res.Cells[0], res.Cells[1]
	if sustained.Ops != poisson.Ops {
		t.Fatalf("patterns disagree on ops: %d vs %d", sustained.Ops, poisson.Ops)
	}
	if poisson.Time < 2*sustained.Time {
		t.Errorf("open-loop time %d not well above closed-loop %d — interarrival gaps are not being drawn",
			poisson.Time, sustained.Time)
	}
	if poisson.Acquire.Quantile(0.99) > sustained.Acquire.Quantile(0.99) {
		t.Errorf("open-loop acq p99 (%d) above sustained (%d) — low-load arrivals should rarely queue",
			poisson.Acquire.Quantile(0.99), sustained.Acquire.Quantile(0.99))
	}
}

// TestDESWrapShowsViolations: the bakery-wrap axis must exhibit mutual
// exclusion violations under sustained contention at small capacity —
// the observable malfunction the wrap mode exists to demonstrate —
// while bakery++ stays clean on the same grid.
func TestDESWrapShowsViolations(t *testing.T) {
	cfg := DESSweepConfig{
		Locks:    SelectDESLocks(DefaultDESLocks(), "bakery++", "bakery-wrap"),
		Patterns: []DESPattern{{Name: "sustained", Hold: 6}},
		Points:   []GridPoint{{N: 4, M: 7}},
		Iters:    150,
		Seeds:    []int64{1, 2, 3},
	}
	res, err := RunDESSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bpp, wrap := res.Cells[0], res.Cells[1]
	if bpp.Violations != 0 || bpp.MaxConcurrency > 1 {
		t.Errorf("bakery++ violated mutual exclusion: violations=%d maxconc=%d", bpp.Violations, bpp.MaxConcurrency)
	}
	if wrap.Violations == 0 || wrap.MaxConcurrency < 2 {
		t.Errorf("bakery on wrapping registers showed no malfunction: violations=%d maxconc=%d",
			wrap.Violations, wrap.MaxConcurrency)
	}
}

// TestDESSweepValidation: bad configs fail loudly.
func TestDESSweepValidation(t *testing.T) {
	if _, err := RunDESSweep(DESSweepConfig{}); err == nil {
		t.Error("empty grid did not error")
	}
	cfg := trimmedDESSweep()
	cfg.Latency = "warp:9"
	if _, err := RunDESSweep(cfg); err == nil {
		t.Error("unknown latency model did not error")
	}
	cfg = trimmedDESSweep()
	cfg.Seeds = nil
	if _, err := RunDESSweep(cfg); err == nil {
		t.Error("no seeds did not error")
	}
}

// TestReplayRejectsTamper: replaying a log whose events were altered
// must either fail to parse or report a fingerprint mismatch — never
// silently agree.
func TestReplayRejectsTamper(t *testing.T) {
	cfg := DESSweepConfig{
		Locks:    DefaultDESLocks()[:1],
		Patterns: []DESPattern{{Name: "sustained", Hold: 3}},
		Points:   []GridPoint{{N: 2, M: 4}},
		Iters:    10,
		Seeds:    []int64{1},
	}
	var buf bytes.Buffer
	cfg.Record = &buf
	if _, err := RunDESSweep(cfg); err != nil {
		t.Fatal(err)
	}
	// Drop one event line from the middle of the log.
	lines := strings.SplitAfter(buf.String(), "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "[") && strings.Contains(l, "\"cs-enter\"") {
			lines = append(lines[:i], lines[i+1:]...)
			break
		}
	}
	rep, err := ReplayDESLog(strings.NewReader(strings.Join(lines, "")))
	if err == nil && rep.OK() {
		t.Fatal("tampered log replayed to a matching fingerprint")
	}
}
