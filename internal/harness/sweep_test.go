package harness

import (
	"runtime"
	"strings"
	"testing"

	"bakerypp/internal/preempt"
	"bakerypp/internal/workload"
)

// testSweep is a compact grid: 4 locks × 3 patterns × 2 points = 24 cells.
func testSweep() SweepConfig {
	return SweepConfig{
		Locks:    SelectLocks(DefaultSweepLocks(), "bakery++", "bakery", "black-white", "ticket-faa"),
		Patterns: DefaultSweepPatterns(),
		Points:   []GridPoint{{N: 2, M: 3}, {N: 3, M: 4}},
		Iters:    25,
		Seeds:    []int64{1, 2},
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := RunSweep(SweepConfig{}); err == nil {
		t.Error("empty grid accepted")
	}
	cfg := testSweep()
	cfg.Iters = 0
	if _, err := RunSweep(cfg); err == nil {
		t.Error("Iters=0 accepted")
	}
	cfg = testSweep()
	cfg.Seeds = nil
	if _, err := RunSweep(cfg); err == nil {
		t.Error("no seeds accepted")
	}
	cfg = testSweep()
	cfg.Points = []GridPoint{{N: 0, M: 3}}
	if _, err := RunSweep(cfg); err == nil {
		t.Error("N=0 grid point accepted")
	}
}

// The headline determinism property: the aggregated table is byte-identical
// for sweep-worker counts 1 and 4 under the same seed.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := testSweep()
	cfg.Workers = 1
	seq, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := seq.Table().String(), par.Table().String()
	if a != b {
		t.Fatalf("tables differ between 1 and 4 sweep workers:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", a, b)
	}
	if seq.Table().Fingerprint() != par.Table().Fingerprint() {
		t.Error("fingerprints differ")
	}
}

// Same property across GOMAXPROCS — virtual time must not notice cores.
func TestSweepDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := testSweep()
	cfg.Locks = cfg.Locks[:2]
	cfg.Workers = 2
	run := func(procs int) string {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		r, err := RunSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.Table().String()
	}
	if a, b := run(1), run(4); a != b {
		t.Fatalf("tables differ between GOMAXPROCS 1 and 4:\n%s\nvs\n%s", a, b)
	}
}

func TestSweepCorrectLocksStayClean(t *testing.T) {
	r, err := RunSweep(testSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 24 {
		t.Fatalf("got %d cells, want 24", len(r.Cells))
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Ops != int64(c.N)*25*2 {
			t.Errorf("%s/%s N=%d: ops=%d", c.Lock, c.Pattern, c.N, c.Ops)
		}
		if c.Violations != 0 || c.MaxConcurrency != 1 || c.Evidence != nil {
			t.Errorf("%s/%s N=%d M=%d: violations=%d maxconc=%d evidence=%v",
				c.Lock, c.Pattern, c.N, c.M, c.Violations, c.MaxConcurrency, c.Evidence)
		}
		if c.Steps == 0 || c.Latency.Count() == 0 {
			t.Errorf("%s/%s: no steps or latency samples", c.Lock, c.Pattern)
		}
	}
}

// Bakery++ cells at tight capacity must show live reset instrumentation —
// the dead-branch regression, pinned in virtual time where it is exactly
// reproducible.
func TestSweepObservesResets(t *testing.T) {
	cfg := SweepConfig{
		Locks:    SelectLocks(DefaultSweepLocks(), "bakery++"),
		Patterns: DefaultSweepPatterns()[:1],
		Points:   []GridPoint{{N: 3, M: 3}},
		Iters:    150,
		Seeds:    []int64{1},
	}
	r, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := &r.Cells[0]
	if c.Resets == 0 {
		t.Error("no resets at N=3 M=3 under sustained contention")
	}
	if c.GateWaits == 0 {
		t.Error("no gate waits at N=3 M=3")
	}
	if c.Overflows != 0 {
		t.Errorf("%d overflow attempts; Theorem 6.1 violated", c.Overflows)
	}
	if c.Violations != 0 {
		t.Errorf("%d violations", c.Violations)
	}
}

// A no-op lock in the grid must produce a deterministic violation report
// with concrete overlap evidence.
func TestSweepDetectsBrokenLockWithEvidence(t *testing.T) {
	broken := LockSpec{Name: "broken", Mk: func(n int, _ int64, _ preempt.Preemptor) Lock {
		return brokenLock{}
	}}
	cfg := SweepConfig{
		Locks:    []LockSpec{broken},
		Patterns: []PatternSpec{{"short-cs", func() workload.Pattern { return workload.ShortCS(30) }}},
		Points:   []GridPoint{{N: 4, M: 8}},
		Iters:    40,
		Seeds:    []int64{7},
	}
	run := func() *CellResult {
		r, err := RunSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return &r.Cells[0]
	}
	c := run()
	if c.Violations == 0 || c.MaxConcurrency < 2 {
		t.Fatalf("broken lock not detected: violations=%d maxconc=%d", c.Violations, c.MaxConcurrency)
	}
	if len(c.Evidence) == 0 {
		t.Fatal("violations reported without evidence")
	}
	ev := c.Evidence[0]
	if len(ev.With) == 0 || ev.Pid == ev.With[0] {
		t.Errorf("evidence does not identify a distinct overlapping pid: %v", ev)
	}
	if !strings.Contains(ev.String(), "overlapped") {
		t.Errorf("evidence string: %q", ev.String())
	}
	// The report is reproducible: same seed, same first overlap.
	c2 := run()
	if c2.Violations != c.Violations || len(c2.Evidence) == 0 ||
		c2.Evidence[0].Pid != ev.Pid || c2.Evidence[0].Iter != ev.Iter {
		t.Error("violation report not reproducible across identical runs")
	}
}

func TestDefaultSweepShape(t *testing.T) {
	cfg := DefaultSweep()
	if got := cfg.cells(); got < 24 {
		t.Errorf("default grid has %d cells, want >= 24", got)
	}
	if len(cfg.Locks) < 4 || len(cfg.Patterns) < 3 || len(cfg.Points) < 2 {
		t.Errorf("default grid axes too small: %d locks, %d patterns, %d points",
			len(cfg.Locks), len(cfg.Patterns), len(cfg.Points))
	}
}
