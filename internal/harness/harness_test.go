package harness

import (
	"runtime"
	"strings"
	"testing"

	"bakerypp/internal/algorithms"
	"bakerypp/internal/core"
	"bakerypp/internal/workload"
)

func TestRunValidation(t *testing.T) {
	l := algorithms.NewTicket(1)
	for _, cfg := range []RunConfig{
		{Lock: l, N: 0, Iters: 1},
		{Lock: l, N: 1, Iters: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid config did not panic")
				}
			}()
			Run(cfg)
		}()
	}
}

func TestRunCorrectLock(t *testing.T) {
	res := Run(RunConfig{
		Lock:  core.New(4, 1<<20),
		N:     4,
		Iters: 2000,
	})
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}
	if res.MaxConcurrency != 1 {
		t.Errorf("max concurrency = %d, want 1", res.MaxConcurrency)
	}
	if res.Ops != 8000 {
		t.Errorf("ops = %d, want 8000", res.Ops)
	}
	if res.Throughput() <= 0 {
		t.Error("throughput not positive")
	}
}

// brokenLock grants the critical section unconditionally; the detector must
// notice overlapping holders.
type brokenLock struct{}

func (brokenLock) Lock(int)     {}
func (brokenLock) Unlock(int)   {}
func (brokenLock) Name() string { return "broken" }

func TestDetectorCatchesBrokenLock(t *testing.T) {
	res := Run(RunConfig{
		Lock:    brokenLock{},
		N:       4,
		Iters:   5000,
		Pattern: workload.ShortCS(50),
	})
	if res.Violations == 0 && res.MaxConcurrency < 2 {
		t.Error("detector saw no overlap from a no-op lock under 4-way contention")
	}
}

func TestLatencyMeasurement(t *testing.T) {
	res := Run(RunConfig{
		Lock:           algorithms.NewTicket(2),
		N:              2,
		Iters:          1000,
		MeasureLatency: true,
	})
	if res.Latency == nil || res.Latency.Count() != 2000 {
		t.Fatalf("latency histogram missing or wrong count: %v", res.Latency)
	}
	if res.Latency.Max() <= 0 {
		t.Error("latency max not positive")
	}
	if !strings.Contains(res.String(), "latency{") {
		t.Error("String() missing latency summary")
	}
}

func TestPatternsAreExercised(t *testing.T) {
	for _, p := range []workload.Pattern{
		workload.Sustained(), workload.ThinkHeavy(50),
		workload.Uniform(20, 5), workload.Exponential(10, 2),
	} {
		res := Run(RunConfig{Lock: core.New(2, 1000), N: 2, Iters: 300, Pattern: p})
		if res.Violations != 0 {
			t.Errorf("pattern %s: violations", p.Name)
		}
	}
}

func TestRunResultString(t *testing.T) {
	res := Run(RunConfig{Lock: algorithms.NewTAS(2), N: 2, Iters: 100})
	s := res.String()
	for _, want := range []string{"tas", "N=2", "200 ops", "violations=0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

// The seed detector was blind on single-core machines: without preemption
// injection a no-op lock's "critical sections" ran as unpreempted bursts
// and never overlapped. Pin the fix at GOMAXPROCS=1 explicitly.
func TestDetectorCatchesBrokenLockAtGOMAXPROCS1(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	res := Run(RunConfig{
		Lock:    brokenLock{},
		N:       4,
		Iters:   5000,
		Pattern: workload.ShortCS(50),
	})
	if res.Violations == 0 && res.MaxConcurrency < 2 {
		t.Fatal("detector saw no overlap from a no-op lock at GOMAXPROCS=1")
	}
	if len(res.Evidence) == 0 {
		t.Fatal("violations detected but no overlap evidence recorded")
	}
	ev := res.Evidence[0]
	if len(ev.With) == 0 {
		t.Errorf("evidence names no overlapping pid: %v", ev)
	}
	if !strings.Contains(res.String(), "first-overlap{") {
		t.Errorf("String() missing evidence summary: %s", res.String())
	}
}

// Disabling preemption injection must reproduce the seed harness's
// behaviour (and remains a valid configuration for raw throughput runs).
func TestNegativePreemptRateDisablesInjection(t *testing.T) {
	res := Run(RunConfig{
		Lock:        core.New(2, 1<<20),
		N:           2,
		Iters:       500,
		PreemptRate: -1,
	})
	if res.Violations != 0 || res.MaxConcurrency != 1 {
		t.Errorf("correct lock misreported: violations=%d maxconc=%d",
			res.Violations, res.MaxConcurrency)
	}
	if res.Evidence != nil {
		t.Error("clean run carries evidence")
	}
}
