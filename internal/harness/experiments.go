package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"bakerypp/internal/algorithms"
	"bakerypp/internal/core"
	"bakerypp/internal/gcl"
	"bakerypp/internal/mc"
	"bakerypp/internal/sched"
	"bakerypp/internal/specs"
	"bakerypp/internal/stats"
	"bakerypp/internal/workload"
)

// ExpConfig tunes how the experiments execute without changing what they
// measure; the zero value reproduces the recorded EXPERIMENTS.md settings.
type ExpConfig struct {
	// MCWorkers is passed through to mc.Options.Workers for every
	// mc.Check and mc.BuildGraph call an experiment makes: 0 runs the
	// sequential engine, a positive count the parallel engine with that
	// many expansion goroutines, -1 one per GOMAXPROCS. Results are
	// identical either way (the engines are deterministic); only
	// wall-clock time changes. The FCFS monitor (E6) and bounded
	// refinement (E11) checkers have their own exploration loops and
	// always run sequentially.
	MCWorkers int
	// SweepWorkers sizes the worker pool of the deterministic contention
	// sweep (E13): 0/1 sequential, a positive count that many cells in
	// parallel. The sweep's aggregated table is byte-identical regardless
	// — that is the property E13 demonstrates.
	SweepWorkers int
	// Symmetry turns on process-symmetry reduction for the safety-check
	// experiments (E1, E2, E8, E9, E12): specs that declare full symmetry
	// explore one state per permutation orbit, shrinking the printed state
	// counts without changing any verdict. E7 keeps building full graphs
	// so its recorded tables stay comparable; E14 and E16 compare reduced
	// against full explicitly (E16 covers the liveness analyses, which
	// since the unified pipeline run orbit-aware on the quotient) and
	// ignore this knob.
	Symmetry bool
	// POR turns on ample-set partial-order reduction for the same
	// safety-check experiments: independent local actions are compressed
	// instead of interleaved, shrinking state counts further without
	// changing any verdict. Composes with Symmetry. The graph-based
	// analyses (E7) and the monitor/refinement checkers (E6, E11) always
	// explore full. E15 compares all four reduction modes explicitly and
	// ignores this knob.
	POR bool
	// Store overrides the visited-set tier for the store-aware surfaces:
	// nil leaves every experiment on its recorded defaults (RunMCBench
	// then appends the store-mode grid and E17 prints its full mode
	// table), while a parsed mc.StoreOptions pins that single tier — the
	// shape CI's memory-smoke uses to run one mode under GOMEMLIMIT.
	// Exactness-needing experiments (graph, FCFS, refinement) ignore a
	// lossy override rather than fail; mc.planFor would refuse it.
	Store *mc.StoreOptions
}

// Experiment is one reproducible experiment from the per-experiment index
// in DESIGN.md. Run writes its tables to w; EXPERIMENTS.md records the
// output of cmd/bakerybench, which runs them all.
type Experiment struct {
	ID    string
	Title string
	// Claim cites the paper statement the experiment substantiates.
	Claim string
	Run   func(w io.Writer, cfg ExpConfig) error
}

// Experiments returns the full suite in ID order.
func Experiments() []Experiment {
	return []Experiment{
		{"E1", "Model-checked safety of Bakery++ (TLC reproduction)",
			"Section 6.2 + TLC result: Bakery++ satisfies mutual exclusion; Section 6.1: no overflow", runE1},
		{"E2", "Overflow invariant: Bakery violates, Bakery++ never",
			"Section 3 problem statement; Section 6.1 Theorem", runE2},
		{"E3", "Ticket growth and register wrap on real goroutines",
			"Section 3 scenario; Section 4: overflow 'in less than a minute' on 32-bit", runE3},
		{"E4", "Throughput parity away from the bound",
			"Section 7: same temporal complexity when no overflow pressure", runE4},
		{"E5", "The price of overflow avoidance near the bound",
			"Section 7: cost of resets when overflows would be frequent", runE5},
		{"E6", "First-come-first-served order",
			"Section 1.2 property 1; Section 4 comparison with Peterson", runE6},
		{"E7", "The L1 livelock scenario",
			"Section 6.3 liveness argument", runE7},
		{"E8", "Space and structure versus related work",
			"Section 4 related work; Section 7 spatial complexity", runE8},
		{"E9", "Naive modulo arithmetic is unsafe (approach-1 strawman)",
			"Section 4: prior work must redefine operators, not just wrap", runE9},
		{"E10", "More customers than tickets (Question One)",
			"Section 8.1 open question", runE10},
		{"E11", "Bakery++ observably refines Bakery",
			"Section 6.2: every execution of Bakery++ is a valid execution of Bakery", runE11},
		{"E12", "Safe (flickering) registers",
			"Section 1.2 property 4: a read overlapping a write may return any value", runE12},
		{"E13", "Deterministic contention sweep (virtual-time scenario grid)",
			"Sections 3/6.3/7 operational claims, reproducible on any core count", runE13},
		{"E14", "Process-symmetry reduction: quotient vs full exploration",
			"Scaling the Section 6.2 TLC-style verification: Clarke/Emerson symmetry reduction (TLC SYMMETRY analog) preserves every verdict at a fraction of the states", runE14},
		{"E15", "Composing reductions: none / symmetry / por / both",
			"Scaling the Section 6.2 TLC-style verification further: ample-set partial-order reduction (the SPIN/TLC-family pairing) multiplies with the symmetry quotient while preserving every verdict, including the modbakery strawman's violation", runE15},
		{"E16", "Liveness under reduction: starvation/no-progress/FCFS, full vs quotient",
			"Section 6.3 livelock and the global-progress question at scales the full graph cannot reach: the unified analysis pipeline runs the cycle analyses orbit-aware on the quotient graph and the FCFS monitor on pinned-orbit keys, with verdict parity enforced and every quotient lasso replayed as a concrete execution", runE16},
		{"E17", "Beyond-RAM state stores: exact / spill / compact / bitstate at a fixed spec",
			"Scaling the Section 6.2 TLC-style verification past memory: hash compaction (TLC's fingerprint mode), bitstate hashing (SPIN's supertrace) and an mmap spill tier trade heap residency — and, for the lossy tiers, an explicitly bounded omission risk — for reach, with verdict parity against the exact baseline", runE17},
		{"E18", "Latency-percentile contention sweep (discrete-event, multi-seed)",
			"Section 7 temporal-complexity claims restated as falsifiable queueing predictions: under closed-loop sustained contention Bakery++'s FCFS doorway makes the acquire tail grow with N, while an open-loop Poisson arrival stream at low load collapses the queue — tested per seed on the discrete-event kernel with a jittered latency model", runE18},
		{"E19", "Entry-gate reset frequency vs ticket budget (scenario fleet, multi-seed)",
			"Section 6.1 reset rule + Section 7 reset cost, restated as a falsifiable queueing prediction: at moderate bursty load resets fire only when a busy period's ticket excursion reaches M, so they rise super-linearly as M shrinks — not the linear 1/M a saturated fleet shows", runE19},
		{"E20", "The entry gate under adversarial preemption: overflow becomes bounded waiting, never starvation",
			"Section 6.1 Theorem + Section 6.3 liveness argument, operationally: with a tiny ticket budget and preemption-prone step pricing the gate fires constantly, yet no ticket overflows, no admitted client is stranded, and the extra acquire latency is bounded against a generous budget", runE20},
		{"E21", "FCFS under ticket wrap: the modulo strawman degrades with contention, Bakery++ does not",
			"Section 1.2 property 1 + Section 4 (prior work must redefine operators, not just wrap): naive modulo tickets invert doorway order ever more as contention grows, while Bakery++'s FCFS violation count stays zero on the identical fleet", runE21},
	}
}

// RunExperiments runs the selected experiment IDs ("all" or empty = all).
// An optional ExpConfig tunes execution (e.g. parallel model checking);
// omitted, the defaults reproduce the recorded tables.
func RunExperiments(w io.Writer, ids []string, cfgs ...ExpConfig) error {
	var cfg ExpConfig
	if len(cfgs) > 0 {
		cfg = cfgs[0]
	}
	want := map[string]bool{}
	for _, id := range ids {
		if id == "all" {
			want = nil
			break
		}
		want[id] = true
	}
	ran := 0
	for _, e := range Experiments() {
		if want != nil && !want[e.ID] {
			continue
		}
		fmt.Fprintf(w, "### %s: %s\n", e.ID, e.Title)
		fmt.Fprintf(w, "Paper claim: %s\n\n", e.Claim)
		start := time.Now()
		if err := e.Run(w, cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(w, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("harness: no experiment matched %v", ids)
	}
	return nil
}

func safetyInvariants() []mc.Invariant {
	return []mc.Invariant{mc.Mutex(), mc.NoOverflow()}
}

func verdict(r *mc.Result) string {
	switch {
	case r.Violation != nil:
		return "VIOLATION:" + r.Violation.Invariant
	case r.Deadlock != nil:
		return "DEADLOCK"
	case !r.Complete:
		return "incomplete"
	default:
		return "verified"
	}
}

func runE1(w io.Writer, cfg ExpConfig) error {
	tb := stats.NewTable("Bakery++ safety verification", "variant", "N", "M", "crash", "states", "transitions", "verdict")
	type row struct {
		cfg   specs.Config
		crash bool
	}
	rows := []row{
		{specs.Config{N: 2, M: 2}, false},
		{specs.Config{N: 2, M: 4}, false},
		{specs.Config{N: 3, M: 2}, false},
		{specs.Config{N: 3, M: 3}, false},
		{specs.Config{N: 2, M: 3, Fine: true}, false},
		{specs.Config{N: 3, M: 2, Fine: true}, false},
		{specs.Config{N: 2, M: 3, SplitReset: true}, false},
		{specs.Config{N: 2, M: 3, EqCheck: true}, false},
		{specs.Config{N: 3, M: 2, NoGate: true}, false},
		{specs.Config{N: 2, M: 2}, true},
		{specs.Config{N: 3, M: 2}, true},
	}
	for _, r := range rows {
		p := specs.BakeryPP(r.cfg)
		res := mc.Check(p, mc.Options{Invariants: safetyInvariants(), Crash: r.crash, Workers: cfg.MCWorkers, Symmetry: cfg.Symmetry, POR: cfg.POR})
		tb.AddRow(p.Name, r.cfg.N, r.cfg.M, r.crash, res.States, res.Transitions, verdict(res))
	}
	_, err := fmt.Fprintln(w, tb)
	return err
}

func runE2(w io.Writer, cfg ExpConfig) error {
	tb := stats.NewTable("No-overflow invariant across algorithms", "algorithm", "N", "M", "crash", "verdict", "trace len")
	type entry struct {
		p     *gcl.Prog
		crash bool
	}
	entries := []entry{
		{specs.Bakery(specs.Config{N: 2, M: 3}), false},
		{specs.Bakery(specs.Config{N: 3, M: 2}), false},
		{specs.Bakery(specs.Config{N: 2, M: 2, Fine: true}), false},
		{specs.BakeryPP(specs.Config{N: 2, M: 3}), false},
		{specs.BakeryPP(specs.Config{N: 3, M: 2}), false},
		{specs.BlackWhite(3), false},
		{specs.BlackWhite(2), true},
		{specs.ModBakery(2, 2), false},
	}
	var bakeryTrace *mc.Trace
	for _, e := range entries {
		res := mc.Check(e.p, mc.Options{Invariants: []mc.Invariant{mc.NoOverflow()}, Crash: e.crash, Workers: cfg.MCWorkers, Symmetry: cfg.Symmetry, POR: cfg.POR})
		tl := 0
		if res.Violation != nil {
			tl = res.Violation.Trace.Len()
			if bakeryTrace == nil && e.p.Name == "bakery" {
				tr := res.Violation.Trace
				bakeryTrace = &tr
			}
		}
		tb.AddRow(e.p.Name, e.p.N, e.p.M, e.crash, verdict(res), tl)
	}
	fmt.Fprintln(w, tb)
	if bakeryTrace != nil {
		fmt.Fprintf(w, "Shortest Bakery overflow counterexample (N=2, M=3):\n%s\n", bakeryTrace.String())
	}
	_, err := fmt.Fprintln(w, "Note: blackwhite's bound N only holds crash-free; under crash-restart its tickets regrow (see row with crash=true). Bakery++ holds M in both fault models.")
	return err
}

func runE3(w io.Writer, _ ExpConfig) error {
	const n = 4
	// Measure ticket growth rate on ideal registers under sustained
	// contention.
	ideal := algorithms.NewBakery(n)
	res := Run(RunConfig{Lock: ideal, N: n, Iters: 10000})
	rate := float64(ideal.MaxTicket()) / res.Elapsed.Seconds()
	fmt.Fprintf(w, "Ideal-register Bakery, %d participants, sustained contention: max ticket %d in %v (≈ %.0f tickets/sec)\n\n",
		n, ideal.MaxTicket(), res.Elapsed.Round(time.Millisecond), rate)

	tb := stats.NewTable("Predicted time to first overflow at measured growth rate",
		"register width", "capacity M", "time to overflow")
	for _, bits := range []int{8, 16, 32, 64} {
		cap := float64(uint64(1)<<uint(bits) - 1)
		var eta string
		if rate > 0 {
			secs := cap / rate
			switch {
			case secs < 120:
				eta = fmt.Sprintf("%.1f s", secs)
			case secs < 7200:
				eta = fmt.Sprintf("%.1f min", secs/60)
			case secs < 48*3600:
				eta = fmt.Sprintf("%.1f h", secs/3600)
			default:
				eta = fmt.Sprintf("%.2g years", secs/(365*24*3600))
			}
		} else {
			eta = "n/a"
		}
		tb.AddRow(fmt.Sprintf("%d-bit", bits), fmt.Sprintf("%.0f", cap), eta)
	}
	fmt.Fprintln(w, tb)

	tb2 := stats.NewTable("Live wrapped-register runs (4 participants, sustained)",
		"lock", "width", "ops", "overflows", "mutex violations", "max concurrency", "resets")
	wrapped := algorithms.NewBakeryForBits(n, 8)
	r2 := Run(RunConfig{Lock: wrapped, N: n, Iters: 10000})
	tb2.AddRow(wrapped.Name(), "8-bit", r2.Ops, wrapped.Overflows(), r2.Violations, r2.MaxConcurrency, "-")

	wrapped12 := algorithms.NewBakeryForBits(n, 12)
	r3 := Run(RunConfig{Lock: wrapped12, N: n, Iters: 10000})
	tb2.AddRow(wrapped12.Name(), "12-bit", r3.Ops, wrapped12.Overflows(), r3.Violations, r3.MaxConcurrency, "-")

	bpp := core.NewForBits(n, 8)
	r4 := Run(RunConfig{Lock: bpp, N: n, Iters: 10000})
	tb2.AddRow(bpp.Name(), "8-bit", r4.Ops, bpp.Overflows(), r4.Violations, r4.MaxConcurrency, bpp.Resets())
	fmt.Fprintln(w, tb2)

	// Figure analog: the live ticket value over time, sampled from the
	// interleaving simulator. Classic Bakery climbs without bound;
	// Bakery++ saws between 0 and M.
	fmt.Fprintln(w, "Ticket growth over 400k simulator steps (each column = bucket mean, scaled to series max):")
	grow, err := sched.Run(specs.Bakery(specs.Config{N: 3, M: 1 << 14}),
		sched.Options{Steps: 400000, Seed: 7, SampleEvery: 500})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  bakery   (max %5d): %s\n", grow.MaxTicket, stats.Sparkline(grow.TicketSeries, 72))
	saw, err := sched.Run(specs.BakeryPP(specs.Config{N: 3, M: 7}),
		sched.Options{Steps: 400000, Seed: 7, SampleEvery: 500})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  bakery++ (max %5d): %s\n", saw.MaxTicket, stats.Sparkline(saw.TicketSeries, 72))
	_, err = fmt.Fprintln(w)
	return err
}

// lockCtor pairs a display name with a fresh-instance constructor so runs
// can be repeated on clean state.
type lockCtor struct {
	name string
	mk   func(n int) Lock
}

func lockCtors() []lockCtor {
	return []lockCtor{
		{"bakery", func(n int) Lock { return algorithms.NewBakery(n) }},
		{"bakery++", func(n int) Lock { return core.New(n, 1<<30) }},
		{"black-white", func(n int) Lock { return algorithms.NewBlackWhite(n) }},
		{"peterson-filter", func(n int) Lock { return algorithms.NewPeterson(n) }},
		{"szymanski", func(n int) Lock { return algorithms.NewSzymanski(n) }},
		{"tournament", func(n int) Lock { return algorithms.NewTournament(n) }},
		{"ticket-faa", func(n int) Lock { return algorithms.NewTicket(n) }},
		{"tas", func(n int) Lock { return algorithms.NewTAS(n) }},
		{"ttas", func(n int) Lock { return algorithms.NewTTAS(n) }},
	}
}

// comparisonLocks builds one fresh instance of every lock for n
// participants; Bakery++ gets a capacity far from its bound.
func comparisonLocks(n int) []Lock {
	ctors := lockCtors()
	out := make([]Lock, 0, len(ctors))
	for _, c := range ctors {
		out = append(out, c.mk(n))
	}
	return out
}

// medianThroughput runs the workload three times on fresh lock instances
// and returns the median critical-sections-per-second, damping scheduler
// noise in the short runs.
func medianThroughput(ctor lockCtor, n, iters int, pat workload.Pattern) (float64, error) {
	vals := make([]float64, 0, 3)
	for rep := 0; rep < 3; rep++ {
		res := Run(RunConfig{Lock: ctor.mk(n), N: n, Iters: iters, Pattern: pat, Seed: int64(n*10 + rep)})
		if res.Violations != 0 {
			return 0, fmt.Errorf("%s violated mutual exclusion", ctor.name)
		}
		vals = append(vals, res.Throughput())
	}
	sort.Float64s(vals)
	return vals[1], nil
}

func runE4(w io.Writer, _ ExpConfig) error {
	for _, pat := range []workload.Pattern{workload.Sustained(), workload.ThinkHeavy(200)} {
		tb := stats.NewTable(fmt.Sprintf("Throughput, %s workload (critical sections/sec, median of 3)", pat.Name),
			"lock", "N=2", "N=4", "N=8")
		for _, ctor := range lockCtors() {
			var cells [3]string
			for col, n := range []int{2, 4, 8} {
				thr, err := medianThroughput(ctor, n, 4000, pat)
				if err != nil {
					return err
				}
				cells[col] = stats.FormatRate(thr)
			}
			tb.AddRow(ctor.name, cells[0], cells[1], cells[2])
		}
		fmt.Fprintln(w, tb)
	}

	lt := stats.NewTable("Acquisition latency, sustained, N=4 (nanoseconds)",
		"lock", "p50", "p90", "p99", "max")
	for _, l := range comparisonLocks(4) {
		res := Run(RunConfig{Lock: l, N: 4, Iters: 4000, MeasureLatency: true, Seed: 99})
		if res.Violations != 0 {
			return fmt.Errorf("%s violated mutual exclusion during latency run", l.Name())
		}
		h := res.Latency
		lt.AddRow(l.Name(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Max())
	}
	_, err := fmt.Fprintln(w, lt)
	return err
}

func runE5(w io.Writer, _ ExpConfig) error {
	const n = 4
	tb := stats.NewTable("Bakery++ overflow pressure (4 participants, sustained)",
		"capacity M", "ops", "throughput", "resets", "resets/op", "gate waits/op")
	for _, m := range []int64{4, 8, 64, 1 << 20} {
		l := core.New(n, m)
		res := Run(RunConfig{Lock: l, N: n, Iters: 8000})
		if res.Violations != 0 {
			return fmt.Errorf("bakery++ violated mutual exclusion at M=%d", m)
		}
		ops := float64(res.Ops)
		tb.AddRow(m, res.Ops, stats.FormatRate(res.Throughput()),
			l.Resets(), float64(l.Resets())/ops, float64(l.GateWaits())/ops)
	}
	_, err := fmt.Fprintln(w, tb)
	return err
}

func runE6(w io.Writer, _ ExpConfig) error {
	tb := stats.NewTable("FCFS order in the interleaving simulator (N=3, 300k steps, random scheduler)",
		"algorithm", "cs entries", "doorways", "FCFS inversions", "fairness ratio")
	progs := []*gcl.Prog{
		specs.Bakery(specs.Config{N: 3, M: 1 << 14}),
		specs.BakeryPP(specs.Config{N: 3, M: 4}),
		specs.BlackWhite(3),
		specs.Peterson(3),
		specs.Szymanski(3),
	}
	for _, p := range progs {
		st, err := sched.Run(p, sched.Options{Steps: 300000, Seed: 11})
		if err != nil {
			return err
		}
		var doorways int64
		for _, d := range st.Doorways {
			doorways += d
		}
		tb.AddRow(p.Name, st.TotalCS(), doorways, st.FCFSInversions, st.FairnessRatio())
	}
	fmt.Fprintln(w, tb)

	tb2 := stats.NewTable("FCFS as a model-checked property (monitor automaton over all interleavings)",
		"algorithm", "pair (first,second)", "product states", "verdict")
	checks := []struct {
		p      *gcl.Prog
		fs     [2]int
		bounds int
	}{
		{specs.BakeryPP(specs.Config{N: 2, M: 2}), [2]int{0, 1}, 0},
		{specs.BakeryPP(specs.Config{N: 2, M: 2}), [2]int{1, 0}, 0},
		{specs.BakeryPP(specs.Config{N: 3, M: 2}), [2]int{2, 0}, 0},
		{specs.Bakery(specs.Config{N: 2, M: 1 << 14}), [2]int{0, 1}, 60000},
		{specs.BlackWhite(2), [2]int{0, 1}, 0},
		{specs.Peterson(3), [2]int{0, 1}, 0},
		{specs.Szymanski(2), [2]int{0, 1}, 0},
		{specs.Szymanski(2), [2]int{1, 0}, 0},
	}
	for _, c := range checks {
		res, err := mc.CheckFCFS(c.p, c.fs[0], c.fs[1], mc.Options{MaxStates: c.bounds})
		if err != nil {
			return err
		}
		v := "holds"
		switch {
		case !res.Holds:
			v = fmt.Sprintf("VIOLATED (witness %d steps)", res.Witness.Len())
		case !res.Complete:
			v = "holds (bounded)"
		}
		tb2.AddRow(c.p.Name, fmt.Sprintf("(%d,%d)", c.fs[0], c.fs[1]), res.States, v)
	}
	fmt.Fprintln(w, tb2)
	_, err := fmt.Fprintln(w, "Szymanski drains waiting-room batches in id order: FCFS holds with the lower id arriving first and is violated in the reverse direction — 'first-come-first-served' up to batch-internal id reordering.")
	return err
}

func runE12(w io.Writer, cfg ExpConfig) error {
	tb := stats.NewTable("Model-checked safety over safe (flickering) registers",
		"spec", "N", "M", "crash", "states", "verdict")
	type combo struct {
		n, m  int
		crash bool
	}
	for _, c := range []combo{{2, 2, false}, {2, 3, false}, {2, 2, true}} {
		p := specs.BakeryPPSafe(c.n, c.m)
		res := mc.Check(p, mc.Options{Invariants: safetyInvariants(), Crash: c.crash, Workers: cfg.MCWorkers, Symmetry: cfg.Symmetry, POR: cfg.POR})
		tb.AddRow(p.Name, c.n, c.m, c.crash, res.States, verdict(res))
	}
	fmt.Fprintln(w, tb)

	l := core.NewSafe(4, core.CapacityForBits(8))
	res := Run(RunConfig{Lock: l, N: 4, Iters: 8000})
	fmt.Fprintf(w, "Runtime torture (4 participants, 8-bit tickets, adversarial flicker): %d ops, %d flickered reads, %d mutex violations, max concurrency %d, %d resets.\n",
		res.Ops, l.Flickers(), res.Violations, res.MaxConcurrency, l.Resets())
	if res.Violations != 0 {
		return fmt.Errorf("safe-register bakery++ violated mutual exclusion")
	}
	fmt.Fprintln(w, "Bakery++ tolerates reads that return arbitrary values during writes — verified exhaustively at model level and exercised adversarially at runtime.")
	return nil
}

func runE7(w io.Writer, cfg ExpConfig) error {
	p := specs.BakeryPP(specs.Config{N: 3, M: 2})
	g, err := mc.BuildGraph(p, mc.Options{Workers: cfg.MCWorkers})
	if err != nil {
		return err
	}
	l1 := p.LabelIndex("l1")
	rep := g.FindStarvation(func(pr *gcl.Prog, s gcl.State) bool {
		return pr.PC(s, 2) == l1
	}, []int{0, 1})
	if rep == nil {
		fmt.Fprintln(w, "No L1 livelock cycle found (unexpected; see Section 6.3).")
	} else {
		blocked := 0
		for _, idx := range rep.Component {
			if !p.Enabled(g.State(int(idx)), 2) {
				blocked++
			}
		}
		fmt.Fprintf(w, "Model-level witness (N=3, M=2): a cycle of %d states keeps process 2 pinned at L1 while processes 0 and 1 take %d and %d steps per lap region; process 2 is genuinely blocked in %d of the cycle's states.\n\n",
			rep.ComponentSize, rep.MovesByPid[0], rep.MovesByPid[1], blocked)
	}

	all := []int{0, 1, 2}
	if np := g.FindNoProgress(all); np == nil {
		fmt.Fprintln(w, "Global progress: no reachable cycle keeps all three processes moving without a critical-section entry — individual starvation at L1 is possible, global livelock is not.")
	} else {
		fmt.Fprintf(w, "Unexpected global livelock: %d states, moves %v\n", np.ComponentSize, np.MovesByPid)
	}
	cs := p.LabelIndex("cs")
	if rep := g.FindStarvation(func(pr *gcl.Prog, s gcl.State) bool {
		return pr.PC(s, 2) != cs
	}, all); rep != nil {
		fmt.Fprintf(w, "Active starvation (Question Two connection): a %d-state cycle keeps process 2 moving (%d steps per lap region) without ever serving it — each reset discards its ticket and restarts its FCFS protection. Classic Bakery cannot do this: tickets are never given up.\n", rep.ComponentSize, rep.MovesByPid[2])
	}
	gg, err := mc.BuildGraph(specs.BakeryPP(specs.Config{N: 3, M: 2, NoGate: true}), mc.Options{Workers: cfg.MCWorkers})
	if err != nil {
		return err
	}
	if np := gg.FindNoProgress(all); np != nil {
		fmt.Fprintf(w, "Ablation: WITHOUT the L1 gate a global reset livelock exists (%d-state cycle, all processes moving, zero entries) — the gate is redundant for safety (E1) but load-bearing for global progress.\n", np.ComponentSize)
	} else {
		fmt.Fprintln(w, "Ablation: gateless variant shows no global livelock (unexpected).")
	}
	fmt.Fprintln(w)

	tb := stats.NewTable("Operational starvation under a biased scheduler (N=3, M=2, 300k steps)",
		"slow-process weight", "fast entries", "slow entries", "fairness ratio")
	for _, wgt := range []float64{1, 0.1, 0.01, 0.001} {
		st, err := sched.Run(specs.BakeryPP(specs.Config{N: 3, M: 2}), sched.Options{
			Steps: 300000, Seed: 12,
			Sched: sched.Biased{Slow: map[int]bool{2: true}, Weight: wgt},
		})
		if err != nil {
			return err
		}
		tb.AddRow(wgt, st.CSEntries[0]+st.CSEntries[1], st.CSEntries[2], st.FairnessRatio())
	}
	_, err = fmt.Fprintln(w, tb)
	return err
}

func runE8(w io.Writer, cfg ExpConfig) error {
	const n = 8
	tb := stats.NewTable("Structure at N=8 (paper Section 4/7 comparison, made quantitative)",
		"algorithm", "shared cells", "value bound", "single-writer", "FCFS", "RMW-free", "labels", "states(N=2)")
	type algo struct {
		p            *gcl.Prog
		small        *gcl.Prog
		bound        string
		singleWriter string
		fcfs         string
	}
	algos := []algo{
		{specs.Bakery(specs.Config{N: n, M: 0}), specs.Bakery(specs.Config{N: 2, M: 6}), "unbounded", "yes", "yes"},
		{specs.BakeryPP(specs.Config{N: n, M: 255}), specs.BakeryPP(specs.Config{N: 2, M: 3}), "M (chosen)", "yes", "yes"},
		{specs.BlackWhite(n), specs.BlackWhite(2), "N", "no (color)", "yes"},
		{specs.Peterson(n), specs.Peterson(2), "N", "no (victim)", "no"},
		{specs.Szymanski(n), specs.Szymanski(2), "4", "yes", "yes"},
	}
	for _, a := range algos {
		var states string
		res := mc.Check(a.small, mc.Options{MaxStates: 400000, Workers: cfg.MCWorkers, Symmetry: cfg.Symmetry, POR: cfg.POR})
		if res.Complete {
			states = fmt.Sprint(res.States)
		} else {
			states = fmt.Sprintf(">%d", res.States)
		}
		tb.AddRow(a.p.Name, a.p.SharedCells(), a.bound, a.singleWriter, a.fcfs, "yes",
			len(a.p.Labels()), states)
	}
	fmt.Fprintln(w, tb)
	fmt.Fprintln(w, "(RMW locks for contrast: ticket-faa uses 2 cells, tas/ttas 1 cell, tournament 3·(N-1); all rely on read-modify-write, which Section 3 rules out for 'true' mutual exclusion.)")
	return nil
}

func runE9(w io.Writer, cfg ExpConfig) error {
	p := specs.ModBakery(2, 2)
	res := mc.Check(p, mc.Options{Invariants: []mc.Invariant{mc.Mutex()}, Workers: cfg.MCWorkers, Symmetry: cfg.Symmetry, POR: cfg.POR})
	if res.Violation == nil {
		return fmt.Errorf("expected a mutual-exclusion violation from modbakery")
	}
	fmt.Fprintf(w, "modbakery (tickets mod %d, comparison unchanged): mutual exclusion VIOLATED after exploring %d states.\nShortest counterexample (%d steps):\n%s\n",
		p.M+1, res.States, res.Violation.Trace.Len(), res.Violation.Trace.String())
	return nil
}

func runE10(w io.Writer, _ ExpConfig) error {
	tb := stats.NewTable("Question One: N participants, M < N (200k steps, random scheduler)",
		"N", "M", "cs entries", "resets", "max ticket", "fairness ratio", "locked out")
	for _, cfg := range []specs.Config{{N: 4, M: 3}, {N: 6, M: 3}, {N: 8, M: 2}} {
		p := specs.BakeryPP(cfg)
		st, err := sched.Run(p, sched.Options{Steps: 200000, Seed: 13})
		if err != nil {
			return err
		}
		var resets int64
		lockedOut := 0
		for pid, r := range st.Resets {
			resets += r
			if st.CSEntries[pid] == 0 {
				lockedOut++
			}
		}
		tb.AddRow(cfg.N, cfg.M, st.TotalCS(), resets, st.MaxTicket, st.FairnessRatio(), lockedOut)
	}
	fmt.Fprintln(w, tb)
	fmt.Fprintln(w, "Answer observed: with M < N every process still made progress under a fair random scheduler — the bound throttles ticket issue (more resets) but did not produce lockout in any measured run.")
	return nil
}

func runE11(w io.Writer, _ ExpConfig) error {
	spec := specs.Bakery(specs.Config{N: 2, M: 1 << 14})
	impl := specs.BakeryPP(specs.Config{N: 2, M: 2})
	res, err := mc.CheckBoundedRefinement(impl, spec, mc.RefinementOptions{MaxEvents: 6})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "bakerypp (N=2, M=2) observably refines bakery up to 6 events: holds=%v (%d nodes, %d belief sets)\n",
		res.Holds, res.Nodes, res.Beliefs)

	neg, err := mc.CheckBoundedRefinement(specs.ModBakery(2, 2), spec, mc.RefinementOptions{MaxEvents: 8})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "negative control — modbakery refines bakery: holds=%v (unmatched event %q after %d steps)\n",
		neg.Holds, neg.FailEvent, neg.Counterexample.Len())
	if res.Holds && !neg.Holds {
		fmt.Fprintln(w, "Refinement claim of Section 6.2 substantiated in the checked configuration.")
	}
	return nil
}

func runE13(w io.Writer, cfg ExpConfig) error {
	sweep := DefaultSweep()
	// The recorded table uses a compact grid (4 locks × 3 patterns × 2
	// points) so the experiment suite stays quick; `bakerybench -sweep`
	// runs the full default grid.
	sweep.Locks = SelectLocks(sweep.Locks, "bakery++", "bakery-wrap", "black-white", "ticket-faa")
	sweep.Iters = 40
	sweep.Workers = cfg.SweepWorkers
	res, err := RunSweep(sweep)
	if err != nil {
		return err
	}
	tb := res.Table()
	fmt.Fprintln(w, tb)
	fmt.Fprintf(w, "table fingerprint: %s (identical on every machine and for any -sweep-workers)\n", tb.Fingerprint())
	var viols int64
	for i := range res.Cells {
		c := &res.Cells[i]
		if c.Lock == "bakery-wrap" {
			viols += c.Violations
		}
		if c.Lock == "bakery++" && c.Violations != 0 {
			return fmt.Errorf("bakery++ violated mutual exclusion in cell %s/%s", c.Pattern, c.Lock)
		}
	}
	fmt.Fprintf(w, "Wrapped-register Bakery accumulated %d mutual-exclusion violations across its cells; Bakery++ zero. Time is virtual (scheduling steps), so the whole table — violations, resets, latency percentiles — replays exactly from the seed.\n", viols)
	return nil
}

func runE14(w io.Writer, cfg ExpConfig) error {
	tb := stats.NewTable("Symmetry reduction: states explored, quotient vs full (same invariants, same verdicts)",
		"algorithm", "N", "M", "full states", "reduced states", "ratio", "verdict")
	type cell struct {
		p    func() *gcl.Prog
		n, m int
		full bool // run the full side too (skip when far beyond the bound)
	}
	cells := []cell{
		{func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 2, M: 2}) }, 2, 2, true},
		{func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 3, M: 2}) }, 3, 2, true},
		{func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 5, M: 2}) }, 5, 2, false},
		{func() *gcl.Prog { return specs.Bakery(specs.Config{N: 3, M: 3}) }, 3, 3, true},
		{func() *gcl.Prog { return specs.Bakery(specs.Config{N: 4, M: 4}) }, 4, 4, true},
		{func() *gcl.Prog { return specs.Bakery(specs.Config{N: 6, M: 4}) }, 6, 4, false},
		{func() *gcl.Prog { return specs.Szymanski(3) }, 3, 4, true},
		{func() *gcl.Prog { return specs.Szymanski(4) }, 4, 4, true},
		{func() *gcl.Prog { return specs.ModBakery(2, 2) }, 2, 2, true},
		{func() *gcl.Prog { return specs.BlackWhite(3) }, 3, 3, true}, // NoSymmetry control
	}
	for _, c := range cells {
		red := mc.Check(c.p(), mc.Options{Invariants: safetyInvariants(), Workers: cfg.MCWorkers, Symmetry: true})
		fullStates, ratio := "skipped (beyond bound)", "—"
		if c.full {
			full := mc.Check(c.p(), mc.Options{Invariants: safetyInvariants(), Workers: cfg.MCWorkers})
			if verdict(full) != verdict(red) {
				return fmt.Errorf("E14: verdicts diverge for %s N=%d: full %s, reduced %s",
					red.Prog.Name, c.n, verdict(full), verdict(red))
			}
			fullStates = fmt.Sprint(full.States)
			ratio = fmt.Sprintf("%.1fx", float64(full.States)/float64(red.States))
		}
		name := red.Prog.Name
		if !red.Symmetry {
			name += " (opted out)"
		}
		tb.AddRow(name, c.n, c.m, fullStates, red.States, ratio, verdict(red))
	}
	fmt.Fprintln(w, tb)
	fmt.Fprintln(w, "Reduced runs store one representative per process-permutation orbit (canonical keys respect scan-cursor history; dead cursors normalized away). Verdicts and counterexample validity are preserved — the engine only ever dedups, it never expands a permuted image — and results are byte-identical for any -workers value. Bakery++ at N=5 and Bakery at N=6 become checkable under the default state bound; the black-white row pins the declared-asymmetric fallback (reduction off, full search).")
	return nil
}

func runE15(w io.Writer, cfg ExpConfig) error {
	tb := stats.NewTable("Reduction factors: states explored under each mode (same invariants; verdict parity enforced)",
		"algorithm", "N", "M", "none", "symmetry", "por", "both", "por gain on symmetry", "verdict")
	type cell struct {
		algo string
		n, m int
		// full runs the unreduced and por-only modes too; the largest
		// configurations skip them (the point of the reductions is that
		// the full side is impractical there).
		full bool
	}
	cells := []cell{
		{"bakerypp", 2, 2, true},
		{"bakerypp", 3, 2, true},
		{"bakerypp", 4, 2, false},
		{"bakery", 3, 3, true},
		{"szymanski", 4, 4, true},
		{"modbakery", 3, 2, true},
	}
	for _, c := range cells {
		run := func(sym, por bool) (*mc.Result, error) {
			p, err := specs.Get(c.algo, specs.Config{N: c.n, M: c.m})
			if err != nil {
				return nil, err
			}
			return mc.Check(p, mc.Options{
				Invariants: safetyInvariants(), Workers: cfg.MCWorkers,
				Symmetry: sym, POR: por,
			}), nil
		}
		sym, err := run(true, false)
		if err != nil {
			return err
		}
		both, err := run(true, true)
		if err != nil {
			return err
		}
		noneStates, porStates := "skipped (beyond practical)", "skipped"
		results := []*mc.Result{sym, both}
		if c.full {
			none, err := run(false, false)
			if err != nil {
				return err
			}
			por, err := run(false, true)
			if err != nil {
				return err
			}
			noneStates, porStates = fmt.Sprint(none.States), fmt.Sprint(por.States)
			results = append(results, none, por)
		}
		for _, r := range results[1:] {
			if verdict(r) != verdict(results[0]) {
				return fmt.Errorf("E15: verdicts diverge for %s N=%d: %s vs %s",
					c.algo, c.n, verdict(results[0]), verdict(r))
			}
		}
		gain := float64(sym.States) / float64(both.States)
		if c.algo == "bakerypp" && c.n == 4 && gain < 2 {
			return fmt.Errorf("E15: por gain on symmetry below 2x for bakerypp N=4: %.2fx", gain)
		}
		tb.AddRow(c.algo, c.n, c.m, noneStates, sym.States, porStates, both.States, fmt.Sprintf("%.1fx", gain), verdict(sym))
	}
	fmt.Fprintln(w, tb)
	fmt.Fprintln(w, "POR compresses runs of local, invariant-invisible actions (ample sets with Lipton-style chain merging) and multiplies with the symmetry quotient; both reductions preserve verdicts, deadlocks, and concrete counterexample traces — the modbakery row pins that its mutual-exclusion violation survives every mode. Results are byte-identical for any -workers value. Graph-based analyses (E7) always explore full.")
	return nil
}

func runE16(w io.Writer, cfg ExpConfig) error {
	tb := stats.NewTable("Liveness under reduction: verdicts on the full graph vs the symmetry quotient (parity enforced in-experiment)",
		"analysis", "algorithm", "N", "M", "pin/pair", "full states", "quotient states", "verdict", "quotient evidence")

	type graphCell struct {
		kind string // "starve@l1", "active-starve", "no-progress"
		// reg is the registry name the spec is built from; label is the
		// table's display name (the nogate cell is a bakerypp Config
		// variant, not its own registry entry).
		reg, label string
		cfg        specs.Config
		full       bool // run the full side too (off where the full graph is impractical)
	}
	cells := []graphCell{
		{"starve@l1", "bakerypp", "bakerypp", specs.Config{N: 3, M: 2}, true},
		{"starve@l1", "bakerypp", "bakerypp", specs.Config{N: 4, M: 2}, false},
		{"active-starve", "bakerypp", "bakerypp", specs.Config{N: 3, M: 2}, true},
		{"no-progress", "bakerypp", "bakerypp", specs.Config{N: 3, M: 2}, true},
		{"no-progress", "bakerypp", "bakerypp-nogate", specs.Config{N: 3, M: 2, NoGate: true}, true},
	}
	for _, c := range cells {
		mk := func() (*gcl.Prog, error) { return specs.Get(c.reg, c.cfg) }
		build := func(sym bool) (*mc.Graph, *gcl.Prog, error) {
			p, err := mk()
			if err != nil {
				return nil, nil, err
			}
			g, err := mc.BuildGraph(p, mc.Options{Workers: cfg.MCWorkers, Symmetry: sym})
			return g, p, err
		}
		quot, p, err := build(true)
		if err != nil {
			return err
		}
		slow := p.N - 1
		// evidenceOf validates a quotient report's replayed lasso and
		// renders the table's evidence cell; full-graph reports carry none.
		evidenceOf := func(g *mc.Graph, quotient bool, entryLen, cycleLen int) (string, error) {
			if !g.Quotient() {
				return "", nil
			}
			if !quotient || cycleLen == 0 {
				return "", fmt.Errorf("E16: quotient %s report lacks a replayed cycle", c.kind)
			}
			if entryLen >= 0 {
				return fmt.Sprintf("lasso %d+%d steps replayed", entryLen, cycleLen), nil
			}
			return fmt.Sprintf("lasso %d steps replayed", cycleLen), nil
		}
		analyse := func(g *mc.Graph) (found bool, evidence string, err error) {
			if c.kind == "no-progress" {
				rep := g.FindNoProgress(allPidsOf(p.N))
				if rep == nil {
					return false, "", nil
				}
				ev, err := evidenceOf(g, rep.Quotient, -1, len(rep.Cycle))
				return true, ev, err
			}
			pred := func(pr *gcl.Prog, s gcl.State) bool { // starve@l1
				return pr.PC(s, slow) == p.LabelIndex("l1")
			}
			mustMove := make([]int, 0, p.N-1)
			for pid := 0; pid < p.N; pid++ {
				if pid != slow {
					mustMove = append(mustMove, pid)
				}
			}
			if c.kind == "active-starve" {
				pred = func(pr *gcl.Prog, s gcl.State) bool {
					return pr.PC(s, slow) != p.LabelIndex("cs")
				}
				mustMove = allPidsOf(p.N)
			}
			rep := g.FindStarvation(pred, mustMove)
			if rep == nil {
				return false, "", nil
			}
			ev, err := evidenceOf(g, rep.Quotient, rep.EntryLen, len(rep.Cycle))
			return true, ev, err
		}
		qFound, qEvidence, err := analyse(quot)
		if err != nil {
			return err
		}
		fullStates := "skipped (beyond bound)"
		if c.full {
			full, _, err := build(false)
			if err != nil {
				return err
			}
			fFound, _, err := analyse(full)
			if err != nil {
				return err
			}
			if fFound != qFound {
				return fmt.Errorf("E16: %s %s N=%d verdicts diverge: full=%v quotient=%v",
					c.kind, c.label, c.cfg.N, fFound, qFound)
			}
			fullStates = fmt.Sprint(full.NumStates())
		}
		verdict := "no cycle"
		if qFound {
			verdict = "cycle"
		}
		if qEvidence == "" {
			qEvidence = "—"
		}
		tb.AddRow(c.kind, c.label, c.cfg.N, c.cfg.M, fmt.Sprintf("pid %d", slow),
			fullStates, quot.NumStates(), verdict, qEvidence)
	}

	// FCFS through the pinned-orbit store: the monitor names its pair, the
	// remaining pids collapse.
	type fcfsCell struct {
		algo          string
		cfg           specs.Config
		first, second int
	}
	for _, c := range []fcfsCell{
		{"bakerypp", specs.Config{N: 3, M: 2}, 2, 0},
		{"szymanski", specs.Config{N: 3}, 2, 0},
	} {
		mk := func() (*gcl.Prog, error) { return specs.Get(c.algo, c.cfg) }
		pf, err := mk()
		if err != nil {
			return err
		}
		full, err := mc.CheckFCFS(pf, c.first, c.second, mc.Options{})
		if err != nil {
			return err
		}
		pq, err := mk()
		if err != nil {
			return err
		}
		red, err := mc.CheckFCFS(pq, c.first, c.second, mc.Options{Symmetry: true})
		if err != nil {
			return err
		}
		if full.Holds != red.Holds {
			return fmt.Errorf("E16: FCFS(%d,%d) verdicts diverge for %s: full=%v reduced=%v",
				c.first, c.second, c.algo, full.Holds, red.Holds)
		}
		verdict := "holds"
		evidence := "—"
		if !red.Holds {
			verdict = "VIOLATED"
			evidence = fmt.Sprintf("witness %d steps (concrete)", red.Witness.Len())
		}
		tb.AddRow("fcfs", c.algo, pf.N, pf.M, fmt.Sprintf("(%d,%d)", c.first, c.second),
			full.States, red.States, verdict, evidence)
	}
	fmt.Fprintln(w, tb)
	fmt.Fprintf(w, "table fingerprint: %s (identical for any -workers and GOMAXPROCS)\n", tb.Fingerprint())
	fmt.Fprintln(w, "Until this pipeline, -symmetry was ignored for -starve/-fcfs and these properties capped out near N=4; the quotient side now carries them (the bakerypp N=4 row's full graph alone exceeds 1.5M states, and N=5 M=2 completes orbit-aware while its full graph exhausts the state bound). Quotient cycle verdicts are backed by concrete replayed lassos — every step re-derived by execution — and the no-progress rows pin both directions: the gated spec shows no global livelock on either side, the gateless ablation's reset livelock survives the reduction.")
	return nil
}

func runE17(w io.Writer, cfg ExpConfig) error {
	tb := stats.NewTable("Visited-set tiers on the unreduced Bakery++ N=4 M=2 space (1.57M states)",
		"store", "states", "transitions", "verdict", "expected omissions", "confidence", "peak RSS (MiB)")
	// Tiers run smallest footprint first: peak RSS (getrusage Maxrss) is a
	// process-wide high-water mark, so each row's column is legible as
	// "the high water after this tier" only when footprints ascend — the
	// exact in-heap tier, the largest, goes last.
	stores := []string{"bitstate", "compact64", "compact", "compact,spill", "exact,spill", "exact"}
	if cfg.Store != nil {
		// A pinned tier runs alone: the shape the CI memory smoke uses to
		// drive one mode under GOMEMLIMIT without paying for the others.
		stores = []string{cfg.Store.String()}
	}
	c := specs.Config{N: 4, M: 2}
	var exact, lossyRef *mc.Result
	for _, spec := range stores {
		so, err := mc.ParseStoreSpec(spec)
		if err != nil {
			return err
		}
		p, err := specs.Get("bakerypp", c)
		if err != nil {
			return err
		}
		res := mc.Check(p, mc.Options{
			Invariants: safetyInvariants(),
			Workers:    cfg.MCWorkers,
			Store:      so,
		})
		expected, confidence := "0 (exact)", "1"
		if res.Store != nil && res.Store.Lossy {
			expected = fmt.Sprintf("<= %.3g", res.Store.ExpectedOmissions)
			confidence = fmt.Sprintf(">= %.9f", res.Store.Confidence)
			if lossyRef == nil {
				lossyRef = res
			}
		} else if spec == "exact" {
			exact = res
		}
		tb.AddRow(spec, res.States, res.Transitions, verdict(res), expected, confidence, peakRSSKB()/1024)
	}
	fmt.Fprintln(w, tb)
	if exact != nil && lossyRef != nil && verdict(exact) != verdict(lossyRef) {
		return fmt.Errorf("E17: lossy tier verdict %q diverges from exact %q", verdict(lossyRef), verdict(exact))
	}
	fmt.Fprintln(w, "The exact tiers agree state-for-state; the lossy tiers reach the same verdict while holding fingerprints (compact) or bits (bitstate) instead of state vectors, with the omission risk they accept printed next to the verdict — see docs/model-checking.md, \"State stores and memory\". Bitstate explores the same space but stores no values, so runs that need POR or traces must step up a tier. Peak RSS is a process high-water mark: each row shows the maximum over all tiers run so far, which is why the table ascends to the exact tier instead of resetting per row.")
	return nil
}

func runE18(w io.Writer, cfg ExpConfig) error {
	const model = "jitter:2,5"
	fmt.Fprintln(w, "Hypotheses (posed before running; each seed is an independent trial and a refutation is a finding, not an error):")
	fmt.Fprintln(w, "  H-a (closed loop): under sustained re-arrival, Bakery++'s FCFS doorway queues every arrival behind up to N-1 ordered predecessors, so the acquire p99 at N=4 exceeds the acquire p99 at N=2.")
	fmt.Fprintln(w, "  H-b (open loop): with Poisson interarrivals at mean 80 against a ~6-unit hold the lock is mostly idle, so queueing collapses — the poisson acquire p99 at N=4 stays below the sustained acquire p99 at N=4.")
	fmt.Fprintln(w)

	seeds := []int64{1, 2, 3}
	tb := stats.NewTable("Bakery++ acquire-latency percentiles per seed (latency="+model+", M=7)",
		"seed", "pattern", "N", "acq p50", "acq p95", "acq p99", "wait p50", "ops/ktime")
	type key struct {
		pattern string
		n       int
	}
	p99 := make(map[int64]map[key]int64)
	for _, seed := range seeds {
		sweep := DESSweepConfig{
			Locks:    SelectDESLocks(DefaultDESLocks(), "bakery++"),
			Patterns: DefaultDESPatterns(),
			Points:   []GridPoint{{N: 2, M: 7}, {N: 4, M: 7}},
			Iters:    150,
			Seeds:    []int64{seed},
			Workers:  cfg.SweepWorkers,
			Latency:  model,
		}
		res, err := RunDESSweep(sweep)
		if err != nil {
			return err
		}
		p99[seed] = make(map[key]int64)
		for i := range res.Cells {
			c := &res.Cells[i]
			if c.Violations != 0 {
				return fmt.Errorf("E18: bakery++ violated mutual exclusion in cell %s N=%d seed %d", c.Pattern, c.N, seed)
			}
			p99[seed][key{c.Pattern, c.N}] = c.Acquire.Quantile(0.99)
			tb.AddRow(seed, c.Pattern, c.N,
				c.Acquire.Quantile(0.5), c.Acquire.Quantile(0.95), c.Acquire.Quantile(0.99),
				c.Wait.Quantile(0.5), c.OpsPerKTime())
		}
	}
	fmt.Fprintln(w, tb)
	fmt.Fprintf(w, "table fingerprint: %s (three independent seeds; identical on every machine and for any -sweep-workers)\n\n", tb.Fingerprint())

	poisson := DefaultDESPatterns()[1].Name
	confirmedA, confirmedB := 0, 0
	for _, seed := range seeds {
		m := p99[seed]
		sus2, sus4 := m[key{"sustained", 2}], m[key{"sustained", 4}]
		poi4 := m[key{poisson, 4}]
		va, vb := "Refuted", "Refuted"
		if sus4 > sus2 {
			va = "Confirmed"
			confirmedA++
		}
		if poi4 < sus4 {
			vb = "Confirmed"
			confirmedB++
		}
		fmt.Fprintf(w, "seed %d: H-a %s (sustained acq p99 N=2→4: %d → %d), H-b %s (%s acq p99 %d vs sustained %d at N=4)\n",
			seed, va, sus2, sus4, vb, poisson, poi4, sus4)
	}
	fmt.Fprintf(w, "Verdict over %d seeds: H-a %d/%d, H-b %d/%d. The percentiles are virtual-time, priced by the latency model, and reproduce exactly from the seed — rerun any single trial with `bakerybench -des -latency %s -sweep-seed <seed>`.\n",
		len(seeds), confirmedA, len(seeds), confirmedB, len(seeds), model)
	return nil
}

// allPidsOf returns 0..n-1 (the mustMove set "every process").
func allPidsOf(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// ExperimentIDs returns the sorted list of experiment IDs for CLI help.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
