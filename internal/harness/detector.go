package harness

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Overlap is one occupancy-detector trip: participant Pid entered the
// critical section on its Iter-th acquisition while the participants in
// With were already inside. A violation report that names the overlapping
// pids and the iteration is reproducible evidence (re-run the seed and the
// same entry misbehaves), where the seed harness's bare counter only said
// "something overlapped at some point".
type Overlap struct {
	Pid  int
	Iter int
	With []int
}

// String renders the evidence line.
func (o Overlap) String() string {
	return fmt.Sprintf("pid %d iter %d overlapped %v", o.Pid, o.Iter, o.With)
}

// maxEvidence bounds the evidence kept per run; the first trips are the
// ones worth reproducing, and a thoroughly broken lock would otherwise
// allocate one record per acquisition.
const maxEvidence = 64

// occupancy tracks who is inside the critical section. For n <= 64 it
// keeps a pid bitmask so each entry can report exactly which participants
// it overlapped; beyond 64 it degrades to the seed harness's counter (no
// per-pid evidence, same violation and concurrency counts).
type occupancy struct {
	n    int
	wide bool // n > 64: counter only

	mask       atomic.Uint64
	count      atomic.Int32
	violations atomic.Int64
	maxConc    atomic.Int32

	mu       sync.Mutex
	evidence []Overlap
}

func newOccupancy(n int) *occupancy {
	return &occupancy{n: n, wide: n > 64}
}

// enter records participant pid entering the critical section on its
// iter-th acquisition.
func (o *occupancy) enter(pid, iter int) {
	if o.wide {
		now := o.count.Add(1)
		if now != 1 {
			o.violations.Add(1)
			o.record(Overlap{Pid: pid, Iter: iter})
		}
		o.bumpMax(now)
		return
	}
	bit := uint64(1) << uint(pid)
	var prev uint64
	for {
		prev = o.mask.Load()
		if o.mask.CompareAndSwap(prev, prev|bit) {
			break
		}
	}
	if prev != 0 {
		o.violations.Add(1)
		with := make([]int, 0, bits.OnesCount64(prev))
		for q := prev; q != 0; q &= q - 1 {
			with = append(with, bits.TrailingZeros64(q))
		}
		o.record(Overlap{Pid: pid, Iter: iter, With: with})
	}
	o.bumpMax(int32(bits.OnesCount64(prev | bit)))
}

// exit records participant pid leaving the critical section.
func (o *occupancy) exit(pid int) {
	if o.wide {
		o.count.Add(-1)
		return
	}
	bit := uint64(1) << uint(pid)
	for {
		prev := o.mask.Load()
		if o.mask.CompareAndSwap(prev, prev&^bit) {
			return
		}
	}
}

func (o *occupancy) bumpMax(now int32) {
	for cur := o.maxConc.Load(); now > cur; cur = o.maxConc.Load() {
		if o.maxConc.CompareAndSwap(cur, now) {
			return
		}
	}
}

func (o *occupancy) record(ov Overlap) {
	o.mu.Lock()
	if len(o.evidence) < maxEvidence {
		o.evidence = append(o.evidence, ov)
	}
	o.mu.Unlock()
}

// report returns the collected evidence (nil when no violation occurred).
func (o *occupancy) report() []Overlap {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.evidence) == 0 {
		return nil
	}
	out := make([]Overlap, len(o.evidence))
	copy(out, o.evidence)
	return out
}
