package harness

import (
	"strings"
	"testing"
)

func cmpRec(name string, rate, secs float64, verdict string) MCBenchRecord {
	return MCBenchRecord{Name: name, StatesPerSec: rate, WallSeconds: secs, Verdict: verdict}
}

func TestCompareMCBench(t *testing.T) {
	old := &MCBenchReport{Records: []MCBenchRecord{
		cmpRec("a/none", 1000, 1.0, "verified"),
		cmpRec("b/none", 1000, 1.0, "verified"),
		cmpRec("c/none", 1000, 0.01, "verified"),
		cmpRec("d/none", 1000, 1.0, "verified"),
		cmpRec("gone/none", 1000, 1.0, "verified"),
	}}
	new := &MCBenchReport{Records: []MCBenchRecord{
		cmpRec("a/none", 900, 1.0, "verified"),         // -10%: fine at 0.7
		cmpRec("b/none", 500, 1.0, "verified"),         // -50%: regression
		cmpRec("c/none", 100, 0.01, "verified"),        // huge drop but sub-50ms: informational
		cmpRec("d/none", 2000, 1.0, "VIOLATION:mutex"), // faster but wrong: mismatch
		cmpRec("fresh/none", 1000, 1.0, "verified"),
	}}
	c := CompareMCBench(old, new, 0.7)
	if !c.Failed() {
		t.Fatal("comparison with a regression and a verdict mismatch did not fail")
	}
	byName := map[string]BenchRowDelta{}
	for _, r := range c.Rows {
		byName[r.Name] = r
	}
	if r := byName["a/none"]; r.Regressed || r.VerdictMismatch {
		t.Errorf("a/none flagged (%+v), want clean", r)
	}
	if r := byName["b/none"]; !r.Regressed {
		t.Errorf("b/none not flagged as regression (%+v)", r)
	}
	if r := byName["c/none"]; r.Regressed || !r.TooFast {
		t.Errorf("c/none = %+v, want too-fast informational, not a regression", r)
	}
	if r := byName["d/none"]; !r.VerdictMismatch {
		t.Errorf("d/none not flagged as verdict mismatch (%+v)", r)
	}
	if len(c.OldOnly) != 1 || c.OldOnly[0] != "gone/none" {
		t.Errorf("OldOnly = %v, want [gone/none]", c.OldOnly)
	}
	if len(c.NewOnly) != 1 || c.NewOnly[0] != "fresh/none" {
		t.Errorf("NewOnly = %v, want [fresh/none]", c.NewOnly)
	}

	// A passing comparison: everything within threshold.
	if CompareMCBench(old, old, 0.7).Failed() {
		t.Error("self-comparison failed")
	}
}

// Rows that exist in the old snapshot but not in the new run are rows
// the tripwire can no longer guard: the comparison must surface them as
// an explicit warning (though not a failure — trimmed -bench-small runs
// legitimately omit rows).
func TestCompareWarnsOnDroppedRows(t *testing.T) {
	old := &MCBenchReport{Records: []MCBenchRecord{
		cmpRec("kept/none", 1000, 1.0, "verified"),
		cmpRec("dropped/none", 1000, 1.0, "verified"),
	}}
	new := &MCBenchReport{Records: []MCBenchRecord{
		cmpRec("kept/none", 1000, 1.0, "verified"),
	}}
	c := CompareMCBench(old, new, 0.7)
	if c.Failed() {
		t.Error("dropped rows alone must warn, not fail")
	}
	if got := c.DroppedRows(); len(got) != 1 || got[0] != "dropped/none" {
		t.Errorf("DroppedRows() = %v, want [dropped/none]", got)
	}
	out := c.String()
	if !strings.Contains(out, "WARNING") || !strings.Contains(out, "dropped/none") {
		t.Errorf("String() does not warn about the dropped row:\n%s", out)
	}
	if c2 := CompareMCBench(old, old, 0.7); strings.Contains(c2.String(), "WARNING") {
		t.Error("self-comparison rendered a dropped-row warning")
	}
}

// The worker-scaling pairs ("<stem>/w1" vs "<stem>/wmax") are judged on
// their speedup ratio: a wmax rate that falls behind w1 — or behind the
// old snapshot's speedup for the same pair — must warn, but never fail
// (single-core runners measure ~1.0x by construction).
func TestCompareWarnsOnScalingRegression(t *testing.T) {
	old := &MCBenchReport{Records: []MCBenchRecord{
		cmpRec("scale/a/w1", 1000, 1.0, "verified"),
		cmpRec("scale/a/wmax", 3000, 1.0, "verified"), // 3.0x baseline
		cmpRec("scale/b/w1", 1000, 1.0, "verified"),
		cmpRec("scale/b/wmax", 1000, 1.0, "verified"), // parity baseline
	}}
	new := &MCBenchReport{Records: []MCBenchRecord{
		cmpRec("scale/a/w1", 1000, 1.0, "verified"),
		cmpRec("scale/a/wmax", 1500, 1.0, "verified"), // 1.5x: decayed from 3.0x
		cmpRec("scale/b/w1", 1000, 1.0, "verified"),
		cmpRec("scale/b/wmax", 950, 1.0, "verified"), // 0.95x: within tolerance of parity
		cmpRec("scale/c/w1", 1000, 1.0, "verified"),
		cmpRec("scale/c/wmax", 500, 1.0, "verified"), // 0.5x, no baseline: below parity
		cmpRec("scale/d/w1", 1000, 0.01, "verified"),
		cmpRec("scale/d/wmax", 100, 0.01, "verified"), // terrible but sub-50ms
	}}
	// Row threshold 0.4: the wmax rows' raw-rate drops stay under the
	// per-row tripwire, isolating the scaling verdicts.
	c := CompareMCBench(old, new, 0.4)
	if c.Failed() {
		t.Error("scaling decay alone must warn, not fail")
	}
	byStem := map[string]ScalingDelta{}
	for _, s := range c.Scaling {
		byStem[s.Stem] = s
	}
	if len(byStem) != 4 {
		t.Fatalf("got %d scaling pairs (%v), want 4", len(byStem), byStem)
	}
	if s := byStem["scale/a"]; !s.Warn || s.OldSpeedup != 3.0 || s.NewSpeedup != 1.5 {
		t.Errorf("scale/a = %+v, want warned decay 3.0x -> 1.5x", s)
	}
	if s := byStem["scale/b"]; s.Warn {
		t.Errorf("scale/b = %+v, want no warning (0.95x vs 1.0x baseline is within tolerance)", s)
	}
	if s := byStem["scale/c"]; !s.Warn || s.OldSpeedup != 0 {
		t.Errorf("scale/c = %+v, want warned against the parity baseline", s)
	}
	if s := byStem["scale/d"]; s.Warn || !s.TooFast {
		t.Errorf("scale/d = %+v, want too-fast informational, never warned", s)
	}
	out := c.String()
	if !strings.Contains(out, "SCALING WARNING") || !strings.Contains(out, "scale/a") {
		t.Errorf("String() does not render the scaling warning:\n%s", out)
	}

	// A healthy multi-core snapshot compared against itself stays quiet.
	if c2 := CompareMCBench(old, old, 0.4); strings.Contains(c2.String(), "SCALING WARNING") {
		t.Error("self-comparison rendered a scaling warning")
	}
}
