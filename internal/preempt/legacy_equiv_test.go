package preempt

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// legacySequencer is a frozen copy of the PR 2 Sequencer implementation,
// kept verbatim as the oracle for the adapter equivalence test: the
// des.Sim-backed Sequencer must reproduce this loop's grant order and
// step counts exactly, for every (n, seed). Do not "fix" or modernise
// this type — its whole value is that it does not change.
type legacySequencer struct {
	n       int
	rng     *rand.Rand
	grant   []chan struct{}
	event   chan legacyEvent
	steps   int64
	spawned int
}

type legacyEvent struct {
	pid  int
	done bool
}

func newLegacySequencer(n int, seed int64) *legacySequencer {
	s := &legacySequencer{
		n:     n,
		rng:   rand.New(rand.NewSource(seed)),
		grant: make([]chan struct{}, n),
		event: make(chan legacyEvent),
	}
	for i := range s.grant {
		s.grant[i] = make(chan struct{})
	}
	return s
}

func (s *legacySequencer) Go(pid int, fn func()) {
	s.spawned++
	go func() {
		s.event <- legacyEvent{pid: pid}
		<-s.grant[pid]
		fn()
		s.event <- legacyEvent{pid: pid, done: true}
	}()
}

func (s *legacySequencer) Preempt(pid int) {
	s.event <- legacyEvent{pid: pid}
	<-s.grant[pid]
}

func (s *legacySequencer) Wait(pid int) { s.Preempt(pid) }

func (s *legacySequencer) Now() int64 { return s.steps }

func (s *legacySequencer) Run() int64 {
	alive := s.spawned
	runnable := make([]int, 0, alive)
	for len(runnable) < alive {
		ev := <-s.event
		runnable = append(runnable, ev.pid)
	}
	sort.Ints(runnable)
	for alive > 0 {
		i := s.rng.Intn(len(runnable))
		pid := runnable[i]
		runnable[i] = runnable[len(runnable)-1]
		runnable = runnable[:len(runnable)-1]
		s.steps++
		s.grant[pid] <- struct{}{}
		ev := <-s.event
		if ev.done {
			alive--
		} else {
			runnable = append(runnable, ev.pid)
		}
	}
	return s.steps
}

// seqLike is the surface both the oracle and the adapter expose.
type seqLike interface {
	Go(pid int, fn func())
	Preempt(pid int)
	Wait(pid int)
	Now() int64
	Run() int64
}

// granTrace runs the canonical contended workload — iters loop
// iterations per pid, a Preempt each, a Wait every third — and returns
// the full "pid@step" grant trace plus the step total.
func grantTrace(s seqLike, n, iters int) (string, int64) {
	var trace []string
	for pid := 0; pid < n; pid++ {
		pid := pid
		s.Go(pid, func() {
			for k := 0; k < iters; k++ {
				trace = append(trace, fmt.Sprintf("%d@%d", pid, s.Now()))
				s.Preempt(pid)
				if k%3 == 0 {
					s.Wait(pid)
				}
			}
		})
	}
	total := s.Run()
	return strings.Join(trace, " "), total
}

// TestSequencerMatchesLegacy is the refactor's pin: over a grid of
// (n, seed), the des.Sim-backed Sequencer (unit latency) reproduces the
// frozen PR 2 loop's schedule exactly — same grant order, same virtual
// timestamps at every observation point, same step total. Any schedule
// drift here would silently invalidate every sweep fingerprint recorded
// before the discrete-event refactor.
func TestSequencerMatchesLegacy(t *testing.T) {
	const iters = 30
	for n := 1; n <= 5; n++ {
		for seed := int64(1); seed <= 8; seed++ {
			oldTrace, oldTotal := grantTrace(newLegacySequencer(n, seed), n, iters)
			newTrace, newTotal := grantTrace(NewSequencer(n, seed), n, iters)
			if oldTrace != newTrace {
				t.Fatalf("n=%d seed=%d: grant trace diverged from the PR 2 loop\nlegacy: %.120s\nnew:    %.120s",
					n, seed, oldTrace, newTrace)
			}
			if oldTotal != newTotal {
				t.Fatalf("n=%d seed=%d: step totals diverged: legacy %d, new %d", n, seed, oldTotal, newTotal)
			}
		}
	}
}

// TestSequencerSecondRunPanics pins the single-shot contract: a
// Sequencer's rng and clock are consumed by Run, so a second Run cannot
// reproduce any seeded schedule and must fail loudly rather than return
// a quietly meaningless result.
func TestSequencerSecondRunPanics(t *testing.T) {
	seq := NewSequencer(1, 1)
	seq.Go(0, func() {})
	seq.Run()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second Run did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "single-shot") {
			t.Fatalf("second Run panicked with %v, want a message explaining the single-shot contract", r)
		}
	}()
	seq.Run()
}
