// Package preempt is the runtime layer's preemption-injection subsystem.
//
// The paper's operational claims (overflow frequency, reset cost, violation
// observability — Sections 3, 6.3 and 7) are about what happens when
// processes interleave. A Go program only exhibits those interleavings when
// the scheduler happens to preempt goroutines at the interesting points; on
// a single-core machine a lock's whole doorway runs as one atomic burst and
// the schedules the paper reasons about simply never occur. This package
// makes preemption a first-class, controllable event instead of a
// hardware accident:
//
//   - Preemptor is the pluggable preemption point. Code that may be
//     descheduled (lock spin loops, doorway fast paths, workload spinners)
//     reports to a Preemptor instead of calling runtime.Gosched directly.
//   - Gosched reproduces the seed behaviour: spin-waits yield to the Go
//     scheduler, fast-path points cost nothing.
//   - RandomYield injects seeded, randomized runtime.Gosched calls at
//     fast-path points, exposing the race windows (such as Bakery++'s
//     gate-to-scan window) on any GOMAXPROCS.
//   - Sequencer (sequencer.go) replaces the Go scheduler entirely with a
//     deterministic cooperative scheduler in virtual time, which is what
//     makes the harness's scenario sweeps reproducible bit-for-bit on any
//     machine.
package preempt

import "runtime"

// Preemptor receives the preemption points of one set of participants.
// Participants are addressed by pid; each pid must be driven by at most one
// goroutine at a time (the repository-wide system model).
type Preemptor interface {
	// Preempt marks an optional preemption point on participant pid's fast
	// path: a place where a context switch is legal and interesting, but
	// not required for progress.
	Preempt(pid int)
	// Wait marks one iteration of a spin-wait: participant pid cannot make
	// progress until some other participant acts, so the processor should
	// be handed over.
	Wait(pid int)
}

// Gosched is the production Preemptor and the default for every lock: spin
// waits yield to the Go runtime scheduler (exactly the seed
// implementation's behaviour) and fast-path preemption points are free —
// the runtime's own asynchronous preemption remains the only source of
// mid-doorway context switches.
type Gosched struct{}

// Preempt implements Preemptor as a no-op.
func (Gosched) Preempt(int) {}

// Wait implements Preemptor by yielding to the Go scheduler.
func (Gosched) Wait(int) { runtime.Gosched() }

// Yield yields to the Go scheduler at every preemption point of either
// kind. It is the sink the workload spinner hands its already-rate-limited
// yields to.
type Yield struct{}

// Preempt implements Preemptor by yielding.
func (Yield) Preempt(int) { runtime.Gosched() }

// Wait implements Preemptor by yielding.
func (Yield) Wait(int) { runtime.Gosched() }

// RandomYield yields to the Go scheduler at fast-path preemption points
// with a configured probability, drawn from an independent seeded xorshift
// stream per participant, and always yields on spin waits. The streams make
// the yield schedule deterministic per (seed, pid, call sequence) while
// staying race-free: each pid's state is written only by the goroutine
// driving that pid, and states are padded a cache line apart so the
// bookkeeping itself does not create the false sharing the locks under
// study are measured for.
type RandomYield struct {
	states []uint64
	thresh uint64
}

// yieldStride spaces per-pid xorshift states one 64-byte cache line apart.
const yieldStride = 8

// NewRandomYield returns a RandomYield for n participants. rate is the
// per-Preempt yield probability in [0, 1]; seed selects the yield schedule.
func NewRandomYield(n int, seed int64, rate float64) *RandomYield {
	if n < 1 {
		panic("preempt: need at least one participant")
	}
	if rate < 0 {
		rate = 0
	}
	thresh := ^uint64(0)
	if rate < 1 {
		// Scale via 2^32 so the conversion stays within exact float64
		// integer range (rate*2^64 is not representable).
		thresh = uint64(rate*float64(1<<32)) << 32
	}
	y := &RandomYield{
		states: make([]uint64, n*yieldStride),
		thresh: thresh,
	}
	for pid := 0; pid < n; pid++ {
		y.states[pid*yieldStride] = Seed64(seed, pid)
	}
	return y
}

// Seed64 derives a nonzero xorshift64 initial state from (seed, stream)
// via a splitmix64 finalizer, so per-participant streams stay decorrelated
// even for adjacent seeds. It is the one seed-mixing function every
// deterministic component of the subsystem (RandomYield, the workload
// spinner) shares.
func Seed64(seed int64, stream int) uint64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(stream+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	return z
}

// Xorshift64 advances an xorshift64 state (the shared PRNG step behind
// every injected-yield decision).
func Xorshift64(s uint64) uint64 {
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	return s
}

// Preempt implements Preemptor: yield with the configured probability.
func (y *RandomYield) Preempt(pid int) {
	s := Xorshift64(y.states[pid*yieldStride])
	y.states[pid*yieldStride] = s
	if s < y.thresh {
		runtime.Gosched()
	}
}

// Wait implements Preemptor: a spinning participant always yields.
func (*RandomYield) Wait(int) { runtime.Gosched() }
