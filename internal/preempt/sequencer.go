package preempt

import (
	"math/rand"
	"sort"
)

// Sequencer is a deterministic cooperative scheduler: it runs N participant
// goroutines so that exactly one executes at any moment and every context
// switch happens at an explicit preemption point, with the next participant
// chosen by a seeded random source. The resulting execution is a function
// of (participant code, seed) alone — independent of GOMAXPROCS, core
// count, clock speed and Go scheduler version — which is what lets the
// harness's scenario sweeps promise byte-identical result tables on any
// machine.
//
// Time is virtual: one step per grant. Participants observe it through Now,
// so "latency" and "throughput" under a Sequencer are measured in
// scheduling steps, not nanoseconds.
//
// Usage:
//
//	seq := preempt.NewSequencer(n, seed)
//	for pid := 0; pid < n; pid++ {
//		seq.Go(pid, func() { ... code calling seq.Preempt/seq.Wait ... })
//	}
//	steps := seq.Run()
//
// The participant functions must route every spin-wait through Wait (a
// spin loop that never reports to the Sequencer would monopolise its grant
// forever). All of this repository's locks do, via their SetPreemptor hook.
type Sequencer struct {
	n     int
	rng   *rand.Rand
	grant []chan struct{}
	event chan seqEvent
	steps int64
	// spawned counts Go calls so Run knows how many participants to herd;
	// a Sequencer is single-shot.
	spawned int
}

type seqEvent struct {
	pid  int
	done bool
}

// NewSequencer returns a Sequencer for n participants with the given
// schedule seed.
func NewSequencer(n int, seed int64) *Sequencer {
	if n < 1 {
		panic("preempt: need at least one participant")
	}
	s := &Sequencer{
		n:     n,
		rng:   rand.New(rand.NewSource(seed)),
		grant: make([]chan struct{}, n),
		event: make(chan seqEvent),
	}
	for i := range s.grant {
		s.grant[i] = make(chan struct{})
	}
	return s
}

// Go spawns fn as participant pid's goroutine. fn does not start executing
// until Run grants it for the first time.
func (s *Sequencer) Go(pid int, fn func()) {
	if pid < 0 || pid >= s.n {
		panic("preempt: participant out of range")
	}
	s.spawned++
	go func() {
		s.event <- seqEvent{pid: pid}
		<-s.grant[pid]
		fn()
		s.event <- seqEvent{pid: pid, done: true}
	}()
}

// Preempt implements Preemptor: the running participant offers a context
// switch and blocks until the scheduler grants it again.
func (s *Sequencer) Preempt(pid int) {
	s.event <- seqEvent{pid: pid}
	<-s.grant[pid]
}

// Wait implements Preemptor identically to Preempt: under a deterministic
// scheduler a spin-wait iteration is just another switch point.
func (s *Sequencer) Wait(pid int) { s.Preempt(pid) }

// Now returns the current virtual time in steps. It may be called only by
// the participant currently holding the grant (or before Run / after Run
// returns); the grant channel handoff orders the accesses.
func (s *Sequencer) Now() int64 { return s.steps }

// Run drives the spawned participants to completion and returns the total
// number of virtual steps (grants) issued. It must be called exactly once,
// after all Go calls.
func (s *Sequencer) Run() int64 {
	alive := s.spawned
	runnable := make([]int, 0, alive)
	// Every spawned participant parks once before its first instruction.
	// They arrive in Go-scheduler order, which must not leak into the
	// schedule: sort, so the runnable set starts in pid order and every
	// later mutation is driven by the seeded rng alone.
	for len(runnable) < alive {
		ev := <-s.event
		runnable = append(runnable, ev.pid)
	}
	sort.Ints(runnable)
	for alive > 0 {
		i := s.rng.Intn(len(runnable))
		pid := runnable[i]
		runnable[i] = runnable[len(runnable)-1]
		runnable = runnable[:len(runnable)-1]
		s.steps++
		s.grant[pid] <- struct{}{}
		ev := <-s.event
		if ev.done {
			alive--
		} else {
			runnable = append(runnable, ev.pid)
		}
	}
	return s.steps
}
