package preempt

import (
	"bakerypp/internal/des"
)

// Sequencer is a deterministic cooperative scheduler: it runs N participant
// goroutines so that exactly one executes at any moment and every context
// switch happens at an explicit preemption point, with the next participant
// chosen by a seeded random source. The resulting execution is a function
// of (participant code, seed) alone — independent of GOMAXPROCS, core
// count, clock speed and Go scheduler version — which is what lets the
// harness's scenario sweeps promise byte-identical result tables on any
// machine.
//
// Time is virtual: one step per grant. Participants observe it through Now,
// so "latency" and "throughput" under a Sequencer are measured in
// scheduling steps, not nanoseconds.
//
// Since the discrete-event refactor, Sequencer is a thin adapter over
// des.Sim with the unit latency model: the Sim's single-server grant loop
// with unit costs is the exact PR 2 algorithm (seeded rng pick from a
// sorted-then-swap-removed runnable pool, one clock tick per grant), so
// schedules are bit-identical to the original implementation — pinned by
// TestSequencerMatchesLegacy against a frozen copy of the old loop.
// Deliberately NOT forwarded: des.Sim's Elapse. Workloads that want
// latency-priced computation run on a des.Sim directly; under a Sequencer
// every switch point stays one step, so every fingerprint recorded before
// the refactor still reproduces.
//
// Usage:
//
//	seq := preempt.NewSequencer(n, seed)
//	for pid := 0; pid < n; pid++ {
//		seq.Go(pid, func() { ... code calling seq.Preempt/seq.Wait ... })
//	}
//	steps := seq.Run()
//
// The participant functions must route every spin-wait through Wait (a
// spin loop that never reports to the Sequencer would monopolise its grant
// forever). All of this repository's locks do, via their SetPreemptor hook.
//
// A Sequencer is single-shot: its seeded rng and virtual clock are
// consumed by Run, so a second Run cannot reproduce any seeded schedule
// and panics with a message saying so. Create a fresh Sequencer per run.
type Sequencer struct {
	sim *des.Sim
}

// NewSequencer returns a Sequencer for n participants with the given
// schedule seed.
func NewSequencer(n int, seed int64) *Sequencer {
	if n < 1 {
		panic("preempt: need at least one participant")
	}
	return &Sequencer{sim: des.NewSim(n, seed, des.Unit())}
}

// Go spawns fn as participant pid's goroutine. fn does not start executing
// until Run grants it for the first time.
func (s *Sequencer) Go(pid int, fn func()) { s.sim.Go(pid, fn) }

// Preempt implements Preemptor: the running participant offers a context
// switch and blocks until the scheduler grants it again.
func (s *Sequencer) Preempt(pid int) { s.sim.Preempt(pid) }

// Wait implements Preemptor identically to Preempt: under a deterministic
// scheduler a spin-wait iteration is just another switch point.
func (s *Sequencer) Wait(pid int) { s.sim.Wait(pid) }

// Now returns the current virtual time in steps. It may be called only by
// the participant currently holding the grant (or before Run / after Run
// returns); the grant channel handoff orders the accesses.
func (s *Sequencer) Now() int64 { return s.sim.Now() }

// Run drives the spawned participants to completion and returns the total
// number of virtual steps (grants) issued. It must be called exactly once,
// after all Go calls; a second call panics.
func (s *Sequencer) Run() int64 { return s.sim.Run() }
