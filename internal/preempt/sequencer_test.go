package preempt

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// Two sequencer runs with the same seed must produce the identical
// interleaving — observed here as the exact event trace of a contended
// counter protocol.
func TestSequencerDeterministic(t *testing.T) {
	trace := func(seed int64) []int {
		const n, iters = 3, 40
		seq := NewSequencer(n, seed)
		var order []int
		for pid := 0; pid < n; pid++ {
			pid := pid
			seq.Go(pid, func() {
				for k := 0; k < iters; k++ {
					order = append(order, pid) // single-runner: no race
					seq.Preempt(pid)
				}
			})
		}
		seq.Run()
		return order
	}
	a, b := trace(11), trace(11)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := trace(12)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical interleavings")
	}
}

// Determinism must hold regardless of GOMAXPROCS — the whole point of the
// subsystem.
func TestSequencerGOMAXPROCSIndependent(t *testing.T) {
	run := func(procs int) int64 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		const n = 4
		seq := NewSequencer(n, 99)
		var spins atomic.Int64
		for pid := 0; pid < n; pid++ {
			pid := pid
			seq.Go(pid, func() {
				for k := 0; k < 25; k++ {
					spins.Add(1)
					seq.Preempt(pid)
					seq.Wait(pid)
				}
			})
		}
		return seq.Run()
	}
	if a, b := run(1), run(4); a != b {
		t.Errorf("virtual steps differ across GOMAXPROCS: %d vs %d", a, b)
	}
}

// A spin-wait routed through Wait must not wedge the scheduler: the waiter
// keeps getting descheduled until the writer it waits for is granted.
func TestSequencerSpinWaitProgress(t *testing.T) {
	seq := NewSequencer(2, 5)
	var flag atomic.Int32
	seq.Go(0, func() {
		for flag.Load() == 0 {
			seq.Wait(0)
		}
	})
	seq.Go(1, func() {
		for k := 0; k < 10; k++ {
			seq.Preempt(1)
		}
		flag.Store(1)
	})
	if steps := seq.Run(); steps == 0 {
		t.Error("no steps taken")
	}
}

// Now advances only at switch points and is visible to the participant
// holding the grant.
func TestSequencerVirtualClock(t *testing.T) {
	seq := NewSequencer(1, 3)
	var stamps []int64
	seq.Go(0, func() {
		stamps = append(stamps, seq.Now())
		seq.Preempt(0)
		stamps = append(stamps, seq.Now())
		seq.Preempt(0)
		stamps = append(stamps, seq.Now())
	})
	total := seq.Run()
	if len(stamps) != 3 || stamps[0] != 1 || stamps[1] != 2 || stamps[2] != 3 {
		t.Errorf("stamps = %v", stamps)
	}
	if total != 3 {
		t.Errorf("total steps = %d, want 3", total)
	}
}

func TestSequencerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=0 did not panic")
		}
	}()
	NewSequencer(0, 1)
}

func TestSequencerGoOutOfRange(t *testing.T) {
	seq := NewSequencer(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range pid did not panic")
		}
	}()
	seq.Go(2, func() {})
}
