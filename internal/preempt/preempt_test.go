package preempt

import "testing"

func TestRandomYieldValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=0 did not panic")
		}
	}()
	NewRandomYield(0, 1, 0.5)
}

func TestRandomYieldRateClamped(t *testing.T) {
	// Out-of-range rates clamp instead of corrupting the threshold.
	if y := NewRandomYield(1, 1, -3); y.thresh != 0 {
		t.Errorf("negative rate threshold = %d", y.thresh)
	}
	if y := NewRandomYield(1, 1, 7); y.thresh != ^uint64(0) {
		t.Errorf("rate > 1 threshold = %d", y.thresh)
	}
}

// The yield decision stream is a pure function of (seed, pid, call index).
func TestRandomYieldDeterministicStream(t *testing.T) {
	draw := func(seed int64, pid, k int) []uint64 {
		y := NewRandomYield(pid+1, seed, 0.5)
		out := make([]uint64, k)
		for i := range out {
			y.Preempt(pid) // advances the state
			out[i] = y.states[pid*yieldStride]
		}
		return out
	}
	a, b := draw(42, 2, 50), draw(42, 2, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := draw(43, 2, 50)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

// Distinct pids draw from decorrelated streams.
func TestRandomYieldPerPidStreams(t *testing.T) {
	y := NewRandomYield(2, 7, 0.5)
	s0, s1 := y.states[0], y.states[yieldStride]
	if s0 == s1 {
		t.Error("pid streams share initial state")
	}
}

func TestGoschedAndYieldAreSafe(t *testing.T) {
	// Smoke: the trivial Preemptors neither panic nor block.
	Gosched{}.Preempt(0)
	Gosched{}.Wait(0)
	Yield{}.Preempt(0)
	Yield{}.Wait(0)
	NewRandomYield(2, 1, 1).Preempt(1)
	NewRandomYield(2, 1, 1).Wait(1)
}
