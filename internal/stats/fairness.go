package stats

// Fairness and SLO accumulators for the lock-service scenario layer.

// Jain returns Jain's fairness index over the given per-class figures:
// (Σx)² / (k·Σx²), which is 1 when every class sees the same figure and
// 1/k when one class takes everything. Non-positive entries are kept
// (they legitimately pull the index down); an empty or all-zero input
// returns 0 rather than dividing by zero.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// SLOCounter tracks attainment of a latency objective online: samples at
// or under the target count as met. It exists because the power-of-two
// Histogram cannot answer "what fraction was <= target" exactly, and SLO
// tables must be exact to be honest.
type SLOCounter struct {
	Target int64
	Met    int64
	Total  int64
}

// Record adds one sample.
func (c *SLOCounter) Record(v int64) {
	c.Total++
	if v <= c.Target {
		c.Met++
	}
}

// Merge folds other into c; the targets must agree (merging attainment
// across different objectives is meaningless).
func (c *SLOCounter) Merge(other *SLOCounter) {
	if other.Total > 0 && c.Total > 0 && other.Target != c.Target {
		panic("stats: merging SLO counters with different targets")
	}
	if c.Total == 0 {
		c.Target = other.Target
	}
	c.Met += other.Met
	c.Total += other.Total
}

// Attainment returns the met fraction in percent (0 with no samples).
func (c *SLOCounter) Attainment() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Met) / float64(c.Total)
}
