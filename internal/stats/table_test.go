package stats

import (
	"strings"
	"testing"
)

func TestSparklineEmpty(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Error("empty series produced output")
	}
	if Sparkline([]int32{1, 2}, 0) != "" {
		t.Error("zero width produced output")
	}
}

func TestSparklineWidth(t *testing.T) {
	vals := make([]int32, 100)
	for i := range vals {
		vals[i] = int32(i)
	}
	out := []rune(Sparkline(vals, 20))
	if len(out) != 20 {
		t.Errorf("width = %d, want 20", len(out))
	}
	// Monotone series must render non-decreasing block heights.
	prev := rune(0)
	for _, r := range out {
		if r < prev {
			t.Fatalf("sparkline not monotone: %q", string(out))
		}
		prev = r
	}
}

func TestSparklineShortSeries(t *testing.T) {
	out := []rune(Sparkline([]int32{5, 1}, 10))
	if len(out) != 2 {
		t.Errorf("width clamped to series length: got %d", len(out))
	}
	if out[0] <= out[1] {
		t.Errorf("descending series rendered ascending: %q", string(out))
	}
}

func TestSparklineFlatZero(t *testing.T) {
	out := Sparkline([]int32{0, 0, 0}, 3)
	if out != "▁▁▁" {
		t.Errorf("flat zero series = %q", out)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("plain", 1)
	tb.AddRow("with,comma", `with"quote`)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "plain,1" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != `"with,comma","with""quote"` {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestFingerprintStable(t *testing.T) {
	mk := func(title string, rows [][2]any) *Table {
		tb := NewTable(title, "a", "b")
		for _, r := range rows {
			tb.AddRow(r[0], r[1])
		}
		return tb
	}
	rows := [][2]any{{"x", 1}, {"y", 2}}
	a, b := mk("t", rows), mk("t", rows)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical tables fingerprint differently")
	}
	if a.Fingerprint() == mk("t", [][2]any{{"x", 1}, {"y", 3}}).Fingerprint() {
		t.Error("different rows, same fingerprint")
	}
	if a.Fingerprint() == mk("u", rows).Fingerprint() {
		t.Error("different titles, same fingerprint")
	}
	if len(a.Fingerprint()) != 16 {
		t.Errorf("fingerprint %q not 16 hex chars", a.Fingerprint())
	}
}
