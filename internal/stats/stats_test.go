package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram nonzero summary")
	}
	if h.Quantile(0.5) != 0 {
		t.Error("empty quantile nonzero")
	}
	if h.String() != "histogram(empty)" {
		t.Errorf("String = %q", h.String())
	}
	if h.DurationSummary() != "no samples" {
		t.Errorf("DurationSummary = %q", h.DurationSummary())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 2, 3, 4, 100} {
		h.Record(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	if got, want := h.Mean(), 22.0; got != want {
		t.Errorf("Mean = %g, want %g", got, want)
	}
}

// Quantile estimates are bounded by min/max and monotone in q.
func TestQuantileProperties(t *testing.T) {
	f := func(raw []uint16, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Record(int64(v))
		}
		q1 := float64(qa%101) / 100
		q2 := float64(qb%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := h.Quantile(q1), h.Quantile(q2)
		return v1 >= h.Min() && v2 <= h.Max() && v1 <= v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Power-of-two buckets bound quantile error by 2x.
func TestQuantileAccuracyWithinFactorTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	var all []int64
	for i := 0; i < 10000; i++ {
		v := int64(rng.ExpFloat64() * 1000)
		h.Record(v)
		all = append(all, v)
	}
	sortInt64s(all)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := all[int(q*float64(len(all)))]
		got := h.Quantile(q)
		if exact > 0 && (float64(got) > 2.1*float64(exact) || float64(got) < float64(exact)/2.1) {
			t.Errorf("q=%.2f: estimate %d vs exact %d exceeds 2x", q, got, exact)
		}
	}
}

func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

func TestQuantileExtremes(t *testing.T) {
	h := NewHistogram()
	h.Record(5)
	h.Record(10)
	if h.Quantile(0) != 5 {
		t.Errorf("q0 = %d, want min", h.Quantile(0))
	}
	if h.Quantile(1) != 10 {
		t.Errorf("q1 = %d, want max", h.Quantile(1))
	}
}

func TestHistogramNonPositiveSamples(t *testing.T) {
	h := NewHistogram()
	h.Record(0)
	h.Record(-5)
	if h.Count() != 2 {
		t.Error("non-positive samples dropped")
	}
	if h.Min() != -5 {
		t.Errorf("Min = %d", h.Min())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(1); i <= 100; i++ {
		if i%2 == 0 {
			a.Record(i)
		} else {
			b.Record(i)
		}
	}
	whole := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		whole.Record(i)
	}
	a.Merge(b)
	if a.Count() != whole.Count() || a.Mean() != whole.Mean() ||
		a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Error("merge differs from whole")
	}
	if a.Quantile(0.5) != whole.Quantile(0.5) {
		t.Error("merged median differs")
	}
	empty := NewHistogram()
	before := a.Count()
	a.Merge(empty)
	if a.Count() != before {
		t.Error("merging empty changed count")
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %g, want 5", w.Mean())
	}
	// Sample variance of the data is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %g, want %g", w.Variance(), 32.0/7.0)
	}
	if math.Abs(w.Stddev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("Stddev = %g", w.Stddev())
	}
}

func TestWelfordFewSamples(t *testing.T) {
	var w Welford
	if w.Variance() != 0 {
		t.Error("variance of empty not 0")
	}
	w.Add(3)
	if w.Variance() != 0 {
		t.Error("variance of single sample not 0")
	}
}

// Welford must match the naive two-pass computation.
func TestWelfordMatchesNaive(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, v := range raw {
			w.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		ss := 0.0
		for _, v := range raw {
			d := float64(v) - mean
			ss += d * d
		}
		naive := ss / float64(len(raw)-1)
		return math.Abs(w.Variance()-naive) < 1e-6*(1+naive)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRate(t *testing.T) {
	if got := Rate(1000, time.Second); got != 1000 {
		t.Errorf("Rate = %g", got)
	}
	if got := Rate(100, 0); got != 0 {
		t.Errorf("Rate with zero duration = %g", got)
	}
}

func TestFormatRate(t *testing.T) {
	cases := map[float64]string{
		5:      "5.0/s",
		1500:   "1.50k/s",
		2.5e6:  "2.50M/s",
		3.21e9: "3.21G/s",
	}
	for r, want := range cases {
		if got := FormatRate(r); got != want {
			t.Errorf("FormatRate(%g) = %q, want %q", r, got, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "algo", "ops/s")
	tb.AddRow("bakery", 123456.789)
	tb.AddRow("bakerypp", 98765.4)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "algo") || !strings.Contains(out, "bakerypp") {
		t.Error("missing header or row")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	// Columns align: header and first row start of col 2 must match.
	hIdx := strings.Index(lines[1], "ops/s")
	rIdx := strings.Index(lines[3], "1.23")
	if hIdx < 0 || rIdx < 0 || hIdx != rIdx {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(0.123456)
	if !strings.Contains(tb.String(), "0.123") {
		t.Errorf("float row rendering: %q", tb.String())
	}
}
