package stats

import "testing"

// Fuzz targets double as robustness tests: they run their seed corpus under
// plain `go test` and can be fuzzed with `go test -fuzz=Fuzz...`.

func FuzzSparkline(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 255}, 10)
	f.Add([]byte{}, 5)
	f.Add([]byte{7}, 1)
	f.Fuzz(func(t *testing.T, raw []byte, width int) {
		if width > 4096 {
			width = 4096
		}
		vals := make([]int32, len(raw))
		for i, b := range raw {
			vals[i] = int32(b)
		}
		out := []rune(Sparkline(vals, width))
		if len(vals) == 0 || width < 1 {
			if len(out) != 0 {
				t.Fatal("expected empty sparkline")
			}
			return
		}
		max := width
		if len(vals) < max {
			max = len(vals)
		}
		if len(out) != max {
			t.Fatalf("sparkline width %d, want %d", len(out), max)
		}
	})
}

func FuzzHistogramQuantile(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200}, uint8(50))
	f.Add([]byte{0}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, qRaw uint8) {
		if len(raw) == 0 {
			return
		}
		h := NewHistogram()
		for _, b := range raw {
			h.Record(int64(b))
		}
		q := float64(qRaw%101) / 100
		v := h.Quantile(q)
		if v < h.Min() || v > h.Max() {
			t.Fatalf("quantile %g = %d outside [%d, %d]", q, v, h.Min(), h.Max())
		}
	})
}
