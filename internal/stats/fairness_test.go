package stats

import (
	"math"
	"testing"
)

func TestJain(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0, 0}, 0},
		{[]float64{5}, 1},
		{[]float64{3, 3, 3, 3}, 1},
		{[]float64{1, 0, 0, 0}, 0.25}, // one class takes everything: 1/k
		{[]float64{4, 1}, (4.0 + 1) * (4 + 1) / (2 * (16 + 1))},
	}
	for _, c := range cases {
		if got := Jain(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jain(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
	// The index must be scale-invariant: fairness is about proportions.
	a := Jain([]float64{2, 5, 9})
	b := Jain([]float64{20, 50, 90})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("Jain not scale-invariant: %v vs %v", a, b)
	}
}

func TestSLOCounter(t *testing.T) {
	c := &SLOCounter{Target: 10}
	for _, v := range []int64{1, 10, 11, 100} {
		c.Record(v)
	}
	if c.Met != 2 || c.Total != 4 {
		t.Fatalf("met/total = %d/%d, want 2/4", c.Met, c.Total)
	}
	if got := c.Attainment(); got != 50 {
		t.Errorf("attainment = %v, want 50", got)
	}
	d := &SLOCounter{Target: 10}
	d.Record(3)
	d.Merge(c)
	if d.Met != 3 || d.Total != 5 {
		t.Errorf("after merge met/total = %d/%d, want 3/5", d.Met, d.Total)
	}
	e := &SLOCounter{}
	e.Merge(c) // empty counter adopts the target
	if e.Target != 10 || e.Total != 4 {
		t.Errorf("empty-merge got target %d total %d", e.Target, e.Total)
	}
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched targets did not panic")
		}
	}()
	f := &SLOCounter{Target: 99}
	f.Record(1)
	f.Merge(c)
}
