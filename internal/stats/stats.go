// Package stats provides the small statistical toolkit the benchmark
// harness uses: power-of-two latency histograms with quantile estimation,
// online mean/variance accumulation, and rate helpers. Everything is
// allocation-free on the hot path and safe for single-goroutine use; the
// harness merges per-goroutine instances after a run.
package stats

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
	"strings"
	"time"
)

// Histogram counts int64 samples (typically nanoseconds) in power-of-two
// buckets: bucket b holds samples v with 2^(b-1) <= v < 2^b (bucket 0 holds
// v <= 0 ... 1). Quantiles are estimated by linear interpolation within the
// winning bucket, which is accurate to a factor of 2 in the worst case and
// much better in practice — sufficient for the order-of-magnitude latency
// comparisons of E4/E8.
type Histogram struct {
	counts [65]uint64
	total  uint64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	h.counts[bucketOf(v)]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Min returns the smallest recorded sample, or 0 with no samples.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max }

// Quantile estimates the q-quantile (0 <= q <= 1).
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum uint64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		if rank < cum+c {
			lo := int64(0)
			if b > 0 {
				lo = int64(1) << uint(b-1)
			}
			hi := int64(1) << uint(b)
			if b == 0 {
				hi = 1
			}
			frac := float64(rank-cum) / float64(c)
			v := lo + int64(frac*float64(hi-lo))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += c
	}
	return h.max
}

// Clone returns an independent copy (Histogram is a fixed-size value;
// copying it is cheap and allocation counts stay predictable).
func (h *Histogram) Clone() *Histogram {
	c := *h
	return &c
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.total == 0 {
		return
	}
	for b, c := range other.counts {
		h.counts[b] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// String summarises the distribution.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "histogram(empty)"
	}
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p99=%d max=%d",
		h.total, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
}

// DurationSummary renders nanosecond-sample quantiles as durations.
func (h *Histogram) DurationSummary() string {
	if h.total == 0 {
		return "no samples"
	}
	return fmt.Sprintf("p50=%v p90=%v p99=%v max=%v",
		time.Duration(h.Quantile(0.5)).Round(time.Nanosecond),
		time.Duration(h.Quantile(0.9)).Round(time.Nanosecond),
		time.Duration(h.Quantile(0.99)).Round(time.Nanosecond),
		time.Duration(h.max).Round(time.Nanosecond))
}

// Welford accumulates mean and variance online (Welford's algorithm),
// numerically stable for long benchmark runs.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Rate converts an operation count over a wall-clock duration into ops/sec.
func Rate(ops int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds()
}

// FormatRate renders ops/sec with engineering suffixes (k, M, G).
func FormatRate(r float64) string {
	switch {
	case r >= 1e9:
		return fmt.Sprintf("%.2fG/s", r/1e9)
	case r >= 1e6:
		return fmt.Sprintf("%.2fM/s", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.2fk/s", r/1e3)
	default:
		return fmt.Sprintf("%.1f/s", r)
	}
}

// Sparkline renders a series as a fixed-width block-character strip, the
// text-mode equivalent of the ticket-growth figure: each output column is
// the mean of its bucket of samples, scaled to the series maximum.
func Sparkline(vals []int32, width int) string {
	if len(vals) == 0 || width < 1 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	if width > len(vals) {
		width = len(vals)
	}
	max := int32(1)
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	out := make([]rune, width)
	for c := 0; c < width; c++ {
		lo := c * len(vals) / width
		hi := (c + 1) * len(vals) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range vals[lo:hi] {
			sum += float64(v)
		}
		mean := sum / float64(hi-lo)
		idx := int(mean / float64(max) * float64(len(blocks)))
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		if idx < 0 {
			idx = 0
		}
		out[c] = blocks[idx]
	}
	return string(out)
}

// Table is a minimal aligned-column text table used by the experiment
// harness and cmd/bakerybench to print the rows recorded in EXPERIMENTS.md.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// CSV renders the table as comma-separated values (header first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.header)
	for _, row := range t.rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(cell, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
			b.WriteByte('"')
		} else {
			b.WriteString(cell)
		}
	}
	b.WriteByte('\n')
}

// Fingerprint returns a short stable hash of the table's full content
// (title, header and rows). Two tables fingerprint equal iff they render
// identically, which is how the sweep harness asserts — and lets users
// verify across machines — that an aggregated result is deterministic.
func (t *Table) Fingerprint() string {
	h := fnv.New64a()
	h.Write([]byte(t.Title))
	h.Write([]byte{0})
	h.Write([]byte(t.CSV()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, hd := range t.header {
		widths[i] = len(hd)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
