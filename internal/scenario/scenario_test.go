package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// testSpec is a small but non-trivial scenario: three client classes
// (Poisson, Gamma-burst, bimodal hold) over four shards with admission
// control — every feature of the layer exercised at test-suite scale.
const testSpec = "name=mix;algo=bakerypp;shards=4;n=4;m=64;clients=6000;admit=token:900,32;" +
	"class=gold/1/poisson:40/fixed:4/60;" +
	"class=bulk/2/burst:60,4/poisson:9/300;" +
	"class=batch/1/poisson:90/bimodal:4,60,10/1200"

func mustParse(t testing.TB, text string) *Spec {
	t.Helper()
	s, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpecRoundTrip(t *testing.T) {
	s := mustParse(t, testSpec)
	if got := s.String(); got != testSpec {
		t.Errorf("String() = %q, want the canonical input back:\n%q", got, testSpec)
	}
	s2 := mustParse(t, s.String())
	if s2.String() != s.String() {
		t.Errorf("Parse(String()) not a fixed point")
	}
}

func TestSpecParseErrors(t *testing.T) {
	for _, text := range []string{
		"",
		"name=x",
		"name=x;algo=nope;shards=1;n=4;m=8;clients=10;class=a/1/poisson:9/fixed:2/50",
		"name=x;algo=bakerypp;shards=0;n=4;m=8;clients=10;class=a/1/poisson:9/fixed:2/50",
		"name=x;algo=bakerypp;shards=1;n=1;m=8;clients=10;class=a/1/poisson:9/fixed:2/50",
		"name=x;algo=bakerypp;shards=1;n=4;m=8;clients=0;class=a/1/poisson:9/fixed:2/50",
		"name=x;algo=bakerypp;shards=1;n=4;m=8;clients=10",
		"name=x;algo=bakerypp;shards=1;n=4;m=8;clients=10;class=a/0/poisson:9/fixed:2/50",
		"name=x;algo=bakerypp;shards=1;n=4;m=8;clients=10;class=a/1/warp:9/fixed:2/50",
		"name=x;algo=bakerypp;shards=1;n=4;m=8;clients=10;class=a/1/poisson:9/fixed:2/0",
		"name=x;algo=bakerypp;shards=1;n=4;m=8;clients=10;class=a/1/poisson:9/fixed:2/50;class=a/1/poisson:9/fixed:2/50",
		"name=x;algo=bakerypp;shards=1;n=4;m=8;clients=10;admit=leaky:3,4;class=a/1/poisson:9/fixed:2/50",
		"name=x;name=y;algo=bakerypp;shards=1;n=4;m=8;clients=10;class=a/1/poisson:9/fixed:2/50",
		"name=x;algo=bakerypp;shards=1;n=4;m=8;clients=10;bogus=1;class=a/1/poisson:9/fixed:2/50",
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) did not error", text)
		}
	}
}

func TestQuotasConserveClients(t *testing.T) {
	s := mustParse(t, testSpec)
	q := s.quotas()
	var total int64
	for _, perShard := range q {
		for _, v := range perShard {
			total += v
		}
	}
	if total != s.Clients {
		t.Errorf("quotas assign %d clients, spec says %d", total, s.Clients)
	}
}

// TestRunSmoke checks the basic accounting identities of a run: every
// arrival is rejected, granted, or stranded; nothing is stranded for a
// correct algorithm; mutual exclusion holds; the FCFS monitor is silent
// for Bakery++.
func TestRunSmoke(t *testing.T) {
	s := mustParse(t, testSpec)
	res, err := Run(s, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var arrivals int64
	for i := range res.Classes {
		c := &res.Classes[i]
		arrivals += c.Arrivals
		if c.Stranded() != 0 {
			t.Errorf("class %s stranded %d requests", c.Name, c.Stranded())
		}
		if c.Grants > 0 && c.Latency.Count() != uint64(c.Grants) {
			t.Errorf("class %s: %d grants but %d latency samples", c.Name, c.Grants, c.Latency.Count())
		}
	}
	if arrivals != s.Clients {
		t.Errorf("saw %d arrivals, spec says %d clients", arrivals, s.Clients)
	}
	if res.Grants() == 0 {
		t.Fatal("run granted nothing")
	}
	if res.MaxConcurrency > 1 {
		t.Errorf("mutual exclusion violated: max cs occupancy %d", res.MaxConcurrency)
	}
	if res.FCFSViolations != 0 {
		t.Errorf("bakery++ showed %d FCFS inversions; its doorway order forbids any", res.FCFSViolations)
	}
	if j := res.Jain(); j <= 0 || j > 1 {
		t.Errorf("Jain index %v outside (0, 1]", j)
	}
}

// TestAdmissionRejects: with a tight token bucket the run must turn
// requests away, and loosening only the bucket must strictly reduce
// rejections.
func TestAdmissionRejects(t *testing.T) {
	tight := mustParse(t, "name=adm;algo=bakerypp;shards=1;n=4;m=64;clients=4000;admit=token:200,8;class=a/1/poisson:10/fixed:3/200")
	loose := mustParse(t, "name=adm;algo=bakerypp;shards=1;n=4;m=64;clients=4000;admit=token:100000,64;class=a/1/poisson:10/fixed:3/200")
	rt, err := Run(tight, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(loose, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Classes[0].Rejected == 0 {
		t.Error("tight bucket rejected nothing at 5x its sustained rate")
	}
	if rl.Classes[0].Rejected >= rt.Classes[0].Rejected {
		t.Errorf("loose bucket rejected %d >= tight %d", rl.Classes[0].Rejected, rt.Classes[0].Rejected)
	}
}

// TestWorkerCountIrrelevant is the determinism contract: the rendered
// tables and fingerprint are byte-identical whether shards run
// sequentially or on every core.
func TestWorkerCountIrrelevant(t *testing.T) {
	s := mustParse(t, testSpec)
	var reports []string
	for _, workers := range []int{0, 1, 3, -1} {
		res, err := Run(s, Options{Seed: 11, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, res.String())
	}
	for i, rep := range reports[1:] {
		if rep != reports[0] {
			t.Fatalf("workers=%d report differs from sequential:\n%s\nvs\n%s", []int{1, 3, -1}[i], rep, reports[0])
		}
	}
}

// TestSeedMatters: different seeds must not produce the same tables (or
// the streams are not actually consumed).
func TestSeedMatters(t *testing.T) {
	s := mustParse(t, testSpec)
	a, err := Run(s, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("seeds 1 and 2 produced identical fingerprints")
	}
}

// TestRecordReplayRoundTrip: a recorded run must replay bit-identically
// — same tables, same fingerprint — from the log alone, and the
// recorded bytes themselves must not depend on the worker count.
func TestRecordReplayRoundTrip(t *testing.T) {
	s := mustParse(t, testSpec)
	var seq, par bytes.Buffer
	res, err := Run(s, Options{Seed: 5, Record: &seq})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s, Options{Seed: 5, Workers: -1, Record: &par}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatal("recorded log bytes differ between sequential and parallel runs")
	}
	rep, err := ReplayLog(bytes.NewReader(seq.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("replay fingerprint %s != recorded %s", rep.Fingerprint, rep.Recorded)
	}
	if rep.Result.String() != res.String() {
		t.Error("replayed report differs from the live run's")
	}
}

// TestReplayRejectsGarbage: truncated or foreign logs fail loudly.
func TestReplayRejectsGarbage(t *testing.T) {
	s := mustParse(t, testSpec)
	var buf bytes.Buffer
	if _, err := Run(s, Options{Seed: 5, Record: &buf}); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	lines := strings.Split(strings.TrimSuffix(full, "\n"), "\n")
	truncated := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	if _, err := ReplayLog(strings.NewReader(truncated)); err == nil {
		t.Error("replay accepted a log with no trailer")
	}
	if _, err := ReplayLog(strings.NewReader(`{"v":1,"kind":"des-sweep"}` + "\n")); err == nil {
		t.Error("replay accepted a des-sweep log")
	}
	if _, err := ReplayLog(strings.NewReader("")); err == nil {
		t.Error("replay accepted an empty log")
	}
}

// FuzzScenarioSpec is the issue's fuzz target for the spec grammar: an
// accepted input must render canonically, re-parse to the same spec,
// and never panic.
func FuzzScenarioSpec(f *testing.F) {
	f.Add(testSpec)
	f.Add("name=x;algo=bakery;shards=1;n=2;m=8;clients=10;class=a/1/poisson:9/fixed:2/50")
	f.Add("name=x;algo=modbakery;shards=2;n=3;m=12;clients=99;admit=token:5,5;class=a/3/uniform:2,9/fixed:1/9;class=b/1/burst:50,3/poisson:4/70")
	f.Add("name=;algo=;shards=;class=")
	f.Add("n=2;m=3")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return
		}
		canon := s.String()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not re-parse: %v", canon, text, err)
		}
		if s2.String() != canon {
			t.Fatalf("String() not a fixed point: %q -> %q", canon, s2.String())
		}
		if err := s2.Validate(); err != nil {
			t.Fatalf("re-parsed spec fails validation: %v", err)
		}
	})
}

// TestScenarioHotPathAllocs is the perf contract on the per-event path:
// once the kernel heap and request ring reach steady size, executing
// events allocates nothing (pre-created closures, arena-backed
// successor generation, fixed-size histograms).
func TestScenarioHotPathAllocs(t *testing.T) {
	s := mustParse(t, "name=allocs;algo=bakerypp;shards=1;n=4;m=64;clients=2000000;class=a/1/poisson:30/fixed:4/100;class=b/1/poisson:50/poisson:6/200")
	quotas := s.quotas()
	sim, err := newShardSim(s, 0, quotas, "unit", Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for ci := range sim.quota {
		sim.k.At(s.N+ci, sim.arrivalD[ci].Draw(), sim.arriveFns[ci])
	}
	// Warm up: let the queue ring, kernel heap and succ arena reach
	// steady state.
	for i := 0; i < 50_000 && sim.k.Step(); i++ {
	}
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < 2000; i++ {
			if !sim.k.Step() {
				t.Fatal("shard drained mid-measurement; enlarge the client quota")
			}
		}
	})
	if avg != 0 {
		t.Errorf("per-event hot path allocates: %.2f allocs per 2000-event chunk, want 0", avg)
	}
}
