package scenario

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"

	"bakerypp/internal/des"
	"bakerypp/internal/gcl"
	"bakerypp/internal/preempt"
	"bakerypp/internal/specs"
)

// Options controls how a scenario executes. The zero value is usable:
// seed 0, unit latency, sequential shards, default event bound, no
// recording. Every field except Record and Workers feeds the result;
// Workers never does — the determinism contract.
type Options struct {
	// Seed feeds every random stream of the run (arrival gaps, hold
	// draws, scheduler choice, latency jitter). Same (spec, seed) ⇒
	// byte-identical tables.
	Seed int64
	// Latency is the des.ParseModel spec pricing worker protocol
	// actions; "" means unit.
	Latency string
	// Workers sizes the shard worker pool: 0 runs sequentially,
	// negative uses GOMAXPROCS. The result is identical for any value.
	Workers int
	// MaxEvents bounds one shard's event count (0 = a generous default
	// scaled to the shard's client quota); hitting it truncates the
	// shard deterministically, stranding unserved requests.
	MaxEvents int64
	// Record, when non-nil, receives the full event log of the run
	// (des log grammar, kind "scenario") after all shards complete, in
	// canonical shard order.
	Record io.Writer
}

// request is one in-flight client: its class, arrival instant, and the
// critical-section hold time drawn at arrival.
type request struct {
	class  int32
	arrive int64
	hold   int64
}

// Run executes the scenario and returns the merged result. Shards are
// independent simulations seeded from (Seed, shard), so they run on a
// worker pool and merge in canonical shard order — the tables are
// byte-identical for any Options.Workers and GOMAXPROCS.
func Run(spec *Spec, opts Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	latency := opts.Latency
	if latency == "" {
		latency = "unit"
	}
	if _, err := des.ParseModel(latency, 0); err != nil {
		return nil, err
	}
	quotas := spec.quotas()

	accs := make([]*accum, spec.Shards)
	errs := make([]error, spec.Shards)
	var recorded [][]des.Rec
	if opts.Record != nil {
		recorded = make([][]des.Rec, spec.Shards)
	}
	workers := opts.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > spec.Shards {
		workers = spec.Shards
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for shard := range jobs {
				sim, err := newShardSim(spec, shard, quotas, latency, opts)
				if err == nil {
					sim.run()
					accs[shard] = sim.acc
					if recorded != nil {
						recorded[shard] = sim.rec
					}
				}
				errs[shard] = err
			}
		}()
	}
	for shard := 0; shard < spec.Shards; shard++ {
		jobs <- shard
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := newResult(spec, opts.Seed, latency)
	for _, acc := range accs {
		acc.mergeInto(res)
	}
	if opts.Record != nil {
		if err := writeLog(opts.Record, spec, opts.Seed, latency, recorded, res.Fingerprint()); err != nil {
			return nil, fmt.Errorf("scenario: writing event log: %w", err)
		}
	}
	return res, nil
}

// shardSim is one shard's event loop: N worker processes running the
// arbitration protocol on a des.Kernel, fed by per-class open-loop
// arrival streams through an optional admission gate and a FIFO request
// queue. The whole struct is allocated up front — including one
// scheduling closure per worker and per class — so the per-event path
// allocates nothing once the kernel heap and request ring reach steady
// size (pinned by TestScenarioHotPathAllocs).
type shardSim struct {
	spec  *Spec
	prog  *gcl.Prog
	k     *des.Kernel
	model des.Model
	admit *des.TokenBucket
	buf   gcl.SuccBuf
	state gcl.State
	rng   uint64

	// Worker processes (pids 0..N-1).
	idle         []bool
	blocked      []bool
	cur          []request
	pendingClass []des.Class
	execFns      []func()

	// Per-class arrival machinery (kernel pids N..N+classes-1).
	arrivalD  []des.Dist
	holdD     []des.Dist
	quota     []int64
	arriveFns []func()

	// FIFO request queue (a growable ring).
	queue []request
	qhead int
	qlen  int

	acc       *accum
	rec       []des.Rec // recording buffer; nil when not recording
	recording bool
	maxEvents int64
}

// streamFor gives every (shard, class, role) triple its own des RNG
// stream id; role 0 is the arrival process, role 1 the hold times.
// Validate bounds classes (< 2^21) and shards (<= 2^20) below the shift.
func streamFor(shard, ci, role int) uint64 {
	return uint64(shard)<<24 | uint64(ci)<<1 | uint64(role)
}

func newShardSim(spec *Spec, shard int, quotas [][]int64, latency string, opts Options) (*shardSim, error) {
	prog, err := specs.Get(spec.Algo, specs.Config{N: spec.N, M: spec.M})
	if err != nil {
		return nil, err
	}
	model, err := des.ParseModel(latency, opts.Seed*1000003+int64(shard))
	if err != nil {
		return nil, err
	}
	admit, err := des.ParseAdmission(spec.Admit)
	if err != nil {
		return nil, err
	}
	s := &shardSim{
		spec:  spec,
		prog:  prog,
		k:     des.NewKernel(),
		model: model,
		admit: admit,
		state: prog.InitState(),
		rng:   preempt.Seed64(opts.Seed, 0xA11CE+shard),

		idle:         make([]bool, spec.N),
		blocked:      make([]bool, spec.N),
		cur:          make([]request, spec.N),
		pendingClass: make([]des.Class, spec.N),
		execFns:      make([]func(), spec.N),

		arrivalD:  make([]des.Dist, len(spec.Classes)),
		holdD:     make([]des.Dist, len(spec.Classes)),
		quota:     make([]int64, len(spec.Classes)),
		arriveFns: make([]func(), len(spec.Classes)),

		queue:     make([]request, 64),
		acc:       newAccum(spec),
		recording: opts.Record != nil,
	}
	var clients int64
	for ci, c := range spec.Classes {
		s.arrivalD[ci], err = des.ParseDist(c.Arrival, opts.Seed, streamFor(shard, ci, 0))
		if err != nil {
			return nil, err
		}
		s.holdD[ci], err = des.ParseDist(c.Hold, opts.Seed, streamFor(shard, ci, 1))
		if err != nil {
			return nil, err
		}
		s.quota[ci] = quotas[ci][shard]
		clients += s.quota[ci]
		ci := ci
		s.arriveFns[ci] = func() { s.arrival(ci) }
	}
	for pid := 0; pid < spec.N; pid++ {
		s.idle[pid] = true
		pid := pid
		s.execFns[pid] = func() { s.exec(pid) }
	}
	s.maxEvents = opts.MaxEvents
	if s.maxEvents <= 0 {
		// A runaway bound, not a budget: far above what any correct
		// protocol spends per client even at N=64 with wake cascades.
		s.maxEvents = 2000*clients + 100_000
	}
	return s, nil
}

// run drains the shard: the arrival streams self-perpetuate until their
// quotas run out, and the kernel stops when no work remains (or the
// event bound trips, stranding whatever is still queued).
func (s *shardSim) run() {
	for ci := range s.quota {
		if s.quota[ci] > 0 {
			s.k.At(s.spec.N+ci, s.arrivalD[ci].Draw(), s.arriveFns[ci])
		}
	}
	for s.k.Executed() < s.maxEvents && s.k.Step() {
	}
}

// arrival fires one client arrival of class ci: count it, pass it
// through admission, and either enqueue it or turn it away; then
// schedule the class's next arrival if quota remains.
func (s *shardSim) arrival(ci int) {
	now := s.k.Now()
	s.acc.arrive(ci)
	if s.recording {
		s.rec = append(s.rec, fleetRec(now, s.spec.N, ci, "arrive:"+s.spec.Classes[ci].Name))
	}
	if s.admit != nil && !s.admit.Admit(now) {
		s.acc.reject(ci)
		if s.recording {
			s.rec = append(s.rec, fleetRec(now, s.spec.N, ci, "reject:"+s.spec.Classes[ci].Name))
		}
	} else {
		s.enqueue(request{class: int32(ci), arrive: now, hold: s.holdD[ci].Draw()})
	}
	s.quota[ci]--
	if s.quota[ci] > 0 {
		s.k.At(s.spec.N+ci, s.arrivalD[ci].Draw(), s.arriveFns[ci])
	}
}

// enqueue hands the request to the lowest idle worker, or queues it.
// Idle workers sit at ncs, where the try branch is unguarded, so an
// idle worker is never blocked.
func (s *shardSim) enqueue(req request) {
	for w := 0; w < s.spec.N; w++ {
		if s.idle[w] {
			s.idle[w] = false
			s.cur[w] = req
			s.schedule(w, des.Step, 0)
			return
		}
	}
	if s.qlen == len(s.queue) {
		grown := make([]request, 2*len(s.queue))
		for i := 0; i < s.qlen; i++ {
			grown[i] = s.queue[(s.qhead+i)%len(s.queue)]
		}
		s.queue = grown
		s.qhead = 0
	}
	s.queue[(s.qhead+s.qlen)%len(s.queue)] = req
	s.qlen++
}

func (s *shardSim) schedule(w int, class des.Class, units int64) {
	s.pendingClass[w] = class
	s.k.At(w, s.model.Cost(class, w, units), s.execFns[w])
}

// enabled is the allocation-free guard check (plain Prog.Enabled builds
// an escaping evaluation context per call; EnabledMask reuses buf's).
func (s *shardSim) enabled(pid int) bool {
	return s.prog.EnabledMask(s.state, pid, &s.buf) != 0
}

// wake re-schedules, in pid order, every parked worker whose guard
// became true; called after every state change so blocked spans end at
// the earliest enabling action, deterministically.
func (s *shardSim) wake() {
	for pid := 0; pid < s.spec.N; pid++ {
		if s.blocked[pid] && s.enabled(pid) {
			s.blocked[pid] = false
			s.schedule(pid, des.Wait, 0)
		}
	}
}

// exec runs one protocol action of worker w: pick a successor (seeded
// choice under nondeterminism), commit it, emit the record, attribute a
// grant on cs-enter, and schedule what the new label calls for.
func (s *shardSim) exec(w int) {
	s.buf.Reset()
	s.prog.SuccsInto(s.state, w, gcl.ModeUnbounded, &s.buf)
	succs := s.buf.Succs()
	if len(succs) == 0 {
		// Disabled between scheduling and execution (an earlier event
		// at this instant flipped the guard): park until a wake.
		s.blocked[w] = true
		return
	}
	sc := succs[0]
	if len(succs) > 1 {
		s.rng = preempt.Xorshift64(s.rng)
		sc = succs[int(s.rng%uint64(len(succs)))]
	}
	copy(s.state, sc.State)
	now := s.k.Now()
	r := des.Rec{T: now, Pid: w, Class: s.pendingClass[w], Tag: sc.Tag, Overflow: sc.Overflow}
	s.acc.Add(r)
	if s.recording {
		s.rec = append(s.rec, r)
	}
	if sc.Tag == "cs-enter" {
		req := s.cur[w]
		lat := now - req.arrive
		s.acc.grant(int(req.class), lat)
		if s.recording {
			s.rec = append(s.rec, fleetRec(now, s.spec.N, int(req.class),
				"grant:"+s.spec.Classes[req.class].Name+":"+strconv.FormatInt(lat, 10)))
		}
	}
	label := s.prog.PCLabel(s.state, w)
	switch {
	case label == "ncs":
		// Back from the exit protocol: the request is served. Take the
		// next one or go idle.
		if s.qlen > 0 {
			s.cur[w] = s.queue[s.qhead]
			s.qhead = (s.qhead + 1) % len(s.queue)
			s.qlen--
			s.schedule(w, des.Step, 0)
		} else {
			s.idle[w] = true
		}
	case !s.enabled(w):
		s.blocked[w] = true
	case label == "cs":
		s.schedule(w, des.Hold, s.cur[w].hold)
	default:
		s.schedule(w, des.Step, 0)
	}
	s.wake()
}
