package scenario

import (
	"strconv"
	"strings"

	"bakerypp/internal/des"
	"bakerypp/internal/stats"
)

// accum folds one shard's event stream into per-class and protocol
// statistics. It is the single aggregation path for live runs and
// replayed recordings — live runs call the structured methods (arrive,
// reject, grant) directly plus Add for every protocol record, while a
// replay feeds the whole recorded stream through Add, which routes the
// synthetic fleet records (Pid >= N, tag-encoded) back to the same
// structured methods. Replays are byte-identical by construction.
type accum struct {
	n        int
	classIdx map[string]int

	// Per-class fleet statistics, indexed like Spec.Classes.
	arrivals []int64
	rejected []int64
	grants   []int64
	sumLat   []int64
	lat      []*stats.Histogram
	slo      []*stats.SLOCounter

	// Protocol statistics from the worker event stream.
	events    int64
	endTime   int64
	resets    int64
	overflows int64
	fcfs      int64
	inCS      int
	maxConc   int
	tryAt     []int64
	doorwayAt []int64
}

func newAccum(spec *Spec) *accum {
	k := len(spec.Classes)
	a := &accum{
		n:        spec.N,
		classIdx: make(map[string]int, k),
		arrivals: make([]int64, k),
		rejected: make([]int64, k),
		grants:   make([]int64, k),
		sumLat:   make([]int64, k),
		lat:      make([]*stats.Histogram, k),
		slo:      make([]*stats.SLOCounter, k),
	}
	for ci, c := range spec.Classes {
		a.classIdx[c.Name] = ci
		a.lat[ci] = stats.NewHistogram()
		a.slo[ci] = &stats.SLOCounter{Target: c.SLO}
	}
	a.tryAt = make([]int64, spec.N)
	a.doorwayAt = make([]int64, spec.N)
	for pid := 0; pid < spec.N; pid++ {
		a.tryAt[pid] = -1
		a.doorwayAt[pid] = -1
	}
	return a
}

func (a *accum) arrive(ci int) { a.arrivals[ci]++ }
func (a *accum) reject(ci int) { a.rejected[ci]++ }

func (a *accum) grant(ci int, lat int64) {
	a.grants[ci]++
	a.sumLat[ci] += lat
	a.lat[ci].Record(lat)
	a.slo[ci].Record(lat)
}

// Add consumes one event record. Worker records (Pid < N) drive the
// protocol statistics, including the FCFS monitor: a process that
// completed its doorway earlier than another process even began trying
// must enter the critical section first, so at every cs-enter each
// still-waiting earlier-doorway process counts as one inversion.
func (a *accum) Add(r des.Rec) {
	if r.T > a.endTime {
		a.endTime = r.T
	}
	if r.Pid < 0 || r.Pid >= a.n {
		a.addFleet(r)
		return
	}
	a.events++
	if r.Overflow {
		a.overflows++
	}
	switch r.Tag {
	case "try":
		a.tryAt[r.Pid] = r.T
	case "doorway-done":
		a.doorwayAt[r.Pid] = r.T
	case "cs-enter":
		w := r.Pid
		if t := a.tryAt[w]; t >= 0 {
			for v := 0; v < a.n; v++ {
				if v != w && a.doorwayAt[v] >= 0 && a.doorwayAt[v] < t {
					a.fcfs++
				}
			}
		}
		a.tryAt[w] = -1
		a.doorwayAt[w] = -1
		a.inCS++
		if a.inCS > a.maxConc {
			a.maxConc = a.inCS
		}
	case "cs-exit":
		if a.inCS > 0 {
			a.inCS--
		}
	case "reset":
		a.resets++
	}
}

// Fleet-record tags, recorded with Pid = N + class index so readers can
// tell them from worker records without a grammar change:
//
//	arrive:<class>          one request of <class> arrived
//	reject:<class>          the arrival was turned away by admission
//	grant:<class>:<lat>     the request entered its critical section
//	                        <lat> ticks after arriving
func (a *accum) addFleet(r des.Rec) {
	kind, rest, ok := strings.Cut(r.Tag, ":")
	if !ok {
		return
	}
	switch kind {
	case "arrive":
		if ci, ok := a.classIdx[rest]; ok {
			a.arrive(ci)
		}
	case "reject":
		if ci, ok := a.classIdx[rest]; ok {
			a.reject(ci)
		}
	case "grant":
		name, latStr, ok := strings.Cut(rest, ":")
		if !ok {
			return
		}
		ci, okC := a.classIdx[name]
		lat, err := strconv.ParseInt(latStr, 10, 64)
		if okC && err == nil && lat >= 0 {
			a.grant(ci, lat)
		}
	}
}

// fleetRec encodes a structured fleet call as a synthetic record for the
// event log (recording paths only; the live path never builds these).
func fleetRec(t int64, n, ci int, tag string) des.Rec {
	return des.Rec{T: t, Pid: n + ci, Class: des.Think, Tag: tag}
}

// mergeInto folds this shard's totals into the run result. Histogram and
// SLO merges are commutative, but callers still merge in canonical shard
// order so recorded logs and counters line up everywhere.
func (a *accum) mergeInto(r *Result) {
	r.Events += a.events
	r.Time += a.endTime
	r.Resets += a.resets
	r.Overflows += a.overflows
	r.FCFSViolations += a.fcfs
	if a.maxConc > r.MaxConcurrency {
		r.MaxConcurrency = a.maxConc
	}
	for ci := range r.Classes {
		c := &r.Classes[ci]
		c.Arrivals += a.arrivals[ci]
		c.Rejected += a.rejected[ci]
		c.Grants += a.grants[ci]
		c.SumLatency += a.sumLat[ci]
		c.Latency.Merge(a.lat[ci])
		c.SLO.Merge(a.slo[ci])
	}
}
