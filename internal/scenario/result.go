package scenario

import (
	"fmt"
	"hash/fnv"
	"io"
	"strings"

	"bakerypp/internal/stats"
)

// ClassResult is the aggregated outcome for one client class across all
// shards.
type ClassResult struct {
	Name      string
	SLOTarget int64
	// Arrivals counts requests that arrived; Rejected those turned away
	// by admission; Grants those that entered their critical section.
	Arrivals int64
	Rejected int64
	Grants   int64
	// SumLatency is the exact sum of granted acquire latencies (the
	// mean that feeds Jain fairness; the histogram alone would round).
	SumLatency int64
	// Latency is the acquire-latency distribution (arrival → cs-enter).
	Latency *stats.Histogram
	// SLO counts grants at or under SLOTarget, exactly.
	SLO *stats.SLOCounter
}

// Stranded counts admitted requests the run never served (a truncated
// shard or a stuck protocol; zero for every correct algorithm).
func (c *ClassResult) Stranded() int64 { return c.Arrivals - c.Rejected - c.Grants }

// MeanLatency is the exact mean acquire latency of granted requests.
func (c *ClassResult) MeanLatency() float64 {
	if c.Grants == 0 {
		return 0
	}
	return float64(c.SumLatency) / float64(c.Grants)
}

// Result is the merged outcome of one scenario run.
type Result struct {
	Spec         *Spec
	Seed         int64
	LatencyModel string
	Classes      []ClassResult
	// Events counts executed worker protocol actions across shards;
	// Time sums the shards' final virtual clocks.
	Events int64
	Time   int64
	// Resets counts "reset"-tagged actions (Bakery++'s overflow
	// recovery); Overflows counts stores above M.
	Resets    int64
	Overflows int64
	// FCFSViolations counts first-come-first-served inversions observed
	// by the doorway monitor (zero for the bakery family; ModBakery's
	// grow with contention).
	FCFSViolations int64
	// MaxConcurrency is the peak critical-section occupancy observed on
	// any shard (above 1 = a mutual-exclusion violation).
	MaxConcurrency int
}

func newResult(spec *Spec, seed int64, latency string) *Result {
	r := &Result{Spec: spec, Seed: seed, LatencyModel: latency}
	r.Classes = make([]ClassResult, len(spec.Classes))
	for ci, c := range spec.Classes {
		r.Classes[ci] = ClassResult{
			Name:      c.Name,
			SLOTarget: c.SLO,
			Latency:   stats.NewHistogram(),
			SLO:       &stats.SLOCounter{Target: c.SLO},
		}
	}
	return r
}

// Grants sums grants across classes.
func (r *Result) Grants() int64 {
	var total int64
	for i := range r.Classes {
		total += r.Classes[i].Grants
	}
	return total
}

// Stranded sums stranded requests across classes.
func (r *Result) Stranded() int64 {
	var total int64
	for i := range r.Classes {
		total += r.Classes[i].Stranded()
	}
	return total
}

// Jain is Jain's fairness index over the classes' mean acquire
// latencies (classes with no grants are excluded): 1.0 means every
// class waits the same on average, 1/k means one class absorbs all the
// waiting.
func (r *Result) Jain() float64 {
	means := make([]float64, 0, len(r.Classes))
	for i := range r.Classes {
		if r.Classes[i].Grants > 0 {
			means = append(means, r.Classes[i].MeanLatency())
		}
	}
	return stats.Jain(means)
}

// ClassTable renders the per-class results: arrival accounting, the
// acquire-latency percentiles, and exact SLO attainment.
func (r *Result) ClassTable() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Scenario %q: per-class acquire latency (algo=%s seed=%d)", r.Spec.Name, r.Spec.Algo, r.Seed),
		"class", "arrivals", "rejected", "grants", "stranded", "mean",
		"p50", "p95", "p99", "p99.9", "slo", "slo-met%")
	for i := range r.Classes {
		c := &r.Classes[i]
		tb.AddRow(c.Name, c.Arrivals, c.Rejected, c.Grants, c.Stranded(),
			c.MeanLatency(),
			c.Latency.Quantile(0.5), c.Latency.Quantile(0.95),
			c.Latency.Quantile(0.99), c.Latency.Quantile(0.999),
			c.SLOTarget, c.SLO.Attainment())
	}
	return tb
}

// SummaryTable renders the run-wide outcome: throughput in the virtual
// clock, overflow/reset accounting, the FCFS monitor, and fairness.
func (r *Result) SummaryTable() *stats.Table {
	admit := r.Spec.Admit
	if admit == "" {
		admit = "-"
	}
	var grantsPerKTime, resetsPerMGrant float64
	if r.Time > 0 {
		grantsPerKTime = 1000 * float64(r.Grants()) / float64(r.Time)
	}
	if g := r.Grants(); g > 0 {
		resetsPerMGrant = 1e6 * float64(r.Resets) / float64(g)
	}
	tb := stats.NewTable(
		fmt.Sprintf("Scenario %q: summary (latency=%s)", r.Spec.Name, r.LatencyModel),
		"algo", "shards", "n", "m", "clients", "admit", "events", "time",
		"grants", "grants/ktime", "resets", "resets/Mgrant", "overflows",
		"fcfs-viol", "maxconc", "jain")
	tb.AddRow(r.Spec.Algo, r.Spec.Shards, r.Spec.N, r.Spec.M, r.Spec.Clients,
		admit, r.Events, r.Time, r.Grants(), grantsPerKTime, r.Resets,
		resetsPerMGrant, r.Overflows, r.FCFSViolations, r.MaxConcurrency,
		r.Jain())
	return tb
}

// Tables returns the run's report tables in render order.
func (r *Result) Tables() []*stats.Table {
	return []*stats.Table{r.ClassTable(), r.SummaryTable()}
}

// Fingerprint hashes the rendered tables — the whole deliverable — into
// one token. Byte-identical tables ⇔ equal fingerprints, so this is
// what CI compares across worker counts and what recorded logs carry in
// their trailer.
func (r *Result) Fingerprint() string {
	h := fnv.New64a()
	for _, tb := range r.Tables() {
		io.WriteString(h, tb.Fingerprint())
		io.WriteString(h, "\n")
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// String renders the full report.
func (r *Result) String() string {
	var b strings.Builder
	for _, tb := range r.Tables() {
		b.WriteString(tb.String())
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "fingerprint: %s\n", r.Fingerprint())
	return b.String()
}
