package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"bakerypp/internal/des"
)

// Recorded scenario logs use the des log grammar (des.LogVersion) with
// kind "scenario": a header carrying the canonical spec string (enough
// to rebuild the tables from the event stream alone), one shard marker
// per shard in canonical order, the shard's records, and a fingerprint
// trailer. Field order in these structs is the byte-stability contract;
// reordering fields changes recorded bytes.

type logHeader struct {
	V       int    `json:"v"`
	Kind    string `json:"kind"`
	Spec    string `json:"spec"`
	Seed    int64  `json:"seed"`
	Latency string `json:"latency"`
}

type logShard struct {
	Shard int `json:"shard"`
}

type logTrailer struct {
	Fingerprint string `json:"fingerprint"`
}

// LogKind is the header kind value of a recorded scenario run, the
// token log readers dispatch on (cmd/bakeryreplay sniffs it to pick
// this package over the harness DES sweep replayer).
const LogKind = "scenario"

func writeLog(out io.Writer, spec *Spec, seed int64, latency string, shards [][]des.Rec, fingerprint string) error {
	w := des.NewLogWriter(out)
	w.Meta(logHeader{V: des.LogVersion, Kind: LogKind, Spec: spec.String(), Seed: seed, Latency: latency})
	for shard, recs := range shards {
		w.Meta(logShard{Shard: shard})
		for _, r := range recs {
			w.Event(r)
		}
	}
	w.Meta(logTrailer{Fingerprint: fingerprint})
	return w.Flush()
}

// Replay is the outcome of replaying a recorded scenario log.
type Replay struct {
	Result *Result
	// Fingerprint is the replayed result's fingerprint; Recorded is the
	// one in the log's trailer. They match iff the replay rebuilt the
	// original tables bit-identically.
	Fingerprint string
	Recorded    string
}

// OK reports whether the replay is bit-identical to the recorded run.
func (r *Replay) OK() bool { return r.Fingerprint == r.Recorded }

// ReplayLog rebuilds a recorded scenario's result from its event log
// alone — no simulation, just the shared accumulator over the recorded
// streams — and returns it with both fingerprints.
func ReplayLog(rd io.Reader) (*Replay, error) {
	r := des.NewLogReader(rd)

	line, err := r.Next()
	if err != nil {
		return nil, fmt.Errorf("scenario: log is empty: %w", err)
	}
	var hdr logHeader
	if line.IsEvent || json.Unmarshal(line.Raw, &hdr) != nil || hdr.Kind != LogKind {
		return nil, fmt.Errorf("scenario: not a scenario log (header %s)", line.Raw)
	}
	if hdr.V != des.LogVersion {
		return nil, fmt.Errorf("scenario: log version %d, this build reads %d", hdr.V, des.LogVersion)
	}
	spec, err := Parse(hdr.Spec)
	if err != nil {
		return nil, fmt.Errorf("scenario: log header spec: %w", err)
	}

	res := newResult(spec, hdr.Seed, hdr.Latency)
	var (
		acc      *accum
		shards   int
		trailer  logTrailer
		sawTrail bool
	)
	closeShard := func() {
		if acc != nil {
			acc.mergeInto(res)
			acc = nil
		}
	}
	for {
		line, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if line.IsEvent {
			if acc == nil {
				return nil, fmt.Errorf("scenario: log has an event before any shard marker")
			}
			acc.Add(line.Event)
			continue
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line.Raw, &probe); err != nil {
			return nil, err
		}
		switch {
		case probe["shard"] != nil:
			closeShard()
			var sh logShard
			if err := json.Unmarshal(line.Raw, &sh); err != nil {
				return nil, err
			}
			if sh.Shard != shards {
				return nil, fmt.Errorf("scenario: log shard %d out of order (want %d)", sh.Shard, shards)
			}
			shards++
			acc = newAccum(spec)
		case probe["fingerprint"] != nil:
			closeShard()
			if err := json.Unmarshal(line.Raw, &trailer); err != nil {
				return nil, err
			}
			sawTrail = true
		default:
			return nil, fmt.Errorf("scenario: unrecognised log metadata %s", line.Raw)
		}
	}
	closeShard()
	if !sawTrail {
		return nil, fmt.Errorf("scenario: log has no fingerprint trailer (truncated recording?)")
	}
	if shards != spec.Shards {
		return nil, fmt.Errorf("scenario: log has %d shard markers, spec declares %d", shards, spec.Shards)
	}
	return &Replay{Result: res, Fingerprint: res.Fingerprint(), Recorded: trailer.Fingerprint}, nil
}
