// Package scenario is the lock-service scenario layer: an open-loop
// simulation of a client fleet contending for sharded critical sections
// arbitrated by a bakery-family algorithm, executed as discrete events
// on the internal/des kernel — no goroutine per client, so fleets of
// millions of simulated clients are routine.
//
// A scenario is described by a Spec (a canonical, round-trippable string
// grammar), executed by Run, and reported as per-class acquire-latency
// percentiles, SLO attainment, Jain fairness across classes, and
// overflow/reset accounting. Runs are deterministic: the result tables
// are byte-identical for any Options.Workers and GOMAXPROCS, and a
// recorded event log replays bit-identically (cmd/bakeryreplay).
package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"bakerypp/internal/des"
	"bakerypp/internal/specs"
)

// Class is one client class of the fleet: a share of the arrival stream
// with its own arrival process, hold-time distribution and acquire-
// latency objective.
type Class struct {
	// Name labels the class in tables and recorded logs. It may not
	// contain the grammar separators ';', '=', '/' or ':'.
	Name string
	// Weight is the class's share of Spec.Clients (integer weights,
	// normalised over the sum).
	Weight int
	// Arrival is the des.ParseDist spec of the inter-arrival gaps of
	// this class's request stream, per shard (each shard draws an
	// independent stream, so total class load scales with Shards).
	Arrival string
	// Hold is the des.ParseDist spec of critical-section hold times.
	Hold string
	// SLO is the class's acquire-latency objective in virtual-time
	// ticks: a grant within SLO ticks of arrival attains it.
	SLO int64
}

// Spec is a complete scenario description. The zero value is not valid;
// build one by hand and Validate it, or Parse the string grammar.
type Spec struct {
	// Name labels the scenario (tables, logs).
	Name string
	// Algo is the registered arbitration algorithm (specs.Get); it must
	// be Arbitrable (carry the try/doorway-done/cs-enter/cs-exit tags).
	Algo string
	// Shards is the number of independent critical sections; clients
	// are partitioned across shards and each shard is arbitrated by its
	// own instance of Algo. Shards are independent simulations, which
	// is what lets them run in parallel deterministically.
	Shards int
	// N is the arbitration width per shard: the number of server
	// processes taking client requests through the lock protocol.
	N int
	// M is the algorithm's register capacity (Bakery++'s reset bound).
	M int
	// Clients is the total number of simulated client requests across
	// all classes and shards (open loop: one request per client).
	Clients int64
	// Admit is the optional des.ParseAdmission spec applied per shard
	// ("" = admit everything).
	Admit string
	// Classes is the fleet mix; at least one.
	Classes []Class
}

// String renders the canonical grammar form: fixed key order, every
// field explicit. Parse(s.String()) reproduces s exactly, and
// Parse(x).String() is a fixed point for any accepted x.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "name=%s;algo=%s;shards=%d;n=%d;m=%d;clients=%d",
		s.Name, s.Algo, s.Shards, s.N, s.M, s.Clients)
	if s.Admit != "" {
		fmt.Fprintf(&b, ";admit=%s", s.Admit)
	}
	for _, c := range s.Classes {
		fmt.Fprintf(&b, ";class=%s/%d/%s/%s/%d", c.Name, c.Weight, c.Arrival, c.Hold, c.SLO)
	}
	return b.String()
}

// Parse builds a Spec from the grammar:
//
//	name=<label>;algo=<spec>;shards=<s>;n=<n>;m=<m>;clients=<c>
//	    [;admit=token:<rate>,<burst>]
//	    ;class=<name>/<weight>/<arrival>/<hold>/<slo>[;class=...]
//
// where <arrival> and <hold> are des.ParseDist specs (fixed:<d>,
// poisson:<mean>, uniform:<a>,<b>, burst:<mean>,<cv>,
// bimodal:<a>,<b>,<pct>). Keys may appear in any order; class entries
// keep their order. The result is Validated.
func Parse(text string) (*Spec, error) {
	s := &Spec{}
	seen := map[string]bool{}
	for _, part := range strings.Split(text, ";") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("scenario: bad spec entry %q (want key=value)", part)
		}
		if key != "class" {
			if seen[key] {
				return nil, fmt.Errorf("scenario: key %q specified twice", key)
			}
			seen[key] = true
		}
		var err error
		switch key {
		case "name":
			s.Name = val
		case "algo":
			s.Algo = val
		case "shards":
			s.Shards, err = atoi(val)
		case "n":
			s.N, err = atoi(val)
		case "m":
			s.M, err = atoi(val)
		case "clients":
			s.Clients, err = strconv.ParseInt(val, 10, 64)
		case "admit":
			s.Admit = val
		case "class":
			var c Class
			c, err = parseClass(val)
			s.Classes = append(s.Classes, c)
		default:
			return nil, fmt.Errorf("scenario: unknown spec key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: bad value for %q: %v", key, err)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func atoi(v string) (int, error) { return strconv.Atoi(v) }

func parseClass(val string) (Class, error) {
	parts := strings.Split(val, "/")
	if len(parts) != 5 {
		return Class{}, fmt.Errorf("class %q: want <name>/<weight>/<arrival>/<hold>/<slo>", val)
	}
	w, err1 := strconv.Atoi(parts[1])
	slo, err2 := strconv.ParseInt(parts[4], 10, 64)
	if err1 != nil || err2 != nil {
		return Class{}, fmt.Errorf("class %q: weight and slo must be integers", val)
	}
	return Class{Name: parts[0], Weight: w, Arrival: parts[2], Hold: parts[3], SLO: slo}, nil
}

// Validate checks every field against the grammar's and the simulator's
// bounds, including that the arbitration algorithm exists and carries
// the tags the accumulator observes, and that every dist spec parses to
// its canonical form (so String() round-trips).
func (s *Spec) Validate() error {
	if s.Name == "" || strings.ContainsAny(s.Name, ";=/") {
		return fmt.Errorf("scenario: name %q must be non-empty and free of ';', '=', '/'", s.Name)
	}
	if s.Shards < 1 || s.Shards > 1<<20 {
		return fmt.Errorf("scenario: shards %d out of range [1, 2^20]", s.Shards)
	}
	if s.N < 2 || s.N > 64 {
		return fmt.Errorf("scenario: n %d out of range [2, 64]", s.N)
	}
	if s.M < 2 || s.M > 1<<30 {
		return fmt.Errorf("scenario: m %d out of range [2, 2^30]", s.M)
	}
	if s.Clients < 1 || s.Clients > 1<<40 {
		return fmt.Errorf("scenario: clients %d out of range [1, 2^40]", s.Clients)
	}
	p, err := specs.Get(s.Algo, specs.Config{N: s.N, M: s.M})
	if err != nil {
		return fmt.Errorf("scenario: %v", err)
	}
	if !specs.Arbitrable(p) {
		return fmt.Errorf("scenario: algorithm %q lacks the try/doorway-done/cs-enter/cs-exit tags the scenario accumulator observes", s.Algo)
	}
	if _, err := des.ParseAdmission(s.Admit); err != nil {
		return err
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("scenario: at least one class is required")
	}
	totalWeight := 0
	names := map[string]bool{}
	for i, c := range s.Classes {
		if c.Name == "" || strings.ContainsAny(c.Name, ";=/:,") {
			return fmt.Errorf("scenario: class %d name %q must be non-empty and free of ';', '=', '/', ':', ','", i, c.Name)
		}
		if names[c.Name] {
			return fmt.Errorf("scenario: class %q specified twice", c.Name)
		}
		names[c.Name] = true
		if c.Weight < 1 || c.Weight > 1<<20 {
			return fmt.Errorf("scenario: class %q weight %d out of range [1, 2^20]", c.Name, c.Weight)
		}
		totalWeight += c.Weight
		for _, d := range []struct{ role, spec string }{{"arrival", c.Arrival}, {"hold", c.Hold}} {
			dist, err := des.ParseDist(d.spec, 0, 0)
			if err != nil {
				return fmt.Errorf("scenario: class %q %s: %v", c.Name, d.role, err)
			}
			if dist.Name() != d.spec {
				return fmt.Errorf("scenario: class %q %s spec %q is not canonical (want %q)", c.Name, d.role, d.spec, dist.Name())
			}
		}
		if c.SLO < 1 || c.SLO > 1<<40 {
			return fmt.Errorf("scenario: class %q slo %d out of range [1, 2^40]", c.Name, c.SLO)
		}
	}
	if totalWeight > 1<<20 {
		return fmt.Errorf("scenario: class weights sum to %d, above 2^20", totalWeight)
	}
	return nil
}

// quotas splits Clients across classes by weight, then across shards,
// deterministically: per-class totals use floor division with the
// remainder given to the earliest classes; per-shard splits give the
// remainder to the lowest shard indices. Every client is assigned
// exactly once.
func (s *Spec) quotas() [][]int64 {
	totalWeight := 0
	for _, c := range s.Classes {
		totalWeight += c.Weight
	}
	perClass := make([]int64, len(s.Classes))
	var assigned int64
	for i, c := range s.Classes {
		perClass[i] = s.Clients * int64(c.Weight) / int64(totalWeight)
		assigned += perClass[i]
	}
	for i := 0; assigned < s.Clients; i = (i + 1) % len(perClass) {
		perClass[i]++
		assigned++
	}
	out := make([][]int64, len(s.Classes))
	for ci, total := range perClass {
		out[ci] = make([]int64, s.Shards)
		base, extra := total/int64(s.Shards), total%int64(s.Shards)
		for sh := 0; sh < s.Shards; sh++ {
			out[ci][sh] = base
			if int64(sh) < extra {
				out[ci][sh]++
			}
		}
	}
	return out
}
