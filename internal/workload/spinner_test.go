package workload

import (
	"testing"

	"bakerypp/internal/preempt"
)

// countingPreemptor records Preempt calls.
type countingPreemptor struct{ preempts, waits int }

func (c *countingPreemptor) Preempt(int) { c.preempts++ }
func (c *countingPreemptor) Wait(int)    { c.waits++ }

func TestSpinnerInjectsYields(t *testing.T) {
	cp := &countingPreemptor{}
	s := NewSpinner(0, 42, 0.1, cp)
	s.Spin(10000)
	if cp.preempts == 0 {
		t.Fatal("no preemption points injected over 10k iterations at rate 0.1")
	}
	// Mean gap is ~10, so ~1000 yields expected; accept a wide band.
	if cp.preempts < 200 || cp.preempts > 5000 {
		t.Errorf("yield count %d wildly off the configured rate", cp.preempts)
	}
	if s.Yields() != uint64(cp.preempts) {
		t.Errorf("Yields() = %d, preemptor saw %d", s.Yields(), cp.preempts)
	}
}

func TestSpinnerZeroWorkNoYield(t *testing.T) {
	cp := &countingPreemptor{}
	s := NewSpinner(0, 1, 0.5, cp)
	s.Spin(0)
	if cp.preempts != 0 {
		t.Error("Spin(0) injected a preemption point")
	}
}

func TestSpinnerRateZeroDisablesInjection(t *testing.T) {
	cp := &countingPreemptor{}
	s := NewSpinner(0, 1, 0, cp)
	s.Spin(5000)
	if cp.preempts != 0 {
		t.Error("rate 0 still injected preemption points")
	}
	n := NewSpinner(0, 1, 0.5, nil)
	n.Spin(100) // nil preemptor must not be called
}

// The yield schedule is a pure function of the seed.
func TestSpinnerDeterministicSchedule(t *testing.T) {
	run := func(seed int64) int {
		cp := &countingPreemptor{}
		s := NewSpinner(3, seed, 0.05, cp)
		for i := 0; i < 50; i++ {
			s.Spin(200)
		}
		return cp.preempts
	}
	if a, b := run(9), run(9); a != b {
		t.Errorf("same seed, different yield counts: %d vs %d", a, b)
	}
	if a, c := run(9), run(10); a == c {
		t.Log("adjacent seeds produced equal yield counts (possible, not a failure)")
	}
}

func TestSpinnerAgainstGoScheduler(t *testing.T) {
	// Smoke: yielding into the real scheduler must terminate.
	s := NewSpinner(0, 7, 0.2, preempt.Yield{})
	s.Spin(2000)
	if s.Yields() == 0 {
		t.Error("no yields at rate 0.2 over 2000 iterations")
	}
}
