// Package workload provides the contention patterns the benchmark harness
// drives locks with. A pattern is a pair of spin-time generators: Think
// (work outside the critical section) and Hold (work inside it), in units
// of abstract spin iterations. Sustained zero-think contention realises
// Lamport's "always at least one customer in the bakery" — the regime in
// which classic Bakery's tickets grow without bound (paper Sections 3/5) —
// while think-heavy patterns model the uncontended common case of
// experiment E4.
package workload

import "math/rand"

// Pattern generates per-iteration think and hold spin counts. Generators
// receive a private *rand.Rand so concurrent workers stay deterministic
// per-worker and race-free.
type Pattern struct {
	Name string
	// Think returns the number of spin iterations to burn outside the
	// critical section before the next acquisition.
	Think func(rng *rand.Rand) int
	// Hold returns the number of spin iterations to burn while holding
	// the lock.
	Hold func(rng *rand.Rand) int
}

func constant(n int) func(*rand.Rand) int {
	return func(*rand.Rand) int { return n }
}

// Sustained is maximal contention: no think time, minimal hold time; the
// bakery is never empty while any worker runs.
func Sustained() Pattern {
	return Pattern{Name: "sustained", Think: constant(0), Hold: constant(0)}
}

// ShortCS holds the lock for a short fixed amount of work with no think
// time — contended but with a non-trivial critical section.
func ShortCS(hold int) Pattern {
	return Pattern{Name: "short-cs", Think: constant(0), Hold: constant(hold)}
}

// ThinkHeavy models mostly-uncontended use: long think time, short hold.
func ThinkHeavy(think int) Pattern {
	return Pattern{Name: "think-heavy", Think: constant(think), Hold: constant(1)}
}

// Uniform draws think time uniformly from [0, maxThink] with a fixed hold.
func Uniform(maxThink, hold int) Pattern {
	return Pattern{
		Name: "uniform",
		Think: func(rng *rand.Rand) int {
			if maxThink <= 0 {
				return 0
			}
			return rng.Intn(maxThink + 1)
		},
		Hold: constant(hold),
	}
}

// Exponential draws think time from an exponential distribution with the
// given mean — a Poisson arrival process per worker.
func Exponential(meanThink float64, hold int) Pattern {
	return Pattern{
		Name: "exponential",
		Think: func(rng *rand.Rand) int {
			return int(rng.ExpFloat64() * meanThink)
		},
		Hold: constant(hold),
	}
}

// Bursty alternates bursts of back-to-back acquisitions with long pauses:
// burstLen acquisitions with zero think, then one think of gapLen.
func Bursty(burstLen, gapLen int) Pattern {
	if burstLen < 1 {
		burstLen = 1
	}
	var count int
	return Pattern{
		Name: "bursty",
		Think: func(*rand.Rand) int {
			count++
			if count%burstLen == 0 {
				return gapLen
			}
			return 0
		},
		Hold: constant(0),
	}
}

// Spin burns approximately n iterations of CPU work. The tiny arithmetic
// defeats dead-code elimination without touching memory. Spin never yields
// the processor; the harness drives patterns through the yield-injecting
// Spinner (spinner.go) so critical sections remain preemptible on any core
// count.
func Spin(n int) uint32 {
	var acc uint32 = 2463534242
	for i := 0; i < n; i++ {
		acc ^= acc << 13
		acc ^= acc >> 17
		acc ^= acc << 5
	}
	return acc
}
