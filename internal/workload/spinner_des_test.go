package workload

import (
	"testing"

	"bakerypp/internal/des"
	"bakerypp/internal/preempt"
)

// countingPre counts bare Preempt yields (the classic path).
type countingPre struct{ preempts int }

func (p *countingPre) Preempt(pid int) { p.preempts++ }
func (p *countingPre) Wait(pid int)    { p.preempts++ }

// TestSpinnerTimedEvents: under a discrete-event scheduler the Spinner
// must report spin stretches as sized Elapse events — so a fixed:2 model
// charges 2 ticks per spun iteration — while under a plain Preemptor the
// same spin arrives as bare unit yields. This is the "waits become timed
// events" half of the DES refactor at the workload layer.
func TestSpinnerTimedEvents(t *testing.T) {
	const work = 400
	// Classic path: a non-elapser Preemptor sees bare Preempts.
	plain := &countingPre{}
	sp := NewSpinner(0, 9, DefaultPreemptRate, plain)
	sp.Spin(work)
	if plain.preempts == 0 {
		t.Fatal("no preemption points injected on the classic path")
	}

	// Timed path: the same spin on a des.Sim advances virtual time by
	// ~2 ticks per iteration under fixed:2 (the tail stretch after the
	// last yield is not reported, so "at least work" only holds for
	// the yielded prefix — check the total is >= 2x the yielded work
	// and that time moved far beyond the grant count).
	sim := des.NewSim(1, 9, des.Fixed(2))
	var grants int64
	sim.Go(0, func() {
		s := NewSpinner(0, 9, DefaultPreemptRate, sim)
		s.Spin(work)
		grants = int64(s.Yields())
	})
	total := sim.Run()
	if grants == 0 {
		t.Fatal("no preemption points injected on the timed path")
	}
	// Start grant costs 2; each yielded stretch of g iterations costs
	// 2g >= 2. If stretches arrived as bare unit-cost yields the total
	// would be 2*(grants+1); sized pricing makes it far larger.
	if total <= 2*(grants+1) {
		t.Fatalf("virtual time %d for %d grants — spin stretches were not priced by size", total, grants)
	}
}

// TestSequencerHidesElapse pins the adapter boundary: preempt.Sequencer
// must NOT satisfy the elapser interface, or every pre-refactor sweep
// fingerprint would silently change (spin stretches would start costing
// their size instead of one step per yield).
func TestSequencerHidesElapse(t *testing.T) {
	var pre preempt.Preemptor = preempt.NewSequencer(1, 1)
	if _, ok := pre.(elapser); ok {
		t.Fatal("preempt.Sequencer exposes Elapse; the unit-step contract of classic sweeps is broken")
	}
	var sim preempt.Preemptor = des.NewSim(1, 1, nil)
	if _, ok := sim.(elapser); !ok {
		t.Fatal("des.Sim does not expose Elapse; the timed path is unreachable")
	}
}
