package workload

import (
	"math/rand"
	"testing"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestSustained(t *testing.T) {
	p := Sustained()
	r := rng()
	for i := 0; i < 10; i++ {
		if p.Think(r) != 0 || p.Hold(r) != 0 {
			t.Fatal("sustained pattern must be zero think/hold")
		}
	}
}

func TestShortCS(t *testing.T) {
	p := ShortCS(7)
	r := rng()
	if p.Think(r) != 0 || p.Hold(r) != 7 {
		t.Error("short-cs wrong")
	}
}

func TestThinkHeavy(t *testing.T) {
	p := ThinkHeavy(100)
	r := rng()
	if p.Think(r) != 100 || p.Hold(r) != 1 {
		t.Error("think-heavy wrong")
	}
}

func TestUniformRange(t *testing.T) {
	p := Uniform(10, 2)
	r := rng()
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := p.Think(r)
		if v < 0 || v > 10 {
			t.Fatalf("uniform think %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < 5 {
		t.Error("uniform generator not spreading")
	}
	if p.Hold(r) != 2 {
		t.Error("hold wrong")
	}
	if Uniform(0, 1).Think(r) != 0 {
		t.Error("degenerate uniform should be 0")
	}
}

func TestExponentialMean(t *testing.T) {
	p := Exponential(50, 1)
	r := rng()
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += p.Think(r)
	}
	mean := float64(sum) / n
	if mean < 40 || mean > 60 {
		t.Errorf("exponential mean = %.1f, want ~50", mean)
	}
}

func TestBurstyAlternation(t *testing.T) {
	p := Bursty(3, 500)
	r := rng()
	var gaps, zeros int
	for i := 0; i < 30; i++ {
		switch p.Think(r) {
		case 500:
			gaps++
		case 0:
			zeros++
		default:
			t.Fatal("unexpected think value")
		}
	}
	if gaps != 10 || zeros != 20 {
		t.Errorf("gaps=%d zeros=%d, want 10/20", gaps, zeros)
	}
	if (Bursty(0, 5).Think(r)) != 5 {
		t.Error("degenerate burst length not clamped to 1")
	}
}

func TestSpinDoesWork(t *testing.T) {
	if Spin(0) == 0 {
		t.Error("seed lost")
	}
	a, b := Spin(10), Spin(10)
	if a != b {
		t.Error("Spin is not deterministic")
	}
	if Spin(10) == Spin(11) {
		t.Error("Spin ignores n")
	}
}

func BenchmarkSpin100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Spin(100)
	}
}
