package workload

import "bakerypp/internal/preempt"

// Spinner burns CPU the way Spin does, but injects randomized preemption
// points while it spins: after every seeded-random gap of iterations it
// reports to its Preemptor, which may deschedule the worker. This is what
// makes contention outcomes observable on any core count — on a one-core
// machine a plain Spin holds the processor for its whole critical section,
// so a broken lock shows no overlap and Bakery++'s reset window never
// opens; a yielding spinner hands the processor over mid-section exactly
// like hardware preemption does on a loaded many-core box.
//
// A Spinner belongs to one participant (one goroutine); the harness creates
// one per worker, seeded from the run seed, so yield schedules are
// deterministic per worker and race-free.
type Spinner struct {
	pid     int
	pre     preempt.Preemptor
	elapse  func(pid int, work int64)
	state   uint64
	maxGap  uint64 // yield gaps are drawn uniformly from [1, maxGap]
	acc     uint32
	yielded uint64
}

// elapser is the optional timed-event surface of a Preemptor: a
// discrete-event scheduler (des.Sim) implements it so spin stretches are
// reported with their size and priced by the latency model, instead of
// arriving as bare unit-cost yields. Checked structurally so workload
// does not import des.
type elapser interface {
	Elapse(pid int, work int64)
}

// DefaultPreemptRate is the spin-iteration preemption rate the harness
// uses when a run does not choose one: on average one yield every 25 spin
// iterations — frequent enough that a 50-iteration critical section is
// virtually guaranteed to be preempted, cheap enough to leave throughput
// measurements meaningful.
const DefaultPreemptRate = 0.04

// NewSpinner returns a Spinner for participant pid. rate is the expected
// number of preemption points per spin iteration (0 < rate <= 1; the mean
// gap between yields is 1/rate). A rate <= 0 disables injection, reducing
// Spin to the seed behaviour. pre receives the injected preemption points;
// pass preempt.Yield{} to yield to the Go scheduler or a preempt.Sequencer
// to make the schedule fully deterministic.
func NewSpinner(pid int, seed int64, rate float64, pre preempt.Preemptor) *Spinner {
	s := &Spinner{pid: pid, pre: pre, state: preempt.Seed64(seed, pid)}
	if e, ok := pre.(elapser); ok {
		s.elapse = e.Elapse
	}
	if rate > 0 && pre != nil {
		if rate > 1 {
			rate = 1
		}
		// Uniform gaps on [1, 2/rate] have mean ~1/rate.
		s.maxGap = uint64(2 / rate)
		if s.maxGap < 1 {
			s.maxGap = 1
		}
	}
	return s
}

// Yields reports how many preemption points the spinner has injected.
func (s *Spinner) Yields() uint64 { return s.yielded }

// Spin burns approximately n iterations of CPU work, reporting a
// preemption point after each drawn gap. Spin(0) performs no work and
// injects no preemption point.
func (s *Spinner) Spin(n int) {
	for n > 0 {
		if s.maxGap == 0 {
			s.acc ^= Spin(n)
			return
		}
		s.state = preempt.Xorshift64(s.state)
		gap := int(s.state%s.maxGap) + 1
		if gap >= n {
			s.acc ^= Spin(n)
			return
		}
		s.acc ^= Spin(gap)
		n -= gap
		s.yielded++
		if s.elapse != nil {
			// Timed scheduler: report the stretch with its size so
			// the latency model prices the computation, not just
			// the switch point.
			s.elapse(s.pid, int64(gap))
		} else {
			s.pre.Preempt(s.pid)
		}
	}
}
