// Package registers models the finite shared registers that real
// implementations of the bakery family of mutual-exclusion algorithms
// communicate through.
//
// The paper "Avoiding Register Overflow in the Bakery Algorithm"
// (Sayyadabdi & Sharifi, ICPP 2020) defines a register of capacity M as one
// that can hold any value v with 0 <= v <= M, and defines an overflow as an
// attempt to store a value v > M. This package provides that model in three
// flavours:
//
//   - Reg: a plain register for single-goroutine use by the deterministic
//     simulator and the model checker.
//   - Atomic: a linearizable register backed by sync/atomic for the runtime
//     lock implementations.
//   - Safe: a single-writer multi-reader register with Lamport's "safe"
//     semantics — a read that overlaps a write may return any value in
//     [0, M]. The bakery algorithm is correct even over safe registers,
//     which is why the paper calls it the first "true" solution.
//
// All flavours share the Policy vocabulary describing what a finite machine
// does when an overflow is attempted.
package registers

import (
	"fmt"
	"sync/atomic"
)

// Policy selects the behaviour of a bounded register when a store of a value
// greater than its capacity M is attempted.
type Policy uint8

const (
	// Unbounded never overflows; it models the idealised registers the
	// original Bakery algorithm assumes ("registers that can hold
	// arbitrarily large values", paper Section 3).
	Unbounded Policy = iota
	// Wrap stores v mod (M+1), the behaviour of a b-bit hardware register
	// with M = 2^b - 1. This is the policy under which classic Bakery
	// malfunctions.
	Wrap
	// Saturate clamps stored values at M.
	Saturate
	// Trap behaves like Wrap but the overflow is also recorded in the
	// register's Counter, so experiments can count overflow incidents.
	Trap
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Unbounded:
		return "unbounded"
	case Wrap:
		return "wrap"
	case Saturate:
		return "saturate"
	case Trap:
		return "trap"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Counter accumulates overflow events across any number of registers. It is
// safe for concurrent use.
type Counter struct {
	overflows atomic.Uint64
}

// Add records n overflow events.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.overflows.Add(n)
	}
}

// Overflows reports the number of overflow events recorded so far.
func (c *Counter) Overflows() uint64 {
	if c == nil {
		return 0
	}
	return c.overflows.Load()
}

// CapacityForBits returns the capacity M of a b-bit unsigned register,
// 2^b - 1. Bits outside [1, 62] panic: the simulator represents register
// contents as int64 and needs headroom to detect overflow before clamping.
func CapacityForBits(b int) int64 {
	if b < 1 || b > 62 {
		panic(fmt.Sprintf("registers: unsupported register width %d bits", b))
	}
	return (int64(1) << uint(b)) - 1
}

// BitsForCapacity returns the minimal number of bits needed to store values
// in [0, m].
func BitsForCapacity(m int64) int {
	if m < 0 {
		panic("registers: negative capacity")
	}
	bits := 1
	for v := int64(1); v < m; v = v*2 + 1 {
		bits++
	}
	return bits
}

// clamp applies pol to the attempted store v against capacity m and reports
// the stored value and whether the store overflowed. m <= 0 together with
// Unbounded means no bound at all.
func clamp(v, m int64, pol Policy, events *Counter) (stored int64, overflowed bool) {
	if v < 0 {
		// The bakery family only ever stores naturals; a negative store
		// is a programming error in this repository, not an overflow.
		panic(fmt.Sprintf("registers: store of negative value %d", v))
	}
	if pol == Unbounded || v <= m {
		return v, false
	}
	switch pol {
	case Wrap:
		return v % (m + 1), true
	case Saturate:
		return m, true
	case Trap:
		events.Add(1)
		return v % (m + 1), true
	default:
		panic("registers: unknown policy")
	}
}

// Reg is a plain bounded register for single-goroutine use (the simulator
// and the model checker serialise all accesses by construction).
type Reg struct {
	m      int64
	pol    Policy
	events *Counter
	v      int64
}

// NewReg returns a register of capacity m with the given overflow policy.
// events may be nil; it is only consulted by the Trap policy.
func NewReg(m int64, pol Policy, events *Counter) *Reg {
	if pol != Unbounded && m < 1 {
		panic("registers: bounded register needs capacity >= 1")
	}
	return &Reg{m: m, pol: pol, events: events}
}

// Load returns the current contents.
func (r *Reg) Load() int64 { return r.v }

// Store writes v subject to the register's policy and reports whether the
// store overflowed (attempted v > M).
func (r *Reg) Store(v int64) (overflowed bool) {
	r.v, overflowed = clamp(v, r.m, r.pol, r.events)
	return overflowed
}

// Capacity returns M, the largest storable value (0 for Unbounded means "no
// bound" only if the register was constructed with Unbounded).
func (r *Reg) Capacity() int64 { return r.m }

// Atomic is a linearizable bounded register safe for concurrent use. It is
// the building block of the runtime lock implementations: each array cell
// (number[i], choosing[i]) is one Atomic register, preserving the paper's
// single-writer discipline at the algorithm level while letting Go's memory
// model order the accesses.
type Atomic struct {
	m      int64
	pol    Policy
	events *Counter
	v      atomic.Int64
}

// NewAtomic returns a concurrent register of capacity m with the given
// policy. events may be nil.
func NewAtomic(m int64, pol Policy, events *Counter) *Atomic {
	if pol != Unbounded && m < 1 {
		panic("registers: bounded register needs capacity >= 1")
	}
	return &Atomic{m: m, pol: pol, events: events}
}

// Load returns the current contents.
func (a *Atomic) Load() int64 { return a.v.Load() }

// Store writes v subject to the register's policy and reports whether the
// store overflowed.
func (a *Atomic) Store(v int64) (overflowed bool) {
	stored, overflowed := clamp(v, a.m, a.pol, a.events)
	a.v.Store(stored)
	return overflowed
}

// Capacity returns M.
func (a *Atomic) Capacity() int64 { return a.m }

// File is an array of Atomic registers indexed by process id — exactly the
// shape of the paper's shared arrays number[1..N] and choosing[1..N]. All
// registers share one capacity, policy and overflow counter.
//
// By default registers are packed contiguously, like a real shared integer
// array; NewFilePadded spaces them one cache line apart so experiments can
// measure how much of the bakery family's contention cost is false sharing
// versus the algorithmic O(N) scan.
type File struct {
	m      int64
	pol    Policy
	events *Counter
	n      int
	stride int
	regs   []Atomic
}

// NewFile returns a register file of n packed registers of capacity m.
func NewFile(n int, m int64, pol Policy, events *Counter) *File {
	return newFile(n, m, pol, events, 1)
}

// cacheLine is the assumed coherence granule; 64 bytes on every platform
// this repository targets.
const cacheLine = 64

// NewFilePadded returns a register file whose registers are spaced a cache
// line apart (the padding ablation of DESIGN.md).
func NewFilePadded(n int, m int64, pol Policy, events *Counter) *File {
	stride := (cacheLine + int(unsafeAtomicSize) - 1) / int(unsafeAtomicSize)
	if stride < 1 {
		stride = 1
	}
	return newFile(n, m, pol, events, stride)
}

// unsafeAtomicSize is the size of one Atomic in bytes; kept as a constant
// (checked by test) to avoid importing unsafe.
const unsafeAtomicSize = 32

func newFile(n int, m int64, pol Policy, events *Counter, stride int) *File {
	if n < 1 {
		panic("registers: file needs at least one register")
	}
	if pol != Unbounded && m < 1 {
		panic("registers: bounded register needs capacity >= 1")
	}
	f := &File{m: m, pol: pol, events: events, n: n, stride: stride,
		regs: make([]Atomic, n*stride)}
	for i := 0; i < n; i++ {
		r := &f.regs[i*stride]
		r.m = m
		r.pol = pol
		r.events = events
	}
	return f
}

// at returns register i respecting the stride.
func (f *File) at(i int) *Atomic { return &f.regs[i*f.stride] }

// Padded reports whether the file spaces registers across cache lines.
func (f *File) Padded() bool { return f.stride > 1 }

// Len returns the number of registers.
func (f *File) Len() int { return f.n }

// Capacity returns M.
func (f *File) Capacity() int64 { return f.m }

// Load returns register i.
func (f *File) Load(i int) int64 { return f.at(i).Load() }

// Store writes v into register i, reporting overflow.
func (f *File) Store(i int, v int64) bool { return f.at(i).Store(v) }

// Reset sets register i back to its initial value 0 — the paper's crash
// rule: "if a process crashes ... any read operation from its memory units
// is expected to return 0 eventually" (correctness condition 4).
func (f *File) Reset(i int) { f.at(i).v.Store(0) }

// Max returns the maximum over all registers, reading them one at a time in
// ascending index order. The paper notes the maximum function "can take its
// argument in any arbitrary order"; MaxFrom exercises other orders.
func (f *File) Max() int64 { return f.MaxFrom(0) }

// MaxFrom returns the maximum over all registers, reading them one at a time
// starting at index start and wrapping around. Any start yields the same
// result under quiescence; under concurrency the value is one of the
// possible serialisations, which is all the algorithm requires.
func (f *File) MaxFrom(start int) int64 {
	max := int64(0)
	for k := 0; k < f.n; k++ {
		if v := f.at((start + k) % f.n).Load(); v > max {
			max = v
		}
	}
	return max
}

// AnyAtLeast reports whether some register currently holds a value >= bound.
// This is the existential test at Bakery++'s label L1.
func (f *File) AnyAtLeast(bound int64) bool {
	for i := 0; i < f.n; i++ {
		if f.at(i).Load() >= bound {
			return true
		}
	}
	return false
}

// Snapshot copies the current contents of every register. The copy is not an
// atomic snapshot (neither is the algorithm's); it reads cell by cell.
func (f *File) Snapshot() []int64 {
	out := make([]int64, f.n)
	for i := 0; i < f.n; i++ {
		out[i] = f.at(i).Load()
	}
	return out
}
