package registers

import "testing"

func BenchmarkRegStoreWrap(b *testing.B) {
	r := NewReg(255, Wrap, nil)
	for i := 0; i < b.N; i++ {
		r.Store(int64(i))
	}
}

func BenchmarkAtomicStoreLoad(b *testing.B) {
	a := NewAtomic(255, Trap, &Counter{})
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			a.Store(i & 1023)
			_ = a.Load()
			i++
		}
	})
}

func BenchmarkFileMax(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(sizeName(n), func(b *testing.B) {
			f := NewFile(n, 1<<20, Unbounded, nil)
			for i := 0; i < n; i++ {
				f.Store(i, int64(i*7))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = f.MaxFrom(i % n)
			}
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 4:
		return "N=4"
	case 16:
		return "N=16"
	default:
		return "N=64"
	}
}

func BenchmarkSafeReadQuiescent(b *testing.B) {
	s := NewSafe(255)
	s.Write(42)
	for i := 0; i < b.N; i++ {
		_ = s.Read()
	}
}

func BenchmarkSafeReadContended(b *testing.B) {
	s := NewSafe(255)
	stop := make(chan struct{})
	go func() {
		v := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
				s.Write(v & 255)
				v++
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Read()
	}
	close(stop)
}
