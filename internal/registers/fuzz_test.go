package registers

import "testing"

// FuzzClamp checks the overflow-policy algebra for arbitrary stores: the
// stored value is always within [0, M] for bounded policies, and overflow
// is reported exactly when the attempt exceeded M.
func FuzzClamp(f *testing.F) {
	f.Add(uint32(300), uint8(8), uint8(1))
	f.Add(uint32(0), uint8(1), uint8(2))
	f.Add(uint32(65536), uint8(16), uint8(3))
	f.Fuzz(func(t *testing.T, vRaw uint32, bitsRaw, polRaw uint8) {
		bits := int(bitsRaw%32) + 1
		m := CapacityForBits(bits)
		pol := Policy(polRaw%3 + 1) // Wrap, Saturate, Trap
		var c Counter
		r := NewReg(m, pol, &c)
		v := int64(vRaw)
		over := r.Store(v)
		got := r.Load()
		if got < 0 || got > m {
			t.Fatalf("stored %d escaped [0, %d] under %s", got, m, pol)
		}
		if over != (v > m) {
			t.Fatalf("overflow flag %v for store %d with M=%d", over, v, m)
		}
		switch pol {
		case Wrap, Trap:
			if got != v%(m+1) {
				t.Fatalf("wrap stored %d, want %d", got, v%(m+1))
			}
		case Saturate:
			want := v
			if want > m {
				want = m
			}
			if got != want {
				t.Fatalf("saturate stored %d, want %d", got, want)
			}
		}
		if pol == Trap && over && c.Overflows() != 1 {
			t.Fatal("trap did not count the overflow")
		}
	})
}
