package registers

import (
	"sync"
	"testing"
	"testing/quick"
	"unsafe"
)

func TestCapacityForBits(t *testing.T) {
	cases := []struct {
		bits int
		want int64
	}{
		{1, 1}, {2, 3}, {3, 7}, {8, 255}, {16, 65535}, {32, 4294967295},
	}
	for _, c := range cases {
		if got := CapacityForBits(c.bits); got != c.want {
			t.Errorf("CapacityForBits(%d) = %d, want %d", c.bits, got, c.want)
		}
	}
}

func TestCapacityForBitsPanicsOutOfRange(t *testing.T) {
	for _, b := range []int{0, -1, 63, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CapacityForBits(%d) did not panic", b)
				}
			}()
			CapacityForBits(b)
		}()
	}
}

func TestBitsForCapacity(t *testing.T) {
	cases := []struct {
		m    int64
		want int
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {255, 8}, {256, 9}, {65535, 16},
	}
	for _, c := range cases {
		if got := BitsForCapacity(c.m); got != c.want {
			t.Errorf("BitsForCapacity(%d) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestBitsCapacityRoundTrip(t *testing.T) {
	f := func(b uint8) bool {
		bits := int(b%62) + 1
		return BitsForCapacity(CapacityForBits(bits)) == bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegUnbounded(t *testing.T) {
	r := NewReg(0, Unbounded, nil)
	if over := r.Store(1 << 40); over {
		t.Error("unbounded register reported overflow")
	}
	if got := r.Load(); got != 1<<40 {
		t.Errorf("Load = %d, want %d", got, int64(1)<<40)
	}
}

func TestRegWrap(t *testing.T) {
	r := NewReg(7, Wrap, nil) // 3-bit register
	if over := r.Store(7); over {
		t.Error("store of M reported overflow; M itself is storable")
	}
	if over := r.Store(8); !over {
		t.Error("store of M+1 did not report overflow")
	}
	if got := r.Load(); got != 0 {
		t.Errorf("wrapped value = %d, want 0", got)
	}
	r.Store(13)
	if got := r.Load(); got != 5 {
		t.Errorf("wrapped value = %d, want 5", got)
	}
}

func TestRegSaturate(t *testing.T) {
	r := NewReg(7, Saturate, nil)
	r.Store(100)
	if got := r.Load(); got != 7 {
		t.Errorf("saturated value = %d, want 7", got)
	}
}

func TestRegTrapCounts(t *testing.T) {
	var c Counter
	r := NewReg(3, Trap, &c)
	r.Store(2)
	r.Store(4)
	r.Store(9)
	if got := c.Overflows(); got != 2 {
		t.Errorf("overflow count = %d, want 2", got)
	}
	if got := r.Load(); got != 1 { // 9 mod 4
		t.Errorf("trapped value = %d, want 1", got)
	}
}

func TestRegNegativeStorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative store did not panic")
		}
	}()
	NewReg(3, Wrap, nil).Store(-1)
}

func TestNewRegValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bounded register with capacity 0 did not panic")
		}
	}()
	NewReg(0, Wrap, nil)
}

// Property: a Wrap register never holds a value outside [0, M].
func TestWrapStaysInDomain(t *testing.T) {
	f := func(vals []uint16, mRaw uint8) bool {
		m := int64(mRaw%63) + 1
		r := NewReg(m, Wrap, nil)
		for _, v := range vals {
			r.Store(int64(v))
			if got := r.Load(); got < 0 || got > m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: overflow is reported exactly when the attempted value exceeds M.
func TestOverflowIffExceedsCapacity(t *testing.T) {
	f := func(v uint16, mRaw uint8) bool {
		m := int64(mRaw%63) + 1
		r := NewReg(m, Wrap, nil)
		over := r.Store(int64(v))
		return over == (int64(v) > m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAtomicConcurrentStores(t *testing.T) {
	var c Counter
	a := NewAtomic(255, Trap, &c)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Store(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if got := a.Load(); got < 0 || got > 255 {
		t.Errorf("atomic register escaped domain: %d", got)
	}
	if c.Overflows() == 0 {
		t.Error("expected some overflows from stores above 255")
	}
}

func TestFileBasics(t *testing.T) {
	f := NewFile(4, 15, Wrap, nil)
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	f.Store(0, 3)
	f.Store(1, 9)
	f.Store(2, 15)
	if got := f.Max(); got != 15 {
		t.Errorf("Max = %d, want 15", got)
	}
	if !f.AnyAtLeast(15) {
		t.Error("AnyAtLeast(15) = false, want true")
	}
	if f.AnyAtLeast(16) {
		t.Error("AnyAtLeast(16) = true, want false")
	}
	f.Reset(2)
	if got := f.Load(2); got != 0 {
		t.Errorf("after Reset, Load(2) = %d, want 0", got)
	}
	snap := f.Snapshot()
	want := []int64{3, 9, 0, 0}
	for i := range want {
		if snap[i] != want[i] {
			t.Errorf("Snapshot[%d] = %d, want %d", i, snap[i], want[i])
		}
	}
}

// Property: Max is independent of the read order ("the maximum function can
// take its argument in any arbitrary order", Algorithm 1 comment), under
// quiescence.
func TestMaxOrderIndependence(t *testing.T) {
	f := func(vals []uint8, start uint8) bool {
		n := len(vals)
		if n == 0 {
			n = 1
			vals = []uint8{0}
		}
		file := NewFile(n, 255, Wrap, nil)
		for i, v := range vals {
			file.Store(i, int64(v))
		}
		return file.MaxFrom(int(start)%n) == file.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFileWrapOverflow(t *testing.T) {
	var c Counter
	f := NewFile(2, 3, Trap, &c)
	if over := f.Store(0, 4); !over {
		t.Error("expected overflow storing 4 into capacity-3 register")
	}
	if got := f.Load(0); got != 0 {
		t.Errorf("wrapped value = %d, want 0", got)
	}
	if c.Overflows() != 1 {
		t.Errorf("overflows = %d, want 1", c.Overflows())
	}
}

func TestSafeQuiescentReads(t *testing.T) {
	s := NewSafe(255)
	for _, v := range []int64{0, 1, 128, 255} {
		s.Write(v)
		if got := s.Read(); got != v {
			t.Errorf("quiescent Read after Write(%d) = %d", v, got)
		}
	}
}

func TestSafeWriteOutOfRangePanics(t *testing.T) {
	s := NewSafe(7)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range write did not panic")
		}
	}()
	s.Write(8)
}

// Safe reads must stay within the register domain even when they overlap
// writes (the "arbitrary value" must still be a value a register can hold).
func TestSafeConcurrentReadsStayInDomain(t *testing.T) {
	const m = 7
	s := NewSafe(m)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			s.Write(int64(i % (m + 1)))
		}
	}()
	bad := 0
	for {
		select {
		case <-done:
			if bad > 0 {
				t.Errorf("%d reads escaped [0,%d]", bad, m)
			}
			return
		default:
			if v := s.Read(); v < 0 || v > m {
				bad++
			}
		}
	}
}

// The flicker sequence must cover the domain: an adversarial safe register
// should be able to return any value, not just the old or new one.
func TestSafeArbitraryCoversDomain(t *testing.T) {
	s := NewSafe(3)
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		seen[s.arbitrary()] = true
	}
	for v := int64(0); v <= 3; v++ {
		if !seen[v] {
			t.Errorf("flicker never produced %d", v)
		}
	}
}

func TestPolicyString(t *testing.T) {
	cases := map[Policy]string{
		Unbounded: "unbounded",
		Wrap:      "wrap",
		Saturate:  "saturate",
		Trap:      "trap",
		Policy(9): "policy(9)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", p, got, want)
		}
	}
}

func TestAtomicSizeConstant(t *testing.T) {
	if got := unsafe.Sizeof(Atomic{}); got != unsafeAtomicSize {
		t.Errorf("Atomic size = %d, constant says %d", got, unsafeAtomicSize)
	}
}

func TestPaddedFileBehavesLikePacked(t *testing.T) {
	packed := NewFile(4, 15, Wrap, nil)
	padded := NewFilePadded(4, 15, Wrap, nil)
	if packed.Padded() || !padded.Padded() {
		t.Fatal("Padded() flags wrong")
	}
	if padded.Len() != 4 {
		t.Fatalf("padded Len = %d", padded.Len())
	}
	for _, f := range []*File{packed, padded} {
		f.Store(0, 3)
		f.Store(1, 20) // wraps to 4
		f.Store(3, 15)
		if got := f.Load(1); got != 4 {
			t.Errorf("Load(1) = %d, want 4", got)
		}
		if got := f.Max(); got != 15 {
			t.Errorf("Max = %d, want 15", got)
		}
		if !f.AnyAtLeast(15) || f.AnyAtLeast(16) {
			t.Error("AnyAtLeast wrong")
		}
		snap := f.Snapshot()
		if len(snap) != 4 || snap[3] != 15 {
			t.Errorf("Snapshot = %v", snap)
		}
		f.Reset(3)
		if f.Load(3) != 0 {
			t.Error("Reset failed")
		}
	}
}

func TestPaddedFileSpacing(t *testing.T) {
	f := NewFilePadded(2, 7, Wrap, nil)
	a := uintptr(unsafe.Pointer(f.at(0)))
	b := uintptr(unsafe.Pointer(f.at(1)))
	if b-a < cacheLine {
		t.Errorf("padded registers %d bytes apart, want >= %d", b-a, cacheLine)
	}
}

func TestNilCounterSafe(t *testing.T) {
	var c *Counter
	c.Add(3) // must not panic
	if c.Overflows() != 0 {
		t.Error("nil counter reported overflows")
	}
}
