package registers

import "sync/atomic"

// Safe is a single-writer multi-reader register with Lamport's "safe"
// register semantics: a read that does not overlap a write returns the most
// recently written value; a read that overlaps a write may return any value
// in the register's domain [0, M].
//
// The bakery algorithm (and Bakery++) is correct over safe registers — the
// fourth remarkable property listed in the paper's Section 1.2: "if a read
// operation occurs simultaneously with a write operation, then the value
// obtained by the read operation may have any arbitrary value". Safe lets
// tests and experiments exercise precisely that adversarial behaviour on
// real goroutines: while a write is in progress, readers observe values
// scrambled deterministically from a flicker sequence, never exceeding M.
type Safe struct {
	m int64
	// seq is even when no write is in progress and odd while one is, in
	// the style of a seqlock. flick seeds the arbitrary values returned
	// to overlapping readers; nflick counts them.
	seq    atomic.Uint64
	flick  atomic.Uint64
	nflick atomic.Uint64
	v      atomic.Int64
}

// Flickers reports how many reads overlapped a write and returned an
// arbitrary value instead of the stored one.
func (s *Safe) Flickers() uint64 { return s.nflick.Load() }

// flickStride is the splitmix64 increment.
const flickStride = 0x9e3779b97f4a7c15

// NewSafe returns a safe register of capacity m >= 1 holding 0.
func NewSafe(m int64) *Safe {
	if m < 1 {
		panic("registers: safe register needs capacity >= 1")
	}
	return &Safe{m: m}
}

// Capacity returns M.
func (s *Safe) Capacity() int64 { return s.m }

// Write stores v, which must be in [0, M]; the writer is the register's
// unique owner. While the write is "in flight" concurrent readers may
// observe arbitrary values.
func (s *Safe) Write(v int64) {
	if v < 0 || v > s.m {
		panic("registers: safe register write out of range")
	}
	s.seq.Add(1) // becomes odd: write in progress
	s.v.Store(v)
	s.seq.Add(1) // becomes even: write complete
}

// Read returns the register's value under safe semantics: if no write
// overlaps the read, the last written value; otherwise an arbitrary value in
// [0, M] drawn from the flicker sequence.
func (s *Safe) Read() int64 {
	before := s.seq.Load()
	v := s.v.Load()
	after := s.seq.Load()
	if before == after && before%2 == 0 {
		return v
	}
	return s.arbitrary()
}

// arbitrary produces a deterministic-but-uncorrelated value in [0, M] using
// a splitmix64 step over the flicker counter. Determinism keeps failures
// reproducible; adversarial distribution over the whole domain maximises the
// damage a flickery read can do.
func (s *Safe) arbitrary() int64 {
	s.nflick.Add(1)
	x := s.flick.Add(flickStride)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x % uint64(s.m+1))
}
