// Package mc is an explicit-state model checker for gcl programs — this
// repository's stand-in for the TLC model checker the paper used to verify
// Bakery++. Like TLC's safety mode, it enumerates the reachable states of
// the interleaving semantics breadth-first, evaluates invariants on every
// state, detects deadlocks, and reconstructs a shortest counterexample
// trace when a check fails.
//
// Beyond plain safety checking it can (a) add crash/restart transitions
// implementing the paper's correctness conditions 3–4, (b) build the full
// reachability graph, and (c) search the graph for starvation scenarios
// such as the Section 6.3 livelock (a slow process pinned at L1 while fast
// processes cycle through their critical sections) via strongly-connected
// component analysis.
package mc

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"

	"bakerypp/internal/gcl"
)

// Invariant is a named state predicate that must hold on every reachable
// state.
type Invariant struct {
	Name  string
	Holds func(p *gcl.Prog, s gcl.State) bool
	// Observes declares the slice of state the predicate reads, so
	// partial-order reduction can prove an action invisible (unable to
	// change the predicate's truth value). nil means "unknown — may read
	// anything", which soundly disables POR. The stock invariants all
	// declare precise observations.
	Observes *Observation
}

// Observation is an invariant's declared read set: the labels whose
// occupancy it may depend on (CountAtLabel-style predicates) and whether
// it may depend on shared variable values. It cannot express reading
// anything else — a predicate that consults local variables, pcs beyond
// label occupancy, or any other part of the state MUST leave
// Invariant.Observes nil (full-search fallback); declaring an empty
// Observation for such a predicate would let POR treat actions that
// change it as invisible.
type Observation struct {
	Labels []string
	Shared bool
}

// labelIdxCache memoizes a label's index for one program, so the stock
// label-counting invariants resolve the name once per program instead of
// once per state (the lookup was a measurable slice of the hot loop). The
// cache is swapped atomically: invariant closures are shared across
// expansion workers, and a stale entry is harmless — a program mismatch
// just recomputes.
type labelIdxCache struct {
	p   *gcl.Prog
	idx int
}

func countAtCached(c *atomic.Pointer[labelIdxCache], p *gcl.Prog, s gcl.State, label string) int {
	lc := c.Load()
	if lc == nil || lc.p != p {
		lc = &labelIdxCache{p: p, idx: p.LabelIndex(label)}
		c.Store(lc)
	}
	return p.CountAtLabelIdx(s, lc.idx)
}

// Mutex is the mutual-exclusion invariant: at most one process resides at
// the label "cs" (the specs package convention for "inside the critical
// section").
func Mutex() Invariant {
	var cache atomic.Pointer[labelIdxCache]
	return Invariant{
		Name: "mutual-exclusion",
		Holds: func(p *gcl.Prog, s gcl.State) bool {
			return countAtCached(&cache, p, s, "cs") <= 1
		},
		Observes: &Observation{Labels: []string{"cs"}},
	}
}

// NoOverflow is the paper's overflow invariant: no shared register ever
// holds a value greater than the program's capacity M ("we say an overflow
// occurs if C tries to store a value v > M", Section 3). Programs are
// checked in ModeUnbounded, so an attempted over-store is visible as a
// reachable state holding the raw value.
func NoOverflow() Invariant {
	return Invariant{
		Name: "no-overflow",
		Holds: func(p *gcl.Prog, s gcl.State) bool {
			return p.M <= 0 || int64(p.MaxAnyShared(s)) <= p.M
		},
		Observes: &Observation{Shared: true},
	}
}

// AtMostAtLabel bounds how many processes may simultaneously sit at a label.
func AtMostAtLabel(label string, k int) Invariant {
	var cache atomic.Pointer[labelIdxCache]
	return Invariant{
		Name: fmt.Sprintf("at-most-%d-at-%s", k, label),
		Holds: func(p *gcl.Prog, s gcl.State) bool {
			return countAtCached(&cache, p, s, label) <= k
		},
		Observes: &Observation{Labels: []string{label}},
	}
}

// Options configures a check.
type Options struct {
	// Invariants to verify; both Check and BuildGraph evaluate them.
	Invariants []Invariant
	// Deadlock, when set, reports a state in which no process has an
	// enabled action. Crash transitions do not count as progress.
	Deadlock bool
	// Crash adds crash/restart transitions for the processes listed in
	// CrashPids (all processes when empty): at any moment a process may
	// reset its owned registers and locals and return to "ncs".
	Crash     bool
	CrashPids []int
	// MaxStates bounds exploration; 0 means DefaultMaxStates. Exceeding
	// the bound stops the search with Complete = false.
	MaxStates int
	// Mode is the store semantics; model checking uses ModeUnbounded so
	// the NoOverflow invariant can observe attempted over-stores.
	Mode gcl.Mode
	// Workers selects the exploration engine. 0 (the default) runs the
	// sequential BFS; a positive count runs the chunked parallel engine
	// (see parallel.go) with that many expansion goroutines; a negative
	// count uses GOMAXPROCS. Both engines number states
	// identically, so Check results, graphs, traces, and the SCC analyses
	// are byte-for-byte independent of this setting. Invariant predicates
	// must be safe for concurrent use when Workers != 0 (the stock
	// invariants are pure reads and qualify).
	Workers int
	// Symmetry enables process-symmetry reduction: the visited store keys
	// states on the canonical representative of their permutation orbit,
	// so of every orbit only the first-encountered concrete state is
	// numbered and expanded (duplicate detection only — counterexample
	// traces stay concrete, reachable executions). Requires the program to
	// declare gcl.FullSymmetry and be canonicalizable; otherwise — and
	// when crash transitions are restricted to a proper subset of
	// processes, which breaks the symmetry — the full search runs and
	// Result.Symmetry reports false. Invariants must be symmetric in the
	// process ids (the stock ones are). Deterministic for any Workers
	// setting. BuildGraph composes too: it produces the quotient graph
	// with permutation-annotated edges, on which the SCC/starvation/
	// no-progress analyses run orbit-aware (see quotient.go); CheckFCFS
	// canonicalizes over the subgroup fixing its pinned pair. Each entry
	// point's reduction gating is declared in analysis.go.
	Symmetry bool
	// POR enables ample-set partial-order reduction: at states where some
	// process's every enabled branch is local (touches nothing shared —
	// proved by the gcl footprint analysis) and invisible (cannot change
	// any configured invariant, per the invariants' Observes declarations),
	// only that process is expanded. Soundness conditions enforced at
	// expansion time: the ample set is one process's complete enabled
	// branch set (C0/C1, backed by the static independence relation), every
	// ample action is invisible (C2), and a state whose ample successor is
	// already in the visited store is expanded fully instead (C3, the BFS
	// cycle proviso — every cycle of the reduced graph contains a fully
	// expanded state, so no enabled action is ignored forever). Verdicts —
	// including deadlocks — are preserved; state and transition counts
	// shrink. Composes with Symmetry (freshness is judged on canonical
	// keys, reducing the orbit quotient further) and stays byte-identical
	// for any Workers count. Falls back to the full search (Result.POR
	// false) when crash transitions are on (crashes reset owned shared
	// cells from every state, so no action is ever safe) or when any
	// invariant omits its Observes declaration. BuildGraph and the
	// graph-based analyses ignore POR: SCC, starvation, FCFS, and
	// refinement are cycle- or identity-sensitive, which the ample
	// reduction does not preserve (analysis.go declares this per entry
	// point; symmetry still applies there).
	POR bool
	// Store selects the visited-set tier (storeopts.go): the zero value is
	// the historical exact in-heap store; StoreCompact/StoreBitstate trade
	// exactness for memory (probabilistic verdicts, Result.Store reports
	// the omission bound), Spill moves state vectors into an mmap-backed
	// arena so the working set can exceed RAM. planFor refuses lossy modes
	// for analyses needing exactness; Check panics on malformed options
	// (commands pre-validate via ParseStoreSpec). Deterministic per Seed
	// for any Workers count.
	Store StoreOptions
}

// DefaultMaxStates bounds exploration when Options.MaxStates is zero.
// Sized so the symmetry-reduced Bakery++ N=5 quotient (≈3.0M states at
// the default M=4) completes with headroom; a run stopping at the bound
// holds roughly a gigabyte of states and store entries.
const DefaultMaxStates = 4_000_000

// BeyondRAMMaxStates is the default bound when a lossy or spill store is
// selected and Options.MaxStates is zero: those modes exist precisely to
// push past the in-heap ceiling, so the default ceiling moves with them.
const BeyondRAMMaxStates = 64_000_000

// Step is one transition of a trace: process Pid executed the action at
// Label (or the pseudo-label "CRASH"), producing State.
type Step struct {
	Pid   int
	Label string
	State gcl.State
}

// Trace is a finite execution from the initial state.
type Trace struct {
	Prog  *gcl.Prog
	Init  gcl.State
	Steps []Step
}

// String renders the trace one state per line.
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "init: %s\n", t.Prog.Format(t.Init))
	for i, st := range t.Steps {
		fmt.Fprintf(&b, "%3d: p%d:%s -> %s\n", i+1, st.Pid, st.Label, t.Prog.Format(st.State))
	}
	return b.String()
}

// Len returns the number of steps.
func (t *Trace) Len() int { return len(t.Steps) }

// Violation reports an invariant failure with a shortest counterexample.
type Violation struct {
	Invariant string
	Trace     Trace
}

// Result summarises a check.
type Result struct {
	Prog        *gcl.Prog
	States      int
	Transitions int
	Depth       int
	// Complete reports that the whole reachable state space was explored
	// (no violation, no MaxStates cutoff). Under symmetry reduction
	// "whole" means one representative per encountered orbit.
	Complete  bool
	Violation *Violation
	Deadlock  *Trace
	// Symmetry reports that symmetry reduction was actually applied (it
	// was requested and the program supports it).
	Symmetry bool
	// POR reports that ample-set partial-order reduction was actually
	// applied (requested, no crash transitions, all invariants declare
	// their observations).
	POR bool
	// Store reports the visited-set tier the run used; nil for the default
	// exact in-heap store. Lossy runs carry the expected-omission bound and
	// must surface Store.Banner() next to the verdict.
	Store   *StoreReport
	Elapsed time.Duration
}

// RunFingerprint digests the run's deterministic outcome — state,
// transition and depth counts, verdict class, store mode/seed/entry count —
// into one value that is stable per seed for ANY Workers setting. The CI
// determinism smoke compares it between a single-core and a fully parallel
// run of the same lossy exploration.
func (r *Result) RunFingerprint() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint64(r.States))
	mix(uint64(r.Transitions))
	mix(uint64(r.Depth))
	var verdict uint64
	if r.Violation != nil {
		verdict |= 1
	}
	if r.Deadlock != nil {
		verdict |= 2
	}
	if r.Complete {
		verdict |= 4
	}
	mix(verdict)
	if r.Store != nil {
		mix(r.Store.Seed)
		mix(uint64(r.Store.Entries))
		for _, c := range []byte(r.Store.Mode) {
			h ^= uint64(c)
			h *= 1099511628211
		}
	}
	return h
}

// String renders a one-line verification summary.
func (r *Result) String() string {
	status := "OK"
	switch {
	case r.Violation != nil:
		status = "VIOLATION of " + r.Violation.Invariant
	case r.Deadlock != nil:
		status = "DEADLOCK"
	case !r.Complete:
		status = "INCOMPLETE (state bound reached)"
	}
	sym := ""
	if r.Symmetry {
		sym = " [symmetry-reduced]"
	}
	if r.POR {
		sym += " [por-reduced]"
	}
	return fmt.Sprintf("%s: %s — %d states, %d transitions, depth %d, %v%s",
		r.Prog.Name, status, r.States, r.Transitions, r.Depth, r.Elapsed.Round(time.Millisecond), sym)
}

// crashLabel is the pseudo-label recorded for crash transitions.
const crashLabel = "CRASH"

// crashLabelIdx is the sentinel label index carried by crash
// pseudo-transitions and by the initial state's parent edge; labelName
// renders it as crashLabel.
const crashLabelIdx = int32(-1)

// wctx is one expansion context: the per-worker scratch the hot path
// allocates from. The sequential engine owns one; the parallel engine keeps
// one per expansion goroutine. buf is reset once per BFS head (sequential)
// or once per chunk (parallel), recycling every successor vector, canonical
// key copy, and crash state generated since; canon is the reusable
// canonicalizer (nil when the run is not symmetry-reduced).
type wctx struct {
	buf   gcl.SuccBuf
	canon *gcl.Canonicalizer
	// slab and fps are the batched store-probe scratch behind prepSuccs:
	// under symmetry a whole successor run canonicalizes into the
	// structure-of-arrays key slab in one call; otherwise only the
	// fingerprint batch is computed (the key is the state itself). preps is
	// the per-worker probe scratch the parallel engine's expansion fills.
	// All recycled on the same cadence as buf.
	slab  gcl.KeySlab
	fps   []uint64
	preps []prep
}

// retainArena is append-only bump storage for data that must live for the
// whole exploration: numbered state vectors and the canonical keys the
// exact stores retain. Blocks are never moved or freed, so returned slices
// stay valid forever; compared with one heap allocation per state this
// drops both allocator traffic and GC scan cost (a few large blocks instead
// of millions of tiny pointers).
type retainArena struct {
	blocks [][]int32
	off    int
}

// retainBlock is the arena block size in int32 words (1 MiB).
const retainBlock = 1 << 18

// retain copies s into the arena and returns the stable copy.
func (a *retainArena) retain(s gcl.State) gcl.State {
	n := len(s)
	if len(a.blocks) == 0 || a.off+n > len(a.blocks[len(a.blocks)-1]) {
		sz := retainBlock
		if n > sz {
			sz = n
		}
		a.blocks = append(a.blocks, make([]int32, sz))
		a.off = 0
	}
	blk := a.blocks[len(a.blocks)-1]
	out := blk[a.off : a.off+n : a.off+n]
	a.off += n
	copy(out, s)
	return out
}

// sameSlice reports whether two states share the same backing array cell 0
// (i.e. key IS s, not a copy) — the promote-on-fresh alias check.
func sameSlice(a, b gcl.State) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

// explorer is the shared BFS engine behind Check and BuildGraph. Its
// visited set is a StateStore (store.go): fingerprint-keyed, Equal- (or,
// under symmetry, canonical-)confirmed, so the sequential engine shares
// the allocation-light scheme the parallel engine always used instead of
// keying a map on Prog.Key strings.
type explorer struct {
	p        *gcl.Prog
	opts     Options
	plan     Plan
	store    StateStore
	symmetry bool // orbit dedup actually applied
	por      bool // ample-set reduction actually applied
	// trackPerms annotates graph edges with the permutation relating each
	// concrete successor to its orbit's stored representative; canonPerm
	// records, per stored state, the index of its canonical witnessing
	// permutation (see quotient.go).
	trackPerms bool
	canonPerm  []int32
	// porOK[label][branch] marks branches eligible to form ample sets:
	// local-only per the gcl footprint analysis, and invisible (neither
	// endpoint label observed by any invariant).
	porOK [][]bool
	// porGuardShared[label][branch] marks branches whose guards read
	// shared state: while disabled, another process's write can enable
	// them, so their process cannot be singled out (see ampleProcessOK).
	porGuardShared [][]bool
	// prepBuf holds the current head's prepared store probes, aligned
	// index-for-index with its successor list: the ample segment is
	// batch-prepared first for the C3 proviso check, the remainder only when
	// the proviso fails, so committed reductions never canonicalize twice.
	// Sequential engine only.
	prepBuf []prep
	// chaseCap bounds local-chain compression so a cycle of local actions
	// (a local spin) cannot chase forever.
	chaseCap int
	// State-vector residency (stateAt/appendState/releaseState). With the
	// default stores every numbered state's vector sits in states. Under
	// Spill the vectors live in the mmap arena ar instead, offs holding one
	// offset per state, and states stays empty. Under a lossy store without
	// spill, vectors are kept only until their state is expanded (release
	// true) — the visited set holds fingerprints, the frontier holds the
	// only live vectors, and traces are gone (traceable false).
	ar        *arena
	offs      []int64
	release   bool
	traceable bool
	states    []gcl.State
	parent    []int32
	parentBy  []int32 // pid of the action producing this state; -1 for init
	parentLb  []int32 // label index of the producing action; crashLabelIdx for crashes/init
	depth     []int32
	crashers  []int
	// wc is the sequential engine's expansion context; the parallel engine
	// carries its own per-worker contexts and leaves this one to the merge
	// pass. ret is the retained-state arena backing states (and, for the
	// exact stores, promoted canonical keys); stableKeys marks store tiers
	// that retain the Insert key slice (seq/sharded exact stores), requiring
	// keys to be promoted out of the per-chunk scratch buffers before
	// insertion.
	wc         wctx
	ret        retainArena
	stableKeys bool
}

// newExplorer builds the engine state for one exploration executing the
// given reduction plan (see analysis.go; planFor gates every reduction on
// soundness for the requesting analysis, e.g. crashing only a proper
// subset of processes distinguishes their identities and disables
// symmetry).
func newExplorer(p *gcl.Prog, opts Options, sharded bool, plan Plan) *explorer {
	if opts.MaxStates == 0 {
		opts.MaxStates = DefaultMaxStates
		if plan.Store.Lossy() || plan.Store.Spill {
			opts.MaxStates = BeyondRAMMaxStates
		}
	}
	e := &explorer{p: p, opts: opts, plan: plan}
	e.traceable = !plan.Store.Lossy() || plan.Store.Spill
	e.release = plan.Store.Lossy() && !plan.Store.Spill
	if plan.Store.Spill {
		ar, err := newArena(plan.Store.SpillDir)
		if err != nil {
			panic(err)
		}
		e.ar = ar
	}
	e.crashers = crashersOf(p, opts)
	e.symmetry = plan.Symmetry
	e.trackPerms = plan.TrackPerms
	e.por = plan.POR
	if e.por {
		e.porOK = porEligibility(p, opts.Invariants)
		e.porGuardShared = make([][]bool, len(p.Labels()))
		for li := range e.porGuardShared {
			e.porGuardShared[li] = make([]bool, p.NumBranchesAt(li))
			for bi := range e.porGuardShared[li] {
				e.porGuardShared[li][bi] = p.BranchGuardReadsShared(li, bi)
			}
		}
		e.chaseCap = p.N*len(p.Labels()) + 8
	}
	e.stableKeys = !plan.Store.Lossy() && !plan.Store.Spill
	if plan.Symmetry || plan.TrackPerms {
		e.wc.canon = p.NewCanonicalizer()
	}
	e.store = newStateStore(p, sharded, plan, e.ar)
	return e
}

// numStates is the count of numbered states, independent of where their
// vectors live.
func (e *explorer) numStates() int {
	if e.ar != nil {
		return len(e.offs)
	}
	return len(e.states)
}

// stateAt returns state i's vector: the in-heap slice, or a fresh decode
// from the spill arena. Under a lossy non-spill store the vector is only
// valid until releaseState(i) runs (after i's expansion).
func (e *explorer) stateAt(i int32) gcl.State {
	if e.ar != nil {
		return e.ar.state(e.offs[i])
	}
	return e.states[i]
}

// appendState numbers a fresh state and stores its vector per the
// residency mode; returns the new index. The incoming vector may live in a
// worker's recycled scratch buffer, so every residency mode copies: spill
// into the mmap arena, release mode into a short-lived heap clone (freed at
// expansion), and the default exact mode into the retained arena.
func (e *explorer) appendState(s gcl.State) int32 {
	if e.ar != nil {
		off, err := e.ar.append(s)
		if err != nil {
			panic(err) // disk exhaustion mid-exploration: nothing sound to do
		}
		e.offs = append(e.offs, off)
		return int32(len(e.offs) - 1)
	}
	if e.release {
		e.states = append(e.states, append(gcl.State(nil), s...))
	} else {
		e.states = append(e.states, e.ret.retain(s))
	}
	return int32(len(e.states) - 1)
}

// releaseState drops state i's vector once it has been expanded — the
// lossy non-spill memory win: only the frontier holds vectors.
func (e *explorer) releaseState(i int) {
	if e.release {
		e.states[i] = nil
	}
}

// storeReport extracts the store tier's accounting, stamping engine-side
// traceability; nil for the plain exact in-heap stores.
func (e *explorer) storeReport() *StoreReport {
	sr, ok := e.store.(StoreReporter)
	if !ok {
		return nil
	}
	rep := sr.Report()
	rep.Traceable = e.traceable
	return &rep
}

// porEligibility precomputes, per label and branch, whether the branch may
// sit in an ample set: it must be local-only (no shared reads or writes —
// independent of every other process's actions, per the footprint
// analysis) and invisible (its source and target labels are observed by no
// invariant; local-only already rules out shared-value observations).
func porEligibility(p *gcl.Prog, invs []Invariant) [][]bool {
	observed := map[int]bool{}
	for _, inv := range invs {
		for _, lbl := range inv.Observes.Labels {
			if p.HasLabel(lbl) {
				observed[p.LabelIndex(lbl)] = true
			}
		}
	}
	out := make([][]bool, len(p.Labels()))
	for li := range out {
		out[li] = make([]bool, p.NumBranchesAt(li))
		for bi := range out[li] {
			out[li][bi] = p.BranchLocalOnly(li, bi) &&
				!observed[li] && !observed[p.BranchNext(li, bi)]
		}
	}
	return out
}

// crashersCoverAll reports whether pids covers every process 0..n-1.
func crashersCoverAll(pids []int, n int) bool {
	covered := make([]bool, n)
	distinct := 0
	for _, pid := range pids {
		if pid >= 0 && pid < n && !covered[pid] {
			covered[pid] = true
			distinct++
		}
	}
	return distinct == n
}

// prep is a successor's prepared store probe, cached across the C3
// proviso check and the committed insertion. perm is the index of the
// canonical witnessing permutation when the exploration tracks
// permutations (0 otherwise).
type prep struct {
	fp   uint64
	key  gcl.State
	perm int32
}

// prepareProbe computes the store probe for s using the expansion context's
// reusable canonicalizer. The canonical key is copied into the context's
// scratch buffer (the canonicalizer's own scratch is overwritten by its
// next call, and POR keeps a batch of probes alive across one head's ample
// check), so the key stays valid until the context resets — long enough for
// the single-threaded insertion pass to promote fresh keys to stable
// storage. Under permutation tracking it additionally ranks the canonical
// witnessing permutation, sharing the single canonicalization pass.
func (e *explorer) prepareProbe(w *wctx, s gcl.State) (uint64, gcl.State, int32) {
	if w.canon == nil {
		fp, key := e.store.Prepare(s)
		return fp, key, 0
	}
	if e.trackPerms {
		c, perm := w.canon.CanonicalizeWithPerm(s)
		return c.Fingerprint(), w.buf.CopyIn(c), int32(e.p.PermIndexOf(perm))
	}
	c := w.canon.Canonicalize(s)
	return c.Fingerprint(), w.buf.CopyIn(c), 0
}

// add registers a state, returning its index and whether it was new.
func (e *explorer) add(w *wctx, s gcl.State, parent int32, byPid int32, labelIdx int32) (int32, bool) {
	fp, key, perm := e.prepareProbe(w, s)
	return e.addPrepared(fp, key, perm, s, parent, byPid, labelIdx)
}

// prepSuccs prepares the store probes for a run of successors in one batch,
// writing succs[i]'s probe into dst[i]. Under symmetry the whole run is
// canonicalized into the context's key slab — a contiguous
// structure-of-arrays pass with no per-state scratch copy (gcl.KeySlab);
// otherwise the key is the successor state itself and only the fingerprint
// batch is computed. The engines reach the canon == nil arm exactly when
// the plan involves no canonicalization and no extra key words, where every
// store tier's Prepare degenerates to (s.Fingerprint(), s) — see prepare().
func (e *explorer) prepSuccs(w *wctx, succs []gcl.Succ, dst []prep) {
	if len(succs) == 0 {
		return
	}
	if w.canon == nil {
		w.fps = gcl.FingerprintSuccs(succs, w.fps)
		for i := range succs {
			dst[i] = prep{fp: w.fps[i], key: succs[i].State}
		}
		return
	}
	var base int
	if e.trackPerms {
		base = w.canon.CanonicalizeBatchPerms(succs, &w.slab)
	} else {
		base = w.canon.CanonicalizeBatch(succs, &w.slab)
	}
	for i := range succs {
		dst[i] = prep{fp: w.slab.Fp(base + i), key: w.slab.Key(base + i), perm: w.slab.PermIdx(base + i)}
	}
}

// growPreps resizes a probe scratch buffer to hold n entries, reusing its
// capacity.
func growPreps(buf []prep, n int) []prep {
	if cap(buf) < n {
		return make([]prep, n)
	}
	return buf[:n]
}

// addPrepared is add with the store probe already computed — the reduced
// expansion path prepares each ample candidate once in ampleOK and must
// not pay a second canonicalization here. The exact stores retain the
// Insert key slice, and both s and key may point into recycled scratch, so
// a fresh insertion promotes the key to stable storage first: when the key
// IS the state (no symmetry), the just-retained numbered vector serves as
// the key for free; a distinct canonical key gets its own arena copy.
func (e *explorer) addPrepared(fp uint64, key gcl.State, perm int32, s gcl.State, parent int32, byPid int32, labelIdx int32) (int32, bool) {
	if idx, ok := e.store.Lookup(fp, key); ok {
		return idx, false
	}
	idx := e.appendState(s)
	if e.stableKeys {
		if sameSlice(key, s) {
			key = e.states[idx]
		} else {
			key = e.ret.retain(key)
		}
	}
	e.store.Insert(fp, key, idx)
	if e.traceable {
		e.parent = append(e.parent, parent)
		e.parentBy = append(e.parentBy, byPid)
		e.parentLb = append(e.parentLb, labelIdx)
	}
	if e.trackPerms {
		e.canonPerm = append(e.canonPerm, perm)
	}
	if parent < 0 {
		e.depth = append(e.depth, 0)
	} else {
		e.depth = append(e.depth, e.depth[parent]+1)
	}
	return idx, true
}

// labelName renders a recorded label index; the crash sentinel renders as
// the crash pseudo-label.
func (e *explorer) labelName(idx int32) string {
	if idx < 0 {
		return crashLabel
	}
	return e.p.LabelName(int(idx))
}

// edgePermIdx computes ρ, the permutation annotating a graph edge: the
// concrete successor canonicalizes with witness π_t (index succPerm), the
// stored representative of its orbit with witness π_j (canonPerm[to]), so
// norm(succ) = Permute(norm(states[to]), ρ) with ρ = π_t⁻¹ ∘ π_j. Fresh
// states ARE their own stored representative (ρ = identity).
func (e *explorer) edgePermIdx(succPerm int32, to int32, fresh bool) int32 {
	if !e.trackPerms || fresh {
		return 0
	}
	return int32(e.p.ComposePermIndex(
		e.p.InvPermIndex(int(succPerm)), int(e.canonPerm[to])))
}

// trace reconstructs the path from the initial state to states[idx].
// Under partial-order reduction an edge may be a compressed local chain;
// edgeSteps re-derives the concrete intermediate transitions, so traces
// are always step-by-step real executions.
func (e *explorer) trace(idx int32) Trace {
	if !e.traceable {
		// Lossy non-spill runs freed the ancestor vectors; the verdict
		// stands, the witness path does not (the banner says how to get it).
		return Trace{Prog: e.p, Init: e.p.InitState()}
	}
	var rev []int32
	for i := idx; i >= 0; i = e.parent[i] {
		rev = append(rev, i)
	}
	t := Trace{Prog: e.p, Init: e.stateAt(rev[len(rev)-1])}
	for k := len(rev) - 2; k >= 0; k-- {
		i := rev[k]
		if e.por {
			t.Steps = append(t.Steps,
				e.edgeSteps(e.stateAt(e.parent[i]), e.stateAt(i), int(e.parentBy[i]), e.labelName(e.parentLb[i]))...)
			continue
		}
		t.Steps = append(t.Steps, Step{
			Pid:   int(e.parentBy[i]),
			Label: e.labelName(e.parentLb[i]),
			State: e.stateAt(i),
		})
	}
	return t
}

// edgeSteps expands one reduced-graph edge into concrete trace steps: a
// plain edge is a single real transition of the recorded process and
// label; a chained edge is re-derived by finding the first action of the
// parent whose state-deterministic local chain ends at the child, and
// replaying it step by step. Every returned step is a real transition.
func (e *explorer) edgeSteps(parent, child gcl.State, pid int, label string) []Step {
	for _, sc := range e.p.Succs(parent, pid, e.opts.Mode, nil) {
		if sc.Label(e.p) == label && sc.State.Equal(child) {
			return []Step{{Pid: pid, Label: label, State: child}}
		}
	}
	// Cold path: replay chains through a local buffer that is never reset,
	// so the returned Steps' state vectors stay valid.
	var buf gcl.SuccBuf
	for _, sc := range e.p.AllSuccs(parent, e.opts.Mode) {
		steps := []Step{{Pid: sc.Pid, Label: sc.Label(e.p), State: sc.State}}
		for hops := 0; hops < e.chaseCap && !sc.State.Equal(child); hops++ {
			next, ok := e.ampleSingle(sc.State, &buf)
			if !ok {
				break
			}
			sc = next
			steps = append(steps, Step{Pid: sc.Pid, Label: e.labelName(sc.LabelIdx), State: sc.State})
		}
		if sc.State.Equal(child) {
			return steps
		}
	}
	panic("mc: cannot reconstruct reduced-graph edge as a concrete chain")
}

// checkInvariants returns the name of the first violated invariant, if any.
func (e *explorer) checkInvariants(s gcl.State) (string, bool) {
	for _, inv := range e.opts.Invariants {
		if !inv.Holds(e.p, s) {
			return inv.Name, true
		}
	}
	return "", false
}

// checkInvariantsIdx returns the index into Options.Invariants of the first
// violated invariant, or -1 — the form the parallel engine's candidate
// records carry (an int32 instead of a name string keeps them compact).
func (e *explorer) checkInvariantsIdx(s gcl.State) int32 {
	for i := range e.opts.Invariants {
		if !e.opts.Invariants[i].Holds(e.p, s) {
			return int32(i)
		}
	}
	return -1
}

// successors yields all program successors of s plus crash transitions,
// together with the ample segment: when POR is on and some process's
// every enabled branch is ample-eligible, aPid is the lowest such pid and
// succs[aLo:aHi] are exactly its successors (aPid is -1 otherwise). The
// caller commits to the segment only if every state in it is absent from
// the visited store (the C3 proviso); the full list is always returned so
// deadlock detection and proviso fallback need no recomputation.
func (e *explorer) successors(s gcl.State, w *wctx) (succs []gcl.Succ, aPid, aLo, aHi int) {
	buf := &w.buf
	base := len(buf.Succs())
	aPid = -1
	for pid := 0; pid < e.p.N; pid++ {
		start := len(buf.Succs())
		e.p.SuccsInto(s, pid, e.opts.Mode, buf)
		sl := buf.Succs()
		if e.por && aPid < 0 && len(sl) > start &&
			e.ampleProcessOK(e.p.PC(s, pid), sl[start:]) {
			aPid, aLo, aHi = pid, start-base, len(sl)-base
		}
	}
	succs = buf.Succs()[base:]
	if e.por {
		// Local-chain compression (Lipton-style step merging): every
		// emitted successor is chased through the run of single-candidate
		// ample steps that follows it, and only the chain's end is
		// emitted. The skipped intermediates cannot violate an invariant
		// (every chained action is invisible, and the stored predecessor
		// already passed), cannot deadlock (they have the chain action
		// enabled), and cannot disable any deferred action of another
		// process (chained actions are independent of everything), so the
		// deferred actions are all still enabled at the chain's end, which
		// is stored and expanded normally. Storing intermediates would
		// only record dead interleaving bookkeeping — and, under symmetry,
		// manufacture straggler orbits whose sole difference from stored
		// states is a process sitting a few local steps behind.
		for i := range succs {
			succs[i] = e.chase(succs[i], buf)
		}
	}
	for _, pid := range e.crashers {
		dst := buf.Alloc(len(s))
		e.p.CrashSuccInto(dst, s, pid)
		buf.Append(gcl.Succ{State: dst, Pid: pid, LabelIdx: crashLabelIdx})
	}
	return buf.Succs()[base:], aPid, aLo, aHi
}

// ampleProcessOK reports whether a process's complete branch set at pc
// permits singling it out as the ample process, given its currently
// enabled successors: every enabled branch must be eligible (local and
// invisible), and every disabled branch must have a guard free of shared
// reads — a disabled shared-guarded branch could be enabled by another
// process's write before the ample action fires, which would execute a
// dependent action first and violate C1. Guards without shared reads
// cannot change truth while their process stands still, so such disabled
// branches stay disabled until after the ample action.
func (e *explorer) ampleProcessOK(pc int, enabled []gcl.Succ) bool {
	var mask uint64
	for i := range enabled {
		mask |= 1 << uint(enabled[i].Branch)
	}
	return e.ampleProcessOKMask(pc, mask)
}

// ampleProcessOKMask is ampleProcessOK on an enabled-branch bitmask.
func (e *explorer) ampleProcessOKMask(pc int, enabled uint64) bool {
	nb := len(e.porOK[pc])
	if nb > 64 {
		return false
	}
	for bi := 0; bi < nb; bi++ {
		if enabled&(1<<uint(bi)) != 0 {
			if !e.porOK[pc][bi] {
				return false
			}
		} else if e.porGuardShared[pc][bi] {
			return false
		}
	}
	return true
}

// ampleSingle reports the unique ample candidate of u, if the ample
// process exists and has exactly one enabled branch: the precondition for
// continuing a local chain. Selection mirrors successors exactly (lowest
// eligible pid), which is what lets traces re-derive chains. Eligibility
// is decided from guard evaluation alone; the one successor state is
// materialised only when the chain actually continues.
func (e *explorer) ampleSingle(u gcl.State, buf *gcl.SuccBuf) (gcl.Succ, bool) {
	for pid := 0; pid < e.p.N; pid++ {
		mask := e.p.EnabledMask(u, pid, buf)
		if mask == 0 {
			continue
		}
		pc := e.p.PC(u, pid)
		if !e.ampleProcessOKMask(pc, mask) {
			continue
		}
		if mask&(mask-1) != 0 {
			return gcl.Succ{}, false // nondeterministic local step: chain stops
		}
		bi := bits.TrailingZeros64(mask)
		dst := buf.Alloc(len(u))
		ov := e.p.ApplyInto(dst, u, pid, bi, e.opts.Mode, buf)
		return gcl.Succ{State: dst, Pid: pid, LabelIdx: int32(pc), Branch: bi, Overflow: ov}, true
	}
	return gcl.Succ{}, false
}

// chase follows single-candidate ample steps from sc's state, bounded by
// chaseCap (a cycle of local actions would otherwise spin), and returns
// the chain's last transition. Purely state-deterministic — no store
// access — so expansion workers may chase concurrently and traces can
// replay the same chain later.
func (e *explorer) chase(sc gcl.Succ, buf *gcl.SuccBuf) gcl.Succ {
	for hops := 0; hops < e.chaseCap; hops++ {
		next, ok := e.ampleSingle(sc.State, buf)
		if !ok {
			return sc
		}
		sc = next
	}
	return sc
}

// ampleOKPrep decides the BFS cycle proviso (C3) for a state at depth d
// over already-prepared probes: a reduced expansion is allowed only if
// every ample successor is either not yet in the visited store (it will be
// numbered at depth d+1) or already stored at exactly depth d+1. Every edge
// a reduced expansion keeps therefore strictly increases depth by one, and
// depth cannot strictly increase around a cycle, so every cycle of the
// reduced graph contains at least one fully expanded state — no enabled
// action is ignored forever. (The classic stricter proviso — all
// successors fresh — breaks ties the same way but refuses harmless
// cross-edges within the next BFS level, which in diamond-shaped
// interleaving lattices vetoes most reductions.)
func (e *explorer) ampleOKPrep(preps []prep, d int32) bool {
	for i := range preps {
		if idx, ok := e.store.Lookup(preps[i].fp, preps[i].key); ok && e.depth[idx] != d+1 {
			return false
		}
	}
	return true
}

// Check explores the reachable states of p breadth-first, verifying the
// configured invariants, and returns as soon as a violation or deadlock is
// found (the BFS order makes the returned counterexample shortest).
// Options.Workers selects between the sequential engine below and the
// parallel engine; both produce identical results.
func Check(p *gcl.Prog, opts Options) *Result {
	plan, err := planFor(p, opts, SafetyAnalysis{Invariants: opts.Invariants})
	if err != nil {
		// Safety never needs exactness, so only malformed StoreOptions land
		// here — a programming error (commands pre-validate via
		// ParseStoreSpec).
		panic(err)
	}
	if opts.Workers != 0 {
		return checkParallel(p, opts, plan)
	}
	start := time.Now()
	e := newExplorer(p, opts, false, plan)
	res := &Result{Prog: p, Symmetry: e.symmetry, POR: e.por}

	finish := func() *Result {
		res.States = e.numStates()
		res.Store = e.storeReport()
		res.Elapsed = time.Since(start)
		return res
	}

	init := p.InitState()
	idx, _ := e.add(&e.wc, init, -1, -1, crashLabelIdx)
	if name, bad := e.checkInvariants(init); bad {
		t := e.trace(idx)
		res.Violation = &Violation{Invariant: name, Trace: t}
		return finish()
	}

	for head := 0; head < e.numStates(); head++ {
		if e.numStates() >= e.opts.MaxStates {
			return finish()
		}
		// One head, one buffer generation: every successor vector, canonical
		// key, chase intermediate, and slab-packed probe below lives in
		// e.wc's scratch and is recycled here. Fresh states were promoted
		// out by addPrepared.
		e.wc.buf.Reset()
		e.wc.slab.Reset()
		s := e.stateAt(int32(head))
		res.Depth = int(e.depth[head])
		succs, aPid, aLo, aHi := e.successors(s, &e.wc)
		progress := false
		for _, sc := range succs {
			if sc.LabelIdx >= 0 {
				progress = true
				break
			}
		}
		// Probes are batch-prepared into prepBuf, index-aligned with succs.
		// A committed reduction prepares and walks only the ample segment;
		// on proviso failure the complement is prepared too — the segment's
		// probes are never recomputed.
		e.prepBuf = growPreps(e.prepBuf, len(succs))
		use, preps := succs, e.prepBuf
		if aPid >= 0 {
			e.prepSuccs(&e.wc, succs[aLo:aHi], e.prepBuf[aLo:aHi])
			if e.ampleOKPrep(e.prepBuf[aLo:aHi], e.depth[head]) {
				use, preps = succs[aLo:aHi], e.prepBuf[aLo:aHi]
			} else {
				e.prepSuccs(&e.wc, succs[:aLo], e.prepBuf[:aLo])
				e.prepSuccs(&e.wc, succs[aHi:], e.prepBuf[aHi:])
			}
		} else {
			e.prepSuccs(&e.wc, succs, e.prepBuf)
		}
		for i, sc := range use {
			res.Transitions++
			pr := &preps[i]
			idx, fresh := e.addPrepared(pr.fp, pr.key, pr.perm, sc.State, int32(head), int32(sc.Pid), sc.LabelIdx)
			if !fresh {
				continue
			}
			if name, bad := e.checkInvariants(sc.State); bad {
				t := e.trace(idx)
				res.Violation = &Violation{Invariant: name, Trace: t}
				return finish()
			}
		}
		if opts.Deadlock && !progress {
			t := e.trace(int32(head))
			res.Deadlock = &t
			return finish()
		}
		e.releaseState(head)
	}
	res.Complete = true
	return finish()
}
