// Package mc is an explicit-state model checker for gcl programs — this
// repository's stand-in for the TLC model checker the paper used to verify
// Bakery++. Like TLC's safety mode, it enumerates the reachable states of
// the interleaving semantics breadth-first, evaluates invariants on every
// state, detects deadlocks, and reconstructs a shortest counterexample
// trace when a check fails.
//
// Beyond plain safety checking it can (a) add crash/restart transitions
// implementing the paper's correctness conditions 3–4, (b) build the full
// reachability graph, and (c) search the graph for starvation scenarios
// such as the Section 6.3 livelock (a slow process pinned at L1 while fast
// processes cycle through their critical sections) via strongly-connected
// component analysis.
package mc

import (
	"fmt"
	"strings"
	"time"

	"bakerypp/internal/gcl"
)

// Invariant is a named state predicate that must hold on every reachable
// state.
type Invariant struct {
	Name  string
	Holds func(p *gcl.Prog, s gcl.State) bool
}

// Mutex is the mutual-exclusion invariant: at most one process resides at
// the label "cs" (the specs package convention for "inside the critical
// section").
func Mutex() Invariant {
	return Invariant{
		Name: "mutual-exclusion",
		Holds: func(p *gcl.Prog, s gcl.State) bool {
			return p.CountAtLabel(s, "cs") <= 1
		},
	}
}

// NoOverflow is the paper's overflow invariant: no shared register ever
// holds a value greater than the program's capacity M ("we say an overflow
// occurs if C tries to store a value v > M", Section 3). Programs are
// checked in ModeUnbounded, so an attempted over-store is visible as a
// reachable state holding the raw value.
func NoOverflow() Invariant {
	return Invariant{
		Name: "no-overflow",
		Holds: func(p *gcl.Prog, s gcl.State) bool {
			if p.M <= 0 {
				return true
			}
			for _, name := range p.SharedNames() {
				if int64(p.MaxShared(s, name)) > p.M {
					return false
				}
			}
			return true
		},
	}
}

// AtMostAtLabel bounds how many processes may simultaneously sit at a label.
func AtMostAtLabel(label string, k int) Invariant {
	return Invariant{
		Name: fmt.Sprintf("at-most-%d-at-%s", k, label),
		Holds: func(p *gcl.Prog, s gcl.State) bool {
			return p.CountAtLabel(s, label) <= k
		},
	}
}

// Options configures a check.
type Options struct {
	// Invariants to verify; both Check and BuildGraph evaluate them.
	Invariants []Invariant
	// Deadlock, when set, reports a state in which no process has an
	// enabled action. Crash transitions do not count as progress.
	Deadlock bool
	// Crash adds crash/restart transitions for the processes listed in
	// CrashPids (all processes when empty): at any moment a process may
	// reset its owned registers and locals and return to "ncs".
	Crash     bool
	CrashPids []int
	// MaxStates bounds exploration; 0 means DefaultMaxStates. Exceeding
	// the bound stops the search with Complete = false.
	MaxStates int
	// Mode is the store semantics; model checking uses ModeUnbounded so
	// the NoOverflow invariant can observe attempted over-stores.
	Mode gcl.Mode
	// Workers selects the exploration engine. 0 (the default) runs the
	// sequential BFS; a positive count runs the chunked parallel engine
	// (see parallel.go) with that many expansion goroutines; a negative
	// count uses GOMAXPROCS. Both engines number states
	// identically, so Check results, graphs, traces, and the SCC analyses
	// are byte-for-byte independent of this setting. Invariant predicates
	// must be safe for concurrent use when Workers != 0 (the stock
	// invariants are pure reads and qualify).
	Workers int
	// Symmetry enables process-symmetry reduction: the visited store keys
	// states on the canonical representative of their permutation orbit,
	// so of every orbit only the first-encountered concrete state is
	// numbered and expanded (duplicate detection only — counterexample
	// traces stay concrete, reachable executions). Requires the program to
	// declare gcl.FullSymmetry and be canonicalizable; otherwise — and
	// when crash transitions are restricted to a proper subset of
	// processes, which breaks the symmetry — the full search runs and
	// Result.Symmetry reports false. Invariants must be symmetric in the
	// process ids (the stock ones are). Deterministic for any Workers
	// setting.
	Symmetry bool
}

// DefaultMaxStates bounds exploration when Options.MaxStates is zero.
// Sized so the symmetry-reduced Bakery++ N=5 quotient (≈3.0M states at
// the default M=4) completes with headroom; a run stopping at the bound
// holds roughly a gigabyte of states and store entries.
const DefaultMaxStates = 4_000_000

// Step is one transition of a trace: process Pid executed the action at
// Label (or the pseudo-label "CRASH"), producing State.
type Step struct {
	Pid   int
	Label string
	State gcl.State
}

// Trace is a finite execution from the initial state.
type Trace struct {
	Prog  *gcl.Prog
	Init  gcl.State
	Steps []Step
}

// String renders the trace one state per line.
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "init: %s\n", t.Prog.Format(t.Init))
	for i, st := range t.Steps {
		fmt.Fprintf(&b, "%3d: p%d:%s -> %s\n", i+1, st.Pid, st.Label, t.Prog.Format(st.State))
	}
	return b.String()
}

// Len returns the number of steps.
func (t *Trace) Len() int { return len(t.Steps) }

// Violation reports an invariant failure with a shortest counterexample.
type Violation struct {
	Invariant string
	Trace     Trace
}

// Result summarises a check.
type Result struct {
	Prog        *gcl.Prog
	States      int
	Transitions int
	Depth       int
	// Complete reports that the whole reachable state space was explored
	// (no violation, no MaxStates cutoff). Under symmetry reduction
	// "whole" means one representative per encountered orbit.
	Complete  bool
	Violation *Violation
	Deadlock  *Trace
	// Symmetry reports that symmetry reduction was actually applied (it
	// was requested and the program supports it).
	Symmetry bool
	Elapsed  time.Duration
}

// String renders a one-line verification summary.
func (r *Result) String() string {
	status := "OK"
	switch {
	case r.Violation != nil:
		status = "VIOLATION of " + r.Violation.Invariant
	case r.Deadlock != nil:
		status = "DEADLOCK"
	case !r.Complete:
		status = "INCOMPLETE (state bound reached)"
	}
	sym := ""
	if r.Symmetry {
		sym = " [symmetry-reduced]"
	}
	return fmt.Sprintf("%s: %s — %d states, %d transitions, depth %d, %v%s",
		r.Prog.Name, status, r.States, r.Transitions, r.Depth, r.Elapsed.Round(time.Millisecond), sym)
}

// crashLabel is the pseudo-label recorded for crash transitions.
const crashLabel = "CRASH"

// explorer is the shared BFS engine behind Check and BuildGraph. Its
// visited set is a StateStore (store.go): fingerprint-keyed, Equal- (or,
// under symmetry, canonical-)confirmed, so the sequential engine shares
// the allocation-light scheme the parallel engine always used instead of
// keying a map on Prog.Key strings.
type explorer struct {
	p        *gcl.Prog
	opts     Options
	store    StateStore
	symmetry bool // reduction actually applied
	states   []gcl.State
	parent   []int32
	parentBy []int32 // pid of the action producing this state; -1 for init
	parentLb []string
	depth    []int32
	crashers []int
}

func newExplorer(p *gcl.Prog, opts Options, sharded bool) *explorer {
	if opts.MaxStates == 0 {
		opts.MaxStates = DefaultMaxStates
	}
	e := &explorer{p: p, opts: opts}
	if opts.Crash {
		e.crashers = opts.CrashPids
		if len(e.crashers) == 0 {
			for pid := 0; pid < p.N; pid++ {
				e.crashers = append(e.crashers, pid)
			}
		}
	}
	// Crashing only a proper subset of processes distinguishes their
	// identities, so symmetry reduction would be unsound there. The gate
	// compares the crasher SET against {0..N-1} — a duplicated CrashPids
	// entry must not masquerade as full coverage.
	e.symmetry = opts.Symmetry && p.CanCanonicalize() &&
		(!opts.Crash || crashersCoverAll(e.crashers, p.N))
	e.store = newStateStore(p, sharded, e.symmetry)
	return e
}

// crashersCoverAll reports whether pids covers every process 0..n-1.
func crashersCoverAll(pids []int, n int) bool {
	covered := make([]bool, n)
	distinct := 0
	for _, pid := range pids {
		if pid >= 0 && pid < n && !covered[pid] {
			covered[pid] = true
			distinct++
		}
	}
	return distinct == n
}

// add registers a state, returning its index and whether it was new.
func (e *explorer) add(s gcl.State, parent int32, byPid int32, label string) (int32, bool) {
	fp, key := e.store.Prepare(s)
	if idx, ok := e.store.Lookup(fp, key); ok {
		return idx, false
	}
	idx := int32(len(e.states))
	e.store.Insert(fp, key, idx)
	e.states = append(e.states, s)
	e.parent = append(e.parent, parent)
	e.parentBy = append(e.parentBy, byPid)
	e.parentLb = append(e.parentLb, label)
	if parent < 0 {
		e.depth = append(e.depth, 0)
	} else {
		e.depth = append(e.depth, e.depth[parent]+1)
	}
	return idx, true
}

// trace reconstructs the path from the initial state to states[idx].
func (e *explorer) trace(idx int32) Trace {
	var rev []int32
	for i := idx; i >= 0; i = e.parent[i] {
		rev = append(rev, i)
	}
	t := Trace{Prog: e.p, Init: e.states[rev[len(rev)-1]]}
	for k := len(rev) - 2; k >= 0; k-- {
		i := rev[k]
		t.Steps = append(t.Steps, Step{
			Pid:   int(e.parentBy[i]),
			Label: e.parentLb[i],
			State: e.states[i],
		})
	}
	return t
}

// checkInvariants returns the name of the first violated invariant, if any.
func (e *explorer) checkInvariants(s gcl.State) (string, bool) {
	for _, inv := range e.opts.Invariants {
		if !inv.Holds(e.p, s) {
			return inv.Name, true
		}
	}
	return "", false
}

// successors yields all program successors of s plus crash transitions.
func (e *explorer) successors(s gcl.State) []gcl.Succ {
	succs := e.p.AllSuccs(s, e.opts.Mode)
	for _, pid := range e.crashers {
		succs = append(succs, gcl.Succ{
			State: e.p.CrashSucc(s, pid),
			Pid:   pid,
			Label: crashLabel,
		})
	}
	return succs
}

// Check explores the reachable states of p breadth-first, verifying the
// configured invariants, and returns as soon as a violation or deadlock is
// found (the BFS order makes the returned counterexample shortest).
// Options.Workers selects between the sequential engine below and the
// parallel engine; both produce identical results.
func Check(p *gcl.Prog, opts Options) *Result {
	if opts.Workers != 0 {
		return checkParallel(p, opts)
	}
	start := time.Now()
	e := newExplorer(p, opts, false)
	res := &Result{Prog: p, Symmetry: e.symmetry}

	finish := func() *Result {
		res.States = len(e.states)
		res.Elapsed = time.Since(start)
		return res
	}

	init := p.InitState()
	idx, _ := e.add(init, -1, -1, "")
	if name, bad := e.checkInvariants(init); bad {
		t := e.trace(idx)
		res.Violation = &Violation{Invariant: name, Trace: t}
		return finish()
	}

	for head := 0; head < len(e.states); head++ {
		if len(e.states) >= e.opts.MaxStates {
			return finish()
		}
		s := e.states[head]
		res.Depth = int(e.depth[head])
		succs := e.successors(s)
		progress := false
		for _, sc := range succs {
			if sc.Label != crashLabel {
				progress = true
			}
			res.Transitions++
			idx, fresh := e.add(sc.State, int32(head), int32(sc.Pid), sc.Label)
			if !fresh {
				continue
			}
			if name, bad := e.checkInvariants(sc.State); bad {
				t := e.trace(idx)
				res.Violation = &Violation{Invariant: name, Trace: t}
				return finish()
			}
		}
		if opts.Deadlock && !progress {
			t := e.trace(int32(head))
			res.Deadlock = &t
			return finish()
		}
	}
	res.Complete = true
	return finish()
}
