package mc

import (
	"fmt"
	"testing"

	"bakerypp/internal/gcl"
	"bakerypp/internal/specs"
)

// detModels are the programs the determinism tests compare engines on:
// three algorithm families with different state-space shapes, plus a
// crash-enabled variant to cover crash pseudo-transitions.
func detModels() []struct {
	name string
	p    func() *gcl.Prog
	opts Options
} {
	inv := []Invariant{Mutex(), NoOverflow()}
	return []struct {
		name string
		p    func() *gcl.Prog
		opts Options
	}{
		{"bakerypp-N3-M2", func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 3, M: 2}) }, Options{Invariants: inv}},
		{"peterson-N3", func() *gcl.Prog { return specs.Peterson(3) }, Options{Invariants: inv}},
		{"szymanski-N3", func() *gcl.Prog { return specs.Szymanski(3) }, Options{Invariants: inv}},
		{"bakerypp-N2-M2-crash", func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 2, M: 2}) }, Options{Invariants: inv, Crash: true}},
	}
}

// requireGraphsIdentical asserts that two graphs agree on every observable:
// state count and vectors, numbering, parents, depths, and full edge lists.
func requireGraphsIdentical(t *testing.T, seq, par *Graph) {
	t.Helper()
	if seq.NumStates() != par.NumStates() {
		t.Fatalf("state count differs: sequential %d, parallel %d", seq.NumStates(), par.NumStates())
	}
	if seq.Summary.Transitions != par.Summary.Transitions {
		t.Fatalf("transition count differs: sequential %d, parallel %d",
			seq.Summary.Transitions, par.Summary.Transitions)
	}
	if seq.Summary.Depth != par.Summary.Depth {
		t.Fatalf("depth differs: sequential %d, parallel %d", seq.Summary.Depth, par.Summary.Depth)
	}
	for i := 0; i < seq.NumStates(); i++ {
		if !seq.State(i).Equal(par.State(i)) {
			t.Fatalf("state %d differs:\n  sequential %v\n  parallel   %v", i, seq.State(i), par.State(i))
		}
		if seq.expl.parent[i] != par.expl.parent[i] ||
			seq.expl.parentBy[i] != par.expl.parentBy[i] ||
			seq.expl.parentLb[i] != par.expl.parentLb[i] ||
			seq.expl.depth[i] != par.expl.depth[i] {
			t.Fatalf("BFS tree differs at state %d: sequential (parent=%d by=%d lb=%q d=%d), parallel (parent=%d by=%d lb=%q d=%d)",
				i, seq.expl.parent[i], seq.expl.parentBy[i], seq.expl.parentLb[i], seq.expl.depth[i],
				par.expl.parent[i], par.expl.parentBy[i], par.expl.parentLb[i], par.expl.depth[i])
		}
	}
	if len(seq.Adj) != len(par.Adj) {
		t.Fatalf("adjacency length differs: %d vs %d", len(seq.Adj), len(par.Adj))
	}
	for v := range seq.Adj {
		if len(seq.Adj[v]) != len(par.Adj[v]) {
			t.Fatalf("out-degree of state %d differs: %d vs %d", v, len(seq.Adj[v]), len(par.Adj[v]))
		}
		for k, e := range seq.Adj[v] {
			if e != par.Adj[v][k] {
				t.Fatalf("edge %d of state %d differs: sequential %+v, parallel %+v", k, v, e, par.Adj[v][k])
			}
		}
	}
}

// TestParallelGraphMatchesSequential is the headline determinism guarantee:
// for every model, exploration with Workers=4 yields a graph identical —
// state numbering, parents, edge order — to the sequential engine's, and so
// do the starvation/no-progress analyses built on top of it. Run under
// -race this also exercises the engine's synchronisation.
func TestParallelGraphMatchesSequential(t *testing.T) {
	for _, m := range detModels() {
		t.Run(m.name, func(t *testing.T) {
			seqOpts, parOpts := m.opts, m.opts
			parOpts.Workers = 4
			seq, err := BuildGraph(m.p(), seqOpts)
			if err != nil {
				t.Fatal(err)
			}
			par, err := BuildGraph(m.p(), parOpts)
			if err != nil {
				t.Fatal(err)
			}
			requireGraphsIdentical(t, seq, par)
		})
	}
}

// TestParallelStarvationVerdictsMatch compares the Section 6.3 livelock
// search and the global no-progress search across engines on the paper's
// N=3, M=2 configuration.
func TestParallelStarvationVerdictsMatch(t *testing.T) {
	mk := func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 3, M: 2}) }
	seq, err := BuildGraph(mk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildGraph(mk(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	l1 := seq.expl.p.LabelIndex("l1")
	pin := func(pr *gcl.Prog, s gcl.State) bool { return pr.PC(s, 2) == l1 }
	sr, pr := seq.FindStarvation(pin, []int{0, 1}), par.FindStarvation(pin, []int{0, 1})
	if (sr == nil) != (pr == nil) {
		t.Fatalf("starvation verdicts differ: sequential %v, parallel %v", sr != nil, pr != nil)
	}
	if sr == nil {
		t.Fatal("expected the Section 6.3 livelock cycle on both engines")
	}
	if sr.ComponentSize != pr.ComponentSize || sr.EntryLen != pr.EntryLen {
		t.Fatalf("starvation reports differ: sequential {size=%d entry=%d}, parallel {size=%d entry=%d}",
			sr.ComponentSize, sr.EntryLen, pr.ComponentSize, pr.EntryLen)
	}
	if fmt.Sprint(sr.MovesByPid) != fmt.Sprint(pr.MovesByPid) {
		t.Fatalf("per-pid moves differ: %v vs %v", sr.MovesByPid, pr.MovesByPid)
	}
	if sr.Entry.String() != pr.Entry.String() {
		t.Fatalf("entry traces differ:\nsequential:\n%s\nparallel:\n%s", sr.Entry.String(), pr.Entry.String())
	}
	sn, pn := seq.FindNoProgress([]int{0, 1, 2}), par.FindNoProgress([]int{0, 1, 2})
	if (sn == nil) != (pn == nil) {
		t.Fatalf("no-progress verdicts differ: sequential %v, parallel %v", sn != nil, pn != nil)
	}
}

// TestParallelCheckMatchesSequential compares Check results across engines,
// including a model that violates the overflow invariant (classic Bakery),
// where the counterexample trace and the partial exploration statistics at
// the early stop must also coincide.
func TestParallelCheckMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		p    func() *gcl.Prog
		opts Options
	}{
		{"bakerypp-N3-M2-clean", func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 3, M: 2}) },
			Options{Invariants: []Invariant{Mutex(), NoOverflow()}}},
		{"bakery-N2-M3-overflow", func() *gcl.Prog { return specs.Bakery(specs.Config{N: 2, M: 3}) },
			Options{Invariants: []Invariant{NoOverflow()}}},
		{"modbakery-N2-M2-mutex", func() *gcl.Prog { return specs.ModBakery(2, 2) },
			Options{Invariants: []Invariant{Mutex()}}},
		{"bakerypp-N3-M2-bounded", func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 3, M: 2}) },
			Options{Invariants: []Invariant{Mutex()}, MaxStates: 500}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			seqOpts, parOpts := c.opts, c.opts
			parOpts.Workers = 4
			seq := Check(c.p(), seqOpts)
			par := Check(c.p(), parOpts)
			if seq.States != par.States || seq.Transitions != par.Transitions ||
				seq.Depth != par.Depth || seq.Complete != par.Complete {
				t.Fatalf("results differ:\nsequential: states=%d transitions=%d depth=%d complete=%v\nparallel:   states=%d transitions=%d depth=%d complete=%v",
					seq.States, seq.Transitions, seq.Depth, seq.Complete,
					par.States, par.Transitions, par.Depth, par.Complete)
			}
			if (seq.Violation == nil) != (par.Violation == nil) {
				t.Fatalf("violation verdicts differ: sequential %v, parallel %v",
					seq.Violation != nil, par.Violation != nil)
			}
			if seq.Violation != nil {
				if seq.Violation.Invariant != par.Violation.Invariant {
					t.Fatalf("violated invariant differs: %q vs %q",
						seq.Violation.Invariant, par.Violation.Invariant)
				}
				if seq.Violation.Trace.String() != par.Violation.Trace.String() {
					t.Fatalf("counterexample traces differ:\nsequential:\n%s\nparallel:\n%s",
						seq.Violation.Trace.String(), par.Violation.Trace.String())
				}
			}
		})
	}
}

// TestParallelWorkerCountsAgree pins that the graph does not depend on the
// worker count (1, 2, 4, 8, and GOMAXPROCS via -1 all agree).
func TestParallelWorkerCountsAgree(t *testing.T) {
	mk := func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 2, M: 3}) }
	base, err := BuildGraph(mk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8, -1} {
		g, err := BuildGraph(mk(), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireGraphsIdentical(t, base, g)
	}
}

// TestFingerprintBasics sanity-checks the gcl fingerprint the sharded set
// keys on: stable for equal states, and collision-free across the reachable
// set of a real model (not guaranteed in general, but a collision among a
// few thousand states would indicate a broken hash).
func TestFingerprintBasics(t *testing.T) {
	g, err := BuildGraph(specs.BakeryPP(specs.Config{N: 2, M: 3}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	for i := 0; i < g.NumStates(); i++ {
		s := g.State(i)
		if s.Fingerprint() != g.expl.p.Clone(s).Fingerprint() {
			t.Fatalf("fingerprint of state %d not stable under copy", i)
		}
		if j, dup := seen[s.Fingerprint()]; dup {
			t.Fatalf("fingerprint collision between distinct states %d and %d", j, i)
		}
		seen[s.Fingerprint()] = i
	}
}
