package mc

// Parallel explicit-state exploration. The engine alternates two phases
// over chunks of the BFS queue: a pool of worker goroutines expands the next
// chunk of numbered states (successor generation, fingerprinting, and
// invariant evaluation — the expensive, embarrassingly parallel part), then
// a single merge pass numbers the freshly discovered states in exactly the
// order the sequential engine would have. Because state numbering, parent
// attribution, edge order, and stop conditions are all decided by the
// deterministic merge pass, every downstream analysis — Trace, SCCs,
// FindStarvation, FindNoProgress — sees a graph identical to the sequential
// engine's, regardless of worker count or scheduling. See
// docs/model-checking.md for the design in full.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bakerypp/internal/gcl"
)

// candidate is one successor produced by a worker, carrying everything the
// merge pass needs to number it without recomputing: the state, its
// prepared store key (the state itself, or its canonical orbit
// representative under symmetry reduction) with fingerprint, the
// transition that produced it, the visited-set verdict at expansion time,
// and the invariant verdict if it looked fresh.
type candidate struct {
	state gcl.State
	key   gcl.State
	fp    uint64
	// perm is the index of the state's canonical witnessing permutation
	// when the exploration tracks permutations (quotient graphs).
	perm     int32
	pid      int32
	labelIdx int32
	// seen is the state's index if it was already numbered when the worker
	// expanded it, else -1. A -1 candidate may still duplicate a state
	// discovered concurrently in the same chunk; the merge pass resolves
	// that deterministically.
	seen int32
	// violated names the first invariant the state breaks, or "" — computed
	// by the worker so the merge pass stays cheap.
	violated string
}

// expansion is the ordered successor set of one frontier state.
type expansion struct {
	cands []candidate
	// progress records whether any successor was a program action (crash
	// pseudo-transitions do not count), feeding deadlock detection.
	progress bool
	// aPid/aLo/aHi describe the ample segment cands[aLo:aHi] when
	// partial-order reduction selected a process at expansion time
	// (aPid = -1 otherwise). The merge pass commits to the segment only
	// after re-checking, in deterministic merge order, that every segment
	// candidate is still absent from the visited store (the C3 proviso).
	aPid, aLo, aHi int32
}

// pexplorer drives the parallel engine. It reuses the sequential explorer's
// state/parent/depth arrays (so Graph, Trace, and the SCC analyses work
// unchanged); the shared visited set is the explorer's StateStore, built
// in its sharded variant so worker lookups are safe.
type pexplorer struct {
	e       *explorer
	workers int
	// wcs/cslabs are the per-worker expansion contexts and candidate
	// arenas: worker w allocates successor vectors and canonical keys from
	// wcs[w].buf and candidate records from cslabs[w]. Both are recycled at
	// each chunk boundary — by then the previous chunk's candidates have all
	// been merged (fresh keys promoted to stable storage by addPrepared), so
	// nothing references the scratch anymore.
	wcs    []wctx
	cslabs []candSlab
	// mb is the store's merge-batching hook, when it has one.
	mb mergeBatcher
}

// candSlab is bump-allocated storage for candidate records, recycled per
// chunk, replacing one make([]candidate) per expanded state.
type candSlab struct {
	blocks [][]candidate
	ci     int
	off    int
}

// candSlabBlock is the slab block size in candidate records.
const candSlabBlock = 4096

func (a *candSlab) reset() {
	a.ci = 0
	a.off = 0
}

// alloc returns an empty candidate slice with capacity n carved from the
// slab; the caller appends at most n records, so the slice never escapes
// its block.
func (a *candSlab) alloc(n int) []candidate {
	if n == 0 {
		return nil
	}
	for {
		if a.ci < len(a.blocks) {
			blk := a.blocks[a.ci]
			if a.off+n <= len(blk) {
				s := blk[a.off : a.off : a.off+n]
				a.off += n
				return s
			}
			a.ci++
			a.off = 0
			continue
		}
		sz := candSlabBlock
		if n > sz {
			sz = n
		}
		a.blocks = append(a.blocks, make([]candidate, sz))
	}
}

func newPExplorer(p *gcl.Prog, opts Options, plan Plan) *pexplorer {
	w := opts.Workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	pe := &pexplorer{e: newExplorer(p, opts, true, plan), workers: w}
	pe.wcs = make([]wctx, w)
	pe.cslabs = make([]candSlab, w)
	if plan.Symmetry || plan.TrackPerms {
		for i := range pe.wcs {
			pe.wcs[i].canon = p.NewCanonicalizer()
		}
	}
	pe.mb, _ = pe.e.store.(mergeBatcher)
	return pe
}

// beginMerge/endMerge bracket the single-threaded merge pass for stores
// that batch insertions under the chunk barrier.
func (pe *pexplorer) beginMerge() {
	if pe.mb != nil {
		pe.mb.BeginMerge()
	}
}

func (pe *pexplorer) endMerge() {
	if pe.mb != nil {
		pe.mb.EndMerge()
	}
}

// addNumbered gives the candidate's state a number if it is new, mirroring
// explorer.add. It must only be called from the single-threaded merge pass;
// the numbering order of calls is what makes the engine deterministic.
func (pe *pexplorer) addNumbered(c *candidate, parent int32) (int32, bool) {
	if c.seen >= 0 {
		return c.seen, false
	}
	return pe.e.addPrepared(c.fp, c.key, c.perm, c.state, parent, c.pid, c.labelIdx)
}

// addInit numbers the initial state (index 0).
func (pe *pexplorer) addInit(init gcl.State) {
	fp, key, perm := pe.e.prepareProbe(&pe.e.wc, init)
	c := candidate{state: init, key: key, fp: fp, perm: perm, pid: -1, labelIdx: crashLabelIdx, seen: -1}
	pe.addNumbered(&c, -1)
}

// maxChunk is how many queued states one expansion phase covers. Chunks
// need to be wide enough to amortise the spawn/barrier cost over real work
// and narrow enough that a bounded run (MaxStates, early violation stop)
// wastes at most one chunk of speculative expansion.
const maxChunk = 4096

// expandRange expands every state numbered in [lo, hi) — the next chunk of
// the BFS queue, contiguous because numbering follows discovery order —
// across the worker pool. Workers claim batches of states through an atomic
// cursor (batched hand-off keeps the cursor off the hot path) and write
// results into disjoint slots, so the only synchronisation is the final
// barrier. checkInv asks workers to pre-evaluate invariants on states that
// look fresh. Tiny chunks (the first few BFS levels) are expanded inline:
// there is no parallelism to win there.
func (pe *pexplorer) expandRange(lo, hi int32, checkInv bool) []expansion {
	n := int(hi - lo)
	out := make([]expansion, n)
	// Chunk boundary: the previous chunk is fully merged, so every worker's
	// successor buffer and candidate slab can be recycled wholesale.
	for w := range pe.wcs {
		pe.wcs[w].buf.Reset()
		pe.cslabs[w].reset()
	}
	workers := pe.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 64 {
		for i := range out {
			pe.expandState(lo+int32(i), &out[i], checkInv, &pe.wcs[0], &pe.cslabs[0])
		}
		return out
	}
	batch := n / (workers * 4)
	if batch < 1 {
		batch = 1
	}
	if batch > 64 {
		batch = 64
	}
	var cursor int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				end := atomic.AddInt64(&cursor, int64(batch))
				start := end - int64(batch)
				if start >= int64(n) {
					return
				}
				if end > int64(n) {
					end = int64(n)
				}
				for i := start; i < end; i++ {
					pe.expandState(lo+int32(i), &out[i], checkInv, &pe.wcs[w], &pe.cslabs[w])
				}
			}
		}(w)
	}
	wg.Wait()
	return out
}

// expandState computes the ordered successor candidates of one state. It
// reads the numbered-state prefix and the visited set but writes only to
// its private result slot and the worker-owned scratch w/cs.
func (pe *pexplorer) expandState(idx int32, out *expansion, checkInv bool, w *wctx, cs *candSlab) {
	e := pe.e
	succs, aPid, aLo, aHi := e.successors(e.stateAt(idx), w)
	out.aPid, out.aLo, out.aHi = int32(aPid), int32(aLo), int32(aHi)
	out.cands = cs.alloc(len(succs))
	for _, sc := range succs {
		if sc.LabelIdx >= 0 {
			out.progress = true
		}
		fp, key, perm := e.prepareProbe(w, sc.State)
		c := candidate{
			state:    sc.State,
			key:      key,
			fp:       fp,
			perm:     perm,
			pid:      int32(sc.Pid),
			labelIdx: sc.LabelIdx,
			seen:     -1,
		}
		if i, ok := e.store.Lookup(c.fp, c.key); ok {
			c.seen = i
		} else if checkInv {
			if name, bad := e.checkInvariants(sc.State); bad {
				c.violated = name
			}
		}
		out.cands = append(out.cands, c)
	}
}

// ampleOKAtMerge re-checks the C3 proviso at merge time, where the
// deterministic insertion order is known: every ample candidate must be
// absent from the visited store (an earlier merge in this chunk may have
// inserted it since expansion) or stored at exactly the next BFS depth —
// the same decision, at the same logical point, as the sequential engine's
// ampleOK, which keeps the two engines byte-identical. An expansion-time
// seen hit is re-used only for its index (the store never deletes).
func (pe *pexplorer) ampleOKAtMerge(cands []candidate, d int32) bool {
	e := pe.e
	for i := range cands {
		c := &cands[i]
		idx, ok := c.seen, c.seen >= 0
		if !ok {
			idx, ok = e.store.Lookup(c.fp, c.key)
		}
		if ok && e.depth[idx] != d+1 {
			return false
		}
	}
	return true
}

// checkParallel is Check on the parallel engine. The merge pass replays the
// sequential loop's order exactly — per-head state-bound check, transition
// counting, first-violation stop, deadlock check after a head's successors —
// so results (including States/Transitions/Depth at an early stop) match the
// sequential engine's.
func checkParallel(p *gcl.Prog, opts Options, plan Plan) *Result {
	start := time.Now()
	pe := newPExplorer(p, opts, plan)
	e := pe.e
	res := &Result{Prog: p, Symmetry: e.symmetry, POR: e.por}

	finish := func() *Result {
		res.States = e.numStates()
		res.Store = e.storeReport()
		res.Elapsed = time.Since(start)
		return res
	}

	init := p.InitState()
	pe.addInit(init)
	if name, bad := e.checkInvariants(init); bad {
		t := e.trace(0)
		res.Violation = &Violation{Invariant: name, Trace: t}
		return finish()
	}

	checkInv := len(opts.Invariants) > 0
	for merged := 0; merged < e.numStates(); {
		lo, hi := int32(merged), int32(e.numStates())
		if hi > lo+maxChunk {
			hi = lo + maxChunk
		}
		merged = int(hi)
		exps := pe.expandRange(lo, hi, checkInv)
		// Workers are quiescent from here to the next expandRange: batch the
		// whole chunk's store insertions without per-insert locking. (An
		// early return skips endMerge; the store is discarded with the run.)
		pe.beginMerge()
		for i := range exps {
			head := lo + int32(i)
			if e.numStates() >= e.opts.MaxStates {
				return finish()
			}
			res.Depth = int(e.depth[head])
			x := &exps[i]
			cands := x.cands
			if x.aPid >= 0 && pe.ampleOKAtMerge(x.cands[x.aLo:x.aHi], e.depth[head]) {
				cands = x.cands[x.aLo:x.aHi]
			}
			for ci := range cands {
				c := &cands[ci]
				res.Transitions++
				idx, fresh := pe.addNumbered(c, head)
				if !fresh {
					continue
				}
				if c.violated != "" {
					t := e.trace(idx)
					res.Violation = &Violation{Invariant: c.violated, Trace: t}
					return finish()
				}
			}
			if opts.Deadlock && !x.progress {
				t := e.trace(head)
				res.Deadlock = &t
				return finish()
			}
			// Safe here: workers are quiescent between expandRange calls, and
			// the next chunk only reads states not yet merged when this head
			// was expanded.
			e.releaseState(int(head))
		}
		pe.endMerge()
	}
	res.Complete = true
	return finish()
}

// buildGraphParallel is BuildGraph on the parallel engine; the merge pass
// appends adjacency edges in the same order the sequential loop would.
func buildGraphParallel(p *gcl.Prog, opts Options, plan Plan) (*Graph, error) {
	start := time.Now()
	pe := newPExplorer(p, opts, plan)
	e := pe.e
	res := &Result{Prog: p, Symmetry: e.symmetry}
	g := &Graph{Summary: res, expl: e}

	init := p.InitState()
	pe.addInit(init)
	g.Adj = append(g.Adj, nil)
	if name, bad := e.checkInvariants(init); bad {
		t := e.trace(0)
		res.Violation = &Violation{Invariant: name, Trace: t}
	}

	checkInv := len(opts.Invariants) > 0
	for merged := 0; merged < e.numStates(); {
		lo, hi := int32(merged), int32(e.numStates())
		if hi > lo+maxChunk {
			hi = lo + maxChunk
		}
		merged = int(hi)
		exps := pe.expandRange(lo, hi, checkInv)
		pe.beginMerge()
		for i := range exps {
			head := lo + int32(i)
			if e.numStates() > e.opts.MaxStates {
				return nil, fmt.Errorf("mc: %s: state bound %d exceeded while building graph",
					p.Name, e.opts.MaxStates)
			}
			res.Depth = int(e.depth[head])
			x := &exps[i]
			for ci := range x.cands {
				c := &x.cands[ci]
				res.Transitions++
				idx, fresh := pe.addNumbered(c, head)
				if fresh {
					g.Adj = append(g.Adj, nil)
					if c.violated != "" && res.Violation == nil {
						t := e.trace(idx)
						res.Violation = &Violation{Invariant: c.violated, Trace: t}
					}
				}
				g.Adj[head] = append(g.Adj[head], Edge{To: idx, Pid: int8(c.pid), LabelIdx: c.labelIdx,
					Perm: e.edgePermIdx(c.perm, idx, fresh)})
			}
		}
		pe.endMerge()
	}
	res.States = e.numStates()
	res.Store = e.storeReport()
	res.Complete = true
	res.Elapsed = time.Since(start)
	return g, nil
}
