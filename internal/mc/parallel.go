package mc

// Parallel explicit-state exploration. The engine alternates phases over
// chunks of the BFS queue: a pool of worker goroutines expands the next
// chunk of numbered states (successor generation and batched
// canonicalization/fingerprinting — the expensive, embarrassingly parallel
// part), a second owner-computes pass resolves each candidate's visited-set
// verdict on the worker that owns its store shard, then a single merge pass
// numbers the freshly discovered states in exactly the order the sequential
// engine would have. Because state numbering, parent attribution, edge
// order, and stop conditions are all decided by the deterministic merge
// pass, every downstream analysis — Trace, SCCs, FindStarvation,
// FindNoProgress — sees a graph identical to the sequential engine's,
// regardless of worker count or scheduling. See docs/model-checking.md for
// the design in full.
//
// Owner-computes sharding: the visited store's 64 fingerprint shards are
// statically partitioned over the workers (owner = shard mod workers).
// Expansion workers do not probe the store at all; they route each produced
// candidate, by fingerprint, into a per-(producer, owner) inbox. After the
// expansion barrier every owner drains the inboxes addressed to it and
// resolves its candidates' verdicts with plain unlocked lookups — each
// shard's table is read by exactly one goroutine per phase, so the steady
// state needs no locks and each owner's shards stay resident in its cache.
// The phases never overlap the merge pass (chunk barriers separate them),
// which remains the sole writer.
//
// Profiling: the expansion and drain goroutines run under runtime/pprof
// labels ("mc-stage" = expand|drain, plus "mc-worker"/"mc-shard-owner"), so
// CPU profiles taken with -cpuprofile can be sliced per stage and per
// worker; see the Performance section of docs/model-checking.md.

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bakerypp/internal/gcl"
)

// Sentinel values for candidate.violated beyond a real invariant index.
const (
	// candInvNone: invariants were evaluated and none is violated.
	candInvNone int32 = -1
	// candInvUnchecked: the expansion deferred invariant evaluation; the
	// merge pass evaluates lazily, and only on states that merge as fresh.
	// This is the steady state of the inline (single-worker) path, which
	// skips the advisory store probe too — deferring both halves the
	// per-successor store traffic and skips invariant checks on duplicates,
	// matching the sequential engine's work exactly.
	candInvUnchecked int32 = -2
)

// candidate is one successor produced by a worker, carrying everything the
// merge pass needs to number it without recomputing: the state, its
// prepared store key (the state itself, or its canonical orbit
// representative under symmetry reduction) with fingerprint, the
// transition that produced it, and the advisory verdicts resolved by the
// owner-computes drain.
type candidate struct {
	state gcl.State
	key   gcl.State
	fp    uint64
	// perm is the index of the state's canonical witnessing permutation
	// when the exploration tracks permutations (quotient graphs).
	perm     int32
	pid      int32
	labelIdx int32
	// seen is the state's index if it was already numbered when its owner
	// drained it, else -1. A -1 candidate may still duplicate a state
	// discovered concurrently in the same chunk; the merge pass resolves
	// that deterministically.
	seen int32
	// violated is the index into Options.Invariants of the first invariant
	// the state breaks, candInvNone if none, or candInvUnchecked when the
	// check was deferred to the merge pass.
	violated int32
}

// expansion is the ordered successor set of one frontier state.
type expansion struct {
	cands []candidate
	// progress records whether any successor was a program action (crash
	// pseudo-transitions do not count), feeding deadlock detection.
	progress bool
	// aPid/aLo/aHi describe the ample segment cands[aLo:aHi] when
	// partial-order reduction selected a process at expansion time
	// (aPid = -1 otherwise). The merge pass commits to the segment only
	// after re-checking, in deterministic merge order, that every segment
	// candidate is still absent from the visited store (the C3 proviso).
	aPid, aLo, aHi int32
}

// candInbox is one single-producer single-consumer batch lane of the
// owner-computes routing mesh: expansion worker p appends candidate
// pointers for shard-owner o into inboxes[p][o], and owner o drains every
// inboxes[*][o] after the expansion barrier. The two sides never run
// concurrently (the barrier orders them), so a plain slice suffices; its
// capacity is retained across chunks, making steady-state push and drain
// allocation-free (pinned by TestInboxPushDrainAllocFree).
type candInbox struct {
	items []*candidate
}

// pexplorer drives the parallel engine. It reuses the sequential explorer's
// state/parent/depth arrays (so Graph, Trace, and the SCC analyses work
// unchanged); the shared visited set is the explorer's StateStore, built
// in its sharded variant so ownership partitions cleanly.
type pexplorer struct {
	e       *explorer
	workers int
	// wcs/cslabs are the per-worker expansion contexts and candidate
	// arenas: worker w batch-canonicalizes into wcs[w].slab and allocates
	// candidate records from cslabs[w]. Both are recycled at each chunk
	// boundary — by then the previous chunk's candidates have all been
	// merged (fresh keys promoted to stable storage by addPrepared), so
	// nothing references the scratch anymore.
	wcs    []wctx
	cslabs []candSlab
	// exps is the chunk's expansion-slot buffer, reused across chunks.
	exps []expansion
	// inboxes[p][o] routes candidates from producer p to shard-owner o.
	inboxes [][]candInbox
	// sst is the store downcast to its sharded variant, giving the drain
	// pass direct unlocked shard access; nil for other tiers (compact,
	// bitstate, spill), whose concurrent-safe Lookup is used instead.
	sst *shardedStore
	// mb is the store's merge-batching hook, when it has one.
	mb mergeBatcher
}

// candSlab is bump-allocated storage for candidate records, recycled per
// chunk, replacing one make([]candidate) per expanded state.
type candSlab struct {
	blocks [][]candidate
	ci     int
	off    int
}

// candSlabBlock is the slab block size in candidate records.
const candSlabBlock = 4096

func (a *candSlab) reset() {
	a.ci = 0
	a.off = 0
}

// alloc returns an empty candidate slice with capacity n carved from the
// slab; the caller appends at most n records, so the slice never escapes
// its block.
func (a *candSlab) alloc(n int) []candidate {
	if n == 0 {
		return nil
	}
	for {
		if a.ci < len(a.blocks) {
			blk := a.blocks[a.ci]
			if a.off+n <= len(blk) {
				s := blk[a.off : a.off : a.off+n]
				a.off += n
				return s
			}
			a.ci++
			a.off = 0
			continue
		}
		sz := candSlabBlock
		if n > sz {
			sz = n
		}
		a.blocks = append(a.blocks, make([]candidate, sz))
	}
}

func newPExplorer(p *gcl.Prog, opts Options, plan Plan) *pexplorer {
	w := opts.Workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	pe := &pexplorer{e: newExplorer(p, opts, true, plan), workers: w}
	pe.wcs = make([]wctx, w)
	pe.cslabs = make([]candSlab, w)
	if plan.Symmetry || plan.TrackPerms {
		for i := range pe.wcs {
			pe.wcs[i].canon = p.NewCanonicalizer()
		}
	}
	pe.inboxes = make([][]candInbox, w)
	for i := range pe.inboxes {
		pe.inboxes[i] = make([]candInbox, w)
	}
	pe.sst, _ = pe.e.store.(*shardedStore)
	pe.mb, _ = pe.e.store.(mergeBatcher)
	return pe
}

// beginMerge/endMerge bracket the single-threaded merge pass for stores
// that batch insertions under the chunk barrier.
func (pe *pexplorer) beginMerge() {
	if pe.mb != nil {
		pe.mb.BeginMerge()
	}
}

func (pe *pexplorer) endMerge() {
	if pe.mb != nil {
		pe.mb.EndMerge()
	}
}

// addNumbered gives the candidate's state a number if it is new, mirroring
// explorer.add. It must only be called from the single-threaded merge pass;
// the numbering order of calls is what makes the engine deterministic.
func (pe *pexplorer) addNumbered(c *candidate, parent int32) (int32, bool) {
	if c.seen >= 0 {
		return c.seen, false
	}
	return pe.e.addPrepared(c.fp, c.key, c.perm, c.state, parent, c.pid, c.labelIdx)
}

// addInit numbers the initial state (index 0).
func (pe *pexplorer) addInit(init gcl.State) {
	fp, key, perm := pe.e.prepareProbe(&pe.e.wc, init)
	c := candidate{state: init, key: key, fp: fp, perm: perm, pid: -1,
		labelIdx: crashLabelIdx, seen: -1, violated: candInvNone}
	pe.addNumbered(&c, -1)
}

// maxChunk is how many queued states one expansion phase covers. Chunks
// need to be wide enough to amortise the spawn/barrier cost over real work
// and narrow enough that a bounded run (MaxStates, early violation stop)
// wastes at most one chunk of speculative expansion.
const maxChunk = 4096

// expandRange expands every state numbered in [lo, hi) — the next chunk of
// the BFS queue, contiguous because numbering follows discovery order —
// across the worker pool, in two barrier-separated stages. Stage one:
// workers claim batches of states through an atomic cursor (batched
// hand-off keeps the cursor off the hot path), generate and batch-prepare
// successors into disjoint slots, and route each candidate to its shard
// owner's inbox. Stage two: each owner drains its inboxes, resolving
// visited-set verdicts with unlocked lookups confined to the shards it
// owns, and pre-evaluating invariants (checkInv) on candidates that look
// fresh. Tiny chunks (the first few BFS levels) and single-worker runs are
// expanded inline with both verdicts deferred to the merge pass: there is
// no parallelism to win, and deferring saves the advisory probe.
func (pe *pexplorer) expandRange(lo, hi int32, checkInv bool) []expansion {
	n := int(hi - lo)
	if cap(pe.exps) < n {
		pe.exps = make([]expansion, n)
	}
	out := pe.exps[:n]
	// Chunk boundary: the previous chunk is fully merged, so every worker's
	// successor buffer, key slab, and candidate slab can be recycled
	// wholesale.
	for w := range pe.wcs {
		pe.wcs[w].buf.Reset()
		pe.wcs[w].slab.Reset()
		pe.cslabs[w].reset()
	}
	workers := pe.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 64 {
		for i := range out {
			pe.expandState(lo+int32(i), &out[i], &pe.wcs[0], &pe.cslabs[0])
		}
		return out
	}
	for p := 0; p < workers; p++ {
		for o := 0; o < workers; o++ {
			pe.inboxes[p][o].items = pe.inboxes[p][o].items[:0]
		}
	}
	batch := n / (workers * 4)
	if batch < 1 {
		batch = 1
	}
	if batch > 64 {
		batch = 64
	}
	var cursor int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			labels := pprof.Labels("mc-stage", "expand", "mc-worker", strconv.Itoa(w))
			pprof.Do(context.Background(), labels, func(context.Context) {
				inbox := pe.inboxes[w][:workers]
				for {
					end := atomic.AddInt64(&cursor, int64(batch))
					start := end - int64(batch)
					if start >= int64(n) {
						return
					}
					if end > int64(n) {
						end = int64(n)
					}
					for i := start; i < end; i++ {
						x := &out[i]
						pe.expandState(lo+int32(i), x, &pe.wcs[w], &pe.cslabs[w])
						for ci := range x.cands {
							c := &x.cands[ci]
							o := int(c.fp&(shardCount-1)) % workers
							inbox[o].items = append(inbox[o].items, c)
						}
					}
				}
			})
		}(w)
	}
	wg.Wait()
	var dg sync.WaitGroup
	for o := 0; o < workers; o++ {
		dg.Add(1)
		go func(o int) {
			defer dg.Done()
			labels := pprof.Labels("mc-stage", "drain", "mc-shard-owner", strconv.Itoa(o))
			pprof.Do(context.Background(), labels, func(context.Context) {
				pe.drainOwner(o, workers, checkInv)
			})
		}(o)
	}
	dg.Wait()
	return out
}

// expandState computes the ordered successor candidates of one state:
// successor generation plus one batched canonicalize/fingerprint pass over
// the whole run (prepSuccs). It reads only the numbered-state prefix —
// never the visited store — and writes only to its private result slot and
// the worker-owned scratch w/cs, so expansion workers share nothing but
// read-only data.
func (pe *pexplorer) expandState(idx int32, out *expansion, w *wctx, cs *candSlab) {
	e := pe.e
	succs, aPid, aLo, aHi := e.successors(e.stateAt(idx), w)
	out.aPid, out.aLo, out.aHi = int32(aPid), int32(aLo), int32(aHi)
	out.progress = false
	w.preps = growPreps(w.preps, len(succs))
	e.prepSuccs(w, succs, w.preps)
	out.cands = cs.alloc(len(succs))
	for i, sc := range succs {
		if sc.LabelIdx >= 0 {
			out.progress = true
		}
		pr := &w.preps[i]
		out.cands = append(out.cands, candidate{
			state:    sc.State,
			key:      pr.key,
			fp:       pr.fp,
			perm:     pr.perm,
			pid:      int32(sc.Pid),
			labelIdx: sc.LabelIdx,
			seen:     -1,
			violated: candInvUnchecked,
		})
	}
}

// drainOwner resolves the advisory verdicts of every candidate routed to
// shard-owner o: a visited-set lookup (unlocked and confined to o's own
// shards when the store is the sharded exact tier), then invariant
// pre-evaluation on candidates that look fresh. Each candidate is routed to
// exactly one owner, so the field writes are exclusive; the surrounding
// barriers order them against both expansion and merge.
func (pe *pexplorer) drainOwner(o, workers int, checkInv bool) {
	e := pe.e
	for p := 0; p < workers; p++ {
		for _, c := range pe.inboxes[p][o].items {
			var idx int32
			var ok bool
			if pe.sst != nil {
				idx, ok = pe.sst.shards[c.fp&(shardCount-1)].t.lookup(c.fp, c.key)
			} else {
				idx, ok = e.store.Lookup(c.fp, c.key)
			}
			if ok {
				c.seen = idx
				continue
			}
			if checkInv {
				c.violated = e.checkInvariantsIdx(c.state)
			}
		}
	}
}

// ampleOKAtMerge re-checks the C3 proviso at merge time, where the
// deterministic insertion order is known: every ample candidate must be
// absent from the visited store (an earlier merge in this chunk may have
// inserted it since expansion) or stored at exactly the next BFS depth —
// the same decision, at the same logical point, as the sequential engine's
// ampleOKPrep, which keeps the two engines byte-identical. A drain-time
// seen hit is re-used only for its index (the store never deletes).
func (pe *pexplorer) ampleOKAtMerge(cands []candidate, d int32) bool {
	e := pe.e
	for i := range cands {
		c := &cands[i]
		idx, ok := c.seen, c.seen >= 0
		if !ok {
			idx, ok = e.store.Lookup(c.fp, c.key)
		}
		if ok && e.depth[idx] != d+1 {
			return false
		}
	}
	return true
}

// mergeViolation resolves a fresh candidate's invariant verdict: the
// drain's pre-computed index, or a lazy evaluation when the check was
// deferred (inline path). Returns the invariant index, or a negative
// sentinel if none is violated.
func (pe *pexplorer) mergeViolation(c *candidate) int32 {
	v := c.violated
	if v == candInvUnchecked {
		v = pe.e.checkInvariantsIdx(c.state)
	}
	return v
}

// checkParallel is Check on the parallel engine. The merge pass replays the
// sequential loop's order exactly — per-head state-bound check, transition
// counting, first-violation stop, deadlock check after a head's successors —
// so results (including States/Transitions/Depth at an early stop) match the
// sequential engine's.
func checkParallel(p *gcl.Prog, opts Options, plan Plan) *Result {
	start := time.Now()
	pe := newPExplorer(p, opts, plan)
	e := pe.e
	res := &Result{Prog: p, Symmetry: e.symmetry, POR: e.por}

	finish := func() *Result {
		res.States = e.numStates()
		res.Store = e.storeReport()
		res.Elapsed = time.Since(start)
		return res
	}

	init := p.InitState()
	pe.addInit(init)
	if name, bad := e.checkInvariants(init); bad {
		t := e.trace(0)
		res.Violation = &Violation{Invariant: name, Trace: t}
		return finish()
	}

	checkInv := len(opts.Invariants) > 0
	for merged := 0; merged < e.numStates(); {
		lo, hi := int32(merged), int32(e.numStates())
		if hi > lo+maxChunk {
			hi = lo + maxChunk
		}
		merged = int(hi)
		exps := pe.expandRange(lo, hi, checkInv)
		// Workers are quiescent from here to the next expandRange: batch the
		// whole chunk's store insertions without per-insert locking. (An
		// early return skips endMerge; the store is discarded with the run.)
		pe.beginMerge()
		for i := range exps {
			head := lo + int32(i)
			if e.numStates() >= e.opts.MaxStates {
				return finish()
			}
			res.Depth = int(e.depth[head])
			x := &exps[i]
			cands := x.cands
			if x.aPid >= 0 && pe.ampleOKAtMerge(x.cands[x.aLo:x.aHi], e.depth[head]) {
				cands = x.cands[x.aLo:x.aHi]
			}
			for ci := range cands {
				c := &cands[ci]
				res.Transitions++
				idx, fresh := pe.addNumbered(c, head)
				if !fresh {
					continue
				}
				if v := pe.mergeViolation(c); v >= 0 {
					t := e.trace(idx)
					res.Violation = &Violation{Invariant: e.opts.Invariants[v].Name, Trace: t}
					return finish()
				}
			}
			if opts.Deadlock && !x.progress {
				t := e.trace(head)
				res.Deadlock = &t
				return finish()
			}
			// Safe here: workers are quiescent between expandRange calls, and
			// the next chunk only reads states not yet merged when this head
			// was expanded.
			e.releaseState(int(head))
		}
		pe.endMerge()
	}
	res.Complete = true
	return finish()
}

// buildGraphParallel is BuildGraph on the parallel engine; the merge pass
// appends adjacency edges in the same order the sequential loop would.
func buildGraphParallel(p *gcl.Prog, opts Options, plan Plan) (*Graph, error) {
	start := time.Now()
	pe := newPExplorer(p, opts, plan)
	e := pe.e
	res := &Result{Prog: p, Symmetry: e.symmetry}
	g := &Graph{Summary: res, expl: e}

	init := p.InitState()
	pe.addInit(init)
	g.Adj = append(g.Adj, nil)
	if name, bad := e.checkInvariants(init); bad {
		t := e.trace(0)
		res.Violation = &Violation{Invariant: name, Trace: t}
	}

	checkInv := len(opts.Invariants) > 0
	for merged := 0; merged < e.numStates(); {
		lo, hi := int32(merged), int32(e.numStates())
		if hi > lo+maxChunk {
			hi = lo + maxChunk
		}
		merged = int(hi)
		exps := pe.expandRange(lo, hi, checkInv)
		pe.beginMerge()
		for i := range exps {
			head := lo + int32(i)
			if e.numStates() > e.opts.MaxStates {
				return nil, fmt.Errorf("mc: %s: state bound %d exceeded while building graph",
					p.Name, e.opts.MaxStates)
			}
			res.Depth = int(e.depth[head])
			x := &exps[i]
			for ci := range x.cands {
				c := &x.cands[ci]
				res.Transitions++
				idx, fresh := pe.addNumbered(c, head)
				if fresh {
					g.Adj = append(g.Adj, nil)
					if res.Violation == nil {
						if v := pe.mergeViolation(c); v >= 0 {
							t := e.trace(idx)
							res.Violation = &Violation{Invariant: e.opts.Invariants[v].Name, Trace: t}
						}
					}
				}
				g.Adj[head] = append(g.Adj[head], Edge{To: idx, Pid: int8(c.pid), LabelIdx: c.labelIdx,
					Perm: e.edgePermIdx(c.perm, idx, fresh)})
			}
		}
		pe.endMerge()
	}
	res.States = e.numStates()
	res.Store = e.storeReport()
	res.Complete = true
	res.Elapsed = time.Since(start)
	return g, nil
}
