package mc

// Parallel explicit-state exploration. The engine alternates two phases
// over chunks of the BFS queue: a pool of worker goroutines expands the next
// chunk of numbered states (successor generation, fingerprinting, and
// invariant evaluation — the expensive, embarrassingly parallel part), then
// a single merge pass numbers the freshly discovered states in exactly the
// order the sequential engine would have. Because state numbering, parent
// attribution, edge order, and stop conditions are all decided by the
// deterministic merge pass, every downstream analysis — Trace, SCCs,
// FindStarvation, FindNoProgress — sees a graph identical to the sequential
// engine's, regardless of worker count or scheduling. See
// docs/model-checking.md for the design in full.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bakerypp/internal/gcl"
)

// shardCount is the number of stripes in the visited set; a power of two so
// shard selection is a mask. 64 stripes keep lock contention negligible up
// to far more workers than any current machine provides.
const shardCount = 64

// visitedShard is one stripe of the sharded visited set: a fingerprint-keyed
// bucket map guarded by a read-write mutex. Workers only read (lookups during
// expansion); the merge pass is the sole writer. Strictly, the expand and
// merge phases never overlap (they are separated by the chunk barrier), so
// the locks are uncontended belt-and-braces; they keep the set safe if a
// future change lets phases overlap, at a cost of a few percent.
type visitedShard struct {
	mu sync.RWMutex
	m  map[uint64][]int32
}

// shardedSet is the parallel engine's visited set: states are keyed by their
// 64-bit fingerprint, striped over shardCount mutex-guarded maps. Fingerprint
// collisions between distinct states are resolved by comparing the full state
// vectors, so membership is exact.
type shardedSet struct {
	shards [shardCount]visitedShard
}

func newShardedSet() *shardedSet {
	ss := &shardedSet{}
	for i := range ss.shards {
		ss.shards[i].m = map[uint64][]int32{}
	}
	return ss
}

// lookup returns the index of s in the numbered-state prefix, if present.
// states must be the slice the stored indices point into.
func (ss *shardedSet) lookup(fp uint64, s gcl.State, states []gcl.State) (int32, bool) {
	sh := &ss.shards[fp&(shardCount-1)]
	sh.mu.RLock()
	for _, idx := range sh.m[fp] {
		if s.Equal(states[idx]) {
			sh.mu.RUnlock()
			return idx, true
		}
	}
	sh.mu.RUnlock()
	return -1, false
}

// insert records that state index idx has fingerprint fp. Callers must have
// established (via lookup) that the state is not already present.
func (ss *shardedSet) insert(fp uint64, idx int32) {
	sh := &ss.shards[fp&(shardCount-1)]
	sh.mu.Lock()
	sh.m[fp] = append(sh.m[fp], idx)
	sh.mu.Unlock()
}

// candidate is one successor produced by a worker, carrying everything the
// merge pass needs to number it without recomputing: the state, its
// fingerprint, the transition that produced it, the visited-set verdict at
// expansion time, and the invariant verdict if it looked fresh.
type candidate struct {
	state gcl.State
	fp    uint64
	pid   int32
	label string
	// seen is the state's index if it was already numbered when the worker
	// expanded it, else -1. A -1 candidate may still duplicate a state
	// discovered concurrently in the same chunk; the merge pass resolves
	// that deterministically.
	seen int32
	// violated names the first invariant the state breaks, or "" — computed
	// by the worker so the merge pass stays cheap.
	violated string
}

// expansion is the ordered successor set of one frontier state.
type expansion struct {
	cands []candidate
	// progress records whether any successor was a program action (crash
	// pseudo-transitions do not count), feeding deadlock detection.
	progress bool
}

// pexplorer drives the parallel engine. It reuses the sequential explorer's
// state/parent/depth arrays (so Graph, Trace, and the SCC analyses work
// unchanged) but replaces the string-keyed seen map with the sharded
// fingerprint set.
type pexplorer struct {
	e       *explorer
	set     *shardedSet
	workers int
}

func newPExplorer(p *gcl.Prog, opts Options) *pexplorer {
	w := opts.Workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return &pexplorer{e: newExplorer(p, opts), set: newShardedSet(), workers: w}
}

// addNumbered gives the candidate's state a number if it is new, mirroring
// explorer.add. It must only be called from the single-threaded merge pass;
// the numbering order of calls is what makes the engine deterministic.
func (pe *pexplorer) addNumbered(c *candidate, parent int32) (int32, bool) {
	if c.seen >= 0 {
		return c.seen, false
	}
	e := pe.e
	if idx, ok := pe.set.lookup(c.fp, c.state, e.states); ok {
		return idx, false
	}
	idx := int32(len(e.states))
	pe.set.insert(c.fp, idx)
	e.states = append(e.states, c.state)
	e.parent = append(e.parent, parent)
	e.parentBy = append(e.parentBy, c.pid)
	e.parentLb = append(e.parentLb, c.label)
	if parent < 0 {
		e.depth = append(e.depth, 0)
	} else {
		e.depth = append(e.depth, e.depth[parent]+1)
	}
	return idx, true
}

// addInit numbers the initial state (index 0).
func (pe *pexplorer) addInit(init gcl.State) {
	c := candidate{state: init, fp: init.Fingerprint(), pid: -1, seen: -1}
	pe.addNumbered(&c, -1)
}

// maxChunk is how many queued states one expansion phase covers. Chunks
// need to be wide enough to amortise the spawn/barrier cost over real work
// and narrow enough that a bounded run (MaxStates, early violation stop)
// wastes at most one chunk of speculative expansion.
const maxChunk = 4096

// expandRange expands every state numbered in [lo, hi) — the next chunk of
// the BFS queue, contiguous because numbering follows discovery order —
// across the worker pool. Workers claim batches of states through an atomic
// cursor (batched hand-off keeps the cursor off the hot path) and write
// results into disjoint slots, so the only synchronisation is the final
// barrier. checkInv asks workers to pre-evaluate invariants on states that
// look fresh. Tiny chunks (the first few BFS levels) are expanded inline:
// there is no parallelism to win there.
func (pe *pexplorer) expandRange(lo, hi int32, checkInv bool) []expansion {
	n := int(hi - lo)
	out := make([]expansion, n)
	workers := pe.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 64 {
		for i := range out {
			pe.expandState(lo+int32(i), &out[i], checkInv)
		}
		return out
	}
	batch := n / (workers * 4)
	if batch < 1 {
		batch = 1
	}
	if batch > 64 {
		batch = 64
	}
	var cursor int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				end := atomic.AddInt64(&cursor, int64(batch))
				start := end - int64(batch)
				if start >= int64(n) {
					return
				}
				if end > int64(n) {
					end = int64(n)
				}
				for i := start; i < end; i++ {
					pe.expandState(lo+int32(i), &out[i], checkInv)
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// expandState computes the ordered successor candidates of one state. It
// reads the numbered-state prefix and the visited set but writes only to
// its private result slot.
func (pe *pexplorer) expandState(idx int32, out *expansion, checkInv bool) {
	e := pe.e
	succs := e.successors(e.states[idx])
	out.cands = make([]candidate, 0, len(succs))
	for _, sc := range succs {
		if sc.Label != crashLabel {
			out.progress = true
		}
		c := candidate{
			state: sc.State,
			fp:    sc.State.Fingerprint(),
			pid:   int32(sc.Pid),
			label: sc.Label,
			seen:  -1,
		}
		if i, ok := pe.set.lookup(c.fp, c.state, e.states); ok {
			c.seen = i
		} else if checkInv {
			if name, bad := e.checkInvariants(sc.State); bad {
				c.violated = name
			}
		}
		out.cands = append(out.cands, c)
	}
}

// checkParallel is Check on the parallel engine. The merge pass replays the
// sequential loop's order exactly — per-head state-bound check, transition
// counting, first-violation stop, deadlock check after a head's successors —
// so results (including States/Transitions/Depth at an early stop) match the
// sequential engine's.
func checkParallel(p *gcl.Prog, opts Options) *Result {
	start := time.Now()
	pe := newPExplorer(p, opts)
	e := pe.e
	res := &Result{Prog: p}

	finish := func() *Result {
		res.States = len(e.states)
		res.Elapsed = time.Since(start)
		return res
	}

	init := p.InitState()
	pe.addInit(init)
	if name, bad := e.checkInvariants(init); bad {
		t := e.trace(0)
		res.Violation = &Violation{Invariant: name, Trace: t}
		return finish()
	}

	checkInv := len(opts.Invariants) > 0
	for merged := 0; merged < len(e.states); {
		lo, hi := int32(merged), int32(len(e.states))
		if hi > lo+maxChunk {
			hi = lo + maxChunk
		}
		merged = int(hi)
		exps := pe.expandRange(lo, hi, checkInv)
		for i := range exps {
			head := lo + int32(i)
			if len(e.states) >= e.opts.MaxStates {
				return finish()
			}
			res.Depth = int(e.depth[head])
			x := &exps[i]
			for ci := range x.cands {
				c := &x.cands[ci]
				res.Transitions++
				idx, fresh := pe.addNumbered(c, head)
				if !fresh {
					continue
				}
				if c.violated != "" {
					t := e.trace(idx)
					res.Violation = &Violation{Invariant: c.violated, Trace: t}
					return finish()
				}
			}
			if opts.Deadlock && !x.progress {
				t := e.trace(head)
				res.Deadlock = &t
				return finish()
			}
		}
	}
	res.Complete = true
	return finish()
}

// buildGraphParallel is BuildGraph on the parallel engine; the merge pass
// appends adjacency edges in the same order the sequential loop would.
func buildGraphParallel(p *gcl.Prog, opts Options) (*Graph, error) {
	start := time.Now()
	pe := newPExplorer(p, opts)
	e := pe.e
	res := &Result{Prog: p}
	g := &Graph{Summary: res, expl: e}

	init := p.InitState()
	pe.addInit(init)
	g.Adj = append(g.Adj, nil)
	if name, bad := e.checkInvariants(init); bad {
		t := e.trace(0)
		res.Violation = &Violation{Invariant: name, Trace: t}
	}

	checkInv := len(opts.Invariants) > 0
	for merged := 0; merged < len(e.states); {
		lo, hi := int32(merged), int32(len(e.states))
		if hi > lo+maxChunk {
			hi = lo + maxChunk
		}
		merged = int(hi)
		exps := pe.expandRange(lo, hi, checkInv)
		for i := range exps {
			head := lo + int32(i)
			if len(e.states) > e.opts.MaxStates {
				return nil, fmt.Errorf("mc: %s: state bound %d exceeded while building graph",
					p.Name, e.opts.MaxStates)
			}
			res.Depth = int(e.depth[head])
			x := &exps[i]
			for ci := range x.cands {
				c := &x.cands[ci]
				res.Transitions++
				idx, fresh := pe.addNumbered(c, head)
				if fresh {
					g.Adj = append(g.Adj, nil)
					if c.violated != "" && res.Violation == nil {
						t := e.trace(idx)
						res.Violation = &Violation{Invariant: c.violated, Trace: t}
					}
				}
				g.Adj[head] = append(g.Adj[head], Edge{To: idx, Pid: int8(c.pid), Label: c.label})
			}
		}
	}
	res.States = len(e.states)
	res.Complete = true
	res.Elapsed = time.Since(start)
	return g, nil
}
