package mc

import (
	"fmt"
	"time"

	"bakerypp/internal/gcl"
)

// Edge is one transition of the reachability graph. Pid is the moving
// process in the SOURCE state's slot coordinates. LabelIdx is the source
// label's index in the program's label table (crashLabelIdx for crash
// pseudo-transitions); storing the index instead of the string keeps edges
// pointer-free — the GC never scans the adjacency lists — and makes edge
// comparisons integer compares. Render with Graph.EdgeLabel.
type Edge struct {
	To       int32
	Pid      int8
	LabelIdx int32
	// Perm, on a symmetry-reduced (quotient) graph, is the index of the
	// permutation ρ relating the concrete successor t to the stored
	// representative of its orbit: NormalizeCursors(t) =
	// Permute(NormalizeCursors(State(To)), ρ). Index 0 is the identity —
	// in particular every edge to a fresh state, and every edge of an
	// unreduced graph. The quotient-product liveness analyses compose
	// these annotations along paths to recover concrete pid identities
	// (see quotient.go). int32 because indices range over N! — up to
	// 40320 at the N=8 table cap, past int16.
	Perm int32
}

// Graph is the full reachability graph of a program, built by BuildGraph.
// States are indexed densely in BFS discovery order; index 0 is the initial
// state.
type Graph struct {
	// Summary carries the same statistics a Check would produce (states,
	// transitions, first invariant violation if any).
	Summary *Result
	expl    *explorer
	Adj     [][]Edge
	// prod caches the tracking product (quotient.go) across the cycle
	// analyses: it is immutable once built and dominates any single SCC
	// pass, so FindStarvation followed by FindNoProgress must not pay the
	// construction twice. Graphs are not safe for concurrent analysis
	// calls (they never were: the analyses share the explorer's scratch).
	prod *product
}

// NumStates returns the number of reachable states.
func (g *Graph) NumStates() int { return g.expl.numStates() }

// EdgeLabel renders an edge's action label ("CRASH" for crash edges).
func (g *Graph) EdgeLabel(e Edge) string { return g.expl.labelName(e.LabelIdx) }

// State returns the state at a graph index.
func (g *Graph) State(i int) gcl.State { return g.expl.stateAt(int32(i)) }

// BuildGraph explores the complete reachable state space of p and returns
// its transition graph. Unlike Check it does not stop at invariant
// violations (Summary.Violation still records the first one found); it
// fails only if the state bound is exceeded, since an incomplete graph
// would make cycle analysis meaningless. Options.Workers selects between
// the sequential engine below and the parallel engine; state numbering and
// edge order are identical either way. The reduction plan comes from the
// pipeline's GraphAnalysis declaration: POR never applies (the graph
// analyses — SCCs, starvation and no-progress cycles — quantify over every
// interleaving, which a partial-order-reduced graph by design omits), but
// symmetry does — the result is then the QUOTIENT graph, one state per
// encountered orbit, with permutation-annotated edges the cycle analyses
// lift concrete pid identities through (quotient.go).
func BuildGraph(p *gcl.Prog, opts Options) (*Graph, error) {
	plan, err := planFor(p, opts, GraphAnalysis{Invariants: opts.Invariants})
	if err != nil {
		return nil, err
	}
	if opts.Workers != 0 {
		return buildGraphParallel(p, opts, plan)
	}
	start := time.Now()
	e := newExplorer(p, opts, false, plan)
	res := &Result{Prog: p, Symmetry: e.symmetry}
	g := &Graph{Summary: res, expl: e}

	init := p.InitState()
	e.add(&e.wc, init, -1, -1, crashLabelIdx)
	g.Adj = append(g.Adj, nil)
	if name, bad := e.checkInvariants(init); bad {
		t := e.trace(0)
		res.Violation = &Violation{Invariant: name, Trace: t}
	}

	for head := 0; head < e.numStates(); head++ {
		if e.numStates() > e.opts.MaxStates {
			return nil, fmt.Errorf("mc: %s: state bound %d exceeded while building graph",
				p.Name, e.opts.MaxStates)
		}
		e.wc.buf.Reset()
		e.wc.slab.Reset()
		s := e.stateAt(int32(head))
		res.Depth = int(e.depth[head])
		succs, _, _, _ := e.successors(s, &e.wc)
		e.prepBuf = growPreps(e.prepBuf, len(succs))
		e.prepSuccs(&e.wc, succs, e.prepBuf)
		for i, sc := range succs {
			res.Transitions++
			pr := &e.prepBuf[i]
			idx, fresh := e.addPrepared(pr.fp, pr.key, pr.perm, sc.State, int32(head), int32(sc.Pid), sc.LabelIdx)
			if fresh {
				g.Adj = append(g.Adj, nil)
				if name, bad := e.checkInvariants(sc.State); bad && res.Violation == nil {
					t := e.trace(idx)
					res.Violation = &Violation{Invariant: name, Trace: t}
				}
			}
			g.Adj[head] = append(g.Adj[head], Edge{To: idx, Pid: int8(sc.Pid), LabelIdx: sc.LabelIdx,
				Perm: e.edgePermIdx(pr.perm, idx, fresh)})
		}
	}
	res.States = e.numStates()
	res.Store = e.storeReport()
	res.Complete = true
	res.Elapsed = time.Since(start)
	return g, nil
}

// Quotient reports whether the graph is symmetry-reduced: states are orbit
// representatives and edges carry permutation annotations. The cycle
// analyses below automatically run orbit-aware on such graphs.
func (g *Graph) Quotient() bool { return g.expl.trackPerms }

// Trace reconstructs the BFS path from the initial state to graph index i.
func (g *Graph) Trace(i int) Trace { return g.expl.trace(int32(i)) }

// SCCs returns the strongly connected components of the graph (Tarjan,
// iterative), in reverse topological order. Trivial single-state components
// without a self-loop are included; callers filter as needed.
func (g *Graph) SCCs() [][]int32 {
	n := len(g.Adj)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var (
		stack   []int32
		sccs    [][]int32
		counter int32
	)

	type frame struct {
		v    int32
		edge int
	}
	var call []frame
	for root := int32(0); root < int32(n); root++ {
		if index[root] != -1 {
			continue
		}
		call = append(call[:0], frame{v: root})
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.edge < len(g.Adj[f.v]) {
				w := g.Adj[f.v][f.edge].To
				f.edge++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				if pv := call[len(call)-1].v; low[v] < low[pv] {
					low[pv] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}

// StarvationReport describes a reachable cycle on which a predicate holds
// forever while a given set of processes keeps taking steps — the shape of
// the paper's Section 6.3 scenario ("the two fast processes keep competing
// ... and they reach M again" while the slow process never leaves L1).
type StarvationReport struct {
	// ComponentSize is the number of states in the witnessing SCC — full
	// states on an unreduced graph, product states (orbit representative ×
	// tracking permutation) on a quotient graph.
	ComponentSize int
	// EntryLen is the number of steps from the initial state to the
	// component.
	EntryLen int
	// Entry is the path from the initial state into the component. It is
	// always a concrete execution; on a quotient graph it is replayed from
	// the product lasso and re-verified step by step (quotient.go).
	Entry Trace
	// MovesByPid counts, for each process, the transitions it owns inside
	// the component. On a quotient graph pids are CONCRETE identities,
	// recovered through the edges' permutation annotations.
	MovesByPid []int
	// Component lists the graph indices of the component's states, so
	// callers can assert additional properties (e.g. that the starved
	// process is genuinely blocked somewhere on the cycle, ruling out
	// plain unfair-scheduler starvation). On a quotient graph these are
	// the distinct orbit representatives the product component touches.
	Component []int32
	// Quotient reports the analysis ran orbit-aware on the quotient graph.
	Quotient bool
	// Cycle, on a quotient graph, is the concrete execution closing the
	// lasso: starting from Entry's final state, every listed step is a
	// real transition, the predicate holds throughout, every mustMove pid
	// moves, and the final state revisits the starting state's orbit
	// position — verified by execution before the report is returned.
	// Unreduced analyses leave it nil (the SCC itself is the witness).
	Cycle []Step
}

// FindStarvation searches for a reachable strongly connected component with
// at least one edge, all of whose states satisfy pred, and inside which
// every process in mustMove takes at least one step. It returns nil if no
// such component exists. pred typically pins the starved process to a label
// (e.g. "pc of process 2 is l1") while mustMove lists the fast processes.
//
// On a quotient graph (BuildGraph under symmetry) the search runs on the
// permutation-tracked product, so pred still reads CONCRETE pid positions:
// it is evaluated on the orbit representative permuted back into the
// concrete frame of each path that reaches it. Predicates must not depend
// on dead scan-cursor values (normalized away in orbit keys); pc- and
// shared-value predicates are unaffected. A found lasso is replayed to a
// concrete full-space execution and re-verified before being reported.
func (g *Graph) FindStarvation(pred func(p *gcl.Prog, s gcl.State) bool, mustMove []int) *StarvationReport {
	if g.Quotient() {
		return g.findStarvationQuotient(pred, mustMove)
	}
	n := len(g.Adj)
	ok := make([]bool, n)
	for i := 0; i < n; i++ {
		ok[i] = pred(g.expl.p, g.expl.stateAt(int32(i)))
	}
	// Build the subgraph induced by pred and run SCC over it by masking
	// edges whose endpoints fall outside.
	masked := &Graph{expl: g.expl, Adj: make([][]Edge, n)}
	for v := 0; v < n; v++ {
		if !ok[v] {
			continue
		}
		for _, e := range g.Adj[v] {
			if ok[e.To] {
				masked.Adj[v] = append(masked.Adj[v], e)
			}
		}
	}
	// Component membership via epoch marking: one int32 slice reused
	// across components (a fresh epoch per component) instead of a
	// per-SCC map — the SCC loop over a million-state graph allocates
	// nothing and probes by index.
	mark := make([]int32, n)
	epoch := int32(0)
	for _, comp := range masked.SCCs() {
		if len(comp) == 1 && !hasSelfLoop(masked, comp[0]) {
			continue
		}
		epoch++
		predOK := true
		for _, v := range comp {
			if !ok[v] {
				predOK = false
				break
			}
			mark[v] = epoch
		}
		if !predOK {
			continue
		}
		moves := make([]int, g.expl.p.N)
		for _, v := range comp {
			for _, e := range masked.Adj[v] {
				if mark[e.To] == epoch && e.Pid >= 0 {
					moves[e.Pid]++
				}
			}
		}
		all := true
		for _, pid := range mustMove {
			if moves[pid] == 0 {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		entry := comp[0]
		for _, v := range comp {
			if g.expl.depth[v] < g.expl.depth[entry] {
				entry = v
			}
		}
		return &StarvationReport{
			ComponentSize: len(comp),
			EntryLen:      int(g.expl.depth[entry]),
			Entry:         g.expl.trace(entry),
			MovesByPid:    moves,
			Component:     comp,
		}
	}
	return nil
}

// NoProgressReport describes a reachable cycle on which every listed
// process keeps taking steps yet no critical-section entry ever happens —
// a global livelock. For Bakery++ its absence (a nil report with mustMove =
// all processes) means the algorithm cannot spin forever without service
// under weak fairness: any cycle that starves one process still serves the
// others (the Section 6.3 cycle found by FindStarvation has cs-enter edges
// for the fast pair).
type NoProgressReport struct {
	// ComponentSize counts full states on an unreduced graph, product
	// states on a quotient graph.
	ComponentSize int
	// MovesByPid attributes component-internal moves to CONCRETE pids (on
	// a quotient graph, recovered through the edge permutations).
	MovesByPid []int
	Entry      Trace
	// Quotient/Cycle: as in StarvationReport — set on quotient graphs,
	// where the replayed concrete cycle (no cs-enter step, every mustMove
	// pid moving, orbit position revisited) is verified by execution.
	Quotient bool
	Cycle    []Step
}

// FindNoProgress searches for a reachable SCC with at least one edge, in
// which every process in mustMove takes a step but no edge carries the
// "cs-enter" tag. It returns nil when no such component exists. On a
// quotient graph the search runs on the permutation-tracked product
// exactly like FindStarvation, with found lassos replayed and re-verified.
func (g *Graph) FindNoProgress(mustMove []int) *NoProgressReport {
	if g.Quotient() {
		return g.findNoProgressQuotient(mustMove)
	}
	n := len(g.Adj)
	// Mask out cs-enter edges and SCC the remainder: a qualifying cycle
	// must avoid entries entirely.
	masked := &Graph{expl: g.expl, Adj: make([][]Edge, n)}
	for v := 0; v < n; v++ {
		for _, e := range g.Adj[v] {
			if g.tagOf(v, e) == "cs-enter" {
				continue
			}
			masked.Adj[v] = append(masked.Adj[v], e)
		}
	}
	// Epoch-marked membership; see FindStarvation.
	mark := make([]int32, n)
	epoch := int32(0)
	for _, comp := range masked.SCCs() {
		if len(comp) == 1 && !hasSelfLoop(masked, comp[0]) {
			continue
		}
		epoch++
		for _, v := range comp {
			mark[v] = epoch
		}
		moves := make([]int, g.expl.p.N)
		for _, v := range comp {
			for _, e := range masked.Adj[v] {
				if mark[e.To] == epoch && e.Pid >= 0 {
					moves[e.Pid]++
				}
			}
		}
		ok := true
		for _, pid := range mustMove {
			if moves[pid] == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		entry := comp[0]
		for _, v := range comp {
			if g.expl.depth[v] < g.expl.depth[entry] {
				entry = v
			}
		}
		return &NoProgressReport{
			ComponentSize: len(comp),
			MovesByPid:    moves,
			Entry:         g.expl.trace(entry),
		}
	}
	return nil
}

// tagOf recovers the branch tag of an edge by re-deriving it from the
// source state (edges do not store tags to keep the graph small).
func (g *Graph) tagOf(from int, e Edge) string {
	if e.LabelIdx < 0 {
		return ""
	}
	p := g.expl.p
	s := g.expl.stateAt(int32(from))
	// Under symmetry reduction the stored target is the orbit
	// representative, so successors must be compared through the store's
	// canonical keys; the target's key is hoisted out of the loop.
	var fpTo uint64
	var keyTo gcl.State
	if g.expl.symmetry {
		fpTo, keyTo = g.expl.store.Prepare(g.expl.stateAt(e.To))
	}
	toState := g.expl.stateAt(e.To)
	for _, sc := range p.Succs(s, int(e.Pid), g.expl.opts.Mode, nil) {
		if sc.LabelIdx != e.LabelIdx {
			continue
		}
		if !g.expl.symmetry {
			if sc.State.Equal(toState) {
				return sc.Tag
			}
			continue
		}
		if fp, key := g.expl.store.Prepare(sc.State); fp == fpTo && key.Equal(keyTo) {
			return sc.Tag
		}
	}
	return ""
}

func hasSelfLoop(g *Graph, v int32) bool {
	for _, e := range g.Adj[v] {
		if e.To == v {
			return true
		}
	}
	return false
}
