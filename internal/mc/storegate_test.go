package mc

// The plan-level soundness gate for lossy store tiers: each analysis
// whose correctness needs an exact visited set must refuse compact and
// bitstate stores with an error (the cmds turn it into exit 2), while
// the exact spill tier — exact membership, different residency — passes
// everywhere. One test per gated analysis, plus the ungated safety
// baseline; the conformance suite (storeconformance_test.go) covers the
// accepted combinations' behaviour.

import (
	"strings"
	"testing"

	"bakerypp/internal/specs"
)

var lossyStores = []string{"compact", "compact64", "bitstate"}

// wantStoreRefusal asserts err is planFor's refusal for the named
// analysis.
func wantStoreRefusal(t *testing.T, err error, analysis, mode string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s accepted the lossy %q store; a single omitted state silently corrupts it", analysis, mode)
	}
	if !strings.Contains(err.Error(), "needs an exact visited set") {
		t.Fatalf("%s/%s: refusal has the wrong shape: %v", analysis, mode, err)
	}
	if !strings.Contains(err.Error(), analysis) {
		t.Fatalf("refusal does not name the %s analysis: %v", analysis, err)
	}
}

// TestGraphRefusesLossyStores: BuildGraph addresses states by their
// stable numbering; an omitted state would leave dangling edge targets.
func TestGraphRefusesLossyStores(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 2, M: 2})
	for _, mode := range lossyStores {
		_, err := BuildGraph(p, Options{Store: mustStore(t, mode)})
		wantStoreRefusal(t, err, "graph", mode)
	}
	if _, err := BuildGraph(p, Options{Store: mustStore(t, "exact,spill")}); err != nil {
		t.Fatalf("exact spill tier must remain graph-capable: %v", err)
	}
}

// TestFCFSRefusesLossyStores: the monitor product prunes on membership;
// a false hit would skip a product subtree that can hold the violation.
func TestFCFSRefusesLossyStores(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 2, M: 2})
	for _, mode := range lossyStores {
		_, err := CheckFCFS(p, 0, 1, Options{Store: mustStore(t, mode)})
		wantStoreRefusal(t, err, "fcfs", mode)
	}
	if _, err := CheckFCFS(p, 0, 1, Options{Store: mustStore(t, "exact,spill")}); err != nil {
		t.Fatalf("exact spill tier must remain FCFS-capable: %v", err)
	}
}

// TestRefinementRefusesLossyStores: a false "already memoized" hit would
// prune an unexplored behaviour and could mask a counterexample.
func TestRefinementRefusesLossyStores(t *testing.T) {
	impl := specs.BakeryPP(specs.Config{N: 2, M: 2})
	spec := specs.Bakery(specs.Config{N: 2, M: 64})
	for _, mode := range lossyStores {
		_, err := CheckBoundedRefinement(impl, spec, RefinementOptions{
			MaxEvents: 2, Store: mustStore(t, mode),
		})
		wantStoreRefusal(t, err, "refinement", mode)
	}
	if _, err := CheckBoundedRefinement(impl, spec, RefinementOptions{
		MaxEvents: 2, Store: mustStore(t, "exact,spill"),
	}); err != nil {
		t.Fatalf("exact spill tier must remain refinement-capable: %v", err)
	}
}

// TestSafetyAcceptsLossyStores is the contrast case: the plain safety
// check is self-correcting under omission risk (it claims only the
// probabilistic verdict the banner states), so planFor accepts every
// tier — and PlanFor, the exported surface, agrees with the internal
// gate on both sides.
func TestSafetyAcceptsLossyStores(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 2, M: 2})
	for _, mode := range append([]string{"exact", "exact,spill", "compact,spill"}, lossyStores...) {
		plan, err := PlanFor(p, Options{Store: mustStore(t, mode)}, SafetyAnalysis{})
		if err != nil {
			t.Fatalf("safety analysis refused store %q: %v", mode, err)
		}
		if got := plan.Store.String(); got != mode {
			t.Fatalf("plan normalized %q to %q", mode, got)
		}
	}
	for _, mode := range lossyStores {
		if _, err := PlanFor(p, Options{Store: mustStore(t, mode)}, GraphAnalysis{}); err == nil {
			t.Fatalf("PlanFor accepted %q for the graph analysis", mode)
		}
	}
}
