package mc

// Store-mode configuration and reporting for the beyond-RAM visited-set
// tiers (see store.go for the implementations and docs/model-checking.md,
// "State stores and memory", for the soundness discussion). The default —
// StoreExact, no spill — is the historical behaviour: every key vector is
// retained in heap and membership is fingerprint+Equal exact. The other
// modes trade exactness or heap residency for reach:
//
//   - StoreCompact keeps only a 64- or 128-bit fingerprint per state (TLC's
//     trust-the-fingerprint mode, SPIN's hash compaction). A fingerprint
//     collision makes a fresh state look visited, silently omitting its
//     subtree, so verdicts are probabilistic; the expected omission count
//     (birthday bound) is computed from the final entry count and reported
//     in StoreReport/the cmd banner.
//   - StoreBitstate is SPIN's supertrace: k bits per state in a fixed bit
//     array. Far smaller again, far higher omission risk — a frontier-probing
//     mode whose verdict reports coverage confidence, never exhaustiveness.
//   - Spill moves state/key vectors out of the Go heap into an unlinked
//     mmap-backed arena file, so the OS pages them instead of the GC and
//     GOMEMLIMIT stops counting them. With StoreExact everything stays
//     exact and traceable beyond RAM; with StoreCompact the arena retains
//     the concrete vectors the compact store dropped, restoring
//     counterexample traces.
//
// Mode selection rides on Options.Store; planFor refuses lossy modes for
// analyses whose soundness needs an exact visited set (graph/cycle
// analyses, FCFS, refinement — see analysis.go).

import (
	"fmt"
	"math"
	"strings"
)

// StoreMode selects the visited-set representation.
type StoreMode uint8

const (
	// StoreExact resolves fingerprint collisions by full key comparison;
	// membership answers are always right. The default.
	StoreExact StoreMode = iota
	// StoreCompact keeps fingerprints only (hash compaction); a collision
	// omits a state. Lossy.
	StoreCompact
	// StoreBitstate keeps k hashed bits per state (Bloom/supertrace);
	// stores no values, so POR (which needs stored depths) is disabled
	// alongside. Lossy.
	StoreBitstate
)

// StoreOptions configures the visited-set tier of an exploration. The zero
// value is the exact in-heap store.
type StoreOptions struct {
	Mode StoreMode
	// Spill backs state/key vectors with an unlinked mmap arena file
	// instead of the Go heap (any mode; see package comment above).
	Spill bool
	// SpillDir is where the arena file is created ("" = os.TempDir()).
	SpillDir string
	// CompactBits is the compact-store fingerprint width: 64 or 128
	// (0 = 128, the validated default).
	CompactBits int
	// BitstateLog2 is log2 of the bitstate array's bit count
	// (0 = 27, a 16 MiB array — SPIN's -w27).
	BitstateLog2 int
	// BitstateHashes is the per-state bit count k (0 = 3).
	BitstateHashes int
	// Seed perturbs the lossy modes' hash functions; runs are deterministic
	// per seed for any Workers count (the banner fingerprint proves it).
	// Exact modes ignore it.
	Seed uint64
	// Shadow, with StoreCompact, keeps a full exact store alongside and
	// counts every membership answer on which the two diverge (a collision
	// caught red-handed). Behaviour — including the divergence — follows
	// the compact answer, so a shadow run validates exactly what a plain
	// compact run would do. Validation only: it costs exact-store memory.
	Shadow bool
}

// normalized fills defaults and validates; it is what planFor stores into
// Plan.Store, so every store constructor sees resolved values.
func (so StoreOptions) normalized() (StoreOptions, error) {
	switch so.Mode {
	case StoreExact, StoreCompact, StoreBitstate:
	default:
		return so, fmt.Errorf("mc: unknown store mode %d", so.Mode)
	}
	if so.CompactBits == 0 {
		so.CompactBits = 128
	}
	if so.CompactBits != 64 && so.CompactBits != 128 {
		return so, fmt.Errorf("mc: compact store width must be 64 or 128 bits, got %d", so.CompactBits)
	}
	if so.BitstateLog2 == 0 {
		so.BitstateLog2 = 27
	}
	if so.BitstateLog2 < 10 || so.BitstateLog2 > 40 {
		return so, fmt.Errorf("mc: bitstate log2 size must lie in [10,40], got %d", so.BitstateLog2)
	}
	if so.BitstateHashes == 0 {
		so.BitstateHashes = 3
	}
	if so.BitstateHashes < 1 || so.BitstateHashes > 8 {
		return so, fmt.Errorf("mc: bitstate hash count must lie in [1,8], got %d", so.BitstateHashes)
	}
	if so.Shadow && so.Mode != StoreCompact {
		return so, fmt.Errorf("mc: shadow validation applies to the compact store only")
	}
	return so, nil
}

// Lossy reports whether the mode can wrongly report a fresh state as
// visited (probabilistic verdicts).
func (so StoreOptions) Lossy() bool {
	return so.Mode == StoreCompact || so.Mode == StoreBitstate
}

// hasValues reports whether Lookup returns real stored values; the bitstate
// store answers membership only, which rules out the POR proviso's depth
// lookups and any value-carrying use.
func (so StoreOptions) hasValues() bool { return so.Mode != StoreBitstate }

// String renders the canonical spec, parseable by ParseStoreSpec.
func (so StoreOptions) String() string {
	var b strings.Builder
	switch so.Mode {
	case StoreCompact:
		b.WriteString("compact")
		if so.CompactBits == 64 {
			b.WriteString("64")
		}
	case StoreBitstate:
		b.WriteString("bitstate")
	default:
		b.WriteString("exact")
	}
	if so.Spill {
		b.WriteString(",spill")
	}
	if so.Shadow {
		b.WriteString(",shadow")
	}
	return b.String()
}

// ParseStoreSpec parses a -store flag value: a comma-separated list of
// "exact", "compact", "compact64", "compact128", "bitstate", plus the
// modifiers "spill" and "shadow". Examples: "compact", "exact,spill",
// "compact,spill", "compact64,shadow".
func ParseStoreSpec(spec string) (StoreOptions, error) {
	var so StoreOptions
	for _, tok := range strings.Split(spec, ",") {
		switch strings.TrimSpace(tok) {
		case "", "exact":
		case "compact", "compact128":
			so.Mode, so.CompactBits = StoreCompact, 128
		case "compact64":
			so.Mode, so.CompactBits = StoreCompact, 64
		case "bitstate":
			so.Mode = StoreBitstate
		case "spill":
			so.Spill = true
		case "shadow":
			so.Shadow = true
		default:
			return so, fmt.Errorf("mc: unknown store spec token %q (want exact|compact[64|128]|bitstate, modifiers spill, shadow)", tok)
		}
	}
	return so.normalized()
}

// StoreReport is the verdict-side accounting of the store tier a run used:
// what mode ran, how much it held, and — for lossy modes — how likely it is
// that the exploration silently omitted states. Engines attach it to
// Result.Store; the cmds render it as the probabilistic-verdict banner.
type StoreReport struct {
	// Mode is the resolved spec, e.g. "exact", "compact", "bitstate",
	// "compact,spill".
	Mode string `json:"mode"`
	// Lossy marks probabilistic verdicts (compact/bitstate).
	Lossy bool   `json:"lossy"`
	Seed  uint64 `json:"seed,omitempty"`
	// Entries is the number of distinct keys the store believes it holds.
	Entries int64 `json:"entries"`
	// ExpectedOmissions bounds the expected number of fresh states the run
	// wrongly treated as visited: the birthday bound k(k-1)/2^(w+1) for a
	// w-bit compact store, probes·fill^k for bitstate (final fill ratio, an
	// upper bound since fill only grows). 0 for exact modes.
	ExpectedOmissions float64 `json:"expected_omissions"`
	// Confidence = exp(-ExpectedOmissions), a lower bound on the
	// probability that no state was omitted (Poisson tail). 1 for exact.
	Confidence float64 `json:"confidence"`
	// ShadowDivergences counts membership answers on which the compact
	// store diverged from its exact shadow (Shadow runs only).
	ShadowDivergences int64 `json:"shadow_divergences,omitempty"`
	// SpillBytes is the arena footprint on disk (spill runs only).
	SpillBytes int64 `json:"spill_bytes,omitempty"`
	// BitsSet/Bits/Hashes describe the bitstate array's final fill.
	BitsSet int64 `json:"bits_set,omitempty"`
	Bits    int64 `json:"bits,omitempty"`
	Hashes  int   `json:"hashes,omitempty"`
	// Traceable reports whether counterexample traces were reconstructible
	// under this mode (false for compact/bitstate without spill, which free
	// expanded state vectors — the memory win — and with them the trace).
	Traceable bool `json:"traceable"`
}

// Banner renders the probabilistic-verdict notice lossy runs must print,
// or "" for exact modes.
func (sr *StoreReport) Banner() string {
	if sr == nil || !sr.Lossy {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "NOTE: probabilistic verdict — %s store (seed %d): %d entries, expected omitted states <= %.3g, confidence P(none omitted) >= %.9f",
		sr.Mode, sr.Seed, sr.Entries, sr.ExpectedOmissions, sr.Confidence)
	if sr.Bits > 0 {
		fmt.Fprintf(&b, "; bitstate fill %d/%d bits (%.4f%%)", sr.BitsSet, sr.Bits, 100*float64(sr.BitsSet)/float64(sr.Bits))
	}
	if sr.ShadowDivergences > 0 {
		fmt.Fprintf(&b, "; shadow caught %d divergences", sr.ShadowDivergences)
	}
	if !sr.Traceable {
		b.WriteString("; traces suppressed (add ,spill or use -store exact to recover them)")
	}
	return b.String()
}

// StoreReporter is the optional interface store implementations expose so
// engines can fill Result.Store.
type StoreReporter interface {
	Report() StoreReport
}

// confidenceFrom converts an expected-omission bound into the Poisson
// no-omission probability, clamped to [0,1].
func confidenceFrom(expected float64) float64 {
	c := math.Exp(-expected)
	if c > 1 {
		return 1
	}
	return c
}
