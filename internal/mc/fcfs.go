package mc

import (
	"fmt"

	"bakerypp/internal/gcl"
)

// This file checks first-come-first-served entry — the bakery algorithm's
// first remarkable property (paper Section 1.2) — as a model-checked
// property rather than a simulation statistic. FCFS is not a state
// invariant: it relates the order of doorway completions to the order of
// critical-section entries along an execution, so it is checked as a
// monitor automaton composed with the program:
//
//	phase 0: watching. When `first` completes its doorway
//	         (tag "doorway-done") -> phase 1.
//	phase 1: first has a ticket. If first enters cs -> phase 0 (served in
//	         order). If `second` leaves its noncritical section
//	         (tag "try") -> phase 2.
//	phase 2: second arrived strictly after first's doorway completed.
//	         If second enters cs before first -> FCFS VIOLATION.
//	         If first enters cs -> phase 0.
//
// The product state space (program state × phase) is explored exhaustively;
// a violation comes with the shortest witnessing interleaving.

// FCFSResult reports an FCFS check.
type FCFSResult struct {
	Prog   *gcl.Prog
	First  int
	Second int
	// Holds is true when no reachable execution violates FCFS for the
	// ordered pair (first, second).
	Holds bool
	// Complete is false if the state bound was hit first.
	Complete bool
	States   int
	// Witness is the violating execution when Holds is false.
	Witness *Trace
	// Symmetry reports that the product was deduplicated on pinned-orbit
	// representatives: states related by a permutation of the NON-pinned
	// pids share one product entry. Requested via Options.Symmetry,
	// applied when the spec supports it (see analysis.go).
	Symmetry bool
}

// String renders a one-line summary.
func (r *FCFSResult) String() string {
	status := "FCFS holds"
	if !r.Holds {
		status = "FCFS VIOLATED"
	} else if !r.Complete {
		status = "FCFS holds up to state bound"
	}
	sym := ""
	if r.Symmetry {
		sym = " [pinned-symmetry]"
	}
	return fmt.Sprintf("%s: %s for pair (%d, %d) — %d product states%s",
		r.Prog.Name, status, r.First, r.Second, r.States, sym)
}

// CheckFCFS verifies first-come-first-served entry for the ordered process
// pair (first, second): whenever first completes its doorway before second
// begins competing, first enters the critical section before second. The
// program must carry the specs package's "doorway-done", "try" and
// "cs-enter" branch tags. Options.MaxStates bounds the product exploration
// (0 = DefaultMaxStates); Options.Symmetry requests pinned-orbit
// deduplication — the monitor names the pair, so the pipeline
// canonicalizes over the permutations fixing first and second only
// (FCFSAnalysis in analysis.go). Dedup is again representative-only:
// stored product nodes are concrete states discovered from their concrete
// parents, so a violation witness is a real execution. Other Options
// fields (Workers, POR, Crash) do not apply to the monitor product. A
// lossy Options.Store is refused with an error: the monitor prunes whole
// product subtrees on membership answers, so one fingerprint collision
// could silently mask a violation (exact,spill is fine).
func CheckFCFS(p *gcl.Prog, first, second int, opts Options) (*FCFSResult, error) {
	if first == second || first < 0 || second < 0 || first >= p.N || second >= p.N {
		panic(fmt.Sprintf("mc: bad FCFS pair (%d, %d) for N=%d", first, second, p.N))
	}
	tags := p.BranchTags()
	for _, need := range []string{"doorway-done", "try", "cs-enter"} {
		if tags[need] == 0 {
			panic(fmt.Sprintf("mc: %s lacks the %q tag needed for FCFS checking", p.Name, need))
		}
	}
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = DefaultMaxStates
	}
	plan, err := planFor(p, opts, FCFSAnalysis{First: first, Second: second})
	if err != nil {
		return nil, err
	}
	res := &FCFSResult{Prog: p, First: first, Second: second, Holds: true,
		Symmetry: plan.Pinned != nil}

	type node struct {
		st     gcl.State
		phase  int8
		parent int32
		byPid  int8
		label  string
	}
	// The visited set over (program state, monitor phase) product nodes:
	// the shared StateStore keyed on the state with the phase appended.
	// The monitor pins a concrete process pair, so full-orbit symmetry is
	// out — but the plan may select pinned-orbit keying, which collapses
	// states related by permutations of the remaining pids.
	nodes := []node{{st: p.InitState(), phase: 0, parent: -1, byPid: -1}}
	seen := newStateStore(p, false, plan, nil)
	fp0, key0 := seen.Prepare(nodes[0].st, 0)
	seen.Insert(fp0, key0, 0)

	// The product loop probes the store through a per-head key slab instead
	// of the allocating Prepare path: successors are generated into a
	// reusable SuccBuf, each probe key (pinned-canonical under symmetry,
	// concrete otherwise, plus the phase word) is packed into the slab, and
	// only keys of FRESH product nodes are promoted to stable arena storage
	// for the store to retain. Duplicates — the vast majority in a dense
	// product — cost no allocation at all.
	var (
		buf     gcl.SuccBuf
		scratch gcl.KeySlab
		stable  retainArena
		canon   *gcl.Canonicalizer
	)
	if plan.Pinned != nil {
		canon = p.NewCanonicalizer()
	}

	buildTrace := func(i int32, extra *gcl.Succ) *Trace {
		var rev []int32
		for k := i; k >= 0; k = nodes[k].parent {
			rev = append(rev, k)
		}
		t := &Trace{Prog: p, Init: nodes[rev[len(rev)-1]].st}
		for k := len(rev) - 2; k >= 0; k-- {
			nd := nodes[rev[k]]
			t.Steps = append(t.Steps, Step{Pid: int(nd.byPid), Label: nd.label, State: nd.st})
		}
		if extra != nil {
			t.Steps = append(t.Steps, Step{Pid: extra.Pid, Label: extra.Label(p), State: extra.State})
		}
		return t
	}

	for head := int32(0); head < int32(len(nodes)); head++ {
		if len(nodes) >= maxStates {
			res.Complete = false
			res.States = len(nodes)
			return res, nil
		}
		nd := nodes[head]
		buf.Reset()
		scratch.Reset()
		p.AllSuccsInto(nd.st, gcl.ModeUnbounded, &buf)
		for _, sc := range buf.Succs() {
			phase := nd.phase
			switch {
			case phase == 0 && sc.Pid == first && sc.Tag == "doorway-done":
				phase = 1
			case phase == 1 && sc.Pid == first && sc.Tag == "cs-enter":
				phase = 0
			case phase == 1 && sc.Pid == second && sc.Tag == "try":
				phase = 2
			case phase == 2 && sc.Pid == first && sc.Tag == "cs-enter":
				phase = 0
			case phase == 2 && sc.Pid == second && sc.Tag == "cs-enter":
				res.Holds = false
				res.States = len(nodes)
				sc := sc
				res.Witness = buildTrace(head, &sc)
				return res, nil
			}
			probe := sc.State
			if canon != nil {
				probe = canon.CanonicalizePinned(sc.State, plan.Pinned)
			}
			ki := scratch.AppendKey(probe, int32(phase))
			fp, key := scratch.Fp(ki), scratch.Key(ki)
			if _, dup := seen.Lookup(fp, key); dup {
				continue
			}
			seen.Insert(fp, stable.retain(key), int32(len(nodes)))
			nodes = append(nodes, node{
				st: stable.retain(sc.State), phase: phase, parent: head,
				byPid: int8(sc.Pid), label: sc.Label(p),
			})
		}
	}
	res.Complete = true
	res.States = len(nodes)
	return res, nil
}
