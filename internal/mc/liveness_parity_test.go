package mc

import (
	"fmt"
	"testing"

	"bakerypp/internal/gcl"
	"bakerypp/internal/specs"
)

// This file pins the reduction-aware liveness pipeline's central contract:
// for every registered finite-state specification at N <= 4, the
// starvation, no-progress, and FCFS analyses return IDENTICAL verdicts on
// the full state space and on the symmetry-reduced quotient, sequentially
// and with -workers -1 — and every quotient counterexample lasso replays
// as a concrete execution, re-verified here step by step with independent
// successor generation. (Classic Bakery's unbounded graph cannot be built
// exhaustively, so it is swept on the bounded FCFS monitor only.)

// raceEnabled is set by race_enabled_test.go under the race detector; the
// heavy parity cell would take tens of minutes there.
var raceEnabled bool

type parityCell struct {
	algo  string
	cfg   specs.Config
	heavy bool // skipped with -short and under -race (full side explores >1M states)
}

func parityCells() []parityCell {
	return []parityCell{
		{algo: "bakerypp", cfg: specs.Config{N: 2, M: 2}},
		{algo: "bakerypp", cfg: specs.Config{N: 3, M: 2}},
		{algo: "bakerypp", cfg: specs.Config{N: 3, M: 3}},
		{algo: "bakerypp", cfg: specs.Config{N: 4, M: 2}, heavy: true},
		{algo: "modbakery", cfg: specs.Config{N: 2, M: 2}},
		{algo: "modbakery", cfg: specs.Config{N: 3, M: 2}},
		{algo: "blackwhite", cfg: specs.Config{N: 2}},
		{algo: "blackwhite", cfg: specs.Config{N: 3}},
		{algo: "peterson", cfg: specs.Config{N: 2}},
		{algo: "peterson", cfg: specs.Config{N: 3}},
		{algo: "szymanski", cfg: specs.Config{N: 2}},
		{algo: "szymanski", cfg: specs.Config{N: 3}},
		{algo: "szymanski", cfg: specs.Config{N: 4}},
	}
}

// replayTrace walks steps from init, requiring every step to be a real
// transition (successor generation re-derived independently), and returns
// the matched branch tags alongside the final state.
func replayTrace(t *testing.T, p *gcl.Prog, init gcl.State, steps []Step) ([]string, gcl.State) {
	t.Helper()
	cur := init
	tags := make([]string, 0, len(steps))
	for i, st := range steps {
		matched := false
		tag := ""
		if st.Label == "CRASH" {
			if next := p.CrashSucc(cur, st.Pid); next.Equal(st.State) {
				matched = true
			}
		} else {
			for _, sc := range p.Succs(cur, st.Pid, gcl.ModeUnbounded, nil) {
				if sc.Label(p) == st.Label && sc.State.Equal(st.State) {
					matched = true
					tag = sc.Tag
					break
				}
			}
		}
		if !matched {
			t.Fatalf("step %d (p%d:%s) is not a real transition of %s", i, st.Pid, st.Label, p.Name)
		}
		tags = append(tags, tag)
		cur = st.State
	}
	return tags, cur
}

// verifyStarvationLasso re-verifies a quotient starvation report by
// concrete execution: entry path real, cycle real, predicate invariant on
// the cycle, all mustMove pids moving, and the cycle closing on its orbit
// position.
func verifyStarvationLasso(t *testing.T, p *gcl.Prog, rep *StarvationReport,
	pred func(*gcl.Prog, gcl.State) bool, mustMove []int) {
	t.Helper()
	if !rep.Quotient || len(rep.Cycle) == 0 {
		t.Fatal("quotient report without a verified cycle")
	}
	if !rep.Entry.Init.Equal(p.InitState()) {
		t.Fatal("entry trace does not start at the initial state")
	}
	_, start := replayTrace(t, p, rep.Entry.Init, rep.Entry.Steps)
	if !pred(p, start) {
		t.Fatal("predicate fails at the cycle's start")
	}
	_, end := replayTrace(t, p, start, rep.Cycle)
	for i, st := range rep.Cycle {
		if !pred(p, st.State) {
			t.Fatalf("predicate fails at cycle step %d", i)
		}
	}
	moved := map[int]bool{}
	for _, st := range rep.Cycle {
		moved[st.Pid] = true
	}
	for _, pid := range mustMove {
		if !moved[pid] {
			t.Fatalf("required mover %d takes no step on the replayed cycle", pid)
		}
	}
	if !p.NormalizeCursors(end).Equal(p.NormalizeCursors(start)) {
		t.Fatal("replayed cycle does not close on its orbit position")
	}
}

// verifyNoProgressLasso is the analogue for no-progress reports: the
// replayed cycle must additionally take no cs-enter branch.
func verifyNoProgressLasso(t *testing.T, p *gcl.Prog, rep *NoProgressReport, mustMove []int) {
	t.Helper()
	if !rep.Quotient || len(rep.Cycle) == 0 {
		t.Fatal("quotient report without a verified cycle")
	}
	_, start := replayTrace(t, p, rep.Entry.Init, rep.Entry.Steps)
	tags, end := replayTrace(t, p, start, rep.Cycle)
	for i, tag := range tags {
		if tag == "cs-enter" {
			t.Fatalf("replayed no-progress cycle enters the critical section at step %d", i)
		}
	}
	moved := map[int]bool{}
	for _, st := range rep.Cycle {
		moved[st.Pid] = true
	}
	for _, pid := range mustMove {
		if !moved[pid] {
			t.Fatalf("required mover %d takes no step on the replayed cycle", pid)
		}
	}
	if !p.NormalizeCursors(end).Equal(p.NormalizeCursors(start)) {
		t.Fatal("replayed cycle does not close on its orbit position")
	}
}

func TestLivenessVerdictParityFullVsQuotient(t *testing.T) {
	for _, cell := range parityCells() {
		cell := cell
		name := fmt.Sprintf("%s-n%d-m%d", cell.algo, cell.cfg.N, cell.cfg.M)
		t.Run(name, func(t *testing.T) {
			if cell.heavy && (testing.Short() || raceEnabled) {
				t.Skip("full-side graph explores >1M states; skipped with -short and under -race")
			}
			mk := func() *gcl.Prog {
				p, err := specs.Get(cell.algo, cell.cfg)
				if err != nil {
					t.Fatal(err)
				}
				return p
			}
			p := mk()
			live := specs.LivenessOf(p)
			full, err := BuildGraph(mk(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			quot, err := BuildGraph(mk(), Options{Symmetry: true})
			if err != nil {
				t.Fatal(err)
			}
			quotPar, err := BuildGraph(mk(), Options{Symmetry: true, Workers: -1})
			if err != nil {
				t.Fatal(err)
			}
			if quot.Summary.States != quotPar.Summary.States ||
				quot.Summary.Transitions != quotPar.Summary.Transitions {
				t.Fatalf("quotient graph differs between engines: %d/%d vs %d/%d states/transitions",
					quot.Summary.States, quot.Summary.Transitions,
					quotPar.Summary.States, quotPar.Summary.Transitions)
			}
			wantQuotient := specs.Symmetric(cell.algo) && p.CanTrackPerms()
			if quot.Quotient() != wantQuotient {
				t.Fatalf("Quotient() = %v, want %v", quot.Quotient(), wantQuotient)
			}

			slow := p.N - 1
			mustMoveFast := make([]int, 0, p.N-1)
			for pid := 0; pid < p.N; pid++ {
				if pid != slow {
					mustMoveFast = append(mustMoveFast, pid)
				}
			}

			// Pinned starvation at the spec's declared gate label.
			if live.StarveAt != "" {
				li := p.LabelIndex(live.StarveAt)
				pred := func(pr *gcl.Prog, s gcl.State) bool { return pr.PC(s, slow) == li }
				fr := full.FindStarvation(pred, mustMoveFast)
				qr := quot.FindStarvation(pred, mustMoveFast)
				qpr := quotPar.FindStarvation(pred, mustMoveFast)
				if (fr == nil) != (qr == nil) || (qr == nil) != (qpr == nil) {
					t.Errorf("starvation@%s verdicts diverge: full=%v quotient=%v parallel=%v",
						live.StarveAt, fr != nil, qr != nil, qpr != nil)
				} else if qr != nil && quot.Quotient() {
					verifyStarvationLasso(t, p, qr, pred, mustMoveFast)
				}
			}

			// Active starvation: the slow process keeps moving yet never
			// reaches cs (every spec declares a cs label).
			cs := p.LabelIndex("cs")
			activePred := func(pr *gcl.Prog, s gcl.State) bool { return pr.PC(s, slow) != cs }
			all := allPids(p.N)
			fr := full.FindStarvation(activePred, all)
			qr := quot.FindStarvation(activePred, all)
			qpr := quotPar.FindStarvation(activePred, all)
			if (fr == nil) != (qr == nil) || (qr == nil) != (qpr == nil) {
				t.Errorf("active-starvation verdicts diverge: full=%v quotient=%v parallel=%v",
					fr != nil, qr != nil, qpr != nil)
			} else if qr != nil && quot.Quotient() {
				verifyStarvationLasso(t, p, qr, activePred, all)
			}

			// Global no-progress.
			if live.NoProgress {
				fn := full.FindNoProgress(all)
				qn := quot.FindNoProgress(all)
				qpn := quotPar.FindNoProgress(all)
				if (fn == nil) != (qn == nil) || (qn == nil) != (qpn == nil) {
					t.Errorf("no-progress verdicts diverge: full=%v quotient=%v parallel=%v",
						fn != nil, qn != nil, qpn != nil)
				} else if qn != nil && quot.Quotient() {
					verifyNoProgressLasso(t, p, qn, all)
				}
			}

			// FCFS for two pid pairs.
			if live.FCFS {
				for _, pair := range [][2]int{{0, 1}, {p.N - 1, 0}} {
					ff := mustFCFS(mk(), pair[0], pair[1], Options{})
					qf := mustFCFS(mk(), pair[0], pair[1], Options{Symmetry: true})
					if ff.Holds != qf.Holds {
						t.Errorf("FCFS(%d,%d) verdicts diverge: full=%v reduced=%v",
							pair[0], pair[1], ff.Holds, qf.Holds)
					}
					if qf.Symmetry && qf.States > ff.States {
						t.Errorf("FCFS(%d,%d): pinned reduction explored MORE states (%d > %d)",
							pair[0], pair[1], qf.States, ff.States)
					}
					if !qf.Holds {
						replayTrace(t, p, p.InitState(), qf.Witness.Steps)
					}
				}
			}
		})
	}
}

// Classic Bakery's graph is unbounded, so its reduction parity is swept on
// the bounded FCFS monitor: both runs hold within their bounds and the
// pinned reduction reaches at least as deep.
func TestLivenessParityBakeryBoundedFCFS(t *testing.T) {
	mk := func() *gcl.Prog { return specs.Bakery(specs.Config{N: 3, M: 1 << 14}) }
	ff := mustFCFS(mk(), 0, 1, Options{MaxStates: 40000})
	qf := mustFCFS(mk(), 0, 1, Options{MaxStates: 40000, Symmetry: true})
	if !ff.Holds || !qf.Holds {
		t.Fatalf("bounded bakery FCFS: full=%v reduced=%v, want both to hold", ff.Holds, qf.Holds)
	}
	if !qf.Symmetry {
		t.Fatal("pinned reduction not applied to bakery")
	}
}
