//go:build !unix

package mc

// Heap-backed fallback for platforms without mmap: the spill tier still
// works (and the store-conformance suite still covers it) but the
// beyond-RAM property degrades to ordinary allocations.

import "os"

func mapChunk(_ *os.File, _ int64, size int) ([]byte, error) {
	return make([]byte, size), nil
}

func unmapChunk(_ []byte) {}
