package mc

import (
	"testing"

	"bakerypp/internal/specs"
)

// E12, model half: Bakery++ is safe under Lamport-safe register semantics —
// reads overlapping writes return arbitrary in-domain values, and both
// mutual exclusion and the overflow bound still hold over ALL interleavings
// and ALL flicker outcomes. This is strictly stronger than the atomic-step
// verification of E1.
func TestBakeryPPSafeRegisters(t *testing.T) {
	for _, cfg := range []struct{ n, m int }{{2, 2}, {2, 3}} {
		p := specs.BakeryPPSafe(cfg.n, cfg.m)
		res := Check(p, Options{Invariants: safety()})
		if res.Violation != nil {
			t.Fatalf("N=%d M=%d: violation of %s:\n%s", cfg.n, cfg.m,
				res.Violation.Invariant, res.Violation.Trace.String())
		}
		if !res.Complete {
			t.Fatalf("N=%d M=%d: incomplete at %d states", cfg.n, cfg.m, res.States)
		}
		t.Logf("bakerypp-safe N=%d M=%d: %d states, %d transitions",
			cfg.n, cfg.m, res.States, res.Transitions)
	}
}

func TestBakeryPPSafeRegistersThreeProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("three-process safe-register space is large")
	}
	p := specs.BakeryPPSafe(3, 2)
	res := Check(p, Options{Invariants: safety(), MaxStates: 1_500_000})
	if res.Violation != nil {
		t.Fatalf("violation of %s:\n%s", res.Violation.Invariant, res.Violation.Trace.String())
	}
	t.Logf("bakerypp-safe N=3 M=2: %d states explored (complete=%v)", res.States, res.Complete)
}

// The safe-register spec still refines Bakery observably.
func TestBakeryPPSafeRefinesBakery(t *testing.T) {
	impl := specs.BakeryPPSafe(2, 2)
	spec := specs.Bakery(specs.Config{N: 2, M: 1 << 14})
	res, err := CheckBoundedRefinement(impl, spec, RefinementOptions{MaxEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("refinement failed at %s:\n%s", res.FailEvent, res.Counterexample.String())
	}
}

// Crash transitions compose with the safe-register model.
func TestBakeryPPSafeUnderCrashes(t *testing.T) {
	p := specs.BakeryPPSafe(2, 2)
	res := Check(p, Options{Invariants: safety(), Crash: true})
	if res.Violation != nil {
		t.Fatalf("violation of %s:\n%s", res.Violation.Invariant, res.Violation.Trace.String())
	}
	if !res.Complete {
		t.Fatalf("incomplete at %d states", res.States)
	}
}
