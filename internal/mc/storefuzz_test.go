package mc

// Fuzz targets for the lossy store tiers' one-sided error contract. Both
// tiers are allowed false HITS (a fresh state wrongly reported visited —
// the probabilistic-verdict risk the banner quantifies) but never a false
// MISS: a key that was inserted must always probe back as present, or the
// engines would re-number and re-expand visited states and the store
// report's omission bound would be meaningless. `go test` exercises the
// seed corpus; `go test -fuzz FuzzCompactStoreNoFalseMiss ./internal/mc`
// explores further.

import (
	"fmt"
	"math"
	"testing"

	"bakerypp/internal/gcl"
)

// fuzzKeys decodes the fuzz payload into a deduplicated set of key
// vectors: a stream of little-endian words chopped into states whose
// lengths also come from the payload, so the corpus controls both
// contents and shape.
func fuzzKeys(data []byte) []gcl.State {
	words := make([]int32, 0, len(data)/4+1)
	for i := 0; i+3 < len(data); i += 4 {
		words = append(words, int32(le32(data[i:])))
	}
	if len(words) == 0 {
		words = []int32{0}
	}
	seen := map[string]bool{}
	var keys []gcl.State
	for i := 0; i < len(words) && len(keys) < 128; {
		n := 1 + int(uint32(words[i])%8)
		if i+1+n > len(words) {
			n = len(words) - i - 1
		}
		if n <= 0 {
			break
		}
		key := gcl.State(words[i+1 : i+1+n])
		i += 1 + n
		k := fmt.Sprint([]int32(key))
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, key)
	}
	return keys
}

// FuzzCompactStoreNoFalseMiss pins hash compaction's one-sided error for
// both widths and arbitrary seeds: every inserted key is found again, and
// when no two keys aliased onto one fingerprint slot, every value reads
// back exactly.
func FuzzCompactStoreNoFalseMiss(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 4, 0, 0, 0}, uint64(0), false)
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 4, 0, 0, 0}, uint64(0xfeed), true)
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0, 7, 7, 7, 7}, uint64(1), true)
	f.Fuzz(func(t *testing.T, data []byte, seed uint64, wide bool) {
		keys := fuzzKeys(data)
		if len(keys) == 0 {
			t.Skip()
		}
		so := StoreOptions{Mode: StoreCompact, CompactBits: 64, Seed: seed}
		if wide {
			so.CompactBits = 128
		}
		so, err := so.normalized()
		if err != nil {
			t.Fatal(err)
		}
		st := newCompactStore(conformanceProg(), Plan{Store: so})
		slots := map[[2]uint64]int{} // (lo, hi) → times keyed
		for i, key := range keys {
			fp, k := st.Prepare(key)
			lo, hi := st.slots(fp, k)
			slots[[2]uint64{lo, hi}]++
			st.Insert(fp, k, int32(i))
		}
		for i, key := range keys {
			fp, k := st.Prepare(key)
			val, ok := st.Lookup(fp, k)
			if !ok {
				t.Fatalf("false miss: key %d (%v) inserted but not found (seed %d, wide %v)", i, key, seed, wide)
			}
			lo, hi := st.slots(fp, k)
			if slots[[2]uint64{lo, hi}] == 1 && val != int32(i) {
				t.Fatalf("unaliased key %d reads back value %d", i, val)
			}
		}
		rep := st.Report()
		if rep.Entries <= 0 || rep.Entries > int64(len(keys)) {
			t.Fatalf("entry count %d outside (0, %d]", rep.Entries, len(keys))
		}
		if rep.ExpectedOmissions < 0 || rep.Confidence <= 0 || rep.Confidence > 1 {
			t.Fatalf("implausible omission accounting: expected %v, confidence %v", rep.ExpectedOmissions, rep.Confidence)
		}
	})
}

// FuzzBitstateCoverageBound pins the bitstate tier across array sizes,
// hash counts and seeds: inserted keys always probe back (no false miss),
// the fill accounting matches a popcount of the array, and the reported
// expected-omission bound is exactly probes·fill^k with its Poisson
// confidence — the numbers the verdict banner prints instead of claiming
// exhaustiveness.
func FuzzBitstateCoverageBound(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 4, 0, 0, 0}, uint64(0), uint8(10), uint8(3))
	f.Add([]byte{9, 0, 0, 0, 9, 1, 0, 0, 9, 2, 0, 0, 9, 3, 0, 0}, uint64(7), uint8(12), uint8(1))
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0}, uint64(0xfeed), uint8(11), uint8(8))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64, log2 uint8, k uint8) {
		keys := fuzzKeys(data)
		if len(keys) == 0 {
			t.Skip()
		}
		so := StoreOptions{
			Mode:           StoreBitstate,
			BitstateLog2:   10 + int(log2)%7, // [10,16]: small enough to see fill
			BitstateHashes: 1 + int(k)%8,
			Seed:           seed,
		}
		so, err := so.normalized()
		if err != nil {
			t.Fatal(err)
		}
		st := newBitstateStore(conformanceProg(), Plan{Store: so})
		// Insert the first half; the second half stays fresh so observed
		// false hits (the omission mechanism) can be counted against the
		// reported bound.
		ins := keys[:(len(keys)+1)/2]
		fresh := keys[(len(keys)+1)/2:]
		probes := 0
		for i, key := range ins {
			fp, pk := st.Prepare(key)
			st.Lookup(fp, pk) // engines probe before inserting
			probes++
			st.Insert(fp, pk, int32(i))
		}
		for i, key := range ins {
			fp, pk := st.Prepare(key)
			if _, ok := st.Lookup(fp, pk); !ok {
				t.Fatalf("false miss: key %d (%v) inserted but not found (seed %d, w %d, k %d)",
					i, key, seed, so.BitstateLog2, so.BitstateHashes)
			}
			probes++
		}
		falseHits := 0
		for _, key := range fresh {
			fp, pk := st.Prepare(key)
			if _, ok := st.Lookup(fp, pk); ok {
				falseHits++
			}
			probes++
		}
		rep := st.Report()
		var pop int64
		for _, w := range st.words {
			for ; w != 0; w &= w - 1 {
				pop++
			}
		}
		if rep.BitsSet != pop {
			t.Fatalf("reported %d bits set, popcount says %d", rep.BitsSet, pop)
		}
		if rep.Bits != int64(1)<<so.BitstateLog2 || rep.Hashes != so.BitstateHashes {
			t.Fatalf("report misstates geometry: %d bits, %d hashes", rep.Bits, rep.Hashes)
		}
		maxSet := int64(so.BitstateHashes) * int64(len(ins))
		if rep.BitsSet < 1 || rep.BitsSet > maxSet || rep.BitsSet > rep.Bits {
			t.Fatalf("fill %d outside [1, min(%d, %d)]", rep.BitsSet, maxSet, rep.Bits)
		}
		fill := float64(rep.BitsSet) / float64(rep.Bits)
		wantExpected := float64(probes) * math.Pow(fill, float64(so.BitstateHashes))
		if math.Abs(rep.ExpectedOmissions-wantExpected) > 1e-9*math.Max(1, wantExpected) {
			t.Fatalf("expected-omission bound %v, want probes·fill^k = %v", rep.ExpectedOmissions, wantExpected)
		}
		wantConf := math.Exp(-wantExpected)
		if math.Abs(rep.Confidence-wantConf) > 1e-9 {
			t.Fatalf("confidence %v, want exp(-expected) = %v", rep.Confidence, wantConf)
		}
		// The observed omission mechanism — fresh keys falsely reported
		// present — must sit under the per-probe bound the confidence is
		// derived from. fill^k is an expectation, so the assertion carries
		// a concentration margin far past any credible fluctuation; a
		// violation means the double-hashing probe is biased, not bad luck.
		perProbe := math.Pow(fill, float64(so.BitstateHashes))
		if limit := 16 + 4*perProbe*float64(len(fresh)); float64(falseHits) > limit {
			t.Fatalf("%d/%d fresh keys falsely hit; per-probe bound %v allows ~%v — probe bias, coverage confidence is overstated",
				falseHits, len(fresh), perProbe, perProbe*float64(len(fresh)))
		}
	})
}
