package mc

import (
	"fmt"
	"runtime"
	"testing"

	"bakerypp/internal/gcl"
	"bakerypp/internal/specs"
)

// Substrate benchmarks: verification throughput of the model checker on the
// repository's standard configurations.

func BenchmarkCheckBakeryPP(b *testing.B) {
	for _, cfg := range []specs.Config{{N: 2, M: 3}, {N: 3, M: 2}} {
		b.Run(fmt.Sprintf("N=%d/M=%d", cfg.N, cfg.M), func(b *testing.B) {
			opts := Options{Invariants: []Invariant{Mutex(), NoOverflow()}}
			states := 0
			for i := 0; i < b.N; i++ {
				res := Check(specs.BakeryPP(cfg), opts)
				if res.Violation != nil {
					b.Fatal("violation")
				}
				states = res.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

func BenchmarkCheckSafeRegisters(b *testing.B) {
	opts := Options{Invariants: []Invariant{Mutex(), NoOverflow()}}
	for i := 0; i < b.N; i++ {
		if res := Check(specs.BakeryPPSafe(2, 2), opts); res.Violation != nil {
			b.Fatal("violation")
		}
	}
}

func BenchmarkBuildGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BuildGraph(specs.BakeryPP(specs.Config{N: 2, M: 3}), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// workerVariants are the engine configurations the comparative benchmarks
// sweep: the sequential engine, and the parallel engine at 1 worker (engine
// overhead), 4 workers, and GOMAXPROCS workers.
func workerVariants() []struct {
	name    string
	workers int
} {
	vs := []struct {
		name    string
		workers int
	}{{"seq", 0}, {"par1", 1}, {"par4", 4}}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		vs = append(vs, struct {
			name    string
			workers int
		}{fmt.Sprintf("par%d", n), n})
	}
	return vs
}

// BenchmarkBuildGraphWorkers compares sequential and parallel graph
// construction throughput (states/sec) across the three algorithm families
// the determinism tests cover. Both engines build identical graphs, so the
// metric isolates engine speed.
func BenchmarkBuildGraphWorkers(b *testing.B) {
	models := []struct {
		name string
		p    func() *gcl.Prog
	}{
		{"bakerypp-N3-M2", func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 3, M: 2}) }},
		{"peterson-N3", func() *gcl.Prog { return specs.Peterson(3) }},
		{"szymanski-N3", func() *gcl.Prog { return specs.Szymanski(3) }},
	}
	for _, m := range models {
		for _, v := range workerVariants() {
			b.Run(m.name+"/"+v.name, func(b *testing.B) {
				states := 0
				for i := 0; i < b.N; i++ {
					g, err := BuildGraph(m.p(), Options{Workers: v.workers})
					if err != nil {
						b.Fatal(err)
					}
					states += g.NumStates()
				}
				b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
			})
		}
	}
}

// BenchmarkExploreBakery8 measures raw exploration throughput on an
// 8-process Bakery++ model. The full space is far beyond reach, so the run
// is bounded to the first 150k states — enough BFS levels that the frontier
// is tens of thousands of states wide and the parallel engine's expansion
// phase dominates. On a multi-core runner the parallel variants should beat
// sequential well past the 1.5x mark; on a single hardware thread they
// mostly measure engine overhead.
func BenchmarkExploreBakery8(b *testing.B) {
	const bound = 150_000
	for _, v := range workerVariants() {
		b.Run(v.name, func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				res := Check(specs.BakeryPP(specs.Config{N: 8, M: 2}),
					Options{MaxStates: bound, Workers: v.workers})
				if res.Violation != nil {
					b.Fatal("violation")
				}
				states += res.States
			}
			b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
		})
	}
}

func BenchmarkFindStarvation(b *testing.B) {
	g, err := BuildGraph(specs.BakeryPP(specs.Config{N: 3, M: 2}), Options{})
	if err != nil {
		b.Fatal(err)
	}
	p := g.expl.p
	l1 := p.LabelIndex("l1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := g.FindStarvation(func(pr *gcl.Prog, s gcl.State) bool {
			return pr.PC(s, 2) == l1
		}, []int{0, 1}); rep == nil {
			b.Fatal("no cycle")
		}
	}
}

// n4m2Graph lazily builds the full (unreduced) Bakery++ N=4 M=2 graph —
// ≈1.6M states — shared by the SCC-analysis benchmarks below. Building it
// dominates any single analysis, so the benchmarks pay it once.
var n4m2Graph *Graph

func n4m2(b *testing.B) *Graph {
	if n4m2Graph == nil {
		g, err := BuildGraph(specs.BakeryPP(specs.Config{N: 4, M: 2}), Options{Workers: -1})
		if err != nil {
			b.Fatal(err)
		}
		n4m2Graph = g
	}
	return n4m2Graph
}

// The SCC cycle analyses' component bookkeeping is slice-based epoch
// marking (one reusable int32 array, a fresh epoch per component) rather
// than a per-SCC map[int32]bool; on the 1.6M-state n4m2 graph the masked
// subgraph construction and component scans dominate, and the epoch scheme
// removes every per-component allocation from the loop. Run with
// `go test ./internal/mc/ -run xxx -bench 'N4M2' -benchtime 1x`.
func BenchmarkFindStarvationN4M2(b *testing.B) {
	g := n4m2(b)
	p := g.expl.p
	l1 := p.LabelIndex("l1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := g.FindStarvation(func(pr *gcl.Prog, s gcl.State) bool {
			return pr.PC(s, 3) == l1
		}, []int{0, 1, 2}); rep == nil {
			b.Fatal("no cycle")
		}
	}
}

func BenchmarkFindNoProgressN4M2(b *testing.B) {
	g := n4m2(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := g.FindNoProgress([]int{0, 1, 2, 3}); rep != nil {
			b.Fatal("unexpected global livelock")
		}
	}
}

func BenchmarkCheckFCFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if res := mustFCFS(specs.BakeryPP(specs.Config{N: 2, M: 2}), 0, 1, Options{}); !res.Holds {
			b.Fatal("violated")
		}
	}
}
