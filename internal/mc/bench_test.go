package mc

import (
	"fmt"
	"testing"

	"bakerypp/internal/gcl"
	"bakerypp/internal/specs"
)

// Substrate benchmarks: verification throughput of the model checker on the
// repository's standard configurations.

func BenchmarkCheckBakeryPP(b *testing.B) {
	for _, cfg := range []specs.Config{{N: 2, M: 3}, {N: 3, M: 2}} {
		b.Run(fmt.Sprintf("N=%d/M=%d", cfg.N, cfg.M), func(b *testing.B) {
			opts := Options{Invariants: []Invariant{Mutex(), NoOverflow()}}
			states := 0
			for i := 0; i < b.N; i++ {
				res := Check(specs.BakeryPP(cfg), opts)
				if res.Violation != nil {
					b.Fatal("violation")
				}
				states = res.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

func BenchmarkCheckSafeRegisters(b *testing.B) {
	opts := Options{Invariants: []Invariant{Mutex(), NoOverflow()}}
	for i := 0; i < b.N; i++ {
		if res := Check(specs.BakeryPPSafe(2, 2), opts); res.Violation != nil {
			b.Fatal("violation")
		}
	}
}

func BenchmarkBuildGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BuildGraph(specs.BakeryPP(specs.Config{N: 2, M: 3}), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindStarvation(b *testing.B) {
	g, err := BuildGraph(specs.BakeryPP(specs.Config{N: 3, M: 2}), Options{})
	if err != nil {
		b.Fatal(err)
	}
	p := g.expl.p
	l1 := p.LabelIndex("l1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := g.FindStarvation(func(pr *gcl.Prog, s gcl.State) bool {
			return pr.PC(s, 2) == l1
		}, []int{0, 1}); rep == nil {
			b.Fatal("no cycle")
		}
	}
}

func BenchmarkCheckFCFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if res := CheckFCFS(specs.BakeryPP(specs.Config{N: 2, M: 2}), 0, 1, 0); !res.Holds {
			b.Fatal("violated")
		}
	}
}
