package mc

// The store-conformance suite: every StateStore implementation behind
// newStateStore — seq, sharded, symmetry-keyed, pinned-keyed, spill,
// compact (both widths, with and without shadow), bitstate — is pushed
// through one shared contract (insert/lookup idempotence, value
// stability, concurrent-insert safety under -race) and, at the engine
// level, through a verdict-parity matrix against the exact store on
// every registered specification. The companion fuzz targets live in
// storefuzz_test.go, the lossy-refusal tests in storegate_test.go.

import (
	"fmt"
	"sync"
	"testing"

	"bakerypp/internal/gcl"
	"bakerypp/internal/specs"
)

// storeVariant is one conformance row: how to build the store and which
// optional contract clauses apply to it.
type storeVariant struct {
	name    string
	sharded bool
	plan    Plan
	// values: Lookup returns the inserted value (false for bitstate,
	// which answers membership only).
	values bool
	// extras: Prepare accepts extra key words (false for the full-orbit
	// symmetry store, which panics on them by contract).
	extras bool
	// concurrent: Insert may race with Insert/Lookup (false only for the
	// seq store, the one implementation without internal locking).
	concurrent bool
}

// mustStore parses a -store spec into normalized StoreOptions.
func mustStore(t *testing.T, spec string) StoreOptions {
	t.Helper()
	so, err := ParseStoreSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return so
}

func storeVariants(t *testing.T) []storeVariant {
	t.Helper()
	exact := mustStore(t, "exact")
	return []storeVariant{
		{"seq", false, Plan{Store: exact}, true, true, false},
		{"sharded", true, Plan{Store: exact}, true, true, true},
		// The orbit-keyed plans ride the sharded representation here — that
		// is the pairing the parallel engine builds; their seq pairing is
		// the same bucket code the "seq" row already covers.
		{"symmetry", true, Plan{Symmetry: true, Store: exact}, true, false, true},
		{"pinned", true, Plan{Pinned: []int{0, 1}, Store: exact}, true, true, true},
		{"spill", false, Plan{Store: mustStore(t, "exact,spill")}, true, true, true},
		{"compact", false, Plan{Store: mustStore(t, "compact")}, true, true, true},
		{"compact64", false, Plan{Store: mustStore(t, "compact64")}, true, true, true},
		{"compact-shadow", false, Plan{Store: mustStore(t, "compact,shadow")}, true, true, true},
		{"bitstate", false, Plan{Store: mustStore(t, "bitstate")}, false, true, true},
	}
}

// conformanceProg is the shared key source: big enough that reachable
// states number in the thousands, symmetric so the orbit-keyed variants
// build.
func conformanceProg() *gcl.Prog {
	return specs.BakeryPP(specs.Config{N: 3, M: 2})
}

// reachableStates collects up to limit distinct reachable states of p by
// breadth-first search — real, well-formed key material for every store
// variant (the canonicalizing stores reject arbitrary word vectors).
func reachableStates(p *gcl.Prog, limit int) []gcl.State {
	key := func(s gcl.State) string { return fmt.Sprint([]int32(s)) }
	init := p.InitState()
	out := []gcl.State{init}
	seen := map[string]bool{key(init): true}
	for i := 0; i < len(out) && len(out) < limit; i++ {
		for pid := 0; pid < p.N; pid++ {
			for _, sc := range p.Succs(out[i], pid, gcl.ModeUnbounded, nil) {
				k := key(sc.State)
				if seen[k] {
					continue
				}
				seen[k] = true
				out = append(out, sc.State)
				if len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

// dedupeByKey filters states down to one representative per prepared
// key, under st's own keying. The symmetry-aware variants merge whole
// orbits onto one key by design, so contract clauses about per-key value
// stability must not feed them two orbit-mates and expect two entries.
func dedupeByKey(st StateStore, states []gcl.State) []gcl.State {
	seen := map[string]bool{}
	out := make([]gcl.State, 0, len(states))
	for _, s := range states {
		_, key := st.Prepare(s)
		k := fmt.Sprint([]int32(key))
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, s)
	}
	return out
}

// TestStoreConformanceContract runs the single-threaded contract clauses
// against every variant: a fresh store misses, Prepare is a pure function
// of the state, insert→lookup round-trips, re-insert is idempotent,
// value replacement sticks, and extra key words open a separate key
// space. Lossy stores must satisfy all of it too — their failure mode is
// false HITS across distinct states (covered probabilistically by the
// parity matrix and the fuzz targets), never a false miss of an inserted
// key.
func TestStoreConformanceContract(t *testing.T) {
	p := conformanceProg()
	allStates := reachableStates(p, 512)
	if len(allStates) < 512 {
		t.Fatalf("key source too small: %d reachable states", len(allStates))
	}
	for _, v := range storeVariants(t) {
		t.Run(v.name, func(t *testing.T) {
			st := newStateStore(p, v.sharded, v.plan, nil)
			states := dedupeByKey(st, allStates)
			// Empty store: every probe misses.
			for _, s := range states[:32] {
				fp, key := st.Prepare(s)
				if _, ok := st.Lookup(fp, key); ok {
					t.Fatalf("empty store reported a hit for %v", s)
				}
			}
			// Prepare is deterministic: same state, same probe.
			fp0, key0 := st.Prepare(states[0])
			fp1, key1 := st.Prepare(states[0])
			if fp0 != fp1 || !key0.Equal(key1) {
				t.Fatal("Prepare is not a pure function of the state")
			}
			// Insert → lookup, for every state, with per-state values.
			for i, s := range states {
				fp, key := st.Prepare(s)
				st.Insert(fp, key, int32(i))
			}
			for i, s := range states {
				fp, key := st.Prepare(s)
				val, ok := st.Lookup(fp, key)
				if !ok {
					t.Fatalf("state %d missing after insert (false miss)", i)
				}
				if v.values && val != int32(i) {
					t.Fatalf("state %d: value %d, want %d (values must be stable across later inserts)", i, val, i)
				}
			}
			// Re-insert with the same value is idempotent.
			fp, key := st.Prepare(states[7])
			st.Insert(fp, key, 7)
			if val, ok := st.Lookup(fp, key); !ok || (v.values && val != 7) {
				t.Fatalf("re-insert broke the entry: (%d, %v)", val, ok)
			}
			// Insert replaces the previous value (interface contract).
			if v.values {
				st.Insert(fp, key, 9001)
				if val, _ := st.Lookup(fp, key); val != 9001 {
					t.Fatalf("replacement value not visible: got %d", val)
				}
				st.Insert(fp, key, 7) // restore
			}
			// Extra key words address a disjoint key space.
			if v.extras {
				fpX, keyX := st.Prepare(states[7], 42)
				if fpX == fp && keyX.Equal(key) {
					t.Fatal("extra-word probe equals the bare probe")
				}
				if _, ok := st.Lookup(fpX, keyX); ok {
					t.Fatal("extra-word key hit before its own insert")
				}
				st.Insert(fpX, keyX, 1042)
				if val, ok := st.Lookup(fpX, keyX); !ok || (v.values && val != 1042) {
					t.Fatalf("extra-word entry lost: (%d, %v)", val, ok)
				}
				if val, ok := st.Lookup(fp, key); !ok || (v.values && val != 7) {
					t.Fatalf("bare entry disturbed by extra-word insert: (%d, %v)", val, ok)
				}
			}
		})
	}
}

// TestStoreConformanceOrbitKeying pins the symmetry variants' defining
// property on top of the shared contract: orbit-mates prepare to one key
// (full symmetry), while the pinned variant keeps the pinned pids
// distinct and only merges the rest.
func TestStoreConformanceOrbitKeying(t *testing.T) {
	p := conformanceProg()
	base := p.InitState()
	a := p.Clone(base)
	p.SetShared(a, "number", 1, 2) // process 1 holds ticket 2
	b := p.Clone(base)
	p.SetShared(b, "number", 2, 2) // orbit-mate: process 2 holds it

	sym := newStateStore(p, false, Plan{Symmetry: true, Store: StoreOptions{}}, nil)
	fpA, keyA := sym.Prepare(a)
	fpB, keyB := sym.Prepare(b)
	if fpA != fpB || !keyA.Equal(keyB) {
		t.Fatal("full-symmetry store must merge orbit-mates onto one key")
	}

	// Pinning 1 and 2 keeps them apart: swapping their roles is no longer
	// in the subgroup the pinned store canonicalizes over.
	pinned := newStateStore(p, false, Plan{Pinned: []int{1, 2}, Store: StoreOptions{}}, nil)
	fpA, keyA = pinned.Prepare(a)
	fpB, keyB = pinned.Prepare(b)
	if fpA == fpB && keyA.Equal(keyB) {
		t.Fatal("pinned store merged states that differ on a pinned pid")
	}
}

// TestStoreConformanceConcurrent drives every lock-bearing variant with
// racing inserts and lookups under -race: disjoint writers must all land,
// contending writers of the same key must collapse to one entry, and
// readers racing the writers must never see a torn value (only "absent"
// or an inserted value). The seq store is exempt by contract — the
// sequential engine is its only client.
func TestStoreConformanceConcurrent(t *testing.T) {
	p := conformanceProg()
	allStates := reachableStates(p, 1024)
	const writers = 8
	for _, v := range storeVariants(t) {
		if !v.concurrent {
			continue
		}
		t.Run(v.name, func(t *testing.T) {
			st := newStateStore(p, v.sharded, v.plan, nil)
			states := dedupeByKey(st, allStates)
			// Phase 1: disjoint slices, racing inserts plus racing reads.
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(states); i += writers {
						fp, key := st.Prepare(states[i])
						st.Insert(fp, key, int32(i))
						if val, ok := st.Lookup(fp, key); !ok || (v.values && val != int32(i)) {
							t.Errorf("writer %d: own insert of state %d not visible: (%d, %v)", w, i, val, ok)
							return
						}
					}
				}(w)
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := range states {
						fp, key := st.Prepare(states[i])
						if val, ok := st.Lookup(fp, key); ok && v.values && val != int32(i) {
							t.Errorf("reader %d: state %d present with foreign value %d", w, i, val)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			// Phase 2: all writers contend on the same keys and values;
			// the store must end up exactly as a single writer would leave
			// it.
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i, s := range states[:128] {
						fp, key := st.Prepare(s)
						st.Insert(fp, key, int32(i))
					}
				}()
			}
			wg.Wait()
			for i, s := range states {
				fp, key := st.Prepare(s)
				val, ok := st.Lookup(fp, key)
				if !ok {
					t.Fatalf("state %d lost after concurrent phase", i)
				}
				if v.values && val != int32(i) {
					t.Fatalf("state %d: value %d after contending same-value inserts, want %d", i, val, i)
				}
			}
		})
	}
}

// TestStoreVerdictParityMatrix is the engine-level conformance clause:
// on every registered specification, at sizes up to N=4, every store
// tier must reach the exact store's verdict. The exact spill tier must
// match the exact baseline state-for-state (same search, different
// residency); the lossy tiers must agree on the verdict and carry an
// honest StoreReport; the shadow run must catch zero divergences (a
// divergence at these sizes would be a real fingerprint collision —
// expected never in ~1e30 runs).
func TestStoreVerdictParityMatrix(t *testing.T) {
	cells := []struct {
		n, m     int
		sym, por bool
	}{
		{2, 2, false, false},
		{3, 2, false, false},
		{4, 2, true, true}, // reductions keep the N=4 row affordable
	}
	modes := []string{"exact,spill", "compact", "compact64", "compact,shadow", "bitstate", "compact,spill"}
	// Every run of a cell gets the same explicit state budget: the lossy
	// tiers' larger DEFAULT budget (BeyondRAMMaxStates) would otherwise
	// let them finish a search the exact baseline truncated, which reads
	// as a verdict divergence but is only a budget difference.
	const matrixBudget = 1_000_000
	for _, name := range specs.Names() {
		for _, cell := range cells {
			if name == "blackwhite" && cell.n == 4 {
				// Black-White is the declared-asymmetric control: the
				// reductions barely bite and its N=4 space costs ~45s per
				// store mode — its keying is covered by the N<=3 rows.
				continue
			}
			p, err := specs.Get(name, specs.Config{N: cell.n, M: cell.m})
			if err != nil {
				t.Fatal(err)
			}
			base := Check(p, Options{
				Invariants: []Invariant{Mutex(), NoOverflow()},
				Symmetry:   cell.sym, POR: cell.por,
				MaxStates: matrixBudget,
			})
			for _, mode := range modes {
				t.Run(fmt.Sprintf("%s-n%d-m%d/%s", name, cell.n, cell.m, mode), func(t *testing.T) {
					pr, err := specs.Get(name, specs.Config{N: cell.n, M: cell.m})
					if err != nil {
						t.Fatal(err)
					}
					res := Check(pr, Options{
						Invariants: []Invariant{Mutex(), NoOverflow()},
						Symmetry:   cell.sym, POR: cell.por,
						MaxStates: matrixBudget,
						Store:     mustStore(t, mode),
					})
					if got, want := verdictClass(res), verdictClass(base); got != want {
						t.Fatalf("verdict %q diverges from exact baseline %q", got, want)
					}
					if res.Store == nil {
						t.Fatal("non-default store left Result.Store nil")
					}
					so := mustStore(t, mode)
					if res.Store.Lossy != so.Lossy() {
						t.Fatalf("StoreReport.Lossy = %v for mode %s", res.Store.Lossy, mode)
					}
					if mode == "exact,spill" {
						if res.States != base.States || res.Transitions != base.Transitions || res.Depth != base.Depth {
							t.Fatalf("spill run (%d states, %d transitions, depth %d) is not byte-identical to exact (%d, %d, %d)",
								res.States, res.Transitions, res.Depth, base.States, base.Transitions, base.Depth)
						}
					}
					if so.Shadow && res.Store.ShadowDivergences != 0 {
						t.Fatalf("shadow caught %d divergences — a real 128-bit collision at %d states is not credible; suspect the compact keying",
							res.Store.ShadowDivergences, res.States)
					}
					if res.Store.Lossy {
						if res.Store.Entries <= 0 {
							t.Fatal("lossy StoreReport carries no entry count")
						}
						if res.Store.Confidence <= 0 || res.Store.Confidence > 1 {
							t.Fatalf("confidence %v outside (0,1]", res.Store.Confidence)
						}
						if res.Store.Banner() == "" {
							t.Fatal("lossy run renders no probabilistic-verdict banner")
						}
					}
				})
			}
		}
	}
}

// TestStoreEngineDeterminism pins the determinism half of the store
// contract at the engine level: exact tiers are byte-identical for any
// Workers value, and lossy tiers have a per-seed-stable RunFingerprint
// across engines (the property the CI determinism smoke re-checks on the
// bigger headline configuration).
func TestStoreEngineDeterminism(t *testing.T) {
	for _, mode := range []string{"exact,spill", "compact", "compact64", "bitstate"} {
		for _, seed := range []uint64{0, 0xfeed} {
			so := mustStore(t, mode)
			so.Seed = seed
			opts := func(workers int) Options {
				return Options{
					Invariants: []Invariant{Mutex(), NoOverflow()},
					Workers:    workers,
					Store:      so,
				}
			}
			seq := Check(specs.BakeryPP(specs.Config{N: 3, M: 2}), opts(0))
			par := Check(specs.BakeryPP(specs.Config{N: 3, M: 2}), opts(-1))
			if !so.Lossy() {
				if seq.States != par.States || seq.Transitions != par.Transitions || seq.Depth != par.Depth {
					t.Fatalf("%s: engines diverge: seq (%d,%d,%d) vs par (%d,%d,%d)", mode,
						seq.States, seq.Transitions, seq.Depth, par.States, par.Transitions, par.Depth)
				}
			}
			if seq.RunFingerprint() != par.RunFingerprint() {
				t.Fatalf("%s seed %d: run fingerprint %016x (sequential) != %016x (parallel)",
					mode, seed, seq.RunFingerprint(), par.RunFingerprint())
			}
		}
	}
}

// verdictClass folds a Result into the comparable verdict string the
// parity matrix checks (mirrors the harness's verdict column).
func verdictClass(r *Result) string {
	switch {
	case r.Violation != nil:
		return "VIOLATION:" + r.Violation.Invariant
	case r.Deadlock != nil:
		return "DEADLOCK"
	case !r.Complete:
		return "incomplete"
	default:
		return "verified"
	}
}
