package mc

// The mmap-backed spill tier: an append-only arena of state vectors living
// in an unlinked temp file instead of the Go heap. The OS pages the arena
// in and out under memory pressure, the garbage collector never scans it,
// and GOMEMLIMIT does not count it — which is what lets a visited set plus
// frontier exceed RAM. Two consumers share one arena per exploration:
//
//   - the engine's state pager (explorer.appendState/stateAt): every
//     numbered state's vector is encoded into the arena and decoded on
//     demand, so e.states holds nothing;
//   - the exact spill store (spillStore below): key vectors are kept as
//     arena offsets and membership compares run directly against the
//     mapped bytes, so exactness survives without heap copies.
//
// The arena grows in fixed 64 MiB chunks that are mapped once and never
// remapped or moved, so a reader holding a decoded offset can never be
// invalidated by growth. Appends are serialized by a mutex; readers run
// lock-free against already-written entries (the engines' phase barriers —
// and the conformance tests' — provide the happens-before edge).

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"bakerypp/internal/gcl"
)

const (
	// arenaChunkLog2 sizes one mapped chunk: 64 MiB. Entries never
	// straddle chunks (the tail is padded), so a chunk bounds the largest
	// storable vector at ~16M words — far beyond any state.
	arenaChunkLog2 = 26
	arenaChunkSize = 1 << arenaChunkLog2
	arenaChunkMask = arenaChunkSize - 1
	// arenaMaxChunks caps the chunk table so its backing array never
	// reallocates (readers index it lock-free): 16384 chunks = 1 TiB.
	arenaMaxChunks = 1 << 14
)

// arena is the append-only spill file. Entry encoding: a 4-byte
// little-endian word count n followed by n little-endian 4-byte state
// words; the returned offset is global (chunk index × chunk size + offset
// within the chunk).
type arena struct {
	mu     sync.Mutex
	f      *os.File // nil on the no-mmap fallback
	chunks [][]byte
	off    int64 // next global write offset
	dir    string
}

// newArena creates the spill file in dir ("" = os.TempDir()) and unlinks
// it immediately, so the space is reclaimed however the process exits.
func newArena(dir string) (*arena, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	a := &arena{dir: dir, chunks: make([][]byte, 0, arenaMaxChunks)}
	f, err := os.CreateTemp(dir, "mc-spill-*.arena")
	if err != nil {
		return nil, fmt.Errorf("mc: spill arena: %w", err)
	}
	os.Remove(f.Name())
	a.f = f
	runtime.SetFinalizer(a, func(a *arena) { a.close() })
	return a, nil
}

// close unmaps every chunk and closes the file. Called by the finalizer;
// safe to call twice.
func (a *arena) close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, c := range a.chunks {
		unmapChunk(c)
	}
	a.chunks = a.chunks[:0]
	if a.f != nil {
		a.f.Close()
		a.f = nil
	}
}

// grow maps the next chunk. Caller holds a.mu.
func (a *arena) grow() error {
	if len(a.chunks) >= arenaMaxChunks {
		return fmt.Errorf("mc: spill arena exceeded %d chunks (%d GiB)", arenaMaxChunks, arenaMaxChunks>>4)
	}
	b, err := mapChunk(a.f, int64(len(a.chunks))<<arenaChunkLog2, arenaChunkSize)
	if err != nil {
		return fmt.Errorf("mc: spill arena: %w", err)
	}
	a.chunks = append(a.chunks, b)
	return nil
}

// append encodes s and returns its global offset.
func (a *arena) append(s gcl.State) (int64, error) {
	need := 4 + 4*len(s)
	if need > arenaChunkSize {
		return 0, fmt.Errorf("mc: state of %d words exceeds the spill chunk size", len(s))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(a.off&arenaChunkMask)+need > arenaChunkSize {
		a.off = (a.off>>arenaChunkLog2 + 1) << arenaChunkLog2 // pad to next chunk
	}
	for int(a.off>>arenaChunkLog2) >= len(a.chunks) {
		if err := a.grow(); err != nil {
			return 0, err
		}
	}
	off := a.off
	b := a.chunks[off>>arenaChunkLog2][off&arenaChunkMask:]
	putle32(b, uint32(len(s)))
	for i, v := range s {
		putle32(b[4+4*i:], uint32(v))
	}
	a.off += int64(need)
	return off, nil
}

// state decodes a fresh copy of the entry at off.
func (a *arena) state(off int64) gcl.State {
	b := a.chunks[off>>arenaChunkLog2][off&arenaChunkMask:]
	n := int(le32(b))
	s := make(gcl.State, n)
	for i := range s {
		s[i] = int32(le32(b[4+4*i:]))
	}
	return s
}

// equalAt compares the entry at off with key, allocation-free.
func (a *arena) equalAt(off int64, key gcl.State) bool {
	b := a.chunks[off>>arenaChunkLog2][off&arenaChunkMask:]
	if int(le32(b)) != len(key) {
		return false
	}
	for i, v := range key {
		if int32(le32(b[4+4*i:])) != v {
			return false
		}
	}
	return true
}

// bytes reports the arena's reserved size on disk.
func (a *arena) bytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(len(a.chunks)) << arenaChunkLog2
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putle32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// skv is one spill-store entry: the key's arena offset and its value.
type skv struct {
	off int64
	val int32
}

// spillShard is one stripe of the spill store's fingerprint index.
type spillShard struct {
	mu sync.RWMutex
	m  map[uint64][]skv
}

// spillStore is the exact store with its key vectors in the arena: the
// in-heap residue is one (offset, value) pair per state plus the map
// buckets. Membership stays fingerprint+Equal exact — comparisons run
// against the mapped bytes — so every analysis that needs exactness can
// use it. Concurrent-safe (striped RWMutexes; arena appends serialized).
type spillStore struct {
	p       *gcl.Prog
	plan    Plan
	ar      *arena
	entries atomic.Int64
	shards  [shardCount]spillShard
}

// newSpillStore wraps arena ar (creating a private one when nil — the
// monitor/memo searches pass nil; the engines share their pager arena).
func newSpillStore(p *gcl.Prog, plan Plan, ar *arena) (*spillStore, error) {
	if ar == nil {
		var err error
		if ar, err = newArena(plan.Store.SpillDir); err != nil {
			return nil, err
		}
	}
	st := &spillStore{p: p, plan: plan, ar: ar}
	for i := range st.shards {
		st.shards[i].m = map[uint64][]skv{}
	}
	return st, nil
}

func (st *spillStore) Prepare(s gcl.State, extra ...int32) (uint64, gcl.State) {
	return prepare(st.p, st.plan, s, extra)
}

func (st *spillStore) Lookup(fp uint64, key gcl.State) (int32, bool) {
	sh := &st.shards[fp&(shardCount-1)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, e := range sh.m[fp] {
		if st.ar.equalAt(e.off, key) {
			return e.val, true
		}
	}
	return -1, false
}

func (st *spillStore) Insert(fp uint64, key gcl.State, val int32) {
	sh := &st.shards[fp&(shardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bucket := sh.m[fp]
	for i := range bucket {
		if st.ar.equalAt(bucket[i].off, key) {
			bucket[i].val = val
			return
		}
	}
	off, err := st.ar.append(key)
	if err != nil {
		panic(err) // disk exhaustion mid-exploration: nothing sound to do
	}
	sh.m[fp] = append(bucket, skv{off: off, val: val})
	st.entries.Add(1)
}

func (st *spillStore) Report() StoreReport {
	return StoreReport{
		Mode:       "exact,spill",
		Entries:    st.entries.Load(),
		Confidence: 1,
		SpillBytes: st.ar.bytes(),
		Traceable:  true,
	}
}
