package mc

import (
	"fmt"
	"sort"
	"strings"

	"bakerypp/internal/gcl"
)

// This file checks the paper's Section 6.2 refinement claim — "every
// execution of Bakery++ is a valid execution of Bakery" — in its observable
// form: every sequence of critical-section entry/exit events that Bakery++
// can produce, Bakery can produce too. The check is a bounded weak
// (stuttering) trace-inclusion search: the implementation's transitions are
// explored exhaustively while a belief set tracks every specification state
// consistent with the observable events so far; if the belief set ever
// empties, the implementation produced an observable behaviour the
// specification cannot, and the implementation trace is returned as a
// counterexample.
//
// Two bounds make the search finite even though classic Bakery's state
// space is not: the number of observable events along any explored
// implementation path (MaxEvents) and a ceiling on the specification's
// register values (states above the ceiling are pruned; the ceiling must be
// generous enough that pruning never causes a spurious failure — in
// practice a few events' worth of ticket growth).

// Event labels have the form "enter:<pid>" and "exit:<pid>"; internal moves
// are the empty string (tau).
func eventOf(p *gcl.Prog, pid int, preLabel, postLabel string) string {
	switch {
	case preLabel != "cs" && postLabel == "cs":
		return fmt.Sprintf("enter:%d", pid)
	case preLabel == "cs" && postLabel != "cs":
		return fmt.Sprintf("exit:%d", pid)
	default:
		return ""
	}
}

// RefinementOptions bounds the search.
type RefinementOptions struct {
	// MaxEvents is the number of observable events explored along each
	// implementation path (default 6).
	MaxEvents int
	// Ceiling prunes specification states holding any shared value above
	// it (default 4 * (MaxEvents + 2), ample for bakery-family tickets).
	Ceiling int64
	// MaxNodes bounds the search's memoised node count (default 2e6).
	MaxNodes int
	// Store configures the memo's visited-set tier. Lossy modes are refused
	// (a false "already memoized" hit would prune an unexplored behaviour
	// and could mask a counterexample); exact,spill is accepted.
	Store StoreOptions
}

// RefinementResult reports the outcome.
type RefinementResult struct {
	// Holds is true when every explored implementation behaviour was
	// matched by the specification within the bounds.
	Holds bool
	// Counterexample, when Holds is false, is an implementation trace
	// whose observable event sequence the specification cannot produce.
	Counterexample *Trace
	// FailEvent is the observable event the specification could not match.
	FailEvent string
	// Nodes is the number of distinct (impl state, belief) pairs explored.
	Nodes int
	// Beliefs is the number of distinct specification belief sets built.
	Beliefs int
}

// CheckBoundedRefinement verifies that impl observably refines spec within
// the bounds. Both programs must follow the specs package conventions (a
// "cs" label marking the critical section) and have the same process count.
func CheckBoundedRefinement(impl, spec *gcl.Prog, opts RefinementOptions) (*RefinementResult, error) {
	if impl.N != spec.N {
		return nil, fmt.Errorf("mc: refinement needs equal process counts (impl %d, spec %d)", impl.N, spec.N)
	}
	if !impl.HasLabel("cs") || !spec.HasLabel("cs") {
		return nil, fmt.Errorf("mc: refinement needs a cs label in both programs")
	}
	if opts.MaxEvents == 0 {
		opts.MaxEvents = 6
	}
	if opts.Ceiling == 0 {
		opts.Ceiling = 4 * int64(opts.MaxEvents+2)
	}
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 2_000_000
	}

	// The pipeline declares refinement as pinning EVERY pid (observable
	// events name concrete processes on both sides), so the plan never
	// selects a reduction regardless of the requested options — and refuses
	// a lossy memo store outright.
	plan, err := planFor(impl, Options{Store: opts.Store}, RefinementAnalysis{})
	if err != nil {
		return nil, err
	}
	r := &refiner{impl: impl, spec: spec, opts: opts,
		beliefIDs: map[string]int{}, memo: newStateStore(impl, false, plan, nil)}
	res := &RefinementResult{}

	initBelief := r.tauClosure([]gcl.State{spec.InitState()})
	type node struct {
		implState gcl.State
		belief    int
		remaining int
		parent    int
		viaPid    int
		viaLabel  string
	}
	nodes := []node{{
		implState: impl.InitState(),
		belief:    r.beliefID(initBelief),
		remaining: opts.MaxEvents,
		parent:    -1,
	}}
	r.memoize(nodes[0].implState, nodes[0].belief, nodes[0].remaining)

	buildTrace := func(i int, extra *gcl.Succ) *Trace {
		var rev []int
		for k := i; k >= 0; k = nodes[k].parent {
			rev = append(rev, k)
		}
		t := &Trace{Prog: impl, Init: nodes[rev[len(rev)-1]].implState}
		for k := len(rev) - 2; k >= 0; k-- {
			nd := nodes[rev[k]]
			t.Steps = append(t.Steps, Step{Pid: nd.viaPid, Label: nd.viaLabel, State: nd.implState})
		}
		if extra != nil {
			t.Steps = append(t.Steps, Step{Pid: extra.Pid, Label: extra.Label(impl), State: extra.State})
		}
		return t
	}

	for head := 0; head < len(nodes); head++ {
		if len(nodes) > opts.MaxNodes {
			return nil, fmt.Errorf("mc: refinement search exceeded %d nodes", opts.MaxNodes)
		}
		nd := nodes[head]
		pre := nd.implState
		for _, sc := range impl.AllSuccs(pre, gcl.ModeUnbounded) {
			ev := eventOf(impl, sc.Pid, impl.PCLabel(pre, sc.Pid), impl.PCLabel(sc.State, sc.Pid))
			nextBelief := nd.belief
			nextRemaining := nd.remaining
			if ev != "" {
				if nd.remaining == 0 {
					continue // event budget exhausted along this path
				}
				moved := r.move(r.beliefs[nd.belief], ev)
				if len(moved) == 0 {
					res.Holds = false
					res.FailEvent = ev
					sc := sc
					res.Counterexample = buildTrace(head, &sc)
					res.Nodes = len(nodes)
					res.Beliefs = len(r.beliefs)
					return res, nil
				}
				nextBelief = r.beliefID(moved)
				nextRemaining = nd.remaining - 1
			}
			if !r.memoize(sc.State, nextBelief, nextRemaining) {
				continue
			}
			nodes = append(nodes, node{
				implState: sc.State,
				belief:    nextBelief,
				remaining: nextRemaining,
				parent:    head,
				viaPid:    sc.Pid,
				viaLabel:  sc.Label(impl),
			})
		}
	}
	res.Holds = true
	res.Nodes = len(nodes)
	res.Beliefs = len(r.beliefs)
	return res, nil
}

type refiner struct {
	impl, spec *gcl.Prog
	opts       RefinementOptions
	beliefs    [][]gcl.State
	beliefIDs  map[string]int
	// memo maps (impl state, belief id) to the largest remaining event
	// budget already explored, via the shared StateStore (the belief id
	// rides as an extra key word). Refinement relates concrete pids on
	// both sides, so the non-symmetric store is the right one.
	memo StateStore
}

// memoize records the visit and reports whether exploration should proceed
// (i.e. this pair was never seen with at least this much event budget).
func (r *refiner) memoize(implState gcl.State, belief, remaining int) bool {
	fp, key := r.memo.Prepare(implState, int32(belief))
	if prev, ok := r.memo.Lookup(fp, key); ok && int(prev) >= remaining {
		return false
	}
	r.memo.Insert(fp, key, int32(remaining))
	return true
}

// withinCeiling rejects spec states holding any shared value above Ceiling.
func (r *refiner) withinCeiling(s gcl.State) bool {
	for _, name := range r.spec.SharedNames() {
		if int64(r.spec.MaxShared(s, name)) > r.opts.Ceiling {
			return false
		}
	}
	return true
}

// tauClosure expands a set of spec states with every state reachable by
// internal (non-event) transitions, pruning above the ceiling.
func (r *refiner) tauClosure(seed []gcl.State) []gcl.State {
	seen := newStateStore(r.spec, false, Plan{}, nil)
	var out []gcl.State
	var queue []gcl.State
	push := func(s gcl.State) {
		fp, key := seen.Prepare(s)
		if _, dup := seen.Lookup(fp, key); !dup {
			seen.Insert(fp, key, int32(len(out)))
			out = append(out, s)
			queue = append(queue, s)
		}
	}
	for _, s := range seed {
		if r.withinCeiling(s) {
			push(s)
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, sc := range r.spec.AllSuccs(s, gcl.ModeUnbounded) {
			ev := eventOf(r.spec, sc.Pid, r.spec.PCLabel(s, sc.Pid), r.spec.PCLabel(sc.State, sc.Pid))
			if ev != "" || !r.withinCeiling(sc.State) {
				continue
			}
			push(sc.State)
		}
	}
	return out
}

// move returns the tau-closed set of spec states reachable from the belief
// by exactly one occurrence of event ev.
func (r *refiner) move(belief []gcl.State, ev string) []gcl.State {
	var landed []gcl.State
	seen := newStateStore(r.spec, false, Plan{}, nil)
	for _, s := range belief {
		for _, sc := range r.spec.AllSuccs(s, gcl.ModeUnbounded) {
			got := eventOf(r.spec, sc.Pid, r.spec.PCLabel(s, sc.Pid), r.spec.PCLabel(sc.State, sc.Pid))
			if got != ev || !r.withinCeiling(sc.State) {
				continue
			}
			fp, key := seen.Prepare(sc.State)
			if _, dup := seen.Lookup(fp, key); !dup {
				seen.Insert(fp, key, int32(len(landed)))
				landed = append(landed, sc.State)
			}
		}
	}
	return r.tauClosure(landed)
}

// beliefID interns a belief set by its canonical key.
func (r *refiner) beliefID(states []gcl.State) int {
	keys := make([]string, len(states))
	for i, s := range states {
		keys[i] = r.spec.Key(s)
	}
	sort.Strings(keys)
	canon := strings.Join(keys, "|")
	if id, ok := r.beliefIDs[canon]; ok {
		return id
	}
	id := len(r.beliefs)
	r.beliefIDs[canon] = id
	r.beliefs = append(r.beliefs, states)
	return id
}
