package mc

// Orbit-level cycle analysis on the symmetry-reduced (quotient) transition
// graph. BuildGraph under symmetry stores one concrete representative per
// encountered orbit and annotates every edge with the permutation ρ
// relating the concrete successor to the stored representative of its
// target orbit (Edge.Perm). The liveness analyses run on a PRODUCT whose
// nodes are (orbit representative, tracking permutation) pairs: node
// (j, τ) stands for the concrete cursor-normalized state
// Permute(NormalizeCursors(State(j)), τ), called its VIEW.
//
// The crucial soundness decision is how product edges are produced. The
// tempting scheme — lift the quotient's stored edges through τ — is only
// correct for programs whose valid permutations are true automorphisms of
// the transition relation. The bakery family is merely QUASI-symmetric
// (the (number[j], j) < (number[i], i) tie-break consults concrete id
// order, and a scan cursor's value names the concrete slot examined
// next), and lifting measurably fabricates and drops transitions there.
// So the product is built from TRUE dynamics instead: each node's view is
// expanded with real gcl successor generation, making every product edge
// a genuine transition of the full system by construction. The quotient
// machinery still carries the analysis:
//
//   - node identity is two int32s; the concrete state is reconstructed on
//     demand by permuting the orbit representative's cached normal form —
//     no per-node state vectors or fingerprint store entries;
//   - the stored annotated edges serve as an exact FAST PATH for
//     identifying where a generated successor lands: guess the lifted
//     target (To, τ∘ρ), verify by direct state comparison, and only on a
//     miss pay a canonicalization (gcl.CanonicalizeWithPerm) plus a
//     lookup in the quotient's canonical store. On a truly equivariant
//     program the guess always hits; on the bakery family it hits for the
//     majority of edges;
//   - orbits the quotient exploration never stored are added to a
//     supplementary table, so the product is complete regardless. This is
//     not a corner case: quasi-symmetric dedup genuinely
//     under-approximates orbit reachability (a stored representative's
//     successors do not cover its orbit-mates' successors), and on
//     bakery++ N=3 M=2 the product reaches more orbits than the quotient
//     store holds — TestQuotientProductCoversNormalizedSpace logs the
//     split.
//
// Node count: the product covers exactly the cursor-normalized reachable
// states (normalization is behaviour-preserving by the PidLocal liveAt
// contract the visited store already relies on), except that states whose
// orbit representative has a non-trivial stabilizer can appear under
// several tracking permutations; such highly symmetric states are rare
// away from the initial configuration, and a concrete cycle through them
// lifts to a (possibly unrolled) product cycle either way. Every product
// cycle projects to a real execution, and every real cycle lifts into the
// product, so SCC-based verdicts transfer exactly — no quasi-symmetry
// caveat. Found lassos are additionally replayed from the initial state
// and re-verified against the property before being reported; the parity
// tests (liveness_parity_test.go) and experiment E16 pin full-vs-quotient
// verdict agreement across the specification matrix at N <= 4. See
// docs/model-checking.md, "Liveness under reduction".

import (
	"fmt"
	"sort"

	"bakerypp/internal/gcl"
)

// prodNode is one product node: an orbit-representative index (into the
// graph's states, or, past their count, into the supplementary table) and
// the index of the tracking permutation.
type prodNode struct {
	rep  int32
	perm int32
}

// pstep is one product edge on a path: the source product node and the
// edge's index within the source's adjacency segment.
type pstep struct {
	v  int32
	ei int32
}

// product is the tracking product of a quotient graph, built breadth-first
// from (state 0, identity) by expanding node views with true dynamics.
// Edges are stored CSR-style.
type product struct {
	g      *Graph
	p      *gcl.Prog
	nPerms int32
	// nPrimary is the quotient graph's state count; node reps at or above
	// it index the supplementary extra tables.
	nPrimary int32
	nodes    []prodNode
	idx      map[uint64]int32
	// extra holds the normalized states of orbits absent from the quotient
	// store, extraPerm their canonical witnessing permutations, extraBuck
	// a canonical-key bucket index over them.
	extra     []gcl.State
	extraPerm []int32
	extraBuck map[uint64][]kv
	// norms lazily caches NormalizeCursors of each primary representative.
	norms []gcl.State
	// stabs lazily caches each representative's stabilizer (permutation
	// indices fixing its normal form; identity first). Tracking keys are
	// canonicalized to the least member of their stabilizer coset, so a
	// normalized state is interned exactly once however it is reached.
	stabs [][]int32
	// CSR edge arrays: target node, concrete moving pid, the successor's
	// ordinal within the view's AllSuccs enumeration (negative encodes a
	// crash transition), and whether the branch carried the cs-enter tag.
	offs    []int32
	targets []int32
	movers  []int8
	ords    []int16
	enters  []bool
	// BFS tree for entry paths: parent node and global CSR edge index.
	parent  []int32
	parentE []int32
	depth   []int32
	// fastHits/slowPaths instrument the edge-identification split.
	fastHits  int64
	slowPaths int64
	// composeTab caches permutation composition when the table is small
	// enough (N <= 6); larger programs compose through gcl per edge.
	composeTab []int32
	// scratch
	viewBuf gcl.State
	wantBuf gcl.State
	// bfs scratch for in-component path stitching.
	seen     []int32
	seenGen  int32
	bfsStep  []pstep
	bfsQueue []int32
}

func (pr *product) key(rep, perm int32) uint64 {
	return uint64(rep)*uint64(pr.nPerms) + uint64(perm)
}

// compose returns the index of perms[a]∘perms[b] (b applied first).
func (pr *product) compose(a, b int32) int32 {
	if b == 0 {
		return a // identity annotation: the overwhelmingly common case
	}
	if a == 0 {
		return b
	}
	if pr.composeTab != nil {
		c := &pr.composeTab[int(a)*int(pr.nPerms)+int(b)]
		if *c < 0 {
			*c = int32(pr.p.ComposePermIndex(int(a), int(b)))
		}
		return *c
	}
	return int32(pr.p.ComposePermIndex(int(a), int(b)))
}

// normOf returns the cursor-normalized form of a representative, cached
// for primary states, direct for supplementary ones (stored normalized).
func (pr *product) normOf(rep int32) gcl.State {
	if rep >= pr.nPrimary {
		return pr.extra[rep-pr.nPrimary]
	}
	if pr.norms[rep] == nil {
		pr.norms[rep] = pr.p.NormalizeCursors(pr.g.expl.stateAt(rep))
	}
	return pr.norms[rep]
}

// viewInto writes the concrete view of a product node — the orbit
// representative's normal form permuted into the node's tracking frame —
// into buf.
func (pr *product) viewInto(buf gcl.State, nd prodNode) {
	pr.p.PermuteInto(buf, pr.normOf(nd.rep), pr.p.PermAt(int(nd.perm)))
}

// stabOf returns the stabilizer of a representative's normal form.
// Computed on first use; the common all-columns-distinct case costs one
// early-exiting pass over the permutation table.
func (pr *product) stabOf(rep int32) []int32 {
	if pr.stabs == nil {
		pr.stabs = make([][]int32, 0)
	}
	for int32(len(pr.stabs)) <= rep {
		pr.stabs = append(pr.stabs, nil)
	}
	if pr.stabs[rep] == nil {
		x := pr.normOf(rep)
		stab := []int32{0}
		for pi := int32(1); pi < pr.nPerms; pi++ {
			if pr.p.PermFixes(x, pr.p.PermAt(int(pi))) {
				stab = append(stab, pi)
			}
		}
		pr.stabs[rep] = stab
	}
	return pr.stabs[rep]
}

// cosetCanon reduces a tracking permutation to the least index in its
// stabilizer coset: τ and τ∘σ produce the same view for σ in the
// stabilizer, so they must intern as one node.
func (pr *product) cosetCanon(rep, perm int32) int32 {
	stab := pr.stabOf(rep)
	if len(stab) == 1 {
		return perm
	}
	best := perm
	for _, s := range stab[1:] {
		if c := pr.compose(perm, s); c < best {
			best = c
		}
	}
	return best
}

// push interns a product node.
func (pr *product) push(rep, perm, parent, parentE int32) int32 {
	k := pr.key(rep, perm)
	if i, ok := pr.idx[k]; ok {
		return i
	}
	i := int32(len(pr.nodes))
	pr.idx[k] = i
	pr.nodes = append(pr.nodes, prodNode{rep: rep, perm: perm})
	pr.parent = append(pr.parent, parent)
	pr.parentE = append(pr.parentE, parentE)
	if parent < 0 {
		pr.depth = append(pr.depth, 0)
	} else {
		pr.depth = append(pr.depth, pr.depth[parent]+1)
	}
	return i
}

// locate identifies the product node a generated successor u of node nd
// lands on. u must already be cursor-normalized and owned by the caller
// (it is retained when it opens a fresh supplementary orbit). The fast
// path tries the stored quotient edges of nd's representative: an edge by
// the matching representative-frame pid and label predicts the landing as
// (Edge.To, τ∘Edge.Perm), confirmed by comparing u against that node's
// view — exact when it matches, silently skipped when quasi-symmetry made
// the stored edge inapplicable to this tracking frame. The slow path
// canonicalizes u and resolves its orbit through the quotient's store.
func (pr *product) locate(nd prodNode, succPid int, labelIdx int32, u gcl.State) (rep, perm int32) {
	p := pr.p
	if nd.rep < pr.nPrimary {
		repSlot := int8(p.InvPermAt(int(nd.perm))[succPid])
		for _, e := range pr.g.Adj[nd.rep] {
			if e.Pid != repSlot || e.LabelIdx != labelIdx {
				continue
			}
			tg := pr.compose(nd.perm, int32(e.Perm))
			p.PermuteInto(pr.wantBuf, pr.normOf(e.To), p.PermAt(int(tg)))
			// The guess must reproduce u AND be a scan-prefix-valid image:
			// an invalid permutation can also express u — as the image of a
			// DIFFERENT orbit's representative — and accepting it would
			// intern u under a second key. Validity pins the orbit to the
			// one u's canonicalization would pick, so both paths agree.
			if u.Equal(pr.wantBuf) && p.PermValid(pr.normOf(e.To), p.PermAt(int(tg))) {
				pr.fastHits++
				return e.To, pr.cosetCanon(e.To, tg)
			}
		}
	}
	pr.slowPaths++
	c, w := p.CanonicalizeWithPerm(u)
	wIdx := int32(p.PermIndexOf(w))
	if j, ok := pr.g.expl.store.Lookup(c.Fingerprint(), c); ok {
		// norm(u) = Permute(norm(states[j]), w⁻¹∘π_j).
		return j, pr.cosetCanon(j, pr.compose(int32(p.InvPermIndex(int(wIdx))), pr.g.expl.canonPerm[j]))
	}
	// Orbit unknown to the quotient store: intern it in the supplementary
	// table, keyed canonically.
	fp := c.Fingerprint()
	if k, ok := bucketLookup(pr.extraBuck[fp], c); ok {
		r := pr.nPrimary + k
		return r, pr.cosetCanon(r, pr.compose(int32(p.InvPermIndex(int(wIdx))), pr.extraPerm[k]))
	}
	k := int32(len(pr.extra))
	pr.extraBuck[fp] = bucketInsert(pr.extraBuck[fp], c, k)
	pr.extra = append(pr.extra, u)
	pr.extraPerm = append(pr.extraPerm, wIdx)
	return pr.nPrimary + k, 0
}

// productBoundFactor scales Options.MaxStates into the product's node
// bound. A product node is two int32s plus CSR edge words — roughly an
// order of magnitude cheaper than a stored state vector with its visited
// set entry — so the product affords a higher ceiling than the state
// exploration itself; the factor keeps the two bounds proportional. At
// the default MaxStates this admits products of 16M nodes, enough for the
// Bakery++ N=5 M=2 analysis (the normalized space is ≈4.7M nodes) whose
// full graph exhausts the plain bound.
const productBoundFactor = 4

// buildProduct returns the graph's tracking product, building and caching
// it on first use. The product covers exactly the cursor-normalized full
// state space; productBoundFactor × MaxStates bounds its node count.
func (g *Graph) buildProduct() *product {
	if g.prod != nil {
		return g.prod
	}
	p := g.expl.p
	pr := &product{
		g: g, p: p,
		nPerms:    int32(p.NumPerms()),
		nPrimary:  int32(g.expl.numStates()),
		idx:       make(map[uint64]int32, 4*g.expl.numStates()),
		extraBuck: map[uint64][]kv{},
		norms:     make([]gcl.State, g.expl.numStates()),
		viewBuf:   make(gcl.State, p.StateLen()),
		wantBuf:   make(gcl.State, p.StateLen()),
	}
	if int(pr.nPerms) <= 720 {
		pr.composeTab = make([]int32, int(pr.nPerms)*int(pr.nPerms))
		for i := range pr.composeTab {
			pr.composeTab[i] = -1
		}
	}
	bound := productBoundFactor * g.expl.opts.MaxStates
	mode := g.expl.opts.Mode
	pr.push(0, 0, -1, -1)
	pr.offs = append(pr.offs, 0)
	for head := int32(0); head < int32(len(pr.nodes)); head++ {
		if len(pr.nodes) > bound {
			panic(fmt.Sprintf("mc: %s: quotient-product bound %d exceeded during orbit-level cycle analysis; raise Options.MaxStates or run the analysis on the full graph", p.Name, bound))
		}
		nd := pr.nodes[head]
		pr.viewInto(pr.viewBuf, nd)
		for i, sc := range p.AllSuccs(pr.viewBuf, mode) {
			u := sc.State // owned: apply clones
			p.NormalizeCursorsInPlace(u)
			rep, perm := pr.locate(nd, sc.Pid, sc.LabelIdx, u)
			t := pr.push(rep, perm, head, int32(len(pr.targets)))
			pr.targets = append(pr.targets, t)
			pr.movers = append(pr.movers, int8(sc.Pid))
			pr.ords = append(pr.ords, int16(i))
			pr.enters = append(pr.enters, sc.Tag == "cs-enter")
		}
		for ci, pid := range g.expl.crashers {
			u := p.CrashSucc(pr.viewBuf, pid)
			p.NormalizeCursorsInPlace(u)
			rep, perm := pr.locate(nd, pid, crashLabelIdx, u)
			t := pr.push(rep, perm, head, int32(len(pr.targets)))
			pr.targets = append(pr.targets, t)
			pr.movers = append(pr.movers, int8(pid))
			pr.ords = append(pr.ords, int16(-1-ci))
			pr.enters = append(pr.enters, false)
		}
		pr.offs = append(pr.offs, int32(len(pr.targets)))
	}
	pr.seen = make([]int32, len(pr.nodes))
	pr.bfsStep = make([]pstep, len(pr.nodes))
	g.prod = pr
	return pr
}

// degree returns the number of edges out of product node v.
func (pr *product) degree(v int32) int32 { return pr.offs[v+1] - pr.offs[v] }

// sccs runs iterative Tarjan over the product restricted to nodes passing
// nodeOK and edges passing edgeOK (both endpoints must pass nodeOK too),
// returning components in reverse topological order — the same contract as
// Graph.SCCs.
func (pr *product) sccs(nodeOK func(int32) bool, edgeOK func(v, ei int32) bool) [][]int32 {
	n := int32(len(pr.nodes))
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var (
		stack   []int32
		sccs    [][]int32
		counter int32
	)
	type frame struct {
		v    int32
		edge int32
	}
	var call []frame
	for root := int32(0); root < n; root++ {
		if index[root] != -1 || !nodeOK(root) {
			continue
		}
		call = append(call[:0], frame{v: root})
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.edge < pr.degree(f.v) {
				ei := f.edge
				f.edge++
				w := pr.targets[pr.offs[f.v]+ei]
				if !nodeOK(w) || !edgeOK(f.v, ei) {
					continue
				}
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				if pv := call[len(call)-1].v; low[v] < low[pv] {
					low[pv] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}

// pathFromRoot reconstructs the product BFS path from the root to v.
func (pr *product) pathFromRoot(v int32) []pstep {
	var rev []pstep
	for i := v; pr.parent[i] >= 0; i = pr.parent[i] {
		par := pr.parent[i]
		rev = append(rev, pstep{v: par, ei: pr.parentE[i] - pr.offs[par]})
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// bfsInComp runs a BFS from `from` restricted to nodes with mark[v] ==
// epoch and edges passing edgeOK, stopping at the first dequeued node for
// which stop selects an edge (returning the path through and including
// that edge) or, with stopNode >= 0, at that node (returning the path to
// it). Deterministic: nodes dequeue in discovery order, edges scan in
// adjacency order.
func (pr *product) bfsInComp(from int32, mark []int32, epoch int32, edgeOK func(v, ei int32) bool,
	stop func(v, ei int32) bool, stopNode int32) ([]pstep, int32, bool) {
	pr.seenGen++
	gen := pr.seenGen
	pr.bfsQueue = pr.bfsQueue[:0]
	pr.bfsQueue = append(pr.bfsQueue, from)
	pr.seen[from] = gen
	pr.bfsStep[from] = pstep{v: -1}
	buildPath := func(v int32, last *pstep) []pstep {
		var rev []pstep
		if last != nil {
			rev = append(rev, *last)
		}
		for i := v; pr.bfsStep[i].v >= 0; i = pr.bfsStep[i].v {
			rev = append(rev, pr.bfsStep[i])
		}
		for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
			rev[l], rev[r] = rev[r], rev[l]
		}
		return rev
	}
	for qi := 0; qi < len(pr.bfsQueue); qi++ {
		v := pr.bfsQueue[qi]
		if v == stopNode {
			return buildPath(v, nil), v, true
		}
		for ei := int32(0); ei < pr.degree(v); ei++ {
			w := pr.targets[pr.offs[v]+ei]
			if mark[w] != epoch || !edgeOK(v, ei) {
				continue
			}
			if stop != nil && stop(v, ei) {
				return buildPath(v, &pstep{v: v, ei: ei}), w, true
			}
			if pr.seen[w] != gen {
				pr.seen[w] = gen
				pr.bfsStep[w] = pstep{v: v, ei: ei}
				pr.bfsQueue = append(pr.bfsQueue, w)
			}
		}
	}
	return nil, -1, false
}

// stitchCycle builds a product cycle through entry, inside the component
// marked with epoch, on which every pid in mustMove moves: repeatedly walk
// to the nearest not-yet-covered required mover's edge, then close back to
// entry. The component is strongly connected under the same edge filter,
// so every leg exists.
func (pr *product) stitchCycle(entry int32, mark []int32, epoch int32,
	edgeOK func(v, ei int32) bool, mustMove []int) ([]pstep, bool) {
	covered := make([]bool, pr.p.N)
	var cycle []pstep
	cur := entry
	noteLeg := func(leg []pstep) {
		for _, st := range leg {
			covered[pr.movers[pr.offs[st.v]+st.ei]] = true
		}
		cycle = append(cycle, leg...)
	}
	for _, pid := range mustMove {
		if pid >= 0 && pid < pr.p.N && covered[pid] {
			continue
		}
		leg, end, ok := pr.bfsInComp(cur, mark, epoch, edgeOK, func(v, ei int32) bool {
			return int(pr.movers[pr.offs[v]+ei]) == pid
		}, -1)
		if !ok {
			return nil, false
		}
		noteLeg(leg)
		cur = end
	}
	if cur == entry && len(cycle) == 0 {
		// Nothing forced a move yet (empty mustMove): take any edge so the
		// cycle is non-empty.
		leg, end, ok := pr.bfsInComp(cur, mark, epoch, edgeOK, func(v, ei int32) bool {
			return true
		}, -1)
		if !ok {
			return nil, false
		}
		noteLeg(leg)
		cur = end
	}
	if cur != entry {
		leg, _, ok := pr.bfsInComp(cur, mark, epoch, edgeOK, nil, entry)
		if !ok {
			return nil, false
		}
		noteLeg(leg)
	}
	return cycle, true
}

// replaySteps walks product steps as a concrete execution from cur: each
// step's transition is re-derived with gcl successor generation (or
// CrashSucc for crash edges) on the actual concrete state, so every
// returned Step is a real transition of the full, unreduced system.
// Returns the steps, the taken branches' tags, the final state, and
// whether every step was realised with the recorded mover.
func (pr *product) replaySteps(cur gcl.State, steps []pstep) ([]Step, []string, gcl.State, bool) {
	p := pr.p
	mode := pr.g.expl.opts.Mode
	out := make([]Step, 0, len(steps))
	tags := make([]string, 0, len(steps))
	for _, st := range steps {
		ge := pr.offs[st.v] + st.ei
		mover := int(pr.movers[ge])
		ord := int(pr.ords[ge])
		var next gcl.State
		tag := ""
		label := ""
		if ord < 0 {
			next = p.CrashSucc(cur, mover)
			label = crashLabel
		} else {
			succs := p.AllSuccs(cur, mode)
			if ord >= len(succs) || succs[ord].Pid != mover {
				return nil, nil, nil, false
			}
			next = succs[ord].State
			tag = succs[ord].Tag
			label = succs[ord].Label(p)
		}
		out = append(out, Step{Pid: mover, Label: label, State: next})
		tags = append(tags, tag)
		cur = next
	}
	return out, tags, cur, true
}

// uniqStates collects the distinct primary quotient state indices a
// product component touches, in ascending order.
func (pr *product) uniqStates(comp []int32) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, v := range comp {
		if s := pr.nodes[v].rep; s < pr.nPrimary && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// coversMustMove checks the replayed cycle's actual movers against the
// requirement.
func coversMustMove(steps []Step, mustMove []int, n int) bool {
	moved := make([]bool, n)
	for _, st := range steps {
		if st.Pid >= 0 && st.Pid < n {
			moved[st.Pid] = true
		}
	}
	for _, pid := range mustMove {
		if pid < 0 || pid >= n || !moved[pid] {
			return false
		}
	}
	return true
}

// findFairCycle is the shared engine behind the quotient analyses: SCC the
// filtered product, find a component in which every mustMove pid moves,
// stitch a lasso, replay it concretely, and hand the verified material to
// the caller for packaging. ok may be nil (all nodes pass). verify
// receives the concrete replayed cycle (post-states and taken branch tags)
// plus the cycle's start state and must confirm the mined property.
func (g *Graph) findFairCycle(pr *product, ok []bool, edgeOK func(v, ei int32) bool,
	mustMove []int, verify func(start gcl.State, cycle []Step, tags []string) bool,
) (entry Trace, cycle []Step, compSize int, moves []int, states []int32, entryLen int, found bool) {
	p := g.expl.p
	nodeOK := func(v int32) bool { return ok == nil || ok[v] }
	mark := make([]int32, len(pr.nodes))
	epoch := int32(0)
	for _, comp := range pr.sccs(nodeOK, edgeOK) {
		epoch++
		for _, v := range comp {
			mark[v] = epoch
		}
		if len(comp) == 1 {
			v := comp[0]
			self := false
			for ei := int32(0); ei < pr.degree(v); ei++ {
				if pr.targets[pr.offs[v]+ei] == v && edgeOK(v, ei) {
					self = true
					break
				}
			}
			if !self {
				continue
			}
		}
		mv := make([]int, p.N)
		for _, v := range comp {
			for ei := int32(0); ei < pr.degree(v); ei++ {
				if w := pr.targets[pr.offs[v]+ei]; mark[w] == epoch && edgeOK(v, ei) {
					mv[pr.movers[pr.offs[v]+ei]]++
				}
			}
		}
		all := true
		for _, pid := range mustMove {
			if pid < 0 || pid >= p.N || mv[pid] == 0 {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		ent := comp[0]
		for _, v := range comp {
			if pr.depth[v] < pr.depth[ent] {
				ent = v
			}
		}
		lasso, ok2 := pr.stitchCycle(ent, mark, epoch, edgeOK, mustMove)
		if !ok2 {
			continue
		}
		entrySteps, _, start, ok3 := pr.replaySteps(g.expl.stateAt(0), pr.pathFromRoot(ent))
		if !ok3 {
			continue
		}
		cycleSteps, tags, end, ok4 := pr.replaySteps(start, lasso)
		if !ok4 || !p.NormalizeCursors(end).Equal(p.NormalizeCursors(start)) {
			continue
		}
		if !coversMustMove(cycleSteps, mustMove, p.N) || !verify(start, cycleSteps, tags) {
			continue
		}
		return Trace{Prog: p, Init: g.expl.stateAt(0), Steps: entrySteps},
			cycleSteps, len(comp), mv, pr.uniqStates(comp), len(entrySteps), true
	}
	return Trace{}, nil, 0, nil, nil, 0, false
}

// findStarvationQuotient is FindStarvation on a quotient graph.
func (g *Graph) findStarvationQuotient(pred func(p *gcl.Prog, s gcl.State) bool, mustMove []int) *StarvationReport {
	p := g.expl.p
	pr := g.buildProduct()
	ok := make([]bool, len(pr.nodes))
	view := make(gcl.State, p.StateLen())
	for i := range pr.nodes {
		pr.viewInto(view, pr.nodes[i])
		ok[i] = pred(p, view)
	}
	edgeOK := func(v, ei int32) bool { return ok[pr.targets[pr.offs[v]+ei]] }
	verify := func(start gcl.State, cycle []Step, _ []string) bool {
		if !pred(p, start) {
			return false
		}
		for _, st := range cycle {
			if !pred(p, st.State) {
				return false
			}
		}
		return true
	}
	entry, cycle, size, moves, states, entryLen, found :=
		g.findFairCycle(pr, ok, edgeOK, mustMove, verify)
	if !found {
		return nil
	}
	return &StarvationReport{
		ComponentSize: size,
		EntryLen:      entryLen,
		Entry:         entry,
		MovesByPid:    moves,
		Component:     states,
		Quotient:      true,
		Cycle:         cycle,
	}
}

// findNoProgressQuotient is FindNoProgress on a quotient graph: cs-enter
// edges (tagged at successor generation) are filtered out of the product,
// and the replayed cycle re-checks that no realised step carried the tag.
func (g *Graph) findNoProgressQuotient(mustMove []int) *NoProgressReport {
	pr := g.buildProduct()
	edgeOK := func(v, ei int32) bool { return !pr.enters[pr.offs[v]+ei] }
	verify := func(_ gcl.State, _ []Step, tags []string) bool {
		for _, tag := range tags {
			if tag == "cs-enter" {
				return false
			}
		}
		return true
	}
	entry, cycle, size, moves, _, _, found :=
		g.findFairCycle(pr, nil, edgeOK, mustMove, verify)
	if !found {
		return nil
	}
	return &NoProgressReport{
		ComponentSize: size,
		MovesByPid:    moves,
		Entry:         entry,
		Quotient:      true,
		Cycle:         cycle,
	}
}
