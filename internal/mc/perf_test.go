package mc

// Hot-path performance contracts for the parallel engine's owner-computes
// machinery: once warmed up, the expand stage's inbox routing and the
// owners' drain pass must run essentially allocation-free — the engine
// executes them for every generated successor, millions of times per run.

import (
	"testing"

	"bakerypp/internal/specs"
)

// TestInboxPushDrainAllocFree pins the per-candidate cost of the
// owner-computes mesh at ~0 allocations: re-expanding a warmed chunk —
// successor generation, batched canonical prep, inbox push, and the
// owners' drain lookups plus invariant pre-evaluation — amortizes to less
// than a few hundredths of an allocation per routed candidate (the
// residue is the per-chunk goroutine spawn and pprof label plumbing, paid
// once per thousands of candidates).
func TestInboxPushDrainAllocFree(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 2})
	opts := Options{Workers: 2, Invariants: []Invariant{Mutex(), NoOverflow()}}
	plan, err := planFor(p, opts, SafetyAnalysis{})
	if err != nil {
		t.Fatal(err)
	}
	pe := newPExplorer(p, opts, plan)
	e := pe.e
	pe.addInit(p.InitState())

	// Drive the real chunked explore/merge loop far enough to number a
	// multi-worker chunk's worth of states and populate the store.
	for merged := 0; merged < e.numStates() && e.numStates() < 4096; {
		lo, hi := int32(merged), int32(e.numStates())
		if hi > lo+maxChunk {
			hi = lo + maxChunk
		}
		merged = int(hi)
		exps := pe.expandRange(lo, hi, true)
		pe.beginMerge()
		for i := range exps {
			x := &exps[i]
			for ci := range x.cands {
				pe.addNumbered(&x.cands[ci], lo+int32(i))
			}
		}
		pe.endMerge()
	}
	if e.numStates() < 512 {
		t.Fatalf("state space too small to exercise the parallel path: %d states", e.numStates())
	}

	// Re-expanding an already-merged range is side-effect free (expansion
	// and drain write only worker scratch and candidate verdicts) and hits
	// the exact steady-state path: every slab, inbox, and expansion slot
	// has its capacity.
	var cands int
	sweep := func() {
		exps := pe.expandRange(0, 512, true)
		cands = 0
		for i := range exps {
			cands += len(exps[i].cands)
		}
	}
	sweep() // warm remaining capacity
	if cands < 512 {
		t.Fatalf("expected a dense candidate load, got %d candidates", cands)
	}
	avg := testing.AllocsPerRun(20, sweep)
	if perCand := avg / float64(cands); perCand > 0.05 {
		t.Errorf("inbox push/drain allocates %.3f objects per candidate (%.1f per %d-candidate sweep), want ~0",
			perCand, avg, cands)
	}
}
