package mc

import (
	"testing"

	"bakerypp/internal/gcl"
	"bakerypp/internal/specs"
)

func allPids(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// E7 strengthening: Bakery++ admits no GLOBAL livelock — there is no
// reachable cycle on which every process keeps moving yet nobody ever
// enters the critical section. Together with TestStarvationAtL1 this gives
// the full Section 6.3 picture: an individual slow process can starve at
// L1, but the system as a whole always keeps serving customers.
func TestBakeryPPNoGlobalLivelock(t *testing.T) {
	for _, cfg := range []specs.Config{{N: 2, M: 2}, {N: 3, M: 2}, {N: 3, M: 3}} {
		p := specs.BakeryPP(cfg)
		g, err := BuildGraph(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep := g.FindNoProgress(allPids(p.N)); rep != nil {
			t.Errorf("N=%d M=%d: global livelock of %d states, moves %v",
				cfg.N, cfg.M, rep.ComponentSize, rep.MovesByPid)
		}
	}
}

// Ablation 4 finding (DESIGN.md): WITHOUT the L1 gate, Bakery++ has a
// global livelock — a reachable cycle in which all three processes keep
// re-choosing tickets at the bound and resetting, and nobody ever enters
// the critical section. Safety never needed the gate (E1 verifies the
// nogate variant); this shows the gate is what buys global progress. The
// paper introduces the gate without separating the two roles; the model
// checker separates them mechanically.
func TestNoGateAblationHasGlobalLivelock(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 2, NoGate: true})
	g, err := BuildGraph(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := g.FindNoProgress(allPids(3))
	if rep == nil {
		t.Fatal("expected a reset livelock in the gateless variant")
	}
	for pid, m := range rep.MovesByPid {
		if m == 0 {
			t.Errorf("process %d does not move in the livelock component", pid)
		}
	}
	t.Logf("gateless livelock: %d states, moves %v, entry depth %d",
		rep.ComponentSize, rep.MovesByPid, rep.Entry.Len())

	// Two processes already suffice: the resetter's stored maximum (= M)
	// persists until its own reset commits, so each process's scan keeps
	// observing the other's saturated ticket and both reset forever.
	p2 := specs.BakeryPP(specs.Config{N: 2, M: 2, NoGate: true})
	g2, err := BuildGraph(p2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := g2.FindNoProgress(allPids(2)); rep == nil {
		t.Error("expected the 2-process gateless reset livelock")
	}
}

// Question Two connection (paper Section 8.2): Bakery++ admits ACTIVE
// individual starvation — a reachable cycle in which a process keeps taking
// steps (scans, resets; weak fairness satisfied) yet never enters its
// critical section, because every overflow reset discards its ticket and
// with it the FCFS protection of the pending attempt. Classic Bakery has no
// such cycle structurally: once a ticket is taken it is never given up, so
// a process that keeps moving must pass through cs. This is the liveness
// price of boundedness, sharper than Section 6.3's slow-process scenario
// (which requires the starved process to be blocked).
func TestBakeryPPActiveStarvation(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 2})
	g, err := BuildGraph(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs := p.LabelIndex("cs")
	rep := g.FindStarvation(func(pr *gcl.Prog, s gcl.State) bool {
		return pr.PC(s, 2) != cs
	}, allPids(3))
	if rep == nil {
		t.Fatal("expected an active-starvation cycle at M=2")
	}
	if rep.MovesByPid[2] == 0 {
		t.Error("the starved process should be moving (that is the point)")
	}
	t.Logf("active starvation: %d states, moves %v", rep.ComponentSize, rep.MovesByPid)
}

// Positive control: a program whose processes spin forever without a
// critical section is detected.
func TestFindNoProgressPositiveControl(t *testing.T) {
	p := gcl.New("spinner", 2)
	p.SharedVar("x", 0)
	p.Label("ncs", gcl.Goto("a"))
	p.Label("a", gcl.Goto("ncs", gcl.Set("x", gcl.Sub(gcl.C(1), gcl.Sh("x")))))
	p.MustBuild()
	g, err := BuildGraph(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := g.FindNoProgress(allPids(2))
	if rep == nil {
		t.Fatal("spinner livelock not found")
	}
	if rep.MovesByPid[0] == 0 || rep.MovesByPid[1] == 0 {
		t.Error("both processes should move in the component")
	}
}

// Sanity for tagOf: cs-enter edges really are excluded — a two-process
// Bakery++ graph masked of entries must not contain its cs states'
// entering edges in any qualifying component (covered implicitly by
// TestBakeryPPNoGlobalLivelock; here we check tag recovery directly).
func TestTagRecovery(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 2, M: 2})
	g, err := BuildGraph(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for v := 0; v < len(g.Adj) && !found; v++ {
		for _, e := range g.Adj[v] {
			if g.tagOf(v, e) == "cs-enter" {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("no cs-enter tag recovered from any edge")
	}
}
