package mc

import (
	"testing"

	"bakerypp/internal/gcl"
	"bakerypp/internal/specs"
)

// E11: Bakery++ observably refines classic Bakery — every entry/exit event
// sequence Bakery++ produces (within the bound) is one Bakery can produce.
func TestBakeryPPRefinesBakery(t *testing.T) {
	impl := specs.BakeryPP(specs.Config{N: 2, M: 2})
	spec := specs.Bakery(specs.Config{N: 2, M: 1 << 14})
	res, err := CheckBoundedRefinement(impl, spec, RefinementOptions{MaxEvents: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("refinement failed at event %s:\n%s",
			res.FailEvent, res.Counterexample.String())
	}
	if res.Nodes == 0 || res.Beliefs == 0 {
		t.Error("search explored nothing")
	}
	t.Logf("refinement holds: %d nodes, %d beliefs", res.Nodes, res.Beliefs)
}

// Ablation variants refine Bakery too.
func TestBakeryPPVariantsRefineBakery(t *testing.T) {
	spec := specs.Bakery(specs.Config{N: 2, M: 1 << 14})
	for _, cfg := range []specs.Config{
		{N: 2, M: 2, NoGate: true},
		{N: 2, M: 2, SplitReset: true},
	} {
		impl := specs.BakeryPP(cfg)
		res, err := CheckBoundedRefinement(impl, spec, RefinementOptions{MaxEvents: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Holds {
			t.Errorf("%s: refinement failed at %s", impl.Name, res.FailEvent)
		}
	}
}

// Negative control: the modulo strawman admits two concurrent entries —
// an observable behaviour Bakery cannot produce — so refinement must fail
// with a concrete counterexample.
func TestModBakeryDoesNotRefineBakery(t *testing.T) {
	impl := specs.ModBakery(2, 2)
	spec := specs.Bakery(specs.Config{N: 2, M: 1 << 14})
	res, err := CheckBoundedRefinement(impl, spec, RefinementOptions{MaxEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("modbakery reported as a refinement of bakery; it must not be")
	}
	if res.Counterexample == nil || res.Counterexample.Len() == 0 {
		t.Fatal("no counterexample trace")
	}
	// The unmatched event must be a second enter while one process is
	// already inside.
	if res.FailEvent != "enter:0" && res.FailEvent != "enter:1" {
		t.Errorf("fail event = %q, want an enter event", res.FailEvent)
	}
	last := res.Counterexample.Steps[len(res.Counterexample.Steps)-1].State
	if got := impl.CountAtLabel(last, "cs"); got != 2 {
		t.Errorf("counterexample ends with %d in cs, want 2", got)
	}
}

// The coarse and fine-grained doorway encodings are observationally
// equivalent: each refines the other (DESIGN.md ablation 1, both
// directions).
func TestCoarseFineObservationalEquivalence(t *testing.T) {
	coarse := func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 2, M: 2}) }
	fine := func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 2, M: 2, Fine: true}) }
	res, err := CheckBoundedRefinement(fine(), coarse(), RefinementOptions{MaxEvents: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("fine does not refine coarse: %s", res.FailEvent)
	}
	res, err = CheckBoundedRefinement(coarse(), fine(), RefinementOptions{MaxEvents: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("coarse does not refine fine: %s", res.FailEvent)
	}
}

// Sanity: a program refines itself.
func TestSelfRefinement(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 2, M: 2})
	res, err := CheckBoundedRefinement(p, specs.BakeryPP(specs.Config{N: 2, M: 2}),
		RefinementOptions{MaxEvents: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("self-refinement failed at %s", res.FailEvent)
	}
}

func TestRefinementValidation(t *testing.T) {
	a := specs.BakeryPP(specs.Config{N: 2, M: 2})
	b := specs.BakeryPP(specs.Config{N: 3, M: 2})
	if _, err := CheckBoundedRefinement(a, b, RefinementOptions{}); err == nil {
		t.Error("mismatched process counts accepted")
	}
	noCS := gcl.New("nocs", 2)
	noCS.Label("ncs", gcl.Goto("ncs"))
	noCS.MustBuild()
	if _, err := CheckBoundedRefinement(noCS, noCS, RefinementOptions{}); err == nil {
		t.Error("program without cs accepted")
	}
}

func TestEventOf(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 2, M: 2})
	if got := eventOf(p, 1, "t1", "cs"); got != "enter:1" {
		t.Errorf("eventOf enter = %q", got)
	}
	if got := eventOf(p, 0, "cs", "ncs"); got != "exit:0" {
		t.Errorf("eventOf exit = %q", got)
	}
	if got := eventOf(p, 0, "t1", "t2"); got != "" {
		t.Errorf("eventOf internal = %q", got)
	}
}
