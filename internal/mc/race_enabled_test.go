//go:build race

package mc

func init() { raceEnabled = true }
