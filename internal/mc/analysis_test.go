package mc

import (
	"testing"

	"bakerypp/internal/gcl"
	"bakerypp/internal/specs"
)

// The pipeline's reduction choices per analysis, asserted through the
// exported PlanFor: the same options yield different (and differently
// sound) plans depending on what the analysis declares it needs.
func TestPlanForReductionChoices(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 2})
	opts := Options{Invariants: []Invariant{Mutex(), NoOverflow()}, Symmetry: true, POR: true}
	mustPlan := func(pr *gcl.Prog, o Options, a Analysis) Plan {
		t.Helper()
		pl, err := PlanFor(pr, o, a)
		if err != nil {
			t.Fatalf("PlanFor(%s): %v", a.Name(), err)
		}
		return pl
	}

	safety := mustPlan(p, opts, SafetyAnalysis{Invariants: opts.Invariants})
	if !safety.Symmetry || !safety.POR || safety.Pinned != nil || safety.TrackPerms {
		t.Errorf("safety plan = %+v, want full symmetry + POR", safety)
	}

	graph := mustPlan(p, opts, GraphAnalysis{Invariants: opts.Invariants})
	if !graph.Symmetry || !graph.TrackPerms {
		t.Errorf("graph plan = %+v, want permutation-tracked symmetry", graph)
	}
	if graph.POR {
		t.Error("graph analyses are cycle-sensitive; POR must never be planned")
	}
	gNeeds := GraphAnalysis{}.Needs()
	if !gNeeds.Edges || !gNeeds.Depth || !gNeeds.Cycles {
		t.Errorf("graph needs = %+v, want edges+depth+cycles", gNeeds)
	}

	fcfs := mustPlan(p, opts, FCFSAnalysis{First: 2, Second: 0})
	if fcfs.Symmetry || fcfs.POR || fcfs.TrackPerms {
		t.Errorf("fcfs plan = %+v, want pinned-orbit dedup only", fcfs)
	}
	if len(fcfs.Pinned) != 2 || fcfs.Pinned[0] != 2 || fcfs.Pinned[1] != 0 {
		t.Errorf("fcfs pinned = %v, want [2 0]", fcfs.Pinned)
	}

	refine := mustPlan(p, opts, RefinementAnalysis{})
	if refine.Symmetry || refine.POR || refine.TrackPerms || refine.Pinned != nil {
		t.Errorf("refinement plan = %+v, want no reduction", refine)
	}

	// Crashing a proper pid subset distinguishes identities: symmetry off.
	crashOpts := opts
	crashOpts.Crash = true
	crashOpts.CrashPids = []int{0}
	if pl := mustPlan(p, crashOpts, SafetyAnalysis{Invariants: opts.Invariants}); pl.Symmetry || pl.POR {
		t.Errorf("subset-crash plan = %+v, want no reduction", pl)
	}

	// An invariant without a declared read set blocks POR but not symmetry.
	blind := Options{Invariants: []Invariant{{Name: "opaque", Holds: func(pr *gcl.Prog, s gcl.State) bool { return true }}}, Symmetry: true, POR: true}
	if pl := mustPlan(p, blind, SafetyAnalysis{Invariants: blind.Invariants}); pl.POR || !pl.Symmetry {
		t.Errorf("undeclared-observation plan = %+v, want symmetry without POR", pl)
	}

	// Declared-asymmetric specs fall back entirely.
	bw := specs.BlackWhite(3)
	if pl := mustPlan(bw, opts, GraphAnalysis{Invariants: opts.Invariants}); pl.Symmetry || pl.TrackPerms {
		t.Errorf("asymmetric-spec graph plan = %+v, want full search", pl)
	}
}
