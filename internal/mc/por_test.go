package mc

// Tests for ample-set partial-order reduction: verdict parity with the
// full search across the spec matrix (alone and composed with symmetry),
// determinism for any worker count, concreteness of reduced
// counterexample traces, deadlock preservation, the fallback gates, and
// the headline reduction factors the acceptance criteria pin.

import (
	"testing"

	"bakerypp/internal/gcl"
	"bakerypp/internal/specs"
)

// TestPORVerdictParity sweeps the same spec matrix as the symmetry parity
// test: the POR search (and the POR+symmetry search) must report the same
// pass/fail verdict and violated invariant as the full search while
// exploring no more states. Unlike symmetry, POR needs no spec
// declaration, so it must apply (and stay sound) on the declared-
// asymmetric specs too.
func TestPORVerdictParity(t *testing.T) {
	for _, m := range symMatrix() {
		t.Run(m.name, func(t *testing.T) {
			inv := []Invariant{Mutex(), NoOverflow()}
			full := Check(m.p(), Options{Invariants: inv})
			if full.POR {
				t.Fatal("full run must not report POR")
			}
			fv, fi := verdictOf(full)
			for _, sym := range []bool{false, true} {
				red := Check(m.p(), Options{Invariants: inv, POR: true, Symmetry: sym})
				if !red.POR {
					t.Fatalf("POR not applied (symmetry=%v)", sym)
				}
				rv, ri := verdictOf(red)
				if fv != rv || fi != ri {
					t.Fatalf("verdicts differ (symmetry=%v): full %s/%s, reduced %s/%s", sym, fv, fi, rv, ri)
				}
				if red.States > full.States {
					t.Fatalf("reduced search explored more states (%d) than full (%d)", red.States, full.States)
				}
			}
		})
	}
}

// TestPORDeterministicAcrossWorkers pins the acceptance contract that POR
// runs (alone and composed with symmetry) are byte-identical for any
// worker count: state counts, transition counts, verdicts, and
// counterexample traces all agree between the engines.
func TestPORDeterministicAcrossWorkers(t *testing.T) {
	models := []struct {
		name string
		p    func() *gcl.Prog
		sym  bool
	}{
		{"bakerypp-N3-M2-por", func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 3, M: 2}) }, false},
		{"bakerypp-N3-M2-both", func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 3, M: 2}) }, true},
		{"bakery-N3-M3-both", func() *gcl.Prog { return specs.Bakery(specs.Config{N: 3, M: 3}) }, true},
		{"peterson-N3-por", func() *gcl.Prog { return specs.Peterson(3) }, false},
		{"szymanski-N3-both", func() *gcl.Prog { return specs.Szymanski(3) }, true},
	}
	for _, m := range models {
		t.Run(m.name, func(t *testing.T) {
			inv := []Invariant{Mutex(), NoOverflow()}
			base := Check(m.p(), Options{Invariants: inv, POR: true, Symmetry: m.sym})
			if !base.POR {
				t.Fatal("POR not applied")
			}
			for _, workers := range []int{1, 4, -1} {
				r := Check(m.p(), Options{Invariants: inv, POR: true, Symmetry: m.sym, Workers: workers})
				if r.States != base.States || r.Transitions != base.Transitions ||
					r.Depth != base.Depth || r.Complete != base.Complete ||
					r.Symmetry != base.Symmetry || r.POR != base.POR {
					t.Fatalf("workers=%d diverges: states=%d/%d transitions=%d/%d depth=%d/%d",
						workers, r.States, base.States, r.Transitions, base.Transitions, r.Depth, base.Depth)
				}
				bv, bi := verdictOf(base)
				rv, ri := verdictOf(r)
				if bv != rv || bi != ri {
					t.Fatalf("workers=%d verdict diverges: %s/%s vs %s/%s", workers, rv, ri, bv, bi)
				}
				if base.Violation != nil &&
					base.Violation.Trace.String() != r.Violation.Trace.String() {
					t.Fatalf("workers=%d counterexample trace diverges", workers)
				}
			}
		})
	}
}

// TestPORTraceIsConcrete replays every reduced-run counterexample step as
// a real program transition: compressed local chains must be expanded back
// into their concrete intermediate steps, so traces remain valid
// executions from the initial state. This is also the regression test for
// the modbakery strawman — its mutual-exclusion violation must survive
// every reduction mode.
func TestPORTraceIsConcrete(t *testing.T) {
	cases := []struct {
		name string
		p    func() *gcl.Prog
		inv  []Invariant
		sym  bool
	}{
		{"modbakery-mutex-por", func() *gcl.Prog { return specs.ModBakery(2, 2) }, []Invariant{Mutex()}, false},
		{"modbakery-mutex-both", func() *gcl.Prog { return specs.ModBakery(2, 2) }, []Invariant{Mutex()}, true},
		{"bakery-overflow-por", func() *gcl.Prog { return specs.Bakery(specs.Config{N: 3, M: 3}) }, []Invariant{NoOverflow()}, false},
		{"bakery-overflow-both", func() *gcl.Prog { return specs.Bakery(specs.Config{N: 3, M: 3}) }, []Invariant{NoOverflow()}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := c.p()
			res := Check(p, Options{Invariants: c.inv, POR: true, Symmetry: c.sym})
			if !res.POR || res.Violation == nil {
				t.Fatalf("expected a POR-reduced violation, got %v", res)
			}
			tr := res.Violation.Trace
			cur := tr.Init
			if !cur.Equal(p.InitState()) {
				t.Fatal("trace does not start at the initial state")
			}
			for i, st := range tr.Steps {
				found := false
				for _, sc := range p.AllSuccs(cur, gcl.ModeUnbounded) {
					if sc.Pid == st.Pid && sc.Label(p) == st.Label && sc.State.Equal(st.State) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("step %d (p%d:%s) is not a real transition of the predecessor state",
						i+1, st.Pid, st.Label)
				}
				cur = st.State
			}
			// The final state must actually violate the invariant.
			for _, inv := range c.inv {
				if inv.Holds(p, cur) {
					t.Fatalf("trace end does not violate %s", inv.Name)
				}
			}
		})
	}
}

// deadlockProg is a two-process program that deadlocks: both processes
// take one local step and then block forever on a guard that can never
// hold. POR compresses the local steps into a chain; the deadlock state
// must still be found and its trace must replay.
func deadlockProg() *gcl.Prog {
	p := gcl.New("deadlocker", 2)
	p.SharedVar("x", 0)
	p.Label("ncs", gcl.Goto("w"))
	p.Label("w", gcl.Br(gcl.Eq(gcl.Sh("x"), gcl.C(1)), "ncs"))
	return p.MustBuild()
}

func TestPORDeadlockPreserved(t *testing.T) {
	full := Check(deadlockProg(), Options{Deadlock: true})
	red := Check(deadlockProg(), Options{Deadlock: true, POR: true})
	if full.Deadlock == nil || red.Deadlock == nil {
		t.Fatalf("deadlock missed: full=%v reduced=%v", full.Deadlock != nil, red.Deadlock != nil)
	}
	if !red.POR {
		t.Fatal("POR not applied")
	}
	if red.States > full.States {
		t.Fatalf("reduced deadlock search explored more states (%d) than full (%d)", red.States, full.States)
	}
	// The reduced deadlock trace must replay concretely into a state with
	// no enabled process.
	p := deadlockProg()
	cur := red.Deadlock.Init
	for _, st := range red.Deadlock.Steps {
		found := false
		for _, sc := range p.AllSuccs(cur, gcl.ModeUnbounded) {
			if sc.Pid == st.Pid && sc.Label(p) == st.Label && sc.State.Equal(st.State) {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("deadlock trace step is not a real transition")
		}
		cur = st.State
	}
	if p.EnabledAny(cur) {
		t.Fatal("deadlock trace does not end in a deadlock state")
	}
}

// mixedGuardProg builds the ample-condition edge case: at label "l" a
// process has a local, invisible branch (always enabled) next to a
// DISABLED branch whose shared guard another process can turn on. The
// process must not be singled out as ample there — its dependent "bad"
// branch could become its first executed action once the other process
// writes flag — or the reachable bad state is pruned away.
func mixedGuardProg() *gcl.Prog {
	p := gcl.New("mixedguard", 2)
	p.SharedVar("flag", 0)
	p.Label("start",
		gcl.Br(gcl.Eq(gcl.Self(), gcl.C(0)), "l"),
		gcl.Br(gcl.Ne(gcl.Self(), gcl.C(0)), "w"),
	)
	p.Label("l",
		gcl.Goto("l2"),
		gcl.Br(gcl.Eq(gcl.Sh("flag"), gcl.C(1)), "bad"),
	)
	p.Label("w", gcl.Goto("done", gcl.Set("flag", gcl.C(1))))
	p.Label("l2", gcl.Goto("l2"))
	p.Label("bad", gcl.Goto("bad"))
	p.Label("done", gcl.Goto("done"))
	return p.MustBuild()
}

// TestPORMixedGuardLabelSoundness is the regression test for the C1
// subtlety above: the "bad" label is reachable (process 1 enables the
// guarded branch while process 0 still sits at "l"), and the reduced
// search must find the violation exactly like the full search does.
func TestPORMixedGuardLabelSoundness(t *testing.T) {
	inv := []Invariant{AtMostAtLabel("bad", 0)}
	full := Check(mixedGuardProg(), Options{Invariants: inv})
	red := Check(mixedGuardProg(), Options{Invariants: inv, POR: true})
	if !red.POR {
		t.Fatal("POR not applied")
	}
	fv, fi := verdictOf(full)
	rv, ri := verdictOf(red)
	if fv != "violation" {
		t.Fatalf("full search must reach the bad label, got %s", fv)
	}
	if fv != rv || fi != ri {
		t.Fatalf("verdicts differ: full %s/%s, reduced %s/%s", fv, fi, rv, ri)
	}
}

// TestPORFallbacks pins the automatic full-search fallbacks: crash
// transitions, invariants without Observes declarations, and graph
// construction must all disable the reduction.
func TestPORFallbacks(t *testing.T) {
	mk := func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 2, M: 2}) }
	inv := []Invariant{Mutex(), NoOverflow()}

	crash := Check(mk(), Options{Invariants: inv, Crash: true, POR: true})
	if crash.POR {
		t.Fatal("crash transitions must disable POR")
	}
	crashFull := Check(mk(), Options{Invariants: inv, Crash: true})
	if crash.States != crashFull.States {
		t.Fatalf("disabled reduction must match the full search: %d vs %d", crash.States, crashFull.States)
	}

	opaque := Invariant{
		Name:  "opaque",
		Holds: func(p *gcl.Prog, s gcl.State) bool { return true },
	}
	und := Check(mk(), Options{Invariants: append(inv, opaque), POR: true})
	if und.POR {
		t.Fatal("an invariant without Observes must disable POR")
	}
	undFull := Check(mk(), Options{Invariants: append(inv, opaque)})
	if und.States != undFull.States {
		t.Fatalf("disabled reduction must match the full search: %d vs %d", und.States, undFull.States)
	}

	declared := Invariant{
		Name:     "never-three-at-t2",
		Holds:    func(p *gcl.Prog, s gcl.State) bool { return p.CountAtLabel(s, "t2") <= 2 },
		Observes: &Observation{Labels: []string{"t2"}},
	}
	dec := Check(mk(), Options{Invariants: append(inv, declared), POR: true})
	if !dec.POR {
		t.Fatal("a declared invariant must keep POR on")
	}

	gFull, err := BuildGraph(mk(), Options{Invariants: inv})
	if err != nil {
		t.Fatal(err)
	}
	gPOR, err := BuildGraph(mk(), Options{Invariants: inv, POR: true})
	if err != nil {
		t.Fatal(err)
	}
	if gPOR.Summary.POR {
		t.Fatal("BuildGraph must ignore POR")
	}
	requireGraphsIdentical(t, gFull, gPOR)
}

// TestPORGainBakeryPPN4 is the acceptance bar: composed with symmetry,
// POR must cut the bakery++ N=4, M=2 quotient by at least another 2x
// while reaching the same verdict.
func TestPORGainBakeryPPN4(t *testing.T) {
	inv := []Invariant{Mutex(), NoOverflow()}
	mk := func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 4, M: 2}) }
	sym := Check(mk(), Options{Invariants: inv, Symmetry: true, Workers: -1})
	both := Check(mk(), Options{Invariants: inv, Symmetry: true, POR: true, Workers: -1})
	sv, si := verdictOf(sym)
	bv, bi := verdictOf(both)
	if sv != bv || si != bi {
		t.Fatalf("verdicts differ: symmetry %s/%s, both %s/%s", sv, si, bv, bi)
	}
	if !both.Symmetry || !both.POR {
		t.Fatalf("expected both reductions applied: symmetry=%v por=%v", both.Symmetry, both.POR)
	}
	if both.States*2 > sym.States {
		t.Fatalf("POR gain below 2x on top of symmetry: symmetry %d states, both %d", sym.States, both.States)
	}
	t.Logf("bakery++ N=4 M=2: symmetry %d states, symmetry+por %d (%.1fx further)",
		sym.States, both.States, float64(sym.States)/float64(both.States))
}
