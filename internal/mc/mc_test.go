package mc

import (
	"strings"
	"testing"

	"bakerypp/internal/gcl"
	"bakerypp/internal/specs"
)

func safety() []Invariant { return []Invariant{Mutex(), NoOverflow()} }

// verify runs a full check expecting complete, violation-free exploration.
func verify(t *testing.T, p *gcl.Prog, opts Options) *Result {
	t.Helper()
	res := Check(p, opts)
	if res.Violation != nil {
		t.Fatalf("%s: unexpected violation of %s:\n%s",
			p.Name, res.Violation.Invariant, res.Violation.Trace.String())
	}
	if res.Deadlock != nil {
		t.Fatalf("%s: unexpected deadlock:\n%s", p.Name, res.Deadlock.String())
	}
	if !res.Complete {
		t.Fatalf("%s: exploration incomplete at %d states", p.Name, res.States)
	}
	return res
}

// E1 backbone: Bakery++ satisfies mutual exclusion (and never overflows) in
// every checked configuration, matching the paper's TLC result.
func TestBakeryPPMutexAndNoOverflow(t *testing.T) {
	configs := []specs.Config{
		{N: 2, M: 2},
		{N: 2, M: 4},
		{N: 3, M: 2},
		{N: 3, M: 3},
		{N: 2, M: 3, Fine: true},
		{N: 2, M: 3, SplitReset: true},
		{N: 2, M: 3, EqCheck: true},
		{N: 2, M: 3, NoGate: true},
		{N: 3, M: 2, NoGate: true},
	}
	for _, cfg := range configs {
		p := specs.BakeryPP(cfg)
		res := verify(t, p, Options{Invariants: safety()})
		if res.States < 10 {
			t.Errorf("%s N=%d M=%d: suspiciously small state space (%d)",
				p.Name, cfg.N, cfg.M, res.States)
		}
	}
}

// E2 backbone, positive half: classic Bakery violates the no-overflow
// invariant — the checker must exhibit a counterexample ending in a store
// of a value above M.
func TestBakeryOverflowCounterexample(t *testing.T) {
	for _, cfg := range []specs.Config{{N: 2, M: 3}, {N: 3, M: 2}, {N: 2, M: 2, Fine: true}} {
		p := specs.Bakery(cfg)
		res := Check(p, Options{Invariants: safety()})
		if res.Violation == nil {
			t.Fatalf("%s N=%d M=%d: expected overflow violation, got %s",
				p.Name, cfg.N, cfg.M, res.String())
		}
		if res.Violation.Invariant != "no-overflow" {
			t.Fatalf("violated %q, want no-overflow", res.Violation.Invariant)
		}
		last := res.Violation.Trace.Steps[len(res.Violation.Trace.Steps)-1].State
		if int64(p.MaxShared(last, "number")) <= p.M {
			t.Error("counterexample final state does not exceed M")
		}
	}
}

// Classic Bakery never violates mutual exclusion in the ideal unbounded
// model — bounded-depth evidence (the full state space is infinite).
func TestBakeryMutexBounded(t *testing.T) {
	p := specs.Bakery(specs.Config{N: 2, M: 1 << 14})
	res := Check(p, Options{Invariants: []Invariant{Mutex()}, MaxStates: 30000})
	if res.Violation != nil {
		t.Fatalf("bakery mutex violation:\n%s", res.Violation.Trace.String())
	}
	if res.Complete {
		t.Error("bakery with huge M should not complete within 30000 states (its space grows with tickets)")
	}
}

// E9: the modulo-arithmetic strawman loses mutual exclusion once tickets
// wrap; the checker finds a concrete interleaving.
func TestModBakeryMutexViolation(t *testing.T) {
	p := specs.ModBakery(2, 2)
	res := Check(p, Options{Invariants: []Invariant{Mutex()}})
	if res.Violation == nil {
		t.Fatalf("modbakery: expected mutex violation, got %s", res.String())
	}
	if res.Violation.Invariant != "mutual-exclusion" {
		t.Fatalf("violated %q, want mutual-exclusion", res.Violation.Invariant)
	}
	last := res.Violation.Trace.Steps[len(res.Violation.Trace.Steps)-1].State
	if got := p.CountAtLabel(last, "cs"); got < 2 {
		t.Errorf("final state has %d processes in cs, want >= 2", got)
	}
	// The violation fundamentally requires a wrapped ticket.
	sawWrap := false
	for _, st := range res.Violation.Trace.Steps {
		if st.Label == "ch2" && p.MaxShared(st.State, "number") == 0 {
			sawWrap = true
		}
	}
	_ = sawWrap // the shape of the trace is informative but not asserted
}

// Related-work baselines hold mutual exclusion in checked configurations.
func TestBaselinesMutex(t *testing.T) {
	for _, n := range []int{2, 3} {
		for _, build := range []func(int) *gcl.Prog{specs.BlackWhite, specs.Peterson, specs.Szymanski} {
			p := build(n)
			res := verify(t, p, Options{Invariants: safety()})
			t.Logf("%s N=%d: %d states", p.Name, n, res.States)
		}
	}
}

// E1 with the paper's fault model (correctness conditions 3-4): crash and
// restart transitions do not break mutual exclusion or the overflow bound.
func TestBakeryPPSafetyUnderCrashes(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 2, M: 2})
	verify(t, p, Options{Invariants: safety(), Crash: true})

	p = specs.BakeryPP(specs.Config{N: 3, M: 2})
	verify(t, p, Options{Invariants: safety(), Crash: true, CrashPids: []int{1}})
}

func TestBlackWhiteSafetyUnderCrashes(t *testing.T) {
	// Mutual exclusion survives crashes, but — unlike Bakery++ — the
	// ticket bound does NOT: a process that crash-loops in the doorway
	// while another holds a ticket regrows numbers past N, because the
	// colour never flips while nobody exits the critical section. The
	// no-overflow invariant is therefore deliberately omitted here; see
	// TestBlackWhiteTicketsUnboundedUnderCrashes and EXPERIMENTS.md E2.
	// And because tickets grow without bound under crash loops, the
	// crash-enabled state space is infinite: this is bounded-exploration
	// evidence, like TestBakeryMutexBounded.
	res := Check(specs.BlackWhite(2), Options{Invariants: []Invariant{Mutex()}, Crash: true, MaxStates: 200000})
	if res.Violation != nil {
		t.Fatalf("mutex violation under crashes:\n%s", res.Violation.Trace.String())
	}
}

// Black-White Bakery's boundedness argument assumes crash-free doorways:
// under the paper's crash-restart model (conditions 3-4) its tickets exceed
// any fixed bound, while Bakery++ holds its bound M by construction. This
// is a sharper separation than the paper's qualitative Section 4 comparison.
func TestBlackWhiteTicketsUnboundedUnderCrashes(t *testing.T) {
	p := specs.BlackWhite(2) // sets M = N = 2
	res := Check(p, Options{Invariants: []Invariant{NoOverflow()}, Crash: true})
	if res.Violation == nil {
		t.Fatal("expected ticket bound N to be exceeded under crash-restart")
	}
	if res.Violation.Invariant != "no-overflow" {
		t.Fatalf("violated %q, want no-overflow", res.Violation.Invariant)
	}
}

func TestDeadlockDetection(t *testing.T) {
	p := gcl.New("deadlock", 2)
	p.SharedVar("never", 0)
	p.Label("ncs", gcl.Goto("w"))
	p.Label("w", gcl.Br(gcl.Eq(gcl.Sh("never"), gcl.C(1)), "ncs"))
	p.MustBuild()
	res := Check(p, Options{Deadlock: true})
	if res.Deadlock == nil {
		t.Fatal("deadlock not detected")
	}
	if got := res.Deadlock.Len(); got != 2 {
		t.Errorf("deadlock trace length = %d, want 2 (both processes step to w)", got)
	}
}

func TestNoDeadlockInBakeryPP(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 2, M: 3})
	verify(t, p, Options{Invariants: safety(), Deadlock: true})
}

func TestMaxStatesCutoff(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 3})
	res := Check(p, Options{MaxStates: 100})
	if res.Complete {
		t.Error("expected incomplete exploration")
	}
	if res.States < 100 {
		t.Errorf("explored %d states, expected to hit the 100 bound", res.States)
	}
	if !strings.Contains(res.String(), "INCOMPLETE") {
		t.Errorf("summary %q should mention INCOMPLETE", res.String())
	}
}

func TestViolationTraceIsReplayable(t *testing.T) {
	p := specs.ModBakery(2, 2)
	res := Check(p, Options{Invariants: []Invariant{Mutex()}})
	if res.Violation == nil {
		t.Fatal("expected violation")
	}
	tr := res.Violation.Trace
	// Replay: from Init, each step's (pid, label) must be a real successor
	// matching the recorded state.
	cur := tr.Init
	for i, st := range tr.Steps {
		found := false
		for _, sc := range p.Succs(cur, st.Pid, gcl.ModeUnbounded, nil) {
			if sc.Label(p) == st.Label && p.Key(sc.State) == p.Key(st.State) {
				found = true
				cur = sc.State
				break
			}
		}
		if !found {
			t.Fatalf("step %d (p%d:%s) is not a valid successor", i, st.Pid, st.Label)
		}
	}
}

func TestTraceStringFormat(t *testing.T) {
	p := specs.ModBakery(2, 2)
	res := Check(p, Options{Invariants: []Invariant{Mutex()}})
	out := res.Violation.Trace.String()
	if !strings.Contains(out, "init:") || !strings.Contains(out, "p0:") {
		t.Errorf("trace rendering missing expected parts:\n%s", out)
	}
}

func TestResultString(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 2, M: 2})
	res := Check(p, Options{Invariants: safety()})
	s := res.String()
	for _, want := range []string{"bakerypp", "OK", "states"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestAtMostAtLabel(t *testing.T) {
	// All N processes can sit in the bakery doorway simultaneously, so a
	// bound of N-1 on the trial loop head must be violated...
	p := specs.BakeryPP(specs.Config{N: 2, M: 3})
	res := Check(p, Options{Invariants: []Invariant{AtMostAtLabel("t1", 1)}})
	if res.Violation == nil {
		t.Fatal("expected at-most-1-at-t1 to be violated with 2 processes")
	}
	// ...while a bound of N is unviolable.
	res = Check(p, Options{Invariants: []Invariant{AtMostAtLabel("t1", 2)}})
	if res.Violation != nil {
		t.Fatal("at-most-2-at-t1 cannot be violated with 2 processes")
	}
}

func TestBuildGraphMatchesCheck(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 2, M: 2})
	res := Check(p, Options{Invariants: safety()})
	g, err := BuildGraph(p, Options{Invariants: safety()})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != res.States {
		t.Errorf("graph states %d != check states %d", g.NumStates(), res.States)
	}
	if g.Summary.Violation != nil {
		t.Error("graph found violation where check did not")
	}
	if g.Summary.Transitions != res.Transitions {
		t.Errorf("graph transitions %d != check transitions %d",
			g.Summary.Transitions, res.Transitions)
	}
}

func TestBuildGraphBoundExceeded(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 3})
	if _, err := BuildGraph(p, Options{MaxStates: 50}); err == nil {
		t.Error("expected bound-exceeded error")
	}
}

func TestSCCsOnToggle(t *testing.T) {
	p := gcl.New("toggle", 1)
	p.SharedVar("x", 0)
	p.Label("a", gcl.Goto("b", gcl.Set("x", gcl.C(1))))
	p.Label("b", gcl.Goto("a", gcl.Set("x", gcl.C(0))))
	p.MustBuild()
	g, err := BuildGraph(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sccs := g.SCCs()
	// Reachable states: (a,0) -> (b,1) -> (a,0): one SCC of size 2.
	if len(sccs) != 1 || len(sccs[0]) != 2 {
		t.Errorf("SCCs = %v, want one component of size 2", sccs)
	}
}

// E7: the Section 6.3 scenario. With three processes and M = 2, there is a
// reachable cycle on which the "slow" process 2 is pinned at L1 while the
// fast processes 0 and 1 both keep taking steps — and somewhere on the
// cycle process 2 is genuinely blocked (some ticket >= M), so this is the
// paper's livelock, not mere scheduler unfairness.
func TestStarvationAtL1(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 2})
	g, err := BuildGraph(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l1 := p.LabelIndex("l1")
	rep := g.FindStarvation(func(pr *gcl.Prog, s gcl.State) bool {
		return pr.PC(s, 2) == l1
	}, []int{0, 1})
	if rep == nil {
		t.Fatal("no starvation cycle found; Section 6.3 scenario should exist")
	}
	if rep.MovesByPid[0] == 0 || rep.MovesByPid[1] == 0 {
		t.Error("fast processes do not both move in the component")
	}
	blockedSomewhere := false
	for _, idx := range rep.Component {
		if !p.Enabled(g.State(int(idx)), 2) {
			blockedSomewhere = true
			break
		}
	}
	if !blockedSomewhere {
		t.Error("process 2 is never blocked on the cycle; want a state with some number >= M")
	}
	t.Logf("starvation component: %d states, entry depth %d, moves %v",
		rep.ComponentSize, rep.EntryLen, rep.MovesByPid)
}

// A process that merely waits at ncs is NOT starved in the Section 6.3
// sense if the predicate requires it to be blocked: FindStarvation with an
// unsatisfiable movement demand returns nil.
func TestStarvationRequiresMovement(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 2, M: 2})
	g, err := BuildGraph(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs := p.LabelIndex("cs")
	// No cycle keeps a process permanently inside cs while the other runs:
	// the cs action is always enabled, and the other process cannot pass it.
	rep := g.FindStarvation(func(pr *gcl.Prog, s gcl.State) bool {
		return pr.PC(s, 0) == cs
	}, []int{0, 1})
	if rep != nil {
		t.Errorf("found impossible cycle: another process moves through cs forever: %+v",
			rep.MovesByPid)
	}
}

func TestGraphTraceReachesState(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 2, M: 2})
	g, err := BuildGraph(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	last := g.NumStates() - 1
	tr := g.Trace(last)
	if tr.Len() == 0 {
		t.Skip("last state is initial")
	}
	finalKey := p.Key(tr.Steps[tr.Len()-1].State)
	if finalKey != p.Key(g.State(last)) {
		t.Error("trace does not end at requested state")
	}
}

func TestCrashLabelAppearsInCrashTraces(t *testing.T) {
	// Force a violation that requires a crash to expose: a program whose
	// only way to set x=1 twice concurrently... simpler: just check crash
	// transitions exist in the graph.
	p := specs.BakeryPP(specs.Config{N: 2, M: 2})
	g, err := BuildGraph(p, Options{Crash: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, edges := range g.Adj {
		for _, e := range edges {
			if e.LabelIdx < 0 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no crash transitions in crash-enabled graph")
	}
}
