package mc

import (
	"testing"

	"bakerypp/internal/gcl"
	"bakerypp/internal/specs"
)

// equivProg is a fully equivariant symmetric program — no id comparisons,
// no scan cursors — on which the quotient edges lift exactly.
func equivProg(n int) *gcl.Prog {
	p := gcl.New("equiv", n)
	p.SharedArray("flag", n, 0)
	p.Own("flag")
	p.SetSymmetry(gcl.FullSymmetry)
	p.Label("ncs", gcl.Goto("a", gcl.SetSelf("flag", gcl.C(1))))
	p.Label("a", gcl.Goto("b", gcl.SetSelf("flag", gcl.C(2))))
	p.Label("b", gcl.Goto("ncs", gcl.SetSelf("flag", gcl.C(0))))
	p.MustBuild()
	return p
}

// The tracking product must cover the cursor-normalized reachable state
// space EXACTLY — every normalized full-graph state appears as exactly one
// product view, nothing is fabricated, and stabilizer-coset key
// canonicalization keeps the node count equal to the distinct-view count.
// This is the quotient liveness layer's central soundness invariant: the
// bakery family is only quasi-symmetric, so the product is built from
// true dynamics rather than by lifting stored edges (lifting alone
// measurably drops the Section 6.3 livelock — see quotient.go).
func TestQuotientProductCoversNormalizedSpace(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 2})
	full, err := BuildGraph(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pq := specs.BakeryPP(specs.Config{N: 3, M: 2})
	quot, err := BuildGraph(pq, Options{Symmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if !quot.Quotient() {
		t.Fatal("quotient graph not built")
	}
	pr := quot.buildProduct()

	fullSet := map[string]bool{}
	for i := 0; i < full.NumStates(); i++ {
		fullSet[p.Key(p.NormalizeCursors(full.State(i)))] = true
	}
	prodSet := map[string]bool{}
	view := make(gcl.State, p.StateLen())
	for i := range pr.nodes {
		pr.viewInto(view, pr.nodes[i])
		k := pq.Key(view)
		if prodSet[k] {
			t.Errorf("duplicate product node for view %s", pq.Format(view))
		}
		prodSet[k] = true
	}
	for k := range fullSet {
		if !prodSet[k] {
			t.Error("product misses a normalized reachable state")
			break
		}
	}
	for k := range prodSet {
		if !fullSet[k] {
			t.Error("product fabricates an unreachable state")
			break
		}
	}
	if len(prodSet) != len(fullSet) || len(pr.nodes) != len(fullSet) {
		t.Errorf("product %d nodes / %d views, normalized full %d states",
			len(pr.nodes), len(prodSet), len(fullSet))
	}
	if pr.fastHits == 0 || pr.slowPaths == 0 {
		t.Errorf("expected both identification paths exercised on a quasi-symmetric spec: fast=%d slow=%d",
			pr.fastHits, pr.slowPaths)
	}
	// The supplementary orbit table must be non-empty here: quasi-symmetric
	// dedup genuinely under-approximates orbit reachability (the store's
	// representatives' successors do not cover the successors of their
	// orbit-mates), and the product stays exact only because unknown orbits
	// are interned on the side. If this ever becomes zero the assertion is
	// good news — but until then it documents why the table exists.
	if len(pr.extra) == 0 {
		t.Log("note: quotient store covered every orbit the product reached (supplementary table unused)")
	} else {
		t.Logf("supplementary orbits: %d (quotient store has %d)", len(pr.extra), quot.NumStates())
	}
}

// On a truly equivariant program the product equals the full graph node
// for node and every successor identification takes the lifted fast path.
func TestQuotientProductExactForEquivariantProgram(t *testing.T) {
	full, err := BuildGraph(equivProg(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	quot, err := BuildGraph(equivProg(3), Options{Symmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	pr := quot.buildProduct()
	if len(pr.nodes) != full.NumStates() {
		t.Errorf("product %d nodes, full graph %d states", len(pr.nodes), full.NumStates())
	}
	if pr.slowPaths != 0 {
		t.Errorf("equivariant program took %d slow identifications (want 0)", pr.slowPaths)
	}
}

// Every quotient edge's permutation annotation satisfies its defining
// invariant: NormalizeCursors(successor) equals the annotated image of the
// stored target representative's normal form.
func TestQuotientEdgePermInvariant(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 2})
	g, err := BuildGraph(p, Options{Symmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for j := 0; j < g.NumStates(); j++ {
		succs := p.AllSuccs(g.State(j), gcl.ModeUnbounded)
		if len(succs) != len(g.Adj[j]) {
			t.Fatalf("state %d: %d successors but %d edges", j, len(succs), len(g.Adj[j]))
		}
		for k, e := range g.Adj[j] {
			want := p.Permute(p.NormalizeCursors(g.State(int(e.To))), p.PermAt(int(e.Perm)))
			if !p.NormalizeCursors(succs[k].State).Equal(want) {
				t.Fatalf("state %d edge %d: annotation invariant violated", j, k)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no edges checked")
	}
}
