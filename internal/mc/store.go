package mc

// StateStore is the visited-set abstraction every exploration loop in this
// package — Check/BuildGraph (both engines), the FCFS monitor product, and
// the bounded-refinement memo — routes through. All implementations share
// one scheme: states are keyed by a 64-bit fingerprint and the rare
// fingerprint collisions are resolved by comparing full key vectors, so
// membership stays exact (unlike TLC's default trust-the-fingerprint
// mode).
//
// Three implementations cover the engines' needs:
//
//   - sequential (newSeqStore): a single open-addressed linear-probe
//     table (fpTable), no locking — the sequential engine and the
//     monitor/memo searches.
//   - sharded-parallel (newShardedStore): the same table striped over 64
//     shards selected by fingerprint. The parallel engine partitions the
//     shards over its workers (owner-computes): each shard is read by
//     exactly one drain goroutine per phase, through direct unlocked table
//     access, while the single-threaded merge pass remains the only writer
//     — phases are separated by chunk barriers, and the locked
//     Lookup/Insert path (elided between BeginMerge/EndMerge) stays as the
//     generic interface for callers outside that protocol.
//   - symmetry-aware (either of the above with Plan.Symmetry): Prepare
//     canonicalizes the state before probing, so all states of one
//     process-permutation orbit collapse onto a single entry. The store
//     retains the canonical key (and the witnessing permutation is
//     recoverable via gcl.CanonicalizeWithPerm); the *engines* keep and
//     expand the concrete, first-encountered representative, which is what
//     keeps counterexample traces concrete and replayable — see
//     docs/model-checking.md, "Symmetry reduction".
//   - pinned-symmetry (Plan.Pinned): Prepare canonicalizes over the
//     subgroup of permutations that fix the pinned pids, the keying the
//     FCFS monitor product uses — the monitor distinguishes its (first,
//     second) pair but is symmetric in everyone else. Extra key words (the
//     monitor phase) are appended after the pinned-canonical state.

import (
	"math"
	"sync"
	"sync/atomic"

	"bakerypp/internal/gcl"
)

// StateStore maps key states to int32 values (state numbers for the
// engines, monitor/memo payloads for the product searches) with
// fingerprint+Equal exactness.
type StateStore interface {
	// Prepare computes the probe for s: a fingerprint and the key state it
	// was computed from. Non-symmetric stores key on s itself (no copy);
	// the symmetry-aware store keys on the canonical representative of s's
	// orbit. Optional extra words (a monitor phase, a belief id) are
	// appended to the key; they are rejected by symmetry-aware stores.
	Prepare(s gcl.State, extra ...int32) (uint64, gcl.State)
	// Lookup returns the value stored under key, if present.
	Lookup(fp uint64, key gcl.State) (int32, bool)
	// Insert stores val under key, replacing any previous value. The key
	// must not be mutated afterwards.
	Insert(fp uint64, key gcl.State, val int32)
}

// newStateStore builds the store variant an exploration plan needs.
// Plan.Symmetry requires p.CanCanonicalize() and Plan.Pinned requires
// p.CanTrackPerms(); planFor gates on those and falls back to the full
// search otherwise. Plan.Store selects the representation tier: exact
// in-heap (the two historical variants below), exact with arena-spilled
// keys (spill.go), hash-compaction, or bitstate (both below); planFor has
// already refused lossy tiers for analyses that need exactness. ar is the
// engine's spill arena for key sharing (nil when the caller has none —
// the monitor and memo searches — in which case a spill store makes its
// own).
func newStateStore(p *gcl.Prog, sharded bool, plan Plan, ar *arena) StateStore {
	switch plan.Store.Mode {
	case StoreCompact:
		return newCompactStore(p, plan)
	case StoreBitstate:
		return newBitstateStore(p, plan)
	}
	if plan.Store.Spill {
		st, err := newSpillStore(p, plan, ar)
		if err != nil {
			panic(err) // arena creation: disk/temp-dir failure
		}
		return st
	}
	if sharded {
		return newShardedStore(p, plan)
	}
	return newSeqStore(p, plan)
}

// kv is one stored entry: the key vector (concrete or canonical) and its
// value. For the engines' non-symmetric stores the key aliases the state
// already retained in the numbered-state array, so the entry costs one
// slice header beyond the value.
type kv struct {
	key gcl.State
	val int32
}

// prepare implements Prepare's key derivation for both store variants.
// The canonical key is an owned allocation by design: the parallel
// engine's candidates carry their keys from the expand phase across the
// chunk barrier into the merge pass, so a pooled probe buffer (copying
// only on Insert) would be overwritten while still referenced.
func prepare(p *gcl.Prog, plan Plan, s gcl.State, extra []int32) (uint64, gcl.State) {
	switch {
	case plan.Symmetry:
		if len(extra) > 0 {
			panic("mc: symmetry-aware store cannot key on extra words")
		}
		c := p.Canonicalize(s)
		return c.Fingerprint(), c
	case plan.Pinned != nil:
		c := p.CanonicalizePinned(s, plan.Pinned)
		key := append(c, extra...)
		return key.Fingerprint(), key
	case len(extra) == 0:
		return s.Fingerprint(), s
	}
	key := make(gcl.State, len(s)+len(extra))
	copy(key, s)
	copy(key[len(s):], extra)
	return key.Fingerprint(), key
}

// bucketLookup scans one fingerprint bucket for the key.
func bucketLookup(bucket []kv, key gcl.State) (int32, bool) {
	for _, e := range bucket {
		if e.key.Equal(key) {
			return e.val, true
		}
	}
	return -1, false
}

// bucketInsert inserts or replaces the key's entry.
func bucketInsert(bucket []kv, key gcl.State, val int32) []kv {
	for i := range bucket {
		if bucket[i].key.Equal(key) {
			bucket[i].val = val
			return bucket
		}
	}
	return append(bucket, kv{key: key, val: val})
}

// fpEntry packs the probe-relevant words of one fpTable slot — fingerprint
// and value — into 16 bytes, four slots per cache line, so a probe walks a
// single scalar array and only touches the pointer-carrying (GC-scanned)
// keys array on a fingerprint match. fp == 0 marks an empty slot; the one
// real fingerprint equal to 0 is remapped to 1 on entry (the full key
// comparison disambiguates the two colliding fingerprints, so exactness is
// unchanged).
type fpEntry struct {
	fp  uint64
	val int32
}

// fpTable is the exact stores' hash table: open addressing with linear
// probing over flat arrays, replacing the historical map[uint64][]kv
// buckets. A probe matches on fingerprint first (one integer compare) and
// confirms with the full key comparison, so exactness is unchanged. The
// flat layout wins twice on the hot path: a probe is one
// cache-line-friendly array walk instead of a map access plus a
// bucket-slice chase, and growth rehashes in place with zero per-entry
// allocations. NOT goroutine-safe; callers lock (or run single-threaded).
type fpTable struct {
	ents []fpEntry
	keys []gcl.State
	n    int
	mask uint64
	// limit is the occupancy at which the table grows (0.7 load factor —
	// past that linear-probe clusters lengthen quickly).
	limit int
}

// fpTableMinSize is the initial slot count (power of two).
const fpTableMinSize = 1024

// fpShardBits is the number of low fingerprint bits the sharded store
// consumes for shard selection (shardCount == 1<<fpShardBits). Home slots
// are derived from the bits ABOVE them: within one shard every fingerprint
// agrees on its low 6 bits, so homing on fp&mask would leave only every
// 64th slot reachable as a home position and chain insertions into long
// probe clusters (measured ~45-slot average probes on the bakerypp n4m2
// graph). Homing on fp>>fpShardBits restores uniform slot occupancy; the
// unsharded stores share the derivation — fmix64-finalized fingerprints
// are equidistributed in every bit range, so it costs them nothing.
const fpShardBits = 6

// homeSlot returns the initial probe position for a (nonzero) fingerprint.
func (t *fpTable) homeSlot(fp uint64) uint64 { return (fp >> fpShardBits) & t.mask }

func (t *fpTable) init(size int) {
	t.ents = make([]fpEntry, size)
	t.keys = make([]gcl.State, size)
	t.mask = uint64(size - 1)
	t.limit = size * 7 / 10
	t.n = 0
}

func (t *fpTable) lookup(fp uint64, key gcl.State) (int32, bool) {
	if t.ents == nil {
		return -1, false
	}
	if fp == 0 {
		fp = 1
	}
	for i := t.homeSlot(fp); ; i = (i + 1) & t.mask {
		e := t.ents[i]
		if e.fp == 0 {
			return -1, false
		}
		if e.fp == fp && t.keys[i].Equal(key) {
			return e.val, true
		}
	}
}

// insert stores val under (fp, key), replacing the value if the key is
// already present. The key slice is retained.
func (t *fpTable) insert(fp uint64, key gcl.State, val int32) {
	if t.ents == nil {
		t.init(fpTableMinSize)
	} else if t.n >= t.limit {
		t.grow()
	}
	if fp == 0 {
		fp = 1
	}
	for i := t.homeSlot(fp); ; i = (i + 1) & t.mask {
		e := &t.ents[i]
		if e.fp == 0 {
			e.fp = fp
			e.val = val
			t.keys[i] = key
			t.n++
			return
		}
		if e.fp == fp && t.keys[i].Equal(key) {
			e.val = val
			return
		}
	}
}

// grow quadruples the table: rehashing copies every live entry, so fewer,
// larger steps cost less total zeroing and probing than doubling would; the
// transient low load factor after a step is cheap by comparison.
func (t *fpTable) grow() {
	oldEnts, oldKeys := t.ents, t.keys
	t.init(len(oldEnts) * 4)
	for i, e := range oldEnts {
		if e.fp == 0 {
			continue
		}
		for j := t.homeSlot(e.fp); ; j = (j + 1) & t.mask {
			if t.ents[j].fp == 0 {
				t.ents[j] = e
				t.keys[j] = oldKeys[i]
				t.n++
				break
			}
		}
	}
}

// seqStore is the unsharded implementation: one table, no locks.
type seqStore struct {
	p    *gcl.Prog
	plan Plan
	t    fpTable
}

func newSeqStore(p *gcl.Prog, plan Plan) *seqStore {
	return &seqStore{p: p, plan: plan}
}

func (st *seqStore) Prepare(s gcl.State, extra ...int32) (uint64, gcl.State) {
	return prepare(st.p, st.plan, s, extra)
}

func (st *seqStore) Lookup(fp uint64, key gcl.State) (int32, bool) {
	return st.t.lookup(fp, key)
}

func (st *seqStore) Insert(fp uint64, key gcl.State, val int32) {
	st.t.insert(fp, key, val)
}

// shardCount is the number of stripes in the sharded store; a power of two
// so shard selection is a mask. 64 stripes keep lock contention negligible
// up to far more workers than any current machine provides.
const shardCount = 64

// storeShard is one stripe: an fpTable guarded by a read-write mutex.
// The parallel engine's drain pass bypasses the mutex entirely — under
// owner-computes sharding each shard's table is read by exactly one owner
// goroutine per phase, and the sole writer (the merge pass) runs strictly
// between phases — so the lock only serializes the generic Lookup/Insert
// interface for callers outside the engine's barrier protocol (the
// monitor and memo searches, tests).
type storeShard struct {
	mu sync.RWMutex
	t  fpTable
}

// shardedStore stripes the tables over shardCount shards selected by
// fingerprint.
type shardedStore struct {
	p    *gcl.Prog
	plan Plan
	// merging marks the single-threaded merge pass: BeginMerge/EndMerge
	// bracket it, and while set, Insert and Lookup skip the shard mutexes
	// entirely — the per-insert lock/unlock pair was pure overhead there,
	// and batching the whole chunk's insertions into one unlocked pass
	// amortizes synchronization to two flag writes per chunk. The flag
	// flips only while workers are quiescent (between expansion phases),
	// and goroutine spawn/join edges order it against worker reads, so
	// the default locked behavior outside merges is unchanged.
	merging bool
	shards  [shardCount]storeShard
}

// mergeBatcher is implemented by stores whose Insert path can batch under
// the parallel engine's chunk barrier (the sharded exact store). The merge
// pass brackets its single-threaded insertions with BeginMerge/EndMerge.
type mergeBatcher interface {
	BeginMerge()
	EndMerge()
}

func newShardedStore(p *gcl.Prog, plan Plan) *shardedStore {
	return &shardedStore{p: p, plan: plan}
}

func (st *shardedStore) Prepare(s gcl.State, extra ...int32) (uint64, gcl.State) {
	return prepare(st.p, st.plan, s, extra)
}

// BeginMerge enters the single-threaded merge pass: shard mutexes are
// elided until EndMerge. Callers must guarantee no concurrent access.
func (st *shardedStore) BeginMerge() { st.merging = true }

// EndMerge re-enables shard locking before workers resume.
func (st *shardedStore) EndMerge() { st.merging = false }

func (st *shardedStore) Lookup(fp uint64, key gcl.State) (int32, bool) {
	sh := &st.shards[fp&(shardCount-1)]
	if st.merging {
		return sh.t.lookup(fp, key)
	}
	sh.mu.RLock()
	idx, ok := sh.t.lookup(fp, key)
	sh.mu.RUnlock()
	return idx, ok
}

// Insert must only be called from the single-threaded merge pass.
func (st *shardedStore) Insert(fp uint64, key gcl.State, val int32) {
	sh := &st.shards[fp&(shardCount-1)]
	if st.merging {
		sh.t.insert(fp, key, val)
		return
	}
	sh.mu.Lock()
	sh.t.insert(fp, key, val)
	sh.mu.Unlock()
}

// hiSeedBase seeds the compact store's second fingerprint word; xor-ing the
// run seed in re-rolls both words together. Matches gcl.Fingerprint128's
// high-word seed so a seed-0 wide key IS the state's Fingerprint128.
const hiSeedBase = 0x243f6a8885a308d3

// centry is one compact-store entry: the second fingerprint word (0 in
// 64-bit mode) and the value. The key vector itself is gone — that is the
// compression.
type centry struct {
	hi  uint64
	val int32
}

// compactShard is one stripe of the compact store.
type compactShard struct {
	mu sync.RWMutex
	m  map[uint64][]centry
}

// compactStore is hash compaction (TLC's default trust-the-fingerprint
// scheme, SPIN -DHC): states are represented by a 64- or 128-bit
// fingerprint only. A fingerprint collision makes a fresh state look
// visited — a false HIT, silently omitting the state — so verdicts are
// probabilistic; Report bounds the expected omissions with the birthday
// estimate. False MISSES cannot happen: an inserted key always probes back
// to the same fingerprint (the fuzz target FuzzCompactStoreNoFalseMiss
// pins this). Concurrent-safe via striped RWMutexes, so it serves either
// engine.
type compactStore struct {
	p       *gcl.Prog
	plan    Plan
	wide    bool // 128-bit keys
	seed    uint64
	shadow  StateStore // exact cross-check when Plan.Store.Shadow
	diverge atomic.Int64
	entries atomic.Int64
	shards  [shardCount]compactShard
}

func newCompactStore(p *gcl.Prog, plan Plan) *compactStore {
	st := &compactStore{p: p, plan: plan,
		wide: plan.Store.CompactBits == 128, seed: plan.Store.Seed}
	for i := range st.shards {
		st.shards[i].m = map[uint64][]centry{}
	}
	if plan.Store.Shadow {
		st.shadow = newShardedStore(p, plan)
	}
	return st
}

func (st *compactStore) Prepare(s gcl.State, extra ...int32) (uint64, gcl.State) {
	return prepare(st.p, st.plan, s, extra)
}

// slots derives the store key words from the prepared probe: the low word
// is the standard fingerprint (reused from Prepare) unless a seed re-rolls
// it, the high word the independent second hash in 128-bit mode.
func (st *compactStore) slots(fp uint64, key gcl.State) (lo, hi uint64) {
	lo = fp
	if st.seed != 0 {
		lo = key.FingerprintSeeded(st.seed)
	}
	if st.wide {
		hi = key.FingerprintSeeded(hiSeedBase ^ st.seed)
	}
	return lo, hi
}

func (st *compactStore) Lookup(fp uint64, key gcl.State) (int32, bool) {
	lo, hi := st.slots(fp, key)
	sh := &st.shards[lo&(shardCount-1)]
	sh.mu.RLock()
	val, ok := int32(-1), false
	for _, e := range sh.m[lo] {
		if e.hi == hi {
			val, ok = e.val, true
			break
		}
	}
	sh.mu.RUnlock()
	if st.shadow != nil {
		sval, sok := st.shadow.Lookup(fp, key)
		if sok != ok || (ok && sval != val) {
			st.diverge.Add(1)
		}
	}
	return val, ok
}

func (st *compactStore) Insert(fp uint64, key gcl.State, val int32) {
	lo, hi := st.slots(fp, key)
	sh := &st.shards[lo&(shardCount-1)]
	sh.mu.Lock()
	bucket := sh.m[lo]
	replaced := false
	for i := range bucket {
		if bucket[i].hi == hi {
			bucket[i].val = val
			replaced = true
			break
		}
	}
	if !replaced {
		sh.m[lo] = append(bucket, centry{hi: hi, val: val})
		st.entries.Add(1)
	}
	sh.mu.Unlock()
	if st.shadow != nil {
		// The exact shadow retains its key slice, but engines hand lossy
		// tiers transient scratch keys (recycled per chunk) — copy before
		// forwarding. Shadow mode is a validation tool; the allocation is
		// acceptable there.
		st.shadow.Insert(fp, append(gcl.State(nil), key...), val)
	}
}

func (st *compactStore) Report() StoreReport {
	k := float64(st.entries.Load())
	bits := 64
	mode := "compact64"
	if st.wide {
		bits, mode = 128, "compact"
	}
	// Birthday bound: expected colliding pairs ≈ k(k-1)/2^(bits+1); each
	// collision omits at least the later state, so this bounds expected
	// omissions from fingerprint aliasing.
	expected := math.Ldexp(k*(k-1), -(bits + 1))
	return StoreReport{
		Mode:              mode,
		Lossy:             true,
		Seed:              st.seed,
		Entries:           st.entries.Load(),
		ExpectedOmissions: expected,
		Confidence:        confidenceFrom(expected),
		ShadowDivergences: st.diverge.Load(),
	}
}

// bitstateStore is SPIN's supertrace/bitstate hashing: a fixed array of
// 2^log2 bits, k bits per state by double hashing. It stores no values
// (Lookup reports membership with val -1), so the planner disables POR
// alongside (the proviso needs stored depths) and every value-carrying
// analysis refuses it. Omission risk is far higher than compact mode —
// this is the frontier-probing tier; Report converts the final fill ratio
// into an expected-omission bound and a coverage confidence, which the
// verdict banner reports instead of claiming exhaustiveness. Lock-free:
// bit sets use CAS, probes use atomic loads, so it is concurrent-safe for
// any engine phase discipline.
type bitstateStore struct {
	p       *gcl.Prog
	plan    Plan
	seed    uint64
	k       int
	mask    uint64
	words   []uint64
	bitsSet atomic.Int64
	probes  atomic.Int64
	entries atomic.Int64
}

func newBitstateStore(p *gcl.Prog, plan Plan) *bitstateStore {
	bits := uint64(1) << plan.Store.BitstateLog2
	return &bitstateStore{p: p, plan: plan, seed: plan.Store.Seed,
		k: plan.Store.BitstateHashes, mask: bits - 1, words: make([]uint64, bits/64)}
}

func (st *bitstateStore) Prepare(s gcl.State, extra ...int32) (uint64, gcl.State) {
	return prepare(st.p, st.plan, s, extra)
}

// indices yields the k bit positions for a probe via double hashing:
// h1 + i*h2 over the array, h2 forced odd so the stride walks the whole
// power-of-two table.
func (st *bitstateStore) indices(fp uint64, key gcl.State, visit func(word, bit uint64) bool) {
	h1 := fp
	if st.seed != 0 {
		h1 = key.FingerprintSeeded(st.seed)
	}
	h2 := key.FingerprintSeeded(hiSeedBase^st.seed) | 1
	for i := 0; i < st.k; i++ {
		idx := (h1 + uint64(i)*h2) & st.mask
		if !visit(idx>>6, uint64(1)<<(idx&63)) {
			return
		}
	}
}

func (st *bitstateStore) Lookup(fp uint64, key gcl.State) (int32, bool) {
	st.probes.Add(1)
	all := true
	st.indices(fp, key, func(word, bit uint64) bool {
		if atomic.LoadUint64(&st.words[word])&bit == 0 {
			all = false
			return false
		}
		return true
	})
	if !all {
		return -1, false
	}
	return -1, true
}

func (st *bitstateStore) Insert(fp uint64, key gcl.State, _ int32) {
	fresh := int64(0)
	st.indices(fp, key, func(word, bit uint64) bool {
		for {
			old := atomic.LoadUint64(&st.words[word])
			if old&bit != 0 {
				return true
			}
			if atomic.CompareAndSwapUint64(&st.words[word], old, old|bit) {
				fresh++
				return true
			}
		}
	})
	if fresh > 0 {
		st.bitsSet.Add(fresh)
	}
	st.entries.Add(1)
}

func (st *bitstateStore) Report() StoreReport {
	bits := int64(st.mask + 1)
	set := st.bitsSet.Load()
	fill := float64(set) / float64(bits)
	// Each Lookup false-positives with probability ≤ fill^k at the FINAL
	// fill ratio (fill only grows), so probes × fill^k upper-bounds the
	// expected number of fresh states wrongly treated as visited.
	expected := float64(st.probes.Load()) * math.Pow(fill, float64(st.k))
	return StoreReport{
		Mode:              "bitstate",
		Lossy:             true,
		Seed:              st.seed,
		Entries:           st.entries.Load(),
		ExpectedOmissions: expected,
		Confidence:        confidenceFrom(expected),
		BitsSet:           set,
		Bits:              bits,
		Hashes:            st.k,
	}
}
