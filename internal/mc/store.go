package mc

// StateStore is the visited-set abstraction every exploration loop in this
// package — Check/BuildGraph (both engines), the FCFS monitor product, and
// the bounded-refinement memo — routes through. All implementations share
// one scheme: states are keyed by a 64-bit fingerprint and the rare
// fingerprint collisions are resolved by comparing full key vectors, so
// membership stays exact (unlike TLC's default trust-the-fingerprint
// mode).
//
// Three implementations cover the engines' needs:
//
//   - sequential (newSeqStore): a single bucket map, no locking — the
//     sequential engine and the monitor/memo searches.
//   - sharded-parallel (newShardedStore): the same bucket scheme striped
//     over 64 RWMutex-guarded shards selected by fingerprint, safe for the
//     parallel engine's concurrent advisory lookups during expansion while
//     the single-threaded merge pass remains the only writer.
//   - symmetry-aware (either of the above with Plan.Symmetry): Prepare
//     canonicalizes the state before probing, so all states of one
//     process-permutation orbit collapse onto a single entry. The store
//     retains the canonical key (and the witnessing permutation is
//     recoverable via gcl.CanonicalizeWithPerm); the *engines* keep and
//     expand the concrete, first-encountered representative, which is what
//     keeps counterexample traces concrete and replayable — see
//     docs/model-checking.md, "Symmetry reduction".
//   - pinned-symmetry (Plan.Pinned): Prepare canonicalizes over the
//     subgroup of permutations that fix the pinned pids, the keying the
//     FCFS monitor product uses — the monitor distinguishes its (first,
//     second) pair but is symmetric in everyone else. Extra key words (the
//     monitor phase) are appended after the pinned-canonical state.

import (
	"sync"

	"bakerypp/internal/gcl"
)

// StateStore maps key states to int32 values (state numbers for the
// engines, monitor/memo payloads for the product searches) with
// fingerprint+Equal exactness.
type StateStore interface {
	// Prepare computes the probe for s: a fingerprint and the key state it
	// was computed from. Non-symmetric stores key on s itself (no copy);
	// the symmetry-aware store keys on the canonical representative of s's
	// orbit. Optional extra words (a monitor phase, a belief id) are
	// appended to the key; they are rejected by symmetry-aware stores.
	Prepare(s gcl.State, extra ...int32) (uint64, gcl.State)
	// Lookup returns the value stored under key, if present.
	Lookup(fp uint64, key gcl.State) (int32, bool)
	// Insert stores val under key, replacing any previous value. The key
	// must not be mutated afterwards.
	Insert(fp uint64, key gcl.State, val int32)
}

// newStateStore builds the store variant an exploration plan needs.
// Plan.Symmetry requires p.CanCanonicalize() and Plan.Pinned requires
// p.CanTrackPerms(); planFor gates on those and falls back to the full
// search otherwise.
func newStateStore(p *gcl.Prog, sharded bool, plan Plan) StateStore {
	if sharded {
		return newShardedStore(p, plan)
	}
	return newSeqStore(p, plan)
}

// kv is one stored entry: the key vector (concrete or canonical) and its
// value. For the engines' non-symmetric stores the key aliases the state
// already retained in the numbered-state array, so the entry costs one
// slice header beyond the value.
type kv struct {
	key gcl.State
	val int32
}

// prepare implements Prepare's key derivation for both store variants.
// The canonical key is an owned allocation by design: the parallel
// engine's candidates carry their keys from the expand phase across the
// chunk barrier into the merge pass, so a pooled probe buffer (copying
// only on Insert) would be overwritten while still referenced.
func prepare(p *gcl.Prog, plan Plan, s gcl.State, extra []int32) (uint64, gcl.State) {
	switch {
	case plan.Symmetry:
		if len(extra) > 0 {
			panic("mc: symmetry-aware store cannot key on extra words")
		}
		c := p.Canonicalize(s)
		return c.Fingerprint(), c
	case plan.Pinned != nil:
		c := p.CanonicalizePinned(s, plan.Pinned)
		key := append(c, extra...)
		return key.Fingerprint(), key
	case len(extra) == 0:
		return s.Fingerprint(), s
	}
	key := make(gcl.State, len(s)+len(extra))
	copy(key, s)
	copy(key[len(s):], extra)
	return key.Fingerprint(), key
}

// bucketLookup scans one fingerprint bucket for the key.
func bucketLookup(bucket []kv, key gcl.State) (int32, bool) {
	for _, e := range bucket {
		if e.key.Equal(key) {
			return e.val, true
		}
	}
	return -1, false
}

// bucketInsert inserts or replaces the key's entry.
func bucketInsert(bucket []kv, key gcl.State, val int32) []kv {
	for i := range bucket {
		if bucket[i].key.Equal(key) {
			bucket[i].val = val
			return bucket
		}
	}
	return append(bucket, kv{key: key, val: val})
}

// seqStore is the unsharded implementation: one map, no locks.
type seqStore struct {
	p    *gcl.Prog
	plan Plan
	m    map[uint64][]kv
}

func newSeqStore(p *gcl.Prog, plan Plan) *seqStore {
	return &seqStore{p: p, plan: plan, m: map[uint64][]kv{}}
}

func (st *seqStore) Prepare(s gcl.State, extra ...int32) (uint64, gcl.State) {
	return prepare(st.p, st.plan, s, extra)
}

func (st *seqStore) Lookup(fp uint64, key gcl.State) (int32, bool) {
	return bucketLookup(st.m[fp], key)
}

func (st *seqStore) Insert(fp uint64, key gcl.State, val int32) {
	st.m[fp] = bucketInsert(st.m[fp], key, val)
}

// shardCount is the number of stripes in the sharded store; a power of two
// so shard selection is a mask. 64 stripes keep lock contention negligible
// up to far more workers than any current machine provides.
const shardCount = 64

// storeShard is one stripe: a fingerprint-keyed bucket map guarded by a
// read-write mutex. Exploration workers only read (their lookups during
// expansion are advisory); the merge pass is the sole writer. Strictly the
// expand and merge phases never overlap (they are separated by the chunk
// barrier), so the locks are uncontended belt-and-braces that keep the set
// safe if a future change lets phases overlap.
type storeShard struct {
	mu sync.RWMutex
	m  map[uint64][]kv
}

// shardedStore stripes the bucket maps over shardCount shards selected by
// fingerprint.
type shardedStore struct {
	p      *gcl.Prog
	plan   Plan
	shards [shardCount]storeShard
}

func newShardedStore(p *gcl.Prog, plan Plan) *shardedStore {
	st := &shardedStore{p: p, plan: plan}
	for i := range st.shards {
		st.shards[i].m = map[uint64][]kv{}
	}
	return st
}

func (st *shardedStore) Prepare(s gcl.State, extra ...int32) (uint64, gcl.State) {
	return prepare(st.p, st.plan, s, extra)
}

func (st *shardedStore) Lookup(fp uint64, key gcl.State) (int32, bool) {
	sh := &st.shards[fp&(shardCount-1)]
	sh.mu.RLock()
	idx, ok := bucketLookup(sh.m[fp], key)
	sh.mu.RUnlock()
	return idx, ok
}

// Insert must only be called from the single-threaded merge pass.
func (st *shardedStore) Insert(fp uint64, key gcl.State, val int32) {
	sh := &st.shards[fp&(shardCount-1)]
	sh.mu.Lock()
	sh.m[fp] = bucketInsert(sh.m[fp], key, val)
	sh.mu.Unlock()
}
