package mc

import (
	"testing"

	"bakerypp/internal/gcl"
)

// An invariant already false in the initial state yields a zero-step
// counterexample.
func TestViolationAtInitialState(t *testing.T) {
	p := gcl.New("initbad", 1)
	p.SetM(1)
	p.SharedVar("number", 5) // starts above M
	p.Label("ncs", gcl.Goto("ncs"))
	p.MustBuild()
	res := Check(p, Options{Invariants: []Invariant{NoOverflow()}})
	if res.Violation == nil {
		t.Fatal("initial-state violation missed")
	}
	if res.Violation.Trace.Len() != 0 {
		t.Errorf("trace length = %d, want 0", res.Violation.Trace.Len())
	}
	if res.States != 1 {
		t.Errorf("states = %d, want 1", res.States)
	}
}

// NoOverflow is vacuous for programs without a declared capacity.
func TestNoOverflowVacuousWithoutM(t *testing.T) {
	p := gcl.New("unbounded", 1)
	p.SharedVar("x", 0)
	p.Label("a", gcl.Goto("a", gcl.Set("x", gcl.Add(gcl.Sh("x"), gcl.C(1)))))
	p.MustBuild()
	res := Check(p, Options{Invariants: []Invariant{NoOverflow()}, MaxStates: 100})
	if res.Violation != nil {
		t.Error("vacuous invariant reported a violation")
	}
	if res.Complete {
		t.Error("counter program cannot complete in 100 states")
	}
}

// Deadlock detection and invariants interact: the violation is found first
// when it is shallower.
func TestViolationBeforeDeadlock(t *testing.T) {
	p := gcl.New("both", 1)
	p.SetM(1)
	p.SharedVar("number", 0)
	p.Label("a", gcl.Goto("b", gcl.Set("number", gcl.C(5))))
	p.Label("b", gcl.Br(gcl.Eq(gcl.Sh("number"), gcl.C(0)), "a"))
	p.MustBuild()
	res := Check(p, Options{Invariants: []Invariant{NoOverflow()}, Deadlock: true})
	if res.Violation == nil {
		t.Fatal("violation not found")
	}
	if res.Deadlock != nil {
		t.Error("deadlock reported despite earlier violation")
	}
}

// Graph construction on a single-state program.
func TestGraphSingleState(t *testing.T) {
	p := gcl.New("still", 1)
	p.SharedVar("x", 0)
	p.Label("a", gcl.Br(gcl.Eq(gcl.Sh("x"), gcl.C(1)), "a")) // never enabled
	p.MustBuild()
	g, err := BuildGraph(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 1 {
		t.Errorf("states = %d, want 1", g.NumStates())
	}
	if sccs := g.SCCs(); len(sccs) != 1 || len(sccs[0]) != 1 {
		t.Errorf("SCCs = %v", sccs)
	}
	if rep := g.FindNoProgress([]int{0}); rep != nil {
		t.Error("stuck single state reported as livelock (no edges, no cycle)")
	}
}
