package mc

// Tests for symmetry-reduced exploration: verdict parity with the full
// search across the spec matrix, determinism for any worker count, the
// concreteness of reduced counterexample traces, and the headline
// reduction factors the docs table records.

import (
	"testing"

	"bakerypp/internal/gcl"
	"bakerypp/internal/specs"
)

// symMatrix is the spec matrix the parity tests sweep: every registered
// algorithm at N <= 4, plus the safe-register build, with the stock safety
// invariants. Declared-asymmetric specs ride along to pin the fallback.
func symMatrix() []struct {
	name string
	p    func() *gcl.Prog
	want bool // symmetry reduction expected to apply
} {
	return []struct {
		name string
		p    func() *gcl.Prog
		want bool
	}{
		{"bakery-N2-M3", func() *gcl.Prog { return specs.Bakery(specs.Config{N: 2, M: 3}) }, true},
		{"bakery-N3-M3", func() *gcl.Prog { return specs.Bakery(specs.Config{N: 3, M: 3}) }, true},
		{"bakery-fine-N2-M2", func() *gcl.Prog { return specs.Bakery(specs.Config{N: 2, M: 2, Fine: true}) }, true},
		{"bakerypp-N2-M2", func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 2, M: 2}) }, true},
		{"bakerypp-N3-M2", func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 3, M: 2}) }, true},
		{"bakerypp-N4-M2", func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 4, M: 2}) }, true},
		{"bakerypp-fine-N2-M3", func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 2, M: 3, Fine: true}) }, true},
		{"bakerypp-safe-N2-M2", func() *gcl.Prog { return specs.BakeryPPSafe(2, 2) }, true},
		{"modbakery-N2-M2", func() *gcl.Prog { return specs.ModBakery(2, 2) }, true},
		{"modbakery-N3-M2", func() *gcl.Prog { return specs.ModBakery(3, 2) }, true},
		{"szymanski-N3", func() *gcl.Prog { return specs.Szymanski(3) }, true},
		{"szymanski-N4", func() *gcl.Prog { return specs.Szymanski(4) }, true},
		{"blackwhite-N3", func() *gcl.Prog { return specs.BlackWhite(3) }, false},
		{"peterson-N3", func() *gcl.Prog { return specs.Peterson(3) }, false},
	}
}

func verdictOf(r *Result) (string, string) {
	switch {
	case r.Violation != nil:
		return "violation", r.Violation.Invariant
	case r.Deadlock != nil:
		return "deadlock", ""
	case !r.Complete:
		return "incomplete", ""
	}
	return "verified", ""
}

// TestSymmetryVerdictParity checks, across the whole spec matrix, that the
// symmetry-reduced search reports the same pass/fail verdict and violated
// invariant as the full search, while exploring no more (and, for
// symmetric specs with N >= 3, strictly fewer) states.
func TestSymmetryVerdictParity(t *testing.T) {
	for _, m := range symMatrix() {
		t.Run(m.name, func(t *testing.T) {
			inv := []Invariant{Mutex(), NoOverflow()}
			full := Check(m.p(), Options{Invariants: inv})
			red := Check(m.p(), Options{Invariants: inv, Symmetry: true})
			if red.Symmetry != m.want {
				t.Fatalf("symmetry applied = %v, want %v", red.Symmetry, m.want)
			}
			if full.Symmetry {
				t.Fatal("full run must not report symmetry")
			}
			fv, fi := verdictOf(full)
			rv, ri := verdictOf(red)
			if fv != rv || fi != ri {
				t.Fatalf("verdicts differ: full %s/%s, reduced %s/%s", fv, fi, rv, ri)
			}
			if red.States > full.States {
				t.Fatalf("reduced search explored more states (%d) than full (%d)", red.States, full.States)
			}
			if m.want && full.Complete && full.Prog.N >= 3 && red.States >= full.States {
				t.Fatalf("expected a strict reduction at N=%d: full %d, reduced %d",
					full.Prog.N, full.States, red.States)
			}
			if !m.want && red.States != full.States {
				t.Fatalf("declared-asymmetric spec must fall back to the full search: full %d, reduced %d",
					full.States, red.States)
			}
		})
	}
}

// TestSymmetryDeterministicAcrossWorkers pins the acceptance contract that
// reduced runs are byte-identical for any worker count: state counts,
// transition counts, verdicts, and the full BFS graph all agree between
// the sequential engine and the parallel engine at several widths.
func TestSymmetryDeterministicAcrossWorkers(t *testing.T) {
	models := []struct {
		name  string
		p     func() *gcl.Prog
		graph bool // unbounded specs (classic bakery) cannot be graph-built
	}{
		{"bakerypp-N3-M2", func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 3, M: 2}) }, true},
		{"szymanski-N3", func() *gcl.Prog { return specs.Szymanski(3) }, true},
		{"bakery-N3-M3", func() *gcl.Prog { return specs.Bakery(specs.Config{N: 3, M: 3}) }, false},
	}
	for _, m := range models {
		t.Run(m.name, func(t *testing.T) {
			inv := []Invariant{Mutex(), NoOverflow()}
			base := Check(m.p(), Options{Invariants: inv, Symmetry: true})
			for _, workers := range []int{1, 4, -1} {
				r := Check(m.p(), Options{Invariants: inv, Symmetry: true, Workers: workers})
				if r.States != base.States || r.Transitions != base.Transitions ||
					r.Depth != base.Depth || r.Complete != base.Complete || r.Symmetry != base.Symmetry {
					t.Fatalf("workers=%d diverges: states=%d/%d transitions=%d/%d depth=%d/%d",
						workers, r.States, base.States, r.Transitions, base.Transitions, r.Depth, base.Depth)
				}
				bv, bi := verdictOf(base)
				rv, ri := verdictOf(r)
				if bv != rv || bi != ri {
					t.Fatalf("workers=%d verdict diverges: %s/%s vs %s/%s", workers, rv, ri, bv, bi)
				}
				if base.Violation != nil &&
					base.Violation.Trace.String() != r.Violation.Trace.String() {
					t.Fatalf("workers=%d counterexample trace diverges", workers)
				}
			}
			if !m.graph {
				return
			}
			seq, err := BuildGraph(m.p(), Options{Symmetry: true})
			if err != nil {
				t.Fatal(err)
			}
			par, err := BuildGraph(m.p(), Options{Symmetry: true, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			requireGraphsIdentical(t, seq, par)
		})
	}
}

// TestSymmetryTraceIsConcrete replays every reduced-run counterexample
// step as a real program transition: the symmetry store only dedups, it
// never substitutes a permuted image for a reachable state, so traces must
// be valid concrete executions from the initial state.
func TestSymmetryTraceIsConcrete(t *testing.T) {
	cases := []struct {
		name string
		p    *gcl.Prog
		inv  []Invariant
	}{
		{"modbakery-mutex", specs.ModBakery(2, 2), []Invariant{Mutex()}},
		{"bakery-overflow", specs.Bakery(specs.Config{N: 3, M: 3}), []Invariant{NoOverflow()}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := Check(c.p, Options{Invariants: c.inv, Symmetry: true})
			if !res.Symmetry || res.Violation == nil {
				t.Fatalf("expected a symmetry-reduced violation, got %v", res)
			}
			tr := res.Violation.Trace
			cur := tr.Init
			if !cur.Equal(c.p.InitState()) {
				t.Fatal("trace does not start at the initial state")
			}
			for i, st := range tr.Steps {
				found := false
				for _, sc := range c.p.AllSuccs(cur, gcl.ModeUnbounded) {
					if sc.Pid == st.Pid && sc.Label(c.p) == st.Label && sc.State.Equal(st.State) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("step %d (p%d:%s) is not a real transition of the predecessor state",
						i+1, st.Pid, st.Label)
				}
				cur = st.State
			}
		})
	}
}

// TestSymmetryBakeryN4Reduction is the acceptance bar: with symmetry on,
// bakery at N=4 reaches the same verdict while exploring at most a tenth
// of the states the full run does.
func TestSymmetryBakeryN4Reduction(t *testing.T) {
	inv := []Invariant{Mutex(), NoOverflow()}
	mk := func() *gcl.Prog { return specs.Bakery(specs.Config{N: 4, M: 3}) }
	full := Check(mk(), Options{Invariants: inv})
	red := Check(mk(), Options{Invariants: inv, Symmetry: true, Workers: -1})
	fv, fi := verdictOf(full)
	rv, ri := verdictOf(red)
	if fv != rv || fi != ri {
		t.Fatalf("verdicts differ: full %s/%s, reduced %s/%s", fv, fi, rv, ri)
	}
	if red.States*10 > full.States {
		t.Fatalf("reduction below 10x: full %d states, reduced %d", full.States, red.States)
	}
	t.Logf("bakery N=4: full %d states, reduced %d (%.1fx)",
		full.States, red.States, float64(full.States)/float64(red.States))
}

// TestSymmetryBakeryPPN5UnderBound is the scaling acceptance criterion:
// bakery++ at N=5 completes under the default state bound once symmetry
// reduction is on (the full run does not get close).
func TestSymmetryBakeryPPN5UnderBound(t *testing.T) {
	if testing.Short() {
		t.Skip("N=5 quotient exploration is seconds-long; skipped in -short")
	}
	p := specs.BakeryPP(specs.Config{N: 5, M: 2})
	res := Check(p, Options{Invariants: []Invariant{Mutex(), NoOverflow()}, Symmetry: true, Workers: -1})
	if !res.Symmetry {
		t.Fatal("symmetry not applied")
	}
	if res.Violation != nil || res.Deadlock != nil {
		t.Fatalf("unexpected failure: %v", res)
	}
	if !res.Complete {
		t.Fatalf("did not complete under the default bound: %d states", res.States)
	}
	t.Logf("bakery++ N=5 quotient: %d states, %d transitions", res.States, res.Transitions)
}

// TestSymmetryCrashHandling pins the soundness gate on crash transitions:
// crashing all processes preserves symmetry, crashing a proper subset
// distinguishes identities and must fall back to the full search.
func TestSymmetryCrashHandling(t *testing.T) {
	inv := []Invariant{Mutex(), NoOverflow()}
	mk := func() *gcl.Prog { return specs.BakeryPP(specs.Config{N: 2, M: 2}) }
	all := Check(mk(), Options{Invariants: inv, Crash: true, Symmetry: true})
	if !all.Symmetry {
		t.Fatal("crash over all processes should keep symmetry reduction on")
	}
	sub := Check(mk(), Options{Invariants: inv, Crash: true, CrashPids: []int{0}, Symmetry: true})
	if sub.Symmetry {
		t.Fatal("crashing a proper pid subset must disable symmetry reduction")
	}
	// A duplicated entry must not masquerade as full coverage.
	dup := Check(mk(), Options{Invariants: inv, Crash: true, CrashPids: []int{0, 0}, Symmetry: true})
	if dup.Symmetry {
		t.Fatal("duplicated crash pids must disable symmetry reduction")
	}
	explicit := Check(mk(), Options{Invariants: inv, Crash: true, CrashPids: []int{1, 0}, Symmetry: true})
	if !explicit.Symmetry {
		t.Fatal("explicitly listing every pid should keep symmetry reduction on")
	}
	fullSub := Check(mk(), Options{Invariants: inv, Crash: true, CrashPids: []int{0}})
	if sub.States != fullSub.States {
		t.Fatalf("disabled reduction must match the full search: %d vs %d", sub.States, fullSub.States)
	}
}

// TestStateStoreBasics exercises the store implementations directly:
// fingerprint+Equal exactness, overwrite semantics, extra key words, and
// the canonical keying of the symmetry-aware variant.
func TestStateStoreBasics(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 3, M: 2})
	s1 := p.InitState()
	s2 := p.Clone(s1)
	p.SetShared(s2, "number", 1, 2)
	s3 := p.Clone(s1)
	p.SetShared(s3, "number", 2, 2) // orbit-mate of s2
	for _, sharded := range []bool{false, true} {
		st := newStateStore(p, sharded, Plan{}, nil)
		fp1, k1 := st.Prepare(s1)
		if _, ok := st.Lookup(fp1, k1); ok {
			t.Fatal("empty store reported a hit")
		}
		st.Insert(fp1, k1, 0)
		if v, ok := st.Lookup(fp1, k1); !ok || v != 0 {
			t.Fatalf("lookup after insert = (%d, %v)", v, ok)
		}
		st.Insert(fp1, k1, 7) // overwrite
		if v, _ := st.Lookup(fp1, k1); v != 7 {
			t.Fatalf("overwrite did not take: %d", v)
		}
		fp2, k2 := st.Prepare(s2)
		if _, ok := st.Lookup(fp2, k2); ok {
			t.Fatal("distinct state reported present")
		}
		// Extra key words distinguish otherwise-equal states.
		fpA, kA := st.Prepare(s1, 1)
		if _, ok := st.Lookup(fpA, kA); ok {
			t.Fatal("extra-word key collided with the bare key")
		}

		sym := newStateStore(p, sharded, Plan{Symmetry: true}, nil)
		fpS2, kS2 := sym.Prepare(s2)
		fpS3, kS3 := sym.Prepare(s3)
		if fpS2 != fpS3 || !kS2.Equal(kS3) {
			t.Fatal("orbit-mates must prepare to the same canonical key")
		}
		sym.Insert(fpS2, kS2, 4)
		if v, ok := sym.Lookup(fpS3, kS3); !ok || v != 4 {
			t.Fatal("orbit-mate lookup missed")
		}
	}
}
