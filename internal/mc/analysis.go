package mc

// The property-driven analysis pipeline. Every entry point of this package
// — Check, BuildGraph and its SCC/starvation/no-progress analyses,
// CheckFCFS, CheckBoundedRefinement — used to gate its own reductions with
// ad-hoc flag checks, and everything except Check silently fell back to
// the full state space. They now share one declarative scheme: an Analysis
// states what it NEEDS from the exploration (edges, depth, cycle
// preservation, which process identities its property distinguishes, what
// its predicates observe), and planFor picks the strongest reduction that
// is still sound for those needs:
//
//   - a property symmetric in all pids        → full-orbit symmetry dedup,
//     and, when the analysis consumes the transition graph, permutation-
//     tracked edges so cycle analyses can run on the quotient (quotient.go);
//   - a property pinning a few pids (FCFS)    → orbit dedup over the
//     subgroup of permutations fixing the pinned pids;
//   - a property distinguishing every pid     → no symmetry (refinement);
//   - cycle-sensitive analyses                → no POR (ample-set reduction
//     deliberately removes interleavings; its BFS proviso only guarantees
//     no action is ignored forever, not that every cycle survives);
//   - safety invariants with declared reads   → POR as before.
//
// The plan is engine-independent: both the sequential and the parallel
// engine execute the same plan and stay byte-identical for any Workers
// setting.

import (
	"fmt"

	"bakerypp/internal/gcl"
)

// Needs declares what an analysis requires of the exploration engine.
type Needs struct {
	// Edges requires the transition graph's adjacency to be recorded
	// (BuildGraph and everything downstream of it).
	Edges bool
	// Depth requires per-state BFS depth (entry-distance reporting).
	Depth bool
	// Cycles marks the analysis as cycle-sensitive: every cycle of the
	// full graph must survive into the reduced one, which rules out
	// partial-order reduction.
	Cycles bool
	// PinnedPids lists the process identities the property tells apart
	// (the FCFS pair). Empty means the property is symmetric in all pids.
	PinnedPids []int
	// AllPids marks a property that distinguishes every process identity
	// (refinement relates concrete pids on both sides); no symmetry
	// reduction is sound then.
	AllPids bool
	// Exact requires the visited set to never misreport a fresh state as
	// seen. Graph consumers address states by index and lift cycles through
	// them, the FCFS monitor and refinement memoization prune whole search
	// subtrees on membership answers — one silent omission corrupts those
	// structurally, not just probabilistically, so planFor refuses lossy
	// stores outright for such analyses.
	Exact bool
	// Observations collects the declared read sets of the predicates the
	// analysis evaluates; a nil entry means "may read anything" and
	// disables POR, exactly like Invariant.Observes.
	Observations []*Observation
}

// Analysis declares an exploration-consuming property check to the
// pipeline. Implementations are the four entry points' declarations; the
// engine never asks an Analysis to run itself — it only reads the needs
// and serves the matching exploration.
type Analysis interface {
	Name() string
	Needs() Needs
}

// SafetyAnalysis is Check's declaration: invariants plus optional deadlock
// detection, no graph, no pid identities.
type SafetyAnalysis struct{ Invariants []Invariant }

func (SafetyAnalysis) Name() string { return "safety" }
func (a SafetyAnalysis) Needs() Needs {
	return Needs{Observations: observationsOf(a.Invariants)}
}

// GraphAnalysis is BuildGraph's declaration, covering the SCC, starvation
// and no-progress analyses that consume the graph: cycle-sensitive, needs
// edges and depths. Its predicates may pin pids (the starved process), but
// pid identity is recovered through permutation-tracked edges rather than
// by refusing the quotient, so PinnedPids stays empty.
type GraphAnalysis struct{ Invariants []Invariant }

func (GraphAnalysis) Name() string { return "graph" }
func (a GraphAnalysis) Needs() Needs {
	return Needs{Edges: true, Depth: true, Cycles: true, Exact: true,
		Observations: observationsOf(a.Invariants)}
}

// FCFSAnalysis is CheckFCFS's declaration: the monitor distinguishes the
// ordered pair (First, Second) and observes branch tags along every
// transition, so POR is out and symmetry must fix the pair.
type FCFSAnalysis struct{ First, Second int }

func (FCFSAnalysis) Name() string { return "fcfs" }
func (a FCFSAnalysis) Needs() Needs {
	return Needs{PinnedPids: []int{a.First, a.Second}, Exact: true,
		Observations: []*Observation{nil}} // tag visibility: beyond Observation's vocabulary
}

// RefinementAnalysis is CheckBoundedRefinement's declaration: observable
// events name concrete pids on both the implementation and specification
// side, so every identity is pinned and no reduction applies.
type RefinementAnalysis struct{}

func (RefinementAnalysis) Name() string { return "refinement" }
func (RefinementAnalysis) Needs() Needs {
	return Needs{AllPids: true, Exact: true, Observations: []*Observation{nil}}
}

// Plan is the reduction selection the pipeline made for one analysis run.
type Plan struct {
	// Symmetry: key the visited store on full-orbit canonical
	// representatives (dedup only; concrete states are kept and expanded).
	Symmetry bool
	// Pinned, when non-nil, keys the store on representatives canonical
	// over the permutation subgroup fixing these pids.
	Pinned []int
	// POR: ample-set partial-order reduction with local-chain compression.
	POR bool
	// TrackPerms: annotate every graph edge with the permutation relating
	// the concrete successor to the stored representative of its orbit,
	// enabling the quotient-product cycle analyses.
	TrackPerms bool
	// Store is the normalized visited-set configuration (storeopts.go).
	Store StoreOptions
}

// planFor selects the strongest sound reduction for an analysis on p under
// the requested options, and refuses store/analysis combinations that are
// unsound. It is deterministic and engine-independent.
func planFor(p *gcl.Prog, opts Options, a Analysis) (Plan, error) {
	needs := a.Needs()
	var pl Plan
	st, err := opts.Store.normalized()
	if err != nil {
		return pl, err
	}
	if st.Lossy() && needs.Exact {
		return pl, fmt.Errorf("mc: the %s analysis needs an exact visited set; store mode %q is unsound for it (use \"exact\" or \"exact,spill\")",
			a.Name(), st.String())
	}
	pl.Store = st
	crashSymOK := !opts.Crash || crashersCoverAll(crashersOf(p, opts), p.N)
	if opts.Symmetry && !needs.AllPids && crashSymOK {
		switch {
		case len(needs.PinnedPids) > 0:
			// Pinned canonicalization always enumerates the permutation
			// table, so it needs the table to exist.
			if p.CanTrackPerms() {
				pinned := make([]int, len(needs.PinnedPids))
				copy(pinned, needs.PinnedPids)
				pl.Pinned = pinned
			}
		case needs.Edges:
			// Graph consumers must be able to lift paths and cycles back
			// through the edges' permutations; without a permutation table
			// the quotient would be a dead end, so fall back to full.
			if p.CanCanonicalize() && p.CanTrackPerms() {
				pl.Symmetry = true
				pl.TrackPerms = true
			}
		default:
			pl.Symmetry = p.CanCanonicalize()
		}
	}
	// Crash transitions reset owned shared cells from every state, so no
	// action of any process is ever safe to single out; cycle-sensitive
	// analyses need every interleaving; a nil observation could watch
	// anything; a pinned or fully-pinned property may distinguish the
	// very interleavings POR merges. The bitstate store stores no values,
	// so the ample proviso's stored-depth lookups are impossible — POR is
	// silently dropped there (the store is already probabilistic; the
	// compact store keeps values and keeps POR).
	pl.POR = opts.POR && st.hasValues() && !opts.Crash && !needs.Cycles &&
		!needs.AllPids && len(needs.PinnedPids) == 0 &&
		observationsKnown(needs.Observations)
	return pl, nil
}

// PlanFor exposes the pipeline's reduction choice, mainly so tests and
// tools can assert what the engine will do for a given analysis without
// running it. The error reports store/analysis combinations the pipeline
// refuses as unsound.
func PlanFor(p *gcl.Prog, opts Options, a Analysis) (Plan, error) {
	return planFor(p, opts, a)
}

// observationsOf collects the invariants' declared read sets.
func observationsOf(invs []Invariant) []*Observation {
	out := make([]*Observation, len(invs))
	for i := range invs {
		out[i] = invs[i].Observes
	}
	return out
}

// observationsKnown reports whether every predicate declared its read set.
func observationsKnown(obs []*Observation) bool {
	for _, o := range obs {
		if o == nil {
			return false
		}
	}
	return true
}

// crashersOf resolves Options.CrashPids (empty = all processes) when crash
// transitions are on; nil otherwise.
func crashersOf(p *gcl.Prog, opts Options) []int {
	if !opts.Crash {
		return nil
	}
	if len(opts.CrashPids) > 0 {
		return opts.CrashPids
	}
	all := make([]int, p.N)
	for pid := range all {
		all[pid] = pid
	}
	return all
}
