//go:build unix

package mc

// mmap plumbing for the spill arena on unix: chunks are MAP_SHARED file
// mappings, so dirty pages are the kernel's to write back and evict —
// exactly the beyond-RAM behaviour the tier exists for.

import (
	"os"
	"syscall"
)

// mapChunk extends f to cover [off, off+size) and maps that range.
func mapChunk(f *os.File, off int64, size int) ([]byte, error) {
	if err := f.Truncate(off + int64(size)); err != nil {
		return nil, err
	}
	return syscall.Mmap(int(f.Fd()), off, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func unmapChunk(b []byte) {
	_ = syscall.Munmap(b)
}
