package mc

import (
	"strings"
	"testing"

	"bakerypp/internal/gcl"
	"bakerypp/internal/specs"
)

// mustFCFS is CheckFCFS for tests exercising valid store configurations
// (the only error source); the refusal path has its own tests in
// storegate_test.go.
func mustFCFS(p *gcl.Prog, first, second int, opts Options) *FCFSResult {
	res, err := CheckFCFS(p, first, second, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// E6, model half: FCFS holds for the bakery family as a checked property of
// ALL executions, not just sampled ones.
func TestFCFSBakeryFamily(t *testing.T) {
	progs := []struct {
		name string
		n    int
		mk   func() *FCFSResult
	}{
		{"bakerypp-2", 2, func() *FCFSResult {
			return mustFCFS(specs.BakeryPP(specs.Config{N: 2, M: 2}), 0, 1, Options{})
		}},
		{"bakerypp-2-rev", 2, func() *FCFSResult {
			return mustFCFS(specs.BakeryPP(specs.Config{N: 2, M: 2}), 1, 0, Options{})
		}},
		{"bakerypp-3", 3, func() *FCFSResult {
			return mustFCFS(specs.BakeryPP(specs.Config{N: 3, M: 2}), 2, 0, Options{})
		}},
		{"blackwhite-2", 2, func() *FCFSResult {
			return mustFCFS(specs.BlackWhite(2), 0, 1, Options{})
		}},
		{"blackwhite-2-rev", 2, func() *FCFSResult {
			return mustFCFS(specs.BlackWhite(2), 1, 0, Options{})
		}},
	}
	for _, tc := range progs {
		res := tc.mk()
		if !res.Holds {
			t.Fatalf("%s: FCFS violated:\n%s", tc.name, res.Witness.String())
		}
		if !res.Complete {
			t.Errorf("%s: exploration incomplete", tc.name)
		}
		t.Log(res.String())
	}
}

// Classic Bakery's state space is infinite; FCFS is checked up to a state
// bound (bounded evidence, like the mutex check).
func TestFCFSBakeryBounded(t *testing.T) {
	res := mustFCFS(specs.Bakery(specs.Config{N: 2, M: 1 << 14}), 0, 1, Options{MaxStates: 60000})
	if !res.Holds {
		t.Fatalf("bakery FCFS violated:\n%s", res.Witness.String())
	}
	if res.Complete {
		t.Error("bakery product space should not complete within 60k states")
	}
}

// The Peterson filter lock is not FCFS (paper Section 4): a process that
// published its intent can be overtaken by a later arrival. The checker
// finds a shortest witnessing interleaving.
func TestFCFSPetersonViolated(t *testing.T) {
	res := mustFCFS(specs.Peterson(3), 0, 1, Options{})
	if res.Holds {
		t.Fatal("peterson filter reported FCFS; it is not")
	}
	if res.Witness == nil || res.Witness.Len() == 0 {
		t.Fatal("no witness")
	}
	t.Logf("peterson FCFS violation witness: %d steps", res.Witness.Len())
}

// Szymanski serves waiting-room batches in process-id order, so it is FCFS
// only up to intra-batch id reordering: with the lower-id process arriving
// second, the checker finds the reorder; and the favourable direction holds.
func TestFCFSSzymanskiBatchOrder(t *testing.T) {
	rev := mustFCFS(specs.Szymanski(2), 1, 0, Options{})
	if rev.Holds {
		t.Error("szymanski (first=1, second=0): expected id-order overtake")
	} else {
		t.Logf("id-order overtake witness: %d steps", rev.Witness.Len())
	}
	fwd := mustFCFS(specs.Szymanski(2), 0, 1, Options{})
	if !fwd.Holds {
		t.Errorf("szymanski (first=0, second=1): unexpected violation:\n%s", fwd.Witness.String())
	}
}

func TestFCFSValidation(t *testing.T) {
	p := specs.BakeryPP(specs.Config{N: 2, M: 2})
	for _, f := range []func(){
		func() { CheckFCFS(p, 0, 0, Options{}) },
		func() { CheckFCFS(p, 0, 5, Options{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad pair accepted")
				}
			}()
			f()
		}()
	}
}

func TestFCFSResultString(t *testing.T) {
	res := mustFCFS(specs.BakeryPP(specs.Config{N: 2, M: 2}), 0, 1, Options{})
	if !strings.Contains(res.String(), "FCFS holds") {
		t.Errorf("String = %q", res.String())
	}
	bad := mustFCFS(specs.Peterson(3), 0, 1, Options{})
	if !strings.Contains(bad.String(), "VIOLATED") {
		t.Errorf("String = %q", bad.String())
	}
}
