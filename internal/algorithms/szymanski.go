package algorithms

import "sync/atomic"

// Szymanski is Szymanski's mutual-exclusion algorithm: bounded (flags take
// five values) and first-come-first-served, but — as the paper's Section 4
// puts it — "much more complicated than Bakery++". The waiting-room
// metaphor: processes gather in a prologue, the door closes behind the
// last one in, and the room drains in id order before reopening.
type Szymanski struct {
	preemptable
	n    int
	flag []atomic.Int32 // 0..4
}

// NewSzymanski returns a Szymanski lock for n participants.
func NewSzymanski(n int) *Szymanski {
	if n < 1 {
		panic("algorithms: need at least one participant")
	}
	return &Szymanski{preemptable: defaultPreempt(), n: n, flag: make([]atomic.Int32, n)}
}

// Name implements Lock.
func (l *Szymanski) Name() string { return "szymanski" }

// Lock implements Lock.
func (l *Szymanski) Lock(pid int) {
	checkPid(pid, l.n)
	// Announce intention.
	l.flag[pid].Store(1)
	l.point(pid)
	// Wait for the waiting-room door: nobody at 3 or beyond.
	for {
		open := true
		for j := 0; j < l.n; j++ {
			if l.flag[j].Load() >= 3 {
				open = false
				break
			}
		}
		if open {
			break
		}
		l.wait(pid)
	}
	// Enter the waiting room.
	l.flag[pid].Store(3)
	l.point(pid)
	// If someone is still announcing (flag 1), step back to 2 and wait for
	// a committed process (flag 4) to appear before committing.
	intender := false
	for j := 0; j < l.n; j++ {
		if l.flag[j].Load() == 1 {
			intender = true
			break
		}
	}
	if intender {
		l.flag[pid].Store(2)
		for {
			committed := false
			for j := 0; j < l.n; j++ {
				if l.flag[j].Load() == 4 {
					committed = true
					break
				}
			}
			if committed {
				break
			}
			l.wait(pid)
		}
	}
	l.flag[pid].Store(4)
	// Drain: lower-id processes leave the room first.
	for j := 0; j < pid; j++ {
		for l.flag[j].Load() >= 2 {
			l.wait(pid)
		}
	}
}

// Unlock implements Lock. The exit protocol waits until no higher-id
// process is between states 2 and 3 (still crossing the doorway), then
// resets the flag.
func (l *Szymanski) Unlock(pid int) {
	checkPid(pid, l.n)
	for j := pid + 1; j < l.n; j++ {
		for {
			f := l.flag[j].Load()
			if f < 2 || f > 3 {
				break
			}
			l.wait(pid)
		}
	}
	l.flag[pid].Store(0)
}
