package algorithms

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// stress drives every participant slot with its own goroutine; the lock
// must serialise a deliberately non-atomic counter and an occupancy
// detector must never see two holders.
func stress(t *testing.T, l Lock, n, iters int) {
	t.Helper()
	var (
		inCS       atomic.Int32
		violations atomic.Int64
		wg         sync.WaitGroup
	)
	plain := int64(0)
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				l.Lock(pid)
				if inCS.Add(1) != 1 {
					violations.Add(1)
				}
				plain++
				runtime.Gosched()
				inCS.Add(-1)
				l.Unlock(pid)
			}
		}(pid)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%s: %d mutual-exclusion violations", l.Name(), v)
	}
	if want := int64(n) * int64(iters); plain != want {
		t.Fatalf("%s: counter = %d, want %d", l.Name(), plain, want)
	}
}

func TestMutualExclusionAllLocks(t *testing.T) {
	const n, iters = 4, 2000
	locks := []Lock{
		NewBakery(n),
		NewBakeryForBits(n, 40), // wide enough to never wrap in this test
		NewBlackWhite(n),
		NewPeterson(n),
		NewSzymanski(n),
		NewTournament(n),
		NewTicket(n),
		NewTAS(n),
		NewTTAS(n),
	}
	for _, l := range locks {
		l := l
		t.Run(l.Name(), func(t *testing.T) {
			t.Parallel()
			stress(t, l, n, iters)
		})
	}
}

func TestTwoParticipants(t *testing.T) {
	for _, l := range []Lock{NewBakery(2), NewBlackWhite(2), NewPeterson(2), NewSzymanski(2), NewTournament(2)} {
		stress(t, l, 2, 3000)
	}
}

func TestSingleParticipantLocks(t *testing.T) {
	for _, l := range []Lock{NewBakery(1), NewBlackWhite(1), NewPeterson(1), NewSzymanski(1), NewTournament(1), NewTicket(1)} {
		for i := 0; i < 100; i++ {
			l.Lock(0)
			l.Unlock(0)
		}
	}
}

func TestTournamentNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7} {
		stress(t, NewTournament(n), n, 500)
	}
	if lv := NewTournament(5).Levels(); lv != 3 {
		t.Errorf("Levels(5 participants) = %d, want 3", lv)
	}
	if lv := NewTournament(8).Levels(); lv != 3 {
		t.Errorf("Levels(8 participants) = %d, want 3", lv)
	}
}

// E3: narrow registers wrap and classic Bakery malfunctions — real
// goroutines, real atomics, mutual exclusion measurably lost.
func TestBakeryWrapMalfunction(t *testing.T) {
	const n = 4
	l := NewBakeryForBits(n, 3) // M = 7
	var (
		inCS       atomic.Int32
		violations atomic.Int64
		stop       atomic.Bool
		wg         sync.WaitGroup
	)
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < 200000 && !stop.Load(); k++ {
				l.Lock(pid)
				if inCS.Add(1) != 1 {
					violations.Add(1)
					stop.Store(true)
				}
				runtime.Gosched()
				inCS.Add(-1)
				l.Unlock(pid)
			}
		}(pid)
	}
	wg.Wait()
	if l.Overflows() == 0 {
		t.Fatal("3-bit tickets never wrapped under contention")
	}
	if violations.Load() == 0 {
		t.Error("tickets wrapped but mutual exclusion held for 800k sections; expected a violation")
	}
	t.Logf("overflows=%d violations=%d maxTicket=%d", l.Overflows(), violations.Load(), l.MaxTicket())
}

func TestBakeryIdealNoOverflow(t *testing.T) {
	l := NewBakery(4)
	stress(t, l, 4, 2000)
	if l.Overflows() != 0 {
		t.Error("ideal bakery recorded overflows")
	}
	if l.MaxTicket() < 2 {
		t.Errorf("max ticket %d; expected some overlap under 4-way contention", l.MaxTicket())
	}
}

// Taubenfeld's bound: Black-White tickets never exceed N (crash-free).
func TestBlackWhiteTicketBound(t *testing.T) {
	const n = 4
	l := NewBlackWhite(n)
	stress(t, l, n, 5000)
	if got := l.MaxTicket(); got > int64(n) {
		t.Errorf("black-white ticket reached %d, bound is %d", got, n)
	}
}

func TestNames(t *testing.T) {
	cases := map[string]Lock{
		"bakery":          NewBakery(2),
		"bakery-8bit":     NewBakeryForBits(2, 8),
		"black-white":     NewBlackWhite(2),
		"peterson-filter": NewPeterson(2),
		"szymanski":       NewSzymanski(2),
		"tournament":      NewTournament(2),
		"ticket-faa":      NewTicket(2),
		"tas":             NewTAS(2),
		"ttas":            NewTTAS(2),
	}
	for want, l := range cases {
		if got := l.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestPidValidation(t *testing.T) {
	locks := []Lock{NewBakery(2), NewBlackWhite(2), NewPeterson(2), NewSzymanski(2), NewTournament(2), NewTicket(2), NewTAS(2), NewTTAS(2)}
	for _, l := range locks {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: out-of-range pid did not panic", l.Name())
				}
			}()
			l.Lock(7)
		}()
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewBakery(0) },
		func() { NewBakeryForBits(2, 0) },
		func() { NewBakeryForBits(2, 63) },
		func() { NewBlackWhite(0) },
		func() { NewPeterson(0) },
		func() { NewSzymanski(0) },
		func() { NewTournament(0) },
		func() { NewTicket(0) },
		func() { NewTAS(0) },
		func() { NewTTAS(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid constructor did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestPairLess(t *testing.T) {
	if !pairLess(1, 1, 2, 0) || pairLess(2, 0, 1, 1) {
		t.Error("value order wrong")
	}
	if !pairLess(2, 0, 2, 1) || pairLess(2, 1, 2, 0) {
		t.Error("tie-break order wrong")
	}
}
