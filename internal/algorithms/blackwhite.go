package algorithms

import "sync/atomic"

// BlackWhite is Taubenfeld's Black-White Bakery algorithm (DISC 2004): the
// paper's Section 4 representative of bounding Bakery by "introducing new
// shared variables". A single shared colour bit splits tickets into
// epochs; the maximum is taken only over same-coloured tickets, which keeps
// every ticket at most N. The cost, relative to Bakery++: an extra register
// per process (mycolor) plus a colour bit written by every process —
// abandoning Bakery's no-writes-to-others'-memory property.
type BlackWhite struct {
	preemptable
	n        int
	color    atomic.Int32
	choosing []atomic.Int32
	mycolor  []atomic.Int32
	number   []atomic.Int64

	maxTicket atomic.Int64
}

// NewBlackWhite returns a Black-White Bakery lock for n participants.
func NewBlackWhite(n int) *BlackWhite {
	if n < 1 {
		panic("algorithms: need at least one participant")
	}
	return &BlackWhite{
		preemptable: defaultPreempt(),
		n:           n,
		choosing:    make([]atomic.Int32, n),
		mycolor:     make([]atomic.Int32, n),
		number:      make([]atomic.Int64, n),
	}
}

// Name implements Lock.
func (l *BlackWhite) Name() string { return "black-white" }

// MaxTicket reports the largest ticket chosen; Taubenfeld's bound is N.
func (l *BlackWhite) MaxTicket() int64 { return l.maxTicket.Load() }

// Lock implements Lock.
func (l *BlackWhite) Lock(pid int) {
	checkPid(pid, l.n)
	l.choosing[pid].Store(1)
	l.point(pid)
	myc := l.color.Load()
	l.mycolor[pid].Store(myc)
	var max int64
	for j := range l.number {
		if l.mycolor[j].Load() == myc {
			if v := l.number[j].Load(); v > max {
				max = v
			}
		}
	}
	ticket := max + 1
	for cur := l.maxTicket.Load(); ticket > cur; cur = l.maxTicket.Load() {
		if l.maxTicket.CompareAndSwap(cur, ticket) {
			break
		}
	}
	l.number[pid].Store(ticket)
	l.choosing[pid].Store(0)

	for j := 0; j < l.n; j++ {
		if j == pid {
			continue
		}
		for l.choosing[j].Load() != 0 {
			l.wait(pid)
		}
		for {
			nj := l.number[j].Load()
			if nj == 0 {
				break
			}
			if l.mycolor[j].Load() == myc {
				// Same epoch: bakery order.
				if !pairLess(nj, j, ticket, pid) {
					break
				}
			} else {
				// Different epochs: the colour that differs from the
				// shared colour is the older epoch and goes first.
				if l.color.Load() != myc {
					break
				}
			}
			l.wait(pid)
		}
	}
}

// Unlock implements Lock: leaving the critical section flips the shared
// colour away from the leaver's, handing priority to the other epoch once
// the leaver's epoch drains.
func (l *BlackWhite) Unlock(pid int) {
	checkPid(pid, l.n)
	l.color.Store(1 - l.mycolor[pid].Load())
	l.number[pid].Store(0)
}
