package algorithms

import "sync/atomic"

// The locks in this file are built on atomic read-modify-write operations
// (fetch-and-add, test-and-set). The paper's Section 3 is explicit that
// "algorithms that assume atomic read/write operations are not true mutual
// exclusion algorithms, because they assume lower-level mutual exclusion" —
// and RMW primitives assume even more. They are included as the hardware
// baseline the benchmark tables compare the register-only algorithms
// against.

// Ticket is the classic fetch-and-add ticket lock: FIFO, two words total,
// but built entirely on a read-modify-write primitive.
type Ticket struct {
	preemptable
	n     int
	next  atomic.Int64
	owner atomic.Int64
}

// NewTicket returns a ticket lock for n participants.
func NewTicket(n int) *Ticket {
	if n < 1 {
		panic("algorithms: need at least one participant")
	}
	return &Ticket{preemptable: defaultPreempt(), n: n}
}

// Name implements Lock.
func (l *Ticket) Name() string { return "ticket-faa" }

// Lock implements Lock.
func (l *Ticket) Lock(pid int) {
	checkPid(pid, l.n)
	t := l.next.Add(1) - 1
	l.point(pid)
	for l.owner.Load() != t {
		l.wait(pid)
	}
}

// Unlock implements Lock.
func (l *Ticket) Unlock(pid int) {
	checkPid(pid, l.n)
	l.owner.Add(1)
}

// TAS is a test-and-set spinlock.
type TAS struct {
	preemptable
	n     int
	state atomic.Int32
}

// NewTAS returns a test-and-set lock for n participants.
func NewTAS(n int) *TAS {
	if n < 1 {
		panic("algorithms: need at least one participant")
	}
	return &TAS{preemptable: defaultPreempt(), n: n}
}

// Name implements Lock.
func (l *TAS) Name() string { return "tas" }

// Lock implements Lock.
func (l *TAS) Lock(pid int) {
	checkPid(pid, l.n)
	for !l.state.CompareAndSwap(0, 1) {
		l.wait(pid)
	}
}

// Unlock implements Lock.
func (l *TAS) Unlock(pid int) {
	checkPid(pid, l.n)
	l.state.Store(0)
}

// TTAS is the test-and-test-and-set spinlock: spin reading until the lock
// looks free, then attempt the RMW, reducing coherence traffic.
type TTAS struct {
	preemptable
	n     int
	state atomic.Int32
}

// NewTTAS returns a test-and-test-and-set lock for n participants.
func NewTTAS(n int) *TTAS {
	if n < 1 {
		panic("algorithms: need at least one participant")
	}
	return &TTAS{preemptable: defaultPreempt(), n: n}
}

// Name implements Lock.
func (l *TTAS) Name() string { return "ttas" }

// Lock implements Lock.
func (l *TTAS) Lock(pid int) {
	checkPid(pid, l.n)
	for {
		for l.state.Load() != 0 {
			l.wait(pid)
		}
		if l.state.CompareAndSwap(0, 1) {
			return
		}
	}
}

// Unlock implements Lock.
func (l *TTAS) Unlock(pid int) {
	checkPid(pid, l.n)
	l.state.Store(0)
}
