package algorithms

import "testing"

// The colour bit must flip away from the leaver's colour on every exit —
// the epoch hand-off that bounds Black-White tickets.
func TestBlackWhiteColorFlips(t *testing.T) {
	l := NewBlackWhite(2)
	if got := l.color.Load(); got != 0 {
		t.Fatalf("initial color = %d", got)
	}
	l.Lock(0) // takes colour 0
	l.Unlock(0)
	if got := l.color.Load(); got != 1 {
		t.Errorf("color after white exit = %d, want 1", got)
	}
	l.Lock(1) // takes colour 1
	l.Unlock(1)
	if got := l.color.Load(); got != 0 {
		t.Errorf("color after black exit = %d, want 0", got)
	}
}

// A ticket lock grants strictly in FIFO ticket order; with a single
// participant the counters advance in lockstep.
func TestTicketCountersAdvance(t *testing.T) {
	l := NewTicket(1)
	for i := int64(0); i < 5; i++ {
		l.Lock(0)
		if l.next.Load() != i+1 || l.owner.Load() != i {
			t.Fatalf("iteration %d: next=%d owner=%d", i, l.next.Load(), l.owner.Load())
		}
		l.Unlock(0)
	}
}

// Szymanski flags return to 0 after a full cycle.
func TestSzymanskiFlagsQuiesce(t *testing.T) {
	l := NewSzymanski(3)
	l.Lock(1)
	l.Unlock(1)
	for i := 0; i < 3; i++ {
		if got := l.flag[i].Load(); got != 0 {
			t.Errorf("flag[%d] = %d after quiescence", i, got)
		}
	}
}
