// Package algorithms provides runtime (goroutine-driven) implementations of
// the mutual-exclusion algorithms the paper compares Bakery++ against in
// Section 4, plus hardware read-modify-write locks as contrast:
//
//   - Bakery: Lamport's original algorithm on ideal or b-bit (wrapping)
//     registers — the overflow victim of Section 3.
//   - BlackWhite: Taubenfeld's Black-White Bakery (bounded via an extra
//     shared colour bit; approach 2).
//   - Peterson: the N-process filter lock (bounded, multi-writer victim
//     registers, not FCFS).
//   - Szymanski: Szymanski's flag-based FCFS algorithm (bounded, 5-valued
//     flags, intricate).
//   - Tournament: a tree of 2-process Peterson locks (bounded, O(log N)
//     entry, not FCFS).
//   - Ticket, TAS, TTAS: locks built on atomic read-modify-write
//     operations. The paper's Section 3 notes such algorithms "assume
//     lower-level mutual exclusion" and are therefore not "true" solutions;
//     they appear here as the hardware baseline the benches compare against.
//
// All locks implement the Lock interface with explicit participant ids;
// the Bakery++ implementation itself lives in internal/core.
package algorithms

import (
	"fmt"

	"bakerypp/internal/preempt"
)

// Lock is a mutual-exclusion lock for a fixed set of participants addressed
// by id. Each participant must be driven by at most one goroutine at a time.
type Lock interface {
	// Lock blocks until participant pid holds the critical section.
	Lock(pid int)
	// Unlock releases the critical section held by participant pid.
	Unlock(pid int)
	// Name identifies the lock in experiment tables.
	Name() string
}

// pairLess is the bakery family's ordered-pair comparison:
// (a, i) < (b, j) iff a < b, or a = b and i < j.
func pairLess(a int64, i int, b int64, j int) bool {
	return a < b || (a == b && i < j)
}

// preemptable is embedded by every lock in this package: the pluggable
// sink its spin-wait iterations and fast-path preemption points report to.
// The default, preempt.Gosched, reproduces the seed behaviour (spin waits
// yield to the Go scheduler, fast paths are untouched); the harness's
// deterministic sweep engine substitutes a preempt.Sequencer so whole
// contention scenarios replay identically on any machine.
type preemptable struct {
	pre preempt.Preemptor
}

// SetPreemptor replaces the lock's preemption sink. It must be called
// before the lock is shared between goroutines.
func (p *preemptable) SetPreemptor(pp preempt.Preemptor) { p.pre = pp }

// wait reports one spin-wait iteration by participant pid.
func (p *preemptable) wait(pid int) { p.pre.Wait(pid) }

// point reports an optional fast-path preemption point by participant pid.
func (p *preemptable) point(pid int) { p.pre.Preempt(pid) }

// defaultPreempt is the initial sink for every constructor.
func defaultPreempt() preemptable { return preemptable{pre: preempt.Gosched{}} }

func checkPid(pid, n int) {
	if pid < 0 || pid >= n {
		panic(fmt.Sprintf("algorithms: participant %d out of range [0,%d)", pid, n))
	}
}
