package algorithms

import (
	"fmt"
	"sync/atomic"
)

// Bakery is Lamport's original bakery algorithm (the paper's Algorithm 1)
// as a runtime lock. With Bits == 0 it assumes the paper's idealised
// unbounded registers (64-bit integers stand in; overflowing them takes
// centuries). With Bits > 0 every ticket register behaves like a real
// b-bit register: stores wrap modulo 2^Bits, silently — exactly the
// malfunction mode of Section 3, observable as mutual-exclusion violations
// once tickets wrap (experiment E3).
type Bakery struct {
	preemptable
	n        int
	m        int64 // capacity; 0 = unbounded
	choosing []atomic.Int32
	number   []atomic.Int64

	overflows atomic.Uint64
	maxTicket atomic.Int64
}

// NewBakery returns a bakery lock on idealised unbounded registers.
func NewBakery(n int) *Bakery {
	if n < 1 {
		panic("algorithms: need at least one participant")
	}
	return &Bakery{
		preemptable: defaultPreempt(),
		n:           n,
		choosing:    make([]atomic.Int32, n),
		number:      make([]atomic.Int64, n),
	}
}

// NewBakeryForBits returns a bakery lock whose ticket registers are bits
// wide (1 <= bits <= 62) and wrap on overflow like real hardware.
func NewBakeryForBits(n, bits int) *Bakery {
	if bits < 1 || bits > 62 {
		panic("algorithms: register width out of range")
	}
	l := NewBakery(n)
	l.m = (int64(1) << uint(bits)) - 1
	return l
}

// Name implements Lock.
func (l *Bakery) Name() string {
	if l.m == 0 {
		return "bakery"
	}
	bits := 0
	for v := l.m; v > 0; v >>= 1 {
		bits++
	}
	return fmt.Sprintf("bakery-%dbit", bits)
}

// Overflows reports how many ticket stores wrapped (0 on ideal registers).
func (l *Bakery) Overflows() uint64 { return l.overflows.Load() }

// MaxTicket reports the largest ticket ever chosen (pre-wrap), showing the
// unbounded growth of Section 3's scenario.
func (l *Bakery) MaxTicket() int64 { return l.maxTicket.Load() }

// Lock implements Lock; it is Algorithm 1 verbatim, with the ticket
// register emulating finite width when configured.
func (l *Bakery) Lock(pid int) {
	checkPid(pid, l.n)
	l.choosing[pid].Store(1)
	l.point(pid)
	var max int64
	for j := range l.number {
		if v := l.number[j].Load(); v > max {
			max = v
		}
	}
	ticket := max + 1
	for cur := l.maxTicket.Load(); ticket > cur; cur = l.maxTicket.Load() {
		if l.maxTicket.CompareAndSwap(cur, ticket) {
			break
		}
	}
	if l.m > 0 && ticket > l.m {
		// The register physically cannot hold the value: it wraps, and
		// the algorithm does not notice. A real CPU register would also
		// wrap the local copy, so the wrapped value is used throughout.
		l.overflows.Add(1)
		ticket %= l.m + 1
	}
	l.number[pid].Store(ticket)
	l.choosing[pid].Store(0)

	for j := 0; j < l.n; j++ {
		for l.choosing[j].Load() != 0 {
			l.wait(pid)
		}
		for {
			nj := l.number[j].Load()
			if nj == 0 || !pairLess(nj, j, ticket, pid) {
				break
			}
			l.wait(pid)
		}
	}
}

// Unlock implements Lock.
func (l *Bakery) Unlock(pid int) {
	checkPid(pid, l.n)
	l.number[pid].Store(0)
}
