package algorithms

import "sync/atomic"

// Peterson is the N-process filter generalisation of Peterson's algorithm.
// The paper's Section 4 contrasts it with Bakery++: it is bounded (levels
// and victims never exceed N) but its victim registers are written by every
// competing process, and it is not first-come-first-served.
type Peterson struct {
	preemptable
	n      int
	level  []atomic.Int32 // 0 = idle; competing processes hold 1..n-1
	victim []atomic.Int32 // victim[l] = pid+1, 0 = none; cell 0 unused
}

// NewPeterson returns a filter lock for n participants.
func NewPeterson(n int) *Peterson {
	if n < 1 {
		panic("algorithms: need at least one participant")
	}
	return &Peterson{
		preemptable: defaultPreempt(),
		n:           n,
		level:       make([]atomic.Int32, n),
		victim:      make([]atomic.Int32, n),
	}
}

// Name implements Lock.
func (l *Peterson) Name() string { return "peterson-filter" }

// Lock implements Lock.
func (l *Peterson) Lock(pid int) {
	checkPid(pid, l.n)
	me := int32(pid + 1)
	for lv := 1; lv < l.n; lv++ {
		l.level[pid].Store(int32(lv))
		l.victim[lv].Store(me)
		l.point(pid)
		for {
			if l.victim[lv].Load() != me {
				break
			}
			behind := true
			for k := 0; k < l.n; k++ {
				if k != pid && l.level[k].Load() >= int32(lv) {
					behind = false
					break
				}
			}
			if behind {
				break
			}
			l.wait(pid)
		}
	}
}

// Unlock implements Lock.
func (l *Peterson) Unlock(pid int) {
	checkPid(pid, l.n)
	l.level[pid].Store(0)
}
