package algorithms

import (
	"math/bits"
	"sync/atomic"
)

// Tournament is a tree of two-process Peterson locks: each participant owns
// a leaf and climbs to the root, winning one two-way duel per level. Entry
// and exit touch O(log N) registers — the classic space/time trade against
// the bakery family's O(N) scan — at the cost of FCFS order.
type Tournament struct {
	preemptable
	n      int
	leaves int
	nodes  []tnode // heap layout, root at index 1
}

type tnode struct {
	flag [2]atomic.Int32
	turn atomic.Int32
}

// NewTournament returns a tournament lock for n participants.
func NewTournament(n int) *Tournament {
	if n < 1 {
		panic("algorithms: need at least one participant")
	}
	leaves := 1
	for leaves < n {
		leaves *= 2
	}
	return &Tournament{preemptable: defaultPreempt(), n: n, leaves: leaves, nodes: make([]tnode, leaves)}
}

// Name implements Lock.
func (l *Tournament) Name() string { return "tournament" }

// Levels returns the number of duels a participant fights per acquisition.
func (l *Tournament) Levels() int { return bits.Len(uint(l.leaves)) - 1 }

// Lock implements Lock: acquire every Peterson node from leaf to root.
func (l *Tournament) Lock(pid int) {
	checkPid(pid, l.n)
	for v := l.leaves + pid; v > 1; v >>= 1 {
		node := &l.nodes[v>>1]
		side := int32(v & 1)
		node.flag[side].Store(1)
		node.turn.Store(side)
		l.point(pid)
		for node.flag[1-side].Load() == 1 && node.turn.Load() == side {
			l.wait(pid)
		}
	}
}

// Unlock implements Lock: release root to leaf (reverse acquisition order).
func (l *Tournament) Unlock(pid int) {
	checkPid(pid, l.n)
	// Recompute the path, then walk it top-down.
	var path [64]int
	depth := 0
	for v := l.leaves + pid; v > 1; v >>= 1 {
		path[depth] = v
		depth++
	}
	for i := depth - 1; i >= 0; i-- {
		v := path[i]
		l.nodes[v>>1].flag[v&1].Store(0)
	}
}
