package core

import (
	"fmt"
	"sync/atomic"

	"bakerypp/internal/preempt"
	"bakerypp/internal/registers"
)

// SafeBakeryPP is Bakery++ running over Lamport-"safe" registers — the
// weakest register model, in which a read that overlaps a write may return
// ANY value in the register's domain. The paper's Section 1.2 lists
// tolerance of exactly this behaviour among the bakery algorithm's
// remarkable properties ("the value obtained by the read operation may have
// any arbitrary value"), and its Section 5 remark about using >= rather
// than = in the overflow checks exists precisely because flickery reads are
// allowed.
//
// Every register here is single-writer (each participant writes only its
// own number and choosing cells, as the algorithm requires), and readers
// that overlap a write observe adversarial in-domain values. Overflow
// safety is unaffected: flicker values never exceed M, so the chosen
// maximum never exceeds M, and the pre-increment check still bounds every
// store — Theorem 6.1 goes through register model and all.
type SafeBakeryPP struct {
	n        int
	m        int64
	choosing []*registers.Safe
	number   []*registers.Safe
	pre      preempt.Preemptor
	resets   atomic.Uint64
}

// NewSafe returns a Bakery++ lock over safe registers for n participants
// with ticket capacity m.
func NewSafe(n int, m int64) *SafeBakeryPP {
	if n < 1 {
		panic("core: need at least one participant")
	}
	if m < 1 {
		panic("core: register capacity must be >= 1")
	}
	l := &SafeBakeryPP{n: n, m: m,
		choosing: make([]*registers.Safe, n),
		number:   make([]*registers.Safe, n),
		pre:      preempt.NewRandomYield(n, defaultPreemptSeed, DefaultDoorwayPreemptRate),
	}
	for i := 0; i < n; i++ {
		l.choosing[i] = registers.NewSafe(1)
		l.number[i] = registers.NewSafe(m)
	}
	return l
}

// Name identifies the lock in experiment tables.
func (l *SafeBakeryPP) Name() string { return "bakery++(safe-regs)" }

// SetPreemptor replaces the lock's preemption sink; see BakeryPP.SetPreemptor.
func (l *SafeBakeryPP) SetPreemptor(p preempt.Preemptor) { l.pre = p }

// N returns the number of participants.
func (l *SafeBakeryPP) N() int { return l.n }

// M returns the ticket capacity.
func (l *SafeBakeryPP) M() int64 { return l.m }

// Resets reports overflow-avoidance resets.
func (l *SafeBakeryPP) Resets() uint64 { return l.resets.Load() }

// Flickers reports how many reads across all registers overlapped a write
// and returned an arbitrary value — evidence the adversarial register model
// was actually exercised.
func (l *SafeBakeryPP) Flickers() uint64 {
	var total uint64
	for i := 0; i < l.n; i++ {
		total += l.choosing[i].Flickers() + l.number[i].Flickers()
	}
	return total
}

func (l *SafeBakeryPP) checkPid(pid int) {
	if pid < 0 || pid >= l.n {
		panic(fmt.Sprintf("core: participant %d out of range [0,%d)", pid, l.n))
	}
}

// Lock acquires the critical section for pid over safe registers.
func (l *SafeBakeryPP) Lock(pid int) {
	l.checkPid(pid)
	for {
		// L1 gate. A flickered read here can only delay or admit early;
		// safety never depends on it.
		for {
			high := false
			for j := 0; j < l.n; j++ {
				if l.number[j].Read() >= l.m {
					high = true
					break
				}
			}
			if !high {
				break
			}
			l.pre.Wait(pid)
		}
		l.choosing[pid].Write(1)
		var max int64
		for k := 0; k < l.n; k++ {
			l.pre.Preempt(pid)
			j := (pid + k) % l.n
			if v := l.number[j].Read(); v > max {
				max = v // flicker values are in [0, M], so max <= M always
			}
		}
		if max >= l.m {
			l.number[pid].Write(0)
			l.choosing[pid].Write(0)
			l.resets.Add(1)
			continue
		}
		ticket := max + 1
		l.number[pid].Write(ticket)
		l.choosing[pid].Write(0)

		for j := 0; j < l.n; j++ {
			for l.choosing[j].Read() != 0 {
				l.pre.Wait(pid)
			}
			for {
				nj := l.number[j].Read()
				if nj == 0 || !pairLess(nj, j, ticket, pid) {
					break
				}
				l.pre.Wait(pid)
			}
		}
		return
	}
}

// Unlock releases the critical section.
func (l *SafeBakeryPP) Unlock(pid int) {
	l.checkPid(pid)
	l.number[pid].Write(0)
}
