package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewSafeValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewSafe(0, 5) },
		func() { NewSafe(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid constructor did not panic")
				}
			}()
			bad()
		}()
	}
	l := NewSafe(3, 7)
	if l.N() != 3 || l.M() != 7 {
		t.Error("accessors wrong")
	}
	if l.Name() != "bakery++(safe-regs)" {
		t.Errorf("Name = %q", l.Name())
	}
}

func TestSafePidRange(t *testing.T) {
	l := NewSafe(2, 7)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range pid did not panic")
		}
	}()
	l.Lock(3)
}

// E12: mutual exclusion over adversarial safe registers — the paper's
// fourth remarkable property, exercised with real goroutines. The flicker
// counter proves the adversarial reads actually happened.
func TestSafeBakeryPPStress(t *testing.T) {
	const (
		n     = 4
		iters = 4000
	)
	l := NewSafe(n, 1<<16)
	var (
		inCS       atomic.Int32
		violations atomic.Int64
		wg         sync.WaitGroup
	)
	plain := int64(0)
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				l.Lock(pid)
				if inCS.Add(1) != 1 {
					violations.Add(1)
				}
				plain++
				runtime.Gosched()
				inCS.Add(-1)
				l.Unlock(pid)
			}
		}(pid)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d mutual-exclusion violations over safe registers", v)
	}
	if plain != n*iters {
		t.Fatalf("counter = %d, want %d", plain, n*iters)
	}
	t.Logf("flickered reads observed: %d", l.Flickers())
}

// Near the capacity bound, safe-register Bakery++ still resets instead of
// overflowing; flicker can trigger spurious resets (a read that flickers to
// M) but never an over-store.
func TestSafeBakeryPPTinyCapacity(t *testing.T) {
	const n = 3
	l := NewSafe(n, 4)
	var wg sync.WaitGroup
	shared := 0
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < 3000; k++ {
				l.Lock(pid)
				shared++
				l.Unlock(pid)
			}
		}(pid)
	}
	wg.Wait()
	if shared != 3*3000 {
		t.Fatalf("shared = %d", shared)
	}
	t.Logf("resets=%d flickers=%d", l.Resets(), l.Flickers())
}

func TestSafeBakeryPPSingle(t *testing.T) {
	l := NewSafe(1, 2)
	for i := 0; i < 100; i++ {
		l.Lock(0)
		l.Unlock(0)
	}
	if l.Resets() != 0 {
		t.Error("single quiet participant should never reset")
	}
}
