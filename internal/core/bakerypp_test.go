package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestConstructorValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { New(0, 10) },
		func() { New(2, 0) },
		func() { NewForBits(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid constructor did not panic")
				}
			}()
			bad()
		}()
	}
	l := NewForBits(3, 8)
	if l.M() != 255 || l.N() != 3 {
		t.Errorf("NewForBits: N=%d M=%d", l.N(), l.M())
	}
	if l.Name() != "bakery++" {
		t.Errorf("Name = %q", l.Name())
	}
}

func TestPidRangeChecked(t *testing.T) {
	l := New(2, 7)
	for _, f := range []func(){
		func() { l.Lock(2) },
		func() { l.Lock(-1) },
		func() { l.Unlock(5) },
		func() { l.Locker(9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range pid did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSingleParticipant(t *testing.T) {
	l := New(1, 3)
	for i := 0; i < 100; i++ {
		l.Lock(0)
		l.Unlock(0)
	}
	if l.Overflows() != 0 {
		t.Error("overflow attempts recorded")
	}
}

// Mutual exclusion under real goroutine contention: a non-atomic counter
// incremented inside the critical section must end exactly at total, and an
// in-CS occupancy detector must never see two participants at once.
func stressLock(t *testing.T, l *BakeryPP, iters int) (counter int64) {
	t.Helper()
	var (
		inCS       atomic.Int32
		violations atomic.Int64
		wg         sync.WaitGroup
	)
	plain := int64(0) // deliberately not atomic; the lock must protect it
	for pid := 0; pid < l.N(); pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				l.Lock(pid)
				if inCS.Add(1) != 1 {
					violations.Add(1)
				}
				plain++
				runtime.Gosched() // widen the window for any race
				inCS.Add(-1)
				l.Unlock(pid)
			}
		}(pid)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d mutual-exclusion violations", v)
	}
	want := int64(l.N()) * int64(iters)
	if plain != want {
		t.Fatalf("protected counter = %d, want %d", plain, want)
	}
	return plain
}

func TestMutualExclusionStress(t *testing.T) {
	stressLock(t, New(4, 1<<20), 3000)
}

func TestMutualExclusionStressManyParticipants(t *testing.T) {
	stressLock(t, New(8, 1<<20), 800)
}

// With capacity barely above the participant count, the overflow reset must
// fire — and the lock must remain correct throughout (E5's regime).
func TestTinyCapacityForcesResets(t *testing.T) {
	l := New(4, 5)
	stressLock(t, l, 2000)
	if l.Resets() == 0 {
		t.Error("no overflow resets with M=5 and 4 hot participants")
	}
	if l.Overflows() != 0 {
		t.Errorf("%d overflow attempts; Theorem 6.1 violated", l.Overflows())
	}
}

// Section 8 Question One: more participants than the capacity M. Safety (and
// in practice progress) must hold even at M < N.
func TestMoreCustomersThanTickets(t *testing.T) {
	l := New(6, 3)
	stressLock(t, l, 500)
	if l.Overflows() != 0 {
		t.Error("overflow attempted")
	}
	if l.Resets() == 0 {
		t.Error("expected resets with M < N under contention")
	}
}

// 1-bit tickets: the most extreme register bound (M = 1). Every doorway that
// sees a live ticket resets; the lock degrades to near-serial but must stay
// safe.
func TestOneBitTickets(t *testing.T) {
	l := NewForBits(3, 1)
	stressLock(t, l, 300)
	if l.Overflows() != 0 {
		t.Error("overflow attempted with 1-bit tickets")
	}
}

func TestGateWaitsObservable(t *testing.T) {
	l := New(4, 4)
	stressLock(t, l, 2000)
	// The gate only trips when a register sits at M; with M=4 and four
	// participants that happens regularly but is scheduling-dependent, so
	// only log.
	t.Logf("gate waits: %d, resets: %d", l.GateWaits(), l.Resets())
}

func TestLockerAdapter(t *testing.T) {
	l := New(2, 100)
	var wg sync.WaitGroup
	shared := 0
	for pid := 0; pid < 2; pid++ {
		locker := l.Locker(pid)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				locker.Lock()
				shared++
				locker.Unlock()
			}
		}()
	}
	wg.Wait()
	if shared != 2000 {
		t.Errorf("shared = %d, want 2000", shared)
	}
}

func TestLockerWithCond(t *testing.T) {
	l := New(2, 100)
	cond := sync.NewCond(l.Locker(0))
	done := make(chan struct{})
	ready := false
	go func() {
		cond.L.Lock()
		for !ready {
			cond.Wait()
		}
		cond.L.Unlock()
		close(done)
	}()
	// The signaller uses participant 1's slot.
	sig := l.Locker(1)
	sig.Lock()
	ready = true
	sig.Unlock()
	for {
		cond.Broadcast()
		select {
		case <-done:
			return
		default:
			runtime.Gosched()
		}
	}
}

// Crash/restart fault injection at runtime (paper conditions 3-4 and
// assumption 1.5): workers occasionally "crash" — inside or outside the
// critical section — and restart; mutual exclusion must hold for the
// sections that complete, and the lock must keep serving.
func TestCrashRestartRuntime(t *testing.T) {
	const n = 4
	l := New(n, 1<<16)
	var (
		inCS       atomic.Int32
		violations atomic.Int64
		wg         sync.WaitGroup
	)
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < 3000; k++ {
				l.Lock(pid)
				if inCS.Add(1) != 1 {
					violations.Add(1)
				}
				runtime.Gosched()
				inCS.Add(-1)
				if k%97 == pid {
					// Crash inside the critical section: the process
					// "goes to its noncritical section and sets its
					// shared variables equal to 0" (assumption 1.5).
					l.Crash(pid)
				} else {
					l.Unlock(pid)
				}
			}
		}(pid)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d violations under crash-restart", v)
	}
	if l.Crashes() == 0 {
		t.Fatal("no crashes injected")
	}
	if l.Overflows() != 0 {
		t.Error("overflow attempted")
	}
	t.Logf("crashes: %d", l.Crashes())
}

func TestTryLockUncontended(t *testing.T) {
	l := New(2, 10)
	if !l.TryLock(0) {
		t.Fatal("uncontended TryLock failed")
	}
	l.Unlock(0)
	if !l.TryLock(1) {
		t.Fatal("TryLock after release failed")
	}
	l.Unlock(1)
}

func TestTryLockRespectsHolder(t *testing.T) {
	l := New(2, 10)
	l.Lock(0)
	if l.TryLock(1) {
		t.Fatal("TryLock succeeded while participant 0 holds the lock")
	}
	l.Unlock(0)
	if !l.TryLock(1) {
		t.Fatal("TryLock failed on a free lock")
	}
	l.Unlock(1)
}

func TestTryLockNeverOverlapsLock(t *testing.T) {
	const n = 4
	l := New(n, 1<<16)
	var (
		inCS       atomic.Int32
		violations atomic.Int64
		acquired   atomic.Int64
		wg         sync.WaitGroup
	)
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < 4000; k++ {
				got := false
				if pid%2 == 0 {
					l.Lock(pid)
					got = true
				} else if l.TryLock(pid) {
					got = true
				}
				if got {
					acquired.Add(1)
					if inCS.Add(1) != 1 {
						violations.Add(1)
					}
					runtime.Gosched()
					inCS.Add(-1)
					l.Unlock(pid)
				}
			}
		}(pid)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d violations mixing Lock and TryLock", v)
	}
	if acquired.Load() < 8000 {
		t.Errorf("suspiciously few acquisitions: %d", acquired.Load())
	}
	if l.Overflows() != 0 {
		t.Error("overflow attempted")
	}
}

func TestTryLockAtCapacityBound(t *testing.T) {
	l := New(2, 1)
	// Participant 0 holds ticket 1 = M; participant 1's TryLock must see
	// the saturated register at the gate and bail without a reset.
	l.Lock(0)
	if l.TryLock(1) {
		t.Fatal("TryLock succeeded against a saturated register file")
	}
	l.Unlock(0)
}

func TestPairLess(t *testing.T) {
	cases := []struct {
		a    int64
		i    int
		b    int64
		j    int
		want bool
	}{
		{1, 0, 2, 1, true},
		{2, 1, 1, 0, false},
		{3, 0, 3, 1, true},
		{3, 1, 3, 0, false},
		{3, 1, 3, 1, false},
	}
	for _, c := range cases {
		if got := pairLess(c.a, c.i, c.b, c.j); got != c.want {
			t.Errorf("pairLess(%d,%d,%d,%d) = %v, want %v", c.a, c.i, c.b, c.j, got, c.want)
		}
	}
}

func TestCapacityForBitsReexport(t *testing.T) {
	if CapacityForBits(8) != 255 {
		t.Error("CapacityForBits(8) != 255")
	}
}

func TestSequentialFIFOHandoff(t *testing.T) {
	// Two participants alternating strictly must each get the lock; a
	// simple liveness smoke test without goroutines.
	l := New(2, 3)
	for i := 0; i < 50; i++ {
		l.Lock(0)
		l.Unlock(0)
		l.Lock(1)
		l.Unlock(1)
	}
	if l.Overflows() != 0 {
		t.Error("overflow in alternating handoff")
	}
}
