package core

import (
	"runtime"
	"testing"

	"bakerypp/internal/preempt"
	"bakerypp/internal/workload"
)

// The overflow-reset branch must be live on a single-core machine: without
// doorway preemption injection, a goroutine's whole doorway runs as one
// unpreempted burst at GOMAXPROCS=1, the gate-to-scan race window never
// opens, and Resets() stays 0 — the seed bug. These tests pin the fix by
// forcing GOMAXPROCS(1) explicitly, so they fail the same way on any CI
// machine regardless of its core count.

func TestResetsFireAtGOMAXPROCS1(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	l := New(4, 5)
	stressLock(t, l, 2000)
	if l.Resets() == 0 {
		t.Error("no overflow resets at GOMAXPROCS=1 with M=5 and 4 hot participants")
	}
	if l.Overflows() != 0 {
		t.Errorf("%d overflow attempts; Theorem 6.1 violated", l.Overflows())
	}
}

func TestMoreCustomersThanTicketsAtGOMAXPROCS1(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	l := New(6, 3)
	stressLock(t, l, 500)
	if l.Resets() == 0 {
		t.Error("expected resets with M < N at GOMAXPROCS=1")
	}
	if l.Overflows() != 0 {
		t.Error("overflow attempted")
	}
}

// The yield-injecting spinner in the critical section (the harness's
// workload model) must not break mutual exclusion, at one core or many.
func TestSpinnerInCriticalSectionStaysExclusive(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	l := New(3, 4)
	done := make(chan struct{})
	var inCS int32 // plain: the lock plus the detector protect it
	violated := false
	for pid := 0; pid < 3; pid++ {
		go func(pid int) {
			defer func() { done <- struct{}{} }()
			sp := workload.NewSpinner(pid, int64(pid)+1, 0.1, preempt.Yield{})
			for k := 0; k < 400; k++ {
				l.Lock(pid)
				inCS++
				if inCS != 1 {
					violated = true
				}
				sp.Spin(60) // yields inside the CS
				inCS--
				l.Unlock(pid)
			}
		}(pid)
	}
	for i := 0; i < 3; i++ {
		<-done
	}
	if violated {
		t.Fatal("mutual exclusion violated with an in-CS yielding spinner")
	}
	if l.Overflows() != 0 {
		t.Error("overflow attempted")
	}
}

// SetPreemptor(Gosched) restores the seed fast path (no doorway yields);
// the lock must still be correct — only reset observability changes.
func TestPreemptorPluggable(t *testing.T) {
	l := New(3, 1<<20)
	l.SetPreemptor(preempt.Gosched{})
	stressLock(t, l, 500)
	seq := preempt.NewSequencer(1, 1)
	l2 := New(1, 8)
	l2.SetPreemptor(seq)
	seq.Go(0, func() {
		for i := 0; i < 50; i++ {
			l2.Lock(0)
			l2.Unlock(0)
		}
	})
	if steps := seq.Run(); steps == 0 {
		t.Error("sequenced lock made no virtual steps")
	}
	if l2.Overflows() != 0 {
		t.Error("overflow attempted under sequencer")
	}
}
