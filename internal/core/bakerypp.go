// Package core implements the paper's contribution, Bakery++ (Algorithm 2),
// as a runnable N-participant mutual-exclusion lock over bounded registers.
//
// Bakery++ is Lamport's bakery algorithm plus two conditional statements
// that make register overflow impossible: an entry gate that waits while any
// ticket register holds a value at (or beyond) the register capacity M, and
// a pre-increment check that resets the process's own registers and retries
// instead of storing a value above M. It preserves the bakery algorithm's
// distinguishing properties: first-come-first-served entry, no process ever
// writes another process's registers, and no reliance on lower-level mutual
// exclusion (no compare-and-swap, no fetch-and-add; reads and writes only).
//
// The lock is exercised through explicit participant ids:
//
//	l := core.New(4, core.CapacityForBits(8)) // 4 participants, 8-bit tickets
//	l.Lock(pid)
//	... critical section ...
//	l.Unlock(pid)
//
// Each participant must be driven by at most one goroutine at a time; that
// is the paper's system model (N sequential processes), not an
// implementation shortcut.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bakerypp/internal/preempt"
	"bakerypp/internal/registers"
)

// CapacityForBits returns the ticket capacity M of a b-bit register,
// re-exported from the registers substrate for API convenience.
func CapacityForBits(bits int) int64 { return registers.CapacityForBits(bits) }

// BakeryPP is the Bakery++ lock. The zero value is unusable; construct with
// New or NewForBits.
type BakeryPP struct {
	n        int
	m        int64
	choosing *registers.File
	number   *registers.File
	overflow registers.Counter
	pre      preempt.Preemptor

	resets    atomic.Uint64
	gateWaits atomic.Uint64
	crashes   atomic.Uint64
}

// DefaultDoorwayPreemptRate is the probability that a doorway fast-path
// preemption point yields to the Go scheduler under the default Preemptor.
// The reset branch of Algorithm 2 exists for one interleaving: a process
// passes the L1 gate, and before its maximum scan completes another process
// saturates a ticket register at M. On real many-core hardware that window
// is hit by true parallelism; on few cores it is hit only if the scheduler
// preempts inside the doorway, which Go's ~10ms async preemption
// essentially never does for a sub-microsecond doorway — leaving the
// branch dead and Resets() stuck at zero on exactly the machines CI uses.
// Seeded randomized yields at this rate re-open the window everywhere
// while costing one xorshift per point on the fast path.
const DefaultDoorwayPreemptRate = 1.0 / 16

// defaultPreemptSeed fixes the default yield schedule so uninstrumented
// runs are repeatable; SetPreemptor installs a custom schedule.
const defaultPreemptSeed = 0x51AB0B1EED

// New returns a Bakery++ lock for n participants with register capacity m
// (the largest value any ticket register may hold; m >= 1).
func New(n int, m int64) *BakeryPP {
	if n < 1 {
		panic("core: need at least one participant")
	}
	if m < 1 {
		panic("core: register capacity must be >= 1")
	}
	l := &BakeryPP{n: n, m: m}
	l.pre = preempt.NewRandomYield(n, defaultPreemptSeed, DefaultDoorwayPreemptRate)
	l.choosing = registers.NewFile(n, 1, registers.Trap, &l.overflow)
	l.number = registers.NewFile(n, m, registers.Trap, &l.overflow)
	return l
}

// SetPreemptor replaces the lock's preemption sink (default: seeded
// randomized yields at DefaultDoorwayPreemptRate). The harness's
// deterministic sweep engine installs its Sequencer here; passing
// preempt.Gosched{} turns doorway preemption off for raw benchmarking.
// It must be called before the lock is shared between goroutines.
func (l *BakeryPP) SetPreemptor(p preempt.Preemptor) { l.pre = p }

// NewForBits returns a Bakery++ lock whose ticket registers are bits wide
// (capacity 2^bits - 1).
func NewForBits(n, bits int) *BakeryPP {
	return New(n, registers.CapacityForBits(bits))
}

// NewPadded returns a Bakery++ lock whose registers are spaced one cache
// line apart instead of packed like a real shared array — the false-sharing
// ablation (DESIGN.md): same algorithm, different memory layout, so the
// throughput delta isolates coherence traffic from the O(N) scan cost.
func NewPadded(n int, m int64) *BakeryPP {
	if n < 1 {
		panic("core: need at least one participant")
	}
	if m < 1 {
		panic("core: register capacity must be >= 1")
	}
	l := &BakeryPP{n: n, m: m}
	l.pre = preempt.NewRandomYield(n, defaultPreemptSeed, DefaultDoorwayPreemptRate)
	l.choosing = registers.NewFilePadded(n, 1, registers.Trap, &l.overflow)
	l.number = registers.NewFilePadded(n, m, registers.Trap, &l.overflow)
	return l
}

// Padded reports whether the lock uses the cache-line-padded layout.
func (l *BakeryPP) Padded() bool { return l.number.Padded() }

// Name identifies the lock in experiment tables.
func (l *BakeryPP) Name() string { return "bakery++" }

// N returns the number of participants.
func (l *BakeryPP) N() int { return l.n }

// M returns the register capacity.
func (l *BakeryPP) M() int64 { return l.m }

// Resets reports how many times the overflow-avoidance reset fired (the
// branch back to L1) — the "price of guaranteeing that no overflows ever
// occur" measured by experiment E5.
func (l *BakeryPP) Resets() uint64 { return l.resets.Load() }

// GateWaits reports how many spin iterations participants spent at the L1
// gate waiting for a saturated ticket to be reset.
func (l *BakeryPP) GateWaits() uint64 { return l.gateWaits.Load() }

// Overflows reports overflow attempts on the underlying registers. The
// paper's Theorem (Section 6.1) proves this is always zero; the accessor
// exists so tests and experiments can assert it.
func (l *BakeryPP) Overflows() uint64 { return l.overflow.Overflows() }

func (l *BakeryPP) checkPid(pid int) {
	if pid < 0 || pid >= l.n {
		panic(fmt.Sprintf("core: participant %d out of range [0,%d)", pid, l.n))
	}
}

// Lock acquires the critical section for participant pid, blocking until it
// is safe to enter. It follows Algorithm 2 line by line.
func (l *BakeryPP) Lock(pid int) {
	l.checkPid(pid)
	for {
		// L1: if there exists q with number[q] >= M then goto L1.
		for l.number.AnyAtLeast(l.m) {
			l.gateWaits.Add(1)
			l.pre.Wait(pid)
		}
		l.store(l.choosing, pid, 1)
		// number[i] := maximum(number[0], ..., number[N-1]), one register
		// read at a time; starting the scan at pid exercises the "any
		// arbitrary order" freedom. A preemption point before each read
		// keeps the gate-to-scan race window open on any core count: the
		// L1 gate excluded saturated tickets, but while this process is
		// descheduled mid-scan a neighbour may take ticket M, and the
		// reset below is the branch that makes that harmless.
		ticket := int64(0)
		for k := 0; k < l.n; k++ {
			l.pre.Preempt(pid)
			if v := l.number.Load((pid + k) % l.n); v > ticket {
				ticket = v
			}
		}
		if ticket >= l.m {
			// Overflow imminent: storing ticket+1 would exceed M. Reset
			// own registers and retry from the gate.
			l.store(l.number, pid, 0)
			l.store(l.choosing, pid, 0)
			l.resets.Add(1)
			continue
		}
		ticket++
		l.store(l.number, pid, ticket)
		l.store(l.choosing, pid, 0)

		for j := 0; j < l.n; j++ {
			// L2: if choosing[j] != 0 then goto L2.
			for l.choosing.Load(j) != 0 {
				l.pre.Wait(pid)
			}
			// L3: if number[j] != 0 and (number[j], j) < (number[i], i)
			// then goto L3.
			for {
				nj := l.number.Load(j)
				if nj == 0 || !pairLess(nj, j, ticket, pid) {
					break
				}
				l.pre.Wait(pid)
			}
		}
		return
	}
}

// Unlock releases the critical section for participant pid.
func (l *BakeryPP) Unlock(pid int) {
	l.checkPid(pid)
	l.store(l.number, pid, 0)
}

// Crash simulates the paper's fail-and-restart rule (correctness
// conditions 3-4 and assumption 1.5) for participant pid: the participant
// abandons whatever it was doing — including the critical section — and
// its shared registers reset to their initial values, as if the process
// halted and restarted in its noncritical section. It must be called by
// the goroutine driving pid (a real crash kills the process's own control
// flow; another goroutine cannot crash it).
func (l *BakeryPP) Crash(pid int) {
	l.checkPid(pid)
	l.crashes.Add(1)
	l.store(l.number, pid, 0)
	l.store(l.choosing, pid, 0)
}

// Crashes reports how many times Crash was invoked.
func (l *BakeryPP) Crashes() uint64 { return l.crashes.Load() }

// TryLock attempts to acquire the critical section without waiting: it runs
// the doorway, then makes a single pass over the trial loop and withdraws
// (resetting its own registers, exactly like a crash-restart, which the
// algorithm tolerates by design) if anyone blocks it. It reports whether
// the critical section was acquired; on false the lock is untouched.
//
// TryLock is an extension beyond the paper — withdrawal is sound because
// correctness conditions 3-4 already allow a process to reset its own
// registers and return to its noncritical section at any time. It is NOT
// FCFS: a withdrawn attempt abandons its place in line.
func (l *BakeryPP) TryLock(pid int) bool {
	l.checkPid(pid)
	if l.number.AnyAtLeast(l.m) {
		return false
	}
	l.store(l.choosing, pid, 1)
	ticket := l.number.MaxFrom(pid)
	if ticket >= l.m {
		l.store(l.number, pid, 0)
		l.store(l.choosing, pid, 0)
		l.resets.Add(1)
		return false
	}
	ticket++
	l.store(l.number, pid, ticket)
	l.store(l.choosing, pid, 0)

	for j := 0; j < l.n; j++ {
		if j == pid {
			continue
		}
		if l.choosing.Load(j) != 0 {
			l.withdraw(pid)
			return false
		}
		if nj := l.number.Load(j); nj != 0 && pairLess(nj, j, ticket, pid) {
			l.withdraw(pid)
			return false
		}
	}
	return true
}

// withdraw abandons a pending attempt, resetting the participant's own
// registers (the crash-restart rule).
func (l *BakeryPP) withdraw(pid int) {
	l.store(l.number, pid, 0)
}

// store writes through the bounded register, asserting the Section 6.1
// theorem: Bakery++ never attempts to store a value above the capacity.
func (l *BakeryPP) store(f *registers.File, i int, v int64) {
	if f.Store(i, v) {
		panic(fmt.Sprintf(
			"core: bakery++ attempted to store %d with capacity %d — violates Theorem 6.1", v, f.Capacity()))
	}
}

// pairLess is the paper's ordered-pair comparison: (a, i) < (b, j).
func pairLess(a int64, i int, b int64, j int) bool {
	return a < b || (a == b && i < j)
}

// Locker adapts one participant slot to the standard sync.Locker interface,
// so Bakery++ can guard anything a sync.Mutex can (including sync.Cond).
func (l *BakeryPP) Locker(pid int) sync.Locker {
	l.checkPid(pid)
	return pidLocker{l, pid}
}

type pidLocker struct {
	l   *BakeryPP
	pid int
}

func (pl pidLocker) Lock()   { pl.l.Lock(pl.pid) }
func (pl pidLocker) Unlock() { pl.l.Unlock(pl.pid) }
