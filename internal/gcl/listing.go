package gcl

import (
	"fmt"
	"strings"
)

// BranchInfo is the introspectable shape of one branch: everything except
// the guard and effect semantics (those are compiled closures).
type BranchInfo struct {
	// Next is the target label.
	Next string
	// Tag is the statistics tag, if any.
	Tag string
	// Guarded reports whether the branch has a guard (an await / test).
	Guarded bool
	// Assigns is the number of assignments in the effect.
	Assigns int
}

// BranchesAt returns the introspection records for a label's branches.
func (p *Prog) BranchesAt(label string) []BranchInfo {
	idx := p.LabelIndex(label)
	out := make([]BranchInfo, 0, len(p.branches[idx]))
	for _, b := range p.branches[idx] {
		out = append(out, BranchInfo{
			Next:    b.Next,
			Tag:     b.Tag,
			Guarded: b.Guard.defined(),
			Assigns: len(b.Eff),
		})
	}
	return out
}

// Listing renders the program's control-flow skeleton: every label with its
// branches (guards shown as `when …` markers, effects as assignment
// counts). Guard and effect expressions are compiled closures, so the
// listing shows structure, not source text — enough to see the shape of an
// algorithm (and to diff variants) from cmd/bakerymc -listing.
func (p *Prog) Listing() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s: N=%d, M=%d\n", p.Name, p.N, p.M)
	for _, d := range p.shared {
		owned := ""
		if p.owned[d.Name] {
			owned = " (owned)"
		}
		if d.Size == 1 {
			fmt.Fprintf(&b, "  shared %s = %d%s\n", d.Name, d.Init, owned)
		} else {
			fmt.Fprintf(&b, "  shared %s[%d] = %d%s\n", d.Name, d.Size, d.Init, owned)
		}
	}
	for _, d := range p.locals {
		fmt.Fprintf(&b, "  local  %s = %d\n", d.Name, d.Init)
	}
	for li, label := range p.labels {
		fmt.Fprintf(&b, "%s:\n", label)
		for _, br := range p.branches[li] {
			guard := "always"
			if br.Guard.defined() {
				guard = "when <guard>"
			}
			tag := ""
			if br.Tag != "" {
				tag = fmt.Sprintf("  [%s]", br.Tag)
			}
			fmt.Fprintf(&b, "  %-14s %2d assign(s) -> %s%s\n", guard, len(br.Eff), br.Next, tag)
		}
	}
	return b.String()
}
