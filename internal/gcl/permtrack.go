package gcl

// Permutation-tracking support for the model checker's quotient-graph
// liveness analyses. The symmetry-aware visited store (internal/mc) keys
// states on canonical orbit representatives; to reason about CYCLES on the
// quotient — starvation, global no-progress — the checker additionally
// needs the witnessing permutations as first-class values it can compose
// along quotient edges. This file exposes the program's permutation table
// by index (lexicographic order, identity at index 0) together with
// ranking, inversion, and composition, plus the pinned variant of
// canonicalization that the FCFS monitor product uses (canonicalize only
// the pids the property does NOT distinguish).
//
// All indices refer to the lexicographic enumeration of the full symmetric
// group on 0..N-1, the same table the cursor-aware canonicalization
// fallback walks. The table is materialised lazily on first use and capped
// at maxEnumProcs processes (8! = 40320 permutations).

import "fmt"

// ensurePerms materialises the permutation tables (idempotent), including
// the inverse-index table so InvPermIndex — on the quotient graph
// builder's per-edge path — is a lookup rather than a Lehmer ranking.
func (p *Prog) ensurePerms() {
	p.permsOnce.Do(func() {
		p.perms, p.invPerms, p.prefMasks, p.fixMasks = allPerms(p.N)
		p.invIdx = make([]int32, len(p.perms))
		for i := range p.perms {
			p.invIdx[i] = int32(p.PermIndexOf(p.invPerms[i]))
		}
	})
}

// CanTrackPerms reports whether the program supports permutation-indexed
// symmetry bookkeeping: full symmetry declared and few enough processes to
// materialise the permutation table. This is the precondition for the
// model checker's quotient-graph liveness analyses and for pinned
// canonicalization; it is stricter than CanCanonicalize only for
// cursor-free programs with more than maxEnumProcs processes.
func (p *Prog) CanTrackPerms() bool {
	return p.built && p.sym == FullSymmetry && p.N <= maxEnumProcs
}

// NumPerms returns the size of the permutation table (N!).
func (p *Prog) NumPerms() int {
	p.mustTrackPerms()
	p.ensurePerms()
	return len(p.perms)
}

// PermAt returns the permutation with the given lexicographic index
// (index 0 is the identity). The returned slice is shared and must be
// treated as read-only.
func (p *Prog) PermAt(i int) []int {
	p.mustTrackPerms()
	p.ensurePerms()
	return p.perms[i]
}

// InvPermAt returns the inverse of the permutation at index i, read-only.
func (p *Prog) InvPermAt(i int) []int {
	p.mustTrackPerms()
	p.ensurePerms()
	return p.invPerms[i]
}

// PermIndexOf returns the lexicographic index of perm via its Lehmer code;
// no table access is needed, so it also ranks permutations returned by the
// column-sorting canonicalization fast path.
func (p *Prog) PermIndexOf(perm []int) int {
	if len(perm) != p.N {
		panic(fmt.Sprintf("gcl: %s: PermIndexOf needs a permutation of %d ids, got %d", p.Name, p.N, len(perm)))
	}
	rank := 0
	for i := 0; i < len(perm); i++ {
		smaller := 0
		for j := i + 1; j < len(perm); j++ {
			if perm[j] < perm[i] {
				smaller++
			}
		}
		rank += smaller * factorial(len(perm)-1-i)
	}
	return rank
}

// InvPermIndex returns the index of the inverse of the permutation at
// index i (a table lookup).
func (p *Prog) InvPermIndex(i int) int {
	p.mustTrackPerms()
	p.ensurePerms()
	return int(p.invIdx[i])
}

// ComposePermIndex returns the index of the composition a∘b, the
// permutation mapping i to perms[a][perms[b][i]] — b applied first. This
// is the quotient-edge update rule: following an edge annotated ρ from a
// product node tracked by τ lands on the node tracked by τ∘ρ.
func (p *Prog) ComposePermIndex(a, b int) int {
	p.mustTrackPerms()
	p.ensurePerms()
	pa, pb := p.perms[a], p.perms[b]
	var buf [maxEnumProcs]int
	c := buf[:p.N]
	for i := 0; i < p.N; i++ {
		c[i] = pa[pb[i]]
	}
	return p.PermIndexOf(c)
}

// PermFixes reports whether perm maps s onto itself — membership in s's
// stabilizer — without materialising the image: every pid-indexed cell and
// per-process block is compared against its relocation target, with early
// exit on the first mismatch. The model checker's quotient product uses
// stabilizers to canonicalize its tracking-permutation keys.
func (p *Prog) PermFixes(s State, perm []int) bool {
	if len(perm) != p.N {
		panic(fmt.Sprintf("gcl: %s: PermFixes needs a permutation of %d ids, got %d", p.Name, p.N, len(perm)))
	}
	for _, off := range p.pidArrayOffs {
		for i := 0; i < p.N; i++ {
			if s[off+perm[i]] != s[off+i] {
				return false
			}
		}
	}
	for i := 0; i < p.N; i++ {
		if perm[i] == i {
			continue
		}
		src := p.sharedLen + i*p.localLen
		dst := p.sharedLen + perm[i]*p.localLen
		for k := 0; k < p.localLen; k++ {
			if s[dst+k] != s[src+k] {
				return false
			}
		}
	}
	return true
}

func (p *Prog) mustTrackPerms() {
	if !p.CanTrackPerms() {
		panic(fmt.Sprintf("gcl: %s: permutation tracking unavailable (symmetry %v, N=%d)", p.Name, p.sym, p.N))
	}
}

func factorial(k int) int {
	f := 1
	for i := 2; i <= k; i++ {
		f *= i
	}
	return f
}

// pinnedMaskOf folds a pid list into the fixed-point bitmask pinned
// canonicalization filters on, validating the pids.
func (p *Prog) pinnedMaskOf(pinned []int) uint32 {
	var mask uint32
	for _, pid := range pinned {
		if pid < 0 || pid >= p.N {
			panic(fmt.Sprintf("gcl: %s: pinned pid %d out of range [0,%d)", p.Name, pid, p.N))
		}
		mask |= 1 << uint(pid)
	}
	return mask
}

// CanonicalizePinned returns the least valid image of the cursor-normalized
// state over the permutations that FIX every pid in pinned (and, as always,
// respect the scan-cursor prefixes). Two states canonicalize-pinned equally
// iff their normalized forms are images of one another under such a
// permutation, so the result keys visited stores for properties that
// distinguish the pinned pids but are symmetric in all others — the FCFS
// monitor product pins its (first, second) pair and lets the remaining
// processes collapse. The pinned pids' per-process blocks and pid-indexed
// cells stay in place. Requires CanTrackPerms (the column-sorting fast path
// cannot respect pins); freshly allocated, safe for concurrent use.
func (p *Prog) CanonicalizePinned(s State, pinned []int) State {
	p.mustTrackPerms()
	p.ensurePerms()
	mask := p.pinnedMaskOf(pinned)
	w := p.canonWorkerPinned()
	defer p.canonPool.Put(w)
	c := w.canonicalizePinned(s, mask)
	out := make(State, len(c))
	copy(out, c)
	return out
}

// canonWorkerPinned hands out a scratch canonicalizer for the pinned path,
// which needs the permutation table even for cursor-free programs.
func (p *Prog) canonWorkerPinned() *canonicalizer {
	if w, ok := p.canonPool.Get().(*canonicalizer); ok {
		return w
	}
	return &canonicalizer{
		p:        p,
		buf:      make(State, p.StateLen()),
		norm:     make(State, p.StateLen()),
		bestPerm: make([]int, p.N),
		order:    make([]int, p.N),
	}
}

// canonicalizePinned is canonicalize restricted to permutations whose
// fixed-point mask covers pinnedMask; the identity always qualifies, so
// the enumeration's incumbent is well-defined.
func (w *canonicalizer) canonicalizePinned(s State, pinnedMask uint32) State {
	copy(w.norm, s)
	w.p.normalizeCursorsInPlace(w.norm)
	cursors := w.cursorMask(w.norm)
	w.enumerateFiltered(w.norm, cursors, pinnedMask)
	return w.buf
}

// enumerateFiltered is enumerate with an additional fixed-point filter:
// only permutations fixing every pid in pinnedMask compete.
func (w *canonicalizer) enumerateFiltered(s State, cursors, pinnedMask uint32) {
	p := w.p
	copy(w.buf, s)
	for i := range w.bestPerm {
		w.bestPerm[i] = i
	}
	for pi, perm := range p.perms {
		if pi == 0 {
			continue // identity: the incumbent
		}
		if cursors&^p.prefMasks[pi] != 0 {
			continue // violates some visited prefix
		}
		if pinnedMask&^p.fixMasks[pi] != 0 {
			continue // moves a pinned pid
		}
		if w.imageLess(w.buf, s, p.invPerms[pi]) {
			p.permuteInto(w.buf, s, perm)
			copy(w.bestPerm, perm)
		}
	}
}
