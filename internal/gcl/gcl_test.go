package gcl

import (
	"strings"
	"testing"
	"testing/quick"
)

// tinyProg builds a 2-process program: each process increments the shared
// counter cell it owns, then waits for the other to catch up, then loops.
func tinyProg() *Prog {
	p := New("tiny", 2)
	p.SetM(10)
	p.SharedArray("cnt", 2, 0)
	p.Own("cnt")
	p.LocalVar("t", 0)
	other := func(q int) Expr { return C(1 - q) }
	_ = other
	p.Label("inc",
		Goto("wait",
			SetSelf("cnt", Add(ShSelf("cnt"), C(1))),
			SetL("t", Add(L("t"), C(1))),
		),
	)
	p.Label("wait",
		Br(Eq(ShI("cnt", C(0)), ShI("cnt", C(1))), "inc"),
	)
	return p.MustBuild()
}

func TestBuilderValidation(t *testing.T) {
	t.Run("duplicate variable", func(t *testing.T) {
		defer expectPanic(t, "duplicate")
		p := New("x", 1)
		p.SharedVar("a", 0)
		p.LocalVar("a", 0)
	})
	t.Run("duplicate label", func(t *testing.T) {
		defer expectPanic(t, "duplicate")
		p := New("x", 1)
		p.Label("l", Goto("l"))
		p.Label("l", Goto("l"))
	})
	t.Run("label without branches", func(t *testing.T) {
		defer expectPanic(t, "no branches")
		p := New("x", 1)
		p.Label("l")
	})
	t.Run("undeclared jump target", func(t *testing.T) {
		p := New("x", 1)
		p.Label("l", Goto("nowhere"))
		if err := p.Build(); err == nil || !strings.Contains(err.Error(), "undeclared") {
			t.Errorf("Build err = %v, want undeclared-label error", err)
		}
	})
	t.Run("owned var wrong size", func(t *testing.T) {
		p := New("x", 3)
		p.SharedArray("a", 2, 0)
		p.Own("a")
		p.Label("l", Goto("l"))
		if err := p.Build(); err == nil || !strings.Contains(err.Error(), "size N") {
			t.Errorf("Build err = %v, want size-N error", err)
		}
	})
	t.Run("owned var not shared", func(t *testing.T) {
		p := New("x", 1)
		p.Own("ghost")
		p.Label("l", Goto("l"))
		if err := p.Build(); err == nil || !strings.Contains(err.Error(), "not declared shared") {
			t.Errorf("Build err = %v, want not-declared error", err)
		}
	})
	t.Run("double build", func(t *testing.T) {
		p := New("x", 1)
		p.Label("l", Goto("l"))
		if err := p.Build(); err != nil {
			t.Fatal(err)
		}
		if err := p.Build(); err == nil {
			t.Error("second Build did not error")
		}
	})
	t.Run("no labels", func(t *testing.T) {
		if err := New("x", 1).Build(); err == nil {
			t.Error("Build with no labels did not error")
		}
	})
}

func expectPanic(t *testing.T, substr string) {
	t.Helper()
	r := recover()
	if r == nil {
		t.Errorf("expected panic containing %q", substr)
		return
	}
	if msg, ok := r.(string); ok && !strings.Contains(msg, substr) {
		t.Errorf("panic %q does not contain %q", msg, substr)
	}
}

func TestInitStateLayout(t *testing.T) {
	p := tinyProg()
	s := p.InitState()
	if got, want := p.StateLen(), 2+2*2; got != want { // cnt[2] + 2*(pc,t)
		t.Fatalf("StateLen = %d, want %d", got, want)
	}
	for pid := 0; pid < 2; pid++ {
		if p.PC(s, pid) != 0 {
			t.Errorf("initial pc of %d = %d, want 0", pid, p.PC(s, pid))
		}
		if p.PCLabel(s, pid) != "inc" {
			t.Errorf("initial label = %q, want inc", p.PCLabel(s, pid))
		}
		if p.Local(s, pid, "t") != 0 {
			t.Errorf("initial t = %d", p.Local(s, pid, "t"))
		}
	}
	if p.Shared(s, "cnt", 0) != 0 || p.Shared(s, "cnt", 1) != 0 {
		t.Error("shared array not zero-initialised")
	}
}

func TestInitialValuesRespected(t *testing.T) {
	p := New("iv", 2)
	p.SharedVar("color", 7)
	p.SharedArray("a", 3, 2)
	p.LocalVar("l", 5)
	p.Label("x", Goto("x"))
	p.MustBuild()
	s := p.InitState()
	if p.Shared(s, "color", 0) != 7 {
		t.Error("scalar init ignored")
	}
	for i := 0; i < 3; i++ {
		if p.Shared(s, "a", i) != 2 {
			t.Error("array init ignored")
		}
	}
	if p.Local(s, 1, "l") != 5 {
		t.Error("local init ignored")
	}
}

func TestKeyRoundTripDistinct(t *testing.T) {
	p := tinyProg()
	s1 := p.InitState()
	s2 := p.Clone(s1)
	if p.Key(s1) != p.Key(s2) {
		t.Error("identical states produced different keys")
	}
	p.SetShared(s2, "cnt", 1, 3)
	if p.Key(s1) == p.Key(s2) {
		t.Error("distinct states produced identical keys")
	}
	if len(p.Key(s1)) != 2*p.StateLen() {
		t.Errorf("key length = %d, want %d", len(p.Key(s1)), 2*p.StateLen())
	}
}

func TestKeyPanicsOutOfRange(t *testing.T) {
	p := tinyProg()
	s := p.InitState()
	p.SetShared(s, "cnt", 0, 70000)
	defer func() {
		if recover() == nil {
			t.Error("Key with >16-bit value did not panic")
		}
	}()
	p.Key(s)
}

func TestExprOps(t *testing.T) {
	p := tinyProg()
	s := p.InitState()
	p.SetShared(s, "cnt", 0, 4)
	p.SetShared(s, "cnt", 1, 9)
	p.SetLocal(s, 1, "t", 3)
	c := &Ctx{P: p, S: s, Pid: 1}

	cases := []struct {
		name string
		e    Expr
		want int32
	}{
		{"C", C(42), 42},
		{"Self", Self(), 1},
		{"L", L("t"), 3},
		{"ShI", ShI("cnt", C(0)), 4},
		{"ShSelf", ShSelf("cnt"), 9},
		{"MaxSh", MaxSh("cnt"), 9},
		{"Add", Add(C(2), C(3)), 5},
		{"Sub", Sub(C(7), C(3)), 4},
		{"Mod", Mod(C(9), C(4)), 1},
		{"Eq true", Eq(C(2), C(2)), 1},
		{"Eq false", Eq(C(2), C(3)), 0},
		{"Ne", Ne(C(2), C(3)), 1},
		{"Lt", Lt(C(2), C(3)), 1},
		{"Le", Le(C(3), C(3)), 1},
		{"Gt", Gt(C(4), C(3)), 1},
		{"Ge false", Ge(C(2), C(3)), 0},
		{"Not", Not(C(0)), 1},
		{"And", And(C(1), C(2)), 1},
		{"And false", And(C(1), C(0)), 0},
		{"Or", Or(C(0), C(5)), 1},
		{"Or false", Or(C(0), C(0)), 0},
		{"AndN", AndN(3, func(q int) Expr { return C(1) }), 1},
		{"AndN false", AndN(3, func(q int) Expr { return b2iE(q != 1) }), 0},
		{"OrN", OrN(3, func(q int) Expr { return b2iE(q == 2) }), 1},
		{"OrN false", OrN(3, func(q int) Expr { return C(0) }), 0},
	}
	for _, tc := range cases {
		if got := tc.e.Eval(c); got != tc.want {
			t.Errorf("%s = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func b2iE(b bool) Expr {
	if b {
		return C(1)
	}
	return C(0)
}

func TestMax2(t *testing.T) {
	p := tinyProg()
	c := &Ctx{P: p, S: p.InitState(), Pid: 0}
	cases := []struct{ a, b, want int }{{1, 2, 2}, {5, 3, 5}, {4, 4, 4}, {0, 0, 0}}
	for _, tc := range cases {
		if got := Max2(C(tc.a), C(tc.b)).Eval(c); got != int32(tc.want) {
			t.Errorf("Max2(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMaxN(t *testing.T) {
	p := tinyProg()
	s := p.InitState()
	p.SetShared(s, "cnt", 0, 9)
	p.SetShared(s, "cnt", 1, 4)
	c := &Ctx{P: p, S: s, Pid: 0}
	// Max over all cells.
	all := MaxN(2, func(q int) (Expr, Expr) { return C(1), ShI("cnt", C(q)) })
	if got := all.Eval(c); got != 9 {
		t.Errorf("unconditional MaxN = %d, want 9", got)
	}
	// Max restricted to cell 1 only.
	only1 := MaxN(2, func(q int) (Expr, Expr) { return b2iE(q == 1), ShI("cnt", C(q)) })
	if got := only1.Eval(c); got != 4 {
		t.Errorf("restricted MaxN = %d, want 4", got)
	}
	// No condition holds: zero.
	none := MaxN(2, func(q int) (Expr, Expr) { return C(0), ShI("cnt", C(q)) })
	if got := none.Eval(c); got != 0 {
		t.Errorf("empty MaxN = %d, want 0", got)
	}
}

func TestModByZeroPanics(t *testing.T) {
	p := tinyProg()
	c := &Ctx{P: p, S: p.InitState(), Pid: 0}
	defer func() {
		if recover() == nil {
			t.Error("Mod by zero did not panic")
		}
	}()
	Mod(C(1), C(0)).Eval(c)
}

// LexLt must implement the paper's ordered-pair comparison: (a,b) < (c,d)
// iff a < c, or a = c and b < d. Property-checked against the definition.
func TestLexLtMatchesDefinition(t *testing.T) {
	p := tinyProg()
	c := &Ctx{P: p, S: p.InitState(), Pid: 0}
	f := func(a, b, cc, d uint8) bool {
		got := LexLt(C(int(a)), C(int(b)), C(int(cc)), C(int(d))).Eval(c) == 1
		want := a < cc || (a == cc && b < d)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// LexLt is a strict total order on distinct (value, pid) pairs — exactly why
// bakery tickets break ties by process id. Property: trichotomy.
func TestLexLtTrichotomy(t *testing.T) {
	p := tinyProg()
	c := &Ctx{P: p, S: p.InitState(), Pid: 0}
	f := func(a, b, cc, d uint8) bool {
		lt := LexLt(C(int(a)), C(int(b)), C(int(cc)), C(int(d))).Eval(c) == 1
		gt := LexLt(C(int(cc)), C(int(d)), C(int(a)), C(int(b))).Eval(c) == 1
		eq := a == cc && b == d
		n := 0
		for _, x := range []bool{lt, gt, eq} {
			if x {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStepAndGuards(t *testing.T) {
	p := tinyProg()
	s := p.InitState()

	// Both processes are at "inc" and enabled.
	if !p.Enabled(s, 0) || !p.Enabled(s, 1) {
		t.Fatal("inc should be unguarded")
	}
	succs := p.AllSuccs(s, ModeUnbounded)
	if len(succs) != 2 {
		t.Fatalf("AllSuccs = %d successors, want 2", len(succs))
	}

	// After p0 increments, p0 waits: guard cnt[0]==cnt[1] is false, so p0
	// is blocked while p1 still moves.
	var after State
	for _, sc := range succs {
		if sc.Pid == 0 {
			after = sc.State
		}
	}
	if got := p.Shared(after, "cnt", 0); got != 1 {
		t.Errorf("cnt[0] = %d, want 1", got)
	}
	if got := p.Local(after, 0, "t"); got != 1 {
		t.Errorf("t = %d, want 1", got)
	}
	if p.PCLabel(after, 0) != "wait" {
		t.Errorf("p0 at %q, want wait", p.PCLabel(after, 0))
	}
	if p.Enabled(after, 0) {
		t.Error("p0 should be blocked at wait (await semantics)")
	}
	if !p.Enabled(after, 1) {
		t.Error("p1 should still be enabled")
	}
	// Pre-state must be untouched (apply copies).
	if got := p.Shared(s, "cnt", 0); got != 0 {
		t.Errorf("pre-state mutated: cnt[0] = %d", got)
	}
}

func TestSimultaneousAssignment(t *testing.T) {
	// swap: a, b = b, a in one action must use pre-state values.
	p := New("swap", 1)
	p.SharedVar("a", 1)
	p.SharedVar("b", 2)
	p.Label("s", Goto("s", Set("a", Sh("b")), Set("b", Sh("a"))))
	p.MustBuild()
	s := p.InitState()
	succs := p.AllSuccs(s, ModeUnbounded)
	if len(succs) != 1 {
		t.Fatal("want one successor")
	}
	next := succs[0].State
	if p.Shared(next, "a", 0) != 2 || p.Shared(next, "b", 0) != 1 {
		t.Errorf("swap produced a=%d b=%d, want a=2 b=1",
			p.Shared(next, "a", 0), p.Shared(next, "b", 0))
	}
}

func TestOverflowFlagUnboundedMode(t *testing.T) {
	p := New("ovf", 1)
	p.SetM(3)
	p.SharedVar("n", 3)
	p.Label("s", Goto("s", Set("n", Add(Sh("n"), C(1)))))
	p.MustBuild()
	succs := p.AllSuccs(p.InitState(), ModeUnbounded)
	if !succs[0].Overflow {
		t.Error("store of 4 with M=3 did not flag overflow")
	}
	if got := p.Shared(succs[0].State, "n", 0); got != 4 {
		t.Errorf("unbounded mode stored %d, want raw 4", got)
	}
}

func TestOverflowWrapMode(t *testing.T) {
	p := New("ovf", 1)
	p.SetM(3)
	p.SharedVar("n", 3)
	p.Label("s", Goto("s", Set("n", Add(Sh("n"), C(1)))))
	p.MustBuild()
	succs := p.AllSuccs(p.InitState(), ModeWrap)
	if !succs[0].Overflow {
		t.Error("wrap mode did not flag overflow")
	}
	if got := p.Shared(succs[0].State, "n", 0); got != 0 {
		t.Errorf("wrap mode stored %d, want 0 (4 mod 4)", got)
	}
}

func TestLocalStoresNotOverflowChecked(t *testing.T) {
	// Locals model loop indices (the paper's j); they are bounded by N by
	// construction and are not subject to M accounting.
	p := New("loc", 1)
	p.SetM(2)
	p.LocalVar("j", 0)
	p.Label("s", Goto("s", SetL("j", Add(L("j"), C(1)))))
	p.MustBuild()
	s := p.InitState()
	for i := 0; i < 5; i++ {
		succs := p.AllSuccs(s, ModeWrap)
		if succs[0].Overflow {
			t.Fatal("local store flagged overflow")
		}
		s = succs[0].State
	}
	if got := p.Local(s, 0, "j"); got != 5 {
		t.Errorf("j = %d, want 5", got)
	}
}

func TestNegativeStorePanics(t *testing.T) {
	p := New("neg", 1)
	p.SharedVar("n", 0)
	p.Label("s", Goto("s", Set("n", Sub(Sh("n"), C(1)))))
	p.MustBuild()
	defer func() {
		if recover() == nil {
			t.Error("negative store did not panic")
		}
	}()
	p.AllSuccs(p.InitState(), ModeUnbounded)
}

func TestCrashSucc(t *testing.T) {
	p := tinyProg()
	s := p.InitState()
	// Advance p0: inc then sit at wait with cnt[0]=1, t=1.
	s = p.AllSuccs(s, ModeUnbounded)[0].State
	if p.PCLabel(s, 0) != "wait" {
		t.Fatalf("setup: p0 at %q", p.PCLabel(s, 0))
	}
	crashed := p.CrashSucc(s, 0)
	if p.PC(crashed, 0) != 0 {
		t.Error("crash did not reset pc to first label")
	}
	if p.Local(crashed, 0, "t") != 0 {
		t.Error("crash did not reset local")
	}
	if p.Shared(crashed, "cnt", 0) != 0 {
		t.Error("crash did not reset owned shared cell")
	}
	// Other process's cell untouched.
	p.SetShared(s, "cnt", 1, 5)
	crashed = p.CrashSucc(s, 0)
	if p.Shared(crashed, "cnt", 1) != 5 {
		t.Error("crash reset another process's cell")
	}
}

func TestCountAtLabel(t *testing.T) {
	p := tinyProg()
	s := p.InitState()
	if got := p.CountAtLabel(s, "inc"); got != 2 {
		t.Errorf("CountAtLabel(inc) = %d, want 2", got)
	}
	p.SetPC(s, 0, p.LabelIndex("wait"))
	if got := p.CountAtLabel(s, "inc"); got != 1 {
		t.Errorf("CountAtLabel(inc) = %d, want 1", got)
	}
}

func TestFormatMentionsEverything(t *testing.T) {
	p := tinyProg()
	out := p.Format(p.InitState())
	for _, want := range []string{"cnt=", "p0@inc", "p1@inc", "t=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output %q missing %q", out, want)
		}
	}
}

func TestSharedNamesAndSizes(t *testing.T) {
	p := tinyProg()
	names := p.SharedNames()
	if len(names) != 1 || names[0] != "cnt" {
		t.Errorf("SharedNames = %v", names)
	}
	if p.SharedSize("cnt") != 2 {
		t.Errorf("SharedSize = %d", p.SharedSize("cnt"))
	}
}

func TestModeString(t *testing.T) {
	if ModeUnbounded.String() != "unbounded" || ModeWrap.String() != "wrap" {
		t.Error("mode names wrong")
	}
	if Mode(7).String() != "mode(7)" {
		t.Error("unknown mode name wrong")
	}
}

func TestDeadlockDetectionHelper(t *testing.T) {
	p := New("dead", 2)
	p.SharedVar("never", 0)
	p.Label("w", Br(Eq(Sh("never"), C(1)), "w"))
	p.MustBuild()
	if p.EnabledAny(p.InitState()) {
		t.Error("fully blocked program reported enabled")
	}
}
