package gcl

import "fmt"

// Mode selects how shared stores interact with the register capacity M.
type Mode uint8

const (
	// ModeUnbounded stores values verbatim, flagging (but not altering)
	// stores above M. This is the model-checking mode: the paper's
	// no-overflow invariant is "no reachable state holds a value > M".
	ModeUnbounded Mode = iota
	// ModeWrap stores v mod (M+1) like a real b-bit register, flagging the
	// overflow. This is the simulation mode under which classic Bakery
	// malfunctions (paper Section 3).
	ModeWrap
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeUnbounded:
		return "unbounded"
	case ModeWrap:
		return "wrap"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Succ is one successor of a state: the action of process Pid taking branch
// Branch of its current label. The label is carried as an index into the
// program's label table (LabelIdx) so the successor hot loop moves no
// strings; render it with Label.
type Succ struct {
	State State
	Pid   int
	// LabelIdx is the index of the label the action executed at (the
	// pre-state pc); resolve it with Label or Prog.LabelName.
	LabelIdx int32
	// Branch is the index of the branch taken within the label.
	Branch int
	// Tag is the branch's statistics tag, if any.
	Tag string
	// Overflow reports that some assignment in the effect attempted to
	// store a value greater than M into a shared variable.
	Overflow bool
}

// Label returns the name of the label the action executed at.
func (sc Succ) Label(p *Prog) string { return p.labels[sc.LabelIdx] }

// resEff is the Build-time resolution of one Assign: the variable name is
// replaced by the word (or word recipe) it writes, so apply performs no map
// lookups and no bounds arithmetic beyond what the index form requires.
type resEff struct {
	val  Expr
	idx  Expr // effSharedDyn only: the runtime index expression
	kind uint8
	off  int // effLocal: offset within the block; effSharedWord: absolute word; effSharedSelf/Dyn: array base
	size int // shared forms: declared size, for the dynamic bounds check
	name string
}

const (
	effLocal      uint8 = iota // dst[block+off] = v
	effSharedWord              // dst[off] = v (scalar, or constant index folded at Build)
	effSharedSelf              // dst[off+pid] = v
	effSharedDyn               // dst[off+eval(idx)] = v, bounds-checked
)

// resolveEffects compiles every branch's effect list and jump target into
// reff/nextPC; called from Build after the layout exists.
func (p *Prog) resolveEffects() error {
	p.reff = make([][][]resEff, len(p.branches))
	p.nextPC = make([][]int32, len(p.branches))
	for li, brs := range p.branches {
		p.reff[li] = make([][]resEff, len(brs))
		p.nextPC[li] = make([]int32, len(brs))
		for bi, b := range brs {
			p.nextPC[li][bi] = int32(p.labelIdx[b.Next])
			effs := make([]resEff, 0, len(b.Eff))
			for _, a := range b.Eff {
				e, err := p.resolveAssign(a)
				if err != nil {
					return fmt.Errorf("gcl: %s: label %q branch %d: %w", p.Name, p.labels[li], bi, err)
				}
				effs = append(effs, e)
			}
			p.reff[li][bi] = effs
		}
	}
	p.crashLocals = p.crashLocals[:0]
	for _, d := range p.locals {
		p.crashLocals = append(p.crashLocals, resetCell{off: p.localInfo[d.Name].off, init: d.Init})
	}
	p.crashOwned = p.crashOwned[:0]
	for _, d := range p.shared {
		if p.owned[d.Name] {
			p.crashOwned = append(p.crashOwned, resetCell{off: p.sharedInfo[d.Name].off, init: d.Init})
		}
	}
	return nil
}

func (p *Prog) resolveAssign(a Assign) (resEff, error) {
	if a.Local {
		info, ok := p.localInfo[a.Name]
		if !ok {
			return resEff{}, fmt.Errorf("unknown local %q", a.Name)
		}
		return resEff{val: a.Val, kind: effLocal, off: info.off, name: a.Name}, nil
	}
	info, ok := p.sharedInfo[a.Name]
	if !ok {
		return resEff{}, fmt.Errorf("unknown shared variable %q", a.Name)
	}
	switch {
	case !a.Idx.defined():
		return resEff{val: a.Val, kind: effSharedWord, off: info.off, size: info.size, name: a.Name}, nil
	case a.Idx.shp == shapeConst:
		k := int(a.Idx.k)
		if k < 0 || k >= info.size {
			return resEff{}, fmt.Errorf("index %d out of range for %q", k, a.Name)
		}
		return resEff{val: a.Val, kind: effSharedWord, off: info.off + k, size: info.size, name: a.Name}, nil
	case a.Idx.shp == shapeSelf && info.size >= p.N:
		return resEff{val: a.Val, kind: effSharedSelf, off: info.off, size: info.size, name: a.Name}, nil
	default:
		return resEff{val: a.Val, idx: a.Idx, kind: effSharedDyn, off: info.off, size: info.size, name: a.Name}, nil
	}
}

// SuccBuf is a chunked slab arena for successor generation: SuccsInto
// writes each successor's state vector into a slab block and appends its
// Succ record, so a BFS loop that Resets the buffer per expanded state (or
// per chunk) performs zero steady-state heap allocations. Blocks are never
// reallocated once handed out, so every State obtained from the buffer
// stays valid until the next Reset — at which point all of them are
// recycled at once. The zero value is ready to use; a SuccBuf must not be
// shared between goroutines.
type SuccBuf struct {
	blocks [][]int32
	ci     int // index of the block currently being filled
	off    int // fill offset within blocks[ci]
	succs  []Succ
	// ectx is the scratch evaluation context handed to guard and effect
	// closures. Closures take *Ctx, so a stack-local Ctx escapes and costs
	// one heap allocation per evaluation; pointing them at a field of the
	// (already heap-resident, single-goroutine) buffer costs none.
	ectx Ctx
}

// ctxFor primes the buffer's scratch evaluation context for (s, pid).
// The returned pointer is invalidated by the next ctxFor call.
func (b *SuccBuf) ctxFor(p *Prog, s State, pid int) *Ctx {
	b.ectx.P, b.ectx.S, b.ectx.Pid = p, s, pid
	return &b.ectx
}

// succBufBlock is the slab block size in int32 words (256 KiB per block):
// large enough that a full BFS chunk of successors fits in a handful of
// blocks, small enough that a mostly-idle buffer wastes little.
const succBufBlock = 1 << 16

// Reset recycles every block and truncates the successor list. All states
// previously returned by Alloc become invalid.
func (b *SuccBuf) Reset() {
	b.ci = 0
	b.off = 0
	b.succs = b.succs[:0]
}

// Succs returns the successors accumulated since the last Reset. The slice
// is owned by the buffer and valid until the next Reset.
func (b *SuccBuf) Succs() []Succ { return b.succs }

// Truncate drops all but the first n accumulated successors (their states
// stay valid; only the records are discarded).
func (b *SuccBuf) Truncate(n int) { b.succs = b.succs[:n] }

// Append records a successor constructed by the caller — e.g. the model
// checker's crash pseudo-transitions, whose states it allocates from the
// same buffer via Alloc.
func (b *SuccBuf) Append(sc Succ) { b.succs = append(b.succs, sc) }

// Alloc returns an uninitialised n-word state vector carved from the arena,
// valid until the next Reset.
func (b *SuccBuf) Alloc(n int) State {
	for {
		if b.ci < len(b.blocks) {
			blk := b.blocks[b.ci]
			if b.off+n <= len(blk) {
				s := blk[b.off : b.off+n : b.off+n]
				b.off += n
				return s
			}
			b.ci++
			b.off = 0
			continue
		}
		sz := succBufBlock
		if n > sz {
			sz = n
		}
		b.blocks = append(b.blocks, make([]int32, sz))
	}
}

// CopyIn copies s into the arena and returns the copy.
func (b *SuccBuf) CopyIn(s State) State {
	out := b.Alloc(len(s))
	copy(out, s)
	return out
}

// Enabled reports whether process pid has at least one enabled branch in s.
func (p *Prog) Enabled(s State, pid int) bool {
	c := Ctx{P: p, S: s, Pid: pid}
	for _, b := range p.branches[p.PC(s, pid)] {
		if !b.Guard.defined() || b.Guard.f(&c) != 0 {
			return true
		}
	}
	return false
}

// EnabledMask returns a bitmask of the enabled branches at process pid's
// current label (bit i set = branch i enabled), evaluating guards only —
// no successor states are materialised. Labels with more than 64 branches
// do not occur in practice; their higher branches fall outside the mask.
// Guards evaluate through buf's scratch context (the partial-order chase
// calls this per hop); nothing is carved from the arena.
func (p *Prog) EnabledMask(s State, pid int, buf *SuccBuf) uint64 {
	c := buf.ctxFor(p, s, pid)
	var mask uint64
	for bi, b := range p.branches[p.PC(s, pid)] {
		if !b.Guard.defined() || b.Guard.f(c) != 0 {
			mask |= 1 << uint(bi)
		}
	}
	return mask
}

// EnabledAny reports whether any process has an enabled branch in s; a state
// where no process is enabled is a deadlock.
func (p *Prog) EnabledAny(s State) bool {
	for pid := 0; pid < p.N; pid++ {
		if p.Enabled(s, pid) {
			return true
		}
	}
	return false
}

// Succs appends to out every successor of s reachable by one action of
// process pid and returns the extended slice. Each successor state is
// freshly heap-allocated; exploration hot loops should use SuccsInto.
func (p *Prog) Succs(s State, pid int, mode Mode, out []Succ) []Succ {
	if !p.built {
		panic("gcl: Succs before Build")
	}
	pc := p.PC(s, pid)
	c := Ctx{P: p, S: s, Pid: pid}
	for bi, b := range p.branches[pc] {
		if b.Guard.defined() && b.Guard.f(&c) == 0 {
			continue
		}
		next := make(State, len(s))
		overflow := p.applyInto(next, &c, pc, bi, mode)
		out = append(out, Succ{
			State:    next,
			Pid:      pid,
			LabelIdx: int32(pc),
			Branch:   bi,
			Tag:      b.Tag,
			Overflow: overflow,
		})
	}
	return out
}

// SuccsInto appends every successor of s reachable by one action of process
// pid to buf, carving the successor state vectors out of buf's arena — the
// allocation-free variant of Succs the exploration engines use.
func (p *Prog) SuccsInto(s State, pid int, mode Mode, buf *SuccBuf) {
	if !p.built {
		panic("gcl: SuccsInto before Build")
	}
	pc := p.PC(s, pid)
	c := buf.ctxFor(p, s, pid)
	for bi, b := range p.branches[pc] {
		if b.Guard.defined() && b.Guard.f(c) == 0 {
			continue
		}
		dst := buf.Alloc(len(s))
		overflow := p.applyInto(dst, c, pc, bi, mode)
		buf.succs = append(buf.succs, Succ{
			State:    dst,
			Pid:      pid,
			LabelIdx: int32(pc),
			Branch:   bi,
			Tag:      b.Tag,
			Overflow: overflow,
		})
	}
}

// AllSuccs returns every successor of s across all processes.
func (p *Prog) AllSuccs(s State, mode Mode) []Succ {
	var out []Succ
	for pid := 0; pid < p.N; pid++ {
		out = p.Succs(s, pid, mode, out)
	}
	return out
}

// AllSuccsInto appends every successor of s across all processes to buf.
func (p *Prog) AllSuccsInto(s State, mode Mode, buf *SuccBuf) {
	for pid := 0; pid < p.N; pid++ {
		p.SuccsInto(s, pid, mode, buf)
	}
}

// ApplyInto writes the successor of s by branch bi of process pid's current
// label into dst (which must hold len(s) words) and reports whether any
// shared store overflowed. The branch's guard is NOT evaluated; callers are
// expected to have established enabledness (e.g. via EnabledMask). The
// expression scratch context lives in buf, which the exploration loop
// already owns; no state is carved from its arena.
func (p *Prog) ApplyInto(dst State, s State, pid, bi int, mode Mode, buf *SuccBuf) bool {
	if !p.built {
		panic("gcl: ApplyInto before Build")
	}
	return p.applyInto(dst, buf.ctxFor(p, s, pid), p.PC(s, pid), bi, mode)
}

// applyInto executes branch bi of label pc for c.Pid against the pre-state
// c.S, writing the successor into dst. Right-hand sides (and indices) are
// evaluated against the pre-state; writes land in dst, which realises the
// simultaneous-assignment (TLA+ priming) semantics without collecting a
// write list.
func (p *Prog) applyInto(dst State, c *Ctx, pc, bi int, mode Mode) bool {
	s, pid := c.S, c.Pid
	copy(dst, s)
	overflow := false
	base := p.sharedLen + pid*p.localLen
	effs := p.reff[pc][bi]
	for i := range effs {
		a := &effs[i]
		v := a.val.f(c)
		if v < 0 {
			panic(fmt.Sprintf("gcl: %s: assignment to %q computes negative value %d",
				p.Name, a.name, v))
		}
		if a.kind == effLocal {
			dst[base+a.off] = v
			continue
		}
		word := a.off
		switch a.kind {
		case effSharedSelf:
			word += pid
		case effSharedDyn:
			idx := int(a.idx.f(c))
			if idx < 0 || idx >= a.size {
				panic(fmt.Sprintf("gcl: %s: index %d out of range for %q", p.Name, idx, a.name))
			}
			word += idx
		}
		if p.M > 0 && int64(v) > p.M {
			overflow = true
			if mode == ModeWrap {
				v = int32(int64(v) % (p.M + 1))
			}
		}
		dst[word] = v
	}
	dst[base] = p.nextPC[pc][bi]
	return overflow
}

// CrashSucc returns the state after process pid crashes and restarts per the
// paper's correctness conditions 3–4: the process goes to its noncritical
// section (the first label), its locals return to their initial values, and
// its cells of every owned shared array read 0 (their initial values).
// Shared variables not marked Own are left untouched — the crash model only
// resets memory the process itself owns.
func (p *Prog) CrashSucc(s State, pid int) State {
	next := make(State, len(s))
	p.CrashSuccInto(next, s, pid)
	return next
}

// CrashSuccInto is CrashSucc into a caller-owned destination buffer of
// len(s) words — the allocation-free variant for the crash-enabled
// exploration hot path.
func (p *Prog) CrashSuccInto(dst State, s State, pid int) {
	copy(dst, s)
	base := p.sharedLen + pid*p.localLen
	dst[base] = 0
	for _, r := range p.crashLocals {
		dst[base+r.off] = r.init
	}
	for _, r := range p.crashOwned {
		dst[r.off+pid] = r.init
	}
}
