package gcl

import "fmt"

// Mode selects how shared stores interact with the register capacity M.
type Mode uint8

const (
	// ModeUnbounded stores values verbatim, flagging (but not altering)
	// stores above M. This is the model-checking mode: the paper's
	// no-overflow invariant is "no reachable state holds a value > M".
	ModeUnbounded Mode = iota
	// ModeWrap stores v mod (M+1) like a real b-bit register, flagging the
	// overflow. This is the simulation mode under which classic Bakery
	// malfunctions (paper Section 3).
	ModeWrap
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeUnbounded:
		return "unbounded"
	case ModeWrap:
		return "wrap"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Succ is one successor of a state: the action of process Pid taking branch
// Branch of its current label.
type Succ struct {
	State State
	Pid   int
	// Label is the label the action executed at (the pre-state pc).
	Label string
	// Branch is the index of the branch taken within the label.
	Branch int
	// Tag is the branch's statistics tag, if any.
	Tag string
	// Overflow reports that some assignment in the effect attempted to
	// store a value greater than M into a shared variable.
	Overflow bool
}

// Enabled reports whether process pid has at least one enabled branch in s.
func (p *Prog) Enabled(s State, pid int) bool {
	c := Ctx{P: p, S: s, Pid: pid}
	for _, b := range p.branches[p.PC(s, pid)] {
		if !b.Guard.defined() || b.Guard.f(&c) != 0 {
			return true
		}
	}
	return false
}

// EnabledMask returns a bitmask of the enabled branches at process pid's
// current label (bit i set = branch i enabled), evaluating guards only —
// no successor states are materialised. Labels with more than 64 branches
// do not occur in practice; their higher branches fall outside the mask.
func (p *Prog) EnabledMask(s State, pid int) uint64 {
	c := Ctx{P: p, S: s, Pid: pid}
	var mask uint64
	for bi, b := range p.branches[p.PC(s, pid)] {
		if !b.Guard.defined() || b.Guard.f(&c) != 0 {
			mask |= 1 << uint(bi)
		}
	}
	return mask
}

// EnabledAny reports whether any process has an enabled branch in s; a state
// where no process is enabled is a deadlock.
func (p *Prog) EnabledAny(s State) bool {
	for pid := 0; pid < p.N; pid++ {
		if p.Enabled(s, pid) {
			return true
		}
	}
	return false
}

// Succs appends to out every successor of s reachable by one action of
// process pid and returns the extended slice.
func (p *Prog) Succs(s State, pid int, mode Mode, out []Succ) []Succ {
	if !p.built {
		panic("gcl: Succs before Build")
	}
	pc := p.PC(s, pid)
	c := Ctx{P: p, S: s, Pid: pid}
	for bi, b := range p.branches[pc] {
		if b.Guard.defined() && b.Guard.f(&c) == 0 {
			continue
		}
		next, overflow := p.apply(s, pid, b, mode)
		out = append(out, Succ{
			State:    next,
			Pid:      pid,
			Label:    p.labels[pc],
			Branch:   bi,
			Tag:      b.Tag,
			Overflow: overflow,
		})
	}
	return out
}

// AllSuccs returns every successor of s across all processes.
func (p *Prog) AllSuccs(s State, mode Mode) []Succ {
	var out []Succ
	for pid := 0; pid < p.N; pid++ {
		out = p.Succs(s, pid, mode, out)
	}
	return out
}

// apply executes branch b for pid against s and returns the successor state
// and whether any shared store overflowed. Right-hand sides (and indices)
// are evaluated against the pre-state; writes land simultaneously.
func (p *Prog) apply(s State, pid int, b Branch, mode Mode) (State, bool) {
	c := Ctx{P: p, S: s, Pid: pid}
	type write struct {
		word int
		val  int32
	}
	writes := make([]write, 0, len(b.Eff))
	overflow := false
	for _, a := range b.Eff {
		v := a.Val.f(&c)
		if v < 0 {
			panic(fmt.Sprintf("gcl: %s: assignment to %q computes negative value %d",
				p.Name, a.Name, v))
		}
		var word int
		if a.Local {
			info, ok := p.localInfo[a.Name]
			if !ok {
				panic(fmt.Sprintf("gcl: %s: unknown local %q", p.Name, a.Name))
			}
			word = p.sharedLen + pid*p.localLen + info.off
		} else {
			info, ok := p.sharedInfo[a.Name]
			if !ok {
				panic(fmt.Sprintf("gcl: %s: unknown shared variable %q", p.Name, a.Name))
			}
			idx := 0
			if a.Idx.defined() {
				idx = int(a.Idx.f(&c))
			}
			if idx < 0 || idx >= info.size {
				panic(fmt.Sprintf("gcl: %s: index %d out of range for %q", p.Name, idx, a.Name))
			}
			word = info.off + idx
			if p.M > 0 && int64(v) > p.M {
				overflow = true
				if mode == ModeWrap {
					v = int32(int64(v) % (p.M + 1))
				}
			}
		}
		writes = append(writes, write{word, v})
	}
	next := p.Clone(s)
	for _, w := range writes {
		next[w.word] = w.val
	}
	p.SetPC(next, pid, p.labelIdx[b.Next])
	return next, overflow
}

// CrashSucc returns the state after process pid crashes and restarts per the
// paper's correctness conditions 3–4: the process goes to its noncritical
// section (the first label), its locals return to their initial values, and
// its cells of every owned shared array read 0 (their initial values).
// Shared variables not marked Own are left untouched — the crash model only
// resets memory the process itself owns.
func (p *Prog) CrashSucc(s State, pid int) State {
	next := p.Clone(s)
	p.SetPC(next, pid, 0)
	for _, d := range p.locals {
		p.SetLocal(next, pid, d.Name, d.Init)
	}
	for name := range p.owned {
		info := p.sharedInfo[name]
		next[info.off+pid] = info.init
	}
	return next
}
