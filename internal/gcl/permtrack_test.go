package gcl

import (
	"testing"
)

// permProg builds a small fully-symmetric program with a pid-indexed array
// and a scan cursor, the bakery-family shape the permutation API serves.
func permProg(t *testing.T, n int) *Prog {
	t.Helper()
	p := New("permtrack", n)
	p.SharedArray("number", n, 0)
	p.Own("number")
	p.LocalVar("j", 0)
	p.SetSymmetry(FullSymmetry)
	p.PidLocal("j", "scan")
	p.Label("ncs", Goto("scan", SetL("j", C(0))))
	p.Label("scan",
		Br(Lt(L("j"), C(n)), "scan", SetL("j", Add(L("j"), C(1)))),
		Br(Ge(L("j"), C(n)), "bump"),
	)
	p.Label("bump", Goto("ncs", SetSelf("number", Add(ShSelf("number"), C(1)))))
	p.MustBuild()
	return p
}

// The permutation table is ranked lexicographically with the identity at
// index 0, PermIndexOf inverts PermAt, and inversion/composition agree
// with the array-level definitions.
func TestPermIndexRoundTrip(t *testing.T) {
	p := permProg(t, 4)
	n := p.NumPerms()
	if n != 24 {
		t.Fatalf("NumPerms = %d, want 24", n)
	}
	for i := 0; i < n; i++ {
		perm := p.PermAt(i)
		if got := p.PermIndexOf(perm); got != i {
			t.Fatalf("PermIndexOf(PermAt(%d)) = %d", i, got)
		}
		inv := p.InvPermAt(i)
		for k := range perm {
			if inv[perm[k]] != k {
				t.Fatalf("InvPermAt(%d) is not the inverse of PermAt(%d)", i, i)
			}
		}
		if got := p.ComposePermIndex(p.InvPermIndex(i), i); got != 0 {
			t.Fatalf("inv(%d) ∘ %d = %d, want identity (0)", i, i, got)
		}
	}
	id := p.PermAt(0)
	for k, v := range id {
		if v != k {
			t.Fatalf("PermAt(0) = %v, want identity", id)
		}
	}
}

// ComposePermIndex applies its second argument first: (a∘b)(i) = a(b(i)).
func TestComposePermIndexOrder(t *testing.T) {
	p := permProg(t, 3)
	a := p.PermIndexOf([]int{1, 2, 0})
	b := p.PermIndexOf([]int{0, 2, 1})
	got := p.PermAt(p.ComposePermIndex(a, b))
	want := []int{1, 0, 2} // i -> a(b(i)): 0->a(0)=1, 1->a(2)=0, 2->a(1)=2
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("a∘b = %v, want %v", got, want)
		}
	}
}

// CanonicalizeWithPerm's witness ranks consistently with the table: the
// canonical state equals Permute(NormalizeCursors(s), PermAt(rank)).
func TestCanonicalPermRanks(t *testing.T) {
	p := permProg(t, 3)
	s := p.InitState()
	p.SetShared(s, "number", 0, 2)
	p.SetShared(s, "number", 2, 1)
	p.SetPC(s, 1, p.LabelIndex("scan"))
	p.SetLocal(s, 1, "j", 1)
	c, perm := p.CanonicalizeWithPerm(s)
	img := p.Permute(p.NormalizeCursors(s), p.PermAt(p.PermIndexOf(perm)))
	if !c.Equal(img) {
		t.Fatalf("canonical %v != permuted image %v", c, img)
	}
}

// Pinned canonicalization is invariant under valid permutations that fix
// the pinned pids, and leaves the pinned pids' columns in place.
func TestCanonicalizePinned(t *testing.T) {
	p := permProg(t, 4)
	s := p.InitState()
	p.SetShared(s, "number", 0, 3)
	p.SetShared(s, "number", 1, 1)
	p.SetShared(s, "number", 2, 2)
	p.SetShared(s, "number", 3, 1)
	pinned := []int{1}

	base := p.CanonicalizePinned(s, pinned)
	if got := p.Shared(base, "number", 1); got != 1 {
		t.Fatalf("pinned pid's cell moved: number[1] = %d, want 1", got)
	}
	// Every permutation fixing pid 1 (no cursors active here, so all are
	// prefix-valid) must canonicalize to the same representative.
	for i := 0; i < p.NumPerms(); i++ {
		perm := p.PermAt(i)
		if perm[1] != 1 {
			continue
		}
		img := p.Permute(s, perm)
		if got := p.CanonicalizePinned(img, pinned); !got.Equal(base) {
			t.Fatalf("perm %v: pinned canonical %v != %v", perm, got, base)
		}
	}
	// A permutation moving the pinned pid generally lands elsewhere.
	moved := p.Permute(s, []int{1, 0, 2, 3})
	if got := p.CanonicalizePinned(moved, pinned); got.Equal(base) {
		t.Fatal("moving the pinned pid should change the pinned representative here")
	}

	// Pinning every pid degrades to cursor normalization only.
	all := p.CanonicalizePinned(s, []int{0, 1, 2, 3})
	if !all.Equal(p.NormalizeCursors(s)) {
		t.Fatalf("all-pinned canonical %v != normalized state", all)
	}
}

// Pinned canonicalization still respects scan-cursor prefixes: an active
// cursor restricts the group to prefix-preserving permutations exactly as
// in the unpinned path.
func TestCanonicalizePinnedRespectsCursors(t *testing.T) {
	p := permProg(t, 4)
	s := p.InitState()
	p.SetShared(s, "number", 2, 5)
	p.SetShared(s, "number", 3, 1)
	p.SetPC(s, 0, p.LabelIndex("scan"))
	p.SetLocal(s, 0, "j", 2) // pid 0 has visited {0,1}
	c := p.CanonicalizePinned(s, []int{0})
	// The witnessing permutation must preserve {0,1} as a set and fix 0,
	// so slots 2 and 3 may swap but 5 can never land in slots 0/1.
	if p.Shared(c, "number", 0) == 5 || p.Shared(c, "number", 1) == 5 {
		t.Fatalf("prefix violated: %v", c)
	}
	if p.Shared(c, "number", 2) != 1 || p.Shared(c, "number", 3) != 5 {
		t.Fatalf("slots 2,3 should sort to (1,5): %v", c)
	}
}
