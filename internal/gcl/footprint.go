package gcl

// Static per-action footprints and the independence (commutation) relation
// over process actions. Every expression constructor (expr.go) records the
// shared cells it may read, so Build can derive, for each labelled branch,
// a conservative read set (guard + effect right-hand sides + computed
// indices) and write set (effect targets) over the shared variables. Two
// actions of *different* processes are independent when neither's write
// set can touch the other's read or write set: independent actions commute
// as state transformers and cannot enable or disable one another, which is
// exactly the relation ample-set partial-order reduction (internal/mc)
// needs. Per-process state (pc and locals) never enters the footprints —
// the language has no cross-process local access, so blocks of distinct
// pids are disjoint by construction.
//
// The abstraction is deliberately coarse: an index that is not a constant
// or Self() widens to "any cell" (the bakery trial loop's number[j] read,
// the MaxSh scan). Coarseness is always in the safe direction — a reported
// conflict may be spurious, reported independence is real (the oracle test
// in footprint_test.go executes both orders of independent pairs and
// asserts identical results).

// Cells abstracts which cells of one shared variable an action may touch,
// as a function of the executing process id: the process's own cell
// (Self), fixed indices (Idx), or any cell at all (All, the widening for
// computed indices).
type Cells struct {
	Self bool
	All  bool
	Idx  []int // distinct constant indices
}

// clone returns an independent copy.
func (c *Cells) clone() *Cells {
	if c == nil {
		return nil
	}
	out := &Cells{Self: c.Self, All: c.All}
	out.Idx = append(out.Idx, c.Idx...)
	return out
}

// mergeInto widens dst to also cover c.
func (c *Cells) mergeInto(dst *Cells) {
	if c == nil {
		return
	}
	dst.Self = dst.Self || c.Self
	dst.All = dst.All || c.All
	for _, k := range c.Idx {
		dst.addIdx(k)
	}
}

func (c *Cells) addIdx(k int) {
	for _, have := range c.Idx {
		if have == k {
			return
		}
	}
	c.Idx = append(c.Idx, k)
}

// overlaps reports whether the cells touched when executed by pid pa can
// intersect b's cells when executed by pid pb. All is conservative: any
// non-nil opposite set overlaps it.
func (c *Cells) overlaps(pa int, b *Cells, pb int) bool {
	if c == nil || b == nil {
		return false
	}
	if c.All || b.All {
		return true
	}
	on := func(s *Cells, pid, k int) bool {
		if s.Self && pid == k {
			return true
		}
		for _, i := range s.Idx {
			if i == k {
				return true
			}
		}
		return false
	}
	if c.Self && on(b, pb, pa) {
		return true
	}
	for _, k := range c.Idx {
		if on(b, pb, k) {
			return true
		}
	}
	return false
}

// cellMap maps shared variable names to the cells touched.
type cellMap map[string]*Cells

// add widens m to also cover cells of name, returning the (possibly newly
// allocated) map. The Cells value is cloned, never aliased.
func (m cellMap) add(name string, c *Cells) cellMap {
	if c == nil {
		return m
	}
	if m == nil {
		m = cellMap{}
	}
	if have, ok := m[name]; ok {
		c.mergeInto(have)
	} else {
		m[name] = c.clone()
	}
	return m
}

// mergeAll widens m by every entry of o.
func (m cellMap) mergeAll(o cellMap) cellMap {
	for name, c := range o {
		m = m.add(name, c)
	}
	return m
}

// conflictsWith reports a possible common cell between the two maps for
// the given executing pids.
func (m cellMap) conflictsWith(pa int, o cellMap, pb int) bool {
	for name, c := range m {
		if c.overlaps(pa, o[name], pb) {
			return true
		}
	}
	return false
}

// mergeReads unions the shared-read footprints of the operand expressions
// into a freshly owned map (nil when no operand reads shared state).
func mergeReads(ops []Expr) cellMap {
	var out cellMap
	for _, op := range ops {
		out = out.mergeAll(op.reads)
	}
	return out
}

// indexCells abstracts the expression's value when used as an array index.
func (e Expr) indexCells() *Cells {
	switch e.shp {
	case shapeConst:
		return &Cells{Idx: []int{int(e.k)}}
	case shapeSelf:
		return &Cells{Self: true}
	default:
		return &Cells{All: true}
	}
}

// branchFoot is the resolved footprint of one branch: the shared cells its
// guard and effects may read, the shared cells its effects may write,
// whether it touches shared state at all, and whether its guard alone
// reads shared state (the enabledness of such a branch can change under
// other processes' actions, which ample-set selection must respect).
type branchFoot struct {
	reads, writes cellMap
	localOnly     bool
	guardShared   bool
}

// assignFoot folds one assignment into the branch footprint maps.
func assignFoot(a Assign, reads, writes cellMap) (cellMap, cellMap) {
	reads = reads.mergeAll(a.Val.reads)
	if a.Local {
		return reads, writes
	}
	if a.Idx.defined() {
		reads = reads.mergeAll(a.Idx.reads)
		writes = writes.add(a.Name, a.Idx.indexCells())
	} else {
		writes = writes.add(a.Name, &Cells{Idx: []int{0}})
	}
	return reads, writes
}

// buildFootprints resolves per-branch footprints; called from Build.
func (p *Prog) buildFootprints() {
	p.foot = make([][]branchFoot, len(p.branches))
	for li, brs := range p.branches {
		p.foot[li] = make([]branchFoot, len(brs))
		for bi, b := range brs {
			var f branchFoot
			if b.Guard.defined() {
				f.reads = f.reads.mergeAll(b.Guard.reads)
				f.guardShared = len(b.Guard.reads) > 0
			}
			for _, a := range b.Eff {
				f.reads, f.writes = assignFoot(a, f.reads, f.writes)
			}
			f.localOnly = len(f.reads) == 0 && len(f.writes) == 0
			p.foot[li][bi] = f
		}
	}
}

// BranchLocalOnly reports whether branch bi of label li neither reads nor
// writes any shared variable: its guard consults only the executing
// process's locals and its effects update only them (and the pc). Such an
// action is independent of every action of every other process. Must be
// called after Build.
func (p *Prog) BranchLocalOnly(li, bi int) bool {
	return p.foot[li][bi].localOnly
}

// BranchGuardReadsShared reports whether the guard of branch bi of label
// li reads any shared variable. While a process sits at the label, the
// enabledness of such a branch can flip under other processes' writes; a
// branch whose guard reads only the process's own locals stays enabled or
// disabled until the process itself moves. Must be called after Build.
func (p *Prog) BranchGuardReadsShared(li, bi int) bool {
	return p.foot[li][bi].guardShared
}

// BranchNext returns the label index branch bi of label li jumps to.
func (p *Prog) BranchNext(li, bi int) int {
	return p.labelIdx[p.branches[li][bi].Next]
}

// NumBranchesAt returns how many branches label li declares.
func (p *Prog) NumBranchesAt(li int) int { return len(p.branches[li]) }

// BranchReads returns the abstract cells of shared variable name that
// branch bi of label li may read (guard, effect right-hand sides, computed
// indices), or nil when it cannot read the variable. The result is a copy.
func (p *Prog) BranchReads(li, bi int, name string) *Cells {
	return p.foot[li][bi].reads[name].clone()
}

// BranchWrites returns the abstract cells of shared variable name that
// branch bi of label li may write, or nil. The result is a copy.
func (p *Prog) BranchWrites(li, bi int, name string) *Cells {
	return p.foot[li][bi].writes[name].clone()
}

// ActionsIndependent reports whether the actions "pidA takes branch ba of
// label la" and "pidB takes branch bb of label lb" are independent: for
// pidA != pidB, neither action's shared writes can touch a cell the other
// reads or writes, so executed from any state where both are enabled they
// commute to the same state (with the same overflow accounting) and
// neither enables or disables the other. Actions of one and the same
// process are never independent (they serialise on that process's pc).
// The relation is conservative: false may mean "unknown". Must be called
// after Build.
func (p *Prog) ActionsIndependent(pidA, la, ba, pidB, lb, bb int) bool {
	if pidA == pidB {
		return false
	}
	fa, fb := &p.foot[la][ba], &p.foot[lb][bb]
	if fa.writes.conflictsWith(pidA, fb.reads, pidB) ||
		fa.writes.conflictsWith(pidA, fb.writes, pidB) ||
		fb.writes.conflictsWith(pidB, fa.reads, pidA) {
		return false
	}
	return true
}
