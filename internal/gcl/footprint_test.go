package gcl

// Tests for the static footprint layer and the independence relation: the
// classification of branch read/write sets on the bakery-family shapes,
// the local-only predicate partial-order reduction selects ample processes
// by, and a commutation oracle that executes both orders of every
// statically-independent enabled pair over thousands of reachable states
// and asserts the outcomes are identical.

import "testing"

// bakeryLike builds the classic bakery control skeleton used across the
// footprint tests (a local copy so the tests do not depend on
// internal/specs, which would be an import cycle).
func bakeryLike(n, m int) *Prog {
	p := New("bakery-like", n)
	p.SetM(int64(m))
	p.SharedArray("choosing", n, 0)
	p.SharedArray("number", n, 0)
	p.Own("choosing")
	p.Own("number")
	p.LocalVar("j", 0)

	j := L("j")
	numJ := ShI("number", j)
	numI := ShSelf("number")
	p.Label("ncs", Goto("ch1").WithTag("try"))
	p.Label("ch1", Goto("ch2", SetSelf("choosing", C(1))))
	p.Label("ch2", Goto("ch3", SetSelf("number", Add(C(1), MaxSh("number")))))
	p.Label("ch3", Goto("t1", SetSelf("choosing", C(0)), SetL("j", C(0))))
	p.Label("t1",
		Br(Ge(j, C(n)), "cs").WithTag("cs-enter"),
		Br(Lt(j, C(n)), "t2"),
	)
	p.Label("t2", Br(Eq(ShI("choosing", j), C(0)), "t3"))
	p.Label("t3", Br(Or(
		Eq(numJ, C(0)),
		Not(LexLt(numJ, j, numI, Self())),
	), "t4"))
	p.Label("t4", Goto("t1", SetL("j", Add(j, C(1)))))
	p.Label("cs", Goto("ncs", SetSelf("number", C(0))).WithTag("cs-exit"))
	return p.MustBuild()
}

func TestBranchFootprintClassification(t *testing.T) {
	p := bakeryLike(3, 4)
	li := p.LabelIndex

	// ch2 writes the process's own number cell and reads the whole array.
	if w := p.BranchWrites(li("ch2"), 0, "number"); w == nil || !w.Self || w.All {
		t.Fatalf("ch2 writes(number) = %+v, want Self", w)
	}
	if r := p.BranchReads(li("ch2"), 0, "number"); r == nil || !r.All {
		t.Fatalf("ch2 reads(number) = %+v, want All (MaxSh scan)", r)
	}
	// ch1 writes only choosing[self] and reads nothing shared.
	if w := p.BranchWrites(li("ch1"), 0, "choosing"); w == nil || !w.Self {
		t.Fatalf("ch1 writes(choosing) = %+v, want Self", w)
	}
	if r := p.BranchReads(li("ch1"), 0, "choosing"); r != nil {
		t.Fatalf("ch1 reads(choosing) = %+v, want nil", r)
	}
	// t3's guard reads number through a computed index (the cursor j), so
	// the read widens to All; its own cell read stays visible too.
	if r := p.BranchReads(li("t3"), 0, "number"); r == nil || !r.All {
		t.Fatalf("t3 reads(number) = %+v, want All (cursor-indexed)", r)
	}
	// t2 reads choosing through the cursor.
	if r := p.BranchReads(li("t2"), 0, "choosing"); r == nil || !r.All {
		t.Fatalf("t2 reads(choosing) = %+v, want All", r)
	}
	if w := p.BranchWrites(li("t2"), 0, "choosing"); w != nil {
		t.Fatalf("t2 writes(choosing) = %+v, want nil", w)
	}
}

func TestBranchLocalOnly(t *testing.T) {
	p := bakeryLike(3, 4)
	want := map[string][]bool{
		"ncs": {true},
		"ch1": {false},
		"ch2": {false},
		"ch3": {false},
		"t1":  {true, true}, // both branches move only the pc / read only j
		"t2":  {false},
		"t3":  {false},
		"t4":  {true},
		"cs":  {false},
	}
	for label, branches := range want {
		li := p.LabelIndex(label)
		if got := p.NumBranchesAt(li); got != len(branches) {
			t.Fatalf("%s: %d branches, want %d", label, got, len(branches))
		}
		for bi, w := range branches {
			if got := p.BranchLocalOnly(li, bi); got != w {
				t.Errorf("BranchLocalOnly(%s, %d) = %v, want %v", label, bi, got, w)
			}
		}
	}
}

func TestBranchNext(t *testing.T) {
	p := bakeryLike(2, 2)
	if got := p.BranchNext(p.LabelIndex("t1"), 0); got != p.LabelIndex("cs") {
		t.Fatalf("t1 branch 0 target = %d, want cs", got)
	}
	if got := p.BranchNext(p.LabelIndex("t1"), 1); got != p.LabelIndex("t2") {
		t.Fatalf("t1 branch 1 target = %d, want t2", got)
	}
}

func TestActionsIndependent(t *testing.T) {
	p := bakeryLike(3, 4)
	li := p.LabelIndex
	cases := []struct {
		name           string
		la, ba, lb, bb int
		pa, pb         int
		want           bool
	}{
		// Pure-local steps of distinct processes always commute.
		{"t4 vs t4", li("t4"), 0, li("t4"), 0, 0, 1, true},
		{"ncs vs t1", li("ncs"), 0, li("t1"), 1, 0, 2, true},
		// Writes to distinct own cells, no shared reads: independent.
		{"ch1 vs ch1", li("ch1"), 0, li("ch1"), 0, 0, 1, true},
		// A write to choosing[0] vs a cursor-indexed read of choosing.
		{"ch1 vs t2", li("ch1"), 0, li("t2"), 0, 0, 1, false},
		// The MaxSh scan reads every number cell; ch2 also writes one.
		{"ch2 vs ch2", li("ch2"), 0, li("ch2"), 0, 0, 1, false},
		{"ch2 vs cs", li("ch2"), 0, li("cs"), 0, 0, 1, false},
		// ch1 writes choosing only; ch2 touches number only. Disjoint.
		{"ch1 vs ch2", li("ch1"), 0, li("ch2"), 0, 0, 1, true},
		// Same process never independent, even on pure-local branches.
		{"same pid", li("t4"), 0, li("t4"), 0, 1, 1, false},
	}
	for _, tc := range cases {
		if got := p.ActionsIndependent(tc.pa, tc.la, tc.ba, tc.pb, tc.lb, tc.bb); got != tc.want {
			t.Errorf("%s (pids %d,%d): independent = %v, want %v", tc.name, tc.pa, tc.pb, got, tc.want)
		}
		// The relation is symmetric by definition.
		if got := p.ActionsIndependent(tc.pb, tc.lb, tc.bb, tc.pa, tc.la, tc.ba); got != tc.want {
			t.Errorf("%s reversed: independence not symmetric", tc.name)
		}
	}
}

// TestCommutationOracle is the soundness oracle for the independence
// relation: over a bounded BFS of reachable states, every pair of enabled
// successors of different processes that the relation declares independent
// must (a) commute — executing the two actions in either order reaches the
// same state with the same overflow flags — and (b) preserve each other's
// enabledness, i.e. the second action is still available (same label,
// branch, and pid) after the first.
func TestCommutationOracle(t *testing.T) {
	progs := []*Prog{
		bakeryLike(3, 3),
		bakeryLike(2, 2),
	}
	const maxStates = 4000
	for _, p := range progs {
		t.Run(p.Name, func(t *testing.T) {
			checked := 0
			queue := []State{p.InitState()}
			seen := map[string]bool{p.Key(queue[0]): true}
			for head := 0; head < len(queue) && len(queue) < maxStates; head++ {
				s := queue[head]
				succs := p.AllSuccs(s, ModeUnbounded)
				for _, sc := range succs {
					if k := p.Key(sc.State); !seen[k] {
						seen[k] = true
						queue = append(queue, sc.State)
					}
				}
				for i := 0; i < len(succs); i++ {
					for k := i + 1; k < len(succs); k++ {
						a, b := succs[i], succs[k]
						if a.Pid == b.Pid {
							continue
						}
						la, lb := int(a.LabelIdx), int(b.LabelIdx)
						if !p.ActionsIndependent(a.Pid, la, a.Branch, b.Pid, lb, b.Branch) {
							continue
						}
						ab, okAB := execBranch(p, a.State, b)
						ba, okBA := execBranch(p, b.State, a)
						if !okAB || !okBA {
							t.Fatalf("independent pair disabled the partner: p%d:%s/%d then p%d:%s/%d (okAB=%v okBA=%v)\nstate: %s",
								a.Pid, a.Label(p), a.Branch, b.Pid, b.Label(p), b.Branch, okAB, okBA, p.Format(s))
						}
						if !ab.State.Equal(ba.State) {
							t.Fatalf("independent pair does not commute: p%d:%s/%d, p%d:%s/%d\nstate: %s\na;b: %s\nb;a: %s",
								a.Pid, a.Label(p), a.Branch, b.Pid, b.Label(p), b.Branch,
								p.Format(s), p.Format(ab.State), p.Format(ba.State))
						}
						if ab.Overflow != b.Overflow || ba.Overflow != a.Overflow {
							t.Fatalf("independent partner changed an action's overflow accounting")
						}
						checked++
					}
				}
			}
			if checked == 0 {
				t.Fatal("oracle exercised no independent pairs")
			}
			t.Logf("%s: %d independent pairs commuted over %d states", p.Name, checked, len(queue))
		})
	}
}

// execBranch executes, from state s, the same action succ records (pid,
// label, branch), reporting whether it is still enabled.
func execBranch(p *Prog, s State, succ Succ) (Succ, bool) {
	for _, sc := range p.Succs(s, succ.Pid, ModeUnbounded, nil) {
		if sc.LabelIdx == succ.LabelIdx && sc.Branch == succ.Branch {
			return sc, true
		}
	}
	return Succ{}, false
}
