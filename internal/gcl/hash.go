package gcl

// State hashing for the model checker's visited sets (hash v2). The
// sequential engine keys its flat visited table on this 64-bit fingerprint
// and resolves the rare collisions by comparing full state vectors (Equal),
// as does the parallel engine's sharded store — so the fingerprint needs
// good dispersion but not injectivity.
//
// v2 replaces the original byte-at-a-time FNV-1a (four multiplies per int32
// word) with a word-wise multiply-xor chain: two consecutive int32 words
// pack into one 64-bit lane, each lane costs a single multiply by a dense
// odd constant, and a murmur-style finalizer avalanches the result so that
// the low bits used for table indexing depend on every input word. The
// chain is a bijection of the running hash per lane (xor and odd-multiply
// are both invertible), which preserves FNV's collision structure while
// cutting the per-word cost roughly 8x. Fingerprint values therefore
// differ from pre-v2 releases; nothing durable pins the old values — the
// determinism and store-conformance suites compare run against run.

const (
	// fnvOffset64 is retained from v1 as the offset basis.
	fnvOffset64 = 14695981039346656037
	// fpLanePrime is the dense odd multiplier absorbed per 64-bit lane
	// (2^64 / golden ratio, the Fibonacci-hashing constant).
	fpLanePrime = 0x9e3779b97f4a7c15
)

// fpMix is the 64-bit murmur3 finalizer: a full-avalanche bijection, so
// truncating the result for bucket indices loses dispersion nowhere.
func fpMix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// fpAbsorb folds the state vector into h, two int32 words per multiply,
// with a lone low-half lane for odd lengths, and finalizes.
func fpAbsorb(h uint64, s State) uint64 {
	n := len(s)
	i := 0
	for ; i+1 < n; i += 2 {
		lane := uint64(uint32(s[i])) | uint64(uint32(s[i+1]))<<32
		h = (h ^ lane) * fpLanePrime
	}
	if i < n {
		h = (h ^ uint64(uint32(s[i]))) * fpLanePrime
	}
	return fpMix(h)
}

// Fingerprint returns a 64-bit hash of the state vector. Equal states
// always hash equally; distinct states may collide, so callers that need
// exact identity must confirm a hit with a full comparison (see Equal).
func (s State) Fingerprint() uint64 {
	return fpAbsorb(fnvOffset64, s)
}

// FingerprintSeeded returns a 64-bit hash of the state vector whose offset
// basis is perturbed by seed, giving a family of independent-enough hash
// functions for the lossy visited-set modes (internal/mc's compact and
// bitstate stores): the 128-bit compact key pairs Fingerprint with a
// fixed-seed second word, and per-run seeds let validation runs re-roll the
// collision dice. The seed-spreading structure is unchanged from v1: a
// splitmix64 finalizer diffuses the seed across the offset basis so related
// seeds (0, 1, 2, …) give unrelated hash functions, and seed 0 is NOT
// Fingerprint.
func (s State) FingerprintSeeded(seed uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return fpAbsorb(fnvOffset64^z, s)
}

// Fingerprint128 returns a 128-bit fingerprint: the plain Fingerprint as
// the low word and a fixed-seed FingerprintSeeded as the high word. The
// compact store's 128-bit mode keys on both words, pushing the birthday
// bound far below any reachable state count.
func (s State) Fingerprint128() (lo, hi uint64) {
	return s.Fingerprint(), s.FingerprintSeeded(0x243f6a8885a308d3)
}

// Equal reports whether two states are word-for-word identical.
func (s State) Equal(t State) bool {
	if len(s) != len(t) {
		return false
	}
	for i, v := range s {
		if v != t[i] {
			return false
		}
	}
	return true
}
