package gcl

// State hashing for the model checker's visited sets. The sequential engine
// keys its map on the exact byte encoding produced by Prog.Key; the parallel
// engine (internal/mc) shards its visited set on this 64-bit fingerprint and
// resolves the rare collisions by comparing full state vectors, so the
// fingerprint needs good dispersion but not injectivity.

// FNV-1a parameters (64 bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Fingerprint returns a 64-bit FNV-1a hash of the state vector. Equal states
// always hash equally; distinct states may collide, so callers that need
// exact identity must confirm a hit with a full comparison (see Equal).
func (s State) Fingerprint() uint64 {
	h := uint64(fnvOffset64)
	for _, v := range s {
		u := uint32(v)
		h = (h ^ uint64(u&0xff)) * fnvPrime64
		h = (h ^ uint64((u>>8)&0xff)) * fnvPrime64
		h = (h ^ uint64((u>>16)&0xff)) * fnvPrime64
		h = (h ^ uint64(u>>24)) * fnvPrime64
	}
	return h
}

// FingerprintSeeded returns a 64-bit FNV-1a hash of the state vector whose
// offset basis is perturbed by seed, giving a family of independent-enough
// hash functions for the lossy visited-set modes (internal/mc's compact and
// bitstate stores): the 128-bit compact key pairs Fingerprint with a
// fixed-seed second word, and per-run seeds let validation runs re-roll the
// collision dice. Seed 0 is NOT Fingerprint (the mixing constant below
// keeps even seed 0 independent of the unseeded hash).
func (s State) FingerprintSeeded(seed uint64) uint64 {
	// splitmix64 finalizer spreads the seed across the offset basis so
	// related seeds (0, 1, 2, …) give unrelated hash functions.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	h := uint64(fnvOffset64) ^ z
	for _, v := range s {
		u := uint32(v)
		h = (h ^ uint64(u&0xff)) * fnvPrime64
		h = (h ^ uint64((u>>8)&0xff)) * fnvPrime64
		h = (h ^ uint64((u>>16)&0xff)) * fnvPrime64
		h = (h ^ uint64(u>>24)) * fnvPrime64
	}
	return h
}

// Fingerprint128 returns a 128-bit fingerprint: the plain Fingerprint as
// the low word and a fixed-seed FingerprintSeeded as the high word. The
// compact store's 128-bit mode keys on both words, pushing the birthday
// bound far below any reachable state count.
func (s State) Fingerprint128() (lo, hi uint64) {
	return s.Fingerprint(), s.FingerprintSeeded(0x243f6a8885a308d3)
}

// Equal reports whether two states are word-for-word identical.
func (s State) Equal(t State) bool {
	if len(s) != len(t) {
		return false
	}
	for i, v := range s {
		if v != t[i] {
			return false
		}
	}
	return true
}
