package gcl

// State hashing for the model checker's visited sets. The sequential engine
// keys its map on the exact byte encoding produced by Prog.Key; the parallel
// engine (internal/mc) shards its visited set on this 64-bit fingerprint and
// resolves the rare collisions by comparing full state vectors, so the
// fingerprint needs good dispersion but not injectivity.

// FNV-1a parameters (64 bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Fingerprint returns a 64-bit FNV-1a hash of the state vector. Equal states
// always hash equally; distinct states may collide, so callers that need
// exact identity must confirm a hit with a full comparison (see Equal).
func (s State) Fingerprint() uint64 {
	h := uint64(fnvOffset64)
	for _, v := range s {
		u := uint32(v)
		h = (h ^ uint64(u&0xff)) * fnvPrime64
		h = (h ^ uint64((u>>8)&0xff)) * fnvPrime64
		h = (h ^ uint64((u>>16)&0xff)) * fnvPrime64
		h = (h ^ uint64(u>>24)) * fnvPrime64
	}
	return h
}

// Equal reports whether two states are word-for-word identical.
func (s State) Equal(t State) bool {
	if len(s) != len(t) {
		return false
	}
	for i, v := range s {
		if v != t[i] {
			return false
		}
	}
	return true
}
