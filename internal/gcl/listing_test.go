package gcl

import (
	"strings"
	"testing"
)

func listingProg() *Prog {
	p := New("demo", 2)
	p.SetM(3)
	p.SharedArray("number", 2, 0)
	p.SharedVar("color", 1)
	p.Own("number")
	p.LocalVar("j", 0)
	p.Label("ncs", Goto("w").WithTag("try"))
	p.Label("w", Br(Eq(Sh("color"), C(0)), "ncs", SetL("j", C(0))))
	return p.MustBuild()
}

func TestBranchesAt(t *testing.T) {
	p := listingProg()
	ncs := p.BranchesAt("ncs")
	if len(ncs) != 1 {
		t.Fatalf("ncs branches = %d", len(ncs))
	}
	if ncs[0].Guarded || ncs[0].Next != "w" || ncs[0].Tag != "try" || ncs[0].Assigns != 0 {
		t.Errorf("ncs branch info = %+v", ncs[0])
	}
	w := p.BranchesAt("w")
	if !w[0].Guarded || w[0].Assigns != 1 {
		t.Errorf("w branch info = %+v", w[0])
	}
}

func TestListingContents(t *testing.T) {
	out := listingProg().Listing()
	for _, want := range []string{
		"program demo: N=2, M=3",
		"shared number[2] = 0 (owned)",
		"shared color = 1",
		"local  j = 0",
		"ncs:",
		"[try]",
		"when <guard>",
		"always",
		"-> w",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Listing missing %q:\n%s", want, out)
		}
	}
}

func TestListingCoversAllLabels(t *testing.T) {
	p := listingProg()
	out := p.Listing()
	for _, label := range p.Labels() {
		if !strings.Contains(out, label+":") {
			t.Errorf("label %s missing from listing", label)
		}
	}
}
