package gcl

import "testing"

func benchProg(n int) *Prog {
	p := New("bench", n)
	p.SetM(7)
	p.SharedArray("number", n, 0)
	p.Own("number")
	p.LocalVar("j", 0)
	p.Label("a", Goto("b",
		SetSelf("number", Add(MaxSh("number"), C(1))),
		SetL("j", C(0))))
	p.Label("b", Br(Lt(L("j"), C(n)), "c"), Br(Ge(L("j"), C(n)), "d"))
	p.Label("c", Goto("b", SetL("j", Add(L("j"), C(1)))))
	p.Label("d", Goto("a", SetSelf("number", C(0))))
	return p.MustBuild()
}

func BenchmarkAllSuccs(b *testing.B) {
	p := benchProg(4)
	s := p.InitState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		succs := p.AllSuccs(s, ModeUnbounded)
		s = succs[i%len(succs)].State
		if p.Shared(s, "number", 0) > 6 {
			s = p.InitState()
		}
	}
}

func BenchmarkKey(b *testing.B) {
	p := benchProg(8)
	s := p.InitState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Key(s)
	}
}

func BenchmarkCrashSucc(b *testing.B) {
	p := benchProg(4)
	s := p.InitState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.CrashSucc(s, i%4)
	}
}

func BenchmarkGuardEval(b *testing.B) {
	p := benchProg(4)
	s := p.InitState()
	guard := AndN(4, func(q int) Expr {
		return Lt(ShI("number", C(q)), C(7))
	})
	c := &Ctx{P: p, S: s, Pid: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = guard.Eval(c)
	}
}
