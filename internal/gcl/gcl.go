// Package gcl implements a small guarded-command language for specifying
// shared-memory mutual-exclusion algorithms at the same abstraction level as
// the paper's PlusCal specifications: a program is a set of labelled atomic
// actions over shared and per-process integer variables, and an execution is
// an arbitrary interleaving of enabled actions of N cyclic processes.
//
// One label corresponds to one atomic step, exactly as a PlusCal label does.
// Busy-wait loops such as the paper's
//
//	L2: if choosing[j] != 0 then goto L2
//
// are modelled as guarded actions that are simply not enabled until the
// guard holds — the standard TLA+ encoding, which keeps the state space free
// of self-loop noise while preserving all observable behaviours.
//
// The same program objects drive both the explicit-state model checker
// (internal/mc, the repository's TLC analog) and the controlled-interleaving
// simulator (internal/sched).
package gcl

import (
	"fmt"
	"sort"
	"sync"
)

// VarDecl declares a variable. Size 1 declares a scalar; Size > 1 declares
// an array indexed 0..Size-1. Every cell starts at Init.
type VarDecl struct {
	Name string
	Size int
	Init int32
}

// varInfo is the resolved layout of a declared variable.
type varInfo struct {
	off  int
	size int
	init int32
}

// State is a flat vector of variable values: first all shared cells, then
// for each process a block of [pc, locals...]. States are value-like; use
// Prog.Clone before mutating a state you do not own.
type State []int32

// Prog is a guarded-command program for N processes. Zero value is not
// usable; construct with New, declare variables and labels, then call
// MustBuild (or Build) before generating successors.
type Prog struct {
	Name string
	// N is the number of processes, with ids 0..N-1.
	N int
	// M is the register capacity used for overflow accounting on shared
	// variables: storing a value > M is an overflow (paper Section 3).
	// M <= 0 means unbounded ideal registers.
	M int64

	built    bool
	shared   []VarDecl
	locals   []VarDecl
	owned    map[string]bool
	labels   []string
	labelIdx map[string]int
	branches [][]Branch
	// foot holds the per-branch shared-footprint analysis backing the
	// independence relation; see footprint.go.
	foot [][]branchFoot
	// reff and nextPC are the Build-time resolution of every branch's
	// effect list and jump target: assignment names become word offsets and
	// label names become indices once, so the successor hot loop performs
	// no map lookups (see step.go).
	reff   [][][]resEff
	nextPC [][]int32
	// crashLocals and crashOwned are the Build-time resolution of the
	// crash-restart rule, so CrashSuccInto performs no map lookups: each
	// entry is one word a crash rewrites — locals relative to the crashed
	// process's block, owned cells as array base + pid.
	crashLocals []resetCell
	crashOwned  []resetCell

	sharedInfo map[string]varInfo
	localInfo  map[string]varInfo
	sharedLen  int
	localLen   int // size of one per-process block, pc at offset 0

	// Process-symmetry declarations and canonicalization support; see
	// symmetry.go.
	sym          Symmetry
	pidIndexed   map[string]bool
	pidLocals    map[string][]string // cursor name -> labels it is live at
	pidArrayOffs []int               // offsets of pid-indexed arrays, declaration order
	pidLocalOffs []int               // block offsets of pid scan cursors
	cursorLive   []uint32            // per-label cursor-liveness bitsets
	permsOnce    sync.Once
	perms        [][]int
	invPerms     [][]int
	prefMasks    []uint32
	fixMasks     []uint32
	invIdx       []int32
	canonPool    sync.Pool
}

// resetCell is one word a crash restart rewrites.
type resetCell struct {
	off  int
	init int32
}

// New returns an empty program for n >= 1 processes.
func New(name string, n int) *Prog {
	if n < 1 {
		panic("gcl: need at least one process")
	}
	return &Prog{
		Name:     name,
		N:        n,
		owned:    map[string]bool{},
		labelIdx: map[string]int{},
	}
}

// SetM declares the register capacity M for overflow accounting.
func (p *Prog) SetM(m int64) { p.M = m }

// SharedVar declares a shared scalar with the given initial value.
func (p *Prog) SharedVar(name string, init int32) {
	p.checkFresh(name)
	p.shared = append(p.shared, VarDecl{Name: name, Size: 1, Init: init})
}

// SharedArray declares a shared array of the given size.
func (p *Prog) SharedArray(name string, size int, init int32) {
	p.checkFresh(name)
	if size < 1 {
		panic("gcl: array size must be >= 1")
	}
	p.shared = append(p.shared, VarDecl{Name: name, Size: size, Init: init})
}

// LocalVar declares a per-process local with the given initial value.
func (p *Prog) LocalVar(name string, init int32) {
	p.checkFresh(name)
	p.locals = append(p.locals, VarDecl{Name: name, Size: 1, Init: init})
}

// Own marks a shared array as "owned": cell i belongs to process i and is
// reset to its initial value when process i crashes (paper correctness
// condition 4). Arrays marked Own must have size N.
func (p *Prog) Own(name string) { p.owned[name] = true }

// Label declares a labelled atomic action with one or more guarded branches.
// The first declared label is the initial pc of every process and the
// crash-restart target (the paper's noncritical section).
func (p *Prog) Label(name string, brs ...Branch) {
	if _, dup := p.labelIdx[name]; dup {
		panic(fmt.Sprintf("gcl: duplicate label %q", name))
	}
	if len(brs) == 0 {
		panic(fmt.Sprintf("gcl: label %q has no branches", name))
	}
	p.labelIdx[name] = len(p.labels)
	p.labels = append(p.labels, name)
	p.branches = append(p.branches, brs)
}

func (p *Prog) checkFresh(name string) {
	if p.built {
		panic("gcl: cannot declare after Build")
	}
	for _, d := range p.shared {
		if d.Name == name {
			panic(fmt.Sprintf("gcl: duplicate variable %q", name))
		}
	}
	for _, d := range p.locals {
		if d.Name == name {
			panic(fmt.Sprintf("gcl: duplicate variable %q", name))
		}
	}
}

// Build resolves the variable layout and validates all branch targets.
func (p *Prog) Build() error {
	if p.built {
		return fmt.Errorf("gcl: %s already built", p.Name)
	}
	if len(p.labels) == 0 {
		return fmt.Errorf("gcl: %s has no labels", p.Name)
	}
	p.sharedInfo = map[string]varInfo{}
	off := 0
	for _, d := range p.shared {
		p.sharedInfo[d.Name] = varInfo{off: off, size: d.Size, init: d.Init}
		off += d.Size
	}
	p.sharedLen = off

	p.localInfo = map[string]varInfo{}
	loff := 1 // slot 0 of each block is the pc
	for _, d := range p.locals {
		p.localInfo[d.Name] = varInfo{off: loff, size: 1, init: d.Init}
		loff++
	}
	p.localLen = loff

	for name := range p.owned {
		info, ok := p.sharedInfo[name]
		if !ok {
			return fmt.Errorf("gcl: %s: owned variable %q not declared shared", p.Name, name)
		}
		if info.size != p.N {
			return fmt.Errorf("gcl: %s: owned array %q must have size N=%d, has %d", p.Name, name, p.N, info.size)
		}
	}
	for li, brs := range p.branches {
		for bi, b := range brs {
			if _, ok := p.labelIdx[b.Next]; !ok {
				return fmt.Errorf("gcl: %s: label %q branch %d jumps to undeclared label %q",
					p.Name, p.labels[li], bi, b.Next)
			}
		}
	}
	if err := p.resolveEffects(); err != nil {
		return err
	}
	p.buildFootprints()
	if err := p.buildSymmetry(); err != nil {
		return err
	}
	p.built = true
	return nil
}

// MustBuild is Build that panics on error; specifications are static so an
// error is always a programming mistake.
func (p *Prog) MustBuild() *Prog {
	if err := p.Build(); err != nil {
		panic(err)
	}
	return p
}

// StateLen returns the number of int32 words in a state vector.
func (p *Prog) StateLen() int { return p.sharedLen + p.N*p.localLen }

// InitState returns the initial state: all variables at their declared
// initial values and every process at the first label.
func (p *Prog) InitState() State {
	s := make(State, p.StateLen())
	for _, d := range p.shared {
		info := p.sharedInfo[d.Name]
		for k := 0; k < info.size; k++ {
			s[info.off+k] = d.Init
		}
	}
	for pid := 0; pid < p.N; pid++ {
		base := p.sharedLen + pid*p.localLen
		s[base] = 0 // pc = first label
		for _, d := range p.locals {
			s[base+p.localInfo[d.Name].off] = d.Init
		}
	}
	return s
}

// Clone returns an independent copy of s.
func (p *Prog) Clone(s State) State {
	out := make(State, len(s))
	copy(out, s)
	return out
}

// Key encodes s into a compact string usable as a map key. Values must fit
// in 16 bits; specifications that need larger values should not be model
// checked (the simulator does not use Key).
func (p *Prog) Key(s State) string {
	buf := make([]byte, 2*len(s))
	for i, v := range s {
		if v < 0 || v > 0xffff {
			panic(fmt.Sprintf("gcl: %s: state value %d at word %d outside key range", p.Name, v, i))
		}
		buf[2*i] = byte(v)
		buf[2*i+1] = byte(v >> 8)
	}
	return string(buf)
}

// PC returns the label index of process pid.
func (p *Prog) PC(s State, pid int) int {
	return int(s[p.sharedLen+pid*p.localLen])
}

// SetPC sets the label index of process pid.
func (p *Prog) SetPC(s State, pid, pc int) {
	s[p.sharedLen+pid*p.localLen] = int32(pc)
}

// PCLabel returns the label name process pid is at.
func (p *Prog) PCLabel(s State, pid int) string {
	return p.labels[p.PC(s, pid)]
}

// LabelIndex returns the index of a label name, panicking if undeclared.
func (p *Prog) LabelIndex(name string) int {
	i, ok := p.labelIdx[name]
	if !ok {
		panic(fmt.Sprintf("gcl: %s: unknown label %q", p.Name, name))
	}
	return i
}

// HasLabel reports whether the label name is declared.
func (p *Prog) HasLabel(name string) bool {
	_, ok := p.labelIdx[name]
	return ok
}

// Labels returns the label names in declaration order.
func (p *Prog) Labels() []string { return p.labels }

// LabelName returns the name of the label with the given index — the
// rendering counterpart of Succ.LabelIdx.
func (p *Prog) LabelName(i int) string { return p.labels[i] }

// Shared returns the value of a shared variable cell. idx is ignored for
// scalars.
func (p *Prog) Shared(s State, name string, idx int) int32 {
	info, ok := p.sharedInfo[name]
	if !ok {
		panic(fmt.Sprintf("gcl: %s: unknown shared variable %q", p.Name, name))
	}
	if idx < 0 || idx >= info.size {
		panic(fmt.Sprintf("gcl: %s: index %d out of range for %q", p.Name, idx, name))
	}
	return s[info.off+idx]
}

// SetShared sets a shared variable cell, bypassing overflow accounting; it
// is intended for tests and initial-condition setup.
func (p *Prog) SetShared(s State, name string, idx int, v int32) {
	info, ok := p.sharedInfo[name]
	if !ok {
		panic(fmt.Sprintf("gcl: %s: unknown shared variable %q", p.Name, name))
	}
	if idx < 0 || idx >= info.size {
		panic(fmt.Sprintf("gcl: %s: index %d out of range for %q", p.Name, idx, name))
	}
	s[info.off+idx] = v
}

// Local returns the value of process pid's local variable.
func (p *Prog) Local(s State, pid int, name string) int32 {
	info, ok := p.localInfo[name]
	if !ok {
		panic(fmt.Sprintf("gcl: %s: unknown local variable %q", p.Name, name))
	}
	return s[p.sharedLen+pid*p.localLen+info.off]
}

// localVarInfo resolves a local variable's layout, panicking like Local.
// It backs the expression closures' offset caches (expr.go).
func (p *Prog) localVarInfo(name string) varInfo {
	info, ok := p.localInfo[name]
	if !ok {
		panic(fmt.Sprintf("gcl: %s: unknown local variable %q", p.Name, name))
	}
	return info
}

// sharedVarInfo resolves a shared variable's layout, panicking like Shared.
func (p *Prog) sharedVarInfo(name string) varInfo {
	info, ok := p.sharedInfo[name]
	if !ok {
		panic(fmt.Sprintf("gcl: %s: unknown shared variable %q", p.Name, name))
	}
	return info
}

// SetLocal sets process pid's local variable.
func (p *Prog) SetLocal(s State, pid int, name string, v int32) {
	info, ok := p.localInfo[name]
	if !ok {
		panic(fmt.Sprintf("gcl: %s: unknown local variable %q", p.Name, name))
	}
	s[p.sharedLen+pid*p.localLen+info.off] = v
}

// CountAtLabel returns how many processes are currently at the given label —
// the building block of the mutual-exclusion invariant.
func (p *Prog) CountAtLabel(s State, label string) int {
	return p.CountAtLabelIdx(s, p.LabelIndex(label))
}

// CountAtLabelIdx is CountAtLabel by label index: invariants evaluated once
// per reached state resolve the label name up front and skip the map lookup.
func (p *Prog) CountAtLabelIdx(s State, idx int) int {
	n := 0
	for pid := 0; pid < p.N; pid++ {
		if p.PC(s, pid) == idx {
			n++
		}
	}
	return n
}

// MaxShared returns the maximum value over all cells of a shared array —
// used by the no-overflow invariant.
func (p *Prog) MaxShared(s State, name string) int32 {
	info, ok := p.sharedInfo[name]
	if !ok {
		panic(fmt.Sprintf("gcl: %s: unknown shared variable %q", p.Name, name))
	}
	max := int32(0)
	for k := 0; k < info.size; k++ {
		if v := s[info.off+k]; v > max {
			max = v
		}
	}
	return max
}

// MaxAnyShared returns the maximum value over every shared register cell.
// It is the allocation-free core of the no-overflow invariant: the shared
// cells are the leading sharedLen words of the vector, so one prefix scan
// replaces the per-variable MaxShared walk (which needs name lookups).
func (p *Prog) MaxAnyShared(s State) int32 {
	max := int32(0)
	for _, v := range s[:p.sharedLen] {
		if v > max {
			max = v
		}
	}
	return max
}

// SharedNames returns the declared shared variable names, sorted.
func (p *Prog) SharedNames() []string {
	names := make([]string, 0, len(p.shared))
	for _, d := range p.shared {
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return names
}

// SharedSize returns the declared size of a shared variable.
func (p *Prog) SharedSize(name string) int {
	info, ok := p.sharedInfo[name]
	if !ok {
		panic(fmt.Sprintf("gcl: %s: unknown shared variable %q", p.Name, name))
	}
	return info.size
}

// BranchTags returns how many branches carry each statistics tag.
func (p *Prog) BranchTags() map[string]int {
	tags := map[string]int{}
	for _, brs := range p.branches {
		for _, b := range brs {
			if b.Tag != "" {
				tags[b.Tag]++
			}
		}
	}
	return tags
}

// NumBranches returns the total number of declared branches, a crude size
// measure used in the complexity comparison table (E8).
func (p *Prog) NumBranches() int {
	n := 0
	for _, brs := range p.branches {
		n += len(brs)
	}
	return n
}

// SharedCells returns the total number of shared register cells the
// algorithm uses — the space-complexity column of the E8 table.
func (p *Prog) SharedCells() int { return p.sharedLen }

// Format renders a state for human consumption in traces.
func (p *Prog) Format(s State) string {
	out := ""
	for _, d := range p.shared {
		info := p.sharedInfo[d.Name]
		if info.size == 1 {
			out += fmt.Sprintf("%s=%d ", d.Name, s[info.off])
		} else {
			out += fmt.Sprintf("%s=%v ", d.Name, []int32(s[info.off:info.off+info.size]))
		}
	}
	for pid := 0; pid < p.N; pid++ {
		out += fmt.Sprintf("p%d@%s", pid, p.labels[p.PC(s, pid)])
		for _, d := range p.locals {
			out += fmt.Sprintf(",%s=%d", d.Name, p.Local(s, pid, d.Name))
		}
		out += " "
	}
	return out[:len(out)-1]
}
