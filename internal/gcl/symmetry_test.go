package gcl

import (
	"testing"
)

// symProg builds an n-process fully-symmetric toy program: each process
// raises its flag, scans the others with cursor c (live only at the scan
// labels), then lowers the flag. It exercises owned arrays, a
// perm-invariant shared scalar, a plain local, and a scan cursor.
func symProg(n int) *Prog {
	p := New("symtoy", n)
	p.SharedArray("flag", n, 0)
	p.SharedVar("round", 0)
	p.Own("flag")
	p.LocalVar("c", 0)
	p.LocalVar("v", 0)
	p.SetSymmetry(FullSymmetry)
	p.PidLocal("c", "s1", "s2")
	c := L("c")
	p.Label("ncs", Goto("up"))
	p.Label("up", Goto("s1", SetSelf("flag", C(1)), SetL("c", C(0))))
	p.Label("s1",
		Br(Ge(c, C(n)), "down"),
		Br(Lt(c, C(n)), "s2"),
	)
	p.Label("s2", Goto("s1",
		SetL("v", Add(L("v"), ShI("flag", c))),
		SetL("c", Add(c, C(1))),
	))
	p.Label("down", Goto("ncs", SetSelf("flag", C(0)), SetL("v", C(0)), Set("round", C(1))))
	return p.MustBuild()
}

// flagProg is symProg without the cursor: pure column symmetry, so the
// sorted fast path is always taken.
func flagProg(n int) *Prog {
	p := New("flagtoy", n)
	p.SharedArray("flag", n, 0)
	p.Own("flag")
	p.SetSymmetry(FullSymmetry)
	p.Label("ncs", Goto("up"))
	p.Label("up", Goto("down", SetSelf("flag", C(1))))
	p.Label("down", Goto("ncs", SetSelf("flag", C(0))))
	return p.MustBuild()
}

// walkStates returns up to limit distinct states of p reached by a
// breadth-first walk from the initial state.
func walkStates(p *Prog, limit int) []State {
	seen := map[uint64][]State{}
	lookup := func(s State) bool {
		for _, t := range seen[s.Fingerprint()] {
			if t.Equal(s) {
				return true
			}
		}
		return false
	}
	init := p.InitState()
	states := []State{init}
	seen[init.Fingerprint()] = []State{init}
	for head := 0; head < len(states) && len(states) < limit; head++ {
		for _, sc := range p.AllSuccs(states[head], ModeUnbounded) {
			if lookup(sc.State) {
				continue
			}
			fp := sc.State.Fingerprint()
			seen[fp] = append(seen[fp], sc.State)
			states = append(states, sc.State)
			if len(states) >= limit {
				break
			}
		}
	}
	return states
}

func composePerm(a, b []int) []int {
	// (b ∘ a): apply a, then b.
	out := make([]int, len(a))
	for i := range a {
		out[i] = b[a[i]]
	}
	return out
}

func TestPermuteGroupAction(t *testing.T) {
	p := symProg(3)
	id := []int{0, 1, 2}
	a := []int{1, 2, 0}
	b := []int{2, 1, 0}
	for _, s := range walkStates(p, 200) {
		if !p.Permute(s, id).Equal(s) {
			t.Fatalf("identity permutation changed state %v", s)
		}
		lhs := p.Permute(p.Permute(s, a), b)
		rhs := p.Permute(s, composePerm(a, b))
		if !lhs.Equal(rhs) {
			t.Fatalf("permutation action does not compose: %v vs %v", lhs, rhs)
		}
	}
}

// TestCanonicalizeAgainstOracle cross-checks both canonicalization paths
// against a brute-force oracle: the lexicographically-least image of the
// normalized state over all valid permutations.
func TestCanonicalizeAgainstOracle(t *testing.T) {
	perms3, _, _, _ := allPerms(3)
	for _, tc := range []struct {
		name string
		p    *Prog
	}{
		{"cursor-prog", symProg(3)},
		{"sorted-fast-path", flagProg(3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.p
			for _, s := range walkStates(p, 400) {
				norm := p.NormalizeCursors(s)
				var best State
				for _, perm := range perms3 {
					if !p.PermValid(norm, perm) {
						continue
					}
					img := p.Permute(norm, perm)
					if best == nil || lexLess(img, best) {
						best = img
					}
				}
				got := p.Canonicalize(s)
				if !got.Equal(best) {
					t.Fatalf("canonical of %v:\n got %v\nwant %v", s, got, best)
				}
				if got.Fingerprint() != p.CanonicalFingerprint(s) {
					t.Fatal("CanonicalFingerprint disagrees with Canonicalize")
				}
			}
		})
	}
}

func lexLess(a, b State) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// TestCanonicalInvariantUnderValidPerms is the core contract: the
// canonical fingerprint does not change when a state is replaced by any
// valid permutation image of it, and canonicalization is idempotent.
func TestCanonicalInvariantUnderValidPerms(t *testing.T) {
	p := symProg(3)
	perms3, _, _, _ := allPerms(3)
	for _, s := range walkStates(p, 400) {
		want := p.CanonicalFingerprint(s)
		norm := p.NormalizeCursors(s)
		for _, perm := range perms3 {
			if !p.PermValid(norm, perm) {
				continue
			}
			if got := p.CanonicalFingerprint(p.Permute(norm, perm)); got != want {
				t.Fatalf("canonical fingerprint varies over the orbit of %v (perm %v)", s, perm)
			}
		}
		canon, perm := p.CanonicalizeWithPerm(s)
		if !p.Permute(norm, perm).Equal(canon) {
			t.Fatalf("witnessing permutation %v does not map the normalized state onto the canonical form", perm)
		}
		if !p.PermValid(norm, perm) {
			t.Fatalf("witnessing permutation %v is not valid for %v", perm, norm)
		}
		if !p.Canonicalize(canon).Equal(canon) {
			t.Fatalf("canonicalization not idempotent on %v", canon)
		}
	}
}

// TestCursorNormalization pins the dead-variable rule: the cursor is
// zeroed in keys while the process is outside its scan loop and kept
// while inside.
func TestCursorNormalization(t *testing.T) {
	p := symProg(2)
	s := p.InitState()
	p.SetLocal(s, 0, "c", 2)
	p.SetPC(s, 0, p.LabelIndex("ncs")) // dead: c rewritten at "up"
	norm := p.NormalizeCursors(s)
	if got := p.Local(norm, 0, "c"); got != 0 {
		t.Fatalf("dead cursor survived normalization: %d", got)
	}
	p.SetPC(s, 0, p.LabelIndex("s1")) // live
	norm = p.NormalizeCursors(s)
	if got := p.Local(norm, 0, "c"); got != 2 {
		t.Fatalf("live cursor normalized away: %d", got)
	}
	// The plain local v is untouched either way.
	p.SetLocal(s, 0, "v", 5)
	if got := p.Local(p.NormalizeCursors(s), 0, "v"); got != 5 {
		t.Fatalf("non-cursor local normalized: %d", got)
	}
}

// TestPermValidSegments pins the prefix-preservation rule on a concrete
// mid-scan state.
func TestPermValidSegments(t *testing.T) {
	p := symProg(3)
	s := p.InitState()
	p.SetPC(s, 0, p.LabelIndex("s1"))
	p.SetLocal(s, 0, "c", 2) // process 0 has scanned {0, 1}
	cases := []struct {
		perm []int
		ok   bool
	}{
		{[]int{0, 1, 2}, true},
		{[]int{1, 0, 2}, true},  // permutes within the scanned prefix
		{[]int{0, 2, 1}, false}, // moves scanned pid 1 out of the prefix
		{[]int{2, 1, 0}, false},
	}
	for _, c := range cases {
		if got := p.PermValid(s, c.perm); got != c.ok {
			t.Fatalf("PermValid(%v) = %v, want %v", c.perm, got, c.ok)
		}
	}
}

// TestSymmetryBuildValidation pins the declaration errors.
func TestSymmetryBuildValidation(t *testing.T) {
	bad := New("bad-cursor", 2)
	bad.SharedArray("a", 2, 0)
	bad.Own("a")
	bad.PidLocal("nope")
	bad.Label("ncs", Goto("ncs"))
	if err := bad.Build(); err == nil {
		t.Fatal("undeclared cursor local accepted")
	}
	badLive := New("bad-live", 2)
	badLive.SharedArray("a", 2, 0)
	badLive.Own("a")
	badLive.LocalVar("c", 0)
	badLive.PidLocal("c", "nowhere")
	badLive.Label("ncs", Goto("ncs"))
	if err := badLive.Build(); err == nil {
		t.Fatal("unknown live-at label accepted")
	}
	badArr := New("bad-arr", 3)
	badArr.SharedArray("a", 2, 0)
	badArr.PidIndexed("a")
	badArr.Label("ncs", Goto("ncs"))
	if err := badArr.Build(); err == nil {
		t.Fatal("pid-indexed array of wrong size accepted")
	}
	noSym := flagProg(2)
	if noSym.CanCanonicalize() != true {
		t.Fatal("symmetric program must canonicalize")
	}
	plain := New("plain", 2)
	plain.SharedArray("a", 2, 0)
	plain.Own("a")
	plain.Label("ncs", Goto("ncs"))
	plain.MustBuild()
	if plain.CanCanonicalize() {
		t.Fatal("NoSymmetry program must not canonicalize")
	}
}

// FuzzCanonicalFingerprint drives a random walk of the toy cursor program
// from fuzzed bytes and asserts the satellite contract on every visited
// state: the canonical fingerprint is invariant under every valid process
// permutation, and the canonical form is stable (idempotent, equal
// fingerprints from both APIs).
func FuzzCanonicalFingerprint(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{9, 9, 9, 1, 0, 4, 2, 250, 17, 3})
	p := symProg(3)
	perms3, _, _, _ := allPerms(3)
	f.Fuzz(func(t *testing.T, choices []byte) {
		s := p.InitState()
		for _, b := range choices {
			succs := p.AllSuccs(s, ModeUnbounded)
			if len(succs) == 0 {
				break
			}
			s = succs[int(b)%len(succs)].State
			want := p.CanonicalFingerprint(s)
			norm := p.NormalizeCursors(s)
			for _, perm := range perms3 {
				if !p.PermValid(norm, perm) {
					continue
				}
				if got := p.CanonicalFingerprint(p.Permute(norm, perm)); got != want {
					t.Fatalf("canonical fingerprint not orbit-invariant at %v under %v", s, perm)
				}
			}
			canon := p.Canonicalize(s)
			if !p.Canonicalize(canon).Equal(canon) {
				t.Fatalf("canonicalization not idempotent at %v", s)
			}
		}
	})
}
