package gcl

import (
	"fmt"
	"sync/atomic"
)

// Ctx is the evaluation context of an expression: a program, a state, and
// the id of the process executing the action.
type Ctx struct {
	P   *Prog
	S   State
	Pid int
}

// shape classifies what an expression evaluates to when used as an array
// index, so footprints can be kept precise for the common index forms:
// a compile-time constant, the executing process id, or anything else
// (state-dependent, hence "could be any cell").
type shape uint8

const (
	shapeOpaque shape = iota
	shapeConst
	shapeSelf
)

// Expr evaluates to an int32 in a context. Booleans are represented as 0
// (false) and 1 (true), C-style. Alongside the compiled closure, every
// expression carries its static footprint — the shared cells it may read —
// so that programs can derive per-action footprints and an independence
// relation (footprint.go) without an interpretable syntax tree. The zero
// value is "no expression" (an absent guard or index).
type Expr struct {
	f     func(c *Ctx) int32
	reads cellMap
	shp   shape
	k     int32 // constant value when shp == shapeConst
}

// Eval evaluates the expression.
func (e Expr) Eval(c *Ctx) int32 { return e.f(c) }

// defined reports whether the expression was constructed (vs the zero
// value used for "no guard" / "no index").
func (e Expr) defined() bool { return e.f != nil }

// expr wraps a closure with the merged footprints of its operands.
func expr(f func(c *Ctx) int32, ops ...Expr) Expr {
	return Expr{f: f, reads: mergeReads(ops)}
}

// C returns a constant expression.
func C(v int) Expr {
	x := int32(v)
	return Expr{f: func(*Ctx) int32 { return x }, shp: shapeConst, k: x}
}

// Self returns the executing process id.
func Self() Expr {
	return Expr{f: func(c *Ctx) int32 { return int32(c.Pid) }, shp: shapeSelf}
}

// exprLayout is a name-resolving closure's cached variable layout: the
// program it was resolved against plus the resolved word offset and size.
// Expressions are built once per spec but evaluated millions of times in
// the successor hot loop, and the map[string]varInfo lookup inside
// Prog.Local/Shared dominated expression cost in profiles. Each closure
// carries its own cache behind an atomic pointer — a closure is shared by
// the parallel engine's workers, so a plain captured variable would race.
// In practice an expression only ever meets one built program, so the
// cache hits permanently after the first evaluation; a mismatched program
// (tests juggling specs) just re-resolves through the panicking accessor.
type exprLayout struct {
	p    *Prog
	info varInfo
}

// localLayout returns the cached layout of a local variable, resolving and
// caching it on first use (or on a program change).
func localLayout(cache *atomic.Pointer[exprLayout], c *Ctx, name string) varInfo {
	if e := cache.Load(); e != nil && e.p == c.P {
		return e.info
	}
	e := &exprLayout{p: c.P, info: c.P.localVarInfo(name)}
	cache.Store(e)
	return e.info
}

// sharedLayout is localLayout for shared variables.
func sharedLayout(cache *atomic.Pointer[exprLayout], c *Ctx, name string) varInfo {
	if e := cache.Load(); e != nil && e.p == c.P {
		return e.info
	}
	e := &exprLayout{p: c.P, info: c.P.sharedVarInfo(name)}
	cache.Store(e)
	return e.info
}

// L reads the executing process's local variable. Locals live in the
// process's private block, so they never enter shared footprints.
func L(name string) Expr {
	var cache atomic.Pointer[exprLayout]
	return Expr{f: func(c *Ctx) int32 {
		info := localLayout(&cache, c, name)
		return c.S[c.P.sharedLen+c.Pid*c.P.localLen+info.off]
	}}
}

// Sh reads a shared scalar.
func Sh(name string) Expr {
	var cache atomic.Pointer[exprLayout]
	return Expr{
		f: func(c *Ctx) int32 {
			return c.S[sharedLayout(&cache, c, name).off]
		},
		reads: cellMap{name: {Idx: []int{0}}},
	}
}

// ShI reads a shared array cell at a computed index.
func ShI(name string, idx Expr) Expr {
	var cache atomic.Pointer[exprLayout]
	e := Expr{f: func(c *Ctx) int32 {
		info := sharedLayout(&cache, c, name)
		i := int(idx.f(c))
		if i < 0 || i >= info.size {
			panic(fmt.Sprintf("gcl: %s: index %d out of range for %q", c.P.Name, i, name))
		}
		return c.S[info.off+i]
	}}
	e.reads = mergeReads([]Expr{idx})
	e.reads = e.reads.add(name, idx.indexCells())
	return e
}

// ShSelf reads the executing process's own cell of a shared array; it is
// ShI(name, Self()) without the closure hop.
func ShSelf(name string) Expr {
	var cache atomic.Pointer[exprLayout]
	return Expr{
		f: func(c *Ctx) int32 {
			info := sharedLayout(&cache, c, name)
			if c.Pid >= info.size {
				panic(fmt.Sprintf("gcl: %s: index %d out of range for %q", c.P.Name, c.Pid, name))
			}
			return c.S[info.off+c.Pid]
		},
		reads: cellMap{name: {Self: true}},
	}
}

// MaxSh returns the maximum over all cells of a shared array, the paper's
// "maximum (number[1], ..., number[N])" read as one atomic action (the
// coarse-grained doorway; internal/specs also provides a fine-grained
// variant that reads one cell per step).
func MaxSh(name string) Expr {
	var cache atomic.Pointer[exprLayout]
	return Expr{
		f: func(c *Ctx) int32 {
			info := sharedLayout(&cache, c, name)
			max := int32(0)
			for _, v := range c.S[info.off : info.off+info.size] {
				if v > max {
					max = v
				}
			}
			return max
		},
		reads: cellMap{name: {All: true}},
	}
}

// Max2 returns the larger of a and b.
func Max2(a, b Expr) Expr {
	return expr(func(c *Ctx) int32 {
		x, y := a.f(c), b.f(c)
		if x > y {
			return x
		}
		return y
	}, a, b)
}

// MaxN returns the maximum of val(q) over all q in 0..n-1 with cond(q) true,
// or 0 if no condition holds. It expresses the Black-White Bakery's
// colour-restricted maximum "max{number[j] : colour of j equals mine}".
func MaxN(n int, f func(q int) (cond, val Expr)) Expr {
	conds := make([]Expr, n)
	vals := make([]Expr, n)
	for q := 0; q < n; q++ {
		conds[q], vals[q] = f(q)
	}
	return expr(func(c *Ctx) int32 {
		max := int32(0)
		for q := 0; q < n; q++ {
			if conds[q].f(c) != 0 {
				if v := vals[q].f(c); v > max {
					max = v
				}
			}
		}
		return max
	}, append(append([]Expr{}, conds...), vals...)...)
}

// Add returns a+b.
func Add(a, b Expr) Expr {
	return expr(func(c *Ctx) int32 { return a.f(c) + b.f(c) }, a, b)
}

// Sub returns a-b.
func Sub(a, b Expr) Expr {
	return expr(func(c *Ctx) int32 { return a.f(c) - b.f(c) }, a, b)
}

// Mod returns a mod b (b must evaluate nonzero).
func Mod(a, b Expr) Expr {
	return expr(func(c *Ctx) int32 {
		d := b.f(c)
		if d == 0 {
			panic("gcl: modulo by zero")
		}
		return a.f(c) % d
	}, a, b)
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// Eq returns a == b.
func Eq(a, b Expr) Expr {
	return expr(func(c *Ctx) int32 { return b2i(a.f(c) == b.f(c)) }, a, b)
}

// Ne returns a != b.
func Ne(a, b Expr) Expr {
	return expr(func(c *Ctx) int32 { return b2i(a.f(c) != b.f(c)) }, a, b)
}

// Lt returns a < b.
func Lt(a, b Expr) Expr {
	return expr(func(c *Ctx) int32 { return b2i(a.f(c) < b.f(c)) }, a, b)
}

// Le returns a <= b.
func Le(a, b Expr) Expr {
	return expr(func(c *Ctx) int32 { return b2i(a.f(c) <= b.f(c)) }, a, b)
}

// Gt returns a > b.
func Gt(a, b Expr) Expr {
	return expr(func(c *Ctx) int32 { return b2i(a.f(c) > b.f(c)) }, a, b)
}

// Ge returns a >= b.
func Ge(a, b Expr) Expr {
	return expr(func(c *Ctx) int32 { return b2i(a.f(c) >= b.f(c)) }, a, b)
}

// Not returns the boolean negation of a.
func Not(a Expr) Expr {
	return expr(func(c *Ctx) int32 { return b2i(a.f(c) == 0) }, a)
}

// And returns the conjunction of its operands, short-circuiting.
func And(xs ...Expr) Expr {
	return expr(func(c *Ctx) int32 {
		for _, x := range xs {
			if x.f(c) == 0 {
				return 0
			}
		}
		return 1
	}, xs...)
}

// Or returns the disjunction of its operands, short-circuiting.
func Or(xs ...Expr) Expr {
	return expr(func(c *Ctx) int32 {
		for _, x := range xs {
			if x.f(c) != 0 {
				return 1
			}
		}
		return 0
	}, xs...)
}

// AndN builds a universal quantification over 0..n-1: the conjunction of
// f(0), ..., f(n-1).
func AndN(n int, f func(q int) Expr) Expr {
	xs := make([]Expr, n)
	for q := 0; q < n; q++ {
		xs[q] = f(q)
	}
	return And(xs...)
}

// OrN builds an existential quantification over 0..n-1.
func OrN(n int, f func(q int) Expr) Expr {
	xs := make([]Expr, n)
	for q := 0; q < n; q++ {
		xs[q] = f(q)
	}
	return Or(xs...)
}

// LexLt returns the paper's ordered-pair comparison: (a1, b1) < (a2, b2)
// iff a1 < a2, or a1 = a2 and b1 < b2 (Algorithm 1's "<" on tickets).
func LexLt(a1, b1, a2, b2 Expr) Expr {
	return expr(func(c *Ctx) int32 {
		x1, x2 := a1.f(c), a2.f(c)
		if x1 != x2 {
			return b2i(x1 < x2)
		}
		return b2i(b1.f(c) < b2.f(c))
	}, a1, b1, a2, b2)
}

// Assign is one variable update within an action's effect. All right-hand
// sides of an effect are evaluated against the pre-state, then applied
// simultaneously (TLA+ priming semantics).
type Assign struct {
	Name  string
	Idx   Expr // zero Expr for shared scalars; unused for locals
	Val   Expr
	Local bool
}

// Set assigns a shared scalar.
func Set(name string, val Expr) Assign { return Assign{Name: name, Val: val} }

// SetI assigns a shared array cell at a computed index.
func SetI(name string, idx, val Expr) Assign { return Assign{Name: name, Idx: idx, Val: val} }

// SetSelf assigns the executing process's own cell of a shared array.
func SetSelf(name string, val Expr) Assign { return Assign{Name: name, Idx: Self(), Val: val} }

// SetL assigns a local variable of the executing process.
func SetL(name string, val Expr) Assign { return Assign{Name: name, Val: val, Local: true} }

// Branch is one guarded alternative of a labelled action: when Guard holds
// (the zero Expr means always), the Effect assignments are applied and
// control moves to Next. A label with several branches whose guards overlap
// is nondeterministic; a label none of whose guards hold is blocked (an
// await).
type Branch struct {
	Guard Expr
	Eff   []Assign
	Next  string
	// Tag annotates the branch for statistics ("reset", "cs-enter", ...);
	// it has no semantic effect.
	Tag string
}

// Br returns a guarded branch.
func Br(guard Expr, next string, eff ...Assign) Branch {
	return Branch{Guard: guard, Eff: eff, Next: next}
}

// Goto returns an unguarded branch.
func Goto(next string, eff ...Assign) Branch {
	return Branch{Eff: eff, Next: next}
}

// WithTag returns a copy of the branch carrying a statistics tag.
func (b Branch) WithTag(tag string) Branch {
	b.Tag = tag
	return b
}

// String renders the branch target and shape for listings and debugging.
func (b Branch) String() string {
	return fmt.Sprintf("-> %s (%d assigns, tag=%q)", b.Next, len(b.Eff), b.Tag)
}
