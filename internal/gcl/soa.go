package gcl

// Structure-of-arrays batch layout for prepared visited-store probes.
//
// The exploration engines (internal/mc) probe the visited store once per
// generated successor: canonicalize (under symmetry), fingerprint, then
// look the key up. Doing that one state at a time costs a pooled scratch
// copy and a cache-cold fingerprint per successor. A KeySlab instead packs
// the prepared keys of a whole SuccBuf chunk into one contiguous []int32
// slab with stride addressing — key i occupies words[i*stride:(i+1)*stride]
// — with the fingerprints and witnessing-permutation indices in parallel
// arrays. Canonicalization writes its result directly into the slab slot
// (no intermediate copy), and fingerprinting becomes a tight second pass
// over adjacent words. The slab grows monotonically and is recycled with
// Reset, so a warmed-up exploration loop allocates nothing per chunk
// (pinned by TestCanonicalizeBatchAllocFree).
//
// Key slices returned by Key alias the slab. Growth reallocates the
// backing array, so a previously returned slice may point at the old
// backing — its CONTENT stays valid (growth copies), which is all the
// engines rely on: keys are compared and retained by value, never by
// identity.

// KeySlab is a batch of prepared store probes in structure-of-arrays form.
// The zero value is an empty slab ready for use. Not goroutine-safe; the
// engines hold one per worker.
type KeySlab struct {
	words  []int32
	fps    []uint64
	perms  []int32
	stride int
	n      int
}

// Reset empties the slab, retaining capacity. The stride is re-latched by
// the first append after a Reset, so one slab can serve batches of
// different key widths across chunks (not within one).
func (ks *KeySlab) Reset() { ks.n = 0; ks.words = ks.words[:0] }

// Len returns the number of keys in the slab.
func (ks *KeySlab) Len() int { return ks.n }

// Stride returns the key width in words (0 while empty).
func (ks *KeySlab) Stride() int {
	if ks.n == 0 {
		return 0
	}
	return ks.stride
}

// Key returns key i, aliasing the slab (content-stable across growth).
func (ks *KeySlab) Key(i int) State {
	off := i * ks.stride
	return State(ks.words[off : off+ks.stride])
}

// Fp returns the fingerprint of key i.
func (ks *KeySlab) Fp(i int) uint64 { return ks.fps[i] }

// PermIdx returns the witnessing-permutation index recorded for key i
// (0, the identity, unless the batch was canonicalized with perms).
func (ks *KeySlab) PermIdx(i int) int32 { return ks.perms[i] }

// alloc appends one uninitialised slot of the given stride and returns its
// index and the slot slice; the caller must overwrite every word.
func (ks *KeySlab) alloc(stride int) (int, State) {
	if ks.n == 0 {
		ks.stride = stride
	} else if stride != ks.stride {
		panic("gcl: KeySlab stride change within a batch (Reset first)")
	}
	i := ks.n
	ks.n++
	need := ks.n * stride
	if need > cap(ks.words) {
		grown := make([]int32, len(ks.words), max(2*cap(ks.words), need))
		copy(grown, ks.words)
		ks.words = grown
	}
	ks.words = ks.words[:need]
	if len(ks.fps) < ks.n {
		ks.fps = append(ks.fps, 0)
		ks.perms = append(ks.perms, 0)
	} else {
		ks.fps[i], ks.perms[i] = 0, 0
	}
	return i, State(ks.words[i*stride : need])
}

// AppendKey copies key plus optional extra words (a monitor phase, a
// belief id) into the slab as one slot and fingerprints it over the full
// stride, returning the slot index. This is the slab entry point for
// callers whose key is already prepared — the FCFS monitor product packs
// its pinned-canonical keys this way instead of allocating one per probe.
func (ks *KeySlab) AppendKey(key State, extra ...int32) int {
	i, slot := ks.alloc(len(key) + len(extra))
	copy(slot, key)
	copy(slot[len(key):], extra)
	ks.fps[i] = slot.Fingerprint()
	return i
}

// fingerprintFrom fills fps[i] for every i >= base in one pass over the
// packed slab words.
func (ks *KeySlab) fingerprintFrom(base int) {
	for i := base; i < ks.n; i++ {
		off := i * ks.stride
		ks.fps[i] = State(ks.words[off : off+ks.stride]).Fingerprint()
	}
}

// CanonicalizeBatch canonicalizes every successor state in succs, appending
// one canonical key per successor to ks (in order) and fingerprinting the
// batch in a single pass over the packed slab. It returns the slab index of
// the first appended key. The per-state normalization, ordering and
// permutation scratch is the context's own, reused across the whole batch;
// nothing is allocated once the slab has warmed up.
func (c *Canonicalizer) CanonicalizeBatch(succs []Succ, ks *KeySlab) int {
	w := c.w
	stride := w.p.StateLen()
	base := ks.n
	for si := range succs {
		_, slot := ks.alloc(stride)
		w.canonicalizeInto(slot, succs[si].State)
	}
	ks.fingerprintFrom(base)
	return base
}

// CanonicalizeBatchPerms is CanonicalizeBatch additionally recording each
// key's witnessing-permutation index (PermIdx), which the quotient-graph
// liveness analyses consume. Requires CanTrackPerms.
func (c *Canonicalizer) CanonicalizeBatchPerms(succs []Succ, ks *KeySlab) int {
	w := c.w
	p := w.p
	stride := p.StateLen()
	base := ks.n
	for si := range succs {
		i, slot := ks.alloc(stride)
		w.canonicalizeInto(slot, succs[si].State)
		ks.perms[i] = int32(p.PermIndexOf(w.bestPerm))
	}
	ks.fingerprintFrom(base)
	return base
}

// FingerprintSuccs fingerprints every successor state into fps (reusing its
// capacity) — the batch probe for non-symmetric stores, whose key is the
// successor state itself.
func FingerprintSuccs(succs []Succ, fps []uint64) []uint64 {
	if cap(fps) < len(succs) {
		fps = make([]uint64, len(succs))
	}
	fps = fps[:len(succs)]
	for i := range succs {
		fps[i] = succs[i].State.Fingerprint()
	}
	return fps
}
