package gcl

// Process-symmetry support: the permutation action on states and the
// canonical-representative computation the model checker's symmetry-aware
// visited store is built on (Clarke/Emerson-style symmetry reduction, the
// analog of TLC's SYMMETRY declaration and Murphi's scalarsets).
//
// A specification declares its symmetry group at construction time:
// SetSymmetry(FullSymmetry) states that the program treats process
// identities interchangeably, and the per-variable declarations tell the
// layer where identities live in the state vector — shared arrays indexed
// by pid (every Own'd array implicitly, plus PidIndexed ones), the
// per-process [pc, locals...] blocks (always), and locals that are pid
// scan cursors (PidLocal, e.g. the bakery trial-loop index j).
//
// Permute applies one permutation: pid-indexed cells and process blocks
// relocate from slot i to slot perm[i]; cell and local values are never
// rewritten. Canonicalize picks the lexicographically-least image of the
// state over the permutations *valid for that state*, so two states merge
// exactly when one is a valid image of the other:
//
//   - With no scan cursors mid-scan, every permutation is valid and the
//     least image is found by sorting per-process signature columns.
//   - An active cursor value j means "this process has already checked
//     processes 0..j-1"; a permutation respects that history only if it
//     preserves the set {0..j-1}. Valid permutations are therefore the
//     ones that permute within the segments delimited by the active
//     cursor values — a subgroup that depends only on the cursor values,
//     which relocation leaves in place, so validity is orbit-invariant
//     and the canonical form is well-defined. These states fall back to
//     enumerating the precomputed permutation table, skipping invalid
//     entries by a precomputed prefix-preservation mask and rejecting
//     losing candidates after the first differing word.
//
// The naive alternative — remapping cursor VALUES through the permutation
// and canonicalizing over the full group — is measurably unsound here: it
// merges states whose scan histories are incompatible, and on 4-process
// Bakery the over-pruning severs the ticket-growth paths entirely, turning
// the overflow VIOLATION verdict into a false "verified". The segment
// rule keeps every merge history-consistent.
//
// Soundness note for callers: even valid permutations are only
// quasi-automorphisms for most specifications here — the bakery tie-break
// (number[j], j) < (number[i], i) and Szymanski's id-ordered room draining
// consult the concrete id order. Canonical forms are therefore safe for
// duplicate detection (merging a state with an earlier orbit-mate), but
// exploring a canonical *image* in place of a reachable state can
// fabricate unreachable behaviours. internal/mc's symmetry store only
// ever dedups; see docs/model-checking.md.

import (
	"fmt"
)

// Symmetry identifies the process-permutation group a program declares.
type Symmetry uint8

const (
	// NoSymmetry (the default) declares the trivial group: no two process
	// identities are interchangeable, and symmetry reduction degrades to
	// the full search.
	NoSymmetry Symmetry = iota
	// FullSymmetry declares the full symmetric group on process ids: the
	// program is (quasi-)invariant under every permutation of 0..N-1 that
	// respects the declared scan cursors.
	FullSymmetry
)

// String returns the group name.
func (y Symmetry) String() string {
	switch y {
	case NoSymmetry:
		return "none"
	case FullSymmetry:
		return "full"
	}
	return fmt.Sprintf("symmetry(%d)", uint8(y))
}

// maxEnumProcs caps the permutation-enumeration fallback: N! permutations
// are materialised once per program, so programs with scan cursors and
// more processes than this cannot canonicalize (CanCanonicalize reports
// false and the model checker falls back to the full search). 8! = 40320
// permutations is already far beyond what explicit-state exploration can
// cover anyway.
const maxEnumProcs = 8

// SetSymmetry declares the program's process-permutation group. Must be
// called before Build.
func (p *Prog) SetSymmetry(y Symmetry) {
	if p.built {
		panic("gcl: cannot declare symmetry after Build")
	}
	p.sym = y
}

// Symmetry returns the declared process-permutation group.
func (p *Prog) Symmetry() Symmetry { return p.sym }

// PidIndexed marks a shared array as indexed by process id, so Permute
// relocates cell i to cell perm[i]. Own'd arrays are pid-indexed
// implicitly; PidIndexed is for size-N arrays that are per-process without
// being crash-reset. Must be called before Build.
func (p *Prog) PidIndexed(name string) {
	if p.built {
		panic("gcl: cannot declare after Build")
	}
	if p.pidIndexed == nil {
		p.pidIndexed = map[string]bool{}
	}
	p.pidIndexed[name] = true
}

// PidLocal marks a per-process local as a pid scan cursor: its value j
// means the process has already visited pids 0..j-1 (j = N meaning "done",
// the bakery-family trial-loop shape). Canonicalization then only applies
// permutations that preserve every active cursor's visited prefix as a
// set, keeping merges consistent with scan history.
//
// liveAt optionally lists the labels at which the cursor is LIVE (read
// before being rewritten). At every other label the canonical key
// normalizes the cursor to 0 — classic dead-variable reduction, sound
// exactly when every path from a non-listed label rewrites the cursor
// before reading it (the bakery family resets j at its doorway-done step,
// so the stale previous-round value outside t1..t4 is pure key noise).
// With no liveAt list the cursor is treated as live everywhere. Must be
// called before Build.
func (p *Prog) PidLocal(name string, liveAt ...string) {
	if p.built {
		panic("gcl: cannot declare after Build")
	}
	if p.pidLocals == nil {
		p.pidLocals = map[string][]string{}
	}
	if liveAt == nil {
		liveAt = []string{}
	}
	p.pidLocals[name] = liveAt
}

// buildSymmetry resolves the symmetry declarations against the layout;
// called from Build after the offsets exist.
func (p *Prog) buildSymmetry() error {
	for name := range p.owned {
		if p.pidIndexed == nil {
			p.pidIndexed = map[string]bool{}
		}
		p.pidIndexed[name] = true
	}
	// Deterministic order (declaration order) so canonical comparison has
	// a fixed word order — the state vector's own layout order.
	for _, d := range p.shared {
		if !p.pidIndexed[d.Name] {
			continue
		}
		info := p.sharedInfo[d.Name]
		if info.size != p.N {
			return fmt.Errorf("gcl: %s: pid-indexed array %q must have size N=%d, has %d",
				p.Name, d.Name, p.N, info.size)
		}
		p.pidArrayOffs = append(p.pidArrayOffs, info.off)
	}
	for name := range p.pidIndexed {
		if _, ok := p.sharedInfo[name]; !ok {
			return fmt.Errorf("gcl: %s: pid-indexed variable %q not declared shared", p.Name, name)
		}
	}
	for _, d := range p.locals {
		liveAt, isCursor := p.pidLocals[d.Name]
		if !isCursor {
			continue
		}
		p.pidLocalOffs = append(p.pidLocalOffs, p.localInfo[d.Name].off)
		// liveMask rows are per-label bitsets over the cursors (in
		// pidLocalOffs order); an unset bit means the cursor is dead at
		// that label and normalized away in canonical keys.
		cursorBit := uint32(1) << uint(len(p.pidLocalOffs)-1)
		if p.cursorLive == nil {
			p.cursorLive = make([]uint32, len(p.labels))
		}
		if len(liveAt) == 0 {
			for li := range p.cursorLive {
				p.cursorLive[li] |= cursorBit
			}
		} else {
			for _, lbl := range liveAt {
				li, ok := p.labelIdx[lbl]
				if !ok {
					return fmt.Errorf("gcl: %s: cursor %q live-at label %q not declared", p.Name, d.Name, lbl)
				}
				p.cursorLive[li] |= cursorBit
			}
		}
	}
	for name := range p.pidLocals {
		if _, ok := p.localInfo[name]; !ok {
			return fmt.Errorf("gcl: %s: pid-valued local %q not declared", p.Name, name)
		}
	}
	return nil
}

// NormalizeCursors returns a copy of s with every dead scan cursor zeroed:
// for each process, cursors whose bit is clear in the liveness mask of the
// process's current label are set to 0. This is the key-normalization the
// canonical layer applies; the exploration engines never store or expand
// normalized states.
func (p *Prog) NormalizeCursors(s State) State {
	out := p.Clone(s)
	p.normalizeCursorsInPlace(out)
	return out
}

// NormalizeCursorsInPlace is NormalizeCursors mutating a caller-owned
// state — the allocation-free variant for hot paths that already hold a
// private copy (the model checker's quotient-product expansion).
func (p *Prog) NormalizeCursorsInPlace(s State) { p.normalizeCursorsInPlace(s) }

// normalizeCursorsInPlace is NormalizeCursors on a caller-owned copy.
func (p *Prog) normalizeCursorsInPlace(s State) {
	if len(p.pidLocalOffs) == 0 || p.cursorLive == nil {
		return
	}
	for i := 0; i < p.N; i++ {
		base := p.sharedLen + i*p.localLen
		live := p.cursorLive[s[base]]
		for ci, lo := range p.pidLocalOffs {
			if live&(1<<uint(ci)) == 0 {
				s[base+lo] = 0
			}
		}
	}
}

// Permute returns the image of s under the process permutation perm, where
// perm[i] is the new identity of process i: pid-indexed shared cells and
// per-process blocks move from slot i to slot perm[i]; all values —
// including scan cursors, which count a prefix rather than naming a pid —
// are copied unchanged, and other shared variables stay in place.
func (p *Prog) Permute(s State, perm []int) State {
	out := make(State, len(s))
	p.permuteInto(out, s, perm)
	return out
}

// PermuteInto is Permute into a caller-owned destination buffer of
// StateLen words — the allocation-free variant the model checker's
// quotient-product analyses use on their hot path.
func (p *Prog) PermuteInto(dst, s State, perm []int) {
	if len(dst) != len(s) {
		panic(fmt.Sprintf("gcl: %s: PermuteInto needs a %d-word destination, got %d", p.Name, len(s), len(dst)))
	}
	p.permuteInto(dst, s, perm)
}

// permuteInto is Permute into a caller-owned buffer.
func (p *Prog) permuteInto(out State, s State, perm []int) {
	if !p.built {
		panic("gcl: Permute before Build")
	}
	if len(perm) != p.N {
		panic(fmt.Sprintf("gcl: %s: Permute needs a permutation of %d ids, got %d", p.Name, p.N, len(perm)))
	}
	copy(out[:p.sharedLen], s[:p.sharedLen])
	for _, off := range p.pidArrayOffs {
		for i := 0; i < p.N; i++ {
			out[off+perm[i]] = s[off+i]
		}
	}
	for i := 0; i < p.N; i++ {
		src := p.sharedLen + i*p.localLen
		dst := p.sharedLen + perm[i]*p.localLen
		copy(out[dst:dst+p.localLen], s[src:src+p.localLen])
	}
}

// PermValid reports whether perm respects the scan history of s: for every
// declared cursor local of every process, the visited prefix {0..j-1} must
// be preserved as a set (equivalently, perm maps it onto itself). States
// merged by canonicalization are always related by a valid permutation.
func (p *Prog) PermValid(s State, perm []int) bool {
	if len(perm) != p.N {
		panic(fmt.Sprintf("gcl: %s: PermValid needs a permutation of %d ids, got %d", p.Name, p.N, len(perm)))
	}
	for _, lo := range p.pidLocalOffs {
		for i := 0; i < p.N; i++ {
			j := int(s[p.sharedLen+i*p.localLen+lo])
			if j <= 0 || j >= p.N {
				continue // empty or complete prefix constrains nothing
			}
			for q := 0; q < j; q++ {
				if perm[q] >= j {
					return false
				}
			}
		}
	}
	return true
}

// CanCanonicalize reports whether the program supports canonicalization:
// full symmetry declared, and — when scan cursors force the enumeration
// fallback — no more than maxEnumProcs processes.
func (p *Prog) CanCanonicalize() bool {
	return p.built && p.sym == FullSymmetry &&
		(len(p.pidLocalOffs) == 0 || p.N <= maxEnumProcs)
}

// Canonicalize returns the canonical representative of s's orbit: the
// lexicographically-least image of the cursor-normalized state vector
// (NormalizeCursors) over the permutations valid for it. Two states
// canonicalize equally iff their normalized forms are valid images of one
// another; the result is freshly allocated. Safe for concurrent use.
func (p *Prog) Canonicalize(s State) State {
	w := p.canonWorker()
	defer p.canonPool.Put(w)
	c := w.canonicalize(s)
	out := make(State, len(c))
	copy(out, c)
	return out
}

// CanonicalFingerprint returns the fingerprint of the canonical
// representative of s's orbit — the probe key of the symmetry-aware
// visited store. Invariant under every valid process permutation of s.
// Safe for concurrent use.
func (p *Prog) CanonicalFingerprint(s State) uint64 {
	w := p.canonWorker()
	defer p.canonPool.Put(w)
	return w.canonicalize(s).Fingerprint()
}

// CanonicalizeWithPerm returns the canonical representative together with
// the witnessing permutation mapping the normalized state onto it
// (Permute(NormalizeCursors(s), perm) equals the returned state, and
// PermValid(NormalizeCursors(s), perm) holds). Safe for concurrent use.
func (p *Prog) CanonicalizeWithPerm(s State) (State, []int) {
	w := p.canonWorker()
	defer p.canonPool.Put(w)
	c := w.canonicalize(s)
	out := make(State, len(c))
	copy(out, c)
	perm := make([]int, p.N)
	copy(perm, w.bestPerm)
	return out, perm
}

// Canonicalizer is a reusable canonicalization context: it owns the
// normalization, incumbent, permutation and order scratch buffers that the
// pooled Prog.Canonicalize variants copy out of, so a caller that holds one
// per goroutine canonicalizes with zero heap allocations. The result of
// every method aliases the context's scratch and is valid only until the
// next call; callers that retain a canonical key must copy it first. A
// Canonicalizer must not be shared between goroutines.
type Canonicalizer struct {
	w *canonicalizer
}

// NewCanonicalizer returns a dedicated canonicalization context for the
// program. Requires CanCanonicalize.
func (p *Prog) NewCanonicalizer() *Canonicalizer {
	if !p.CanCanonicalize() {
		panic(fmt.Sprintf("gcl: %s: canonicalization unavailable (symmetry %v, %d scan cursors, N=%d)",
			p.Name, p.sym, len(p.pidLocalOffs), p.N))
	}
	if len(p.pidLocalOffs) > 0 {
		p.ensurePerms()
	}
	return &Canonicalizer{w: &canonicalizer{
		p:        p,
		buf:      make(State, p.StateLen()),
		norm:     make(State, p.StateLen()),
		bestPerm: make([]int, p.N),
		order:    make([]int, p.N),
	}}
}

// Canonicalize returns the canonical representative of s's orbit in the
// context's scratch buffer — the zero-allocation form of Prog.Canonicalize.
func (c *Canonicalizer) Canonicalize(s State) State {
	return c.w.canonicalize(s)
}

// CanonicalizeWithPerm returns the canonical representative together with
// the witnessing permutation, both aliasing the context's scratch — the
// zero-allocation form of Prog.CanonicalizeWithPerm.
func (c *Canonicalizer) CanonicalizeWithPerm(s State) (State, []int) {
	return c.w.canonicalize(s), c.w.bestPerm
}

// Fingerprint returns the fingerprint of the canonical representative of
// s's orbit — the zero-allocation form of Prog.CanonicalFingerprint.
func (c *Canonicalizer) Fingerprint(s State) uint64 {
	return c.w.canonicalize(s).Fingerprint()
}

// CanonicalizePinned returns the least valid image over the permutations
// fixing every pid in pinned, in the context's scratch buffer — the
// zero-allocation form of Prog.CanonicalizePinned. Requires CanTrackPerms.
func (c *Canonicalizer) CanonicalizePinned(s State, pinned []int) State {
	p := c.w.p
	p.mustTrackPerms()
	p.ensurePerms()
	return c.w.canonicalizePinned(s, p.pinnedMaskOf(pinned))
}

// canonWorker hands out a scratch canonicalizer from the program's pool,
// initialising the shared permutation tables on first use.
func (p *Prog) canonWorker() *canonicalizer {
	if !p.CanCanonicalize() {
		panic(fmt.Sprintf("gcl: %s: canonicalization unavailable (symmetry %v, %d scan cursors, N=%d)",
			p.Name, p.sym, len(p.pidLocalOffs), p.N))
	}
	if len(p.pidLocalOffs) > 0 {
		p.ensurePerms()
	}
	if w, ok := p.canonPool.Get().(*canonicalizer); ok {
		return w
	}
	return &canonicalizer{
		p:        p,
		buf:      make(State, p.StateLen()),
		norm:     make(State, p.StateLen()),
		bestPerm: make([]int, p.N),
		order:    make([]int, p.N),
	}
}

// canonicalizer holds the per-call scratch of one canonicalization; pooled
// on the program so concurrent exploration workers never share buffers.
type canonicalizer struct {
	p        *Prog
	buf      State
	norm     State
	bestPerm []int
	order    []int
}

// canonicalize computes the least valid image of the cursor-normalized
// state into w.buf and returns it (valid until the worker is reused) with
// the witnessing permutation in w.bestPerm.
func (w *canonicalizer) canonicalize(s State) State {
	w.canonicalizeInto(w.buf, s)
	return w.buf
}

// canonicalizeInto is canonicalize writing the canonical image into a
// caller-owned destination of StateLen words — the KeySlab batch path
// (soa.go) canonicalizes straight into slab slots through it, skipping the
// scratch-then-copy round trip. With no active cursor every permutation is
// valid and column sorting finds the least image directly; otherwise the
// permutation table is enumerated under the cursor mask.
func (w *canonicalizer) canonicalizeInto(dst State, s State) {
	copy(w.norm, s)
	w.p.normalizeCursorsInPlace(w.norm)
	mask := w.cursorMask(w.norm)
	if mask == 0 {
		w.sortColumns(dst, w.norm)
	} else {
		w.enumerate(dst, w.norm, mask)
	}
}

// cursorMask collects the active cursor values of s as a bitmask: bit j is
// set when some process has visited exactly the prefix 0..j-1 (0 < j < N),
// which a valid permutation must preserve.
func (w *canonicalizer) cursorMask(s State) uint32 {
	p := w.p
	var mask uint32
	for _, lo := range p.pidLocalOffs {
		for i := 0; i < p.N; i++ {
			if j := int(s[p.sharedLen+i*p.localLen+lo]); j > 0 && j < p.N {
				mask |= 1 << uint(j)
			}
		}
	}
	return mask
}

// sortColumns finds the least image when every permutation is valid: the
// action just relocates per-process "columns" (the process's cells of each
// pid-indexed array, in declaration order, then its block), so placing the
// columns in sorted order yields exactly the lexicographically-least
// flattened vector (ties order identical columns, which cannot change the
// image). The image is written into dst.
func (w *canonicalizer) sortColumns(dst State, s State) {
	p := w.p
	for i := range w.order {
		w.order[i] = i
	}
	// Insertion sort: N is tiny (at most a dozen processes) and sort.Slice
	// would allocate its closure per call on the canonicalization hot path.
	// Stable, so ties (identical columns) keep declaration order and the
	// witnessing permutation is deterministic.
	for i := 1; i < len(w.order); i++ {
		for j := i; j > 0 && compareColumns(p, s, w.order[j], w.order[j-1]) < 0; j-- {
			w.order[j], w.order[j-1] = w.order[j-1], w.order[j]
		}
	}
	// order[k] = the process whose column lands in slot k, i.e. the
	// inverse of the witnessing permutation.
	for k, i := range w.order {
		w.bestPerm[i] = k
	}
	p.permuteInto(dst, s, w.bestPerm)
}

// compareColumns orders process columns by the state-layout word order:
// each pid-indexed array cell in declaration order, then the block words.
func compareColumns(p *Prog, s State, i, j int) int {
	for _, off := range p.pidArrayOffs {
		if d := s[off+i] - s[off+j]; d != 0 {
			return int(d)
		}
	}
	bi, bj := p.sharedLen+i*p.localLen, p.sharedLen+j*p.localLen
	for k := 0; k < p.localLen; k++ {
		if d := s[bi+k] - s[bj+k]; d != 0 {
			return int(d)
		}
	}
	return 0
}

// enumerate walks the permutation table, skipping permutations whose
// precomputed prefix-preservation mask does not cover the state's cursor
// mask, and keeps the least image seen in dst. The comparison against the
// incumbent walks the candidate image lazily in state-vector order through
// the permutation's inverse, so a losing permutation is rejected after the
// first differing word without materialising its image. The incumbent
// starts as the identity image — s itself.
func (w *canonicalizer) enumerate(dst State, s State, mask uint32) {
	p := w.p
	copy(dst, s)
	for i := range w.bestPerm {
		w.bestPerm[i] = i
	}
	for pi, perm := range p.perms {
		if pi == 0 {
			continue // identity: the incumbent
		}
		if mask&^p.prefMasks[pi] != 0 {
			continue // violates some visited prefix
		}
		if w.imageLess(dst, s, p.invPerms[pi]) {
			p.permuteInto(dst, s, perm)
			copy(w.bestPerm, perm)
		}
	}
}

// imageLess reports whether the image of s under the permutation with
// inverse inv is lexicographically less than the incumbent in cur,
// comparing only pid-dependent words (all others are equal by
// construction): the image word at slot q of a pid-indexed array is
// s[off+inv[q]], and the image block in slot q is process inv[q]'s block.
func (w *canonicalizer) imageLess(cur State, s State, inv []int) bool {
	p := w.p
	for _, off := range p.pidArrayOffs {
		for q := 0; q < p.N; q++ {
			if v, b := s[off+inv[q]], cur[off+q]; v != b {
				return v < b
			}
		}
	}
	for q := 0; q < p.N; q++ {
		src := p.sharedLen + inv[q]*p.localLen
		dst := p.sharedLen + q*p.localLen
		for k := 0; k < p.localLen; k++ {
			if v, b := s[src+k], cur[dst+k]; v != b {
				return v < b
			}
		}
	}
	return false
}

// allPerms returns every permutation of 0..n-1 (identity first, then
// lexicographic order), the inverse of each, each permutation's
// prefix-preservation mask — bit j set iff the permutation maps {0..j-1}
// onto itself (computed as a running maximum) — and its fixed-point mask:
// bit k set iff the permutation fixes k. The fixed-point masks drive
// pinned canonicalization (permutations that must leave given pids in
// place, see CanonicalizePinned).
func allPerms(n int) (perms, invs [][]int, prefMasks, fixMasks []uint32) {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	for {
		perm := make([]int, n)
		copy(perm, cur)
		inv := make([]int, n)
		for i, v := range perm {
			inv[v] = i
		}
		var mask uint32
		cummax := -1
		for j := 1; j < n; j++ {
			if perm[j-1] > cummax {
				cummax = perm[j-1]
			}
			if cummax == j-1 {
				mask |= 1 << uint(j)
			}
		}
		var fixed uint32
		for k, v := range perm {
			if v == k {
				fixed |= 1 << uint(k)
			}
		}
		perms = append(perms, perm)
		invs = append(invs, inv)
		prefMasks = append(prefMasks, mask)
		fixMasks = append(fixMasks, fixed)
		// Next lexicographic permutation.
		i := n - 2
		for i >= 0 && cur[i] >= cur[i+1] {
			i--
		}
		if i < 0 {
			return perms, invs, prefMasks, fixMasks
		}
		j := n - 1
		for cur[j] <= cur[i] {
			j--
		}
		cur[i], cur[j] = cur[j], cur[i]
		for l, r := i+1, n-1; l < r; l, r = l+1, r-1 {
			cur[l], cur[r] = cur[r], cur[l]
		}
	}
}
