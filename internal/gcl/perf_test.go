package gcl

// Hot-path performance contracts: the successor generator, the fingerprint,
// and the reusable canonicalizer must not allocate in steady state (the
// model checker runs them millions of times per second), and the word-wise
// fingerprint must agree with an independently written byte-serialization
// reference on every length parity.

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// TestSuccsIntoAllocFree pins the successor hot path at zero steady-state
// allocations: once the SuccBuf's slab blocks exist, expanding a state
// allocates nothing.
func TestSuccsIntoAllocFree(t *testing.T) {
	p := symProg(4)
	states := walkStates(p, 64)
	var buf SuccBuf
	expand := func() {
		buf.Reset()
		for _, s := range states {
			p.AllSuccsInto(s, ModeUnbounded, &buf)
		}
	}
	expand() // warm the slab blocks and the succs backing array
	if avg := testing.AllocsPerRun(100, expand); avg != 0 {
		t.Errorf("AllSuccsInto allocates %.2f objects per %d-state sweep, want 0", avg, len(states))
	}
}

// TestApplyIntoAllocFree pins the single-branch variant (the POR chase's
// workhorse) and the guard evaluator at zero allocations.
func TestApplyIntoAllocFree(t *testing.T) {
	p := symProg(4)
	s := p.InitState()
	var buf SuccBuf
	dst := make(State, len(s))
	step := func() {
		for pid := 0; pid < p.N; pid++ {
			if p.EnabledMask(s, pid, &buf) != 0 {
				p.ApplyInto(dst, s, pid, 0, ModeUnbounded, &buf)
			}
		}
	}
	step()
	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Errorf("EnabledMask+ApplyInto allocate %.2f objects per sweep, want 0", avg)
	}
}

// TestFingerprintAllocFree pins the word-wise fingerprint at zero
// allocations.
func TestFingerprintAllocFree(t *testing.T) {
	p := symProg(4)
	states := walkStates(p, 64)
	var sink uint64
	hash := func() {
		for _, s := range states {
			sink ^= s.Fingerprint()
			sink ^= s.FingerprintSeeded(42)
		}
	}
	if avg := testing.AllocsPerRun(100, hash); avg != 0 {
		t.Errorf("Fingerprint allocates %.2f objects per %d-state sweep, want 0", avg, len(states))
	}
	_ = sink
}

// TestCanonicalizerAllocFree pins the reusable canonicalization context at
// zero steady-state allocations across representative states.
func TestCanonicalizerAllocFree(t *testing.T) {
	p := symProg(4)
	states := walkStates(p, 64)
	c := p.NewCanonicalizer()
	var sink uint64
	canon := func() {
		for _, s := range states {
			rep, perm := c.CanonicalizeWithPerm(s)
			sink ^= rep.Fingerprint() ^ uint64(perm[0])
		}
	}
	canon()
	if avg := testing.AllocsPerRun(50, canon); avg != 0 {
		t.Errorf("Canonicalizer allocates %.2f objects per %d-state sweep, want 0", avg, len(states))
	}
	_ = sink
}

// TestCanonicalizeBatchAllocFree pins the structure-of-arrays batch path at
// zero steady-state allocations: once the key slab has warmed up,
// canonicalizing and fingerprinting a whole successor chunk — with and
// without permutation ranking — allocates nothing.
func TestCanonicalizeBatchAllocFree(t *testing.T) {
	p := symProg(4)
	states := walkStates(p, 16)
	var buf SuccBuf
	for _, s := range states {
		p.AllSuccsInto(s, ModeUnbounded, &buf)
	}
	succs := buf.Succs()
	c := p.NewCanonicalizer()
	var ks KeySlab
	var fps []uint64
	var sink uint64
	batch := func() {
		ks.Reset()
		base := c.CanonicalizeBatch(succs, &ks)
		base = c.CanonicalizeBatchPerms(succs, &ks)
		fps = FingerprintSuccs(succs, fps)
		sink ^= ks.Fp(base) ^ uint64(ks.PermIdx(base)) ^ fps[0]
	}
	batch() // warm the slab, the perm tables, and the fingerprint buffer
	if avg := testing.AllocsPerRun(50, batch); avg != 0 {
		t.Errorf("CanonicalizeBatch paths allocate %.2f objects per %d-successor chunk, want 0", avg, len(succs))
	}
	_ = sink
}

// TestKeySlabAppendKeyAllocFree pins the FCFS product's probe path — a
// prepared key plus extra words packed and fingerprinted into the slab —
// at zero steady-state allocations.
func TestKeySlabAppendKeyAllocFree(t *testing.T) {
	p := symProg(4)
	states := walkStates(p, 32)
	var ks KeySlab
	var sink uint64
	pack := func() {
		ks.Reset()
		for i, s := range states {
			ki := ks.AppendKey(s, int32(i&3))
			sink ^= ks.Fp(ki)
		}
	}
	pack()
	if avg := testing.AllocsPerRun(100, pack); avg != 0 {
		t.Errorf("KeySlab.AppendKey allocates %.2f objects per %d-key sweep, want 0", avg, len(states))
	}
	_ = sink
}

// BenchmarkCanonicalizePerState and BenchmarkCanonicalizeBatch compare the
// engines' historical one-state-at-a-time probe — canonicalize, copy the
// key out of the canonicalizer's scratch (it is overwritten by the next
// call, and the engine batches probes across a head's ample check), then
// fingerprint — against the batched structure-of-arrays pass over the same
// successor chunk, which canonicalizes directly into the retained slab slot
// and fingerprints in one pass. This is the measurement behind the engines'
// switch to CanonicalizeBatch.
func BenchmarkCanonicalizePerState(b *testing.B) {
	p := symProg(4)
	var buf SuccBuf
	for _, s := range walkStates(p, 16) {
		p.AllSuccsInto(s, ModeUnbounded, &buf)
	}
	succs := buf.Succs()
	c := p.NewCanonicalizer()
	var keys SuccBuf
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keys.Reset()
		for si := range succs {
			key := keys.CopyIn(c.Canonicalize(succs[si].State))
			sink ^= key.Fingerprint()
		}
	}
	_ = sink
}

func BenchmarkCanonicalizeBatch(b *testing.B) {
	p := symProg(4)
	var buf SuccBuf
	for _, s := range walkStates(p, 16) {
		p.AllSuccsInto(s, ModeUnbounded, &buf)
	}
	succs := buf.Succs()
	c := p.NewCanonicalizer()
	var ks KeySlab
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ks.Reset()
		base := c.CanonicalizeBatch(succs, &ks)
		sink ^= ks.Fp(base)
	}
	_ = sink
}

// refFingerprint recomputes fpAbsorb through an independent route: the
// state is serialized to little-endian bytes and the lanes are re-read 8
// bytes at a time (4-byte tail for odd word counts). Any disagreement
// with the word-packing fast path — lane order, word order within a lane,
// sign extension, tail handling — shows up here.
func refFingerprint(basis uint64, s State) uint64 {
	raw := make([]byte, 4*len(s))
	for i, w := range s {
		binary.LittleEndian.PutUint32(raw[4*i:], uint32(w))
	}
	h := basis
	for len(raw) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(raw)) * fpLanePrime
		raw = raw[8:]
	}
	if len(raw) == 4 {
		h = (h ^ uint64(binary.LittleEndian.Uint32(raw))) * fpLanePrime
	}
	return fpMix(h)
}

// refSeedBasis mirrors FingerprintSeeded's splitmix64 seed premix.
func refSeedBasis(seed uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return fnvOffset64 ^ z
}

// TestFingerprintMatchesByteReference drives the word-wise fingerprint
// against the byte-serialization reference on random vectors of every
// small length — crucially both parities, plus the empty vector — and on
// adversarial word values (negative int32s exercise the uint32 narrowing).
func TestFingerprintMatchesByteReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vectors := [][]int32{
		{},
		{0},
		{-1},
		{1 << 30, -(1 << 30)},
		{0, 0, 0},
	}
	for n := 0; n <= 17; n++ {
		for rep := 0; rep < 8; rep++ {
			v := make([]int32, n)
			for i := range v {
				v[i] = int32(rng.Uint32())
			}
			vectors = append(vectors, v)
		}
	}
	for _, v := range vectors {
		s := State(v)
		if got, want := s.Fingerprint(), refFingerprint(fnvOffset64, s); got != want {
			t.Fatalf("Fingerprint(%v) = %016x, reference %016x", v, got, want)
		}
		for _, seed := range []uint64{0, 1, 42, 1 << 63} {
			if got, want := s.FingerprintSeeded(seed), refFingerprint(refSeedBasis(seed), s); got != want {
				t.Fatalf("FingerprintSeeded(%v, %d) = %016x, reference %016x", v, seed, got, want)
			}
		}
	}
	// Seed 0 must be a different function from the unseeded fingerprint.
	s := State{1, 2, 3}
	if s.Fingerprint() == s.FingerprintSeeded(0) {
		t.Error("FingerprintSeeded(0) equals Fingerprint; seeds must re-roll the hash family")
	}
}
