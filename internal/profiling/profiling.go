// Package profiling wires the -cpuprofile/-memprofile flags shared by the
// bakerymc and bakerybench commands to runtime/pprof.
package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Session holds the in-flight CPU profile and the pending heap profile path.
type Session struct {
	cpuFile *os.File
	memPath string
}

// Start begins CPU profiling to cpuPath (if non-empty) and remembers memPath
// for Stop. Either path may be empty; a nil error always yields a Session
// whose Stop is safe to call.
func Start(cpuPath, memPath string) (*Session, error) {
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		s.cpuFile = f
	}
	return s, nil
}

// Stop finishes the CPU profile and writes the allocs profile (after a final
// GC, so live-heap numbers are accurate). It is called on every exit path
// that terminates the process deliberately — including "violation found"
// exits, which are the runs one most wants to profile.
func (s *Session) Stop() error {
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := s.cpuFile.Close(); err != nil {
			return err
		}
		s.cpuFile = nil
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		return pprof.Lookup("allocs").WriteTo(f, 0)
	}
	return nil
}
