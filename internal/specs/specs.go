// Package specs contains the mutual-exclusion algorithms of the paper and
// its related work, written as gcl programs at PlusCal label granularity.
//
// Conventions shared by every specification, relied on by internal/mc and
// internal/sched:
//
//   - The first label is "ncs" (noncritical section / crash-restart target).
//   - A process is inside its critical section exactly while its pc is at
//     the label "cs"; the action at "cs" performs the exit protocol's first
//     step. The mutual-exclusion invariant is CountAtLabel(s, "cs") <= 1.
//   - Branch tags: "try" marks leaving ncs, "doorway-done" marks completing
//     the doorway (ticket acquired, choosing lowered), "cs-enter" marks the
//     transition into cs, "cs-exit" marks leaving cs, and "reset" marks
//     Bakery++'s overflow-avoidance reset (the branch back to L1).
//   - Shared arrays owned one-cell-per-process are marked Own, so crash
//     transitions (paper correctness conditions 3–4) reset them properly.
//
// Process ids are 0-based; the paper's (number[j], j) < (number[i], i)
// tie-break order is preserved because relative order of ids is what
// matters, not their base.
package specs

import (
	"fmt"
	"sort"

	"bakerypp/internal/gcl"
)

// Config carries the knobs shared by the spec constructors. Zero values get
// sensible defaults from Get.
type Config struct {
	// N is the number of processes.
	N int
	// M is the register capacity (largest storable value). Used by Bakery
	// (for overflow accounting), Bakery++ (as the algorithm's constant M),
	// and ModBakery (tickets live in 0..M).
	M int
	// Fine selects the fine-grained doorway: the maximum is computed one
	// register read per atomic step instead of one atomic array read
	// (ablation 1 in DESIGN.md).
	Fine bool
	// SplitReset makes Bakery++'s overflow reset two atomic steps
	// (number[i] := 0, then choosing[i] := 0) instead of one (ablation 2).
	SplitReset bool
	// EqCheck makes Bakery++ compare with = M instead of >= M, valid when
	// reads never exceed M (Section 5's remark; ablation 3).
	EqCheck bool
	// NoGate omits Bakery++'s L1 existential gate, keeping only the
	// pre-increment check (ablation 4). Safety is unaffected; the theorem
	// only needs the pre-increment check.
	NoGate bool
}

// Constructor builds a specification from a configuration.
type Constructor func(Config) *gcl.Prog

var registry = map[string]Constructor{
	"bakery":     func(c Config) *gcl.Prog { return Bakery(c) },
	"bakerypp":   func(c Config) *gcl.Prog { return BakeryPP(c) },
	"blackwhite": func(c Config) *gcl.Prog { return BlackWhite(c.N) },
	"peterson":   func(c Config) *gcl.Prog { return Peterson(c.N) },
	"szymanski":  func(c Config) *gcl.Prog { return Szymanski(c.N) },
	"modbakery":  func(c Config) *gcl.Prog { return ModBakery(c.N, c.M) },
}

// Symmetric reports whether the named specification declares full process
// symmetry (and so supports the model checker's symmetry reduction),
// derived from the group the constructor itself declares on the program.
// The bakery family and Szymanski declare gcl.FullSymmetry. Peterson opts
// out because its victim registers hold pid VALUES — the canonical layer
// relocates pid-indexed cells and blocks but never rewrites stored
// values, so pid-valued cells (or locals) are outside its model
// (gcl.PidLocal covers prefix-counting scan cursors only, not pid-naming
// locals). Black-White opts out because its mixed-colour waiting batches
// drain in concrete id order through both the ticket tie-break and the
// global colour register, which makes orbit merging markedly lossier than
// the bakery family's tie-break-only quasi-symmetry; both double as the
// declared-asymmetric controls for which -symmetry degrades to the full
// search.
func Symmetric(name string) bool {
	p, err := Get(name, Config{})
	return err == nil && p.Symmetry() == gcl.FullSymmetry
}

// Liveness declares which liveness-flavoured analyses a specification
// supports, derived mechanically from its labels and branch tags — the
// declaration the unified analysis pipeline (internal/mc) and the
// experiment harness consult instead of hard-coding per-spec knowledge.
type Liveness struct {
	// StarveAt names the label a pinned slow process can starve at (the
	// paper's Section 6.3 scenario pins Bakery++'s L1 gate); empty when
	// the spec has no such gate label.
	StarveAt string
	// FCFS reports the spec carries the "try"/"doorway-done"/"cs-enter"
	// tags mc.CheckFCFS's monitor automaton observes.
	FCFS bool
	// NoProgress reports cs entries are tagged, so the global no-progress
	// question (mc.(*Graph).FindNoProgress) is well-posed.
	NoProgress bool
}

// LivenessOf derives the liveness declaration of a built program.
func LivenessOf(p *gcl.Prog) Liveness {
	tags := p.BranchTags()
	l := Liveness{
		FCFS:       tags["try"] > 0 && tags["doorway-done"] > 0 && tags["cs-enter"] > 0,
		NoProgress: tags["cs-enter"] > 0,
	}
	if p.HasLabel("l1") {
		l.StarveAt = "l1"
	}
	return l
}

// Arbitrable reports whether a built program can arbitrate the
// lock-service scenario layer (internal/scenario): its event-loop
// accumulator observes the FCFS monitor tags ("try", "doorway-done",
// "cs-enter") plus "cs-exit" to attribute grants, count occupancy and
// detect first-come-first-served inversions, so an algorithm missing any
// of them cannot serve as a scenario backend.
func Arbitrable(p *gcl.Prog) bool {
	tags := p.BranchTags()
	return LivenessOf(p).FCFS && tags["cs-exit"] > 0
}

// Names returns the registered specification names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Get builds the named specification. N defaults to 2 and M to 4.
func Get(name string, cfg Config) (*gcl.Prog, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("specs: unknown algorithm %q (have %v)", name, Names())
	}
	if cfg.N == 0 {
		cfg.N = 2
	}
	if cfg.M == 0 {
		cfg.M = 4
	}
	return ctor(cfg), nil
}

// trialLoop appends the shared trial loop of the bakery family to p:
//
//	for j = 0 .. n-1 {
//	  L2: wait until choosing[j] = 0
//	  L3: wait until number[j] = 0 or (number[i], i) <= (number[j], j)
//	}
//
// It declares labels t1 (loop head), t2 (L2), t3 (L3), t4 (j increment),
// and cs; the caller must have declared "ncs", the local "j", and the shared
// arrays "choosing" and "number". exitEff is the effect of the cs action
// (the exit protocol), which returns to ncs.
func trialLoop(p *gcl.Prog, n int, exitEff ...gcl.Assign) {
	j := gcl.L("j")
	numJ := gcl.ShI("number", j)
	numI := gcl.ShSelf("number")
	p.Label("t1",
		gcl.Br(gcl.Ge(j, gcl.C(n)), "cs").WithTag("cs-enter"),
		gcl.Br(gcl.Lt(j, gcl.C(n)), "t2"),
	)
	p.Label("t2",
		gcl.Br(gcl.Eq(gcl.ShI("choosing", j), gcl.C(0)), "t3"),
	)
	// Proceed when number[j] = 0 or not((number[j], j) < (number[i], i)).
	p.Label("t3",
		gcl.Br(gcl.Or(
			gcl.Eq(numJ, gcl.C(0)),
			gcl.Not(gcl.LexLt(numJ, j, numI, gcl.Self())),
		), "t4"),
	)
	p.Label("t4",
		gcl.Goto("t1", gcl.SetL("j", gcl.Add(j, gcl.C(1)))),
	)
	p.Label("cs",
		gcl.Goto("ncs", exitEff...).WithTag("cs-exit"),
	)
}

// fineMax appends labels computing tmp := max(number[0..n-1]) one register
// read per step, then jumps to next. Requires local "tmp" and "k".
func fineMax(p *gcl.Prog, n int, next string) {
	k := gcl.L("k")
	p.Label("m1",
		gcl.Br(gcl.Lt(k, gcl.C(n)), "m2"),
		gcl.Br(gcl.Ge(k, gcl.C(n)), next),
	)
	p.Label("m2",
		gcl.Goto("m1",
			gcl.SetL("tmp", gcl.Max2(gcl.L("tmp"), gcl.ShI("number", k))),
			gcl.SetL("k", gcl.Add(k, gcl.C(1))),
		),
	)
}
